file(REMOVE_RECURSE
  "CMakeFiles/fig7_fu_allocation.dir/fig7_fu_allocation.cpp.o"
  "CMakeFiles/fig7_fu_allocation.dir/fig7_fu_allocation.cpp.o.d"
  "fig7_fu_allocation"
  "fig7_fu_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fu_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
