# Empty compiler generated dependencies file for fig7_fu_allocation.
# This may be replaced when dependencies are built.
