# Empty compiler generated dependencies file for fig5_dataflow.
# This may be replaced when dependencies are built.
