file(REMOVE_RECURSE
  "CMakeFiles/fig5_dataflow.dir/fig5_dataflow.cpp.o"
  "CMakeFiles/fig5_dataflow.dir/fig5_dataflow.cpp.o.d"
  "fig5_dataflow"
  "fig5_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
