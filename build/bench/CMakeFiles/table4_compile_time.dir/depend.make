# Empty dependencies file for table4_compile_time.
# This may be replaced when dependencies are built.
