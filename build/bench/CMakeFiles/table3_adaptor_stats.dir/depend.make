# Empty dependencies file for table3_adaptor_stats.
# This may be replaced when dependencies are built.
