file(REMOVE_RECURSE
  "CMakeFiles/fig1_unroll_sweep.dir/fig1_unroll_sweep.cpp.o"
  "CMakeFiles/fig1_unroll_sweep.dir/fig1_unroll_sweep.cpp.o.d"
  "fig1_unroll_sweep"
  "fig1_unroll_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_unroll_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
