# Empty compiler generated dependencies file for fig1_unroll_sweep.
# This may be replaced when dependencies are built.
