file(REMOVE_RECURSE
  "CMakeFiles/fig2_pipeline_ii.dir/fig2_pipeline_ii.cpp.o"
  "CMakeFiles/fig2_pipeline_ii.dir/fig2_pipeline_ii.cpp.o.d"
  "fig2_pipeline_ii"
  "fig2_pipeline_ii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pipeline_ii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
