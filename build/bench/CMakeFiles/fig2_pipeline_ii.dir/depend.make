# Empty dependencies file for fig2_pipeline_ii.
# This may be replaced when dependencies are built.
