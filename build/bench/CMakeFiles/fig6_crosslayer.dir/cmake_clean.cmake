file(REMOVE_RECURSE
  "CMakeFiles/fig6_crosslayer.dir/fig6_crosslayer.cpp.o"
  "CMakeFiles/fig6_crosslayer.dir/fig6_crosslayer.cpp.o.d"
  "fig6_crosslayer"
  "fig6_crosslayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_crosslayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
