# Empty compiler generated dependencies file for fig6_crosslayer.
# This may be replaced when dependencies are built.
