
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_crosslayer.cpp" "bench/CMakeFiles/fig6_crosslayer.dir/fig6_crosslayer.cpp.o" "gcc" "bench/CMakeFiles/fig6_crosslayer.dir/fig6_crosslayer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/mha_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptor/CMakeFiles/mha_adaptor.dir/DependInfo.cmake"
  "/root/repo/build/src/lowering/CMakeFiles/mha_lowering.dir/DependInfo.cmake"
  "/root/repo/build/src/hlscpp/CMakeFiles/mha_hlscpp.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/mha_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/vhls/CMakeFiles/mha_vhls.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/mha_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/lir/CMakeFiles/mha_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mha_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
