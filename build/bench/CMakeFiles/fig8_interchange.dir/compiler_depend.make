# Empty compiler generated dependencies file for fig8_interchange.
# This may be replaced when dependencies are built.
