file(REMOVE_RECURSE
  "CMakeFiles/fig8_interchange.dir/fig8_interchange.cpp.o"
  "CMakeFiles/fig8_interchange.dir/fig8_interchange.cpp.o.d"
  "fig8_interchange"
  "fig8_interchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
