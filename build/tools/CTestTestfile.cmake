# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mha-opt-roundtrip "/root/repo/build/tools/mha-opt" "/root/repo/tools/testdata/stream.ll" "--verify" "--passes=licm,dce")
set_tests_properties(mha-opt-roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mha-opt-synthesize "/root/repo/build/tools/mha-opt" "/root/repo/tools/testdata/stream.ll" "--synthesize" "--json")
set_tests_properties(mha-opt-synthesize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mha-opt-compat-check "/root/repo/build/tools/mha-opt" "/root/repo/tools/testdata/stream.ll" "--passes=hls-compat-check")
set_tests_properties(mha-opt-compat-check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mha-opt-rejects-unknown-pass "/root/repo/build/tools/mha-opt" "/root/repo/tools/testdata/stream.ll" "--passes=frobnicate")
set_tests_properties(mha-opt-rejects-unknown-pass PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
