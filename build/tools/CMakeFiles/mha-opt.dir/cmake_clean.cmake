file(REMOVE_RECURSE
  "CMakeFiles/mha-opt.dir/mha-opt.cpp.o"
  "CMakeFiles/mha-opt.dir/mha-opt.cpp.o.d"
  "mha-opt"
  "mha-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
