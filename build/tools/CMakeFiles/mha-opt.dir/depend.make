# Empty dependencies file for mha-opt.
# This may be replaced when dependencies are built.
