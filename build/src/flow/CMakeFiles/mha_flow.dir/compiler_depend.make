# Empty compiler generated dependencies file for mha_flow.
# This may be replaced when dependencies are built.
