file(REMOVE_RECURSE
  "CMakeFiles/mha_flow.dir/Flow.cpp.o"
  "CMakeFiles/mha_flow.dir/Flow.cpp.o.d"
  "CMakeFiles/mha_flow.dir/Kernels.cpp.o"
  "CMakeFiles/mha_flow.dir/Kernels.cpp.o.d"
  "libmha_flow.a"
  "libmha_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
