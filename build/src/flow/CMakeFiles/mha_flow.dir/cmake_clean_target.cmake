file(REMOVE_RECURSE
  "libmha_flow.a"
)
