file(REMOVE_RECURSE
  "libmha_hlscpp.a"
)
