# Empty compiler generated dependencies file for mha_hlscpp.
# This may be replaced when dependencies are built.
