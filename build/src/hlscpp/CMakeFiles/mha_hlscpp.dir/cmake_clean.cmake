file(REMOVE_RECURSE
  "CMakeFiles/mha_hlscpp.dir/Emitter.cpp.o"
  "CMakeFiles/mha_hlscpp.dir/Emitter.cpp.o.d"
  "CMakeFiles/mha_hlscpp.dir/Frontend.cpp.o"
  "CMakeFiles/mha_hlscpp.dir/Frontend.cpp.o.d"
  "libmha_hlscpp.a"
  "libmha_hlscpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_hlscpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
