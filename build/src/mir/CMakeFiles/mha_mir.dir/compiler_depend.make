# Empty compiler generated dependencies file for mha_mir.
# This may be replaced when dependencies are built.
