file(REMOVE_RECURSE
  "libmha_mir.a"
)
