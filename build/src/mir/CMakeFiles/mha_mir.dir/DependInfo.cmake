
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mir/Builder.cpp" "src/mir/CMakeFiles/mha_mir.dir/Builder.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/Builder.cpp.o.d"
  "/root/repo/src/mir/MContext.cpp" "src/mir/CMakeFiles/mha_mir.dir/MContext.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/MContext.cpp.o.d"
  "/root/repo/src/mir/Operation.cpp" "src/mir/CMakeFiles/mha_mir.dir/Operation.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/Operation.cpp.o.d"
  "/root/repo/src/mir/Ops.cpp" "src/mir/CMakeFiles/mha_mir.dir/Ops.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/Ops.cpp.o.d"
  "/root/repo/src/mir/Parser.cpp" "src/mir/CMakeFiles/mha_mir.dir/Parser.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/Parser.cpp.o.d"
  "/root/repo/src/mir/Pass.cpp" "src/mir/CMakeFiles/mha_mir.dir/Pass.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/Pass.cpp.o.d"
  "/root/repo/src/mir/Printer.cpp" "src/mir/CMakeFiles/mha_mir.dir/Printer.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/Printer.cpp.o.d"
  "/root/repo/src/mir/Verifier.cpp" "src/mir/CMakeFiles/mha_mir.dir/Verifier.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/Verifier.cpp.o.d"
  "/root/repo/src/mir/transforms/AffineLoopUtils.cpp" "src/mir/CMakeFiles/mha_mir.dir/transforms/AffineLoopUtils.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/transforms/AffineLoopUtils.cpp.o.d"
  "/root/repo/src/mir/transforms/AffineToScf.cpp" "src/mir/CMakeFiles/mha_mir.dir/transforms/AffineToScf.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/transforms/AffineToScf.cpp.o.d"
  "/root/repo/src/mir/transforms/Canonicalize.cpp" "src/mir/CMakeFiles/mha_mir.dir/transforms/Canonicalize.cpp.o" "gcc" "src/mir/CMakeFiles/mha_mir.dir/transforms/Canonicalize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mha_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
