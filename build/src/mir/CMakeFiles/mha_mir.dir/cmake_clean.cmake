file(REMOVE_RECURSE
  "CMakeFiles/mha_mir.dir/Builder.cpp.o"
  "CMakeFiles/mha_mir.dir/Builder.cpp.o.d"
  "CMakeFiles/mha_mir.dir/MContext.cpp.o"
  "CMakeFiles/mha_mir.dir/MContext.cpp.o.d"
  "CMakeFiles/mha_mir.dir/Operation.cpp.o"
  "CMakeFiles/mha_mir.dir/Operation.cpp.o.d"
  "CMakeFiles/mha_mir.dir/Ops.cpp.o"
  "CMakeFiles/mha_mir.dir/Ops.cpp.o.d"
  "CMakeFiles/mha_mir.dir/Parser.cpp.o"
  "CMakeFiles/mha_mir.dir/Parser.cpp.o.d"
  "CMakeFiles/mha_mir.dir/Pass.cpp.o"
  "CMakeFiles/mha_mir.dir/Pass.cpp.o.d"
  "CMakeFiles/mha_mir.dir/Printer.cpp.o"
  "CMakeFiles/mha_mir.dir/Printer.cpp.o.d"
  "CMakeFiles/mha_mir.dir/Verifier.cpp.o"
  "CMakeFiles/mha_mir.dir/Verifier.cpp.o.d"
  "CMakeFiles/mha_mir.dir/transforms/AffineLoopUtils.cpp.o"
  "CMakeFiles/mha_mir.dir/transforms/AffineLoopUtils.cpp.o.d"
  "CMakeFiles/mha_mir.dir/transforms/AffineToScf.cpp.o"
  "CMakeFiles/mha_mir.dir/transforms/AffineToScf.cpp.o.d"
  "CMakeFiles/mha_mir.dir/transforms/Canonicalize.cpp.o"
  "CMakeFiles/mha_mir.dir/transforms/Canonicalize.cpp.o.d"
  "libmha_mir.a"
  "libmha_mir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_mir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
