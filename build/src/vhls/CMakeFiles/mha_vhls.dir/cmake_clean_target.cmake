file(REMOVE_RECURSE
  "libmha_vhls.a"
)
