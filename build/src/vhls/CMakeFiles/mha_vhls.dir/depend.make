# Empty dependencies file for mha_vhls.
# This may be replaced when dependencies are built.
