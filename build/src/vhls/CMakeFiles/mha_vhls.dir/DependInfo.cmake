
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vhls/Report.cpp" "src/vhls/CMakeFiles/mha_vhls.dir/Report.cpp.o" "gcc" "src/vhls/CMakeFiles/mha_vhls.dir/Report.cpp.o.d"
  "/root/repo/src/vhls/Scheduler.cpp" "src/vhls/CMakeFiles/mha_vhls.dir/Scheduler.cpp.o" "gcc" "src/vhls/CMakeFiles/mha_vhls.dir/Scheduler.cpp.o.d"
  "/root/repo/src/vhls/TechLibrary.cpp" "src/vhls/CMakeFiles/mha_vhls.dir/TechLibrary.cpp.o" "gcc" "src/vhls/CMakeFiles/mha_vhls.dir/TechLibrary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lir/CMakeFiles/mha_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mha_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
