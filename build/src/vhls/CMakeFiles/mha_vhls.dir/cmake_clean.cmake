file(REMOVE_RECURSE
  "CMakeFiles/mha_vhls.dir/Report.cpp.o"
  "CMakeFiles/mha_vhls.dir/Report.cpp.o.d"
  "CMakeFiles/mha_vhls.dir/Scheduler.cpp.o"
  "CMakeFiles/mha_vhls.dir/Scheduler.cpp.o.d"
  "CMakeFiles/mha_vhls.dir/TechLibrary.cpp.o"
  "CMakeFiles/mha_vhls.dir/TechLibrary.cpp.o.d"
  "libmha_vhls.a"
  "libmha_vhls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_vhls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
