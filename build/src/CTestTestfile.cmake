# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("mir")
subdirs("lir")
subdirs("lowering")
subdirs("adaptor")
subdirs("hlscpp")
subdirs("vhls")
subdirs("interp")
subdirs("flow")
