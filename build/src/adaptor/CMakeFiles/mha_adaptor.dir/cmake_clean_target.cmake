file(REMOVE_RECURSE
  "libmha_adaptor.a"
)
