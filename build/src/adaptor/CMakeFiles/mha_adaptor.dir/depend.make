# Empty dependencies file for mha_adaptor.
# This may be replaced when dependencies are built.
