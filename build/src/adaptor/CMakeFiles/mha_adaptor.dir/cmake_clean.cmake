file(REMOVE_RECURSE
  "CMakeFiles/mha_adaptor.dir/AttributeScrub.cpp.o"
  "CMakeFiles/mha_adaptor.dir/AttributeScrub.cpp.o.d"
  "CMakeFiles/mha_adaptor.dir/DescriptorElimination.cpp.o"
  "CMakeFiles/mha_adaptor.dir/DescriptorElimination.cpp.o.d"
  "CMakeFiles/mha_adaptor.dir/GepCanonicalize.cpp.o"
  "CMakeFiles/mha_adaptor.dir/GepCanonicalize.cpp.o.d"
  "CMakeFiles/mha_adaptor.dir/IntrinsicLegalize.cpp.o"
  "CMakeFiles/mha_adaptor.dir/IntrinsicLegalize.cpp.o.d"
  "CMakeFiles/mha_adaptor.dir/MetadataConvert.cpp.o"
  "CMakeFiles/mha_adaptor.dir/MetadataConvert.cpp.o.d"
  "CMakeFiles/mha_adaptor.dir/Pipeline.cpp.o"
  "CMakeFiles/mha_adaptor.dir/Pipeline.cpp.o.d"
  "CMakeFiles/mha_adaptor.dir/PointerTypeRecovery.cpp.o"
  "CMakeFiles/mha_adaptor.dir/PointerTypeRecovery.cpp.o.d"
  "CMakeFiles/mha_adaptor.dir/ShapeInfo.cpp.o"
  "CMakeFiles/mha_adaptor.dir/ShapeInfo.cpp.o.d"
  "libmha_adaptor.a"
  "libmha_adaptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_adaptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
