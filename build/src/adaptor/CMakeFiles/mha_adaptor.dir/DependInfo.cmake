
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adaptor/AttributeScrub.cpp" "src/adaptor/CMakeFiles/mha_adaptor.dir/AttributeScrub.cpp.o" "gcc" "src/adaptor/CMakeFiles/mha_adaptor.dir/AttributeScrub.cpp.o.d"
  "/root/repo/src/adaptor/DescriptorElimination.cpp" "src/adaptor/CMakeFiles/mha_adaptor.dir/DescriptorElimination.cpp.o" "gcc" "src/adaptor/CMakeFiles/mha_adaptor.dir/DescriptorElimination.cpp.o.d"
  "/root/repo/src/adaptor/GepCanonicalize.cpp" "src/adaptor/CMakeFiles/mha_adaptor.dir/GepCanonicalize.cpp.o" "gcc" "src/adaptor/CMakeFiles/mha_adaptor.dir/GepCanonicalize.cpp.o.d"
  "/root/repo/src/adaptor/IntrinsicLegalize.cpp" "src/adaptor/CMakeFiles/mha_adaptor.dir/IntrinsicLegalize.cpp.o" "gcc" "src/adaptor/CMakeFiles/mha_adaptor.dir/IntrinsicLegalize.cpp.o.d"
  "/root/repo/src/adaptor/MetadataConvert.cpp" "src/adaptor/CMakeFiles/mha_adaptor.dir/MetadataConvert.cpp.o" "gcc" "src/adaptor/CMakeFiles/mha_adaptor.dir/MetadataConvert.cpp.o.d"
  "/root/repo/src/adaptor/Pipeline.cpp" "src/adaptor/CMakeFiles/mha_adaptor.dir/Pipeline.cpp.o" "gcc" "src/adaptor/CMakeFiles/mha_adaptor.dir/Pipeline.cpp.o.d"
  "/root/repo/src/adaptor/PointerTypeRecovery.cpp" "src/adaptor/CMakeFiles/mha_adaptor.dir/PointerTypeRecovery.cpp.o" "gcc" "src/adaptor/CMakeFiles/mha_adaptor.dir/PointerTypeRecovery.cpp.o.d"
  "/root/repo/src/adaptor/ShapeInfo.cpp" "src/adaptor/CMakeFiles/mha_adaptor.dir/ShapeInfo.cpp.o" "gcc" "src/adaptor/CMakeFiles/mha_adaptor.dir/ShapeInfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lir/CMakeFiles/mha_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/lowering/CMakeFiles/mha_lowering.dir/DependInfo.cmake"
  "/root/repo/build/src/mir/CMakeFiles/mha_mir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mha_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
