
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lir/BasicBlock.cpp" "src/lir/CMakeFiles/mha_lir.dir/BasicBlock.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/BasicBlock.cpp.o.d"
  "/root/repo/src/lir/Function.cpp" "src/lir/CMakeFiles/mha_lir.dir/Function.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/Function.cpp.o.d"
  "/root/repo/src/lir/HlsCompat.cpp" "src/lir/CMakeFiles/mha_lir.dir/HlsCompat.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/HlsCompat.cpp.o.d"
  "/root/repo/src/lir/IRBuilder.cpp" "src/lir/CMakeFiles/mha_lir.dir/IRBuilder.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/IRBuilder.cpp.o.d"
  "/root/repo/src/lir/Instruction.cpp" "src/lir/CMakeFiles/mha_lir.dir/Instruction.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/Instruction.cpp.o.d"
  "/root/repo/src/lir/Intrinsics.cpp" "src/lir/CMakeFiles/mha_lir.dir/Intrinsics.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/Intrinsics.cpp.o.d"
  "/root/repo/src/lir/LContext.cpp" "src/lir/CMakeFiles/mha_lir.dir/LContext.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/LContext.cpp.o.d"
  "/root/repo/src/lir/Parser.cpp" "src/lir/CMakeFiles/mha_lir.dir/Parser.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/Parser.cpp.o.d"
  "/root/repo/src/lir/PassManager.cpp" "src/lir/CMakeFiles/mha_lir.dir/PassManager.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/PassManager.cpp.o.d"
  "/root/repo/src/lir/Printer.cpp" "src/lir/CMakeFiles/mha_lir.dir/Printer.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/Printer.cpp.o.d"
  "/root/repo/src/lir/Utils.cpp" "src/lir/CMakeFiles/mha_lir.dir/Utils.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/Utils.cpp.o.d"
  "/root/repo/src/lir/Value.cpp" "src/lir/CMakeFiles/mha_lir.dir/Value.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/Value.cpp.o.d"
  "/root/repo/src/lir/Verifier.cpp" "src/lir/CMakeFiles/mha_lir.dir/Verifier.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/Verifier.cpp.o.d"
  "/root/repo/src/lir/analysis/Dependence.cpp" "src/lir/CMakeFiles/mha_lir.dir/analysis/Dependence.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/analysis/Dependence.cpp.o.d"
  "/root/repo/src/lir/analysis/Dominators.cpp" "src/lir/CMakeFiles/mha_lir.dir/analysis/Dominators.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/lir/analysis/LoopInfo.cpp" "src/lir/CMakeFiles/mha_lir.dir/analysis/LoopInfo.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/lir/transforms/CSE.cpp" "src/lir/CMakeFiles/mha_lir.dir/transforms/CSE.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/transforms/CSE.cpp.o.d"
  "/root/repo/src/lir/transforms/DCE.cpp" "src/lir/CMakeFiles/mha_lir.dir/transforms/DCE.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/transforms/DCE.cpp.o.d"
  "/root/repo/src/lir/transforms/InstCombine.cpp" "src/lir/CMakeFiles/mha_lir.dir/transforms/InstCombine.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/transforms/InstCombine.cpp.o.d"
  "/root/repo/src/lir/transforms/LICM.cpp" "src/lir/CMakeFiles/mha_lir.dir/transforms/LICM.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/transforms/LICM.cpp.o.d"
  "/root/repo/src/lir/transforms/LoopUnroll.cpp" "src/lir/CMakeFiles/mha_lir.dir/transforms/LoopUnroll.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/transforms/LoopUnroll.cpp.o.d"
  "/root/repo/src/lir/transforms/Mem2Reg.cpp" "src/lir/CMakeFiles/mha_lir.dir/transforms/Mem2Reg.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/transforms/Mem2Reg.cpp.o.d"
  "/root/repo/src/lir/transforms/SimplifyCFG.cpp" "src/lir/CMakeFiles/mha_lir.dir/transforms/SimplifyCFG.cpp.o" "gcc" "src/lir/CMakeFiles/mha_lir.dir/transforms/SimplifyCFG.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mha_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
