file(REMOVE_RECURSE
  "libmha_lir.a"
)
