# Empty compiler generated dependencies file for mha_lir.
# This may be replaced when dependencies are built.
