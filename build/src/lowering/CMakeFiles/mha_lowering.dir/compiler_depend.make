# Empty compiler generated dependencies file for mha_lowering.
# This may be replaced when dependencies are built.
