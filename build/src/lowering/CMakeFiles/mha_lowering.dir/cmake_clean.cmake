file(REMOVE_RECURSE
  "CMakeFiles/mha_lowering.dir/Lowering.cpp.o"
  "CMakeFiles/mha_lowering.dir/Lowering.cpp.o.d"
  "libmha_lowering.a"
  "libmha_lowering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_lowering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
