file(REMOVE_RECURSE
  "libmha_lowering.a"
)
