file(REMOVE_RECURSE
  "libmha_support.a"
)
