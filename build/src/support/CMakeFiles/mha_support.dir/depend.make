# Empty dependencies file for mha_support.
# This may be replaced when dependencies are built.
