file(REMOVE_RECURSE
  "CMakeFiles/mha_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/mha_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/mha_support.dir/StringUtils.cpp.o"
  "CMakeFiles/mha_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/mha_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/mha_support.dir/ThreadPool.cpp.o.d"
  "libmha_support.a"
  "libmha_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
