# Empty compiler generated dependencies file for mha_interp.
# This may be replaced when dependencies are built.
