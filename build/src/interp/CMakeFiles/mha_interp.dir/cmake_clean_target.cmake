file(REMOVE_RECURSE
  "libmha_interp.a"
)
