file(REMOVE_RECURSE
  "CMakeFiles/mha_interp.dir/Interp.cpp.o"
  "CMakeFiles/mha_interp.dir/Interp.cpp.o.d"
  "libmha_interp.a"
  "libmha_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
