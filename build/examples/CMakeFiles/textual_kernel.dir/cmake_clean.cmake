file(REMOVE_RECURSE
  "CMakeFiles/textual_kernel.dir/textual_kernel.cpp.o"
  "CMakeFiles/textual_kernel.dir/textual_kernel.cpp.o.d"
  "textual_kernel"
  "textual_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textual_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
