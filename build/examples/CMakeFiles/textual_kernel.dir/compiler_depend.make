# Empty compiler generated dependencies file for textual_kernel.
# This may be replaced when dependencies are built.
