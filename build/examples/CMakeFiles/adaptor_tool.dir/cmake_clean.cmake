file(REMOVE_RECURSE
  "CMakeFiles/adaptor_tool.dir/adaptor_tool.cpp.o"
  "CMakeFiles/adaptor_tool.dir/adaptor_tool.cpp.o.d"
  "adaptor_tool"
  "adaptor_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptor_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
