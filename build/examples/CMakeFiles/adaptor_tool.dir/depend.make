# Empty dependencies file for adaptor_tool.
# This may be replaced when dependencies are built.
