# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lir_core_test[1]_include.cmake")
include("/root/repo/build/tests/lir_print_parse_test[1]_include.cmake")
include("/root/repo/build/tests/lir_verifier_test[1]_include.cmake")
include("/root/repo/build/tests/lir_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/lir_transforms_test[1]_include.cmake")
include("/root/repo/build/tests/mir_core_test[1]_include.cmake")
include("/root/repo/build/tests/mir_transforms_test[1]_include.cmake")
include("/root/repo/build/tests/lowering_test[1]_include.cmake")
include("/root/repo/build/tests/adaptor_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/hlscpp_test[1]_include.cmake")
include("/root/repo/build/tests/vhls_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
