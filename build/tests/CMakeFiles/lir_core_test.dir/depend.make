# Empty dependencies file for lir_core_test.
# This may be replaced when dependencies are built.
