file(REMOVE_RECURSE
  "CMakeFiles/lir_core_test.dir/lir_core_test.cpp.o"
  "CMakeFiles/lir_core_test.dir/lir_core_test.cpp.o.d"
  "lir_core_test"
  "lir_core_test.pdb"
  "lir_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lir_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
