file(REMOVE_RECURSE
  "CMakeFiles/lir_print_parse_test.dir/lir_print_parse_test.cpp.o"
  "CMakeFiles/lir_print_parse_test.dir/lir_print_parse_test.cpp.o.d"
  "lir_print_parse_test"
  "lir_print_parse_test.pdb"
  "lir_print_parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lir_print_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
