# Empty dependencies file for lir_print_parse_test.
# This may be replaced when dependencies are built.
