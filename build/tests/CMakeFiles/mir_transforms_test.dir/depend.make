# Empty dependencies file for mir_transforms_test.
# This may be replaced when dependencies are built.
