file(REMOVE_RECURSE
  "CMakeFiles/mir_transforms_test.dir/mir_transforms_test.cpp.o"
  "CMakeFiles/mir_transforms_test.dir/mir_transforms_test.cpp.o.d"
  "mir_transforms_test"
  "mir_transforms_test.pdb"
  "mir_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mir_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
