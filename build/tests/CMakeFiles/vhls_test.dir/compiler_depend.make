# Empty compiler generated dependencies file for vhls_test.
# This may be replaced when dependencies are built.
