file(REMOVE_RECURSE
  "CMakeFiles/vhls_test.dir/vhls_test.cpp.o"
  "CMakeFiles/vhls_test.dir/vhls_test.cpp.o.d"
  "vhls_test"
  "vhls_test.pdb"
  "vhls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
