file(REMOVE_RECURSE
  "CMakeFiles/mir_core_test.dir/mir_core_test.cpp.o"
  "CMakeFiles/mir_core_test.dir/mir_core_test.cpp.o.d"
  "mir_core_test"
  "mir_core_test.pdb"
  "mir_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mir_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
