# Empty dependencies file for lir_analysis_test.
# This may be replaced when dependencies are built.
