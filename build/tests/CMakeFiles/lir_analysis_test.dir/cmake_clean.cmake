file(REMOVE_RECURSE
  "CMakeFiles/lir_analysis_test.dir/lir_analysis_test.cpp.o"
  "CMakeFiles/lir_analysis_test.dir/lir_analysis_test.cpp.o.d"
  "lir_analysis_test"
  "lir_analysis_test.pdb"
  "lir_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lir_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
