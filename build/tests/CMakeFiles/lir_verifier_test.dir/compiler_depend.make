# Empty compiler generated dependencies file for lir_verifier_test.
# This may be replaced when dependencies are built.
