file(REMOVE_RECURSE
  "CMakeFiles/lir_verifier_test.dir/lir_verifier_test.cpp.o"
  "CMakeFiles/lir_verifier_test.dir/lir_verifier_test.cpp.o.d"
  "lir_verifier_test"
  "lir_verifier_test.pdb"
  "lir_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lir_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
