file(REMOVE_RECURSE
  "CMakeFiles/adaptor_test.dir/adaptor_test.cpp.o"
  "CMakeFiles/adaptor_test.dir/adaptor_test.cpp.o.d"
  "adaptor_test"
  "adaptor_test.pdb"
  "adaptor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
