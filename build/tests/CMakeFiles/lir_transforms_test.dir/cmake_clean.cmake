file(REMOVE_RECURSE
  "CMakeFiles/lir_transforms_test.dir/lir_transforms_test.cpp.o"
  "CMakeFiles/lir_transforms_test.dir/lir_transforms_test.cpp.o.d"
  "lir_transforms_test"
  "lir_transforms_test.pdb"
  "lir_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lir_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
