# Empty dependencies file for lir_transforms_test.
# This may be replaced when dependencies are built.
