file(REMOVE_RECURSE
  "CMakeFiles/hlscpp_test.dir/hlscpp_test.cpp.o"
  "CMakeFiles/hlscpp_test.dir/hlscpp_test.cpp.o.d"
  "hlscpp_test"
  "hlscpp_test.pdb"
  "hlscpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlscpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
