# Empty dependencies file for hlscpp_test.
# This may be replaced when dependencies are built.
