#include "hlscpp/Emitter.h"

#include "mir/MContext.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

namespace mha::hlscpp {

namespace {

class Emitter {
public:
  explicit Emitter(DiagnosticEngine &diags) : diags_(diags) {}

  std::string run(mir::ModuleOp module) {
    os_ << "// Generated HLS C++ (MLIR -> HLS C++ emission flow)\n";
    os_ << "#include <math.h>\n#include <stdint.h>\n#include <string.h>\n\n";
    for (mir::FuncOp fn : module.funcs())
      emitFunc(fn);
    return diags_.hadError() ? std::string() : os_.str();
  }

private:
  std::string cTypeOf(mir::Type *type) {
    switch (type->kind()) {
    case mir::Type::Kind::Index:
      return "int";
    case mir::Type::Kind::Integer: {
      unsigned width = cast<mir::IntegerType>(type)->width();
      if (width == 1)
        return "bool";
      // Emitting a 64-bit value as "int" silently truncates it to 32 bits
      // when the C++ is parsed back (or compiled by a real HLS tool).
      return width > 32 ? "int64_t" : "int";
    }
    case mir::Type::Kind::Float:
      return "float";
    case mir::Type::Kind::Double:
      return "double";
    default:
      diags_.error("hlscpp-emit: cannot emit type " + type->str());
      return "int";
    }
  }

  std::string nameOf(mir::Value *v) {
    auto it = names_.find(v);
    if (it != names_.end())
      return it->second;
    std::string name = strfmt("v%u", next_++);
    names_[v] = name;
    return name;
  }

  void indent() {
    for (int i = 0; i < depth_; ++i)
      os_ << "  ";
  }

  void emitFunc(mir::FuncOp fn) {
    names_.clear();
    next_ = 0;
    os_ << "void " << fn.name() << "(";
    for (unsigned i = 0; i < fn.numArgs(); ++i) {
      if (i)
        os_ << ", ";
      mir::BlockArgument *arg = fn.arg(i);
      std::string argName = strfmt("a%u", i);
      names_[arg] = argName;
      if (auto *mt = dyn_cast<mir::MemRefType>(arg->type())) {
        os_ << cTypeOf(mt->elementType()) << " " << argName;
        for (int64_t d : mt->shape())
          os_ << "[" << d << "]";
      } else {
        os_ << cTypeOf(arg->type()) << " " << argName;
      }
    }
    os_ << ") {\n";
    depth_ = 1;
    if (fn.op->attr(mir::hlsattr::Dataflow)) {
      indent();
      os_ << "#pragma HLS dataflow\n";
    }
    // Array-partition pragmas (Vitis: dim is 1-based).
    if (const auto *partitions = dyn_cast<mir::ArrayAttr>(
            fn.op->attr(mir::hlsattr::ArrayPartition))) {
      for (const mir::Attribute *entry : partitions->value()) {
        const auto *tuple = cast<mir::ArrayAttr>(entry);
        int64_t argIdx = cast<mir::IntegerAttr>(tuple->value()[0])->value();
        int64_t dim = cast<mir::IntegerAttr>(tuple->value()[1])->value();
        int64_t factor = cast<mir::IntegerAttr>(tuple->value()[2])->value();
        const std::string &kind =
            cast<mir::StringAttr>(tuple->value()[3])->value();
        indent();
        os_ << strfmt("#pragma HLS array_partition variable=a%lld %s "
                      "factor=%lld dim=%lld\n",
                      static_cast<long long>(argIdx), kind.c_str(),
                      static_cast<long long>(factor),
                      static_cast<long long>(dim + 1));
      }
    }
    emitBlock(fn.entryBlock());
    os_ << "}\n\n";
  }

  void emitBlock(mir::Block *block) {
    for (mir::Operation *op : block->opPtrs())
      emitOp(op);
  }

  std::string operandExpr(mir::Operation *op, unsigned i) {
    return nameOf(op->operand(i));
  }

  /// Declares `cType name = expr;` and registers the result name.
  void emitAssign(mir::Operation *op, const std::string &expr) {
    indent();
    os_ << cTypeOf(op->result()->type()) << " " << nameOf(op->result())
        << " = " << expr << ";\n";
  }

  std::string affineExprToC(const mir::AffineExpr *expr,
                            const std::vector<std::string> &dims) {
    using K = mir::AffineExpr::Kind;
    switch (expr->kind()) {
    case K::Constant:
      return strfmt("%lld", static_cast<long long>(expr->value()));
    case K::Dim:
      return dims.at(static_cast<size_t>(expr->value()));
    case K::Symbol:
      diags_.error("hlscpp-emit: affine symbols unsupported");
      return "0";
    case K::Add:
      return "(" + affineExprToC(expr->lhs(), dims) + " + " +
             affineExprToC(expr->rhs(), dims) + ")";
    case K::Mul:
      return "(" + affineExprToC(expr->lhs(), dims) + " * " +
             affineExprToC(expr->rhs(), dims) + ")";
    case K::Mod:
      return "(" + affineExprToC(expr->lhs(), dims) + " % " +
             affineExprToC(expr->rhs(), dims) + ")";
    case K::FloorDiv:
      return "(" + affineExprToC(expr->lhs(), dims) + " / " +
             affineExprToC(expr->rhs(), dims) + ")";
    case K::CeilDiv:
      return "((" + affineExprToC(expr->lhs(), dims) + " + " +
             affineExprToC(expr->rhs(), dims) + " - 1) / " +
             affineExprToC(expr->rhs(), dims) + ")";
    }
    return "0";
  }

  /// Subscript text for an affine access: "[i][j+1]".
  std::string subscripts(mir::Operation *op, unsigned memrefIdx) {
    const mir::AffineMap &map =
        cast<mir::AffineMapAttr>(op->attr("map"))->value();
    std::vector<std::string> dims;
    for (unsigned i = memrefIdx + 1; i < op->numOperands(); ++i)
      dims.push_back(nameOf(op->operand(i)));
    std::string out;
    for (const mir::AffineExpr *expr : map.results())
      out += "[" + affineExprToC(expr, dims) + "]";
    return out;
  }

  void emitOp(mir::Operation *op) {
    namespace mops = mir::ops;
    const std::string &name = op->name();

    static const std::map<std::string, const char *> binops = {
        {mops::AddI, "+"}, {mops::SubI, "-"}, {mops::MulI, "*"},
        {mops::DivSI, "/"}, {mops::RemSI, "%"}, {mops::AddF, "+"},
        {mops::SubF, "-"}, {mops::MulF, "*"}, {mops::DivF, "/"}};
    static const std::map<std::string, const char *> cmps = {
        {"eq", "=="}, {"ne", "!="}, {"slt", "<"}, {"sle", "<="},
        {"sgt", ">"}, {"sge", ">="}, {"ult", "<"}, {"ule", "<="},
        {"ugt", ">"}, {"uge", ">="}, {"oeq", "=="}, {"one", "!="},
        {"olt", "<"}, {"ole", "<="}, {"ogt", ">"}, {"oge", ">="}};

    if (name == mops::ConstantOp) {
      const mir::Attribute *value = op->attr("value");
      if (const auto *i = dyn_cast<mir::IntegerAttr>(value))
        emitAssign(op, strfmt("%lld", static_cast<long long>(i->value())));
      else {
        // Non-finite values have no C++ literal spelling; printf would
        // produce "inf"/"nan", which is not parseable source. Use the
        // math.h macros instead.
        double v = cast<mir::FloatAttr>(value)->value();
        std::string text;
        if (std::isnan(v))
          text = "NAN";
        else if (std::isinf(v))
          text = v < 0 ? "-INFINITY" : "INFINITY";
        else
          // Shortest round-trip form; locale-independent unlike %f/%g.
          text = json::shortestDouble(v);
        emitAssign(op, text);
      }
      return;
    }
    if (auto it = binops.find(name); it != binops.end()) {
      emitAssign(op, operandExpr(op, 0) + " " + it->second + " " +
                         operandExpr(op, 1));
      return;
    }
    if (name == mops::NegF) {
      emitAssign(op, "-" + operandExpr(op, 0));
      return;
    }
    if (name == mops::CmpI || name == mops::CmpF) {
      const std::string &pred =
          cast<mir::StringAttr>(op->attr("predicate"))->value();
      emitAssign(op, operandExpr(op, 0) + " " + cmps.at(pred) + " " +
                         operandExpr(op, 1));
      return;
    }
    if (name == mops::Select) {
      emitAssign(op, operandExpr(op, 0) + " ? " + operandExpr(op, 1) + " : " +
                         operandExpr(op, 2));
      return;
    }
    if (name == mops::IndexCast) {
      emitAssign(op, operandExpr(op, 0));
      return;
    }
    if (name == mops::SIToFP || name == mops::FPToSI) {
      emitAssign(op, "(" + cTypeOf(op->result()->type()) + ")" +
                         operandExpr(op, 0));
      return;
    }
    if (name == mops::MathSqrt) {
      emitAssign(op, "sqrt(" + operandExpr(op, 0) + ")");
      return;
    }
    if (name == mops::MathExp) {
      emitAssign(op, "exp(" + operandExpr(op, 0) + ")");
      return;
    }
    if (name == mops::MathFabs) {
      emitAssign(op, "fabs(" + operandExpr(op, 0) + ")");
      return;
    }
    if (name == mops::MemRefAlloc) {
      auto *mt = cast<mir::MemRefType>(op->result()->type());
      indent();
      os_ << cTypeOf(mt->elementType()) << " " << nameOf(op->result());
      for (int64_t d : mt->shape())
        os_ << "[" << d << "]";
      os_ << ";\n";
      return;
    }
    if (name == mops::AffineLoad) {
      emitAssign(op, operandExpr(op, 0) + subscripts(op, 0));
      return;
    }
    if (name == mops::AffineStore) {
      indent();
      os_ << operandExpr(op, 1) << subscripts(op, 1) << " = "
          << operandExpr(op, 0) << ";\n";
      return;
    }
    if (name == mops::MemRefLoad) {
      std::string expr = operandExpr(op, 0);
      for (unsigned i = 1; i < op->numOperands(); ++i)
        expr += "[" + operandExpr(op, i) + "]";
      emitAssign(op, expr);
      return;
    }
    if (name == mops::MemRefStore) {
      indent();
      os_ << operandExpr(op, 1);
      for (unsigned i = 2; i < op->numOperands(); ++i)
        os_ << "[" << operandExpr(op, i) << "]";
      os_ << " = " << operandExpr(op, 0) << ";\n";
      return;
    }
    if (name == mops::MemRefCopy) {
      // Nested element-copy loops (what HLS-friendly emitters produce).
      auto *mt = cast<mir::MemRefType>(op->operand(0)->type());
      std::string src = operandExpr(op, 0);
      std::string dst = operandExpr(op, 1);
      std::vector<std::string> ivs;
      for (unsigned d = 0; d < mt->rank(); ++d) {
        std::string iv = strfmt("c%u_%u", copyId_, d);
        indent();
        os_ << strfmt("for (int %s = 0; %s < %lld; %s += 1) {\n", iv.c_str(),
                      iv.c_str(), static_cast<long long>(mt->shape()[d]),
                      iv.c_str());
        ++depth_;
        ivs.push_back(iv);
      }
      indent();
      os_ << "#pragma HLS pipeline II=1\n";
      indent();
      os_ << dst;
      for (const std::string &iv : ivs)
        os_ << "[" << iv << "]";
      os_ << " = " << src;
      for (const std::string &iv : ivs)
        os_ << "[" << iv << "]";
      os_ << ";\n";
      for (unsigned d = 0; d < mt->rank(); ++d) {
        --depth_;
        indent();
        os_ << "}\n";
      }
      ++copyId_;
      return;
    }
    if (name == mops::AffineApply) {
      const mir::AffineMap &map =
          cast<mir::AffineMapAttr>(op->attr("map"))->value();
      std::vector<std::string> dims;
      for (unsigned i = 0; i < op->numOperands(); ++i)
        dims.push_back(nameOf(op->operand(i)));
      emitAssign(op, affineExprToC(map.results()[0], dims));
      return;
    }
    if (name == mops::AffineFor) {
      mir::ForOp loop = mir::ForOp::wrap(op);
      std::string iv = strfmt("i%u", loopId_++);
      names_[loop.inductionVar()] = iv;
      indent();
      os_ << strfmt("for (int %s = %lld; %s < %lld; %s += %lld) {\n",
                    iv.c_str(), static_cast<long long>(loop.lowerBound()),
                    iv.c_str(), static_cast<long long>(loop.upperBound()),
                    iv.c_str(), static_cast<long long>(loop.step()));
      ++depth_;
      if (auto ii = loop.pipelineII()) {
        indent();
        os_ << strfmt("#pragma HLS pipeline II=%lld",
                      static_cast<long long>(*ii))
            << "\n";
      }
      if (auto factor = loop.unrollFactor()) {
        indent();
        os_ << strfmt("#pragma HLS unroll factor=%lld",
                      static_cast<long long>(*factor))
            << "\n";
      }
      emitBlock(loop.bodyBlock());
      --depth_;
      indent();
      os_ << "}\n";
      return;
    }
    if (name == mops::AffineYield || name == mops::Return ||
        name == mops::ScfYield)
      return;
    diags_.error("hlscpp-emit: cannot emit op " + name);
  }

  DiagnosticEngine &diags_;
  std::ostringstream os_;
  // Pointer-keyed and lookup-only — never iterate (pointer order is
  // non-deterministic); emission order always follows the IR.
  std::unordered_map<mir::Value *, std::string> names_;
  unsigned next_ = 0;
  unsigned loopId_ = 0;
  unsigned copyId_ = 0;
  int depth_ = 0;
};

} // namespace

std::string emitHlsCpp(mir::ModuleOp module, DiagnosticEngine &diags) {
  return Emitter(diags).run(module);
}

} // namespace mha::hlscpp
