#include "hlscpp/Frontend.h"

#include "lir/IRBuilder.h"
#include "lir/Intrinsics.h"
#include "lir/LContext.h"
#include "lir/transforms/Transforms.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>

namespace mha::hlscpp {

namespace {

using lir::IRBuilder;
using lir::Opcode;

// ============================ Lexer ============================

enum class Tok {
  Eof,
  Ident,
  Int,
  Float,
  Pragma, // whole pragma line text
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,     // =
  PlusAssign, // +=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  Question,
  Colon,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;
  int64_t intValue = 0;
  double fpValue = 0;
  SrcLoc loc;
};

class Lexer {
public:
  Lexer(std::string_view text, DiagnosticEngine &diags)
      : text_(text), diags_(diags) {
    advance();
  }

  const Token &cur() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

  void advance() {
    skipTrivia();
    cur_ = Token{};
    cur_.loc = {line_, col_};
    if (pos_ >= text_.size()) {
      cur_.kind = Tok::Eof;
      return;
    }
    char c = text_[pos_];
    auto two = [&](char second, Tok ifTwo, Tok ifOne) {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == second) {
        cur_.kind = ifTwo;
        pos_ += 2;
        col_ += 2;
      } else {
        cur_.kind = ifOne;
        ++pos_;
        ++col_;
      }
    };
    switch (c) {
    case '#': {
      // Pragma line (or include — skipped in trivia? includes start with
      // '#' too, handle here).
      size_t end = text_.find('\n', pos_);
      if (end == std::string_view::npos)
        end = text_.size();
      std::string line(text_.substr(pos_, end - pos_));
      pos_ = end;
      if (startsWith(line, "#pragma")) {
        cur_.kind = Tok::Pragma;
        cur_.text = line;
      } else {
        advance(); // #include etc.: skip
      }
      return;
    }
    case '(': single(Tok::LParen); return;
    case ')': single(Tok::RParen); return;
    case '{': single(Tok::LBrace); return;
    case '}': single(Tok::RBrace); return;
    case '[': single(Tok::LBracket); return;
    case ']': single(Tok::RBracket); return;
    case ';': single(Tok::Semi); return;
    case ',': single(Tok::Comma); return;
    case '?': single(Tok::Question); return;
    case ':': single(Tok::Colon); return;
    case '+': two('=', Tok::PlusAssign, Tok::Plus); return;
    case '-': single(Tok::Minus); return;
    case '*': single(Tok::Star); return;
    case '/': single(Tok::Slash); return;
    case '%': single(Tok::Percent); return;
    case '<': two('=', Tok::Le, Tok::Lt); return;
    case '>': two('=', Tok::Ge, Tok::Gt); return;
    case '=': two('=', Tok::EqEq, Tok::Assign); return;
    case '!': two('=', Tok::NotEq, Tok::NotEq); return;
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      lexNumber();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      cur_.kind = Tok::Ident;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        cur_.text += text_[pos_];
        ++pos_;
        ++col_;
      }
      return;
    }
    diags_.error(strfmt("hls-frontend: unexpected character '%c'", c),
                 cur_.loc);
    ++pos_;
    ++col_;
    advance();
  }

private:
  void single(Tok kind) {
    cur_.kind = kind;
    ++pos_;
    ++col_;
  }

  void lexNumber() {
    size_t start = pos_;
    bool isFloat = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_; ++col_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '+' || c == '-') && pos_ > start &&
                  (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
        isFloat = true;
        ++pos_; ++col_;
      } else {
        break;
      }
    }
    std::string word(text_.substr(start, pos_ - start));
    if (isFloat) {
      cur_.kind = Tok::Float;
      if (std::optional<double> v = parseDouble(word))
        cur_.fpValue = *v;
      else
        diags_.error(strfmt("hls-frontend: invalid or out-of-range float "
                            "literal '%s'",
                            word.c_str()),
                     cur_.loc);
    } else {
      cur_.kind = Tok::Int;
      if (std::optional<int64_t> v = parseInt(word))
        cur_.intValue = *v;
      else
        diags_.error(strfmt("hls-frontend: invalid or out-of-range integer "
                            "literal '%s'",
                            word.c_str()),
                     cur_.loc);
    }
  }

  void skipTrivia() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_; col_ = 1; ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_; ++col_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n')
          ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  DiagnosticEngine &diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Token cur_;
};

// ============================ Parser / codegen ============================

/// A C variable binding: either a scalar alloca or an array base pointer.
struct VarInfo {
  lir::Value *storage = nullptr; // alloca (scalar/array) or argument
  lir::Type *valueType = nullptr; // scalar element type
  lir::ArrayType *arrayType = nullptr; // set for arrays
};

struct PragmaInfo {
  std::optional<int64_t> pipelineII;
  std::optional<int64_t> unrollFactor;
};

class Frontend {
public:
  Frontend(std::string_view source, lir::LContext &ctx,
           DiagnosticEngine &diags)
      : lex_(source, diags), ctx_(ctx), diags_(diags), builder_(ctx) {}

  std::unique_ptr<lir::Module> run() {
    ctx_.emitOpaquePointers = false; // legacy frontend: typed pointers
    auto module = std::make_unique<lir::Module>(ctx_, "hls-cpp");
    module_ = module.get();
    module_->flags()["opaque-pointers"] = "false";
    module_->flags()["ir-producer"] = "hls-cpp-frontend";
    while (lex_.cur().kind != Tok::Eof && !diags_.hadError())
      parseFunction();
    if (diags_.hadError())
      return nullptr;
    return module;
  }

private:
  Token expect(Tok kind, const char *what) {
    if (lex_.cur().kind != kind) {
      diags_.error(strfmt("hls-frontend: expected %s, got '%s'", what,
                          lex_.cur().text.c_str()),
                   lex_.cur().loc);
      return Token{};
    }
    return lex_.take();
  }

  bool accept(Tok kind) {
    if (lex_.cur().kind == kind) {
      lex_.advance();
      return true;
    }
    return false;
  }

  lir::Type *parseCType(const std::string &word) {
    if (word == "double")
      return ctx_.doubleTy();
    if (word == "float")
      return ctx_.floatTy();
    if (word == "int")
      return ctx_.i32();
    if (word == "int64_t")
      return ctx_.i64();
    if (word == "bool")
      return ctx_.i1();
    return nullptr;
  }

  bool atType() {
    return lex_.cur().kind == Tok::Ident &&
           parseCType(lex_.cur().text) != nullptr;
  }

  void parseFunction() {
    Token ret = expect(Tok::Ident, "'void'");
    if (ret.text != "void") {
      diags_.error("hls-frontend: only void top functions are supported",
                   ret.loc);
      return;
    }
    Token name = expect(Tok::Ident, "function name");
    expect(Tok::LParen, "'('");

    struct Param {
      std::string name;
      lir::Type *type;              // LLVM-level parameter type
      lir::Type *scalarType;        // element/value type
      lir::ArrayType *arrayType = nullptr;
    };
    std::vector<Param> params;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        Token typeTok = expect(Tok::Ident, "parameter type");
        lir::Type *elem = parseCType(typeTok.text);
        if (!elem) {
          diags_.error("hls-frontend: unknown type " + typeTok.text,
                       typeTok.loc);
          return;
        }
        Token pname = expect(Tok::Ident, "parameter name");
        std::vector<int64_t> dims;
        while (accept(Tok::LBracket)) {
          Token dim = expect(Tok::Int, "array dimension");
          expect(Tok::RBracket, "']'");
          dims.push_back(dim.intValue);
        }
        Param p;
        p.name = pname.text;
        p.scalarType = elem;
        if (dims.empty()) {
          p.type = elem;
        } else {
          lir::Type *arr = elem;
          for (auto it = dims.rbegin(); it != dims.rend(); ++it)
            arr = ctx_.arrayTy(arr, static_cast<uint64_t>(*it));
          p.arrayType = cast<lir::ArrayType>(arr);
          p.type = ctx_.ptrTy(arr);
        }
        params.push_back(p);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");

    std::vector<lir::Type *> paramTypes;
    for (const Param &p : params)
      paramTypes.push_back(p.type);
    fn_ = module_->createFunction(ctx_.fnTy(ctx_.voidTy(), paramTypes),
                                  name.text);
    lir::BasicBlock *entry = fn_->createBlock("entry");
    builder_.setInsertPoint(entry);

    vars_.clear();
    argIndexByName_.clear();
    for (unsigned i = 0; i < params.size(); ++i) {
      lir::Argument *arg = fn_->arg(i);
      arg->setName(params[i].name);
      argIndexByName_[params[i].name] = i;
      VarInfo info;
      if (params[i].arrayType) {
        arg->attrs().insert("noalias");
        info.storage = arg;
        info.valueType = params[i].scalarType;
        info.arrayType = params[i].arrayType;
      } else {
        // C scalars are mutable locals initialized from the argument.
        lir::Instruction *slot =
            builder_.createAlloca(params[i].scalarType, params[i].name +
                                                            ".addr");
        builder_.createStore(arg, slot);
        info.storage = slot;
        info.valueType = params[i].scalarType;
      }
      vars_[params[i].name] = info;
    }

    expect(Tok::LBrace, "'{'");
    parseStatements();
    expect(Tok::RBrace, "'}'");
    builder_.createRet();
  }

  /// Parses statements until the closing '}' of the current scope.
  void parseStatements() {
    while (lex_.cur().kind != Tok::RBrace && lex_.cur().kind != Tok::Eof &&
           !diags_.hadError()) {
      parseStatement();
    }
  }

  void parseStatement() {
    if (lex_.cur().kind == Tok::Pragma) {
      handlePragma(lex_.take().text);
      return;
    }
    if (lex_.cur().kind == Tok::Ident && lex_.cur().text == "for") {
      parseFor();
      return;
    }
    if (atType()) {
      parseDeclaration();
      return;
    }
    // Assignment: lvalue '=' expr ';'
    Token name = expect(Tok::Ident, "identifier");
    auto it = vars_.find(name.text);
    if (it == vars_.end()) {
      diags_.error("hls-frontend: unknown variable " + name.text, name.loc);
      return;
    }
    lir::Value *addr = parseLValueAddress(it->second);
    expect(Tok::Assign, "'='");
    lir::Value *value = parseExpr();
    expect(Tok::Semi, "';'");
    if (value)
      builder_.createStore(coerce(value, it->second.valueType), addr);
  }

  void parseDeclaration() {
    Token typeTok = lex_.take();
    lir::Type *elem = parseCType(typeTok.text);
    Token name = expect(Tok::Ident, "variable name");
    // Array declaration?
    std::vector<int64_t> dims;
    while (accept(Tok::LBracket)) {
      Token dim = expect(Tok::Int, "array dimension");
      expect(Tok::RBracket, "']'");
      dims.push_back(dim.intValue);
    }
    VarInfo info;
    info.valueType = elem;
    if (!dims.empty()) {
      lir::Type *arr = elem;
      for (auto it = dims.rbegin(); it != dims.rend(); ++it)
        arr = ctx_.arrayTy(arr, static_cast<uint64_t>(*it));
      info.arrayType = cast<lir::ArrayType>(arr);
      info.storage = createEntryAlloca(arr, name.text);
      vars_[name.text] = info;
      expect(Tok::Semi, "';'");
      return;
    }
    info.storage = createEntryAlloca(elem, name.text + ".addr");
    vars_[name.text] = info;
    if (accept(Tok::Assign)) {
      lir::Value *value = parseExpr();
      if (value)
        builder_.createStore(coerce(value, elem), info.storage);
    }
    expect(Tok::Semi, "';'");
  }

  lir::Instruction *createEntryAlloca(lir::Type *type,
                                      const std::string &name) {
    lir::BasicBlock *entry = fn_->entry();
    IRBuilder entryBuilder(ctx_);
    entryBuilder.setInsertPoint(entry, entry->firstNonPhi());
    return entryBuilder.createAlloca(type, name);
  }

  /// Parses optional subscripts after an identifier and returns the
  /// address to load/store.
  lir::Value *parseLValueAddress(const VarInfo &info) {
    if (!info.arrayType)
      return info.storage;
    std::vector<lir::Value *> indices{ctx_.constI32(0)};
    while (accept(Tok::LBracket)) {
      lir::Value *idx = parseExpr();
      expect(Tok::RBracket, "']'");
      indices.push_back(idx ? idx : static_cast<lir::Value *>(
                                        ctx_.constI32(0)));
    }
    return builder_.createGEP(info.arrayType, info.storage, indices,
                              "arrayidx");
  }

  // --- expressions ---

  lir::Value *coerce(lir::Value *value, lir::Type *to) {
    if (!value || value->type() == to)
      return value;
    if (value->type()->isInteger() && to->isFloatingPoint())
      return builder_.createCast(Opcode::SIToFP, value, to, "conv");
    if (value->type()->isFloatingPoint() && to->isInteger())
      return builder_.createCast(Opcode::FPToSI, value, to, "conv");
    if (value->type()->isInteger() && to->isInteger()) {
      unsigned from = cast<lir::IntType>(value->type())->width();
      unsigned toW = cast<lir::IntType>(to)->width();
      return builder_.createCast(from < toW ? Opcode::SExt : Opcode::Trunc,
                                 value, to, "conv");
    }
    if (value->type()->isFloatingPoint() && to->isFloatingPoint())
      return builder_.createCast(value->type()->sizeInBytes() <
                                         to->sizeInBytes()
                                     ? Opcode::FPExt
                                     : Opcode::FPTrunc,
                                 value, to, "conv");
    diags_.error("hls-frontend: cannot convert between types");
    return value;
  }

  /// Usual arithmetic conversions for a binary op.
  void usualConversions(lir::Value *&lhs, lir::Value *&rhs) {
    if (!lhs || !rhs)
      return;
    if (lhs->type() == rhs->type())
      return;
    // Prefer double > float > wider int.
    auto rankOf = [&](lir::Type *t) {
      if (t->kind() == lir::Type::Kind::Double)
        return 100;
      if (t->kind() == lir::Type::Kind::Float)
        return 90;
      return static_cast<int>(cast<lir::IntType>(t)->width());
    };
    if (rankOf(lhs->type()) >= rankOf(rhs->type()))
      rhs = coerce(rhs, lhs->type());
    else
      lhs = coerce(lhs, rhs->type());
  }

  lir::Value *parseExpr() { return parseTernary(); }

  lir::Value *parseTernary() {
    lir::Value *cond = parseComparison();
    if (!accept(Tok::Question))
      return cond;
    lir::Value *t = parseExpr();
    expect(Tok::Colon, "':'");
    lir::Value *f = parseExpr();
    if (!cond || !t || !f)
      return nullptr;
    usualConversions(t, f);
    cond = coerce(cond, ctx_.i1());
    return builder_.createSelect(cond, t, f, "cond");
  }

  lir::Value *parseComparison() {
    lir::Value *lhs = parseAddSub();
    Tok k = lex_.cur().kind;
    if (k != Tok::Lt && k != Tok::Le && k != Tok::Gt && k != Tok::Ge &&
        k != Tok::EqEq && k != Tok::NotEq)
      return lhs;
    lex_.advance();
    lir::Value *rhs = parseAddSub();
    if (!lhs || !rhs)
      return nullptr;
    usualConversions(lhs, rhs);
    bool isFP = lhs->type()->isFloatingPoint();
    lir::CmpPred pred;
    switch (k) {
    case Tok::Lt: pred = isFP ? lir::CmpPred::OLT : lir::CmpPred::SLT; break;
    case Tok::Le: pred = isFP ? lir::CmpPred::OLE : lir::CmpPred::SLE; break;
    case Tok::Gt: pred = isFP ? lir::CmpPred::OGT : lir::CmpPred::SGT; break;
    case Tok::Ge: pred = isFP ? lir::CmpPred::OGE : lir::CmpPred::SGE; break;
    case Tok::EqEq: pred = isFP ? lir::CmpPred::OEQ : lir::CmpPred::EQ; break;
    default: pred = isFP ? lir::CmpPred::ONE : lir::CmpPred::NE; break;
    }
    return isFP ? builder_.createFCmp(pred, lhs, rhs, "cmp")
                : builder_.createICmp(pred, lhs, rhs, "cmp");
  }

  lir::Value *parseAddSub() {
    lir::Value *lhs = parseMulDiv();
    while (lex_.cur().kind == Tok::Plus || lex_.cur().kind == Tok::Minus) {
      bool isAdd = lex_.take().kind == Tok::Plus;
      lir::Value *rhs = parseMulDiv();
      if (!lhs || !rhs)
        return nullptr;
      usualConversions(lhs, rhs);
      bool isFP = lhs->type()->isFloatingPoint();
      Opcode op = isFP ? (isAdd ? Opcode::FAdd : Opcode::FSub)
                       : (isAdd ? Opcode::Add : Opcode::Sub);
      lhs = builder_.createBinOp(op, lhs, rhs, isAdd ? "add" : "sub");
    }
    return lhs;
  }

  lir::Value *parseMulDiv() {
    lir::Value *lhs = parseUnary();
    while (lex_.cur().kind == Tok::Star || lex_.cur().kind == Tok::Slash ||
           lex_.cur().kind == Tok::Percent) {
      Tok k = lex_.take().kind;
      lir::Value *rhs = parseUnary();
      if (!lhs || !rhs)
        return nullptr;
      usualConversions(lhs, rhs);
      bool isFP = lhs->type()->isFloatingPoint();
      Opcode op;
      if (k == Tok::Star)
        op = isFP ? Opcode::FMul : Opcode::Mul;
      else if (k == Tok::Slash)
        op = isFP ? Opcode::FDiv : Opcode::SDiv;
      else
        op = Opcode::SRem;
      lhs = builder_.createBinOp(op, lhs, rhs, "bin");
    }
    return lhs;
  }

  lir::Value *parseUnary() {
    if (accept(Tok::Minus)) {
      lir::Value *v = parseUnary();
      if (!v)
        return nullptr;
      if (v->type()->isFloatingPoint())
        return builder_.createFNeg(v, "neg");
      return builder_.createBinOp(
          Opcode::Sub, ctx_.constInt(cast<lir::IntType>(v->type()), 0), v,
          "neg");
    }
    return parsePrimary();
  }

  lir::Value *parsePrimary() {
    const Token &t = lex_.cur();
    if (t.kind == Tok::Int) {
      Token v = lex_.take();
      // C literal typing: a decimal literal keeps type int only when it
      // fits; otherwise it is (long) long. Truncating here would silently
      // fold e.g. INT64_MAX to -1.
      if (v.intValue >= INT32_MIN && v.intValue <= INT32_MAX)
        return ctx_.constI32(static_cast<int32_t>(v.intValue));
      return ctx_.constInt(ctx_.i64(), v.intValue);
    }
    if (t.kind == Tok::Float) {
      Token v = lex_.take();
      return ctx_.constFP(ctx_.doubleTy(), v.fpValue);
    }
    if (t.kind == Tok::LParen) {
      lex_.advance();
      // Cast or parenthesized expression.
      if (atType()) {
        lir::Type *to = parseCType(lex_.take().text);
        expect(Tok::RParen, "')'");
        lir::Value *v = parseUnary();
        return coerce(v, to);
      }
      lir::Value *v = parseExpr();
      expect(Tok::RParen, "')'");
      return v;
    }
    if (t.kind == Tok::Ident) {
      Token name = lex_.take();
      // math.h non-finite constant macros (the emitter's spelling for
      // folded inf/nan values).
      if (name.text == "INFINITY")
        return ctx_.constFP(ctx_.doubleTy(),
                            std::numeric_limits<double>::infinity());
      if (name.text == "NAN")
        return ctx_.constFP(ctx_.doubleTy(),
                            std::numeric_limits<double>::quiet_NaN());
      if (lex_.cur().kind == Tok::LParen)
        return parseCall(name.text);
      auto it = vars_.find(name.text);
      if (it == vars_.end()) {
        diags_.error("hls-frontend: unknown variable " + name.text,
                     name.loc);
        return nullptr;
      }
      const VarInfo &info = it->second;
      if (info.arrayType && lex_.cur().kind != Tok::LBracket)
        return info.storage; // array decays to pointer
      lir::Value *addr = parseLValueAddress(info);
      return builder_.createLoad(info.valueType, addr, name.text + ".val");
    }
    diags_.error(strfmt("hls-frontend: unexpected token '%s' in expression",
                        t.text.c_str()),
                 t.loc);
    lex_.advance();
    return nullptr;
  }

  lir::Value *parseCall(const std::string &name) {
    expect(Tok::LParen, "'('");
    std::vector<lir::Value *> args;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        lir::Value *arg = parseExpr();
        if (!arg)
          return nullptr;
        args.push_back(arg);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");
    // Math library calls map onto the HLS math cores.
    static const std::map<std::string, const char *> mathMap = {
        {"sqrt", "sqrt"}, {"exp", "exp"},  {"fabs", "fabs"},
        {"log", "log"},   {"sin", "sin"},  {"cos", "cos"},
        {"pow", "pow"},   {"sqrtf", "sqrt"}};
    auto it = mathMap.find(name);
    if (it != mathMap.end() && !args.empty()) {
      lir::Value *arg0 = coerce(args[0], ctx_.doubleTy());
      std::vector<lir::Value *> callArgs{arg0};
      if (args.size() > 1)
        callArgs.push_back(coerce(args[1], ctx_.doubleTy()));
      lir::Function *callee =
          lir::getHlsMathFunction(*module_, it->second, ctx_.doubleTy());
      return builder_.createCall(callee, callArgs, name);
    }
    diags_.error("hls-frontend: call to unsupported function " + name);
    return nullptr;
  }

  // --- loops & pragmas ---

  void parseFor() {
    lex_.advance(); // 'for'
    expect(Tok::LParen, "'('");
    Token intKw = expect(Tok::Ident, "'int'");
    (void)intKw;
    Token ivName = expect(Tok::Ident, "loop variable");
    expect(Tok::Assign, "'='");
    lir::Value *init = parseExpr();
    expect(Tok::Semi, "';'");
    Token condVar = expect(Tok::Ident, "loop variable");
    if (condVar.text != ivName.text)
      diags_.error("hls-frontend: loop condition must test the loop var",
                   condVar.loc);
    bool strict = true;
    if (accept(Tok::Lt))
      strict = true;
    else if (accept(Tok::Le))
      strict = false;
    else
      diags_.error("hls-frontend: loop condition must be < or <=",
                   lex_.cur().loc);
    lir::Value *bound = parseExpr();
    expect(Tok::Semi, "';'");
    Token stepVar = expect(Tok::Ident, "loop variable");
    if (stepVar.text != ivName.text)
      diags_.error("hls-frontend: loop step must update the loop var",
                   stepVar.loc);
    expect(Tok::PlusAssign, "'+='");
    lir::Value *step = parseExpr();
    expect(Tok::RParen, "')'");
    expect(Tok::LBrace, "'{'");

    // The loop variable is a fresh local (scoped); shadowing restored at
    // the end.
    auto shadow = vars_.find(ivName.text);
    std::optional<VarInfo> shadowed;
    if (shadow != vars_.end())
      shadowed = shadow->second;
    VarInfo ivInfo;
    ivInfo.valueType = ctx_.i32();
    ivInfo.storage = createEntryAlloca(ctx_.i32(), ivName.text + ".addr");
    vars_[ivName.text] = ivInfo;

    if (init)
      builder_.createStore(coerce(init, ctx_.i32()), ivInfo.storage);

    lir::BasicBlock *header = fn_->createBlock("for.cond");
    lir::BasicBlock *body = fn_->createBlock("for.body");
    lir::BasicBlock *exit = fn_->createBlock("for.end");
    builder_.createBr(header);

    builder_.setInsertPoint(header);
    lir::Value *iv =
        builder_.createLoad(ctx_.i32(), ivInfo.storage, ivName.text);
    lir::Value *cmp = builder_.createICmp(
        strict ? lir::CmpPred::SLT : lir::CmpPred::SLE, iv,
        coerce(bound, ctx_.i32()), "loopcond");
    builder_.createCondBr(cmp, body, exit);

    builder_.setInsertPoint(body);
    // Pragmas immediately inside the loop body configure this loop.
    PragmaInfo pragmas;
    while (lex_.cur().kind == Tok::Pragma)
      parseLoopPragma(lex_.take().text, pragmas);

    parseStatements();
    expect(Tok::RBrace, "'}'");

    // Latch: iv += step; back to the header.
    lir::Value *ivAgain =
        builder_.createLoad(ctx_.i32(), ivInfo.storage, ivName.text);
    lir::Value *ivNext = builder_.createBinOp(
        Opcode::Add, ivAgain, coerce(step, ctx_.i32()), ivName.text + ".next");
    builder_.createStore(ivNext, ivInfo.storage);
    lir::Instruction *latch = builder_.createBr(header);
    if (pragmas.pipelineII)
      latch->setMetadata("xlx.pipeline",
                         lir::MDNode::ofInt(*pragmas.pipelineII));
    if (pragmas.unrollFactor)
      latch->setMetadata("xlx.unroll",
                         lir::MDNode::ofInt(*pragmas.unrollFactor));
    // Trip-count hint when the bounds are literal (frontends compute it).
    if (auto *initC = dyn_cast<lir::ConstantInt>(init ? init : nullptr)) {
      if (auto *boundC = dyn_cast<lir::ConstantInt>(bound)) {
        if (auto *stepC = dyn_cast<lir::ConstantInt>(step)) {
          int64_t span = boundC->value() - initC->value() + (strict ? 0 : 1);
          if (stepC->value() > 0 && span > 0)
            latch->setMetadata(
                "xlx.tripcount",
                lir::MDNode::ofInt((span + stepC->value() - 1) /
                                   stepC->value()));
        }
      }
    }

    builder_.setInsertPoint(exit);
    if (shadowed)
      vars_[ivName.text] = *shadowed;
    else
      vars_.erase(ivName.text);
  }

  void handlePragma(const std::string &line) {
    // Function-scope pragmas: dataflow, array_partition.
    std::vector<std::string> words = splitString(line, ' ');
    if (words.size() >= 3 && words[2] == "dataflow") {
      fn_->attrs().insert("xlx.dataflow");
      return;
    }
    if (words.size() >= 3 && words[2] == "array_partition") {
      std::string variable, kind = "cyclic";
      int64_t factor = 1, dim = 1;
      for (const std::string &word : words) {
        if (startsWith(word, "variable="))
          variable = word.substr(9);
        else if (startsWith(word, "factor="))
          factor = std::stoll(word.substr(7));
        else if (startsWith(word, "dim="))
          dim = std::stoll(word.substr(4));
        else if (word == "cyclic" || word == "block")
          kind = word;
      }
      auto it = argIndexByName_.find(variable);
      if (it == argIndexByName_.end()) {
        diags_.warning("hls-frontend: array_partition on unknown variable " +
                       variable);
        return;
      }
      lir::Argument *arg = fn_->arg(it->second);
      auto nodeIt = arg->metadata().find("xlx.array_partition");
      lir::MDNode *node;
      if (nodeIt == arg->metadata().end()) {
        auto fresh = std::make_unique<lir::MDNode>();
        node = fresh.get();
        arg->metadata()["xlx.array_partition"] = std::move(fresh);
      } else {
        node = nodeIt->second.get();
      }
      auto triple = std::make_unique<lir::MDNode>();
      triple->addInt(dim - 1); // back to 0-based
      triple->addInt(factor);
      triple->addString(kind);
      node->addNode(std::move(triple));
      return;
    }
    diags_.warning("hls-frontend: ignored pragma: " + line);
  }

  void parseLoopPragma(const std::string &line, PragmaInfo &out) {
    std::vector<std::string> words = splitString(line, ' ');
    for (size_t i = 0; i < words.size(); ++i) {
      if (words[i] == "pipeline") {
        out.pipelineII = 1;
        for (const std::string &word : words)
          if (startsWith(word, "II="))
            out.pipelineII = std::stoll(word.substr(3));
      } else if (words[i] == "unroll") {
        out.unrollFactor = 0; // full unroll by default
        for (const std::string &word : words)
          if (startsWith(word, "factor="))
            out.unrollFactor = std::stoll(word.substr(7));
        if (*out.unrollFactor == 0)
          out.unrollFactor = 1 << 30; // "full": clamped to trip count later
      }
    }
  }

  Lexer lex_;
  lir::LContext &ctx_;
  DiagnosticEngine &diags_;
  IRBuilder builder_;
  lir::Module *module_ = nullptr;
  lir::Function *fn_ = nullptr;
  std::map<std::string, VarInfo> vars_;
  std::map<std::string, unsigned> argIndexByName_;
};

} // namespace

std::unique_ptr<lir::Module> parseHlsCpp(std::string_view source,
                                         lir::LContext &ctx,
                                         DiagnosticEngine &diags,
                                         bool optimize) {
  Frontend frontend(source, ctx, diags);
  std::unique_ptr<lir::Module> module = frontend.run();
  if (!module || !optimize)
    return module;
  // The frontend's "O2-lite": promote locals, canonicalize loops.
  lir::PassManager pm(/*verifyEach=*/true);
  pm.add(lir::createMem2RegPass());
  pm.add(lir::createInstCombinePass());
  pm.add(lir::createCSEPass());
  pm.add(lir::createDCEPass());
  pm.add(lir::createSimplifyCFGPass());
  pm.add(lir::createLICMPass());
  pm.add(lir::createDCEPass());
  if (!pm.run(*module, diags))
    return nullptr;
  return module;
}

} // namespace mha::hlscpp
