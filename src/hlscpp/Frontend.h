// Frontend.h - a C-subset frontend modelling the HLS tool's C++ parser.
//
// Parses the HLS C++ produced by the emitter (functions over static
// arrays, perfect for-loops, #pragma HLS directives, scalar locals) and
// generates *legacy-dialect* MiniLLVM directly: typed pointers, shaped
// GEPs, xlx.* directive metadata — the native output of an old-LLVM-based
// HLS frontend. Locals start as allocas; the embedded "O2-lite" pipeline
// (mem2reg, simplifycfg, instcombine, cse, dce) then promotes them, as
// clang+opt do inside the real tool.
#pragma once

#include "lir/Function.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace mha::hlscpp {

/// Parses `source` into a MiniLLVM module in the HLS frontend's dialect.
/// Returns nullptr on error. When `optimize` is set, runs the frontend's
/// standard cleanup pipeline (canonical loop form for the scheduler).
std::unique_ptr<lir::Module> parseHlsCpp(std::string_view source,
                                         lir::LContext &ctx,
                                         DiagnosticEngine &diags,
                                         bool optimize = true);

} // namespace mha::hlscpp
