// Emitter.h - ScaleHLS-style HLS C++ code generation (the baseline flow).
//
// Walks a MiniMLIR module at the *affine* level and prints Vitis-ready
// C++: array parameters, perfect loop nests, and #pragma HLS directives
// derived from the hls.* attributes. This is the path the paper compares
// against: MLIR -> HLS C++ -> (HLS frontend) -> HLS IR.
#pragma once

#include "mir/Ops.h"
#include "support/Diagnostics.h"

#include <string>

namespace mha::hlscpp {

/// Emits HLS C++ for every function in `module`. Returns empty on error.
std::string emitHlsCpp(mir::ModuleOp module, DiagnosticEngine &diags);

} // namespace mha::hlscpp
