// DesignSpace.h - explicit model of one kernel's directive design space.
//
// The ScaleHLS-style knobs (pipeline II, unroll factor, array-partition
// factor, function-level dataflow) span a grid of KernelConfigs; not every
// grid cell is a distinct design. This class enumerates the *valid,
// deduplicated* points:
//
//  * unroll factors are clamped to the largest divisor of the kernel's
//    innermost trip count (the same rule the virtual HLS backend applies
//    via lir::clampUnrollFactor), so requesting 8 on a trip-30 loop lands
//    on the same design as requesting 6;
//  * dataflow is only explored on kernels with more than one top-level
//    loop nest (on a single nest the directive is a no-op);
//  * a config whose knobs are all defaults is the unoptimized baseline,
//    canonicalized to applyDirectives=false.
//
// Canonicalization gives every design a stable string key (configKey) that
// the QoR cache, the Pareto archive and the search strategies share.
#pragma once

#include "flow/Kernels.h"

#include <optional>
#include <string_view>

namespace mha::dse {

struct DesignSpaceOptions {
  /// Candidate pipeline IIs for innermost compute loops (0 = no pipeline
  /// directive).
  std::vector<int64_t> pipelineIIs = {0, 1, 2};
  /// Candidate unroll factors (clamped to divisors of the innermost trip
  /// count).
  std::vector<int64_t> unrollFactors = {1, 2, 4, 8};
  /// Candidate cyclic array-partition factors.
  std::vector<int64_t> partitionFactors = {1, 2, 4, 8};
  /// Explore the dataflow directive (honoured only on multi-nest kernels).
  bool exploreDataflow = true;
};

class DesignSpace {
public:
  explicit DesignSpace(const flow::KernelSpec &spec,
                       DesignSpaceOptions options = {});

  const flow::KernelSpec &spec() const { return *spec_; }
  const DesignSpaceOptions &options() const { return options_; }

  /// All valid canonical points, deterministic enumeration order (the
  /// baseline first, then the grid in ii-major order).
  const std::vector<flow::KernelConfig> &points() const { return points_; }
  size_t size() const { return points_.size(); }

  /// Minimum trip count over the kernel's innermost affine loops (what
  /// unroll clamping divides against).
  int64_t minInnermostTripCount() const { return minInnerTrip_; }
  /// More than one top-level loop nest (dataflow is meaningful).
  bool multiNest() const { return multiNest_; }

  /// The unoptimized starting point (applyDirectives=false).
  flow::KernelConfig baseline() const;

  /// Maps any config onto its canonical design: clamps the unroll factor,
  /// drops dataflow on single-nest kernels, folds all-default knobs into
  /// the baseline.
  flow::KernelConfig canonicalize(const flow::KernelConfig &config) const;

  /// True when `config` canonicalizes to an enumerated point.
  bool contains(const flow::KernelConfig &config) const;

  /// Enumerated points differing from canonicalize(config) in exactly one
  /// knob (ii, unroll, partition, dataflow) — the greedy neighborhood.
  /// Deterministic order (enumeration order).
  std::vector<flow::KernelConfig>
  neighbors(const flow::KernelConfig &config) const;

private:
  const flow::KernelSpec *spec_;
  DesignSpaceOptions options_;
  std::vector<flow::KernelConfig> points_;
  std::vector<std::string> pointKeys_; // parallel to points_
  int64_t minInnerTrip_ = 1;
  bool multiNest_ = false;
};

/// Stable identity/cache key for a canonical config:
/// "ii=I|unroll=U|part=P|df=D|dir=A". Lexicographic comparison of keys is
/// the subsystem's deterministic tie-breaker.
std::string configKey(const flow::KernelConfig &config);

/// Inverse of configKey: reconstructs the config from its key, so the
/// persisted QoR cache (whose entries are keyed strings) can re-seed a
/// Pareto archive on --resume. Returns nullopt for malformed keys;
/// round-trips exactly (configKey(*parseConfigKey(k)) == k for keys
/// produced by configKey).
std::optional<flow::KernelConfig> parseConfigKey(std::string_view key);

} // namespace mha::dse
