#include "dse/DesignSpace.h"

#include "lir/transforms/LoopUnroll.h"
#include "mir/Ops.h"
#include "support/StringUtils.h"

#include <algorithm>

namespace mha::dse {

namespace {

/// Structural facts the space model needs: the kernel is built once (no
/// directives) and inspected — how tight is the innermost loop, and does
/// the function body hold more than one top-level nest?
struct KernelShape {
  int64_t minInnerTrip = 1;
  bool multiNest = false;
};

KernelShape inspectKernel(const flow::KernelSpec &spec) {
  KernelShape shape;
  flow::KernelConfig plain;
  plain.applyDirectives = false;
  mir::MContext mctx;
  mir::OwnedModule module = spec.build(mctx, plain);

  int64_t minTrip = 0;
  module.get().op->walk([&](mir::Operation *op) {
    if (!op->is(mir::ops::AffineFor))
      return;
    mir::ForOp loop = mir::ForOp::wrap(op);
    bool innermost = true;
    op->walk([&](mir::Operation *inner) {
      if (inner != op && inner->is(mir::ops::AffineFor))
        innermost = false;
    });
    if (!innermost)
      return;
    int64_t trip = loop.tripCount();
    if (trip > 0 && (minTrip == 0 || trip < minTrip))
      minTrip = trip;
  });
  shape.minInnerTrip = minTrip > 0 ? minTrip : 1;

  for (mir::FuncOp fn : module.get().funcs()) {
    int nests = 0;
    for (mir::Operation *op : fn.entryBlock()->opPtrs())
      if (op->is(mir::ops::AffineFor))
        ++nests;
    if (nests > 1)
      shape.multiNest = true;
  }
  return shape;
}

} // namespace

std::string configKey(const flow::KernelConfig &config) {
  return strfmt("ii=%lld|unroll=%lld|part=%lld|df=%d|dir=%d",
                static_cast<long long>(config.pipelineII),
                static_cast<long long>(config.unrollFactor),
                static_cast<long long>(config.partitionFactor),
                config.dataflow ? 1 : 0, config.applyDirectives ? 1 : 0);
}

std::optional<flow::KernelConfig> parseConfigKey(std::string_view key) {
  // "ii=I|unroll=U|part=P|df=D|dir=A", all fields required, in order.
  const std::string_view names[] = {"ii=", "unroll=", "part=", "df=", "dir="};
  int64_t values[5];
  for (size_t i = 0; i < 5; ++i) {
    if (key.substr(0, names[i].size()) != names[i])
      return std::nullopt;
    key.remove_prefix(names[i].size());
    size_t end = i + 1 < 5 ? key.find('|') : key.size();
    if (end == std::string_view::npos)
      return std::nullopt;
    std::optional<int64_t> value = parseInt(key.substr(0, end));
    if (!value)
      return std::nullopt;
    values[i] = *value;
    key.remove_prefix(i + 1 < 5 ? end + 1 : end);
  }
  if (!key.empty())
    return std::nullopt;
  if ((values[3] != 0 && values[3] != 1) || (values[4] != 0 && values[4] != 1))
    return std::nullopt;
  flow::KernelConfig config;
  config.pipelineII = values[0];
  config.unrollFactor = values[1];
  config.partitionFactor = values[2];
  config.dataflow = values[3] != 0;
  config.applyDirectives = values[4] != 0;
  return config;
}

DesignSpace::DesignSpace(const flow::KernelSpec &spec,
                         DesignSpaceOptions options)
    : spec_(&spec), options_(std::move(options)) {
  KernelShape shape = inspectKernel(spec);
  minInnerTrip_ = shape.minInnerTrip;
  multiNest_ = shape.multiNest;

  auto push = [&](const flow::KernelConfig &candidate) {
    flow::KernelConfig canonical = canonicalize(candidate);
    std::string key = configKey(canonical);
    if (std::find(pointKeys_.begin(), pointKeys_.end(), key) !=
        pointKeys_.end())
      return;
    pointKeys_.push_back(std::move(key));
    points_.push_back(canonical);
  };

  push(baseline());
  std::vector<bool> dataflows = {false};
  if (options_.exploreDataflow && multiNest_)
    dataflows.push_back(true);
  for (int64_t ii : options_.pipelineIIs)
    for (int64_t unroll : options_.unrollFactors)
      for (int64_t partition : options_.partitionFactors)
        for (bool dataflow : dataflows) {
          flow::KernelConfig config;
          config.pipelineII = ii;
          config.unrollFactor = unroll;
          config.partitionFactor = partition;
          config.dataflow = dataflow;
          push(config);
        }
}

flow::KernelConfig DesignSpace::baseline() const {
  flow::KernelConfig config;
  config.pipelineII = 0;
  config.unrollFactor = 1;
  config.partitionFactor = 1;
  config.dataflow = false;
  config.applyDirectives = false;
  return config;
}

flow::KernelConfig DesignSpace::canonicalize(
    const flow::KernelConfig &config) const {
  // Start from the all-off knobs — KernelConfig's defaults describe a
  // directive-applying configuration, not the unoptimized design.
  flow::KernelConfig out;
  out.pipelineII = 0;
  out.unrollFactor = 1;
  out.partitionFactor = 1;
  out.dataflow = false;
  if (config.applyDirectives) {
    out.pipelineII = std::max<int64_t>(0, config.pipelineII);
    out.unrollFactor = lir::clampUnrollFactor(
        minInnerTrip_, std::max<int64_t>(1, config.unrollFactor));
    out.partitionFactor = std::max<int64_t>(1, config.partitionFactor);
    out.dataflow = config.dataflow && multiNest_;
  }
  // All-default knobs are exactly the unoptimized design.
  out.applyDirectives = out.pipelineII > 0 || out.unrollFactor > 1 ||
                        out.partitionFactor > 1 || out.dataflow;
  if (!out.applyDirectives) {
    out.pipelineII = 0;
    out.unrollFactor = 1;
    out.partitionFactor = 1;
    out.dataflow = false;
  }
  return out;
}

bool DesignSpace::contains(const flow::KernelConfig &config) const {
  std::string key = configKey(canonicalize(config));
  return std::find(pointKeys_.begin(), pointKeys_.end(), key) !=
         pointKeys_.end();
}

std::vector<flow::KernelConfig>
DesignSpace::neighbors(const flow::KernelConfig &config) const {
  flow::KernelConfig self = canonicalize(config);
  std::vector<flow::KernelConfig> out;
  for (const flow::KernelConfig &candidate : points_) {
    int differing = 0;
    if (candidate.pipelineII != self.pipelineII)
      ++differing;
    if (candidate.unrollFactor != self.unrollFactor)
      ++differing;
    if (candidate.partitionFactor != self.partitionFactor)
      ++differing;
    if (candidate.dataflow != self.dataflow)
      ++differing;
    if (differing == 1)
      out.push_back(candidate);
  }
  return out;
}

} // namespace mha::dse
