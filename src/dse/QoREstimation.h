// QoREstimation.h - analytical QoR prediction for design points.
//
// The ScaleHLS lesson: design spaces become tractable when the explorer
// can *score* a point without synthesizing it. This class predicts a
// config's latency and resources directly from post-adaptor IR structure —
// no scheduling, no emission — using the same algebra the virtual HLS
// scheduler enforces (vhls/Estimate.h):
//
//   latency   = loop trip counts x achieved II, where the II is
//               max(target II, recurrence MII, port-limited MII) with the
//               recurrence scaled by the unroll factor and the port
//               pressure recomputed from the access residues under the
//               config's cyclic partition factor;
//   resources = FU allocation (ceil(ops/II) for pipelined bodies) +
//               TechLibrary per-unit costs, anchored to measured probes.
//
// Construction runs exactly two *probe* synthesis runs through the real
// flow — the unoptimized baseline and one pipelined point — and extracts a
// structural model (loop tree, trip counts, memory-access subscripts,
// per-class op counts) from the probe's kept-alive IR. Every subsequent
// estimate() is pure arithmetic over that model: microseconds instead of a
// full synthesis run, and safe to call concurrently from the evaluator's
// thread pool. Probes are real synthesis results and are exposed so the
// evaluator can seed its QoR cache with them.
#pragma once

#include "dse/Evaluator.h"

#include <memory>
#include <string>

namespace mha::dse {

class QoREstimation {
public:
  ~QoREstimation();

  /// Builds the model for `spec` by running the two probe synthesis runs
  /// with `flowOptions`. Returns nullptr (and sets `error`) when either
  /// probe fails to synthesize.
  static std::unique_ptr<QoREstimation>
  build(const flow::KernelSpec &spec, const flow::FlowOptions &flowOptions,
        std::string *error = nullptr);

  const flow::KernelSpec &spec() const { return *spec_; }

  /// Predicts the QoR of `config` analytically. Thread-safe and cheap
  /// (pure arithmetic over the extracted model). The result always has
  /// ok=true — the probes proved the kernel synthesizes.
  QoR estimate(const flow::KernelConfig &config) const;

  /// Synthesis runs spent building the model.
  static constexpr int64_t kProbeRuns = 2;

  /// The two measured probe points (real synthesis QoRs, cache-seedable).
  const flow::KernelConfig &baselineProbeConfig() const;
  const QoR &baselineProbeQoR() const;
  const flow::KernelConfig &pipelinedProbeConfig() const;
  const QoR &pipelinedProbeQoR() const;

private:
  QoREstimation();

  struct Model;
  const flow::KernelSpec *spec_ = nullptr;
  std::unique_ptr<Model> model_;
};

} // namespace mha::dse
