// Evaluator.h - QoR evaluation of design points with a config-keyed cache.
//
// The evaluator is the subsystem's only bridge to the adaptor flow: a
// design point goes through flow::runAdaptorFlow (plus optional bit-exact
// co-simulation) and comes back as a QoR tuple (latency + DSP/BRAM/LUT/FF).
// Every evaluation is wrapped in a telemetry span and counted by the
// dse.* statistics, so `--chrome-trace` shows one span per synthesized
// point and `--stats` reports the synthesis/cache-hit split.
//
// The QoR cache is keyed by kernel name + canonical config key
// (dse::configKey): revisiting a point — within one search, across
// strategies sharing an evaluator, or across processes via the JSON cache
// file (schema "mha.dse.cache.v1") — performs no synthesis. Concurrent
// requests for the same un-cached point synthesize once; late arrivals
// block on the in-flight entry and count as cache hits.
//
// evaluateAll() fans a batch of points out across the evaluator's
// ThreadPool and returns QoRs in input order.
//
// The *fast path* is estimate()/estimateAll(): analytical QoR prediction
// through a lazily-built QoREstimation model (two probe synthesis runs,
// then pure arithmetic per point). Estimates never enter the QoR cache —
// they are predictions, not measurements — but the probes are real
// synthesis results and seed the cache (unless co-simulation is on, since
// probes are not co-simulated). Estimator-guided strategies score whole
// spaces through the fast path and promote only predicted-frontier points
// to evaluate().
#pragma once

#include "dse/DesignSpace.h"
#include "flow/Flow.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

namespace mha::dse {

class QoREstimation;

/// Quality-of-result tuple for one design point.
struct QoR {
  bool ok = false;       // flow ran and the backend accepted the design
  bool cosimOk = true;   // bit-exact vs the host reference (when checked)
  int64_t latencyCycles = 0;
  int64_t dsp = 0;
  int64_t bram = 0;
  int64_t lut = 0;
  int64_t ff = 0;
  std::string error;     // first diagnostic line when !ok
};

struct EvaluatorOptions {
  /// Co-simulate every accepted design against the host reference; a
  /// mismatching design is recorded with cosimOk=false and never enters a
  /// Pareto archive.
  bool cosim = false;
  /// Worker threads for evaluateAll (0 = hardware concurrency).
  unsigned numThreads = 0;
  /// Options forwarded to flow::runAdaptorFlow.
  flow::FlowOptions flow;
};

class Evaluator {
public:
  Evaluator(const flow::KernelSpec &spec, EvaluatorOptions options = {});
  ~Evaluator();

  const flow::KernelSpec &spec() const { return *spec_; }

  /// Evaluates one design point (cached, thread-safe).
  QoR evaluate(const flow::KernelConfig &config);

  /// Evaluates a batch in parallel on the pool; results in input order.
  std::vector<QoR> evaluateAll(const std::vector<flow::KernelConfig> &configs);

  /// Analytically predicts one design point's QoR (fast path). Builds the
  /// estimator on first use (two probe synthesis runs); a point whose
  /// probes fail comes back with ok=false and the probe diagnostic.
  QoR estimate(const flow::KernelConfig &config);

  /// Predicts a batch on the pool; results in input order. The estimator
  /// build is serialized; the per-point arithmetic fans out.
  std::vector<QoR> estimateAll(const std::vector<flow::KernelConfig> &configs);

  /// The underlying estimator: built on first use (buildIfNeeded=true) or
  /// only returned if some estimate() already built it. nullptr when the
  /// probes failed (or it was never built).
  const QoREstimation *estimator(bool buildIfNeeded = true);

  /// Actual flow executions (cache misses) performed by this evaluator,
  /// probe runs included.
  int64_t synthRuns() const;
  /// Evaluations answered from the cache (including waits on in-flight
  /// synthesis of the same point).
  int64_t cacheHits() const;
  /// The subset of cacheHits that blocked on another thread's in-flight
  /// synthesis of the same point (tagged dse:cache-wait in traces, so
  /// waiters never book the producer's synthesis time as their own).
  int64_t cacheWaits() const;
  /// Analytical estimates served (estimate/estimateAll calls).
  int64_t estimates() const;
  /// Probe synthesis runs spent building the estimator (0 or 2).
  int64_t probeRuns() const;
  size_t cacheSize() const;

  /// Snapshot of all completed cache entries as (config key, QoR) in key
  /// order — what --resume warm-starts the Pareto archive from.
  std::vector<std::pair<std::string, QoR>> cachedResults() const;

  /// Renders the cache as JSON (schema "mha.dse.cache.v1", stable order).
  std::string cacheJson() const;
  /// Merges entries from a cache JSON document. Rejects documents with a
  /// different schema or kernel. Existing entries win on key collision.
  bool loadCacheJson(std::string_view text, std::string *error = nullptr);

  /// File round-trip for --resume: both validate the JSON side.
  bool saveCacheFile(const std::string &path, std::string *error = nullptr) const;
  bool loadCacheFile(const std::string &path, std::string *error = nullptr);

private:
  struct Entry {
    bool done = false;
    QoR qor;
  };

  QoR runFlow(const flow::KernelConfig &config, const std::string &key);
  void seedProbe(const flow::KernelConfig &config, const QoR &qor);

  const flow::KernelSpec *spec_;
  EvaluatorOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<std::string, Entry> cache_;
  int64_t synthRuns_ = 0;
  int64_t cacheHits_ = 0;
  int64_t cacheWaits_ = 0;
  int64_t probeRuns_ = 0;
  std::atomic<int64_t> estimates_{0};

  // Lazy estimator; estimatorMutex_ serializes the probe build only, and
  // estimatorReady_ lets the post-build fast path skip it entirely.
  std::mutex estimatorMutex_;
  bool estimatorBuilt_ = false;
  std::atomic<bool> estimatorReady_{false};
  std::string estimatorError_;
  std::unique_ptr<QoREstimation> estimator_;
};

} // namespace mha::dse
