// Evaluator.h - QoR evaluation of design points with a config-keyed cache.
//
// The evaluator is the subsystem's only bridge to the adaptor flow: a
// design point goes through flow::runAdaptorFlow (plus optional bit-exact
// co-simulation) and comes back as a QoR tuple (latency + DSP/BRAM/LUT/FF).
// Every evaluation is wrapped in a telemetry span and counted by the
// dse.* statistics, so `--chrome-trace` shows one span per synthesized
// point and `--stats` reports the synthesis/cache-hit split.
//
// The QoR cache is keyed by kernel name + canonical config key
// (dse::configKey): revisiting a point — within one search, across
// strategies sharing an evaluator, or across processes via the JSON cache
// file (schema "mha.dse.cache.v1") — performs no synthesis. Concurrent
// requests for the same un-cached point synthesize once; late arrivals
// block on the in-flight entry and count as cache hits.
//
// evaluateAll() fans a batch of points out across the evaluator's
// ThreadPool and returns QoRs in input order.
#pragma once

#include "dse/DesignSpace.h"
#include "flow/Flow.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

namespace mha::dse {

/// Quality-of-result tuple for one design point.
struct QoR {
  bool ok = false;       // flow ran and the backend accepted the design
  bool cosimOk = true;   // bit-exact vs the host reference (when checked)
  int64_t latencyCycles = 0;
  int64_t dsp = 0;
  int64_t bram = 0;
  int64_t lut = 0;
  int64_t ff = 0;
  std::string error;     // first diagnostic line when !ok
};

struct EvaluatorOptions {
  /// Co-simulate every accepted design against the host reference; a
  /// mismatching design is recorded with cosimOk=false and never enters a
  /// Pareto archive.
  bool cosim = false;
  /// Worker threads for evaluateAll (0 = hardware concurrency).
  unsigned numThreads = 0;
  /// Options forwarded to flow::runAdaptorFlow.
  flow::FlowOptions flow;
};

class Evaluator {
public:
  Evaluator(const flow::KernelSpec &spec, EvaluatorOptions options = {});

  const flow::KernelSpec &spec() const { return *spec_; }

  /// Evaluates one design point (cached, thread-safe).
  QoR evaluate(const flow::KernelConfig &config);

  /// Evaluates a batch in parallel on the pool; results in input order.
  std::vector<QoR> evaluateAll(const std::vector<flow::KernelConfig> &configs);

  /// Actual flow executions (cache misses) performed by this evaluator.
  int64_t synthRuns() const;
  /// Evaluations answered from the cache (including waits on in-flight
  /// synthesis of the same point).
  int64_t cacheHits() const;
  size_t cacheSize() const;

  /// Renders the cache as JSON (schema "mha.dse.cache.v1", stable order).
  std::string cacheJson() const;
  /// Merges entries from a cache JSON document. Rejects documents with a
  /// different schema or kernel. Existing entries win on key collision.
  bool loadCacheJson(std::string_view text, std::string *error = nullptr);

  /// File round-trip for --resume: both validate the JSON side.
  bool saveCacheFile(const std::string &path, std::string *error = nullptr) const;
  bool loadCacheFile(const std::string &path, std::string *error = nullptr);

private:
  struct Entry {
    bool done = false;
    QoR qor;
  };

  QoR runFlow(const flow::KernelConfig &config, const std::string &key);

  const flow::KernelSpec *spec_;
  EvaluatorOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<std::string, Entry> cache_;
  int64_t synthRuns_ = 0;
  int64_t cacheHits_ = 0;
};

} // namespace mha::dse
