#include "dse/Dse.h"

#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

namespace mha::dse {

namespace {

void appendPoint(std::string &out, const flow::KernelConfig &config,
                 const QoR &qor, const char *indent) {
  out += strfmt(
      "%s{\"ii\": %lld, \"unroll\": %lld, \"partition\": %lld, "
      "\"dataflow\": %s, \"baseline\": %s, \"ok\": %s, \"cosim_ok\": %s, "
      "\"latency\": %lld, \"dsp\": %lld, \"bram\": %lld, \"lut\": %lld, "
      "\"ff\": %lld}",
      indent, static_cast<long long>(config.pipelineII),
      static_cast<long long>(config.unrollFactor),
      static_cast<long long>(config.partitionFactor),
      config.dataflow ? "true" : "false",
      config.applyDirectives ? "false" : "true", qor.ok ? "true" : "false",
      qor.cosimOk ? "true" : "false",
      static_cast<long long>(qor.latencyCycles),
      static_cast<long long>(qor.dsp), static_cast<long long>(qor.bram),
      static_cast<long long>(qor.lut), static_cast<long long>(qor.ff));
}

} // namespace

std::string DseResult::json() const {
  std::string out;
  out += "{\n  \"schema\": \"mha.dse.v1\",\n";
  out += strfmt("  \"kernel\": \"%s\",\n", json::escape(kernel).c_str());
  out += strfmt("  \"strategy\": \"%s\",\n", json::escape(strategy).c_str());
  out += strfmt("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(seed));
  out += strfmt("  \"budget\": %zu,\n", budget);
  out += strfmt("  \"space_size\": %zu,\n", spaceSize);
  out += strfmt("  \"evaluated\": %zu,\n", evaluated);
  out += strfmt("  \"synth_runs\": %lld,\n",
                static_cast<long long>(synthRuns));
  out += strfmt("  \"cache_hits\": %lld,\n",
                static_cast<long long>(cacheHits));
  out += "  \"objectives\": [";
  for (size_t i = 0; i < objectives.size(); ++i)
    out += strfmt("%s\"%s\"", i ? ", " : "", objectiveName(objectives[i]));
  out += "],\n  \"points\": [";
  for (size_t i = 0; i < visited.size(); ++i) {
    out += i ? ",\n" : "\n";
    appendPoint(out, visited[i].config, visited[i].qor, "    ");
  }
  out += "\n  ],\n  \"pareto\": [";
  for (size_t i = 0; i < pareto.size(); ++i) {
    out += i ? ",\n" : "\n";
    appendPoint(out, pareto[i].config, pareto[i].qor, "    ");
  }
  out += "\n  ]\n}\n";
  return out;
}

std::optional<DseResult>
runDse(const DesignSpace &space, Evaluator &evaluator,
       std::string_view strategyName, const StrategyOptions &options,
       const std::vector<Objective> &objectives) {
  std::unique_ptr<SearchStrategy> strategy = createStrategy(strategyName);
  if (!strategy)
    return std::nullopt;

  telemetry::Span span(strfmt("dse:%s:%s", strategy->name(),
                              space.spec().name.c_str()),
                       "dse",
                       {{"kernel", space.spec().name},
                        {"strategy", strategy->name()}});
  ParetoArchive archive(objectives);
  StrategyResult search = strategy->run(space, evaluator, archive, options);

  DseResult result;
  result.kernel = space.spec().name;
  result.strategy = search.strategy;
  result.seed = options.seed;
  result.budget = options.budget;
  result.spaceSize = space.size();
  result.evaluated = search.evaluated;
  result.synthRuns = evaluator.synthRuns();
  result.cacheHits = evaluator.cacheHits();
  result.objectives = objectives;
  result.visited = std::move(search.visited);
  result.pareto = archive.entries();
  return result;
}

} // namespace mha::dse
