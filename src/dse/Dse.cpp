#include "dse/Dse.h"

#include "dse/QoREstimation.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cmath>
#include <set>

namespace mha::dse {

namespace {

void appendPoint(std::string &out, const flow::KernelConfig &config,
                 const QoR &qor, const char *indent) {
  out += strfmt(
      "%s{\"ii\": %lld, \"unroll\": %lld, \"partition\": %lld, "
      "\"dataflow\": %s, \"baseline\": %s, \"ok\": %s, \"cosim_ok\": %s, "
      "\"latency\": %lld, \"dsp\": %lld, \"bram\": %lld, \"lut\": %lld, "
      "\"ff\": %lld}",
      indent, static_cast<long long>(config.pipelineII),
      static_cast<long long>(config.unrollFactor),
      static_cast<long long>(config.partitionFactor),
      config.dataflow ? "true" : "false",
      config.applyDirectives ? "false" : "true", qor.ok ? "true" : "false",
      qor.cosimOk ? "true" : "false",
      static_cast<long long>(qor.latencyCycles),
      static_cast<long long>(qor.dsp), static_cast<long long>(qor.bram),
      static_cast<long long>(qor.lut), static_cast<long long>(qor.ff));
}

} // namespace

std::string DseResult::json() const {
  std::string out;
  out += "{\n  \"schema\": \"mha.dse.v1\",\n";
  out += strfmt("  \"kernel\": \"%s\",\n", json::escape(kernel).c_str());
  out += strfmt("  \"strategy\": \"%s\",\n", json::escape(strategy).c_str());
  out += strfmt("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(seed));
  out += strfmt("  \"budget\": %zu,\n", budget);
  out += strfmt("  \"space_size\": %zu,\n", spaceSize);
  out += strfmt("  \"evaluated\": %zu,\n", evaluated);
  out += strfmt("  \"estimated\": %zu,\n", estimated);
  out += strfmt("  \"warm_started\": %zu,\n", warmStarted);
  out += strfmt("  \"synth_runs\": %lld,\n",
                static_cast<long long>(synthRuns));
  out += strfmt("  \"cache_hits\": %lld,\n",
                static_cast<long long>(cacheHits));
  out += strfmt("  \"cache_waits\": %lld,\n",
                static_cast<long long>(cacheWaits));
  out += strfmt("  \"estimator\": {\"used\": %s, \"probe_runs\": %lld, "
                "\"estimates\": %lld, \"error_samples\": %zu, "
                "\"latency_mean_abs_pct\": %s, \"latency_max_abs_pct\": %s, "
                "\"dsp_mean_abs_pct\": %s, \"bram_mean_abs_pct\": %s, "
                "\"lut_mean_abs_pct\": %s},\n",
                estimator.used ? "true" : "false",
                static_cast<long long>(estimator.probeRuns),
                static_cast<long long>(estimator.estimates),
                estimator.errorSamples,
                json::shortestDouble(estimator.latencyMeanAbsPct).c_str(),
                json::shortestDouble(estimator.latencyMaxAbsPct).c_str(),
                json::shortestDouble(estimator.dspMeanAbsPct).c_str(),
                json::shortestDouble(estimator.bramMeanAbsPct).c_str(),
                json::shortestDouble(estimator.lutMeanAbsPct).c_str());
  out += "  \"objectives\": [";
  for (size_t i = 0; i < objectives.size(); ++i)
    out += strfmt("%s\"%s\"", i ? ", " : "", objectiveName(objectives[i]));
  out += "],\n  \"points\": [";
  for (size_t i = 0; i < visited.size(); ++i) {
    out += i ? ",\n" : "\n";
    appendPoint(out, visited[i].config, visited[i].qor, "    ");
  }
  out += "\n  ],\n  \"pareto\": [";
  for (size_t i = 0; i < pareto.size(); ++i) {
    out += i ? ",\n" : "\n";
    appendPoint(out, pareto[i].config, pareto[i].qor, "    ");
  }
  out += "\n  ]\n}\n";
  return out;
}

std::optional<DseResult>
runDse(const DesignSpace &space, Evaluator &evaluator,
       std::string_view strategyName, const StrategyOptions &options,
       const std::vector<Objective> &objectives) {
  std::unique_ptr<SearchStrategy> strategy = createStrategy(strategyName);
  if (!strategy)
    return std::nullopt;

  telemetry::Span span(strfmt("dse:%s:%s", strategy->name(),
                              space.spec().name.c_str()),
                       "dse",
                       {{"kernel", space.spec().name},
                        {"strategy", strategy->name()}});
  ParetoArchive archive(objectives);

  // Warm start (--resume): re-seed the archive from every completed cache
  // entry whose key parses back to a point of this space. The previous
  // run's frontier survives even if this run's strategy never revisits it.
  size_t warmStarted = 0;
  if (options.warmStart) {
    for (const auto &[key, qor] : evaluator.cachedResults()) {
      std::optional<flow::KernelConfig> config = parseConfigKey(key);
      if (!config || !space.contains(*config))
        continue;
      if (archive.insert(*config, qor))
        ++warmStarted;
    }
  }

  StrategyResult search = strategy->run(space, evaluator, archive, options);

  DseResult result;
  result.kernel = space.spec().name;
  result.strategy = search.strategy;
  result.seed = options.seed;
  result.budget = options.budget;
  result.spaceSize = space.size();
  result.evaluated = search.evaluated;
  result.estimated = search.estimated;
  result.warmStarted = warmStarted;
  result.synthRuns = evaluator.synthRuns();
  result.cacheHits = evaluator.cacheHits();
  result.cacheWaits = evaluator.cacheWaits();
  result.objectives = objectives;
  result.visited = std::move(search.visited);
  result.pareto = archive.entries();

  // Estimator accounting. The error statistics compare predictions
  // against this run's synthesized visits; under estimateOnly the visits
  // *are* predictions, so only the usage counters are meaningful there.
  result.estimator.probeRuns = evaluator.probeRuns();
  result.estimator.estimates = evaluator.estimates();
  result.estimator.used =
      result.estimator.probeRuns > 0 || result.estimator.estimates > 0;
  const QoREstimation *model = evaluator.estimator(/*buildIfNeeded=*/false);
  if (model && !options.estimateOnly) {
    double latSum = 0, latMax = 0, dspSum = 0, bramSum = 0, lutSum = 0;
    std::set<std::string> seen;
    auto absPct = [](int64_t predicted, int64_t actual) {
      if (actual == 0)
        return predicted == 0 ? 0.0 : 100.0;
      return 100.0 * std::abs(double(predicted) - double(actual)) /
             double(actual);
    };
    for (const VisitedPoint &point : result.visited) {
      if (!point.qor.ok || !seen.insert(configKey(point.config)).second)
        continue;
      QoR predicted = model->estimate(point.config);
      double latErr = absPct(predicted.latencyCycles,
                             point.qor.latencyCycles);
      latSum += latErr;
      latMax = std::max(latMax, latErr);
      dspSum += absPct(predicted.dsp, point.qor.dsp);
      bramSum += absPct(predicted.bram, point.qor.bram);
      lutSum += absPct(predicted.lut, point.qor.lut);
      ++result.estimator.errorSamples;
    }
    if (result.estimator.errorSamples > 0) {
      double n = double(result.estimator.errorSamples);
      result.estimator.latencyMeanAbsPct = latSum / n;
      result.estimator.latencyMaxAbsPct = latMax;
      result.estimator.dspMeanAbsPct = dspSum / n;
      result.estimator.bramMeanAbsPct = bramSum / n;
      result.estimator.lutMeanAbsPct = lutSum / n;
    }
  }
  return result;
}

} // namespace mha::dse
