// Strategy.h - pluggable search strategies over a DesignSpace.
//
// A strategy decides *which* points to evaluate and in what order; the
// Evaluator decides *how* (parallel flow runs behind the QoR cache) and
// the ParetoArchive accumulates whatever survives domination. Six
// strategies ship:
//
//  * exhaustive — every enumerated point (truncated to the budget);
//  * random    — a seeded Fisher–Yates sample without replacement. The
//                PRNG (splitmix64) is our own, so a given seed visits the
//                same points on every platform and standard library;
//  * greedy    — hill-climbing from the unoptimized baseline: each step
//                evaluates the full one-knob neighborhood in parallel and
//                moves to the best strictly-latency-improving neighbor
//                (resources, then config key, break ties), stopping at a
//                local optimum or when the budget runs out.
//
// Three more are estimator-guided: they score points analytically through
// Evaluator::estimateAll (two probe synthesis runs, then arithmetic) and
// spend the synthesis budget only on predicted winners:
//
//  * refine    — estimates the whole space, then synthesizes every point
//                the slack rule keeps: a point is skipped only when some
//                estimated-frontier point dominates it *and* improves
//                latency by more than `refineSlack`, so estimator error
//                up to the slack cannot drop a true-frontier point;
//  * genetic   — seeded tournament selection + knob crossover/mutation,
//                generations scored entirely on estimates; the final
//                estimated frontier is synthesized;
//  * anneal    — threshold-accepting walk over one-knob neighbors (accept
//                when the estimated latency regression is within a
//                linearly cooling integer threshold — deterministic, no
//                transcendentals); the visited estimated frontier is
//                synthesized.
//
// All synthesized points are offered to the archive, so a strategy's
// archive is the frontier of its visited set. With estimateOnly set,
// visits archive estimates instead — no synthesis beyond the probes.
#pragma once

#include "dse/DesignSpace.h"
#include "dse/Evaluator.h"
#include "dse/Pareto.h"

#include <memory>

namespace mha::dse {

struct StrategyOptions {
  /// Maximum number of evaluator requests (0 = unlimited). Cached points
  /// count — the budget bounds the search effort deterministically, not
  /// wall time.
  size_t budget = 0;
  /// Seed for randomized strategies; the same seed replays the same walk.
  uint64_t seed = 0;
  /// Cap on analytical estimates spent by estimator-guided strategies
  /// (0 = unlimited). Estimates are not evaluator requests and never
  /// count against `budget`.
  size_t estimateBudget = 0;
  /// Latency slack for refine's promotion rule: an estimated-frontier
  /// point prunes a candidate only when it dominates it and improves
  /// latency by more than this fraction. Calibrated to ~3x the measured
  /// worst-case estimator latency error.
  double refineSlack = 0.15;
  /// Genetic-strategy knobs.
  size_t populationSize = 16;
  size_t generations = 8;
  /// Threshold-accepting walk length.
  size_t annealSteps = 64;
  /// Archive analytical estimates instead of synthesizing: every visit
  /// goes through Evaluator::estimateAll, so the only synthesis runs are
  /// the estimator's probes.
  bool estimateOnly = false;
  /// Re-seed the Pareto archive from the evaluator's completed cache
  /// entries before searching (runDse honours this; see Dse.h).
  bool warmStart = false;
};

struct VisitedPoint {
  flow::KernelConfig config;
  QoR qor;
};

struct StrategyResult {
  std::string strategy;
  size_t evaluated = 0; // evaluator requests issued (estimates excluded)
  size_t estimated = 0; // analytical estimates issued
  /// Every evaluated point in the strategy's deterministic visit order.
  std::vector<VisitedPoint> visited;
};

class SearchStrategy {
public:
  virtual ~SearchStrategy() = default;
  virtual const char *name() const = 0;
  virtual StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                             ParetoArchive &archive,
                             const StrategyOptions &options) = 0;
};

/// Factory over the registered strategy names ("exhaustive", "random",
/// "greedy", "refine", "genetic", "anneal"); nullptr for unknown names.
std::unique_ptr<SearchStrategy> createStrategy(std::string_view name);

/// Registered names, in documentation order.
const std::vector<std::string> &strategyNames();

} // namespace mha::dse
