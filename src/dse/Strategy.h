// Strategy.h - pluggable search strategies over a DesignSpace.
//
// A strategy decides *which* points to evaluate and in what order; the
// Evaluator decides *how* (parallel flow runs behind the QoR cache) and
// the ParetoArchive accumulates whatever survives domination. Three
// strategies ship:
//
//  * exhaustive — every enumerated point (truncated to the budget);
//  * random    — a seeded Fisher–Yates sample without replacement. The
//                PRNG (splitmix64) is our own, so a given seed visits the
//                same points on every platform and standard library;
//  * greedy    — hill-climbing from the unoptimized baseline: each step
//                evaluates the full one-knob neighborhood in parallel and
//                moves to the best strictly-latency-improving neighbor
//                (resources, then config key, break ties), stopping at a
//                local optimum or when the budget runs out.
//
// All visited points are offered to the archive, so a strategy's archive
// is the frontier of its visited set.
#pragma once

#include "dse/DesignSpace.h"
#include "dse/Evaluator.h"
#include "dse/Pareto.h"

#include <memory>

namespace mha::dse {

struct StrategyOptions {
  /// Maximum number of evaluator requests (0 = unlimited). Cached points
  /// count — the budget bounds the search effort deterministically, not
  /// wall time.
  size_t budget = 0;
  /// Seed for randomized strategies; the same seed replays the same walk.
  uint64_t seed = 0;
};

struct VisitedPoint {
  flow::KernelConfig config;
  QoR qor;
};

struct StrategyResult {
  std::string strategy;
  size_t evaluated = 0; // evaluator requests issued
  /// Every evaluated point in the strategy's deterministic visit order.
  std::vector<VisitedPoint> visited;
};

class SearchStrategy {
public:
  virtual ~SearchStrategy() = default;
  virtual const char *name() const = 0;
  virtual StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                             ParetoArchive &archive,
                             const StrategyOptions &options) = 0;
};

/// Factory over the registered strategy names ("exhaustive", "random",
/// "greedy"); nullptr for unknown names.
std::unique_ptr<SearchStrategy> createStrategy(std::string_view name);

/// Registered names, in documentation order.
const std::vector<std::string> &strategyNames();

} // namespace mha::dse
