// Dse.h - umbrella header and run driver for the DSE subsystem.
//
// Wires the pieces together for one search:
//
//   DesignSpace space(spec);                  // valid points
//   Evaluator evaluator(spec);                // QoR cache + thread pool
//   auto result = runDse(space, evaluator, "greedy", {});
//   result->json();                           // schema "mha.dse.v1"
//
// The evaluator is passed in (not owned) so callers can pre-load a QoR
// cache (--resume), run several strategies against one shared cache, and
// save the cache afterwards.
#pragma once

#include "dse/DesignSpace.h"
#include "dse/Evaluator.h"
#include "dse/Pareto.h"
#include "dse/Strategy.h"

#include <optional>

namespace mha::dse {

struct DseResult {
  std::string kernel;
  std::string strategy;
  uint64_t seed = 0;
  size_t budget = 0;     // 0 = unlimited
  size_t spaceSize = 0;
  size_t evaluated = 0;  // evaluator requests this run
  int64_t synthRuns = 0; // evaluator-lifetime flow executions
  int64_t cacheHits = 0; // evaluator-lifetime cache hits
  std::vector<Objective> objectives;
  std::vector<VisitedPoint> visited; // strategy visit order
  std::vector<ArchiveEntry> pareto;  // deterministic archive order

  /// Renders the run as JSON (schema "mha.dse.v1", stable key order).
  std::string json() const;
};

/// Runs `strategyName` over the space, feeding a fresh archive with the
/// given objectives. Returns nullopt for an unknown strategy name.
std::optional<DseResult>
runDse(const DesignSpace &space, Evaluator &evaluator,
       std::string_view strategyName, const StrategyOptions &options,
       const std::vector<Objective> &objectives = defaultObjectives());

} // namespace mha::dse
