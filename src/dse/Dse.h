// Dse.h - umbrella header and run driver for the DSE subsystem.
//
// Wires the pieces together for one search:
//
//   DesignSpace space(spec);                  // valid points
//   Evaluator evaluator(spec);                // QoR cache + thread pool
//   auto result = runDse(space, evaluator, "greedy", {});
//   result->json();                           // schema "mha.dse.v1"
//
// The evaluator is passed in (not owned) so callers can pre-load a QoR
// cache (--resume), run several strategies against one shared cache, and
// save the cache afterwards.
#pragma once

#include "dse/DesignSpace.h"
#include "dse/Evaluator.h"
#include "dse/Pareto.h"
#include "dse/Strategy.h"

#include <optional>

namespace mha::dse {

/// Per-run estimator accounting: how much analytical prediction the run
/// used and, when synthesized points are available to compare against,
/// how accurate it was (absolute percentage error, estimate vs synthesis,
/// over the run's unique successfully-synthesized visits).
struct EstimatorReport {
  bool used = false;       // the run built/consulted the estimator
  int64_t probeRuns = 0;   // synthesis runs spent building it (0 or 2)
  int64_t estimates = 0;   // analytical estimates served
  size_t errorSamples = 0; // synthesized points the error is measured on
  double latencyMeanAbsPct = 0.0;
  double latencyMaxAbsPct = 0.0;
  double dspMeanAbsPct = 0.0;
  double bramMeanAbsPct = 0.0;
  double lutMeanAbsPct = 0.0;
};

struct DseResult {
  std::string kernel;
  std::string strategy;
  uint64_t seed = 0;
  size_t budget = 0;     // 0 = unlimited
  size_t spaceSize = 0;
  size_t evaluated = 0;  // evaluator requests this run
  size_t estimated = 0;  // analytical estimates issued by the strategy
  size_t warmStarted = 0; // archive entries re-seeded from the QoR cache
  int64_t synthRuns = 0; // evaluator-lifetime flow executions
  int64_t cacheHits = 0; // evaluator-lifetime cache hits
  int64_t cacheWaits = 0; // cache hits that blocked on in-flight synthesis
  EstimatorReport estimator;
  std::vector<Objective> objectives;
  std::vector<VisitedPoint> visited; // strategy visit order
  std::vector<ArchiveEntry> pareto;  // deterministic archive order

  /// Renders the run as JSON (schema "mha.dse.v1", stable key order).
  std::string json() const;
};

/// Runs `strategyName` over the space, feeding a fresh archive with the
/// given objectives. With options.warmStart the archive is first
/// re-seeded from the evaluator's completed cache entries (parsed back
/// through parseConfigKey and filtered to the space), so a --resume run
/// starts from the previously discovered frontier instead of an empty
/// one. Returns nullopt for an unknown strategy name.
std::optional<DseResult>
runDse(const DesignSpace &space, Evaluator &evaluator,
       std::string_view strategyName, const StrategyOptions &options,
       const std::vector<Objective> &objectives = defaultObjectives());

} // namespace mha::dse
