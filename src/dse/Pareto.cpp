#include "dse/Pareto.h"

#include <algorithm>

namespace mha::dse {

const char *objectiveName(Objective objective) {
  switch (objective) {
  case Objective::Latency:
    return "latency";
  case Objective::Dsp:
    return "dsp";
  case Objective::Bram:
    return "bram";
  case Objective::Lut:
    return "lut";
  case Objective::Ff:
    return "ff";
  }
  return "?";
}

std::vector<Objective> defaultObjectives() {
  return {Objective::Latency, Objective::Dsp, Objective::Bram,
          Objective::Lut};
}

std::vector<Objective> latencyDspObjectives() {
  return {Objective::Latency, Objective::Dsp};
}

int64_t ParetoArchive::objectiveValue(const QoR &qor, Objective objective) {
  switch (objective) {
  case Objective::Latency:
    return qor.latencyCycles;
  case Objective::Dsp:
    return qor.dsp;
  case Objective::Bram:
    return qor.bram;
  case Objective::Lut:
    return qor.lut;
  case Objective::Ff:
    return qor.ff;
  }
  return 0;
}

ParetoArchive::ParetoArchive(std::vector<Objective> objectives)
    : objectives_(std::move(objectives)) {}

std::vector<int64_t> ParetoArchive::objectiveVector(const QoR &qor) const {
  std::vector<int64_t> out;
  out.reserve(objectives_.size());
  for (Objective objective : objectives_)
    out.push_back(objectiveValue(qor, objective));
  return out;
}

bool ParetoArchive::dominates(const QoR &a, const QoR &b) const {
  bool strictlyBetter = false;
  for (Objective objective : objectives_) {
    int64_t va = objectiveValue(a, objective);
    int64_t vb = objectiveValue(b, objective);
    if (va > vb)
      return false;
    if (va < vb)
      strictlyBetter = true;
  }
  return strictlyBetter;
}

bool ParetoArchive::containsKey(const std::string &key) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const ArchiveEntry &e) { return e.key == key; });
}

bool ParetoArchive::insert(const flow::KernelConfig &config, const QoR &qor) {
  if (!qor.ok || !qor.cosimOk)
    return false;
  std::string key = configKey(config);
  for (const ArchiveEntry &entry : entries_) {
    if (entry.key == key)
      return true; // already archived (idempotent)
    if (dominates(entry.qor, qor))
      return false;
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const ArchiveEntry &entry) {
                                  return dominates(qor, entry.qor);
                                }),
                 entries_.end());
  ArchiveEntry entry{config, qor, std::move(key)};
  auto less = [&](const ArchiveEntry &a, const ArchiveEntry &b) {
    std::vector<int64_t> va = objectiveVector(a.qor);
    std::vector<int64_t> vb = objectiveVector(b.qor);
    if (va != vb)
      return va < vb;
    return a.key < b.key;
  };
  entries_.insert(
      std::upper_bound(entries_.begin(), entries_.end(), entry, less),
      std::move(entry));
  return true;
}

} // namespace mha::dse
