#include "dse/Evaluator.h"

#include "dse/QoREstimation.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <fstream>
#include <sstream>

namespace mha::dse {

namespace {

telemetry::Statistic numSynthRuns("dse", "synth-runs",
                                  "design points synthesized");
telemetry::Statistic numCacheHits("dse", "cache-hits",
                                  "design points answered from the QoR cache");
telemetry::Statistic numCacheWaits("dse", "cache-waits",
                                   "cache hits that blocked on an in-flight "
                                   "synthesis of the same point");
telemetry::Statistic numEstimates("dse", "estimates",
                                  "design points scored analytically");
telemetry::Statistic numProbeRuns("dse", "probe-runs",
                                  "synthesis runs spent building the "
                                  "QoR estimator");

/// Evaluator latency histograms: where a design point's answer came from
/// and what it cost. synth = a full virtual-synthesis flow run; estimate
/// = the analytical model; cache_wait = idle time blocked on another
/// thread's in-flight synthesis of the same point.
metrics::Histogram &synthUsHistogram() {
  static metrics::Histogram &hist = metrics::Registry::global().histogram(
      "mha_dse_synth_us", "full synthesis flow latency per design point");
  return hist;
}

metrics::Histogram &estimateUsHistogram() {
  static metrics::Histogram &hist = metrics::Registry::global().histogram(
      "mha_dse_estimate_us", "analytical QoR estimate latency");
  return hist;
}

metrics::Histogram &cacheWaitUsHistogram() {
  static metrics::Histogram &hist = metrics::Registry::global().histogram(
      "mha_dse_cache_wait_us",
      "time blocked on an in-flight synthesis of the same point");
  return hist;
}

} // namespace

Evaluator::Evaluator(const flow::KernelSpec &spec, EvaluatorOptions options)
    : spec_(&spec), options_(std::move(options)),
      pool_(std::make_unique<ThreadPool>(options_.numThreads)) {}

Evaluator::~Evaluator() = default;

QoR Evaluator::runFlow(const flow::KernelConfig &config,
                       const std::string &key) {
  telemetry::Span span(strfmt("dse:evaluate:%s", spec_->name.c_str()), "dse",
                       {{"kernel", spec_->name}, {"config", key}});
  metrics::Timer timer(synthUsHistogram());
  QoR qor;
  flow::FlowResult result = flow::runAdaptorFlow(*spec_, config,
                                                 options_.flow);
  if (!result.ok) {
    qor.error = result.diagnostics.substr(0, result.diagnostics.find('\n'));
    if (qor.error.empty())
      qor.error = "flow failed";
    return qor;
  }
  const vhls::FunctionReport *top = result.synth.top();
  if (!top) {
    qor.error = "no top function report";
    return qor;
  }
  qor.ok = true;
  qor.latencyCycles = top->latencyCycles;
  qor.dsp = top->resources.dsp;
  qor.bram = top->resources.bram;
  qor.lut = top->resources.lut;
  qor.ff = top->resources.ff;
  if (options_.cosim) {
    std::string error;
    if (!flow::cosimAgainstReference(result, *spec_, error)) {
      qor.cosimOk = false;
      qor.error = error;
    }
  }
  return qor;
}

QoR Evaluator::evaluate(const flow::KernelConfig &config) {
  std::string key = configKey(config);
  std::unique_lock<std::mutex> lock(mutex_);
  auto [it, inserted] = cache_.try_emplace(key);
  Entry &entry = it->second;
  if (!inserted) {
    // Someone already has (or is producing) this point. A wait on an
    // in-flight entry gets its own distinctly-named span: the producer's
    // dse:evaluate span owns the synthesis wall time, and booking the
    // same interval again under dse:evaluate would double-count it in
    // trace totals. dse:cache-wait intervals are idle time, not work.
    if (!entry.done) {
      telemetry::Span span(strfmt("dse:cache-wait:%s", spec_->name.c_str()),
                           "dse",
                           {{"kernel", spec_->name}, {"config", key}});
      metrics::Timer timer(cacheWaitUsHistogram());
      ++cacheWaits_;
      ++numCacheWaits;
      while (!entry.done)
        ready_.wait(lock);
    }
    ++cacheHits_;
    ++numCacheHits;
    return entry.qor;
  }
  lock.unlock();
  QoR qor = runFlow(config, key);
  lock.lock();
  entry.qor = qor;
  entry.done = true;
  ++synthRuns_;
  ++numSynthRuns;
  ready_.notify_all();
  return qor;
}

std::vector<QoR>
Evaluator::evaluateAll(const std::vector<flow::KernelConfig> &configs) {
  std::vector<QoR> results(configs.size());
  parallelFor(*pool_, configs.size(),
              [&](size_t i) { results[i] = evaluate(configs[i]); });
  return results;
}

void Evaluator::seedProbe(const flow::KernelConfig &config, const QoR &qor) {
  // Probes are real synthesis results, so they can pre-fill the QoR
  // cache — but only when co-simulation is off: a cached entry must mean
  // the same thing evaluate() would have produced, and probes skip cosim.
  if (options_.cosim)
    return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = cache_.try_emplace(configKey(config));
  if (!inserted)
    return;
  it->second.done = true;
  it->second.qor = qor;
}

const QoREstimation *Evaluator::estimator(bool buildIfNeeded) {
  // Double-checked: after the build attempt a relaxed acquire load is the
  // whole fast path, so a parallel estimateAll never serializes here.
  if (estimatorReady_.load(std::memory_order_acquire))
    return estimator_.get();
  if (!buildIfNeeded)
    return nullptr;
  std::lock_guard<std::mutex> lock(estimatorMutex_);
  if (!estimatorBuilt_) {
    estimatorBuilt_ = true;
    telemetry::Span span(strfmt("dse:probe:%s", spec_->name.c_str()), "dse",
                         {{"kernel", spec_->name}});
    estimator_ = QoREstimation::build(*spec_, options_.flow,
                                      &estimatorError_);
    int64_t probes = QoREstimation::kProbeRuns;
    {
      std::lock_guard<std::mutex> countLock(mutex_);
      probeRuns_ += probes;
      synthRuns_ += probes;
    }
    numProbeRuns += probes;
    numSynthRuns += probes;
    if (estimator_) {
      seedProbe(estimator_->baselineProbeConfig(),
                estimator_->baselineProbeQoR());
      seedProbe(estimator_->pipelinedProbeConfig(),
                estimator_->pipelinedProbeQoR());
    }
    estimatorReady_.store(true, std::memory_order_release);
  }
  return estimator_.get();
}

QoR Evaluator::estimate(const flow::KernelConfig &config) {
  const QoREstimation *est = estimator();
  metrics::Timer timer(estimateUsHistogram());
  estimates_.fetch_add(1, std::memory_order_relaxed);
  ++numEstimates;
  if (!est) {
    QoR qor;
    std::lock_guard<std::mutex> lock(estimatorMutex_);
    qor.error = estimatorError_.empty() ? "estimator unavailable"
                                        : estimatorError_;
    return qor;
  }
  return est->estimate(config);
}

std::vector<QoR>
Evaluator::estimateAll(const std::vector<flow::KernelConfig> &configs) {
  // Build once up front so the batch's parallel arithmetic never
  // serializes on the probe synthesis.
  estimator();
  telemetry::Span span(strfmt("dse:estimate-batch:%s", spec_->name.c_str()),
                       "dse",
                       {{"kernel", spec_->name},
                        {"points", strfmt("%zu", configs.size())}});
  std::vector<QoR> results(configs.size());
  parallelFor(*pool_, configs.size(),
              [&](size_t i) { results[i] = estimate(configs[i]); });
  return results;
}

int64_t Evaluator::synthRuns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return synthRuns_;
}

int64_t Evaluator::cacheHits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cacheHits_;
}

int64_t Evaluator::cacheWaits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cacheWaits_;
}

int64_t Evaluator::estimates() const {
  return estimates_.load(std::memory_order_relaxed);
}

int64_t Evaluator::probeRuns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return probeRuns_;
}

size_t Evaluator::cacheSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::vector<std::pair<std::string, QoR>> Evaluator::cachedResults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, QoR>> out;
  out.reserve(cache_.size());
  for (const auto &[key, entry] : cache_)
    if (entry.done)
      out.emplace_back(key, entry.qor);
  return out;
}

std::string Evaluator::cacheJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += "{\n  \"schema\": \"mha.dse.cache.v1\",\n";
  out += strfmt("  \"kernel\": \"%s\",\n  \"entries\": [",
                json::escape(spec_->name).c_str());
  bool first = true;
  for (const auto &[key, entry] : cache_) {
    if (!entry.done)
      continue; // in-flight points are not results yet
    out += first ? "\n" : ",\n";
    first = false;
    const QoR &q = entry.qor;
    out += strfmt("    {\"key\": \"%s\", \"ok\": %s, \"cosim_ok\": %s, "
                  "\"latency\": %lld, \"dsp\": %lld, \"bram\": %lld, "
                  "\"lut\": %lld, \"ff\": %lld, \"error\": \"%s\"}",
                  json::escape(key).c_str(), q.ok ? "true" : "false",
                  q.cosimOk ? "true" : "false",
                  static_cast<long long>(q.latencyCycles),
                  static_cast<long long>(q.dsp),
                  static_cast<long long>(q.bram),
                  static_cast<long long>(q.lut),
                  static_cast<long long>(q.ff),
                  json::escape(q.error).c_str());
  }
  out += "\n  ]\n}\n";
  return out;
}

bool Evaluator::loadCacheJson(std::string_view text, std::string *error) {
  std::string parseError;
  std::optional<json::Value> doc = json::parse(text, &parseError);
  if (!doc) {
    if (error)
      *error = "malformed cache JSON: " + parseError;
    return false;
  }
  const json::Value *schema = doc->get("schema");
  if (!schema || schema->asString() != "mha.dse.cache.v1") {
    if (error)
      *error = "not an mha.dse.cache.v1 document";
    return false;
  }
  const json::Value *kernel = doc->get("kernel");
  if (!kernel || kernel->asString() != spec_->name) {
    if (error)
      *error = strfmt("cache is for kernel '%s', evaluator is for '%s'",
                      kernel ? kernel->asString().c_str() : "?",
                      spec_->name.c_str());
    return false;
  }
  const json::Value *entries = doc->get("entries");
  if (!entries || !entries->isArray()) {
    if (error)
      *error = "cache document has no 'entries' array";
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const json::Value &item : entries->elements()) {
    const json::Value *key = item.get("key");
    if (!key || !key->isString())
      continue;
    auto [it, inserted] = cache_.try_emplace(key->asString());
    if (!inserted)
      continue; // existing (possibly fresher) entry wins
    Entry &entry = it->second;
    entry.done = true;
    auto intField = [&](const char *name) {
      const json::Value *v = item.get(name);
      return v ? v->asInt() : 0;
    };
    const json::Value *ok = item.get("ok");
    const json::Value *cosimOk = item.get("cosim_ok");
    entry.qor.ok = ok && ok->asBool();
    entry.qor.cosimOk = !cosimOk || cosimOk->asBool();
    entry.qor.latencyCycles = intField("latency");
    entry.qor.dsp = intField("dsp");
    entry.qor.bram = intField("bram");
    entry.qor.lut = intField("lut");
    entry.qor.ff = intField("ff");
    if (const json::Value *err = item.get("error"))
      entry.qor.error = err->asString();
  }
  return true;
}

bool Evaluator::saveCacheFile(const std::string &path,
                              std::string *error) const {
  std::string text = cacheJson();
  std::string jsonError;
  if (!json::validate(text, &jsonError)) {
    if (error)
      *error = "internal error, malformed cache JSON: " + jsonError;
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error)
      *error = "cannot open " + path + " for writing";
    return false;
  }
  out << text;
  out.close();
  if (!out) {
    if (error)
      *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool Evaluator::loadCacheFile(const std::string &path, std::string *error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error)
      *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return loadCacheJson(buffer.str(), error);
}

} // namespace mha::dse
