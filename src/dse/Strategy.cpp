#include "dse/Strategy.h"

#include "support/Telemetry.h"

#include <algorithm>

namespace mha::dse {

namespace {

/// Deterministic, platform-independent PRNG (splitmix64). std::shuffle
/// with a standard engine is implementation-defined; the subset/replay
/// guarantees in the tests need bit-identical sampling everywhere.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) with rejection (bound is tiny vs 2^64, so the
  /// modulo bias would be negligible, but rejection keeps it exact).
  uint64_t below(uint64_t bound) {
    uint64_t limit = bound * (UINT64_MAX / bound);
    uint64_t value;
    do {
      value = next();
    } while (value >= limit);
    return value % bound;
  }

private:
  uint64_t state_;
};

size_t effectiveBudget(const StrategyOptions &options, size_t upper) {
  if (options.budget == 0)
    return upper;
  return std::min(options.budget, upper);
}

/// Evaluates `configs` in one parallel batch and records them in order.
void visitBatch(Evaluator &evaluator, ParetoArchive &archive,
                const std::vector<flow::KernelConfig> &configs,
                StrategyResult &result) {
  std::vector<QoR> qors = evaluator.evaluateAll(configs);
  for (size_t i = 0; i < configs.size(); ++i) {
    archive.insert(configs[i], qors[i]);
    result.visited.push_back({configs[i], qors[i]});
  }
  result.evaluated += configs.size();
}

class ExhaustiveStrategy : public SearchStrategy {
public:
  const char *name() const override { return "exhaustive"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();
    std::vector<flow::KernelConfig> configs = space.points();
    configs.resize(effectiveBudget(options, configs.size()));
    visitBatch(evaluator, archive, configs, result);
    return result;
  }
};

class RandomStrategy : public SearchStrategy {
public:
  const char *name() const override { return "random"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();
    std::vector<flow::KernelConfig> deck = space.points();
    SplitMix64 rng(options.seed);
    // Fisher–Yates; the shuffled prefix is the sample.
    for (size_t i = deck.size(); i > 1; --i)
      std::swap(deck[i - 1], deck[rng.below(i)]);
    deck.resize(effectiveBudget(options, deck.size()));
    visitBatch(evaluator, archive, deck, result);
    return result;
  }
};

class GreedyStrategy : public SearchStrategy {
public:
  const char *name() const override { return "greedy"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();
    size_t budget = effectiveBudget(options, SIZE_MAX);

    flow::KernelConfig current = space.baseline();
    visitBatch(evaluator, archive, {current}, result);
    QoR currentQoR = result.visited.back().qor;
    if (!currentQoR.ok)
      return result;

    std::vector<std::string> visitedKeys = {configKey(current)};
    while (result.evaluated < budget) {
      std::vector<flow::KernelConfig> frontier;
      for (const flow::KernelConfig &neighbor : space.neighbors(current)) {
        std::string key = configKey(neighbor);
        if (std::find(visitedKeys.begin(), visitedKeys.end(), key) !=
            visitedKeys.end())
          continue;
        frontier.push_back(neighbor);
        visitedKeys.push_back(std::move(key));
      }
      if (frontier.size() > budget - result.evaluated)
        frontier.resize(budget - result.evaluated);
      if (frontier.empty())
        break;
      visitBatch(evaluator, archive, frontier, result);

      // The move rule: strictly lower latency; among equals, fewer
      // resources; among full ties, the smaller config key. Deterministic
      // because the frontier order is the space's enumeration order.
      const flow::KernelConfig *best = nullptr;
      QoR bestQoR;
      auto rank = [](const QoR &q) {
        return std::make_tuple(q.latencyCycles, q.dsp, q.bram, q.lut, q.ff);
      };
      size_t base = result.visited.size() - frontier.size();
      for (size_t i = 0; i < frontier.size(); ++i) {
        const VisitedPoint &point = result.visited[base + i];
        if (!point.qor.ok || !point.qor.cosimOk)
          continue;
        if (point.qor.latencyCycles >= currentQoR.latencyCycles)
          continue;
        if (!best || rank(point.qor) < rank(bestQoR) ||
            (rank(point.qor) == rank(bestQoR) &&
             configKey(point.config) < configKey(*best))) {
          best = &point.config;
          bestQoR = point.qor;
        }
      }
      if (!best)
        break; // local optimum
      current = *best;
      currentQoR = bestQoR;
    }
    return result;
  }
};

} // namespace

std::unique_ptr<SearchStrategy> createStrategy(std::string_view name) {
  if (name == "exhaustive")
    return std::make_unique<ExhaustiveStrategy>();
  if (name == "random")
    return std::make_unique<RandomStrategy>();
  if (name == "greedy")
    return std::make_unique<GreedyStrategy>();
  return nullptr;
}

const std::vector<std::string> &strategyNames() {
  static const std::vector<std::string> names = {"exhaustive", "random",
                                                 "greedy"};
  return names;
}

} // namespace mha::dse
