#include "dse/Strategy.h"

#include "support/Telemetry.h"

#include <algorithm>

namespace mha::dse {

namespace {

/// Deterministic, platform-independent PRNG (splitmix64). std::shuffle
/// with a standard engine is implementation-defined; the subset/replay
/// guarantees in the tests need bit-identical sampling everywhere.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) with rejection (bound is tiny vs 2^64, so the
  /// modulo bias would be negligible, but rejection keeps it exact).
  uint64_t below(uint64_t bound) {
    uint64_t limit = bound * (UINT64_MAX / bound);
    uint64_t value;
    do {
      value = next();
    } while (value >= limit);
    return value % bound;
  }

private:
  uint64_t state_;
};

size_t effectiveBudget(const StrategyOptions &options, size_t upper) {
  if (options.budget == 0)
    return upper;
  return std::min(options.budget, upper);
}

/// Evaluates `configs` in one parallel batch and records them in order.
/// Under estimateOnly the batch routes through the analytical fast path
/// instead of synthesis; either way the points land in the archive and
/// count as evaluator requests.
void visitBatch(Evaluator &evaluator, ParetoArchive &archive,
                const std::vector<flow::KernelConfig> &configs,
                StrategyResult &result, const StrategyOptions &options) {
  std::vector<QoR> qors = options.estimateOnly
                              ? evaluator.estimateAll(configs)
                              : evaluator.evaluateAll(configs);
  for (size_t i = 0; i < configs.size(); ++i) {
    archive.insert(configs[i], qors[i]);
    result.visited.push_back({configs[i], qors[i]});
  }
  result.evaluated += configs.size();
  if (options.estimateOnly)
    result.estimated += configs.size();
}

/// The refine promotion rule: a candidate is pruned only when some
/// estimated-frontier entry (other than itself) dominates it AND beats
/// its latency by more than `slack`. Checking frontier entries alone is
/// sufficient — domination is transitive, so any dominating point is
/// itself dominated by a frontier entry at least as good.
bool slackPruned(const ParetoArchive &estArchive, const std::string &key,
                 const QoR &est, double slack) {
  for (const ArchiveEntry &q : estArchive.entries()) {
    if (q.key == key)
      continue;
    if (estArchive.dominates(q.qor, est) &&
        double(q.qor.latencyCycles) <=
            double(est.latencyCycles) * (1.0 - slack))
      return true;
  }
  return false;
}

/// Synthesizes the estimated frontier (budget-truncated, archive order —
/// already deterministic by objective vector then key).
void promoteEstimatedFrontier(const ParetoArchive &estArchive,
                              Evaluator &evaluator, ParetoArchive &archive,
                              StrategyResult &result,
                              const StrategyOptions &options) {
  std::vector<flow::KernelConfig> promote;
  for (const ArchiveEntry &entry : estArchive.entries())
    promote.push_back(entry.config);
  promote.resize(effectiveBudget(options, promote.size()));
  visitBatch(evaluator, archive, promote, result, options);
}

class ExhaustiveStrategy : public SearchStrategy {
public:
  const char *name() const override { return "exhaustive"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();
    std::vector<flow::KernelConfig> configs = space.points();
    configs.resize(effectiveBudget(options, configs.size()));
    visitBatch(evaluator, archive, configs, result, options);
    return result;
  }
};

class RandomStrategy : public SearchStrategy {
public:
  const char *name() const override { return "random"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();
    std::vector<flow::KernelConfig> deck = space.points();
    SplitMix64 rng(options.seed);
    // Fisher–Yates; the shuffled prefix is the sample.
    for (size_t i = deck.size(); i > 1; --i)
      std::swap(deck[i - 1], deck[rng.below(i)]);
    deck.resize(effectiveBudget(options, deck.size()));
    visitBatch(evaluator, archive, deck, result, options);
    return result;
  }
};

class GreedyStrategy : public SearchStrategy {
public:
  const char *name() const override { return "greedy"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();
    size_t budget = effectiveBudget(options, SIZE_MAX);

    flow::KernelConfig current = space.baseline();
    visitBatch(evaluator, archive, {current}, result, options);
    QoR currentQoR = result.visited.back().qor;
    if (!currentQoR.ok)
      return result;

    std::vector<std::string> visitedKeys = {configKey(current)};
    while (result.evaluated < budget) {
      std::vector<flow::KernelConfig> frontier;
      for (const flow::KernelConfig &neighbor : space.neighbors(current)) {
        std::string key = configKey(neighbor);
        if (std::find(visitedKeys.begin(), visitedKeys.end(), key) !=
            visitedKeys.end())
          continue;
        frontier.push_back(neighbor);
        visitedKeys.push_back(std::move(key));
      }
      if (frontier.size() > budget - result.evaluated)
        frontier.resize(budget - result.evaluated);
      if (frontier.empty())
        break;
      visitBatch(evaluator, archive, frontier, result, options);

      // The move rule: strictly lower latency; among equals, fewer
      // resources; among full ties, the smaller config key. Deterministic
      // because the frontier order is the space's enumeration order.
      const flow::KernelConfig *best = nullptr;
      QoR bestQoR;
      auto rank = [](const QoR &q) {
        return std::make_tuple(q.latencyCycles, q.dsp, q.bram, q.lut, q.ff);
      };
      size_t base = result.visited.size() - frontier.size();
      for (size_t i = 0; i < frontier.size(); ++i) {
        const VisitedPoint &point = result.visited[base + i];
        if (!point.qor.ok || !point.qor.cosimOk)
          continue;
        if (point.qor.latencyCycles >= currentQoR.latencyCycles)
          continue;
        if (!best || rank(point.qor) < rank(bestQoR) ||
            (rank(point.qor) == rank(bestQoR) &&
             configKey(point.config) < configKey(*best))) {
          best = &point.config;
          bestQoR = point.qor;
        }
      }
      if (!best)
        break; // local optimum
      current = *best;
      currentQoR = bestQoR;
    }
    return result;
  }
};

class RefineStrategy : public SearchStrategy {
public:
  const char *name() const override { return "refine"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();

    // Score the whole space analytically (two probe runs total).
    std::vector<flow::KernelConfig> points = space.points();
    if (options.estimateBudget != 0 &&
        points.size() > options.estimateBudget)
      points.resize(options.estimateBudget);
    std::vector<QoR> estimates = evaluator.estimateAll(points);
    result.estimated += points.size();
    if (points.empty() || !estimates.front().ok) {
      // Probe synthesis failed — no model to guide promotion. Record the
      // baseline so the failure shows up in the visited set and stop.
      visitBatch(evaluator, archive, {space.baseline()}, result, options);
      return result;
    }

    ParetoArchive estArchive(archive.objectives());
    for (size_t i = 0; i < points.size(); ++i)
      estArchive.insert(points[i], estimates[i]);

    // Promote everything the slack rule keeps, best predicted latency
    // first so a tight budget still synthesizes the promising end.
    std::vector<size_t> keep;
    for (size_t i = 0; i < points.size(); ++i)
      if (!slackPruned(estArchive, configKey(points[i]), estimates[i],
                       options.refineSlack))
        keep.push_back(i);
    std::stable_sort(keep.begin(), keep.end(), [&](size_t a, size_t b) {
      if (estimates[a].latencyCycles != estimates[b].latencyCycles)
        return estimates[a].latencyCycles < estimates[b].latencyCycles;
      return configKey(points[a]) < configKey(points[b]);
    });
    keep.resize(effectiveBudget(options, keep.size()));
    std::vector<flow::KernelConfig> promote;
    for (size_t i : keep)
      promote.push_back(points[i]);
    visitBatch(evaluator, archive, promote, result, options);
    return result;
  }
};

class GeneticStrategy : public SearchStrategy {
public:
  const char *name() const override { return "genetic"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();
    const size_t popSize = std::max<size_t>(
        2, std::min(options.populationSize, space.size()));
    SplitMix64 rng(options.seed);

    // Initial population: a seeded sample without replacement.
    std::vector<flow::KernelConfig> deck = space.points();
    for (size_t i = deck.size(); i > 1; --i)
      std::swap(deck[i - 1], deck[rng.below(i)]);
    deck.resize(std::min(popSize, deck.size()));
    std::vector<flow::KernelConfig> population = std::move(deck);

    ParetoArchive estArchive(archive.objectives());
    for (size_t gen = 0; gen < std::max<size_t>(1, options.generations);
         ++gen) {
      if (options.estimateBudget != 0) {
        size_t remaining =
            options.estimateBudget -
            std::min(options.estimateBudget, result.estimated);
        if (remaining == 0)
          break;
        if (population.size() > remaining)
          population.resize(remaining);
      }
      std::vector<QoR> estimates = evaluator.estimateAll(population);
      result.estimated += population.size();
      if (estimates.empty() || !estimates.front().ok) {
        visitBatch(evaluator, archive, {space.baseline()}, result, options);
        return result;
      }
      for (size_t i = 0; i < population.size(); ++i)
        estArchive.insert(population[i], estimates[i]);

      // Binary tournament on estimated QoR: domination wins, then lower
      // latency, then the smaller config key.
      auto tournament = [&]() -> const flow::KernelConfig & {
        size_t a = rng.below(population.size());
        size_t b = rng.below(population.size());
        if (estArchive.dominates(estimates[a], estimates[b]))
          return population[a];
        if (estArchive.dominates(estimates[b], estimates[a]))
          return population[b];
        if (estimates[a].latencyCycles != estimates[b].latencyCycles)
          return estimates[a].latencyCycles < estimates[b].latencyCycles
                     ? population[a]
                     : population[b];
        return configKey(population[a]) <= configKey(population[b])
                   ? population[a]
                   : population[b];
      };

      // Knob-wise crossover plus occasional single-knob mutation; the
      // space canonicalizes children onto valid designs. Duplicates
      // within a generation are retried a bounded number of times.
      std::vector<flow::KernelConfig> next;
      std::vector<std::string> nextKeys;
      const DesignSpaceOptions &knobs = space.options();
      for (size_t attempts = popSize * 16;
           next.size() < popSize && attempts > 0; --attempts) {
        const flow::KernelConfig &ma = tournament();
        const flow::KernelConfig &pa = tournament();
        flow::KernelConfig child;
        child.pipelineII = (rng.next() & 1) ? ma.pipelineII : pa.pipelineII;
        child.unrollFactor =
            (rng.next() & 1) ? ma.unrollFactor : pa.unrollFactor;
        child.partitionFactor =
            (rng.next() & 1) ? ma.partitionFactor : pa.partitionFactor;
        child.dataflow = (rng.next() & 1) ? ma.dataflow : pa.dataflow;
        child.applyDirectives = true;
        if (rng.below(4) == 0) {
          switch (rng.below(4)) {
          case 0:
            child.pipelineII =
                knobs.pipelineIIs[rng.below(knobs.pipelineIIs.size())];
            break;
          case 1:
            child.unrollFactor =
                knobs.unrollFactors[rng.below(knobs.unrollFactors.size())];
            break;
          case 2:
            child.partitionFactor = knobs.partitionFactors[rng.below(
                knobs.partitionFactors.size())];
            break;
          default:
            child.dataflow = rng.next() & 1;
            break;
          }
        }
        child = space.canonicalize(child);
        std::string key = configKey(child);
        if (std::find(nextKeys.begin(), nextKeys.end(), key) !=
            nextKeys.end())
          continue;
        nextKeys.push_back(std::move(key));
        next.push_back(child);
      }
      if (next.empty())
        break;
      population = std::move(next);
    }

    promoteEstimatedFrontier(estArchive, evaluator, archive, result,
                             options);
    return result;
  }
};

class AnnealStrategy : public SearchStrategy {
public:
  const char *name() const override { return "anneal"; }

  StrategyResult run(const DesignSpace &space, Evaluator &evaluator,
                     ParetoArchive &archive,
                     const StrategyOptions &options) override {
    StrategyResult result;
    result.strategy = name();
    SplitMix64 rng(options.seed);

    flow::KernelConfig current = space.baseline();
    QoR currentEst = evaluator.estimate(current);
    ++result.estimated;
    if (!currentEst.ok) {
      visitBatch(evaluator, archive, {current}, result, options);
      return result;
    }
    ParetoArchive estArchive(archive.objectives());
    estArchive.insert(current, currentEst);

    // Threshold accepting: accept any move whose estimated latency
    // regression is within a linearly cooling integer threshold. Pure
    // integer arithmetic — no exp(), no floating-point acceptance — so
    // a seed replays the identical walk everywhere.
    const size_t steps = std::max<size_t>(1, options.annealSteps);
    const int64_t t0 =
        std::max<int64_t>(1, currentEst.latencyCycles / 4);
    for (size_t step = 0; step < steps; ++step) {
      if (options.estimateBudget != 0 &&
          result.estimated >= options.estimateBudget)
        break;
      std::vector<flow::KernelConfig> neighbors = space.neighbors(current);
      if (neighbors.empty())
        break;
      const flow::KernelConfig &candidate =
          neighbors[rng.below(neighbors.size())];
      QoR candidateEst = evaluator.estimate(candidate);
      ++result.estimated;
      estArchive.insert(candidate, candidateEst);
      int64_t threshold =
          t0 * int64_t(steps - step) / int64_t(steps);
      if (candidateEst.latencyCycles - currentEst.latencyCycles <=
          threshold) {
        current = candidate;
        currentEst = candidateEst;
      }
    }

    promoteEstimatedFrontier(estArchive, evaluator, archive, result,
                             options);
    return result;
  }
};

} // namespace

std::unique_ptr<SearchStrategy> createStrategy(std::string_view name) {
  if (name == "exhaustive")
    return std::make_unique<ExhaustiveStrategy>();
  if (name == "random")
    return std::make_unique<RandomStrategy>();
  if (name == "greedy")
    return std::make_unique<GreedyStrategy>();
  if (name == "refine")
    return std::make_unique<RefineStrategy>();
  if (name == "genetic")
    return std::make_unique<GeneticStrategy>();
  if (name == "anneal")
    return std::make_unique<AnnealStrategy>();
  return nullptr;
}

const std::vector<std::string> &strategyNames() {
  static const std::vector<std::string> names = {
      "exhaustive", "random", "greedy", "refine", "genetic", "anneal"};
  return names;
}

} // namespace mha::dse
