#include "dse/QoREstimation.h"

#include "lir/LContext.h"
#include "lir/analysis/Dependence.h"
#include "lir/analysis/Dominators.h"
#include "lir/analysis/LoopInfo.h"
#include "lir/transforms/LoopUnroll.h"
#include "support/StringUtils.h"
#include "vhls/Estimate.h"

#include <algorithm>
#include <map>

namespace mha::dse {

using lir::BasicBlock;
using lir::Instruction;
using lir::Opcode;
using vhls::ceilDiv;
using vhls::ResourceUsage;

namespace {

const lir::Value *pointerRootOf(const lir::Value *ptr) {
  while (const auto *inst = dyn_cast<Instruction>(ptr)) {
    if (inst->opcode() == Opcode::GEP || inst->opcode() == Opcode::Bitcast)
      ptr = inst->operand(0);
    else
      break;
  }
  return ptr;
}

std::vector<int64_t> arrayDims(const lir::Type *type) {
  std::vector<int64_t> dims;
  if (const auto *pt = dyn_cast<lir::PointerType>(type))
    type = pt->isOpaque() ? nullptr : pt->pointee();
  while (type && type->isArray()) {
    const auto *at = cast<lir::ArrayType>(type);
    dims.push_back(static_cast<int64_t>(at->numElements()));
    type = at->element();
  }
  return dims;
}

} // namespace

/// The structural digest of the probed kernel. Everything estimate() needs
/// is plain data copied out of the probe IR and reports — the probe
/// modules themselves are released after construction.
struct QoREstimation::Model {
  /// One pointer base (argument array, alloca, or a pseudo entry for any
  /// other base a memory access roots at).
  struct Array {
    bool marked = false;   // carries an xlx.array_partition directive
    unsigned dim = 0;      // partitioned dimension
    bool cyclic = true;
    int64_t extent = 1;    // size of the partitioned dimension
  };

  /// One load/store in a target loop's latch, in the same linearized form
  /// the scheduler's bank classification uses: subscript of the
  /// partitioned dimension = ivCoef * iv + constant (when linear).
  struct Access {
    size_t arrayIdx = 0;
    bool linear = false;   // shaped GEP with a symbol-free linear subscript
    int64_t ivCoef = 0;
    int64_t constant = 0;
  };

  struct Loop {
    std::string name;
    unsigned depth = 1;
    int64_t trip = 1;              // real (unflattened) trip count
    int parent = -1;
    std::vector<int> children;     // indices into loops
    bool topLevel = false;
    bool directiveTarget = false;  // the config's ii/unroll knobs land here
    bool canPipeline = false;      // the probe pipelined it
    bool flattenedAtProbe = false; // probe flattened it over its child
    // Pipelined-probe row (valid when canPipeline).
    int64_t recMII1 = 1;
    int64_t resMII1 = 1;
    int64_t depth1 = 1;
    int64_t iiSlack = 0; // achievedII - max(1, recMII1, resMII1) at probe
    // Baseline-probe decomposition.
    int64_t seqIter = 0;   // per-iteration latency (children included)
    int64_t seqDirect = 0; // seqIter minus the children's totals
    int64_t seqTotal = 0;
    // Latch-body contents (valid when directiveTarget).
    std::vector<Access> accesses;
    std::map<std::string, int64_t> classOps; // fuClass -> ops (for limits)
    std::map<std::string, std::pair<int64_t, ResourceUsage>>
        costedOps;             // fuClass -> (ops, per-unit cost)
    std::map<size_t, int64_t> loadsPerBase; // arrayIdx -> loads per iter
  };

  std::vector<Array> arrays;
  std::vector<Loop> loops;
  int64_t nonLoopLatency = 0; // baseline fn latency minus top-loop totals
  size_t topLoopCount = 0;
  vhls::TargetSpec target;

  flow::KernelConfig baselineConfig;
  flow::KernelConfig pipelinedConfig;
  QoR baselineQoR;
  QoR pipelinedQoR;
  ResourceUsage resBase;  // baseline probe resources
  ResourceUsage resPipe;  // pipelined probe resources
  ResourceUsage resPipeFloor; // resPipe minus the probe's pipelined FU cost

  /// Effective cyclic/block partition factor of `array` under `config` —
  /// the factor the scheduler would see in the xlx.array_partition
  /// metadata the kernel builder emits for that config.
  int64_t partitionFactorOf(const Array &array,
                            const flow::KernelConfig &config) const {
    if (!array.marked || !config.applyDirectives)
      return 1;
    return std::max<int64_t>(1, config.partitionFactor);
  }

  /// Mirror of the scheduler's ResMII computation for `loop`'s latch body
  /// unrolled by `factor` under `config`'s partition factor: replicate
  /// every access r=0..factor-1 (constant += ivCoef*r, ivCoef *= factor),
  /// classify each replica onto a bank residue class, and bound the II by
  /// the most-contended class (ports) and any FU allocation limits.
  int64_t resMIIFor(const Loop &loop, int64_t factor,
                    const flow::KernelConfig &config) const {
    std::map<std::pair<size_t, int64_t>, int64_t> classCount;
    std::map<size_t, int64_t> unknownCount;
    for (const Access &access : loop.accesses) {
      const Array &array = arrays[access.arrayIdx];
      int64_t f = partitionFactorOf(array, config);
      for (int64_t r = 0; r < factor; ++r) {
        if (f <= 1) {
          // Unpartitioned: single bank, known residue 0.
          classCount[{access.arrayIdx, 0}]++;
          continue;
        }
        if (!access.linear) {
          unknownCount[access.arrayIdx]++;
          continue;
        }
        int64_t constant = access.constant + access.ivCoef * r;
        int64_t ivCoef = access.ivCoef * factor;
        if (array.cyclic) {
          int64_t residue = ((constant % f) + f) % f;
          classCount[{access.arrayIdx, residue * 1000 + ivCoef % f}]++;
        } else if (ivCoef == 0) {
          int64_t residue = constant / std::max<int64_t>(1, array.extent / f);
          classCount[{access.arrayIdx, residue * 1000}]++;
        } else {
          unknownCount[access.arrayIdx]++;
        }
      }
    }
    int64_t resMII = 1;
    for (auto &[key, count] : classCount) {
      int64_t total = count + unknownCount[key.first];
      resMII = std::max(resMII,
                        vhls::portLimitedMII(total, target.memPortsPerBank));
    }
    for (auto &[idx, count] : unknownCount)
      resMII = std::max(resMII,
                        vhls::portLimitedMII(count, target.memPortsPerBank));
    if (!target.fuLimits.empty()) {
      for (auto &[cls, count] : loop.classOps)
        if (int limit = target.fuLimitFor(cls); limit > 0)
          resMII = std::max(
              resMII, vhls::allocationLimitedMII(count * factor, limit));
    }
    return resMII;
  }

  /// Extra cycles an unrolled *sequential* body pays over the baseline
  /// iteration: the replicated loads all want to issue immediately, so
  /// the most-contended array's load queue stretches the schedule by its
  /// additional issue slots (straight-line list scheduling serializes a
  /// bank's accesses at memPortsPerBank per cycle, and the partition
  /// directive does not split these classes — without a loop context the
  /// classifier folds every shaped access of a base into one class).
  int64_t sequentialUnrollGrowth(const Loop &loop, int64_t factor) const {
    int64_t growth = 0;
    for (auto &[idx, loads] : loop.loadsPerBase)
      growth = std::max(
          growth, ceilDiv(loads * factor, target.memPortsPerBank) -
                      ceilDiv(loads, target.memPortsPerBank));
    return growth;
  }

  /// Pipelined FU cost under per-loop (unroll factor, II) assignments:
  /// for every class the worst body's ceil(ops*factor / II) units, capped
  /// by any allocation limit, priced at the TechLibrary per-unit cost.
  /// This is the config-dependent slice of bindResources(); everything
  /// else (FSM, straight-line demand, memories) is anchored to the probe
  /// measurements.
  ResourceUsage pipelinedFuCost(
      const std::vector<std::pair<int64_t, int64_t>> &assignment) const {
    std::map<std::string, std::pair<int64_t, ResourceUsage>> demand;
    for (size_t i = 0; i < loops.size(); ++i) {
      auto [factor, ii] = assignment[i];
      if (ii <= 0)
        continue; // loop not pipelined under this config
      for (const auto &[cls, ops] : loops[i].costedOps) {
        int64_t units = vhls::pipelinedFuDemand(ops.first * factor, ii);
        auto [it, inserted] = demand.try_emplace(cls, units, ops.second);
        if (!inserted)
          it->second.first = std::max(it->second.first, units);
      }
    }
    ResourceUsage total;
    for (auto &[cls, unitsCost] : demand) {
      auto [units, cost] = unitsCost;
      if (int limit = target.fuLimitFor(cls); limit > 0)
        units = std::min<int64_t>(units, limit);
      total.dsp += cost.dsp * units;
      total.lut += cost.lut * units;
      total.ff += cost.ff * units;
    }
    return total;
  }
};

namespace {

QoR qorFromResult(const flow::FlowResult &result) {
  QoR qor;
  if (!result.ok) {
    qor.error = result.diagnostics.substr(0, result.diagnostics.find('\n'));
    if (qor.error.empty())
      qor.error = "flow failed";
    return qor;
  }
  const vhls::FunctionReport *top = result.synth.top();
  if (!top) {
    qor.error = "no top function report";
    return qor;
  }
  qor.ok = true;
  qor.latencyCycles = top->latencyCycles;
  qor.dsp = top->resources.dsp;
  qor.bram = top->resources.bram;
  qor.lut = top->resources.lut;
  qor.ff = top->resources.ff;
  return qor;
}

} // namespace

QoREstimation::QoREstimation() = default;
QoREstimation::~QoREstimation() = default;

const flow::KernelConfig &QoREstimation::baselineProbeConfig() const {
  return model_->baselineConfig;
}
const QoR &QoREstimation::baselineProbeQoR() const {
  return model_->baselineQoR;
}
const flow::KernelConfig &QoREstimation::pipelinedProbeConfig() const {
  return model_->pipelinedConfig;
}
const QoR &QoREstimation::pipelinedProbeQoR() const {
  return model_->pipelinedQoR;
}

std::unique_ptr<QoREstimation>
QoREstimation::build(const flow::KernelSpec &spec,
                     const flow::FlowOptions &flowOptions,
                     std::string *error) {
  auto fail = [&](std::string message) -> std::unique_ptr<QoREstimation> {
    if (error)
      *error = std::move(message);
    return nullptr;
  };

  flow::KernelConfig baseConfig;
  baseConfig.applyDirectives = false;
  flow::KernelConfig pipeConfig;
  pipeConfig.pipelineII = 1;
  pipeConfig.unrollFactor = 1;
  pipeConfig.partitionFactor = 2;
  pipeConfig.dataflow = false;

  flow::FlowResult base = flow::runAdaptorFlow(spec, baseConfig, flowOptions);
  QoR baseQoR = qorFromResult(base);
  if (!baseQoR.ok)
    return fail("baseline probe failed: " + baseQoR.error);
  flow::FlowResult pipe = flow::runAdaptorFlow(spec, pipeConfig, flowOptions);
  QoR pipeQoR = qorFromResult(pipe);
  if (!pipeQoR.ok)
    return fail("pipelined probe failed: " + pipeQoR.error);

  const vhls::FunctionReport *baseTop = base.synth.top();
  const vhls::FunctionReport *pipeTop = pipe.synth.top();
  lir::Function *fn = pipe.topFunction();
  if (!fn)
    return fail("pipelined probe kept no IR for the top function");
  if (baseTop->loops.size() != pipeTop->loops.size())
    return fail("probe reports disagree on loop structure");

  auto estimation = std::unique_ptr<QoREstimation>(new QoREstimation());
  estimation->spec_ = &spec;
  estimation->model_ = std::make_unique<Model>();
  Model &model = *estimation->model_;
  model.target = flowOptions.synthesis.target;
  model.baselineConfig = baseConfig;
  model.pipelinedConfig = pipeConfig;
  model.baselineQoR = baseQoR;
  model.pipelinedQoR = pipeQoR;
  model.resBase = {baseQoR.dsp, baseQoR.bram, baseQoR.lut, baseQoR.ff};
  model.resPipe = {pipeQoR.dsp, pipeQoR.bram, pipeQoR.lut, pipeQoR.ff};

  // ---- arrays (mirror of the scheduler's collectArrays) ----
  std::map<const lir::Value *, size_t> arrayIndex;
  auto addArray = [&](const lir::Value *value, const std::vector<int64_t> &dims,
                      const lir::MDNode *partitionMD) {
    Model::Array array;
    if (partitionMD && partitionMD->size() > 0) {
      const lir::MDNode *triple = partitionMD->getNode(0);
      if (triple && triple->size() >= 3) {
        array.marked = true;
        array.dim = static_cast<unsigned>(triple->getInt(0));
        array.cyclic = triple->getString(2) != "block";
      }
    }
    if (array.dim < dims.size())
      array.extent = dims[array.dim];
    arrayIndex[value] = model.arrays.size();
    model.arrays.push_back(array);
  };
  for (const auto &arg : fn->args()) {
    std::vector<int64_t> dims = arrayDims(arg->type());
    if (!dims.empty())
      addArray(arg.get(), dims, arg->getMetadata("xlx.array_partition"));
  }
  for (BasicBlock *bb : fn->blockPtrs())
    for (auto &inst : *bb) {
      if (inst->opcode() != Opcode::Alloca)
        continue;
      std::vector<int64_t> dims;
      lir::Type *elem = inst->allocatedType();
      while (const auto *at = dyn_cast<lir::ArrayType>(elem)) {
        dims.push_back(static_cast<int64_t>(at->numElements()));
        elem = at->element();
      }
      if (!dims.empty())
        addArray(inst.get(), dims, inst->getMetadata("xlx.array_partition"));
    }
  auto arrayIdxFor = [&](const lir::Value *base) {
    auto [it, inserted] = arrayIndex.try_emplace(base, model.arrays.size());
    if (inserted)
      model.arrays.push_back(Model::Array()); // unmarked pseudo array
    return it->second;
  };

  // ---- loops, aligned with the report rows ----
  // Both report probes enumerate loops the way the scheduler does: stable
  // sort by descending depth over LoopInfo's deterministic order. Rebuild
  // that order on the probe IR so loops[i] is report row i.
  lir::DominatorTree domTree(*fn);
  lir::LoopInfo loopInfo(*fn, domTree);
  std::vector<lir::Loop *> loops;
  for (const auto &loop : loopInfo.loops())
    loops.push_back(loop.get());
  std::stable_sort(loops.begin(), loops.end(),
                   [](lir::Loop *a, lir::Loop *b) {
                     return a->depth() > b->depth();
                   });
  if (loops.size() != pipeTop->loops.size())
    return fail("probe IR and report disagree on loop count");

  std::map<const lir::Loop *, int> loopIndex;
  for (size_t i = 0; i < loops.size(); ++i)
    loopIndex[loops[i]] = static_cast<int>(i);

  model.loops.resize(loops.size());
  for (size_t i = 0; i < loops.size(); ++i) {
    const vhls::LoopReport &pipeRow = pipeTop->loops[i];
    const vhls::LoopReport &baseRow = baseTop->loops[i];
    if (baseRow.name != pipeRow.name || baseRow.depth != pipeRow.depth)
      return fail("probe reports disagree on loop " + pipeRow.name);
    Model::Loop &L = model.loops[i];
    L.name = pipeRow.name;
    L.depth = pipeRow.depth;
    // The pipelined probe overwrites a flattened outer loop's trip count
    // with the flattened product; the baseline probe keeps the real one.
    L.trip = std::max<int64_t>(1, baseRow.tripCount >= 0 ? baseRow.tripCount
                                                         : 1);
    L.topLevel = loops[i]->parent() == nullptr;
    if (lir::Loop *parent = loops[i]->parent())
      L.parent = loopIndex[parent];
    for (lir::Loop *sub : loops[i]->subLoops())
      L.children.push_back(loopIndex[sub]);
    L.directiveTarget = pipeRow.targetII > 0;
    L.canPipeline = L.directiveTarget && pipeRow.pipelined;
    L.flattenedAtProbe = pipeRow.note == "flattened";
    if (L.canPipeline) {
      L.recMII1 = std::max<int64_t>(1, pipeRow.recMII);
      L.resMII1 = std::max<int64_t>(1, pipeRow.resMII);
      L.depth1 = std::max<int64_t>(1, pipeRow.iterationLatency);
      L.iiSlack = std::max<int64_t>(
          0, pipeRow.achievedII - std::max({int64_t(1), L.recMII1,
                                            L.resMII1}));
    }
    L.seqIter = baseRow.iterationLatency;
    L.seqTotal = baseRow.totalLatency;
    L.seqDirect = L.seqIter;
    if (L.topLevel)
      ++model.topLoopCount;
  }
  for (Model::Loop &L : model.loops)
    for (int child : L.children)
      L.seqDirect -= model.loops[child].seqTotal;

  model.nonLoopLatency = baseQoR.latencyCycles;
  for (const Model::Loop &L : model.loops)
    if (L.topLevel)
      model.nonLoopLatency -= L.seqTotal;

  // ---- latch bodies of the directive targets ----
  for (size_t i = 0; i < loops.size(); ++i) {
    Model::Loop &L = model.loops[i];
    if (!L.directiveTarget)
      continue;
    lir::Loop *loop = loops[i];
    auto canonical = lir::matchCanonicalLoop(loop);
    const lir::Value *iv = canonical ? canonical->indVar : nullptr;
    BasicBlock *latch = loop->latch();
    if (!latch)
      continue;
    for (auto &inst : *latch) {
      vhls::OpInfo info = vhls::characterize(*inst);
      L.classOps[info.fuClass]++;
      if (info.perUnit.dsp != 0 || info.perUnit.lut != 0) {
        auto &slot = L.costedOps[info.fuClass];
        slot.first++;
        slot.second = info.perUnit;
      }
      if (inst->opcode() != Opcode::Load && inst->opcode() != Opcode::Store)
        continue;
      Model::Access access;
      const lir::Value *ptr =
          inst->operand(inst->opcode() == Opcode::Store ? 1 : 0);
      const lir::Value *base = pointerRootOf(ptr);
      access.arrayIdx = arrayIdxFor(base);
      if (inst->opcode() == Opcode::Load)
        L.loadsPerBase[access.arrayIdx]++;
      const Model::Array &array = model.arrays[access.arrayIdx];
      const auto *gep = dyn_cast<Instruction>(ptr);
      if (gep && gep->opcode() == Opcode::GEP && gep->numOperands() >= 3 &&
          2 + array.dim < gep->numOperands()) {
        lir::LinearSubscript sub = lir::linearizeInIV(
            gep->operand(2 + array.dim), iv ? iv : gep->operand(2 + array.dim));
        if (sub.valid && sub.symbols.empty()) {
          access.linear = true;
          access.ivCoef = sub.ivCoef;
          access.constant = sub.constant;
        }
      }
      L.accesses.push_back(access);
    }
  }

  // Anchor the resource model: subtract the probe's own pipelined FU cost
  // so estimate() can re-add it under any (unroll, II) assignment.
  std::vector<std::pair<int64_t, int64_t>> probeAssignment(
      model.loops.size(), {1, 0});
  for (size_t i = 0; i < model.loops.size(); ++i)
    if (model.loops[i].canPipeline)
      probeAssignment[i] = {1, pipeTop->loops[i].achievedII};
  ResourceUsage probeFu = model.pipelinedFuCost(probeAssignment);
  model.resPipeFloor = model.resPipe;
  model.resPipeFloor.dsp = std::max<int64_t>(0, model.resPipe.dsp - probeFu.dsp);
  model.resPipeFloor.lut = std::max<int64_t>(0, model.resPipe.lut - probeFu.lut);
  model.resPipeFloor.ff = std::max<int64_t>(0, model.resPipe.ff - probeFu.ff);

  return estimation;
}

QoR QoREstimation::estimate(const flow::KernelConfig &config) const {
  const Model &model = *model_;
  if (!config.applyDirectives)
    return model.baselineQoR;

  struct LoopState {
    bool pipelined = false;
    int64_t trip = 1;  // effective iterations (post unroll / flatten)
    int64_t ii = 0;
    int64_t depth = 1;
    int64_t total = 0;
    int64_t factor = 1;
  };
  std::vector<LoopState> states(model.loops.size());

  // Innermost first: model.loops is sorted by descending depth, so every
  // child index is processed before its parent.
  for (size_t i = 0; i < model.loops.size(); ++i) {
    const Model::Loop &L = model.loops[i];
    LoopState &st = states[i];
    int64_t trip = L.trip;
    int64_t factor = 1;
    if (L.directiveTarget && config.unrollFactor > 1)
      factor = lir::clampUnrollFactor(trip, config.unrollFactor);
    st.factor = factor;

    if (L.directiveTarget && config.pipelineII > 0 && L.canPipeline) {
      // Pipelined leaf: the probe's MII components rescaled to the
      // config. Recurrence cycles stretch with the unrolled step; port
      // pressure is recomputed over the replicated accesses under the
      // config's partition factor; the probe's modulo-scheduling slack
      // (achieved minus minimum II) carries over.
      int64_t effTrip = std::max<int64_t>(1, trip / factor);
      int64_t recMII = L.recMII1 <= 1 ? 1 : L.recMII1 * factor;
      int64_t resMII = model.resMIIFor(L, factor, config);
      int64_t ii = std::max({config.pipelineII, recMII, resMII}) + L.iiSlack;
      int64_t depth =
          L.depth1 + (L.recMII1 > 1 ? (factor - 1) * L.recMII1 : 0);
      st.pipelined = true;
      st.trip = effTrip;
      st.ii = ii;
      st.depth = depth;
      st.total = vhls::pipelinedLoopLatency(depth, effTrip, ii);
      continue;
    }

    if (L.flattenedAtProbe && L.children.size() == 1 &&
        states[L.children[0]].pipelined) {
      // Perfect nest over a pipelined inner loop: one pipeline of
      // outerTrip * innerIterations at the inner II.
      const LoopState &child = states[L.children[0]];
      st.pipelined = true;
      st.trip = trip * child.trip;
      st.ii = child.ii;
      st.depth = child.depth;
      st.total = vhls::pipelinedLoopLatency(child.depth, st.trip, child.ii);
      continue;
    }

    // Sequential: the baseline probe's direct-block latency plus the
    // children under this config. Unrolled sequential bodies pay the
    // extra load-issue delay of the replicated accesses on top of the
    // baseline iteration (the replicas' compute chains overlap; the
    // memory ports do not).
    int64_t iter = L.seqDirect;
    for (int child : L.children)
      iter += states[child].total;
    if (factor > 1)
      iter += model.sequentialUnrollGrowth(L, factor);
    st.trip = std::max<int64_t>(1, factor > 1 ? trip / factor : trip);
    st.total = vhls::sequentialLoopLatency(st.trip, iter);
  }

  // Function latency: non-loop blocks plus the top-level nests — summed,
  // or overlapped as tasks under the dataflow directive.
  int64_t latency = model.nonLoopLatency;
  int64_t loopSum = 0, loopMax = 0, taskCount = 0;
  for (size_t i = 0; i < model.loops.size(); ++i) {
    if (!model.loops[i].topLevel)
      continue;
    loopSum += states[i].total;
    loopMax = std::max(loopMax, states[i].total);
    ++taskCount;
  }
  latency += config.dataflow && taskCount > 1 ? loopMax + taskCount : loopSum;

  // Resources: anchored to the probes. A config that pipelines re-adds
  // the pipelined FU demand onto the pipelined probe's floor; a purely
  // sequential config grows the baseline by the replicated body cost
  // (a deliberate monotone overestimate — unrolling never looks free).
  ResourceUsage res;
  bool anyPipelined = false;
  for (const LoopState &st : states)
    anyPipelined |= st.pipelined;
  if (anyPipelined) {
    std::vector<std::pair<int64_t, int64_t>> assignment(model.loops.size(),
                                                        {1, 0});
    for (size_t i = 0; i < model.loops.size(); ++i)
      if (states[i].pipelined && model.loops[i].canPipeline)
        assignment[i] = {states[i].factor, states[i].ii};
    res = model.resPipeFloor;
    res += model.pipelinedFuCost(assignment);
  } else {
    res = model.resBase;
  }
  for (size_t i = 0; i < model.loops.size(); ++i) {
    const Model::Loop &L = model.loops[i];
    if (!L.directiveTarget || states[i].pipelined || states[i].factor <= 1)
      continue;
    // An unrolled sequential body grows resources class by class. The
    // replicas' multi-cycle FP ops start staggered (the load-issue delay
    // spreads them out), so those units are mostly reused — roughly one
    // extra unit from the second doubling on. Zero-latency integer and
    // address ops all want the same early cycles, so their concurrency —
    // and LUT cost — scales with the factor. Strictly increasing either
    // way: deeper unrolling never estimates as resource-free.
    int64_t doublings = 0;
    for (int64_t f = states[i].factor; f > 1; f /= 2)
      ++doublings;
    for (const auto &[cls, ops] : L.costedOps) {
      auto [count, cost] = ops;
      int64_t extraUnits = cost.dsp > 0 ? doublings - 1
                                        : (states[i].factor - 1) * count;
      res.dsp += cost.dsp * extraUnits;
      res.lut += cost.lut * extraUnits;
      res.ff += cost.ff * extraUnits;
    }
  }

  QoR qor;
  qor.ok = true;
  qor.cosimOk = true;
  qor.latencyCycles = latency;
  qor.dsp = res.dsp;
  qor.bram = res.bram;
  qor.lut = res.lut;
  qor.ff = res.ff;
  return qor;
}

} // namespace mha::dse
