// Pareto.h - the shared multi-objective archive of non-dominated designs.
//
// All objectives are minimized. A design dominates another when it is no
// worse on every objective and strictly better on at least one; the
// archive keeps exactly the non-dominated set, including distinct configs
// whose objective vectors tie (the classic frontier definition — a tied
// design is not "strictly better" and must survive, matching the
// original exhaustive-sweep example).
//
// Determinism: entries() is kept sorted by (objective vector, config key),
// so the archive's contents and order are independent of evaluation and
// insertion order — a seeded random search and an exhaustive sweep that
// visit the same points report the same archive.
#pragma once

#include "dse/Evaluator.h"

namespace mha::dse {

enum class Objective { Latency, Dsp, Bram, Lut, Ff };

const char *objectiveName(Objective objective);

/// Objective sets: the default archive trades latency against every
/// resource; the legacy example's frontier is latency vs DSP only.
std::vector<Objective> defaultObjectives();   // latency, dsp, bram, lut
std::vector<Objective> latencyDspObjectives();

struct ArchiveEntry {
  flow::KernelConfig config;
  QoR qor;
  std::string key; // configKey(config), the deterministic tie-breaker
};

class ParetoArchive {
public:
  explicit ParetoArchive(std::vector<Objective> objectives =
                             defaultObjectives());

  const std::vector<Objective> &objectives() const { return objectives_; }

  /// Offers a design to the archive. Failed or mis-simulating designs and
  /// duplicates (same key) are rejected; a dominated design is rejected;
  /// otherwise the design enters and every design it dominates leaves.
  /// Returns true when the design is in the archive afterwards.
  bool insert(const flow::KernelConfig &config, const QoR &qor);

  /// Non-dominated set, sorted by (objective vector, key).
  const std::vector<ArchiveEntry> &entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool containsKey(const std::string &key) const;

  std::vector<int64_t> objectiveVector(const QoR &qor) const;
  /// True when `a` dominates `b` (<= everywhere, < somewhere).
  bool dominates(const QoR &a, const QoR &b) const;

  static int64_t objectiveValue(const QoR &qor, Objective objective);

private:
  std::vector<Objective> objectives_;
  std::vector<ArchiveEntry> entries_;
};

} // namespace mha::dse
