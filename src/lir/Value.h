// Value.h - SSA values, use-def chains, and users.
//
// Every operand edge is a Use object owned by the using instruction; each
// Value keeps the list of Uses pointing at it, so replaceAllUsesWith and
// hasOneUse are O(uses). This mirrors LLVM's model closely because the
// adaptor passes rely on precise def-use rewriting.
#pragma once

#include "lir/Type.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace mha::lir {

class User;
class Use;

class Value {
public:
  enum class Kind {
    Argument,
    Instruction,
    ConstantInt,
    ConstantFP,
    Undef,
    Function,
    BasicBlock,
  };

  virtual ~Value();

  Kind valueKind() const { return kind_; }
  Type *type() const { return type_; }
  void setType(Type *type) { type_ = type; }

  const std::string &name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }
  bool hasName() const { return !name_.empty(); }

  /// All Use edges that reference this value.
  const std::vector<Use *> &uses() const { return uses_; }
  bool hasUses() const { return !uses_.empty(); }
  bool hasOneUse() const { return uses_.size() == 1; }
  size_t numUses() const { return uses_.size(); }

  /// Redirects every use of this value to `replacement`.
  void replaceAllUsesWith(Value *replacement);

  bool isConstant() const {
    return kind_ == Kind::ConstantInt || kind_ == Kind::ConstantFP ||
           kind_ == Kind::Undef;
  }

  /// True for values visible to more than one function (context-owned
  /// constants and functions themselves). Their use-lists are the only
  /// cross-function shared mutable state, so parallel function passes
  /// serialize mutations of them (see LContext::setParallelUseLists).
  bool isShared() const { return isConstant() || kind_ == Kind::Function; }

protected:
  Value(Kind kind, Type *type) : kind_(kind), type_(type) {}

private:
  friend class Use;
  Kind kind_;
  Type *type_;
  std::string name_;
  std::vector<Use *> uses_;
};

/// One operand edge: `user` operand number `index` references `value`.
class Use {
public:
  Use(User *user, unsigned index) : user_(user), index_(index) {}
  ~Use() { set(nullptr); }

  Use(const Use &) = delete;
  Use &operator=(const Use &) = delete;

  Value *get() const { return value_; }
  User *user() const { return user_; }
  unsigned index() const { return index_; }

  /// Retargets this edge. Out-of-line: when the old or new value is
  /// shared across functions (constant, function) and parallel use-lists
  /// are enabled on its context, the mutation takes the context's
  /// use-list mutex.
  void set(Value *value);

private:
  friend class User;
  Value *value_ = nullptr;
  User *user_;
  unsigned index_;
};

/// A value that references other values (instructions, mostly).
class User : public Value {
public:
  unsigned numOperands() const { return static_cast<unsigned>(ops_.size()); }

  Value *operand(unsigned i) const {
    assert(i < ops_.size());
    return ops_[i]->get();
  }

  void setOperand(unsigned i, Value *value) {
    assert(i < ops_.size());
    ops_[i]->set(value);
  }

  /// Appends a new operand slot referencing `value`.
  void addOperand(Value *value) {
    ops_.push_back(std::make_unique<Use>(this, numOperands()));
    ops_.back()->set(value);
  }

  /// Removes operand `i`, shifting later operands down.
  void removeOperand(unsigned i) {
    assert(i < ops_.size());
    ops_.erase(ops_.begin() + i);
    for (unsigned j = i; j < ops_.size(); ++j)
      ops_[j]->index_ = j;
  }

  /// Drops every operand edge (used before deletion).
  void dropAllOperands() { ops_.clear(); }

  std::vector<Value *> operandValues() const {
    std::vector<Value *> out;
    out.reserve(ops_.size());
    for (const auto &u : ops_)
      out.push_back(u->get());
    return out;
  }

  /// Replaces every operand equal to `from` with `to`.
  void replaceUsesOfWith(Value *from, Value *to) {
    for (auto &u : ops_)
      if (u->get() == from)
        u->set(to);
  }

protected:
  User(Kind kind, Type *type) : Value(kind, type) {}

  std::vector<std::unique_ptr<Use>> ops_;
};

} // namespace mha::lir
