#include "lir/Verifier.h"

#include "lir/Function.h"
#include "lir/LContext.h"
#include "lir/Printer.h"
#include "lir/analysis/Dominators.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <set>

namespace mha::lir {

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Function &fn, DiagnosticEngine &diags)
      : fn_(fn), diags_(diags) {}

  bool run() {
    if (fn_.isDeclaration())
      return true;
    const_cast<Function &>(fn_).renumberValues();
    checkBlocks();
    if (!diags_.hadError())
      checkDominance();
    return !diags_.hadError();
  }

private:
  void error(const Instruction &inst, const std::string &msg) {
    diags_.error(strfmt("in @%s: %s: in '%s'", fn_.name().c_str(), msg.c_str(),
                        printInstruction(inst).c_str()));
  }

  void checkBlocks() {
    for (const auto &bb : const_cast<Function &>(fn_)) {
      if (bb->empty() || !bb->back()->isTerminator()) {
        diags_.error(strfmt("in @%s: block %%%s has no terminator",
                            fn_.name().c_str(), bb->name().c_str()));
        continue;
      }
      bool seenNonPhi = false;
      for (const auto &inst : *bb) {
        if (inst->opcode() == Opcode::Phi) {
          if (seenNonPhi)
            error(*inst, "phi after non-phi instruction");
          checkPhi(*inst, *bb);
        } else {
          seenNonPhi = true;
        }
        if (inst->isTerminator() && inst.get() != bb->back())
          error(*inst, "terminator in the middle of a block");
        checkTyping(*inst);
      }
    }
  }

  void checkPhi(const Instruction &phi, const BasicBlock &bb) {
    std::vector<BasicBlock *> preds = bb.predecessors();
    if (phi.numOperands() % 2 != 0) {
      error(phi, "phi with odd operand count");
      return;
    }
    std::set<const BasicBlock *> incoming;
    for (unsigned i = 0; i < phi.numIncoming(); ++i) {
      const Value *blockOp = phi.operand(2 * i + 1);
      if (!isa<BasicBlock>(blockOp)) {
        error(phi, "phi incoming-block operand is not a block");
        return;
      }
      const BasicBlock *in = phi.incomingBlock(i);
      if (!incoming.insert(in).second)
        error(phi, "duplicate incoming block in phi");
      if (std::find(preds.begin(), preds.end(), in) == preds.end())
        error(phi, strfmt("phi incoming block %%%s is not a predecessor",
                          in->name().c_str()));
      if (phi.incomingValue(i)->type() != phi.type() &&
          !isa<UndefValue>(phi.incomingValue(i)))
        error(phi, "phi incoming value type mismatch");
    }
    for (const BasicBlock *pred : preds)
      if (!incoming.count(pred))
        error(phi, strfmt("phi is missing an entry for predecessor %%%s",
                          pred->name().c_str()));
  }

  void checkTyping(const Instruction &inst) {
    switch (inst.opcode()) {
    case Opcode::Load:
      if (!inst.operand(0)->type()->isPointer())
        error(inst, "load address is not a pointer");
      else
        checkPointee(inst, cast<PointerType>(inst.operand(0)->type()),
                     inst.type());
      break;
    case Opcode::Store:
      if (!inst.operand(1)->type()->isPointer())
        error(inst, "store address is not a pointer");
      else
        checkPointee(inst, cast<PointerType>(inst.operand(1)->type()),
                     inst.operand(0)->type());
      break;
    case Opcode::GEP: {
      if (!inst.operand(0)->type()->isPointer()) {
        error(inst, "gep base is not a pointer");
        break;
      }
      if (!inst.sourceElemType()) {
        error(inst, "gep without source element type");
        break;
      }
      for (unsigned i = 1; i < inst.numOperands(); ++i)
        if (!inst.operand(i)->type()->isInteger())
          error(inst, "gep index is not an integer");
      break;
    }
    case Opcode::ICmp:
      if (!inst.operand(0)->type()->isInteger() &&
          !inst.operand(0)->type()->isPointer())
        error(inst, "icmp on non-integer");
      break;
    case Opcode::FCmp:
      if (!inst.operand(0)->type()->isFloatingPoint())
        error(inst, "fcmp on non-float");
      break;
    case Opcode::CondBr:
      if (inst.operand(0)->type() !=
          fn_.parentModule()->context().i1())
        error(inst, "conditional branch condition is not i1");
      break;
    case Opcode::Call: {
      const Function *callee = inst.calledFunction();
      if (!callee) {
        error(inst, "indirect calls are not supported");
        break;
      }
      const FunctionType *ft = callee->functionType();
      if (ft->paramTypes().size() != inst.numArgs()) {
        error(inst, "call argument count mismatch");
        break;
      }
      for (unsigned i = 0; i < inst.numArgs(); ++i)
        if (inst.arg(i)->type() != ft->paramTypes()[i])
          error(inst, strfmt("call argument %u type mismatch", i));
      if (inst.type() != ft->returnType())
        error(inst, "call result type mismatch");
      break;
    }
    case Opcode::Ret: {
      Type *expected = fn_.returnType();
      if (expected->isVoid()) {
        if (inst.numOperands() != 0)
          error(inst, "ret with value in void function");
      } else if (inst.numOperands() != 1 ||
                 inst.operand(0)->type() != expected) {
        error(inst, "ret value type mismatch");
      }
      break;
    }
    default:
      if (inst.isBinaryOp()) {
        if (inst.operand(0)->type() != inst.operand(1)->type() ||
            inst.operand(0)->type() != inst.type())
          error(inst, "binary op type mismatch");
        bool isFP = inst.opcode() == Opcode::FAdd ||
                    inst.opcode() == Opcode::FSub ||
                    inst.opcode() == Opcode::FMul ||
                    inst.opcode() == Opcode::FDiv;
        if (isFP != inst.type()->isFloatingPoint())
          error(inst, "binary op domain mismatch");
      }
      break;
    }
  }

  void checkPointee(const Instruction &inst, const PointerType *ptrTy,
                    const Type *accessTy) {
    // Typed pointers must agree with the accessed type; opaque pointers
    // carry no constraint (that is exactly the modern laxness the HLS
    // frontend cannot digest).
    if (!ptrTy->isOpaque() && ptrTy->pointee() != accessTy)
      error(inst, "typed-pointer pointee does not match accessed type");
  }

  void checkDominance() {
    DominatorTree domTree(const_cast<Function &>(fn_));
    for (const auto &bb : const_cast<Function &>(fn_)) {
      if (!domTree.isReachable(bb.get()))
        continue;
      for (const auto &inst : *bb) {
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
          const Value *op = inst->operand(i);
          if (!op) {
            error(*inst, strfmt("null operand %u", i));
            continue;
          }
          if (!domTree.valueDominatesUse(op, inst.get(), i))
            error(*inst, strfmt("operand %%%s does not dominate use",
                                op->name().c_str()));
        }
      }
    }
  }

  const Function &fn_;
  DiagnosticEngine &diags_;
};

} // namespace

bool verifyFunction(const Function &fn, DiagnosticEngine &diags) {
  return FunctionVerifier(fn, diags).run();
}

bool verifyModule(const Module &module, DiagnosticEngine &diags) {
  bool ok = true;
  for (const Function *fn : module.functions())
    ok &= verifyFunction(*fn, diags);
  return ok;
}

} // namespace mha::lir
