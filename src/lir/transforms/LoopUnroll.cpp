#include "lir/transforms/LoopUnroll.h"

#include "lir/Function.h"
#include "lir/LContext.h"

#include <map>

namespace mha::lir {

int64_t clampUnrollFactor(int64_t tripCount, int64_t requested) {
  if (requested <= 1 || tripCount <= 1)
    return 1;
  if (requested >= tripCount)
    return tripCount;
  int64_t factor = requested;
  while (factor > 1 && tripCount % factor != 0)
    --factor;
  return factor;
}

bool unrollLoopByFactor(CanonicalLoop &cl, int64_t factor) {
  if (factor <= 1)
    return true;
  Loop *loop = cl.loop;
  if (!cl.tripCount || *cl.tripCount % factor != 0)
    return false;
  // Shape: header + single body/latch block.
  if (loop->blocks().size() != 2)
    return false;
  BasicBlock *latch = loop->latch();
  if (!latch || latch == loop->header())
    return false;

  Function *fn = latch->parent();
  LContext &ctx = fn->parentModule()->context();
  Instruction *iv = cl.indVar;
  IntType *ivTy = cast<IntType>(iv->type());
  if (cl.ivNext->parent() != latch)
    return false;

  // Replicate EVERY non-terminator body instruction, including the old
  // iv increment: after CSE the increment may double as an address
  // expression (e.g. j+1 in a stencil subscript), so it must be treated
  // as ordinary arithmetic, never mutated in place.
  std::vector<Instruction *> bodyInsts;
  for (auto &inst : *latch) {
    if (inst->isTerminator())
      break;
    bodyInsts.push_back(inst.get());
  }

  Instruction *term = latch->terminator();
  auto termPos = latch->positionOf(term);
  for (int64_t k = 1; k < factor; ++k) {
    std::map<Value *, Value *> remap;
    // iv for the k-th replica: iv + k*step.
    auto ivPlus = std::make_unique<Instruction>(Opcode::Add, ivTy);
    ivPlus->addOperand(iv);
    ivPlus->addOperand(ctx.constInt(ivTy, k * cl.step));
    ivPlus->setName(iv->name() + ".u" + std::to_string(k));
    remap[iv] = latch->insert(termPos, std::move(ivPlus));

    for (Instruction *orig : bodyInsts) {
      std::unique_ptr<Instruction> copy = orig->clone();
      for (unsigned i = 0; i < copy->numOperands(); ++i) {
        auto it = remap.find(copy->operand(i));
        if (it != remap.end())
          copy->setOperand(i, it->second);
      }
      if (copy->hasName())
        copy->setName(copy->name() + ".u" + std::to_string(k));
      remap[orig] = latch->insert(termPos, std::move(copy));
    }
  }

  // Fresh widened increment feeding the phi; the old increment (and its
  // replicas) remain plain arithmetic, dead unless subscripts use them.
  auto widened = std::make_unique<Instruction>(Opcode::Add, ivTy);
  widened->addOperand(iv);
  widened->addOperand(ctx.constInt(ivTy, factor * cl.step));
  widened->setName(iv->name() + ".next.unrolled");
  Instruction *newNext = latch->insert(termPos, std::move(widened));
  for (unsigned i = 0; i < iv->numIncoming(); ++i)
    if (iv->incomingBlock(i) == latch)
      iv->setIncomingValue(i, newNext);

  cl.ivNext = newNext;
  cl.step *= factor;
  if (cl.tripCount)
    cl.tripCount = *cl.tripCount / factor;
  return true;
}

} // namespace mha::lir
