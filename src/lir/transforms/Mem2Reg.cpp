#include "lir/Function.h"
#include "lir/IRBuilder.h"
#include "lir/LContext.h"
#include "lir/analysis/Dominators.h"
#include "lir/transforms/Transforms.h"
#include "support/Telemetry.h"

#include <map>
#include <set>

namespace mha::lir {

namespace {

telemetry::Statistic numPromoted("mem2reg", "promoted",
                                 "allocas promoted to SSA registers");

/// An alloca is promotable when every use is a load of the allocated type
/// or a store of a value of that type *to* it (never storing the pointer
/// itself anywhere).
bool isPromotable(const Instruction &alloca) {
  Type *ty = alloca.allocatedType();
  if (!ty->isFirstClass())
    return false;
  for (const Use *use : alloca.uses()) {
    const auto *user = dyn_cast<Instruction>(use->user());
    if (!user)
      return false;
    if (user->opcode() == Opcode::Load) {
      if (user->type() != ty)
        return false;
    } else if (user->opcode() == Opcode::Store) {
      // Must be the address operand, and the stored value must match.
      if (use->index() != 1 || user->operand(0)->type() != ty)
        return false;
    } else {
      return false;
    }
  }
  return true;
}

class Mem2Reg : public FunctionPass {
public:
  std::string name() const override { return "mem2reg"; }

  bool runOnFunction(Function &fn, PassStats &stats,
                     DiagnosticEngine &) override {
    if (fn.isDeclaration())
      return false;
    std::vector<Instruction *> allocas;
    for (auto &inst : *fn.entry())
      if (inst->opcode() == Opcode::Alloca && isPromotable(*inst))
        allocas.push_back(inst.get());
    if (allocas.empty())
      return false;

    DominatorTree domTree(fn);
    // Dominance frontiers (quadratic walk; fine at kernel scale).
    std::map<BasicBlock *, std::set<BasicBlock *>> frontier;
    for (BasicBlock *bb : domTree.rpo()) {
      std::vector<BasicBlock *> preds = bb->predecessors();
      if (preds.size() < 2)
        continue;
      for (BasicBlock *pred : preds) {
        if (!domTree.isReachable(pred))
          continue;
        BasicBlock *runner = pred;
        while (runner && runner != domTree.idom(bb)) {
          frontier[runner].insert(bb);
          runner = domTree.idom(runner);
        }
      }
    }

    for (Instruction *alloca : allocas)
      promote(fn, *alloca, domTree, frontier);
    stats["mem2reg.promoted"] += static_cast<int64_t>(allocas.size());
    numPromoted += static_cast<int64_t>(allocas.size());
    return true;
  }

  void promote(Function &fn, Instruction &alloca, DominatorTree &domTree,
               std::map<BasicBlock *, std::set<BasicBlock *>> &frontier) {
    Type *ty = alloca.allocatedType();
    LContext &ctx = fn.parentModule()->context();

    // Phi placement at iterated dominance frontiers of def (store) blocks.
    std::set<BasicBlock *> defBlocks;
    for (const Use *use : alloca.uses()) {
      auto *user = cast<Instruction>(use->user());
      if (user->opcode() == Opcode::Store)
        defBlocks.insert(user->parent());
    }
    std::set<BasicBlock *> phiBlocks;
    std::vector<BasicBlock *> work(defBlocks.begin(), defBlocks.end());
    while (!work.empty()) {
      BasicBlock *bb = work.back();
      work.pop_back();
      for (BasicBlock *df : frontier[bb])
        if (phiBlocks.insert(df).second)
          work.push_back(df);
    }

    std::map<BasicBlock *, Instruction *> placedPhis;
    IRBuilder builder(ctx);
    for (BasicBlock *bb : phiBlocks) {
      builder.setInsertPoint(bb, bb->begin());
      placedPhis[bb] = builder.createPhi(ty, alloca.name() + ".phi");
    }

    // Renaming: DFS over the dominator tree, tracking the live value.
    std::map<BasicBlock *, std::vector<BasicBlock *>> domChildren;
    for (BasicBlock *bb : domTree.rpo())
      if (BasicBlock *parent = domTree.idom(bb))
        domChildren[parent].push_back(bb);

    struct Frame {
      BasicBlock *bb;
      Value *incoming;
    };
    std::vector<Frame> stack{{fn.entry(), ctx.undef(ty)}};
    std::vector<Instruction *> toErase;
    std::set<BasicBlock *> visited;
    while (!stack.empty()) {
      auto [bb, live] = stack.back();
      stack.pop_back();
      if (!visited.insert(bb).second)
        continue;
      if (auto it = placedPhis.find(bb); it != placedPhis.end())
        live = it->second;
      for (auto &inst : *bb) {
        if (inst->opcode() == Opcode::Load && inst->operand(0) == &alloca) {
          inst->replaceAllUsesWith(live);
          toErase.push_back(inst.get());
        } else if (inst->opcode() == Opcode::Store &&
                   inst->numOperands() > 1 && inst->operand(1) == &alloca) {
          live = inst->operand(0);
          toErase.push_back(inst.get());
        }
      }
      for (BasicBlock *succ : bb->successors())
        if (auto it = placedPhis.find(succ); it != placedPhis.end())
          it->second->addIncoming(live, bb);
      for (BasicBlock *child : domChildren[bb])
        stack.push_back({child, live});
    }

    for (Instruction *inst : toErase)
      inst->eraseFromParent();
    alloca.eraseFromParent();

    // Drop phis that ended up trivial (all incomings identical or self).
    bool simplified = true;
    while (simplified) {
      simplified = false;
      for (auto &[bb, phi] : placedPhis) {
        if (!phi || !phi->parent())
          continue;
        Value *common = nullptr;
        bool trivial = true;
        for (unsigned i = 0; i < phi->numIncoming(); ++i) {
          Value *in = phi->incomingValue(i);
          if (in == phi)
            continue;
          if (common && in != common) {
            trivial = false;
            break;
          }
          common = in;
        }
        if (trivial && common && !phi->hasUses()) {
          phi->eraseFromParent();
          phi = nullptr;
          simplified = true;
        } else if (trivial && common) {
          phi->replaceAllUsesWith(common);
          phi->eraseFromParent();
          phi = nullptr;
          simplified = true;
        }
      }
    }
  }
};

} // namespace

std::unique_ptr<ModulePass> createMem2RegPass() {
  return std::make_unique<Mem2Reg>();
}

} // namespace mha::lir
