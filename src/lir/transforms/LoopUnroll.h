// LoopUnroll.h - IR-level loop unrolling (utility, not a pass).
//
// The virtual HLS backend calls this when a loop carries an xlx.unroll
// directive, exactly as Vitis HLS unrolls internally before scheduling.
// Only the canonical single-body-block counted loop produced by both flows
// is handled; callers fall back to no-unroll otherwise.
#pragma once

#include "lir/analysis/LoopInfo.h"

namespace mha::lir {

/// Unrolls `loop` by `factor`. Requirements:
///  - canonical counted loop whose body is the single block that is also
///    the latch (header -> body -> header),
///  - constant trip count divisible by `factor` (callers clamp).
/// Returns true on success. The loop then executes tripCount/factor
/// iterations of a `factor`-times-larger body; the iv phi/compare are kept.
bool unrollLoopByFactor(CanonicalLoop &loop, int64_t factor);

/// Largest divisor of `tripCount` that is <= requested (Vitis clamps
/// non-dividing unroll factors similarly for exact-trip loops).
int64_t clampUnrollFactor(int64_t tripCount, int64_t requested);

} // namespace mha::lir
