// Inliner - bottom-up size-budgeted call-site inlining.
//
// Processing callees before callers (CallGraph SCC post-order) means every
// inlinable call inside a callee body was already resolved by the time the
// body is cloned into a caller, so one sweep per function suffices.
// Call sites left behind — external declarations, `noinline`, recursive
// callees, over-budget bodies — are counted in the pass stats and reported
// as notes so the adaptor's report explains why a call survived.
#include "lir/Function.h"
#include "lir/IRBuilder.h"
#include "lir/Instruction.h"
#include "lir/LContext.h"
#include "lir/Utils.h"
#include "lir/analysis/CallGraph.h"
#include "lir/transforms/Transforms.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <map>
#include <set>
#include <vector>

namespace mha::lir {

namespace {

telemetry::Statistic numInlined("inline", "inlined", "call sites inlined");

unsigned bodySize(Function *fn) {
  unsigned size = 0;
  for (BasicBlock *bb : fn->blockPtrs())
    size += static_cast<unsigned>(bb->size());
  return size;
}

/// True if the function body touches no memory and calls only readnone
/// definitions — safe to mark `readnone` so DCE can drop unused calls.
bool computesPurely(Function *fn) {
  for (BasicBlock *bb : fn->blockPtrs()) {
    for (auto &inst : *bb) {
      switch (inst->opcode()) {
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Alloca:
        return false;
      case Opcode::Call: {
        Function *callee = inst->calledFunction();
        if (!callee || callee->isDeclaration() ||
            !callee->hasAttr("readnone"))
          return false;
        break;
      }
      default:
        break;
      }
    }
  }
  return true;
}

class Inliner : public ModulePass {
public:
  explicit Inliner(InlinerOptions options) : options_(options) {}

  std::string name() const override { return "inline"; }

  bool run(Module &module, PassStats &stats,
           DiagnosticEngine &diags) override {
    CallGraph cg(module);
    bool changed = false;

    // Helpers that had call sites before inlining; candidates for erasure
    // once every use is gone. Never-called functions (top candidates and
    // unreferenced declarations) are left alone.
    std::set<Function *> everCalled;
    for (Function *fn : module.functions())
      if (!cg.callSitesOf(fn).empty())
        everCalled.insert(fn);

    for (Function *fn : cg.postOrder()) {
      std::vector<Instruction *> calls;
      for (BasicBlock *bb : fn->blockPtrs())
        for (auto &inst : *bb)
          if (inst->opcode() == Opcode::Call && inst->calledFunction())
            calls.push_back(inst.get());

      for (Instruction *call : calls) {
        Function *callee = call->calledFunction();
        if (callee->isDeclaration()) {
          stats["inline.skipped.external"]++;
          diags.note(strfmt("inline: call to external '%s' in '%s' left in "
                            "place",
                            callee->name().c_str(), fn->name().c_str()));
          continue;
        }
        if (cg.isRecursive(callee) || callee == fn) {
          stats["inline.skipped.recursive"]++;
          diags.note(strfmt("inline: recursive callee '%s' in '%s' left as "
                            "a call",
                            callee->name().c_str(), fn->name().c_str()));
          continue;
        }
        if (callee->hasAttr("noinline")) {
          stats["inline.skipped.noinline"]++;
          diags.note(strfmt("inline: 'noinline' callee '%s' in '%s' left "
                            "as a call",
                            callee->name().c_str(), fn->name().c_str()));
          continue;
        }
        unsigned size = bodySize(callee);
        if (size > options_.sizeBudget) {
          stats["inline.skipped.budget"]++;
          diags.note(strfmt("inline: callee '%s' (%u insts) exceeds budget "
                            "%u in '%s'",
                            callee->name().c_str(), size,
                            options_.sizeBudget, fn->name().c_str()));
          continue;
        }
        inlineCallSite(call, callee);
        stats["inline.count"]++;
        ++numInlined;
        changed = true;
      }
    }

    // Bodies that no longer touch memory (typically because their helpers
    // were inlined away) become `readnone`, making leftover unused calls
    // trivially dead for the cleanup DCE that follows this pass.
    for (Function *fn : cg.postOrder()) {
      if (fn->hasAttr("readnone") || !computesPurely(fn))
        continue;
      fn->attrs().insert("readnone");
      stats["inline.readnone"]++;
      changed = true;
    }

    for (Function *fn : module.functions()) {
      if (fn->isDeclaration() || !everCalled.count(fn) || fn->hasUses() ||
          fn->name() == options_.preservedFunction)
        continue;
      stats["inline.removed"]++;
      module.eraseFunction(fn);
      changed = true;
    }
    return changed;
  }

private:
  void inlineCallSite(Instruction *call, Function *callee) {
    Function *caller = call->function();
    LContext &ctx = caller->parentModule()->context();
    BasicBlock *preBB = call->parent();
    BasicBlock *contBB = splitBlockBefore(call, callee->name() + ".exit");

    std::map<Value *, Value *> valueMap;
    for (unsigned i = 0; i < callee->numArgs(); ++i)
      valueMap[callee->arg(i)] = call->arg(i);
    BasicBlock *entryClone =
        cloneBlocksInto(callee, caller, valueMap, "." + callee->name());
    preBB->terminator()->replaceSuccessor(contBB, entryClone);

    // Rewire each cloned `ret` to branch to the continuation; a value
    // return feeds the call's replacement (phi when several rets merge).
    std::vector<std::pair<Value *, BasicBlock *>> returns;
    for (BasicBlock *bb : callee->blockPtrs()) {
      Instruction *term = bb->terminator();
      if (!term || term->opcode() != Opcode::Ret)
        continue;
      auto *retClone = cast<Instruction>(valueMap.at(term));
      BasicBlock *retBB = retClone->parent();
      Value *retValue =
          retClone->numOperands() ? retClone->operand(0) : nullptr;
      retClone->eraseFromParent();
      IRBuilder builder(ctx);
      builder.setInsertPoint(retBB);
      builder.createBr(contBB);
      returns.emplace_back(retValue, retBB);
    }

    if (!call->type()->isVoid()) {
      Value *replacement = nullptr;
      if (returns.empty()) {
        // Callee never returns (infinite loop / unreachable): the
        // continuation is dead; simplify-cfg will collect it.
        replacement = ctx.undef(call->type());
      } else if (returns.size() == 1) {
        replacement = returns.front().first;
      } else {
        IRBuilder builder(ctx);
        builder.setInsertPoint(contBB, contBB->begin());
        Instruction *phi = builder.createPhi(call->type());
        for (auto &[value, bb] : returns)
          phi->addIncoming(value, bb);
        replacement = phi;
      }
      call->replaceAllUsesWith(replacement);
    }
    call->eraseFromParent();
  }

  InlinerOptions options_;
};

} // namespace

std::unique_ptr<ModulePass> createInlinerPass(InlinerOptions options) {
  return std::make_unique<Inliner>(std::move(options));
}

} // namespace mha::lir
