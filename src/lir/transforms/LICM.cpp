#include "lir/Function.h"
#include "lir/analysis/Dominators.h"
#include "lir/analysis/LoopInfo.h"
#include "lir/transforms/Transforms.h"
#include "support/Telemetry.h"

#include <set>

namespace mha::lir {

namespace {

telemetry::Statistic numHoisted("licm", "hoisted",
                                "loop-invariant instructions hoisted");

class LICM : public FunctionPass {
public:
  std::string name() const override { return "licm"; }

  bool runOnFunction(Function &fn, PassStats &stats,
                     DiagnosticEngine &) override {
    if (fn.isDeclaration())
      return false;
    bool changed = false;
    // Hoisting can enable more hoisting in enclosing loops; iterate.
    bool local = true;
    while (local) {
      local = false;
      DominatorTree domTree(fn);
      LoopInfo loopInfo(fn, domTree);
      for (const auto &loop : loopInfo.loops())
        local |= hoistFromLoop(*loop, stats);
      changed |= local;
    }
    return changed;
  }

private:
  /// True when `inst` can move: pure, and every operand defined outside
  /// the loop. Phis never move; neither does anything touching memory.
  bool isHoistable(const Instruction &inst, const Loop &loop) {
    switch (inst.opcode()) {
    case Opcode::Phi:
    case Opcode::Load:
    case Opcode::Store:
    case Opcode::Call:
    case Opcode::Alloca:
      return false;
    // Division can trap; never speculate it above the loop guard.
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem:
    case Opcode::FDiv:
      return false;
    default:
      break;
    }
    if (inst.isTerminator())
      return false;
    for (unsigned i = 0; i < inst.numOperands(); ++i) {
      const auto *def = dyn_cast<Instruction>(inst.operand(i));
      if (def && loop.contains(def))
        return false;
    }
    return true;
  }

  bool hoistFromLoop(Loop &loop, PassStats &stats) {
    BasicBlock *preheader = loop.preheader();
    if (!preheader)
      return false;
    Instruction *insertBefore = preheader->terminator();
    if (!insertBefore)
      return false;

    bool changed = false;
    bool progress = true;
    while (progress) {
      progress = false;
      for (BasicBlock *bb : loop.blocks()) {
        for (Instruction *inst : collectInsts(bb)) {
          if (!isHoistable(*inst, loop))
            continue;
          std::unique_ptr<Instruction> owned = inst->removeFromParent();
          preheader->insert(preheader->positionOf(insertBefore),
                            std::move(owned));
          stats["licm.hoisted"]++;
          ++numHoisted;
          progress = changed = true;
        }
      }
    }
    return changed;
  }

  static std::vector<Instruction *> collectInsts(BasicBlock *bb) {
    std::vector<Instruction *> out;
    for (auto &inst : *bb)
      out.push_back(inst.get());
    return out;
  }
};

} // namespace

std::unique_ptr<ModulePass> createLICMPass() {
  return std::make_unique<LICM>();
}

} // namespace mha::lir
