#include "lir/Function.h"
#include "lir/analysis/Dominators.h"
#include "lir/transforms/Transforms.h"
#include "support/Telemetry.h"

#include <functional>
#include <map>
#include <tuple>

namespace mha::lir {

namespace {

telemetry::Statistic numEliminated("cse", "eliminated",
                                   "redundant instructions eliminated");

/// Structural key for pure instructions. Commutative binops canonicalize
/// operand order by pointer so a+b and b+a unify.
using CSEKey = std::tuple<Opcode, int /*pred*/, const void * /*type*/,
                          const void * /*srcElemTy*/,
                          std::vector<const void *> /*operands*/>;

bool isCSECandidate(const Instruction &inst) {
  if (inst.hasSideEffects() || inst.opcode() == Opcode::Phi ||
      inst.opcode() == Opcode::Load || inst.opcode() == Opcode::Alloca)
    return false;
  return true;
}

CSEKey keyOf(const Instruction &inst) {
  std::vector<const void *> ops;
  ops.reserve(inst.numOperands());
  for (unsigned i = 0; i < inst.numOperands(); ++i)
    ops.push_back(inst.operand(i));
  if (inst.isCommutative() && ops.size() == 2 && ops[0] > ops[1])
    std::swap(ops[0], ops[1]);
  return {inst.opcode(), static_cast<int>(inst.predicate()), inst.type(),
          inst.sourceElemType(), std::move(ops)};
}

class CSE : public FunctionPass {
public:
  std::string name() const override { return "cse"; }

  bool runOnFunction(Function &fn, PassStats &stats,
                     DiagnosticEngine &) override {
    if (fn.isDeclaration())
      return false;
    DominatorTree domTree(fn);
    std::map<BasicBlock *, std::vector<BasicBlock *>> domChildren;
    for (BasicBlock *bb : domTree.rpo())
      if (BasicBlock *parent = domTree.idom(bb))
        domChildren[parent].push_back(bb);

    std::map<CSEKey, Instruction *> available;
    bool changed = false;
    // Recursive DFS over the dominator tree with scope rollback.
    std::function<void(BasicBlock *)> visit = [&](BasicBlock *bb) {
      std::vector<std::pair<CSEKey, Instruction *>> shadowed;
      std::vector<Instruction *> dead;
      for (auto &instPtr : *bb) {
        Instruction *inst = instPtr.get();
        if (!isCSECandidate(*inst))
          continue;
        CSEKey key = keyOf(*inst);
        auto it = available.find(key);
        if (it != available.end()) {
          inst->replaceAllUsesWith(it->second);
          dead.push_back(inst);
          stats["cse.eliminated"]++;
          ++numEliminated;
          changed = true;
        } else {
          shadowed.push_back({key, nullptr});
          available.emplace(std::move(key), inst);
        }
      }
      for (Instruction *inst : dead)
        inst->eraseFromParent();
      for (BasicBlock *child : domChildren[bb])
        visit(child);
      for (auto &[key, prev] : shadowed)
        available.erase(key);
    };
    visit(fn.entry());
    return changed;
  }
};

} // namespace

std::unique_ptr<ModulePass> createCSEPass() { return std::make_unique<CSE>(); }

} // namespace mha::lir
