// CallSitePrivatization - clone callees whose pointer arguments bind
// distinct buffers at different call sites.
//
// Downstream, array partitioning and memory-port binding are computed per
// function argument: if two call sites pass *different* buffers through
// the same formal parameter, the two accesses are forced to share one
// port/partition decision. Cloning the callee per distinct pointer-arg
// binding keeps those decisions per-call-site, exactly as DuroHLS's pass
// of the same name does. Buffers are distinguished by the SSA identity of
// the pointer actual — in this IR pointers originate from arguments and
// allocas, so distinct values are distinct buffers.
#include "lir/Function.h"
#include "lir/Instruction.h"
#include "lir/Utils.h"
#include "lir/analysis/CallGraph.h"
#include "lir/transforms/Transforms.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <map>
#include <vector>

namespace mha::lir {

namespace {

telemetry::Statistic numClones("privatize", "clones",
                               "callee clones created per call-site group");

class CallSitePrivatization : public ModulePass {
public:
  std::string name() const override { return "callsite-privatize"; }

  bool run(Module &module, PassStats &stats,
           DiagnosticEngine &diags) override {
    CallGraph cg(module);
    bool changed = false;
    for (Function *fn : module.functions()) {
      if (fn->isDeclaration() || cg.isRecursive(fn))
        continue;
      bool hasPointerParam = false;
      for (unsigned i = 0; i < fn->numArgs(); ++i)
        hasPointerParam |= fn->arg(i)->type()->isPointer();
      if (!hasPointerParam)
        continue;
      const std::vector<Instruction *> &sites = cg.callSitesOf(fn);
      if (sites.size() < 2)
        continue;

      // Group call sites by the tuple of pointer actuals they pass.
      std::map<std::vector<Value *>, std::vector<Instruction *>> groups;
      std::vector<std::vector<Value *>> order; // deterministic iteration
      for (Instruction *call : sites) {
        std::vector<Value *> key;
        for (unsigned i = 0; i < call->numArgs(); ++i)
          if (call->arg(i)->type()->isPointer())
            key.push_back(call->arg(i));
        if (!groups.count(key))
          order.push_back(key);
        groups[key].push_back(call);
      }
      if (order.size() < 2)
        continue;

      // The first group (in call-site order) keeps the original; each
      // further group gets a private clone.
      for (size_t g = 1; g < order.size(); ++g) {
        std::string cloneName = fn->name() + ".priv" + std::to_string(g);
        while (module.getFunction(cloneName))
          cloneName += ".p";
        Function *clone = cloneFunction(fn, cloneName);
        for (Instruction *call : groups[order[g]])
          call->setOperand(0, clone);
        stats["privatize.clones"]++;
        ++numClones;
        diags.note(strfmt("callsite-privatize: cloned '%s' as '%s' for %zu "
                          "call site(s) with a distinct buffer binding",
                          fn->name().c_str(), cloneName.c_str(),
                          groups[order[g]].size()));
        changed = true;
      }
      stats["privatize.functions"]++;
    }
    return changed;
  }
};

} // namespace

std::unique_ptr<ModulePass> createCallSitePrivatizationPass() {
  return std::make_unique<CallSitePrivatization>();
}

} // namespace mha::lir
