#include "lir/Function.h"
#include "lir/IRBuilder.h"
#include "lir/LContext.h"
#include "lir/transforms/Transforms.h"

#include <set>

namespace mha::lir {

namespace {

class SimplifyCFG : public FunctionPass {
public:
  std::string name() const override { return "simplifycfg"; }

  bool runOnFunction(Function &fn, PassStats &stats,
                     DiagnosticEngine &) override {
    if (fn.isDeclaration())
      return false;
    bool changed = false;
    while (runOnce(fn, stats))
      changed = true;
    return changed;
  }

private:
  bool runOnce(Function &fn, PassStats &stats) {
    return removeUnreachable(fn, stats) || foldConstantBranches(fn, stats) ||
           mergeChains(fn, stats) || skipForwarders(fn, stats);
  }

  bool removeUnreachable(Function &fn, PassStats &stats) {
    std::set<BasicBlock *> reachable;
    std::vector<BasicBlock *> work{fn.entry()};
    while (!work.empty()) {
      BasicBlock *bb = work.back();
      work.pop_back();
      if (!reachable.insert(bb).second)
        continue;
      for (BasicBlock *succ : bb->successors())
        work.push_back(succ);
    }
    std::vector<BasicBlock *> dead;
    for (BasicBlock *bb : fn.blockPtrs())
      if (!reachable.count(bb))
        dead.push_back(bb);
    if (dead.empty())
      return false;

    // Remove phi entries coming from dead blocks, then drop edges and
    // values defined in dead blocks.
    for (BasicBlock *bb : dead)
      for (BasicBlock *succ : bb->successors())
        if (reachable.count(succ))
          for (Instruction *phi : succ->phis())
            if (phi->incomingValueFor(bb))
              phi->removeIncoming(bb);
    for (BasicBlock *bb : dead) {
      for (auto &inst : *bb) {
        // Values defined in unreachable code can only be used by other
        // unreachable code; replace with undef to break cycles.
        if (!inst->type()->isVoid() && inst->hasUses())
          inst->replaceAllUsesWith(
              fn.parentModule()->context().undef(inst->type()));
        inst->dropAllOperands();
      }
    }
    for (BasicBlock *bb : dead) {
      assert(!bb->hasUses() && "dead block still referenced");
      fn.eraseBlock(bb);
    }
    stats["simplifycfg.unreachable-removed"] +=
        static_cast<int64_t>(dead.size());
    return true;
  }

  bool foldConstantBranches(Function &fn, PassStats &stats) {
    bool changed = false;
    for (BasicBlock *bb : fn.blockPtrs()) {
      Instruction *term = bb->terminator();
      if (!term || term->opcode() != Opcode::CondBr)
        continue;
      auto *cond = dyn_cast<ConstantInt>(term->condition());
      if (!cond)
        continue;
      BasicBlock *taken = cond->isZero() ? term->falseDest() : term->trueDest();
      BasicBlock *dead = cond->isZero() ? term->trueDest() : term->falseDest();
      if (dead != taken)
        for (Instruction *phi : dead->phis())
          if (phi->incomingValueFor(bb))
            phi->removeIncoming(bb);
      IRBuilder builder(fn.parentModule()->context());
      builder.setInsertPoint(bb);
      MDMap savedMD = std::move(term->metadata());
      term->eraseFromParent();
      Instruction *br = builder.createBr(taken);
      br->metadata() = std::move(savedMD);
      stats["simplifycfg.condbr-folded"]++;
      changed = true;
    }
    return changed;
  }

  bool mergeChains(Function &fn, PassStats &stats) {
    for (BasicBlock *bb : fn.blockPtrs()) {
      Instruction *term = bb->terminator();
      if (!term || term->opcode() != Opcode::Br)
        continue;
      BasicBlock *succ = term->brDest();
      if (succ == bb || succ == fn.entry())
        continue;
      std::vector<BasicBlock *> preds = succ->predecessors();
      if (preds.size() != 1 || preds[0] != bb)
        continue;
      if (!succ->phis().empty()) {
        // Single-pred phis are trivially replaceable.
        for (Instruction *phi : succ->phis()) {
          phi->replaceAllUsesWith(phi->incomingValue(0));
        }
        while (!succ->phis().empty())
          succ->phis().front()->eraseFromParent();
      }
      // Splice succ's instructions into bb, drop the br, retarget uses of
      // succ as a block to bb (there are none left: bb was sole pred).
      MDMap savedMD = std::move(term->metadata());
      term->eraseFromParent();
      while (!succ->empty()) {
        std::unique_ptr<Instruction> inst = succ->front()->removeFromParent();
        bb->append(std::move(inst));
      }
      // Propagate loop metadata from the old branch onto the new
      // terminator if that terminator has none (keeps directives alive).
      if (Instruction *newTerm = bb->terminator())
        for (auto &[key, node] : savedMD)
          if (!newTerm->getMetadata(key))
            newTerm->setMetadata(key, node->clone());
      succ->replaceAllUsesWith(bb);
      fn.eraseBlock(succ);
      stats["simplifycfg.blocks-merged"]++;
      return true; // block list changed; restart
    }
    return false;
  }

  bool skipForwarders(Function &fn, PassStats &stats) {
    for (BasicBlock *bb : fn.blockPtrs()) {
      if (bb == fn.entry())
        continue;
      // Block contains only `br %target` and has no phis.
      if (bb->size() != 1)
        continue;
      Instruction *term = bb->terminator();
      if (!term || term->opcode() != Opcode::Br ||
          !term->metadata().empty())
        continue;
      BasicBlock *target = term->brDest();
      if (target == bb)
        continue;
      std::vector<BasicBlock *> preds = bb->predecessors();
      if (preds.empty())
        continue;
      // Phi safety: retargeting pred->target must not create conflicting
      // phi entries.
      bool safe = true;
      std::vector<BasicBlock *> targetPreds = target->predecessors();
      for (BasicBlock *pred : preds) {
        if (std::find(targetPreds.begin(), targetPreds.end(), pred) !=
            targetPreds.end()) {
          safe = false; // pred already branches to target directly
          break;
        }
      }
      if (!safe || !target->phis().empty())
        continue;
      for (BasicBlock *pred : preds)
        pred->terminator()->replaceSuccessor(bb, target);
      term->eraseFromParent();
      assert(!bb->hasUses());
      fn.eraseBlock(bb);
      stats["simplifycfg.forwarders-removed"]++;
      return true;
    }
    return false;
  }
};

} // namespace

std::unique_ptr<ModulePass> createSimplifyCFGPass() {
  return std::make_unique<SimplifyCFG>();
}

} // namespace mha::lir
