#include "lir/Function.h"
#include "lir/LContext.h"
#include "lir/transforms/Transforms.h"
#include "support/Compiler.h"
#include "support/IntMath.h"

#include <cmath>
#include <optional>

namespace mha::lir {

namespace {

/// Evaluates an iN binop on canonical-form constants with the same
/// semantics as interp::Interpreter: wrap-around modulo 2^width, shifts
/// operating in the value's width. Returns nullopt for operations the
/// interpreter diagnoses as undefined (division by zero, sdiv/srem
/// overflow, shift amounts >= width) — those must not be folded away, or
/// the folded program would diverge from the unfolded one under
/// co-simulation.
std::optional<int64_t> evalIntBinop(Opcode op, int64_t a, int64_t b,
                                    unsigned width) {
  switch (op) {
  case Opcode::Add:
    return canonicalInt(static_cast<uint64_t>(a) + static_cast<uint64_t>(b),
                        width);
  case Opcode::Sub:
    return canonicalInt(static_cast<uint64_t>(a) - static_cast<uint64_t>(b),
                        width);
  case Opcode::Mul:
    return canonicalInt(static_cast<uint64_t>(a) * static_cast<uint64_t>(b),
                        width);
  case Opcode::SDiv:
    if (b == 0 || (a == minSignedInt(width) && b == -1))
      return std::nullopt;
    return a / b;
  case Opcode::UDiv:
    if (b == 0)
      return std::nullopt;
    return canonicalInt(truncBits(a, width) / truncBits(b, width), width);
  case Opcode::SRem:
    if (b == 0 || (a == minSignedInt(width) && b == -1))
      return std::nullopt;
    return a % b;
  case Opcode::URem:
    if (b == 0)
      return std::nullopt;
    return canonicalInt(truncBits(a, width) % truncBits(b, width), width);
  case Opcode::And:
    return a & b;
  case Opcode::Or:
    return a | b;
  case Opcode::Xor:
    return a ^ b;
  case Opcode::Shl:
    if (static_cast<uint64_t>(b) >= width)
      return std::nullopt;
    return canonicalInt(truncBits(a, width) << b, width);
  case Opcode::LShr:
    if (static_cast<uint64_t>(b) >= width)
      return std::nullopt;
    return canonicalInt(truncBits(a, width) >> b, width);
  case Opcode::AShr:
    if (static_cast<uint64_t>(b) >= width)
      return std::nullopt;
    return a >> b;
  default:
    unreachable("not an int binop");
  }
}

double evalFPBinop(Opcode op, double a, double b) {
  switch (op) {
  case Opcode::FAdd:
    return a + b;
  case Opcode::FSub:
    return a - b;
  case Opcode::FMul:
    return a * b;
  case Opcode::FDiv:
    return a / b;
  default:
    unreachable("not an fp binop");
  }
}

bool evalICmp(CmpPred pred, int64_t a, int64_t b) {
  uint64_t ua = static_cast<uint64_t>(a), ub = static_cast<uint64_t>(b);
  switch (pred) {
  case CmpPred::EQ:
    return a == b;
  case CmpPred::NE:
    return a != b;
  case CmpPred::SLT:
    return a < b;
  case CmpPred::SLE:
    return a <= b;
  case CmpPred::SGT:
    return a > b;
  case CmpPred::SGE:
    return a >= b;
  case CmpPred::ULT:
    return ua < ub;
  case CmpPred::ULE:
    return ua <= ub;
  case CmpPred::UGT:
    return ua > ub;
  case CmpPred::UGE:
    return ua >= ub;
  default:
    unreachable("not an integer predicate");
  }
}

class InstCombine : public FunctionPass {
public:
  std::string name() const override { return "instcombine"; }

  bool runOnFunction(Function &fn, PassStats &stats,
                     DiagnosticEngine &) override {
    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      for (BasicBlock *bb : fn.blockPtrs()) {
        for (auto &instPtr : *bb) {
          Instruction *inst = instPtr.get();
          if (Value *folded = simplify(inst)) {
            inst->replaceAllUsesWith(folded);
            stats["instcombine.simplified"]++;
            local = changed = true;
          }
        }
        if (local)
          break; // instruction list may have stale iteration state
      }
    }
    return changed;
  }

private:
  Value *simplify(Instruction *inst) {
    if (inst->hasUses() == false && !inst->hasSideEffects())
      return nullptr; // DCE's job
    // Derive the context per call: a ctx_ member written from run() would
    // be shared mutable state under parallel function-at-a-time execution.
    LContext *ctx_ = &inst->type()->context();
    Opcode op = inst->opcode();
    if (inst->isBinaryOp())
      return simplifyBinop(inst);
    switch (op) {
    case Opcode::ICmp: {
      auto *a = dyn_cast<ConstantInt>(inst->operand(0));
      auto *b = dyn_cast<ConstantInt>(inst->operand(1));
      if (a && b)
        return ctx_->constI1(evalICmp(inst->predicate(), a->value(),
                                      b->value()));
      if (inst->operand(0) == inst->operand(1)) {
        CmpPred p = inst->predicate();
        if (p == CmpPred::EQ || p == CmpPred::SLE || p == CmpPred::SGE ||
            p == CmpPred::ULE || p == CmpPred::UGE)
          return ctx_->constI1(true);
        return ctx_->constI1(false);
      }
      return nullptr;
    }
    case Opcode::Select: {
      if (auto *c = dyn_cast<ConstantInt>(inst->operand(0)))
        return c->isZero() ? inst->operand(2) : inst->operand(1);
      if (inst->operand(1) == inst->operand(2))
        return inst->operand(1);
      return nullptr;
    }
    case Opcode::SExt:
    case Opcode::ZExt:
    case Opcode::Trunc: {
      auto *c = dyn_cast<ConstantInt>(inst->operand(0));
      if (!c)
        return nullptr;
      auto *toTy = cast<IntType>(inst->type());
      int64_t v = c->value();
      if (op == Opcode::ZExt && c->width() < 64) {
        uint64_t mask = (uint64_t(1) << c->width()) - 1;
        v = static_cast<int64_t>(static_cast<uint64_t>(v) & mask);
      }
      return ctx_->constInt(toTy, v);
    }
    case Opcode::SIToFP: {
      if (auto *c = dyn_cast<ConstantInt>(inst->operand(0)))
        return ctx_->constFP(inst->type(), static_cast<double>(c->value()));
      return nullptr;
    }
    case Opcode::FPToSI: {
      if (auto *c = dyn_cast<ConstantFP>(inst->operand(0)))
        return ctx_->constInt(cast<IntType>(inst->type()),
                              static_cast<int64_t>(c->value()));
      return nullptr;
    }
    case Opcode::Bitcast:
      if (inst->operand(0)->type() == inst->type())
        return inst->operand(0);
      return nullptr;
    case Opcode::Freeze:
      // Freeze of a non-undef constant is that constant.
      if (isa<ConstantInt>(inst->operand(0)) ||
          isa<ConstantFP>(inst->operand(0)))
        return inst->operand(0);
      return nullptr;
    case Opcode::GEP:
      // No gep-of-zero folding: the HLS flow relies on explicit address
      // instructions surviving for delinearization and pointer typing.
      return nullptr;
    default:
      return nullptr;
    }
  }

  Value *simplifyBinop(Instruction *inst) {
    LContext *ctx_ = &inst->type()->context();
    Opcode op = inst->opcode();
    Value *lhs = inst->operand(0);
    Value *rhs = inst->operand(1);
    auto *lc = dyn_cast<ConstantInt>(lhs);
    auto *rc = dyn_cast<ConstantInt>(rhs);
    auto *lf = dyn_cast<ConstantFP>(lhs);
    auto *rf = dyn_cast<ConstantFP>(rhs);

    if (inst->type()->isInteger()) {
      if (lc && rc) {
        if (auto folded =
                evalIntBinop(op, lc->value(), rc->value(),
                             cast<IntType>(inst->type())->width()))
          return ctx_->constInt(cast<IntType>(inst->type()), *folded);
        return nullptr;
      }
      // Canonical identities.
      switch (op) {
      case Opcode::Add:
        if (rc && rc->isZero())
          return lhs;
        if (lc && lc->isZero())
          return rhs;
        break;
      case Opcode::Sub:
        if (rc && rc->isZero())
          return lhs;
        if (lhs == rhs)
          return ctx_->constInt(cast<IntType>(inst->type()), 0);
        break;
      case Opcode::Mul:
        if (rc && rc->isOne())
          return lhs;
        if (lc && lc->isOne())
          return rhs;
        if ((rc && rc->isZero()) || (lc && lc->isZero()))
          return ctx_->constInt(cast<IntType>(inst->type()), 0);
        break;
      case Opcode::SDiv:
      case Opcode::UDiv:
        if (rc && rc->isOne())
          return lhs;
        break;
      case Opcode::And:
        if (lhs == rhs)
          return lhs;
        if ((rc && rc->isZero()) || (lc && lc->isZero()))
          return ctx_->constInt(cast<IntType>(inst->type()), 0);
        break;
      case Opcode::Or:
        if (lhs == rhs)
          return lhs;
        if (rc && rc->isZero())
          return lhs;
        if (lc && lc->isZero())
          return rhs;
        break;
      case Opcode::Xor:
        if (lhs == rhs)
          return ctx_->constInt(cast<IntType>(inst->type()), 0);
        break;
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
        if (rc && rc->isZero())
          return lhs;
        break;
      default:
        break;
      }
      return nullptr;
    }

    // FP: fold constants only; no fast-math identities (x+0.0 is not a
    // no-op with signed zeros, and HLS QoR comparisons want bit-exactness).
    if (lf && rf)
      return ctx_->constFP(inst->type(), evalFPBinop(op, lf->value(),
                                                     rf->value()));
    return nullptr;
  }

};

} // namespace

std::unique_ptr<ModulePass> createInstCombinePass() {
  return std::make_unique<InstCombine>();
}

} // namespace mha::lir
