// Rec2Iter - rewrite direct self-recursion into an explicit-stack loop.
//
// HLS frontends cannot synthesize recursion: there is no runtime stack in
// hardware. This pass gives a directly self-recursive function a bounded,
// statically-sized stack of its own:
//
//   * every SSA value (arguments, instruction results, phis) is demoted to
//     a per-frame slot in a local `[depth x T]` array indexed by a scalar
//     stack pointer `sp` (a reg2mem over the whole body),
//   * each self-call site becomes "push a frame, record a resume state,
//     jump to the dispatch loop"; each `ret` becomes "write the result
//     slot, pop, jump to dispatch",
//   * a dispatch block reads the popped frame's resume state and branches
//     to the matching continuation; `sp < 0` exits with the final result.
//
// The depth bound comes from a `mha.rec_depth=N` function attribute when
// present (consumed by the pass), else the pass-wide default. Exceeding it
// transfers to `unreachable`, which the interpreter diagnoses and the
// scheduler costs as a dead exit. The demoted slot arrays become on-chip
// BRAM downstream, which is exactly the hardware realization of a bounded
// call stack.
#include "lir/Function.h"
#include "lir/IRBuilder.h"
#include "lir/Instruction.h"
#include "lir/LContext.h"
#include "lir/Utils.h"
#include "lir/analysis/CallGraph.h"
#include "lir/transforms/Transforms.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <vector>

namespace mha::lir {

namespace {

telemetry::Statistic numRewritten("rec2iter", "rewritten",
                                  "self-recursive functions rewritten");

constexpr const char *DepthAttrPrefix = "mha.rec_depth=";

class Rec2Iter : public ModulePass {
public:
  explicit Rec2Iter(unsigned defaultMaxDepth)
      : defaultMaxDepth_(defaultMaxDepth) {}

  std::string name() const override { return "rec2iter"; }

  bool run(Module &module, PassStats &stats,
           DiagnosticEngine &diags) override {
    CallGraph cg(module);
    bool changed = false;
    for (Function *fn : module.functions()) {
      if (fn->isDeclaration())
        continue;
      if (!cg.isSelfRecursive(fn)) {
        if (cg.isRecursive(fn)) {
          stats["rec2iter.skipped.mutual"]++;
          diags.note(strfmt("rec2iter: '%s' is mutually recursive; only "
                            "direct self-recursion is rewritten",
                            fn->name().c_str()));
        }
        continue;
      }
      if (!canTransform(fn)) {
        stats["rec2iter.skipped.unsupported"]++;
        diags.note(strfmt("rec2iter: '%s' uses allocas or returns a "
                          "pointer; left recursive",
                          fn->name().c_str()));
        continue;
      }
      transform(fn, depthBound(fn));
      stats["rec2iter.rewritten"]++;
      ++numRewritten;
      changed = true;
    }
    return changed;
  }

private:
  unsigned depthBound(Function *fn) const {
    unsigned depth = defaultMaxDepth_;
    for (auto it = fn->attrs().begin(); it != fn->attrs().end();) {
      if (it->rfind(DepthAttrPrefix, 0) == 0) {
        long parsed = std::strtol(it->c_str() + std::strlen(DepthAttrPrefix),
                                  nullptr, 10);
        if (parsed > 0)
          depth = static_cast<unsigned>(parsed);
        it = fn->attrs().erase(it);
      } else {
        ++it;
      }
    }
    return depth;
  }

  static bool canTransform(Function *fn) {
    if (fn->returnType()->isPointer())
      return false;
    for (BasicBlock *bb : fn->blockPtrs())
      for (auto &inst : *bb)
        if (inst->opcode() == Opcode::Alloca)
          return false;
    return true;
  }

  void transform(Function *fn, unsigned depth) {
    Module *module = fn->parentModule();
    LContext &ctx = module->context();
    IRBuilder b(ctx);
    IntType *i64 = ctx.i64();
    IntType *i32 = ctx.i32();

    // --- 1. Isolate each self-call in its own [call, br resume] block so
    // pushing a frame can replace the whole block tail.
    std::vector<Instruction *> selfCalls;
    for (BasicBlock *bb : fn->blockPtrs())
      for (auto &inst : *bb)
        if (inst->opcode() == Opcode::Call &&
            inst->calledFunction() == fn)
          selfCalls.push_back(inst.get());
    std::vector<BasicBlock *> resumeTargets;
    for (Instruction *call : selfCalls) {
      splitBlockBefore(call, "push");
      auto next = std::next(call->parent()->positionOf(call));
      resumeTargets.push_back(splitBlockBefore(next->get(), "resume"));
    }

    std::vector<BasicBlock *> bodyBlocks = fn->blockPtrs();
    BasicBlock *bodyEntry = fn->entry();

    // --- 2. Frame slots: one [depth x T] array per demoted value.
    BasicBlock *prologue = fn->createBlockBefore(bodyEntry, "rec.prologue");
    b.setInsertPoint(prologue);
    std::map<Value *, Instruction *> slots; // value -> its slot alloca
    auto makeSlot = [&](Value *v, const std::string &name) {
      slots[v] = b.createAlloca(ctx.arrayTy(v->type(), depth), name);
    };
    for (unsigned i = 0; i < fn->numArgs(); ++i)
      makeSlot(fn->arg(i), "rec.arg" + std::to_string(i));
    std::vector<Instruction *> demoted;
    std::set<Instruction *> selfCallSet(selfCalls.begin(), selfCalls.end());
    for (BasicBlock *bb : bodyBlocks)
      for (auto &inst : *bb)
        if (!inst->type()->isVoid()) {
          makeSlot(inst.get(), "rec.v");
          demoted.push_back(inst.get());
        }
    Instruction *spSlot = b.createAlloca(i64, "rec.sp");
    Instruction *resumeSlot =
        b.createAlloca(ctx.arrayTy(i32, depth), "rec.state");
    Instruction *retSlot = fn->returnType()->isVoid()
                               ? nullptr
                               : b.createAlloca(fn->returnType(), "rec.ret");

    // Emits `&slot[load sp (+ adjust)]` at the current insert point.
    auto slotAddr = [&](Instruction *slot, int64_t adjust) -> Value * {
      Value *sp = b.createLoad(i64, spSlot, "sp");
      if (adjust)
        sp = b.createBinOp(Opcode::Add, sp, ctx.constI64(adjust));
      return b.createGEP(slot->allocatedType(), slot,
                         {ctx.constI64(0), sp});
    };

    // --- 3. Phi elimination: incoming values become stores to the phi's
    // slot at the tail of each predecessor. The phis themselves die after
    // use-rewriting (their remaining operand uses are ignored below). The
    // stored operand is rewritten to a slot load like any other use in
    // step 5 — the incoming value's definition may stop dominating the
    // predecessor once call sites are rewired through the dispatch loop.
    std::vector<Instruction *> phis;
    for (BasicBlock *bb : bodyBlocks)
      for (Instruction *phi : bb->phis())
        phis.push_back(phi);
    for (Instruction *phi : phis) {
      for (unsigned i = 0; i < phi->numIncoming(); ++i) {
        BasicBlock *pred = phi->incomingBlock(i);
        b.setInsertPointBefore(pred->terminator());
        b.createStore(phi->incomingValue(i), slotAddr(slots.at(phi), 0));
      }
    }

    // --- 4. Def-stores: every non-phi demoted value is written to its
    // slot right where it is defined. Self-calls are skipped — their slot
    // is written by the resume block when the child frame returns.
    std::map<const Value *, Instruction *> defStoreOf;
    for (Instruction *inst : demoted) {
      if (inst->opcode() == Opcode::Phi || selfCallSet.count(inst))
        continue;
      BasicBlock *bb = inst->parent();
      b.setInsertPoint(bb, std::next(bb->positionOf(inst)));
      defStoreOf[inst] =
          b.createStore(inst, slotAddr(slots.at(inst), 0));
    }

    // --- 5. Use-rewriting: every remaining use of a demoted value loads
    // its slot just before the user. A value's own def-store keeps the
    // direct operand (that is the one live register); phi operands are
    // left alone (the phis are erased next).
    for (auto &[value, slot] : slots) {
      std::vector<Use *> uses(value->uses().begin(), value->uses().end());
      for (Use *use : uses) {
        auto *user = dyn_cast<Instruction>(use->user());
        if (!user || user->opcode() == Opcode::Phi)
          continue;
        auto defStore = defStoreOf.find(value);
        if (defStore != defStoreOf.end() && user == defStore->second &&
            use->index() == 0)
          continue;
        b.setInsertPointBefore(user);
        Value *load =
            b.createLoad(value->type(), slotAddr(slot, 0), "rec.use");
        use->set(load);
      }
    }
    for (Instruction *phi : phis)
      phi->eraseFromParent();

    // --- 6. Control skeleton.
    BasicBlock *dispatch = fn->createBlock("rec.dispatch");
    BasicBlock *exitBB = fn->createBlock("rec.exit");
    BasicBlock *overflowBB = fn->createBlock("rec.overflow");
    b.setInsertPoint(overflowBB);
    b.createUnreachable();
    b.setInsertPoint(exitBB);
    if (retSlot)
      b.createRet(b.createLoad(fn->returnType(), retSlot, "rec.result"));
    else
      b.createRet();

    // Dispatch: pop-or-continue. sp < 0 means the root frame returned.
    b.setInsertPoint(dispatch);
    Value *sp = b.createLoad(i64, spSlot, "sp");
    Value *done = b.createICmp(CmpPred::SLT, sp, ctx.constI64(0), "done");
    BasicBlock *stateBB = fn->createBlock("rec.state0");
    b.createCondBr(done, exitBB, stateBB);
    b.setInsertPoint(stateBB);
    Value *state = b.createLoad(i32, slotAddr(resumeSlot, 0), "state");
    // state == k resumes call site k (1-based); state 0 is a fresh frame.
    for (unsigned k = 0; k < resumeTargets.size(); ++k) {
      BasicBlock *resumeK = fn->createBlock("rec.resume" +
                                            std::to_string(k + 1));
      b.setInsertPoint(resumeK);
      Instruction *call = selfCalls[k];
      if (!call->type()->isVoid()) {
        Value *rv = b.createLoad(fn->returnType(), retSlot, "rec.child");
        b.createStore(rv, slotAddr(slots.at(call), 0));
      }
      b.createBr(resumeTargets[k]);

      b.setInsertPoint(stateBB);
      Value *isK = b.createICmp(CmpPred::EQ, state,
                                ctx.constInt(i32, int64_t(k) + 1), "is.k");
      BasicBlock *nextCheck =
          k + 1 == resumeTargets.size()
              ? bodyEntry
              : fn->createBlock("rec.state" + std::to_string(k + 1));
      b.createCondBr(isK, resumeK, nextCheck);
      if (nextCheck != bodyEntry)
        stateBB = nextCheck;
    }
    if (resumeTargets.empty()) {
      b.setInsertPoint(stateBB);
      b.createBr(bodyEntry);
    }

    // --- 7. Push blocks: replace each [call, br resume] tail with a
    // depth-checked frame push that jumps back to dispatch.
    for (unsigned k = 0; k < selfCalls.size(); ++k) {
      Instruction *call = selfCalls[k];
      BasicBlock *pushBB = call->parent();
      pushBB->terminator()->eraseFromParent();
      std::vector<Value *> callArgs;
      for (unsigned i = 0; i < call->numArgs(); ++i)
        callArgs.push_back(call->arg(i));
      call->eraseFromParent();

      b.setInsertPoint(pushBB);
      Value *cur = b.createLoad(i64, spSlot, "sp");
      Value *next = b.createBinOp(Opcode::Add, cur, ctx.constI64(1), "sp1");
      Value *over = b.createICmp(CmpPred::SGE, next,
                                 ctx.constI64(int64_t(depth)), "over");
      BasicBlock *doPush = fn->createBlock("rec.dopush" +
                                           std::to_string(k + 1));
      b.createCondBr(over, overflowBB, doPush);

      b.setInsertPoint(doPush);
      b.createStore(ctx.constInt(i32, int64_t(k) + 1),
                    slotAddr(resumeSlot, 0));
      for (unsigned i = 0; i < callArgs.size(); ++i)
        b.createStore(callArgs[i], slotAddr(slots.at(fn->arg(i)), 1));
      b.createStore(ctx.constI32(0), slotAddr(resumeSlot, 1));
      Value *bumped = b.createLoad(i64, spSlot, "sp");
      b.createStore(b.createBinOp(Opcode::Add, bumped, ctx.constI64(1)),
                    spSlot);
      b.createBr(dispatch);
    }

    // --- 8. Returns: write the result slot, pop, re-enter dispatch.
    for (BasicBlock *bb : bodyBlocks) {
      Instruction *term = bb->terminator();
      if (!term || term->opcode() != Opcode::Ret)
        continue;
      Value *retValue = term->numOperands() ? term->operand(0) : nullptr;
      term->eraseFromParent();
      b.setInsertPoint(bb);
      if (retSlot && retValue)
        b.createStore(retValue, retSlot);
      Value *cur = b.createLoad(i64, spSlot, "sp");
      b.createStore(b.createBinOp(Opcode::Sub, cur, ctx.constI64(1)),
                    spSlot);
      b.createBr(dispatch);
    }

    // --- 9. Prologue: root frame at sp=0 with the real arguments.
    b.setInsertPoint(prologue);
    b.createStore(ctx.constI64(0), spSlot);
    for (unsigned i = 0; i < fn->numArgs(); ++i)
      b.createStore(fn->arg(i), slotAddr(slots.at(fn->arg(i)), 0));
    b.createStore(ctx.constI32(0), slotAddr(resumeSlot, 0));
    b.createBr(dispatch);

    fn->attrs().insert("norecurse");
    fn->renumberValues();
  }

  unsigned defaultMaxDepth_;
};

} // namespace

std::unique_ptr<ModulePass> createRec2IterPass(unsigned defaultMaxDepth) {
  return std::make_unique<Rec2Iter>(defaultMaxDepth);
}

} // namespace mha::lir
