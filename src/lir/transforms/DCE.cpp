#include "lir/Function.h"
#include "lir/transforms/Transforms.h"
#include "support/Telemetry.h"

namespace mha::lir {

namespace {

telemetry::Statistic numRemoved("dce", "removed",
                                "dead instructions removed");

class DCE : public FunctionPass {
public:
  std::string name() const override { return "dce"; }

  bool runOnFunction(Function &fn, PassStats &stats,
                     DiagnosticEngine &) override {
    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      for (BasicBlock *bb : fn.blockPtrs()) {
        std::vector<Instruction *> dead;
        for (auto &inst : *bb)
          if (inst->isTriviallyDead())
            dead.push_back(inst.get());
        for (Instruction *inst : dead) {
          inst->eraseFromParent();
          stats["dce.removed"]++;
          ++numRemoved;
          local = changed = true;
        }
      }
    }
    return changed;
  }
};

} // namespace

std::unique_ptr<ModulePass> createDCEPass() { return std::make_unique<DCE>(); }

} // namespace mha::lir
