// Transforms.h - scalar optimization passes over MiniLLVM.
//
// These model the mid-end cleanups both flows get: the MLIR flow runs them
// after lowering (and the adaptor relies on canonical IR), the HLS C++ flow
// runs them inside the "frontend" just as Vitis does after clang codegen.
#pragma once

#include "lir/PassManager.h"

#include <memory>

namespace mha::lir {

/// Promotes allocas whose only uses are same-typed loads/stores to SSA
/// registers (phi insertion at iterated dominance frontiers).
std::unique_ptr<ModulePass> createMem2RegPass();

/// Removes unreachable blocks, folds constant conditional branches, merges
/// straight-line block chains and skips empty forwarding blocks.
std::unique_ptr<ModulePass> createSimplifyCFGPass();

/// Deletes side-effect-free instructions with no uses (iterates to fixpoint).
std::unique_ptr<ModulePass> createDCEPass();

/// Constant folding + algebraic identities (x+0, x*1, x*0, gep-zero, ...).
std::unique_ptr<ModulePass> createInstCombinePass();

/// Dominator-scoped common subexpression elimination for pure instructions.
std::unique_ptr<ModulePass> createCSEPass();

/// Loop-invariant code motion: hoists pure instructions whose operands are
/// defined outside the loop into the preheader. Loads/stores/calls stay
/// put (memory motion is the scheduler's business in an HLS flow).
std::unique_ptr<ModulePass> createLICMPass();

// --- Call legalization (multi-function adaptor input) ---

struct InlinerOptions {
  /// Callees with more instructions than this are left as calls (with a
  /// remark) rather than inlined.
  unsigned sizeBudget = 256;
  /// Function name never erased even when every call site was inlined
  /// (the flow's synthesis top).
  std::string preservedFunction;
};

/// Bottom-up size-budgeted inliner. Calls to external, `noinline` or
/// recursive callees are left in place and reported as diagnostics.
/// Callees whose body became side-effect-free are marked `readnone` so DCE
/// can drop unused residual calls; fully-inlined helpers are erased.
std::unique_ptr<ModulePass> createInlinerPass(InlinerOptions options = {});

/// Rewrites directly self-recursive functions into an explicit-stack loop:
/// every SSA value gets a per-frame slot in a local array sized by the
/// recursion depth bound (`mha.rec_depth=N` function attribute, else
/// `defaultMaxDepth`); exceeding the bound executes `unreachable`.
std::unique_ptr<ModulePass> createRec2IterPass(unsigned defaultMaxDepth = 64);

/// Clones callees whose pointer arguments bind distinct buffers at
/// different call sites, so downstream array partitioning and port mapping
/// stay per-call-site.
std::unique_ptr<ModulePass> createCallSitePrivatizationPass();

} // namespace mha::lir
