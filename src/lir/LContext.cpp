#include "lir/LContext.h"

#include "lir/Constants.h"
#include "support/Arena.h"
#include "support/Hash.h"
#include "support/StringUtils.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <unordered_map>

namespace mha::lir {

namespace {
/// A non-IntType singleton type (void, float, double, label).
class SimpleType : public Type {
public:
  SimpleType(LContext &ctx, Kind kind) : Type(ctx, kind) {}
};
} // namespace

struct LContext::Impl {
  explicit Impl(LContext &ctx)
      : voidTy(ctx, Type::Kind::Void), labelTy(ctx, Type::Kind::Label),
        floatTy(ctx, Type::Kind::Float), doubleTy(ctx, Type::Kind::Double) {}

  BumpAllocator arena;

  SimpleType voidTy;
  SimpleType labelTy;
  SimpleType floatTy;
  SimpleType doubleTy;

  // Every uniquing method locks this so parallel function passes can
  // create constants/types concurrently. Uncontended in serial mode.
  std::mutex uniquingMutex;
  // Guards shared-value use-lists while parallelUseLists is on.
  std::mutex useListMutex;
  std::atomic<bool> parallelUseLists{false};

  std::unordered_map<unsigned, IntType *> intTypes;
  std::unordered_map<Type *, PointerType *> ptrTypes;
  PointerType *opaquePtr = nullptr;
  // Composite-key maps use an FNV hash of the structure -> candidate
  // list, verified structurally on each hit (collisions stay correct).
  std::unordered_map<uint64_t, std::vector<ArrayType *>> arrayTypes;
  std::unordered_map<uint64_t, std::vector<StructType *>> structTypes;
  std::unordered_map<uint64_t, std::vector<FunctionType *>> fnTypes;

  std::unordered_map<uint64_t, std::vector<ConstantInt *>> intConsts;
  // Keyed by bit pattern, not value: keying on the double itself aliases
  // every NaN payload onto one node and merges +0.0/-0.0.
  std::unordered_map<uint64_t, std::vector<ConstantFP *>> fpConsts;
  std::unordered_map<Type *, UndefValue *> undefs;
};

template <typename T, typename... Args> T *LContext::alloc(Args &&...args) {
  void *mem = impl_->arena.allocate(sizeof(T), alignof(T));
  T *obj = new (mem) T(std::forward<Args>(args)...);
  impl_->arena.registerDestructor(obj);
  return obj;
}

LContext::LContext() : impl_(std::make_unique<Impl>(*this)) {}
LContext::~LContext() = default;

void LContext::setParallelUseLists(bool enabled) {
  impl_->parallelUseLists.store(enabled, std::memory_order_release);
}

bool LContext::parallelUseLists() const {
  return impl_->parallelUseLists.load(std::memory_order_acquire);
}

std::mutex &LContext::useListMutex() { return impl_->useListMutex; }

size_t LContext::arenaBytes() const { return impl_->arena.bytesAllocated(); }

Type *LContext::voidTy() { return &impl_->voidTy; }
Type *LContext::labelTy() { return &impl_->labelTy; }
Type *LContext::floatTy() { return &impl_->floatTy; }
Type *LContext::doubleTy() { return &impl_->doubleTy; }

IntType *LContext::intTy(unsigned width) {
  assert(width >= 1 && width <= 64 && "unsupported integer width");
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  auto &slot = impl_->intTypes[width];
  if (!slot)
    slot = alloc<IntType>(*this, width);
  return slot;
}

PointerType *LContext::ptrTy(Type *pointee) {
  assert(pointee && "use opaquePtrTy() for opaque pointers");
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  auto &slot = impl_->ptrTypes[pointee];
  if (!slot)
    slot = alloc<PointerType>(*this, pointee);
  return slot;
}

PointerType *LContext::opaquePtrTy() {
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  if (!impl_->opaquePtr)
    impl_->opaquePtr = alloc<PointerType>(*this, nullptr);
  return impl_->opaquePtr;
}

ArrayType *LContext::arrayTy(Type *element, uint64_t count) {
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  uint64_t key = HashBuilder().pointer(element).u64(count).get();
  auto &bucket = impl_->arrayTypes[key];
  for (ArrayType *at : bucket)
    if (at->element() == element && at->numElements() == count)
      return at;
  bucket.push_back(alloc<ArrayType>(*this, element, count));
  return bucket.back();
}

StructType *LContext::structTy(std::string name, std::vector<Type *> fields) {
  // Structs are uniqued by structural equality (name is cosmetic).
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  HashBuilder h;
  h.str(name).u64(fields.size());
  for (Type *f : fields)
    h.pointer(f);
  auto &bucket = impl_->structTypes[h.get()];
  for (StructType *st : bucket)
    if (st->fields() == fields && st->name() == name)
      return st;
  bucket.push_back(
      alloc<StructType>(*this, std::move(name), std::move(fields)));
  return bucket.back();
}

FunctionType *LContext::fnTy(Type *ret, std::vector<Type *> params) {
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  HashBuilder h;
  h.pointer(ret).u64(params.size());
  for (Type *p : params)
    h.pointer(p);
  auto &bucket = impl_->fnTypes[h.get()];
  for (FunctionType *ft : bucket)
    if (ft->returnType() == ret && ft->paramTypes() == params)
      return ft;
  bucket.push_back(alloc<FunctionType>(*this, ret, std::move(params)));
  return bucket.back();
}

ConstantInt *LContext::constInt(IntType *type, int64_t value) {
  // Normalize to the type's width so i1 true is always stored as 1.
  if (type->width() < 64) {
    uint64_t mask = (uint64_t(1) << type->width()) - 1;
    uint64_t bits = static_cast<uint64_t>(value) & mask;
    // Sign-extend for canonical storage.
    uint64_t sign = uint64_t(1) << (type->width() - 1);
    value = static_cast<int64_t>((bits ^ sign) - sign);
  }
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  uint64_t key = HashBuilder().pointer(type).i64(value).get();
  auto &bucket = impl_->intConsts[key];
  for (ConstantInt *c : bucket)
    if (c->type() == type && c->value() == value)
      return c;
  bucket.push_back(alloc<ConstantInt>(type, value));
  return bucket.back();
}

ConstantInt *LContext::constI1(bool value) {
  return constInt(i1(), value ? -1 : 0);
}
ConstantInt *LContext::constI32(int32_t value) {
  return constInt(i32(), value);
}
ConstantInt *LContext::constI64(int64_t value) {
  return constInt(i64(), value);
}

ConstantFP *LContext::constFP(Type *type, double value) {
  assert(type->isFloatingPoint());
  if (type->kind() == Type::Kind::Float)
    value = static_cast<float>(value); // round to storage precision
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  uint64_t key = HashBuilder().pointer(type).u64(bits).get();
  auto &bucket = impl_->fpConsts[key];
  for (ConstantFP *c : bucket) {
    uint64_t cbits;
    std::memcpy(&cbits, &c->value_, sizeof(cbits));
    if (c->type() == type && cbits == bits)
      return c;
  }
  bucket.push_back(alloc<ConstantFP>(type, value));
  return bucket.back();
}

UndefValue *LContext::undef(Type *type) {
  std::lock_guard<std::mutex> lock(impl_->uniquingMutex);
  auto &slot = impl_->undefs[type];
  if (!slot)
    slot = alloc<UndefValue>(type);
  return slot;
}

// --- Type methods that need full definitions ---

uint64_t Type::sizeInBytes() const {
  switch (kind_) {
  case Kind::Void:
  case Kind::Label:
  case Kind::Function:
    return 0;
  case Kind::Integer: {
    unsigned w = static_cast<const IntType *>(this)->width();
    return (w + 7) / 8;
  }
  case Kind::Float:
    return 4;
  case Kind::Double:
    return 8;
  case Kind::Pointer:
    return 8;
  case Kind::Array: {
    auto *at = static_cast<const ArrayType *>(this);
    return at->element()->sizeInBytes() * at->numElements();
  }
  case Kind::Struct: {
    auto *st = static_cast<const StructType *>(this);
    uint64_t size = 0;
    for (Type *f : st->fields())
      size += f->sizeInBytes();
    return size;
  }
  }
  return 0;
}

std::string Type::str() const {
  switch (kind_) {
  case Kind::Void:
    return "void";
  case Kind::Label:
    return "label";
  case Kind::Integer:
    return strfmt("i%u", static_cast<const IntType *>(this)->width());
  case Kind::Float:
    return "float";
  case Kind::Double:
    return "double";
  case Kind::Pointer: {
    auto *pt = static_cast<const PointerType *>(this);
    if (pt->isOpaque())
      return "ptr";
    return pt->pointee()->str() + "*";
  }
  case Kind::Array: {
    auto *at = static_cast<const ArrayType *>(this);
    return strfmt("[%llu x %s]",
                  static_cast<unsigned long long>(at->numElements()),
                  at->element()->str().c_str());
  }
  case Kind::Struct: {
    auto *st = static_cast<const StructType *>(this);
    std::string out = "{ ";
    for (size_t i = 0; i < st->fields().size(); ++i) {
      if (i)
        out += ", ";
      out += st->fields()[i]->str();
    }
    out += " }";
    return out;
  }
  case Kind::Function: {
    auto *ft = static_cast<const FunctionType *>(this);
    std::string out = ft->returnType()->str() + " (";
    for (size_t i = 0; i < ft->paramTypes().size(); ++i) {
      if (i)
        out += ", ";
      out += ft->paramTypes()[i]->str();
    }
    out += ")";
    return out;
  }
  }
  return "<?>";
}

} // namespace mha::lir
