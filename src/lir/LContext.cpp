#include "lir/LContext.h"

#include "lir/Constants.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstring>

namespace mha::lir {

namespace {
/// A non-IntType singleton type (void, float, double, label).
class SimpleType : public Type {
public:
  SimpleType(LContext &ctx, Kind kind) : Type(ctx, kind) {}
};
} // namespace

struct LContext::Impl {
  explicit Impl(LContext &ctx)
      : voidTy(ctx, Type::Kind::Void), labelTy(ctx, Type::Kind::Label),
        floatTy(ctx, Type::Kind::Float), doubleTy(ctx, Type::Kind::Double) {}

  SimpleType voidTy;
  SimpleType labelTy;
  SimpleType floatTy;
  SimpleType doubleTy;

  std::map<unsigned, std::unique_ptr<IntType>> intTypes;
  std::map<Type *, std::unique_ptr<PointerType>> ptrTypes;
  std::unique_ptr<PointerType> opaquePtr;
  std::map<std::pair<Type *, uint64_t>, std::unique_ptr<ArrayType>> arrayTypes;
  std::vector<std::unique_ptr<StructType>> structTypes;
  std::vector<std::unique_ptr<FunctionType>> fnTypes;

  std::map<std::pair<IntType *, int64_t>, std::unique_ptr<ConstantInt>>
      intConsts;
  // Keyed by bit pattern, not value: NaN never orders against other keys,
  // so a std::map keyed on double treats NaN as equivalent to whatever it
  // happens to be compared with, aliasing constFP(NaN) to an existing
  // constant.
  std::map<std::pair<Type *, uint64_t>, std::unique_ptr<ConstantFP>> fpConsts;
  std::map<Type *, std::unique_ptr<UndefValue>> undefs;
};

LContext::LContext() : impl_(std::make_unique<Impl>(*this)) {}
LContext::~LContext() = default;

Type *LContext::voidTy() { return &impl_->voidTy; }
Type *LContext::labelTy() { return &impl_->labelTy; }
Type *LContext::floatTy() { return &impl_->floatTy; }
Type *LContext::doubleTy() { return &impl_->doubleTy; }

IntType *LContext::intTy(unsigned width) {
  assert(width >= 1 && width <= 64 && "unsupported integer width");
  auto &slot = impl_->intTypes[width];
  if (!slot)
    slot.reset(new IntType(*this, width));
  return slot.get();
}

PointerType *LContext::ptrTy(Type *pointee) {
  assert(pointee && "use opaquePtrTy() for opaque pointers");
  auto &slot = impl_->ptrTypes[pointee];
  if (!slot)
    slot.reset(new PointerType(*this, pointee));
  return slot.get();
}

PointerType *LContext::opaquePtrTy() {
  if (!impl_->opaquePtr)
    impl_->opaquePtr.reset(new PointerType(*this, nullptr));
  return impl_->opaquePtr.get();
}

ArrayType *LContext::arrayTy(Type *element, uint64_t count) {
  auto &slot = impl_->arrayTypes[{element, count}];
  if (!slot)
    slot.reset(new ArrayType(*this, element, count));
  return slot.get();
}

StructType *LContext::structTy(std::string name, std::vector<Type *> fields) {
  // Structs are uniqued by structural equality (name is cosmetic).
  for (auto &st : impl_->structTypes)
    if (st->fields() == fields && st->name() == name)
      return st.get();
  impl_->structTypes.emplace_back(
      new StructType(*this, std::move(name), std::move(fields)));
  return impl_->structTypes.back().get();
}

FunctionType *LContext::fnTy(Type *ret, std::vector<Type *> params) {
  for (auto &ft : impl_->fnTypes)
    if (ft->returnType() == ret && ft->paramTypes() == params)
      return ft.get();
  impl_->fnTypes.emplace_back(new FunctionType(*this, ret, std::move(params)));
  return impl_->fnTypes.back().get();
}

ConstantInt *LContext::constInt(IntType *type, int64_t value) {
  // Normalize to the type's width so i1 true is always stored as 1.
  if (type->width() < 64) {
    uint64_t mask = (uint64_t(1) << type->width()) - 1;
    uint64_t bits = static_cast<uint64_t>(value) & mask;
    // Sign-extend for canonical storage.
    uint64_t sign = uint64_t(1) << (type->width() - 1);
    value = static_cast<int64_t>((bits ^ sign) - sign);
  }
  auto &slot = impl_->intConsts[{type, value}];
  if (!slot)
    slot.reset(new ConstantInt(type, value));
  return slot.get();
}

ConstantInt *LContext::constI1(bool value) {
  return constInt(i1(), value ? -1 : 0);
}
ConstantInt *LContext::constI32(int32_t value) {
  return constInt(i32(), value);
}
ConstantInt *LContext::constI64(int64_t value) {
  return constInt(i64(), value);
}

ConstantFP *LContext::constFP(Type *type, double value) {
  assert(type->isFloatingPoint());
  if (type->kind() == Type::Kind::Float)
    value = static_cast<float>(value); // round to storage precision
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  auto &slot = impl_->fpConsts[{type, bits}];
  if (!slot)
    slot.reset(new ConstantFP(type, value));
  return slot.get();
}

UndefValue *LContext::undef(Type *type) {
  auto &slot = impl_->undefs[type];
  if (!slot)
    slot.reset(new UndefValue(type));
  return slot.get();
}

// --- Type methods that need full definitions ---

uint64_t Type::sizeInBytes() const {
  switch (kind_) {
  case Kind::Void:
  case Kind::Label:
  case Kind::Function:
    return 0;
  case Kind::Integer: {
    unsigned w = static_cast<const IntType *>(this)->width();
    return (w + 7) / 8;
  }
  case Kind::Float:
    return 4;
  case Kind::Double:
    return 8;
  case Kind::Pointer:
    return 8;
  case Kind::Array: {
    auto *at = static_cast<const ArrayType *>(this);
    return at->element()->sizeInBytes() * at->numElements();
  }
  case Kind::Struct: {
    auto *st = static_cast<const StructType *>(this);
    uint64_t size = 0;
    for (Type *f : st->fields())
      size += f->sizeInBytes();
    return size;
  }
  }
  return 0;
}

std::string Type::str() const {
  switch (kind_) {
  case Kind::Void:
    return "void";
  case Kind::Label:
    return "label";
  case Kind::Integer:
    return strfmt("i%u", static_cast<const IntType *>(this)->width());
  case Kind::Float:
    return "float";
  case Kind::Double:
    return "double";
  case Kind::Pointer: {
    auto *pt = static_cast<const PointerType *>(this);
    if (pt->isOpaque())
      return "ptr";
    return pt->pointee()->str() + "*";
  }
  case Kind::Array: {
    auto *at = static_cast<const ArrayType *>(this);
    return strfmt("[%llu x %s]",
                  static_cast<unsigned long long>(at->numElements()),
                  at->element()->str().c_str());
  }
  case Kind::Struct: {
    auto *st = static_cast<const StructType *>(this);
    std::string out = "{ ";
    for (size_t i = 0; i < st->fields().size(); ++i) {
      if (i)
        out += ", ";
      out += st->fields()[i]->str();
    }
    out += " }";
    return out;
  }
  case Kind::Function: {
    auto *ft = static_cast<const FunctionType *>(this);
    std::string out = ft->returnType()->str() + " (";
    for (size_t i = 0; i < ft->paramTypes().size(); ++i) {
      if (i)
        out += ", ";
      out += ft->paramTypes()[i]->str();
    }
    out += ")";
    return out;
  }
  }
  return "<?>";
}

} // namespace mha::lir
