#include "lir/Parser.h"

#include "lir/Function.h"
#include "lir/IRBuilder.h"
#include "lir/LContext.h"
#include "lir/Printer.h"
#include "support/StringUtils.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

namespace mha::lir {

namespace {

enum class Tok {
  Eof,
  Ident,      // bare word: define, add, i32, ...
  LocalName,  // %foo
  GlobalName, // @foo
  MetaName,   // !foo
  MetaString, // !"str"
  Int,        // 123, -4
  Float,      // 1.0, -2.5e3
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  HashBracket, // #[
  Comma,
  Equal,
  Star,
  Colon,
  String, // "..."
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;
  int64_t intValue = 0;
  double fpValue = 0;
  SrcLoc loc;
};

class Lexer {
public:
  Lexer(std::string_view text, DiagnosticEngine &diags)
      : text_(text), diags_(diags) {
    advance();
  }

  const Token &cur() const { return cur_; }

  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

  void advance() {
    skipTrivia();
    cur_ = Token{};
    cur_.loc = loc();
    if (pos_ >= text_.size()) {
      cur_.kind = Tok::Eof;
      return;
    }
    char c = text_[pos_];
    switch (c) {
    case '(': cur_.kind = Tok::LParen; ++pos_; ++col_; return;
    case ')': cur_.kind = Tok::RParen; ++pos_; ++col_; return;
    case '{': cur_.kind = Tok::LBrace; ++pos_; ++col_; return;
    case '}': cur_.kind = Tok::RBrace; ++pos_; ++col_; return;
    case '[': cur_.kind = Tok::LBracket; ++pos_; ++col_; return;
    case ']': cur_.kind = Tok::RBracket; ++pos_; ++col_; return;
    case ',': cur_.kind = Tok::Comma; ++pos_; ++col_; return;
    case '=': cur_.kind = Tok::Equal; ++pos_; ++col_; return;
    case '*': cur_.kind = Tok::Star; ++pos_; ++col_; return;
    case ':': cur_.kind = Tok::Colon; ++pos_; ++col_; return;
    case '#':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '[') {
        cur_.kind = Tok::HashBracket;
        pos_ += 2;
        col_ += 2;
        return;
      }
      diags_.error("unexpected '#'", loc());
      ++pos_;
      return;
    case '"': {
      cur_.kind = Tok::String;
      ++pos_; ++col_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        cur_.text += text_[pos_];
        ++pos_; ++col_;
      }
      if (pos_ < text_.size()) { ++pos_; ++col_; }
      return;
    }
    case '%':
    case '@': {
      cur_.kind = c == '%' ? Tok::LocalName : Tok::GlobalName;
      ++pos_; ++col_;
      cur_.text = lexWord();
      return;
    }
    case '!': {
      ++pos_; ++col_;
      if (pos_ < text_.size() && text_[pos_] == '"') {
        ++pos_; ++col_;
        cur_.kind = Tok::MetaString;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          cur_.text += text_[pos_];
          ++pos_; ++col_;
        }
        if (pos_ < text_.size()) { ++pos_; ++col_; }
        return;
      }
      if (pos_ < text_.size() && text_[pos_] == '{') {
        // `!{` -> report as MetaName with empty text + LBrace next.
        cur_.kind = Tok::MetaName;
        cur_.text = "";
        return;
      }
      cur_.kind = Tok::MetaName;
      cur_.text = lexWord();
      return;
    }
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      lexNumber();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      cur_.kind = Tok::Ident;
      cur_.text = lexWord();
      return;
    }
    diags_.error(strfmt("unexpected character '%c'", c), loc());
    ++pos_; ++col_;
    advance();
  }

  SrcLoc loc() const { return {line_, col_}; }

  // Consumes the body of a `#[...]` attribute group at the character level,
  // splitting on commas outside parentheses. Attribute strings such as
  // "memory(argmem: readwrite)" contain characters that are not single
  // tokens, so they cannot be reassembled from the token stream.
  std::vector<std::string> takeAttributeGroup() {
    std::vector<std::string> attrs;
    std::string item;
    int depth = 0;
    bool closed = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ']' && depth == 0) {
        ++pos_; ++col_;
        closed = true;
        break;
      }
      if (c == '(')
        ++depth;
      else if (c == ')' && depth > 0)
        --depth;
      if (c == ',' && depth == 0) {
        attrs.push_back(item);
        item.clear();
      } else {
        item += c;
      }
      if (c == '\n') {
        ++line_; col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
    if (!closed)
      diags_.error("unterminated attribute group", cur_.loc);
    attrs.push_back(item);
    std::vector<std::string> out;
    for (const std::string &raw : attrs) {
      std::string_view t = trim(raw);
      if (!t.empty())
        out.emplace_back(t);
    }
    advance();
    return out;
  }

private:
  std::string lexWord() {
    std::string word;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-') {
        word += c;
        ++pos_; ++col_;
      } else {
        break;
      }
    }
    return word;
  }

  void lexNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-') { ++pos_; ++col_; }
    bool isFloat = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_; ++col_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '+' || c == '-') && isFloat &&
                  (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
        isFloat = true;
        ++pos_; ++col_;
      } else {
        break;
      }
    }
    std::string word(text_.substr(start, pos_ - start));
    if (isFloat) {
      cur_.kind = Tok::Float;
      if (std::optional<double> v = parseDouble(word))
        cur_.fpValue = *v;
      else
        diags_.error(strfmt("invalid or out-of-range float literal '%s'",
                            word.c_str()),
                     cur_.loc);
    } else {
      cur_.kind = Tok::Int;
      if (std::optional<int64_t> v = parseInt(word))
        cur_.intValue = *v;
      else
        diags_.error(strfmt("invalid or out-of-range integer literal '%s'",
                            word.c_str()),
                     cur_.loc);
    }
    cur_.text = std::move(word);
  }

  void skipTrivia() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_; col_ = 1; ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_; ++col_;
      } else if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n')
          ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  DiagnosticEngine &diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Token cur_;
};

class Parser {
public:
  Parser(std::string_view text, LContext &ctx, DiagnosticEngine &diags)
      : lex_(text, diags), ctx_(ctx), diags_(diags) {}

  std::unique_ptr<Module> parse() {
    auto module = std::make_unique<Module>(ctx_, "parsed");
    module_ = module.get();
    // Textual IR is typed-pointer unless the flag says otherwise; keep the
    // context's pointer mode in sync so builder-created results (gep,
    // alloca) match the written types. Flags must precede functions.
    ctx_.emitOpaquePointers = false;
    module_->flags()["opaque-pointers"] = "false";
    while (lex_.cur().kind != Tok::Eof && !diags_.hadError()) {
      const Token &t = lex_.cur();
      if (t.kind == Tok::MetaName && t.text == "flag") {
        lex_.advance();
        Token key = expect(Tok::Ident, "flag name");
        expect(Tok::Equal, "'='");
        Token value = expect(Tok::String, "flag value");
        module_->flags()[key.text] = value.text;
        if (key.text == "opaque-pointers")
          ctx_.emitOpaquePointers = value.text == "true";
      } else if (t.kind == Tok::Ident && t.text == "define") {
        parseFunction(/*isDecl=*/false);
      } else if (t.kind == Tok::Ident && t.text == "declare") {
        parseFunction(/*isDecl=*/true);
      } else {
        diags_.error("expected 'define', 'declare' or '!flag'", t.loc);
        break;
      }
    }
    if (diags_.hadError())
      return nullptr;
    return module;
  }

private:
  Token expect(Tok kind, const char *what) {
    if (lex_.cur().kind != kind) {
      diags_.error(strfmt("expected %s, got '%s'", what,
                          lex_.cur().text.c_str()),
                   lex_.cur().loc);
      return Token{};
    }
    return lex_.take();
  }

  bool accept(Tok kind) {
    if (lex_.cur().kind == kind) {
      lex_.advance();
      return true;
    }
    return false;
  }

  bool acceptIdent(const char *word) {
    if (lex_.cur().kind == Tok::Ident && lex_.cur().text == word) {
      lex_.advance();
      return true;
    }
    return false;
  }

  // ---- Types ----
  Type *parseType() {
    Type *base = parseBaseType();
    while (base && accept(Tok::Star))
      base = ctx_.ptrTy(base);
    return base;
  }

  Type *parseBaseType() {
    const Token &t = lex_.cur();
    if (t.kind == Tok::Ident) {
      // Copy: advance() below invalidates the current token's text.
      const std::string w = t.text;
      if (w == "void") { lex_.advance(); return ctx_.voidTy(); }
      if (w == "float") { lex_.advance(); return ctx_.floatTy(); }
      if (w == "double") { lex_.advance(); return ctx_.doubleTy(); }
      if (w == "label") { lex_.advance(); return ctx_.labelTy(); }
      if (w == "ptr") { lex_.advance(); return ctx_.opaquePtrTy(); }
      if (w.size() > 1 && w[0] == 'i') {
        bool digits = true;
        for (char c : w.substr(1))
          digits &= std::isdigit(static_cast<unsigned char>(c)) != 0;
        if (digits) {
          lex_.advance();
          return ctx_.intTy(static_cast<unsigned>(std::stoul(w.substr(1))));
        }
      }
      diags_.error(strfmt("unknown type '%s'", w.c_str()), t.loc);
      return nullptr;
    }
    if (t.kind == Tok::LBracket) {
      lex_.advance();
      Token count = expect(Tok::Int, "array length");
      Token x = expect(Tok::Ident, "'x'");
      if (x.text != "x")
        diags_.error("expected 'x' in array type", x.loc);
      Type *elem = parseType();
      expect(Tok::RBracket, "']'");
      if (!elem)
        return nullptr;
      return ctx_.arrayTy(elem, static_cast<uint64_t>(count.intValue));
    }
    if (t.kind == Tok::LBrace) {
      lex_.advance();
      std::vector<Type *> fields;
      if (lex_.cur().kind != Tok::RBrace) {
        do {
          Type *f = parseType();
          if (!f)
            return nullptr;
          fields.push_back(f);
        } while (accept(Tok::Comma));
      }
      expect(Tok::RBrace, "'}'");
      return ctx_.structTy("", std::move(fields));
    }
    diags_.error("expected type", t.loc);
    return nullptr;
  }

  // ---- Metadata ----
  std::unique_ptr<MDNode> parseMDNode() {
    // Caller consumed `!name`; we are at `!{` (MetaName with empty text)
    // or directly at `{` depending on how it was lexed.
    if (lex_.cur().kind == Tok::MetaName && lex_.cur().text.empty())
      lex_.advance();
    expect(Tok::LBrace, "'{' of metadata node");
    auto node = std::make_unique<MDNode>();
    if (lex_.cur().kind != Tok::RBrace) {
      do {
        const Token &t = lex_.cur();
        if (t.kind == Tok::Ident && t.text == "i64") {
          lex_.advance();
          Token v = expect(Tok::Int, "metadata integer");
          node->addInt(v.intValue);
        } else if (t.kind == Tok::Ident && t.text == "f64") {
          lex_.advance();
          Token v = lex_.take();
          node->addFP(v.kind == Tok::Float ? v.fpValue
                                           : static_cast<double>(v.intValue));
        } else if (t.kind == Tok::MetaString) {
          node->addString(t.text);
          lex_.advance();
        } else if (t.kind == Tok::MetaName && t.text.empty()) {
          node->addNode(parseMDNode());
        } else {
          diags_.error("bad metadata operand", t.loc);
          break;
        }
      } while (accept(Tok::Comma));
    }
    expect(Tok::RBrace, "'}' of metadata node");
    return node;
  }

  /// Parses zero or more `, !key !{...}` attachments.
  void parseMDAttachments(MDMap &md) {
    while (lex_.cur().kind == Tok::Comma) {
      lex_.advance();
      Token key = expect(Tok::MetaName, "metadata key");
      md[key.text] = parseMDNode();
    }
  }

  // ---- Functions ----
  void parseFunction(bool isDecl) {
    lex_.advance(); // define/declare
    Type *retTy = parseType();
    Token name = expect(Tok::GlobalName, "function name");
    expect(Tok::LParen, "'('");

    struct Param {
      Type *type;
      std::string name;
      std::set<std::string> attrs;
      MDMap md;
    };
    std::vector<Param> params;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        Param p;
        p.type = parseType();
        if (!p.type)
          return;
        // attrs and metadata before the name.
        while (true) {
          if (lex_.cur().kind == Tok::Ident) {
            p.attrs.insert(lex_.take().text);
          } else if (lex_.cur().kind == Tok::MetaName &&
                     !lex_.cur().text.empty()) {
            Token key = lex_.take();
            p.md[key.text] = parseMDNode();
          } else {
            break;
          }
        }
        if (lex_.cur().kind == Tok::LocalName)
          p.name = lex_.take().text;
        params.push_back(std::move(p));
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");

    std::vector<Type *> paramTypes;
    for (const Param &p : params)
      paramTypes.push_back(p.type);
    Function *fn = module_->getFunction(name.text);
    if (!fn)
      fn = module_->createFunction(ctx_.fnTy(retTy, paramTypes), name.text);
    for (unsigned i = 0; i < params.size(); ++i) {
      fn->arg(i)->setName(params[i].name);
      fn->arg(i)->attrs() = params[i].attrs;
      for (auto &[k, v] : params[i].md)
        fn->arg(i)->metadata()[k] = std::move(v);
    }

    if (lex_.cur().kind == Tok::HashBracket) {
      for (std::string &attr : lex_.takeAttributeGroup())
        fn->attrs().insert(std::move(attr));
    }

    if (isDecl)
      return;

    expect(Tok::LBrace, "'{'");
    values_.clear();
    blocks_.clear();
    forwardRefs_.clear();
    for (unsigned i = 0; i < fn->numArgs(); ++i)
      values_["%" + fn->arg(i)->name()] = fn->arg(i);

    BasicBlock *curBB = nullptr;
    IRBuilder builder(ctx_);
    while (lex_.cur().kind != Tok::RBrace && lex_.cur().kind != Tok::Eof &&
           !diags_.hadError()) {
      // Label?
      if (lex_.cur().kind == Tok::Ident || lex_.cur().kind == Tok::Int) {
        // Could be "name:" (label) or an instruction keyword.
        Token first = lex_.take();
        if (lex_.cur().kind == Tok::Colon) {
          lex_.advance();
          curBB = getBlock(fn, first.text);
          builder.setInsertPoint(curBB);
          continue;
        }
        if (!curBB) {
          diags_.error("instruction before first label", first.loc);
          return;
        }
        parseInstruction(fn, builder, /*resultName=*/"", first);
        continue;
      }
      if (lex_.cur().kind == Tok::LocalName) {
        Token result = lex_.take();
        expect(Tok::Equal, "'='");
        Token op = expect(Tok::Ident, "opcode");
        if (!curBB) {
          diags_.error("instruction before first label", result.loc);
          return;
        }
        parseInstruction(fn, builder, result.text, op);
        continue;
      }
      diags_.error(strfmt("unexpected token '%s' in function body",
                          lex_.cur().text.c_str()),
                   lex_.cur().loc);
      return;
    }
    expect(Tok::RBrace, "'}'");

    for (auto &[name2, placeholder] : forwardRefs_) {
      diags_.error(strfmt("use of undefined value %%%s", name2.c_str()));
      // Keep the IR destructible despite the error.
      placeholder->replaceAllUsesWith(ctx_.undef(placeholder->type()));
    }
    forwardRefs_.clear();
  }

  BasicBlock *getBlock(Function *fn, const std::string &name) {
    auto it = blocks_.find(name);
    if (it != blocks_.end())
      return it->second;
    BasicBlock *bb = fn->createBlock(name);
    blocks_[name] = bb;
    return bb;
  }

  /// Returns the value named `%name`, creating a placeholder when unseen.
  Value *getLocal(const std::string &name, Type *type) {
    auto it = values_.find("%" + name);
    if (it != values_.end())
      return it->second;
    auto placeholder = std::make_unique<Instruction>(Opcode::Freeze, type);
    placeholder->setName(name + ".fwd");
    Value *raw = placeholder.get();
    forwardRefs_[name] = std::move(placeholder);
    values_["%" + name] = raw;
    return raw;
  }

  void defineLocal(const std::string &name, Value *value) {
    auto fwd = forwardRefs_.find(name);
    if (fwd != forwardRefs_.end()) {
      fwd->second->replaceAllUsesWith(value);
      forwardRefs_.erase(fwd);
    }
    values_["%" + name] = value;
    value->setName(name);
  }

  /// Parses `<value>` where the expected type is known.
  Value *parseValueRef(Type *type) {
    const Token &t = lex_.cur();
    if (t.kind == Tok::LocalName) {
      std::string name = lex_.take().text;
      return getLocal(name, type);
    }
    if (t.kind == Tok::GlobalName) {
      std::string name = lex_.take().text;
      Function *fn = module_->getFunction(name);
      if (!fn)
        diags_.error(strfmt("unknown function @%s", name.c_str()), t.loc);
      return fn;
    }
    if (t.kind == Tok::Int) {
      Token v = lex_.take();
      if (type->isFloatingPoint())
        return ctx_.constFP(type, static_cast<double>(v.intValue));
      if (auto *it = dyn_cast<IntType>(type))
        return ctx_.constInt(it, v.intValue);
      diags_.error("integer literal for non-integer type", v.loc);
      return nullptr;
    }
    if (t.kind == Tok::Float) {
      Token v = lex_.take();
      if (!type->isFloatingPoint()) {
        diags_.error("float literal for non-float type", v.loc);
        return nullptr;
      }
      return ctx_.constFP(type, v.fpValue);
    }
    if (t.kind == Tok::Ident && t.text == "undef") {
      lex_.advance();
      return ctx_.undef(type);
    }
    diags_.error(strfmt("expected value, got '%s'", t.text.c_str()), t.loc);
    return nullptr;
  }

  /// Parses `<type> <value>`.
  Value *parseTypedValue() {
    Type *type = parseType();
    if (!type)
      return nullptr;
    return parseValueRef(type);
  }

  void parseInstruction(Function *fn, IRBuilder &builder,
                        const std::string &resultName, const Token &opTok) {
    const std::string &op = opTok.text;
    Instruction *inst = nullptr;

    static const std::map<std::string, Opcode> binops = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"sdiv", Opcode::SDiv},
        {"udiv", Opcode::UDiv}, {"srem", Opcode::SRem},
        {"urem", Opcode::URem}, {"and", Opcode::And},
        {"or", Opcode::Or},     {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
        {"ashr", Opcode::AShr}, {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub}, {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv}};
    static const std::map<std::string, Opcode> casts = {
        {"trunc", Opcode::Trunc},     {"zext", Opcode::ZExt},
        {"sext", Opcode::SExt},       {"fptrunc", Opcode::FPTrunc},
        {"fpext", Opcode::FPExt},     {"sitofp", Opcode::SIToFP},
        {"uitofp", Opcode::UIToFP},   {"fptosi", Opcode::FPToSI},
        {"bitcast", Opcode::Bitcast}, {"ptrtoint", Opcode::PtrToInt},
        {"inttoptr", Opcode::IntToPtr}};
    static const std::map<std::string, CmpPred> preds = {
        {"eq", CmpPred::EQ},   {"ne", CmpPred::NE},   {"slt", CmpPred::SLT},
        {"sle", CmpPred::SLE}, {"sgt", CmpPred::SGT}, {"sge", CmpPred::SGE},
        {"ult", CmpPred::ULT}, {"ule", CmpPred::ULE}, {"ugt", CmpPred::UGT},
        {"uge", CmpPred::UGE}, {"oeq", CmpPred::OEQ}, {"one", CmpPred::ONE},
        {"olt", CmpPred::OLT}, {"ole", CmpPred::OLE}, {"ogt", CmpPred::OGT},
        {"oge", CmpPred::OGE}};

    if (auto it = binops.find(op); it != binops.end()) {
      Type *type = parseType();
      Value *lhs = parseValueRef(type);
      expect(Tok::Comma, "','");
      Value *rhs = parseValueRef(type);
      if (lhs && rhs)
        inst = builder.createBinOp(it->second, lhs, rhs);
    } else if (auto ct = casts.find(op); ct != casts.end()) {
      Value *v = parseTypedValue();
      if (!acceptIdent("to"))
        diags_.error("expected 'to' in cast", lex_.cur().loc);
      Type *to = parseType();
      if (v && to)
        inst = builder.createCast(ct->second, v, to);
    } else if (op == "icmp" || op == "fcmp") {
      Token predTok = expect(Tok::Ident, "predicate");
      auto pit = preds.find(predTok.text);
      if (pit == preds.end()) {
        diags_.error("unknown predicate", predTok.loc);
        return;
      }
      Type *type = parseType();
      Value *lhs = parseValueRef(type);
      expect(Tok::Comma, "','");
      Value *rhs = parseValueRef(type);
      if (lhs && rhs)
        inst = op == "icmp" ? builder.createICmp(pit->second, lhs, rhs)
                            : builder.createFCmp(pit->second, lhs, rhs);
    } else if (op == "load") {
      Type *type = parseType();
      expect(Tok::Comma, "','");
      Value *ptr = parseTypedValue();
      if (type && ptr)
        inst = builder.createLoad(type, ptr);
    } else if (op == "store") {
      Value *value = parseTypedValue();
      expect(Tok::Comma, "','");
      Value *ptr = parseTypedValue();
      if (value && ptr)
        inst = builder.createStore(value, ptr);
    } else if (op == "getelementptr") {
      Type *srcTy = parseType();
      expect(Tok::Comma, "','");
      Value *base = parseTypedValue();
      std::vector<Value *> indices;
      MDMap pendingMD;
      while (accept(Tok::Comma)) {
        if (lex_.cur().kind == Tok::MetaName) {
          Token key = lex_.take();
          pendingMD[key.text] = parseMDNode();
          parseMDAttachments(pendingMD);
          break;
        }
        Value *idx = parseTypedValue();
        if (!idx)
          return;
        indices.push_back(idx);
      }
      if (srcTy && base) {
        inst = builder.createGEP(srcTy, base, std::move(indices));
        inst->metadata() = std::move(pendingMD);
      }
    } else if (op == "alloca") {
      Type *type = parseType();
      if (type)
        inst = builder.createAlloca(type);
    } else if (op == "phi") {
      Type *type = parseType();
      inst = builder.createPhi(type);
      do {
        if (lex_.cur().kind == Tok::MetaName) {
          Token key = lex_.take();
          inst->metadata()[key.text] = parseMDNode();
          parseMDAttachments(inst->metadata());
          break;
        }
        expect(Tok::LBracket, "'['");
        Value *v = parseValueRef(type);
        expect(Tok::Comma, "','");
        Token bbName = expect(Tok::LocalName, "incoming block");
        expect(Tok::RBracket, "']'");
        if (v)
          inst->addIncoming(v, getBlock(fn, bbName.text));
      } while (accept(Tok::Comma));
    } else if (op == "select") {
      Value *cond = parseTypedValue();
      expect(Tok::Comma, "','");
      Value *tv = parseTypedValue();
      expect(Tok::Comma, "','");
      Value *fv = parseTypedValue();
      if (cond && tv && fv)
        inst = builder.createSelect(cond, tv, fv);
    } else if (op == "freeze") {
      Value *v = parseTypedValue();
      if (v)
        inst = builder.createFreeze(v);
    } else if (op == "fneg") {
      Value *v = parseTypedValue();
      if (v)
        inst = builder.createFNeg(v);
    } else if (op == "call") {
      Type *retTy = parseType();
      Token callee = expect(Tok::GlobalName, "callee");
      expect(Tok::LParen, "'('");
      std::vector<Value *> args;
      if (lex_.cur().kind != Tok::RParen) {
        do {
          Value *a = parseTypedValue();
          if (!a)
            return;
          args.push_back(a);
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "')'");
      Function *calleeFn = module_->getFunction(callee.text);
      if (!calleeFn) {
        // Implicit declaration from the call signature.
        std::vector<Type *> argTypes;
        for (Value *a : args)
          argTypes.push_back(a->type());
        calleeFn = module_->createFunction(ctx_.fnTy(retTy, argTypes),
                                           callee.text);
      }
      inst = builder.createCall(calleeFn, std::move(args));
    } else if (op == "ret") {
      if (acceptIdent("void")) {
        inst = builder.createRet();
      } else {
        Value *v = parseTypedValue();
        inst = builder.createRet(v);
      }
    } else if (op == "br") {
      if (acceptIdent("label")) {
        Token dest = expect(Tok::LocalName, "branch target");
        inst = builder.createBr(getBlock(fn, dest.text));
      } else {
        Value *cond = parseTypedValue();
        expect(Tok::Comma, "','");
        acceptIdent("label");
        Token t = expect(Tok::LocalName, "true target");
        expect(Tok::Comma, "','");
        acceptIdent("label");
        Token f = expect(Tok::LocalName, "false target");
        if (cond)
          inst = builder.createCondBr(cond, getBlock(fn, t.text),
                                      getBlock(fn, f.text));
      }
    } else if (op == "unreachable") {
      inst = builder.createUnreachable();
    } else {
      diags_.error(strfmt("unknown instruction '%s'", op.c_str()), opTok.loc);
      return;
    }

    if (!inst)
      return;
    parseMDAttachments(inst->metadata());
    if (!resultName.empty())
      defineLocal(resultName, inst);
  }

  Lexer lex_;
  LContext &ctx_;
  DiagnosticEngine &diags_;
  Module *module_ = nullptr;
  std::map<std::string, Value *> values_;
  std::map<std::string, BasicBlock *> blocks_;
  std::map<std::string, std::unique_ptr<Instruction>> forwardRefs_;
};

} // namespace

std::unique_ptr<Module> parseModule(std::string_view text, LContext &ctx,
                                    DiagnosticEngine &diags) {
  return Parser(text, ctx, diags).parse();
}

} // namespace mha::lir
