#include "lir/Instruction.h"

#include "lir/BasicBlock.h"
#include "lir/Function.h"
#include "support/Compiler.h"

namespace mha::lir {

const char *opcodeName(Opcode op) {
  switch (op) {
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::GEP:
    return "getelementptr";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::URem:
    return "urem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::LShr:
    return "lshr";
  case Opcode::AShr:
    return "ashr";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::FPTrunc:
    return "fptrunc";
  case Opcode::FPExt:
    return "fpext";
  case Opcode::SIToFP:
    return "sitofp";
  case Opcode::UIToFP:
    return "uitofp";
  case Opcode::FPToSI:
    return "fptosi";
  case Opcode::Bitcast:
    return "bitcast";
  case Opcode::PtrToInt:
    return "ptrtoint";
  case Opcode::IntToPtr:
    return "inttoptr";
  case Opcode::Select:
    return "select";
  case Opcode::Freeze:
    return "freeze";
  case Opcode::Phi:
    return "phi";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "br";
  case Opcode::Unreachable:
    return "unreachable";
  }
  unreachable("bad opcode");
}

const char *predName(CmpPred pred) {
  switch (pred) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::SLT:
    return "slt";
  case CmpPred::SLE:
    return "sle";
  case CmpPred::SGT:
    return "sgt";
  case CmpPred::SGE:
    return "sge";
  case CmpPred::ULT:
    return "ult";
  case CmpPred::ULE:
    return "ule";
  case CmpPred::UGT:
    return "ugt";
  case CmpPred::UGE:
    return "uge";
  case CmpPred::OEQ:
    return "oeq";
  case CmpPred::ONE:
    return "one";
  case CmpPred::OLT:
    return "olt";
  case CmpPred::OLE:
    return "ole";
  case CmpPred::OGT:
    return "ogt";
  case CmpPred::OGE:
    return "oge";
  }
  unreachable("bad predicate");
}

bool isTerminatorOpcode(Opcode op) {
  return op == Opcode::Ret || op == Opcode::Br || op == Opcode::CondBr ||
         op == Opcode::Unreachable;
}

bool isBinaryOpcode(Opcode op) {
  switch (op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    return true;
  default:
    return false;
  }
}

bool isCastOpcode(Opcode op) {
  switch (op) {
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::FPTrunc:
  case Opcode::FPExt:
  case Opcode::SIToFP:
  case Opcode::UIToFP:
  case Opcode::FPToSI:
  case Opcode::Bitcast:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
    return true;
  default:
    return false;
  }
}

bool isCommutativeOpcode(Opcode op) {
  switch (op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::FAdd:
  case Opcode::FMul:
    return true;
  default:
    return false;
  }
}

Function *Instruction::function() const {
  return parent_ ? parent_->parent() : nullptr;
}

BasicBlock *Instruction::incomingBlock(unsigned i) const {
  return cast<BasicBlock>(operand(2 * i + 1));
}

void Instruction::addIncoming(Value *value, BasicBlock *block) {
  assert(op_ == Opcode::Phi);
  addOperand(value);
  addOperand(block);
}

Value *Instruction::incomingValueFor(const BasicBlock *block) const {
  for (unsigned i = 0, e = numIncoming(); i != e; ++i)
    if (incomingBlock(i) == block)
      return incomingValue(i);
  return nullptr;
}

void Instruction::removeIncoming(const BasicBlock *block) {
  for (unsigned i = 0, e = numIncoming(); i != e; ++i) {
    if (incomingBlock(i) == block) {
      removeOperand(2 * i + 1);
      removeOperand(2 * i);
      return;
    }
  }
  assert(false && "removeIncoming: block not found");
}

Function *Instruction::calledFunction() const {
  assert(op_ == Opcode::Call);
  return dyn_cast<Function>(operand(0));
}

bool Instruction::isTriviallyDead() const {
  if (hasUses())
    return false;
  if (!hasSideEffects())
    return true;
  if (op_ != Opcode::Call)
    return false;
  Function *callee = calledFunction();
  return callee && !callee->isDeclaration() && callee->hasAttr("readnone");
}

BasicBlock *Instruction::brDest() const {
  assert(op_ == Opcode::Br);
  return cast<BasicBlock>(operand(0));
}

BasicBlock *Instruction::trueDest() const {
  assert(op_ == Opcode::CondBr);
  return cast<BasicBlock>(operand(1));
}

BasicBlock *Instruction::falseDest() const {
  assert(op_ == Opcode::CondBr);
  return cast<BasicBlock>(operand(2));
}

std::vector<BasicBlock *> Instruction::successors() const {
  switch (op_) {
  case Opcode::Br:
    return {brDest()};
  case Opcode::CondBr:
    return {trueDest(), falseDest()};
  default:
    return {};
  }
}

void Instruction::replaceSuccessor(BasicBlock *from, BasicBlock *to) {
  replaceUsesOfWith(from, to);
}

std::unique_ptr<Instruction> Instruction::clone() const {
  auto copy = std::make_unique<Instruction>(op_, type());
  copy->pred_ = pred_;
  copy->allocatedType_ = allocatedType_;
  copy->sourceElemType_ = sourceElemType_;
  for (unsigned i = 0, e = numOperands(); i != e; ++i)
    copy->addOperand(operand(i));
  for (const auto &[key, node] : md_)
    copy->md_[key] = node->clone();
  return copy;
}

void Instruction::eraseFromParent() {
  assert(parent_ && "instruction has no parent");
  BasicBlock *bb = parent_;
  for (auto it = bb->insts_.begin(); it != bb->insts_.end(); ++it) {
    if (it->get() == this) {
      (*it)->dropAllOperands();
      bb->insts_.erase(it);
      return;
    }
  }
  assert(false && "instruction not found in parent block");
}

std::unique_ptr<Instruction> Instruction::removeFromParent() {
  assert(parent_ && "instruction has no parent");
  BasicBlock *bb = parent_;
  for (auto it = bb->insts_.begin(); it != bb->insts_.end(); ++it) {
    if (it->get() == this) {
      std::unique_ptr<Instruction> owned = std::move(*it);
      bb->insts_.erase(it);
      owned->parent_ = nullptr;
      return owned;
    }
  }
  unreachable("instruction not found in parent block");
}

} // namespace mha::lir
