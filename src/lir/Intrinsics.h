// Intrinsics.h - intrinsic declaration helpers.
//
// "Modern" intrinsics (llvm.*) are what the MLIR lowering emits; the HLS
// frontend only understands plain calls into a small math library (hls_*).
// The adaptor's IntrinsicLegalize pass rewrites the former into the latter
// (or into explicit IR).
#pragma once

#include <string>

namespace mha::lir {

class Function;
class LContext;
class Module;
class Type;

/// True for functions named llvm.* — not accepted by the HLS frontend.
bool isModernIntrinsic(const Function &fn);

/// True for the HLS math library calls the virtual HLS backend accepts
/// (hls_sqrt, hls_fabs, hls_exp, hls_log, hls_sin, hls_cos, hls_pow).
bool isHlsMathFunction(const std::string &name);

/// Declares (or finds) @llvm.memcpy.p0.p0.i64 : void(ptr, ptr, i64).
Function *getMemcpyIntrinsic(Module &module);
/// Declares (or finds) @llvm.fmuladd.<ty> : T(T, T, T).
Function *getFMulAddIntrinsic(Module &module, Type *type);
/// Declares (or finds) @llvm.smax.i64 / @llvm.smin.i64.
Function *getSMaxIntrinsic(Module &module);
Function *getSMinIntrinsic(Module &module);
/// Declares (or finds) @llvm.sqrt.<ty> : T(T).
Function *getSqrtIntrinsic(Module &module, Type *type);

/// Declares (or finds) the HLS math call @hls_<op> : T(T).
Function *getHlsMathFunction(Module &module, const std::string &op,
                             Type *type);

} // namespace mha::lir
