// Metadata.h - instruction-attached metadata.
//
// MiniLLVM attaches metadata directly to instructions as named trees
// (`!hls.pipeline !{i64 1}`), a simplification of LLVM's numbered metadata
// graph that keeps printing/parsing local. Loop directives ride on the loop
// latch branch exactly as llvm.loop metadata does in LLVM, which is the
// mechanism the paper's adaptor translates between IR versions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace mha::lir {

class MDNode;

using MDOperand =
    std::variant<int64_t, double, std::string, std::unique_ptr<MDNode>>;

class MDNode {
public:
  MDNode() = default;

  MDNode &addInt(int64_t v) {
    ops_.emplace_back(v);
    return *this;
  }
  MDNode &addFP(double v) {
    ops_.emplace_back(v);
    return *this;
  }
  MDNode &addString(std::string v) {
    ops_.emplace_back(std::move(v));
    return *this;
  }
  MDNode &addNode(std::unique_ptr<MDNode> v) {
    ops_.emplace_back(std::move(v));
    return *this;
  }

  size_t size() const { return ops_.size(); }
  const MDOperand &op(size_t i) const { return ops_[i]; }

  bool isInt(size_t i) const {
    return i < ops_.size() && std::holds_alternative<int64_t>(ops_[i]);
  }
  bool isString(size_t i) const {
    return i < ops_.size() && std::holds_alternative<std::string>(ops_[i]);
  }
  int64_t getInt(size_t i) const { return std::get<int64_t>(ops_[i]); }
  double getFP(size_t i) const { return std::get<double>(ops_[i]); }
  const std::string &getString(size_t i) const {
    return std::get<std::string>(ops_[i]);
  }
  const MDNode *getNode(size_t i) const {
    return std::get<std::unique_ptr<MDNode>>(ops_[i]).get();
  }

  std::unique_ptr<MDNode> clone() const {
    auto out = std::make_unique<MDNode>();
    for (const MDOperand &op : ops_) {
      if (std::holds_alternative<int64_t>(op))
        out->addInt(std::get<int64_t>(op));
      else if (std::holds_alternative<double>(op))
        out->addFP(std::get<double>(op));
      else if (std::holds_alternative<std::string>(op))
        out->addString(std::get<std::string>(op));
      else
        out->addNode(std::get<std::unique_ptr<MDNode>>(op)->clone());
    }
    return out;
  }

  /// Convenience: a node holding a single integer.
  static std::unique_ptr<MDNode> ofInt(int64_t v) {
    auto n = std::make_unique<MDNode>();
    n->addInt(v);
    return n;
  }
  /// Convenience: a node holding a single string.
  static std::unique_ptr<MDNode> ofString(std::string v) {
    auto n = std::make_unique<MDNode>();
    n->addString(std::move(v));
    return n;
  }

private:
  std::vector<MDOperand> ops_;
};

/// Named metadata attachments (on instructions and function arguments).
using MDMap = std::map<std::string, std::unique_ptr<MDNode>>;

} // namespace mha::lir
