// IRBuilder.h - convenience factory for MiniLLVM instructions.
#pragma once

#include "lir/Constants.h"
#include "lir/Function.h"
#include "lir/LContext.h"

namespace mha::lir {

/// Creates instructions at an insertion point. No implicit constant folding:
/// canonicalization is a pass concern, and tests want the raw shape.
class IRBuilder {
public:
  explicit IRBuilder(LContext &ctx) : ctx_(ctx) {}

  LContext &context() const { return ctx_; }

  void setInsertPoint(BasicBlock *bb) {
    block_ = bb;
    atEnd_ = true;
  }
  void setInsertPoint(BasicBlock *bb, BasicBlock::iterator pos) {
    block_ = bb;
    pos_ = pos;
    atEnd_ = false;
  }
  void setInsertPointBefore(Instruction *inst) {
    block_ = inst->parent();
    pos_ = block_->positionOf(inst);
    atEnd_ = false;
  }
  BasicBlock *insertBlock() const { return block_; }

  // --- Memory ---
  Instruction *createAlloca(Type *allocated, std::string name = "");
  Instruction *createLoad(Type *type, Value *ptr, std::string name = "");
  Instruction *createStore(Value *value, Value *ptr);
  Instruction *createGEP(Type *srcElemTy, Value *ptr,
                         std::vector<Value *> indices, std::string name = "");

  // --- Arithmetic ---
  Instruction *createBinOp(Opcode op, Value *lhs, Value *rhs,
                           std::string name = "");
  Instruction *createAdd(Value *l, Value *r, std::string name = "") {
    return createBinOp(Opcode::Add, l, r, std::move(name));
  }
  Instruction *createSub(Value *l, Value *r, std::string name = "") {
    return createBinOp(Opcode::Sub, l, r, std::move(name));
  }
  Instruction *createMul(Value *l, Value *r, std::string name = "") {
    return createBinOp(Opcode::Mul, l, r, std::move(name));
  }
  Instruction *createFAdd(Value *l, Value *r, std::string name = "") {
    return createBinOp(Opcode::FAdd, l, r, std::move(name));
  }
  Instruction *createFMul(Value *l, Value *r, std::string name = "") {
    return createBinOp(Opcode::FMul, l, r, std::move(name));
  }
  Instruction *createFNeg(Value *v, std::string name = "");

  Instruction *createICmp(CmpPred pred, Value *l, Value *r,
                          std::string name = "");
  Instruction *createFCmp(CmpPred pred, Value *l, Value *r,
                          std::string name = "");
  Instruction *createSelect(Value *cond, Value *t, Value *f,
                            std::string name = "");
  Instruction *createCast(Opcode op, Value *v, Type *to,
                          std::string name = "");
  Instruction *createFreeze(Value *v, std::string name = "");

  // --- Control ---
  Instruction *createPhi(Type *type, std::string name = "");
  Instruction *createCall(Function *callee, std::vector<Value *> args,
                          std::string name = "");
  Instruction *createRet(Value *v = nullptr);
  Instruction *createBr(BasicBlock *dest);
  Instruction *createCondBr(Value *cond, BasicBlock *t, BasicBlock *f);
  Instruction *createUnreachable();

private:
  Instruction *insert(std::unique_ptr<Instruction> inst, std::string name);

  LContext &ctx_;
  BasicBlock *block_ = nullptr;
  BasicBlock::iterator pos_;
  bool atEnd_ = true;
};

} // namespace mha::lir
