// Printer.h - renders MiniLLVM IR in .ll-style textual form.
//
// The format round-trips through lir::parseModule. Deviations from LLVM
// proper are deliberate simplifications: metadata is attached inline
// (`!key !{...}`) instead of numbered module-level nodes, and function
// attributes print as `#[a, b]` after the parameter list.
#pragma once

#include <string>

namespace mha::lir {

class Module;
class Function;
class Instruction;
class Value;
class MDNode;

std::string printModule(const Module &module);
std::string printFunction(const Function &fn);
std::string printInstruction(const Instruction &inst);
/// Renders a value reference (e.g. "%x", "42", "double 1.0" without type).
std::string printValueRef(const Value *v);
std::string printMDNode(const MDNode &node);

} // namespace mha::lir
