#include "lir/IRBuilder.h"

#include <cassert>

namespace mha::lir {

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> inst,
                               std::string name) {
  assert(block_ && "no insertion point");
  if (!name.empty())
    inst->setName(std::move(name));
  if (atEnd_)
    return block_->append(std::move(inst));
  return block_->insert(pos_, std::move(inst));
}

Instruction *IRBuilder::createAlloca(Type *allocated, std::string name) {
  Type *ptrTy = ctx_.emitOpaquePointers
                    ? static_cast<Type *>(ctx_.opaquePtrTy())
                    : static_cast<Type *>(ctx_.ptrTy(allocated));
  auto inst = std::make_unique<Instruction>(Opcode::Alloca, ptrTy);
  inst->setAllocatedType(allocated);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createLoad(Type *type, Value *ptr, std::string name) {
  assert(ptr->type()->isPointer() && "load from non-pointer");
  auto inst = std::make_unique<Instruction>(Opcode::Load, type);
  inst->addOperand(ptr);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createStore(Value *value, Value *ptr) {
  assert(ptr->type()->isPointer() && "store to non-pointer");
  auto inst = std::make_unique<Instruction>(Opcode::Store, ctx_.voidTy());
  inst->addOperand(value);
  inst->addOperand(ptr);
  return insert(std::move(inst), "");
}

Instruction *IRBuilder::createGEP(Type *srcElemTy, Value *ptr,
                                  std::vector<Value *> indices,
                                  std::string name) {
  assert(ptr->type()->isPointer() && "gep of non-pointer");
  // Result pointer type: typed mode navigates the indexed type.
  Type *resultPointee = srcElemTy;
  for (size_t i = 1; i < indices.size(); ++i) {
    if (auto *at = dyn_cast<ArrayType>(resultPointee))
      resultPointee = at->element();
    else if (auto *st = dyn_cast<StructType>(resultPointee)) {
      auto *ci = cast<ConstantInt>(indices[i]);
      resultPointee = st->fields()[static_cast<size_t>(ci->value())];
    } else
      assert(false && "gep index into non-aggregate");
  }
  Type *ptrTy = ctx_.emitOpaquePointers
                    ? static_cast<Type *>(ctx_.opaquePtrTy())
                    : static_cast<Type *>(ctx_.ptrTy(resultPointee));
  auto inst = std::make_unique<Instruction>(Opcode::GEP, ptrTy);
  inst->setSourceElemType(srcElemTy);
  inst->addOperand(ptr);
  for (Value *idx : indices)
    inst->addOperand(idx);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createBinOp(Opcode op, Value *lhs, Value *rhs,
                                    std::string name) {
  assert(isBinaryOpcode(op));
  assert(lhs->type() == rhs->type() && "binop type mismatch");
  auto inst = std::make_unique<Instruction>(op, lhs->type());
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createFNeg(Value *v, std::string name) {
  auto inst = std::make_unique<Instruction>(Opcode::FNeg, v->type());
  inst->addOperand(v);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createICmp(CmpPred pred, Value *l, Value *r,
                                   std::string name) {
  assert(l->type() == r->type());
  auto inst = std::make_unique<Instruction>(Opcode::ICmp, ctx_.i1());
  inst->setPredicate(pred);
  inst->addOperand(l);
  inst->addOperand(r);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createFCmp(CmpPred pred, Value *l, Value *r,
                                   std::string name) {
  assert(l->type() == r->type());
  auto inst = std::make_unique<Instruction>(Opcode::FCmp, ctx_.i1());
  inst->setPredicate(pred);
  inst->addOperand(l);
  inst->addOperand(r);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createSelect(Value *cond, Value *t, Value *f,
                                     std::string name) {
  assert(t->type() == f->type());
  auto inst = std::make_unique<Instruction>(Opcode::Select, t->type());
  inst->addOperand(cond);
  inst->addOperand(t);
  inst->addOperand(f);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createCast(Opcode op, Value *v, Type *to,
                                   std::string name) {
  assert(isCastOpcode(op));
  auto inst = std::make_unique<Instruction>(op, to);
  inst->addOperand(v);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createFreeze(Value *v, std::string name) {
  auto inst = std::make_unique<Instruction>(Opcode::Freeze, v->type());
  inst->addOperand(v);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createPhi(Type *type, std::string name) {
  auto inst = std::make_unique<Instruction>(Opcode::Phi, type);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createCall(Function *callee, std::vector<Value *> args,
                                   std::string name) {
  auto inst = std::make_unique<Instruction>(Opcode::Call,
                                            callee->returnType());
  inst->addOperand(callee);
  for (Value *a : args)
    inst->addOperand(a);
  return insert(std::move(inst), std::move(name));
}

Instruction *IRBuilder::createRet(Value *v) {
  auto inst = std::make_unique<Instruction>(Opcode::Ret, ctx_.voidTy());
  if (v)
    inst->addOperand(v);
  return insert(std::move(inst), "");
}

Instruction *IRBuilder::createBr(BasicBlock *dest) {
  auto inst = std::make_unique<Instruction>(Opcode::Br, ctx_.voidTy());
  inst->addOperand(dest);
  return insert(std::move(inst), "");
}

Instruction *IRBuilder::createCondBr(Value *cond, BasicBlock *t,
                                     BasicBlock *f) {
  auto inst = std::make_unique<Instruction>(Opcode::CondBr, ctx_.voidTy());
  inst->addOperand(cond);
  inst->addOperand(t);
  inst->addOperand(f);
  return insert(std::move(inst), "");
}

Instruction *IRBuilder::createUnreachable() {
  return insert(std::make_unique<Instruction>(Opcode::Unreachable,
                                              ctx_.voidTy()),
                "");
}

} // namespace mha::lir
