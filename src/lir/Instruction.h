// Instruction.h - MiniLLVM instructions.
//
// One concrete Instruction class with an opcode enum plus a small payload
// (compare predicate, alloca/GEP types, alignment, metadata). Typed helper
// accessors keep pass code readable without a per-opcode class hierarchy.
#pragma once

#include "lir/Constants.h"
#include "lir/Metadata.h"
#include "lir/Value.h"

#include <list>

namespace mha::lir {

class BasicBlock;
class Function;

enum class Opcode {
  // Memory
  Alloca,
  Load,
  Store,
  GEP,
  // Integer arithmetic / bitwise
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Floating point
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  // Comparisons
  ICmp,
  FCmp,
  // Casts
  Trunc,
  ZExt,
  SExt,
  FPTrunc,
  FPExt,
  SIToFP,
  UIToFP,
  FPToSI,
  Bitcast,
  PtrToInt,
  IntToPtr,
  // Other
  Select,
  Freeze,
  Phi,
  Call,
  // Terminators
  Ret,
  Br,
  CondBr,
  Unreachable,
};

enum class CmpPred {
  // integer
  EQ,
  NE,
  SLT,
  SLE,
  SGT,
  SGE,
  ULT,
  ULE,
  UGT,
  UGE,
  // float (ordered only; the HLS subset has no NaN-aware scheduling)
  OEQ,
  ONE,
  OLT,
  OLE,
  OGT,
  OGE,
};

const char *opcodeName(Opcode op);
const char *predName(CmpPred pred);
bool isTerminatorOpcode(Opcode op);
bool isBinaryOpcode(Opcode op);
bool isCastOpcode(Opcode op);
bool isCommutativeOpcode(Opcode op);

class Instruction : public User {
public:
  Instruction(Opcode op, Type *type) : User(Kind::Instruction, type), op_(op) {}

  Opcode opcode() const { return op_; }
  BasicBlock *parent() const { return parent_; }
  Function *function() const;

  bool isTerminator() const { return isTerminatorOpcode(op_); }
  bool isBinaryOp() const { return isBinaryOpcode(op_); }
  bool isCast() const { return isCastOpcode(op_); }
  bool isCommutative() const { return isCommutativeOpcode(op_); }

  /// True if removing the instruction (given no uses) changes program
  /// behaviour: stores, calls and terminators are not trivially dead.
  bool hasSideEffects() const {
    return op_ == Opcode::Store || op_ == Opcode::Call || isTerminator();
  }

  /// True if the instruction can be deleted: no uses, and either free of
  /// side effects or a call to a defined `readnone` callee (the inliner
  /// marks those so post-inline cleanup can drop residual calls).
  bool isTriviallyDead() const;

  // --- Payload accessors ---
  CmpPred predicate() const { return pred_; }
  void setPredicate(CmpPred pred) { pred_ = pred; }

  Type *allocatedType() const { return allocatedType_; }
  void setAllocatedType(Type *t) { allocatedType_ = t; }

  /// GEP: the element type the indices step through.
  Type *sourceElemType() const { return sourceElemType_; }
  void setSourceElemType(Type *t) { sourceElemType_ = t; }

  // --- Phi helpers (operands stored as [v0, bb0, v1, bb1, ...]) ---
  unsigned numIncoming() const { return numOperands() / 2; }
  Value *incomingValue(unsigned i) const { return operand(2 * i); }
  BasicBlock *incomingBlock(unsigned i) const;
  void addIncoming(Value *value, BasicBlock *block);
  void setIncomingValue(unsigned i, Value *v) { setOperand(2 * i, v); }
  /// Returns the incoming value for `block`, or nullptr.
  Value *incomingValueFor(const BasicBlock *block) const;
  /// Removes the incoming edge from `block` (must exist).
  void removeIncoming(const BasicBlock *block);

  // --- Call helpers (operands are [callee, args...]) ---
  Function *calledFunction() const;
  unsigned numArgs() const { return numOperands() - 1; }
  Value *arg(unsigned i) const { return operand(i + 1); }

  // --- Branch helpers ---
  BasicBlock *brDest() const;                // Br
  Value *condition() const { return operand(0); } // CondBr
  BasicBlock *trueDest() const;              // CondBr
  BasicBlock *falseDest() const;             // CondBr
  std::vector<BasicBlock *> successors() const;
  void replaceSuccessor(BasicBlock *from, BasicBlock *to);

  // --- Metadata ---
  MDMap &metadata() { return md_; }
  const MDMap &metadata() const { return md_; }
  const MDNode *getMetadata(const std::string &key) const {
    auto it = md_.find(key);
    return it == md_.end() ? nullptr : it->second.get();
  }
  void setMetadata(const std::string &key, std::unique_ptr<MDNode> node) {
    md_[key] = std::move(node);
  }
  void removeMetadata(const std::string &key) { md_.erase(key); }

  /// Deep-copies the instruction (same operand Values; caller remaps).
  /// The clone has no parent block.
  std::unique_ptr<Instruction> clone() const;

  /// Unlinks from the parent block and destroys the instruction.
  void eraseFromParent();
  /// Unlinks from the parent block, returning ownership.
  std::unique_ptr<Instruction> removeFromParent();

  static bool classof(const Value *v) {
    return v->valueKind() == Kind::Instruction;
  }

private:
  friend class BasicBlock;
  Opcode op_;
  BasicBlock *parent_ = nullptr;
  CmpPred pred_ = CmpPred::EQ;
  Type *allocatedType_ = nullptr;
  Type *sourceElemType_ = nullptr;
  MDMap md_;
};

} // namespace mha::lir
