// PassManager.h - a minimal pass pipeline for MiniLLVM modules.
//
// Passes mutate the module in place and report statistics; the pipeline
// optionally re-verifies after each pass (on by default — the adaptor's
// whole point is producing *valid* IR for a picky consumer).
//
// Observability: the pipeline is instrumented. Every pass run is wrapped
// in a telemetry span (category "lir-pass", so a Chrome trace shows the
// pass stack nested under its flow stage), records IR-delta statistics
// (instruction/block counts before vs. after), feeds the --time-passes
// aggregation when enabled, and fires registered PassInstrumentation
// hooks: before hooks in registration order, after hooks in reverse
// (LLVM-style), so paired instrumentations nest like scopes.
#pragma once

#include "support/Diagnostics.h"

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mha {
class ThreadPool;
} // namespace mha

namespace mha::lir {

class Function;
class Module;

/// A named statistic counter; passes use these for the adaptor report.
using PassStats = std::map<std::string, int64_t>;

class FunctionPass;

class ModulePass {
public:
  virtual ~ModulePass() = default;
  virtual std::string name() const = 0;
  /// Returns true if the IR changed.
  virtual bool run(Module &module, PassStats &stats,
                   DiagnosticEngine &diags) = 0;
  /// Non-null when this pass processes functions independently and may be
  /// parallelized/fused by the pass manager (RTTI-free downcast).
  virtual FunctionPass *asFunctionPass() { return nullptr; }
};

/// A pass whose unit of work is one function, with no cross-function
/// dependencies. The pass manager may run it over the module's functions
/// in parallel (see PassManager::setConcurrency) or fuse consecutive
/// function passes into one traversal (FusedFunctionPass).
///
/// Contract for implementations: runOnFunction may read and create
/// context-owned values (constants, types — uniquing is internally
/// locked) and mutate only `fn`'s own instructions/blocks; it must not
/// touch other functions' bodies or module-level structure.
class FunctionPass : public ModulePass {
public:
  /// Returns true if `fn` changed.
  virtual bool runOnFunction(Function &fn, PassStats &stats,
                             DiagnosticEngine &diags) = 0;

  /// Serial default: runOnFunction over every function in order.
  bool run(Module &module, PassStats &stats, DiagnosticEngine &diags) override;

  FunctionPass *asFunctionPass() override { return this; }
};

/// Runs a fixed list of function passes back-to-back per function before
/// moving to the next one. Fusing the adaptor's cleanup groups this way
/// keeps a function hot in cache across sub-passes and replaces N
/// verifier runs (verifyEach) with one per group.
class FusedFunctionPass : public FunctionPass {
public:
  explicit FusedFunctionPass(std::vector<std::unique_ptr<FunctionPass>> passes);

  /// "fused<a+b+c>".
  std::string name() const override;

  bool runOnFunction(Function &fn, PassStats &stats,
                     DiagnosticEngine &diags) override;

private:
  std::vector<std::unique_ptr<FunctionPass>> passes_;
  std::string name_;
};

/// Wraps a free function as a pass.
class LambdaPass : public ModulePass {
public:
  using Fn = std::function<bool(Module &, PassStats &, DiagnosticEngine &)>;
  LambdaPass(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  bool run(Module &module, PassStats &stats, DiagnosticEngine &diags) override {
    return fn_(module, stats, diags);
  }

private:
  std::string name_;
  Fn fn_;
};

struct PassRunRecord {
  std::string passName;
  bool changed = false;
  double millis = 0;
  // IR-delta: module size around the pass, so per-pass shrink/growth is
  // visible without diffing printed IR.
  int64_t instsBefore = 0;
  int64_t instsAfter = 0;
  int64_t blocksBefore = 0;
  int64_t blocksAfter = 0;
  PassStats stats;
};

/// Observation hooks around each pass run. Implementations must not
/// mutate the module. Hooks run on the thread executing the pipeline;
/// one PassManager (and therefore one hook sequence) is always confined
/// to a single thread, but distinct pipelines run concurrently under the
/// batch driver, so implementations shared across PassManagers must be
/// thread-safe.
class PassInstrumentation {
public:
  virtual ~PassInstrumentation() = default;
  virtual void beforePass(const ModulePass &, const Module &) {}
  /// `record` is fully populated (timing, IR delta, stats) when this runs.
  virtual void afterPass(const ModulePass &, const Module &,
                         const PassRunRecord &) {}
};

/// Prints the module around selected passes (--print-ir-before/after).
class PrintIRInstrumentation : public PassInstrumentation {
public:
  struct Options {
    bool beforeAll = false;
    bool afterAll = false;
    std::vector<std::string> beforePasses; // pass names
    std::vector<std::string> afterPasses;
  };

  PrintIRInstrumentation(Options options, std::ostream &os);

  void beforePass(const ModulePass &pass, const Module &module) override;
  void afterPass(const ModulePass &pass, const Module &module,
                 const PassRunRecord &record) override;

private:
  Options options_;
  std::ostream &os_;
};

/// Counts instructions and basic blocks over every function in `module`.
void countModuleSize(const Module &module, int64_t &insts, int64_t &blocks);

class PassManager {
public:
  explicit PassManager(bool verifyEach = true) : verifyEach_(verifyEach) {}

  void add(std::unique_ptr<ModulePass> pass) {
    passes_.push_back(std::move(pass));
  }
  void add(std::string name, LambdaPass::Fn fn) {
    passes_.push_back(
        std::make_unique<LambdaPass>(std::move(name), std::move(fn)));
  }

  /// Registers an observation hook (not owned; must outlive run()).
  void addInstrumentation(PassInstrumentation *instrumentation) {
    instrumentations_.push_back(instrumentation);
  }

  /// Runs function passes function-at-a-time on `pool` (not owned; must
  /// outlive run()). nullptr restores serial execution. The pool must be
  /// dedicated to pass execution — scheduling pass work on a pool whose
  /// worker is itself blocked in this run() (e.g. the batch runner's)
  /// can deadlock, since TaskGroup::wait does not steal work.
  /// Module-level instrumentation hooks still fire on the calling thread
  /// around the whole pass; per-function spans are recorded on the worker
  /// threads, so they land in the workers' telemetry lanes. Results
  /// (stats, diagnostics, records) are merged in deterministic function
  /// order regardless of completion order.
  void setConcurrency(ThreadPool *pool) { pool_ = pool; }

  /// Runs every pass in order. Returns false if a pass errored or a
  /// post-pass verification failed (remaining passes are skipped).
  bool run(Module &module, DiagnosticEngine &diags);

  const std::vector<PassRunRecord> &records() const { return records_; }

  /// Aggregated statistics over all pass runs.
  PassStats totalStats() const;

private:
  bool runOnePass(ModulePass &pass, Module &module, DiagnosticEngine &diags,
                  PassRunRecord &record);

  bool verifyEach_;
  std::vector<std::unique_ptr<ModulePass>> passes_;
  std::vector<PassInstrumentation *> instrumentations_;
  std::vector<PassRunRecord> records_;
  ThreadPool *pool_ = nullptr;
};

} // namespace mha::lir
