// PassManager.h - a minimal pass pipeline for MiniLLVM modules.
//
// Passes mutate the module in place and report statistics; the pipeline
// optionally re-verifies after each pass (on by default — the adaptor's
// whole point is producing *valid* IR for a picky consumer).
#pragma once

#include "support/Diagnostics.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mha::lir {

class Module;

/// A named statistic counter; passes use these for the adaptor report.
using PassStats = std::map<std::string, int64_t>;

class ModulePass {
public:
  virtual ~ModulePass() = default;
  virtual std::string name() const = 0;
  /// Returns true if the IR changed.
  virtual bool run(Module &module, PassStats &stats,
                   DiagnosticEngine &diags) = 0;
};

/// Wraps a free function as a pass.
class LambdaPass : public ModulePass {
public:
  using Fn = std::function<bool(Module &, PassStats &, DiagnosticEngine &)>;
  LambdaPass(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  bool run(Module &module, PassStats &stats, DiagnosticEngine &diags) override {
    return fn_(module, stats, diags);
  }

private:
  std::string name_;
  Fn fn_;
};

struct PassRunRecord {
  std::string passName;
  bool changed = false;
  double millis = 0;
  PassStats stats;
};

class PassManager {
public:
  explicit PassManager(bool verifyEach = true) : verifyEach_(verifyEach) {}

  void add(std::unique_ptr<ModulePass> pass) {
    passes_.push_back(std::move(pass));
  }
  void add(std::string name, LambdaPass::Fn fn) {
    passes_.push_back(
        std::make_unique<LambdaPass>(std::move(name), std::move(fn)));
  }

  /// Runs every pass in order. Returns false if a pass errored or a
  /// post-pass verification failed (remaining passes are skipped).
  bool run(Module &module, DiagnosticEngine &diags);

  const std::vector<PassRunRecord> &records() const { return records_; }

  /// Aggregated statistics over all pass runs.
  PassStats totalStats() const;

private:
  bool verifyEach_;
  std::vector<std::unique_ptr<ModulePass>> passes_;
  std::vector<PassRunRecord> records_;
};

} // namespace mha::lir
