// PassManager.h - a minimal pass pipeline for MiniLLVM modules.
//
// Passes mutate the module in place and report statistics; the pipeline
// optionally re-verifies after each pass (on by default — the adaptor's
// whole point is producing *valid* IR for a picky consumer).
//
// Observability: the pipeline is instrumented. Every pass run is wrapped
// in a telemetry span (category "lir-pass", so a Chrome trace shows the
// pass stack nested under its flow stage), records IR-delta statistics
// (instruction/block counts before vs. after), feeds the --time-passes
// aggregation when enabled, and fires registered PassInstrumentation
// hooks: before hooks in registration order, after hooks in reverse
// (LLVM-style), so paired instrumentations nest like scopes.
#pragma once

#include "support/Diagnostics.h"

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mha::lir {

class Module;

/// A named statistic counter; passes use these for the adaptor report.
using PassStats = std::map<std::string, int64_t>;

class ModulePass {
public:
  virtual ~ModulePass() = default;
  virtual std::string name() const = 0;
  /// Returns true if the IR changed.
  virtual bool run(Module &module, PassStats &stats,
                   DiagnosticEngine &diags) = 0;
};

/// Wraps a free function as a pass.
class LambdaPass : public ModulePass {
public:
  using Fn = std::function<bool(Module &, PassStats &, DiagnosticEngine &)>;
  LambdaPass(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  bool run(Module &module, PassStats &stats, DiagnosticEngine &diags) override {
    return fn_(module, stats, diags);
  }

private:
  std::string name_;
  Fn fn_;
};

struct PassRunRecord {
  std::string passName;
  bool changed = false;
  double millis = 0;
  // IR-delta: module size around the pass, so per-pass shrink/growth is
  // visible without diffing printed IR.
  int64_t instsBefore = 0;
  int64_t instsAfter = 0;
  int64_t blocksBefore = 0;
  int64_t blocksAfter = 0;
  PassStats stats;
};

/// Observation hooks around each pass run. Implementations must not
/// mutate the module. Hooks run on the thread executing the pipeline;
/// one PassManager (and therefore one hook sequence) is always confined
/// to a single thread, but distinct pipelines run concurrently under the
/// batch driver, so implementations shared across PassManagers must be
/// thread-safe.
class PassInstrumentation {
public:
  virtual ~PassInstrumentation() = default;
  virtual void beforePass(const ModulePass &, const Module &) {}
  /// `record` is fully populated (timing, IR delta, stats) when this runs.
  virtual void afterPass(const ModulePass &, const Module &,
                         const PassRunRecord &) {}
};

/// Prints the module around selected passes (--print-ir-before/after).
class PrintIRInstrumentation : public PassInstrumentation {
public:
  struct Options {
    bool beforeAll = false;
    bool afterAll = false;
    std::vector<std::string> beforePasses; // pass names
    std::vector<std::string> afterPasses;
  };

  PrintIRInstrumentation(Options options, std::ostream &os);

  void beforePass(const ModulePass &pass, const Module &module) override;
  void afterPass(const ModulePass &pass, const Module &module,
                 const PassRunRecord &record) override;

private:
  Options options_;
  std::ostream &os_;
};

/// Counts instructions and basic blocks over every function in `module`.
void countModuleSize(const Module &module, int64_t &insts, int64_t &blocks);

class PassManager {
public:
  explicit PassManager(bool verifyEach = true) : verifyEach_(verifyEach) {}

  void add(std::unique_ptr<ModulePass> pass) {
    passes_.push_back(std::move(pass));
  }
  void add(std::string name, LambdaPass::Fn fn) {
    passes_.push_back(
        std::make_unique<LambdaPass>(std::move(name), std::move(fn)));
  }

  /// Registers an observation hook (not owned; must outlive run()).
  void addInstrumentation(PassInstrumentation *instrumentation) {
    instrumentations_.push_back(instrumentation);
  }

  /// Runs every pass in order. Returns false if a pass errored or a
  /// post-pass verification failed (remaining passes are skipped).
  bool run(Module &module, DiagnosticEngine &diags);

  const std::vector<PassRunRecord> &records() const { return records_; }

  /// Aggregated statistics over all pass runs.
  PassStats totalStats() const;

private:
  bool verifyEach_;
  std::vector<std::unique_ptr<ModulePass>> passes_;
  std::vector<PassInstrumentation *> instrumentations_;
  std::vector<PassRunRecord> records_;
};

} // namespace mha::lir
