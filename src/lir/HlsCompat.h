// HlsCompat.h - the "HLS-readable IR" dialect contract.
//
// This is the IR subset the (Vitis-style) HLS frontend accepts — the target
// of the paper's adaptor. Both the adaptor's final verification pass and
// the virtual HLS backend's frontend check call this predicate, exactly as
// both a producer and a consumer would share an interface spec.
//
// Rules (violations are errors unless noted):
//  * module flag "opaque-pointers" must be "false", and no value may have
//    an opaque pointer type (the version gap in pointer representation),
//  * no llvm.* intrinsic calls or declarations — only hls_* math calls,
//  * no metadata keys in the llvm.* or mha.* namespaces (directives must
//    use the xlx.* names the frontend understands),
//  * no `freeze` instructions,
//  * function/argument attributes restricted to a legacy whitelist,
//  * GEPs should be "shaped" (array source type, leading constant-0 index);
//    flat pointer-arithmetic GEPs are accepted with a *warning* — the
//    backend then treats the array as a single unpartitionable bank.
#pragma once

#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <string>

namespace mha::lir {

class Module;
class Function;

struct HlsCompatReport {
  bool accepted = false;
  int64_t errors = 0;
  int64_t warnings = 0;
  /// Violation counts by category (opaque-pointers, intrinsic-call,
  /// modern-metadata, descriptor-arg, freeze, bad-attribute, unshaped-gep).
  std::map<std::string, int64_t> violations;
};

/// True for attributes the legacy frontend understands.
bool isLegacyArgAttr(const std::string &attr);
bool isLegacyFnAttr(const std::string &attr);

/// Checks `module` against the HLS-readable contract. Diagnostics carry
/// one entry per violation.
HlsCompatReport checkHlsCompatibility(const Module &module,
                                      DiagnosticEngine &diags);

} // namespace mha::lir
