#include "lir/Value.h"

#include <cassert>

namespace mha::lir {

Value::~Value() {
  assert(uses_.empty() && "destroying a value that still has uses");
}

void Value::replaceAllUsesWith(Value *replacement) {
  assert(replacement != this && "self-replacement");
  // Copy: Use::set mutates uses_.
  std::vector<Use *> snapshot = uses_;
  for (Use *use : snapshot)
    use->set(replacement);
}

} // namespace mha::lir
