#include "lir/Value.h"

#include "lir/LContext.h"

#include <cassert>
#include <mutex>

namespace mha::lir {

Value::~Value() {
  assert(uses_.empty() && "destroying a value that still has uses");
}

void Value::replaceAllUsesWith(Value *replacement) {
  assert(replacement != this && "self-replacement");
  // Copy: Use::set mutates uses_.
  std::vector<Use *> snapshot = uses_;
  for (Use *use : snapshot)
    use->set(replacement);
}

void Use::set(Value *value) {
  if (value_ == value)
    return;
  // Use-lists of function-local values (instructions, arguments, blocks)
  // are only touched by the thread processing that function; use-lists of
  // shared values (constants, undef, functions) are touched by every
  // thread and need the context lock during parallel pass execution.
  Value *shared = nullptr;
  if (value_ && value_->isShared())
    shared = value_;
  else if (value && value->isShared())
    shared = value;
  std::unique_lock<std::mutex> guard;
  if (shared) {
    LContext &ctx = shared->type()->context();
    if (ctx.parallelUseLists())
      guard = std::unique_lock<std::mutex>(ctx.useListMutex());
  }
  if (value_) {
    auto &uses = value_->uses_;
    uses.erase(std::find(uses.begin(), uses.end(), this));
  }
  value_ = value;
  if (value_)
    value_->uses_.push_back(this);
}

} // namespace mha::lir
