#include "lir/analysis/CallGraph.h"

#include "lir/Instruction.h"

#include <algorithm>
#include <functional>

namespace mha::lir {

CallGraph::CallGraph(Module &module) {
  std::vector<Function *> fns = module.functions();
  for (Function *fn : fns)
    nodes_[fn];

  for (Function *fn : fns) {
    Node &n = nodes_[fn];
    for (BasicBlock *bb : fn->blockPtrs()) {
      for (auto &inst : *bb) {
        if (inst->opcode() != Opcode::Call)
          continue;
        Function *callee = inst->calledFunction();
        if (!callee)
          continue;
        nodes_[callee].callSites.push_back(inst.get());
        if (std::find(n.callees.begin(), n.callees.end(), callee) ==
            n.callees.end())
          n.callees.push_back(callee);
        if (callee == fn)
          n.selfRecursive = true;
      }
    }
  }

  // Tarjan SCC over defined functions: assigns each function a component;
  // a function is recursive iff its component has >1 member or it calls
  // itself. Components complete callees-first, which is exactly the
  // bottom-up order the inliner wants.
  std::map<Function *, int> index, lowlink;
  std::vector<Function *> stack;
  std::set<Function *> onStack;
  int nextIndex = 0;

  std::function<void(Function *)> strongConnect = [&](Function *fn) {
    index[fn] = lowlink[fn] = nextIndex++;
    stack.push_back(fn);
    onStack.insert(fn);
    for (Function *callee : nodes_[fn].callees) {
      if (callee->isDeclaration())
        continue;
      if (!index.count(callee)) {
        strongConnect(callee);
        lowlink[fn] = std::min(lowlink[fn], lowlink[callee]);
      } else if (onStack.count(callee)) {
        lowlink[fn] = std::min(lowlink[fn], index[callee]);
      }
    }
    if (lowlink[fn] == index[fn]) {
      std::vector<Function *> component;
      Function *member = nullptr;
      do {
        member = stack.back();
        stack.pop_back();
        onStack.erase(member);
        component.push_back(member);
      } while (member != fn);
      bool cyclic = component.size() > 1;
      // Reverse so members appear in DFS-discovery order within the cycle.
      std::reverse(component.begin(), component.end());
      for (Function *m : component) {
        if (cyclic)
          nodes_[m].recursive = true;
        postOrder_.push_back(m);
      }
    }
  };

  for (Function *fn : fns)
    if (!fn->isDeclaration() && !index.count(fn))
      strongConnect(fn);

  for (auto &[fn, n] : nodes_)
    if (n.selfRecursive)
      n.recursive = true;
}

const CallGraph::Node &CallGraph::node(const Function *fn) const {
  static const Node empty;
  auto it = nodes_.find(fn);
  return it == nodes_.end() ? empty : it->second;
}

const std::vector<Function *> &CallGraph::callees(const Function *fn) const {
  return node(fn).callees;
}

const std::vector<Instruction *> &
CallGraph::callSitesOf(const Function *fn) const {
  return node(fn).callSites;
}

bool CallGraph::isSelfRecursive(const Function *fn) const {
  return node(fn).selfRecursive;
}

bool CallGraph::isRecursive(const Function *fn) const {
  return node(fn).recursive;
}

} // namespace mha::lir
