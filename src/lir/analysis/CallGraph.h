// CallGraph.h - module call graph over direct calls.
//
// The adaptor's call-legalization passes (Rec2Iter, Inliner,
// CallSitePrivatization) all need the same three questions answered: who
// calls whom, which functions sit on call cycles, and what a bottom-up
// (callees-first) processing order looks like. The graph is a snapshot —
// passes that mutate the module rebuild it.
#pragma once

#include "lir/Function.h"

#include <map>
#include <set>
#include <vector>

namespace mha::lir {

class Instruction;

class CallGraph {
public:
  explicit CallGraph(Module &module);

  /// Distinct callees of `fn` (direct calls only, in first-call-site order).
  const std::vector<Function *> &callees(const Function *fn) const;

  /// All call instructions in the module whose callee is `fn`.
  const std::vector<Instruction *> &callSitesOf(const Function *fn) const;

  /// True if `fn` contains a direct call to itself.
  bool isSelfRecursive(const Function *fn) const;

  /// True if `fn` is on any call cycle (self- or mutual recursion).
  bool isRecursive(const Function *fn) const;

  /// Defined functions in bottom-up order: every function appears after all
  /// callees that are not in the same cycle. Members of one cycle appear
  /// adjacent, in an arbitrary relative order.
  const std::vector<Function *> &postOrder() const { return postOrder_; }

private:
  struct Node {
    std::vector<Function *> callees;
    std::vector<Instruction *> callSites; // calls *to* this function
    bool selfRecursive = false;
    bool recursive = false;
  };

  const Node &node(const Function *fn) const;

  std::map<const Function *, Node> nodes_;
  std::vector<Function *> postOrder_;
};

} // namespace mha::lir
