// Dominators.h - dominator tree over the CFG.
//
// Cooper/Harvey/Kennedy iterative algorithm; plenty fast for HLS-kernel
// sized functions and simple enough to audit.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace mha::lir {

class BasicBlock;
class Function;
class Instruction;
class Value;

class DominatorTree {
public:
  explicit DominatorTree(Function &fn);

  /// Immediate dominator of `bb` (nullptr for the entry block and for
  /// unreachable blocks).
  BasicBlock *idom(const BasicBlock *bb) const;

  /// True if `a` dominates `b` (reflexive).
  bool dominates(const BasicBlock *a, const BasicBlock *b) const;

  /// True if the definition of `def` dominates the use at operand `opIdx`
  /// of `user` (phi uses are checked against the incoming edge).
  bool valueDominatesUse(const Value *def, const Instruction *user,
                         unsigned opIdx) const;

  /// Blocks in reverse post order (entry first); unreachable blocks absent.
  const std::vector<BasicBlock *> &rpo() const { return rpo_; }

  bool isReachable(const BasicBlock *bb) const {
    return rpoIndex_.count(bb) > 0;
  }

private:
  std::vector<BasicBlock *> rpo_;
  std::map<const BasicBlock *, std::size_t> rpoIndex_;
  std::map<const BasicBlock *, BasicBlock *> idom_;
};

} // namespace mha::lir
