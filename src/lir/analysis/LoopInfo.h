// LoopInfo.h - natural loop detection and canonical counted-loop matching.
//
// The virtual HLS backend schedules loop nests, and the unroll utility and
// pipelining both need trip counts. A CanonicalLoop is the MiniLLVM shape
// produced by the MLIR lowering and the HLS C++ frontend alike:
//
//   preheader:  br %header
//   header:     %iv = phi [%lb, %preheader], [%iv.next, %latch]
//               %cmp = icmp slt %iv, %ub
//               br %cmp, %body..., %exit
//   latch:      %iv.next = add %iv, %step
//               br %header
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace mha::lir {

class BasicBlock;
class DominatorTree;
class Function;
class Instruction;
class Value;

class Loop {
public:
  BasicBlock *header() const { return header_; }
  /// The unique in-loop predecessor of the header (backedge source).
  BasicBlock *latch() const { return latch_; }
  /// The unique out-of-loop predecessor of the header, if any.
  BasicBlock *preheader() const { return preheader_; }
  /// The unique block the header exits to, if the header is the exit test.
  BasicBlock *exitBlock() const { return exit_; }

  const std::vector<BasicBlock *> &blocks() const { return blocks_; }
  bool contains(const BasicBlock *bb) const;
  bool contains(const Instruction *inst) const;

  Loop *parent() const { return parent_; }
  const std::vector<Loop *> &subLoops() const { return subLoops_; }
  bool isInnermost() const { return subLoops_.empty(); }
  unsigned depth() const;

private:
  friend class LoopInfo;
  BasicBlock *header_ = nullptr;
  BasicBlock *latch_ = nullptr;
  BasicBlock *preheader_ = nullptr;
  BasicBlock *exit_ = nullptr;
  std::vector<BasicBlock *> blocks_; // header first
  Loop *parent_ = nullptr;
  std::vector<Loop *> subLoops_;
};

class LoopInfo {
public:
  LoopInfo(Function &fn, const DominatorTree &domTree);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return loops_; }
  /// Outermost loops only.
  std::vector<Loop *> topLevelLoops() const;
  /// The innermost loop containing `bb`, or nullptr.
  Loop *loopFor(const BasicBlock *bb) const;

private:
  std::vector<std::unique_ptr<Loop>> loops_;
  std::map<const BasicBlock *, Loop *> blockToLoop_;
};

/// The recognized counted-loop pattern (see file comment).
struct CanonicalLoop {
  Loop *loop = nullptr;
  Instruction *indVar = nullptr;   // the iv phi in the header
  Instruction *ivNext = nullptr;   // iv + step
  Instruction *compare = nullptr;  // exit test
  Value *lowerBound = nullptr;
  Value *upperBound = nullptr;
  int64_t step = 0;
  /// Trip count if lb/ub are constants.
  std::optional<int64_t> tripCount;
};

/// Matches `loop` against the canonical counted form. Returns nullopt when
/// the loop does not fit (the scheduler then falls back to a conservative
/// sequential model).
std::optional<CanonicalLoop> matchCanonicalLoop(Loop *loop);

} // namespace mha::lir
