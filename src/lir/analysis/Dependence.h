// Dependence.h - loop memory-dependence analysis for pipelining.
//
// For the canonical counted loops both flows produce, memory subscripts are
// linear in the induction variable (outer-loop IVs appear as symbols). The
// analysis recovers those linear forms from shaped GEPs, solves for the
// iteration distance between conflicting accesses, and feeds the modulo
// scheduler's recurrence-MII computation — the mechanism behind the paper's
// pipeline-II results.
#pragma once

#include "lir/analysis/LoopInfo.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace mha::lir {

class Instruction;
class Value;

/// coef*iv + constant + sum(symCoef_i * sym_i). Symbols are SSA values
/// invariant in the analyzed loop (outer IVs, arguments).
struct LinearSubscript {
  bool valid = false;
  int64_t ivCoef = 0;
  int64_t constant = 0;
  std::vector<std::pair<const Value *, int64_t>> symbols;

  bool sameSymbols(const LinearSubscript &other) const;
};

/// One load/store inside the loop body, resolved to its base array.
struct MemAccess {
  Instruction *inst = nullptr;
  const Value *base = nullptr; // argument or alloca the GEP roots at
  std::vector<LinearSubscript> subscripts;
  bool isStore = false;
  bool affine = false; // all subscripts linear in the iv
};

/// A (possibly loop-carried) dependence edge src -> dst: the access `dst`
/// in iteration i+distance conflicts with `src` in iteration i.
struct LoopDependence {
  const Instruction *src = nullptr;
  const Instruction *dst = nullptr;
  int64_t distance = 0; // 0 = intra-iteration ordering edge
};

/// Linearizes `v` with respect to `iv`; every non-iv leaf becomes a symbol.
LinearSubscript linearizeInIV(const Value *v, const Value *iv);

/// Collects all loads/stores in the loop body blocks with their subscripts.
std::vector<MemAccess> collectLoopAccesses(const CanonicalLoop &loop);

/// Computes dependence edges among `accesses` (store/load, store/store,
/// load/store pairs on the same base). Non-affine accesses get conservative
/// distance-1 edges against every other access to the same base.
std::vector<LoopDependence>
analyzeLoopDependences(const std::vector<MemAccess> &accesses);

} // namespace mha::lir
