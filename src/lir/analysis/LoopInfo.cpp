#include "lir/analysis/LoopInfo.h"

#include "lir/Function.h"
#include "lir/analysis/Dominators.h"

#include <algorithm>
#include <set>

namespace mha::lir {

bool Loop::contains(const BasicBlock *bb) const {
  return std::find(blocks_.begin(), blocks_.end(), bb) != blocks_.end();
}

bool Loop::contains(const Instruction *inst) const {
  return contains(inst->parent());
}

unsigned Loop::depth() const {
  unsigned d = 1;
  for (const Loop *p = parent_; p; p = p->parent())
    ++d;
  return d;
}

LoopInfo::LoopInfo(Function &fn, const DominatorTree &domTree) {
  if (fn.isDeclaration())
    return;

  // Find backedges: edge (tail -> head) where head dominates tail.
  struct BackEdge {
    BasicBlock *tail;
    BasicBlock *head;
  };
  std::vector<BackEdge> backedges;
  for (BasicBlock *bb : domTree.rpo())
    for (BasicBlock *succ : bb->successors())
      if (domTree.dominates(succ, bb))
        backedges.push_back({bb, succ});

  // One natural loop per header; merge backedges that share a header.
  std::map<BasicBlock *, std::set<BasicBlock *>> headerBodies;
  std::map<BasicBlock *, BasicBlock *> headerLatch;
  for (const BackEdge &be : backedges) {
    auto &body = headerBodies[be.head];
    body.insert(be.head);
    headerLatch[be.head] = be.tail; // last one wins; canonical loops have one
    // Walk predecessors backwards from the tail until the header.
    std::vector<BasicBlock *> work{be.tail};
    while (!work.empty()) {
      BasicBlock *bb = work.back();
      work.pop_back();
      if (!body.insert(bb).second)
        continue;
      for (BasicBlock *pred : bb->predecessors())
        if (pred != be.head)
          work.push_back(pred);
    }
  }

  // Materialize loops, header-first block order following RPO. Iterate
  // headers in RPO as well — headerBodies is keyed by pointer, so its own
  // order depends on allocation addresses and would make loops() order
  // (and everything downstream, e.g. report emission) nondeterministic.
  for (BasicBlock *header : domTree.rpo()) {
    auto it = headerBodies.find(header);
    if (it == headerBodies.end())
      continue;
    std::set<BasicBlock *> &body = it->second;
    auto loop = std::make_unique<Loop>();
    loop->header_ = header;
    loop->latch_ = headerLatch[header];
    loop->blocks_.push_back(header);
    for (BasicBlock *bb : domTree.rpo())
      if (bb != header && body.count(bb))
        loop->blocks_.push_back(bb);

    // Preheader: unique predecessor of header outside the loop.
    BasicBlock *preheader = nullptr;
    bool unique = true;
    for (BasicBlock *pred : header->predecessors()) {
      if (body.count(pred))
        continue;
      if (preheader)
        unique = false;
      preheader = pred;
    }
    loop->preheader_ = unique ? preheader : nullptr;

    // Exit: unique successor of any in-loop block that leaves the loop.
    BasicBlock *exit = nullptr;
    bool uniqueExit = true;
    for (BasicBlock *bb : loop->blocks_)
      for (BasicBlock *succ : bb->successors())
        if (!body.count(succ)) {
          if (exit && exit != succ)
            uniqueExit = false;
          exit = succ;
        }
    loop->exit_ = uniqueExit ? exit : nullptr;

    loops_.push_back(std::move(loop));
  }

  // Nesting: loop A is a child of the smallest loop B that strictly
  // contains A's header (and is not A).
  for (auto &child : loops_) {
    Loop *best = nullptr;
    for (auto &candidate : loops_) {
      if (candidate.get() == child.get())
        continue;
      if (!candidate->contains(child->header()))
        continue;
      if (!best || candidate->blocks().size() < best->blocks().size())
        best = candidate.get();
    }
    child->parent_ = best;
    if (best)
      best->subLoops_.push_back(child.get());
  }

  // blockToLoop_: innermost loop per block.
  for (auto &loop : loops_) {
    for (BasicBlock *bb : loop->blocks()) {
      auto it = blockToLoop_.find(bb);
      if (it == blockToLoop_.end() ||
          it->second->blocks().size() > loop->blocks().size())
        blockToLoop_[bb] = loop.get();
    }
  }
}

std::vector<Loop *> LoopInfo::topLevelLoops() const {
  std::vector<Loop *> out;
  for (const auto &loop : loops_)
    if (!loop->parent())
      out.push_back(loop.get());
  return out;
}

Loop *LoopInfo::loopFor(const BasicBlock *bb) const {
  auto it = blockToLoop_.find(bb);
  return it == blockToLoop_.end() ? nullptr : it->second;
}

std::optional<CanonicalLoop> matchCanonicalLoop(Loop *loop) {
  BasicBlock *header = loop->header();
  BasicBlock *latch = loop->latch();
  if (!header || !latch || !loop->preheader())
    return std::nullopt;

  // Header must end in a conditional branch whose condition is an icmp on
  // an induction phi defined in the header.
  Instruction *term = header->terminator();
  if (!term || term->opcode() != Opcode::CondBr)
    return std::nullopt;
  auto *cmp = dyn_cast<Instruction>(term->condition());
  if (!cmp || cmp->opcode() != Opcode::ICmp)
    return std::nullopt;

  // One destination must leave the loop.
  BasicBlock *trueDest = term->trueDest();
  BasicBlock *falseDest = term->falseDest();
  bool trueInLoop = loop->contains(trueDest);
  bool falseInLoop = loop->contains(falseDest);
  if (trueInLoop == falseInLoop)
    return std::nullopt;
  // Canonical form: continue on true (iv < ub).
  if (!trueInLoop)
    return std::nullopt;
  if (cmp->predicate() != CmpPred::SLT && cmp->predicate() != CmpPred::ULT &&
      cmp->predicate() != CmpPred::SLE)
    return std::nullopt;

  auto *iv = dyn_cast<Instruction>(cmp->operand(0));
  if (!iv || iv->opcode() != Opcode::Phi || iv->parent() != header)
    return std::nullopt;
  if (iv->numIncoming() != 2)
    return std::nullopt;

  Value *lb = iv->incomingValueFor(loop->preheader());
  Value *latchVal = iv->incomingValueFor(latch);
  if (!lb || !latchVal)
    return std::nullopt;

  auto *ivNext = dyn_cast<Instruction>(latchVal);
  if (!ivNext || ivNext->opcode() != Opcode::Add)
    return std::nullopt;
  // iv.next = iv + C (either operand order).
  Value *stepVal = nullptr;
  if (ivNext->operand(0) == iv)
    stepVal = ivNext->operand(1);
  else if (ivNext->operand(1) == iv)
    stepVal = ivNext->operand(0);
  auto *stepConst = stepVal ? dyn_cast<ConstantInt>(stepVal) : nullptr;
  if (!stepConst || stepConst->value() == 0)
    return std::nullopt;

  CanonicalLoop out;
  out.loop = loop;
  out.indVar = iv;
  out.ivNext = ivNext;
  out.compare = cmp;
  out.lowerBound = lb;
  out.upperBound = cmp->operand(1);
  out.step = stepConst->value();

  auto *lbC = dyn_cast<ConstantInt>(lb);
  auto *ubC = dyn_cast<ConstantInt>(out.upperBound);
  if (lbC && ubC && out.step > 0) {
    int64_t span = ubC->value() - lbC->value();
    if (cmp->predicate() == CmpPred::SLE)
      span += 1;
    if (span <= 0)
      out.tripCount = 0;
    else
      out.tripCount = (span + out.step - 1) / out.step;
  }
  return out;
}

} // namespace mha::lir
