#include "lir/analysis/Dominators.h"

#include "lir/Function.h"

#include <algorithm>
#include <set>

namespace mha::lir {

DominatorTree::DominatorTree(Function &fn) {
  if (fn.isDeclaration())
    return;
  BasicBlock *entry = fn.entry();

  // Post-order DFS, then reverse.
  std::vector<BasicBlock *> postorder;
  std::set<BasicBlock *> visited;
  std::vector<std::pair<BasicBlock *, size_t>> stack;
  stack.push_back({entry, 0});
  visited.insert(entry);
  while (!stack.empty()) {
    auto &[bb, next] = stack.back();
    std::vector<BasicBlock *> succs = bb->successors();
    if (next < succs.size()) {
      BasicBlock *succ = succs[next++];
      if (visited.insert(succ).second)
        stack.push_back({succ, 0});
    } else {
      postorder.push_back(bb);
      stack.pop_back();
    }
  }
  rpo_.assign(postorder.rbegin(), postorder.rend());
  for (size_t i = 0; i < rpo_.size(); ++i)
    rpoIndex_[rpo_[i]] = i;

  // Iterative idom computation (Cooper-Harvey-Kennedy).
  idom_[entry] = entry;
  bool changed = true;
  auto intersect = [&](BasicBlock *a, BasicBlock *b) {
    while (a != b) {
      while (rpoIndex_.at(a) > rpoIndex_.at(b))
        a = idom_.at(a);
      while (rpoIndex_.at(b) > rpoIndex_.at(a))
        b = idom_.at(b);
    }
    return a;
  };
  while (changed) {
    changed = false;
    for (BasicBlock *bb : rpo_) {
      if (bb == entry)
        continue;
      BasicBlock *newIdom = nullptr;
      for (BasicBlock *pred : bb->predecessors()) {
        if (!rpoIndex_.count(pred) || !idom_.count(pred))
          continue;
        newIdom = newIdom ? intersect(newIdom, pred) : pred;
      }
      if (newIdom && (!idom_.count(bb) || idom_[bb] != newIdom)) {
        idom_[bb] = newIdom;
        changed = true;
      }
    }
  }
  // Canonicalize: entry's idom is null for public queries.
}

BasicBlock *DominatorTree::idom(const BasicBlock *bb) const {
  auto it = idom_.find(bb);
  if (it == idom_.end() || it->second == bb)
    return nullptr;
  return it->second;
}

bool DominatorTree::dominates(const BasicBlock *a, const BasicBlock *b) const {
  if (!isReachable(b))
    return true; // vacuous: unreachable code
  const BasicBlock *cur = b;
  for (;;) {
    if (cur == a)
      return true;
    auto it = idom_.find(cur);
    if (it == idom_.end() || it->second == cur)
      return cur == a;
    cur = it->second;
  }
}

bool DominatorTree::valueDominatesUse(const Value *def,
                                      const Instruction *user,
                                      unsigned opIdx) const {
  // Non-instruction defs (arguments, constants, blocks, functions)
  // dominate everything.
  const auto *defInst = dyn_cast<Instruction>(def);
  if (!defInst)
    return true;
  const BasicBlock *defBB = defInst->parent();
  const BasicBlock *useBB = user->parent();

  if (user->opcode() == Opcode::Phi) {
    // A phi use must be dominated at the end of the incoming block.
    if (opIdx % 2 != 0)
      return true; // block operand
    const BasicBlock *incoming = user->incomingBlock(opIdx / 2);
    return dominates(defBB, incoming);
  }

  if (defBB == useBB) {
    // Same block: def must appear strictly before use.
    for (const auto &inst : *defBB) {
      if (inst.get() == defInst)
        return true;
      if (inst.get() == user)
        return false;
    }
    return false;
  }
  return dominates(defBB, useBB);
}

} // namespace mha::lir
