#include "lir/analysis/Dependence.h"

#include "lir/Function.h"

#include <algorithm>
#include <map>

namespace mha::lir {

bool LinearSubscript::sameSymbols(const LinearSubscript &other) const {
  if (symbols.size() != other.symbols.size())
    return false;
  for (size_t i = 0; i < symbols.size(); ++i)
    if (symbols[i] != other.symbols[i])
      return false;
  return true;
}

namespace {

void addSymbol(LinearSubscript &expr, const Value *sym, int64_t coef) {
  for (auto &[s, c] : expr.symbols) {
    if (s == sym) {
      c += coef;
      return;
    }
  }
  expr.symbols.push_back({sym, coef});
}

LinearSubscript combine(const LinearSubscript &a, const LinearSubscript &b,
                        int64_t bScale) {
  LinearSubscript out;
  if (!a.valid || !b.valid)
    return out;
  out.valid = true;
  out.ivCoef = a.ivCoef + bScale * b.ivCoef;
  out.constant = a.constant + bScale * b.constant;
  out.symbols = a.symbols;
  for (const auto &[s, c] : b.symbols)
    addSymbol(out, s, bScale * c);
  // Drop zero coefficients and sort for stable comparison.
  std::erase_if(out.symbols, [](const auto &p) { return p.second == 0; });
  std::sort(out.symbols.begin(), out.symbols.end());
  return out;
}

LinearSubscript scale(const LinearSubscript &a, int64_t factor) {
  LinearSubscript zero;
  zero.valid = true;
  return combine(zero, a, factor);
}

} // namespace

LinearSubscript linearizeInIV(const Value *v, const Value *iv) {
  LinearSubscript out;
  if (v == iv) {
    out.valid = true;
    out.ivCoef = 1;
    return out;
  }
  if (const auto *c = dyn_cast<ConstantInt>(v)) {
    out.valid = true;
    out.constant = c->value();
    return out;
  }
  if (const auto *inst = dyn_cast<Instruction>(v)) {
    switch (inst->opcode()) {
    case Opcode::Add:
      return combine(linearizeInIV(inst->operand(0), iv),
                     linearizeInIV(inst->operand(1), iv), 1);
    case Opcode::Sub:
      return combine(linearizeInIV(inst->operand(0), iv),
                     linearizeInIV(inst->operand(1), iv), -1);
    case Opcode::Mul: {
      if (const auto *rc = dyn_cast<ConstantInt>(inst->operand(1)))
        return scale(linearizeInIV(inst->operand(0), iv), rc->value());
      if (const auto *lc = dyn_cast<ConstantInt>(inst->operand(0)))
        return scale(linearizeInIV(inst->operand(1), iv), lc->value());
      break;
    }
    case Opcode::Shl: {
      if (const auto *rc = dyn_cast<ConstantInt>(inst->operand(1)))
        if (rc->value() >= 0 && rc->value() < 63)
          return scale(linearizeInIV(inst->operand(0), iv),
                       int64_t(1) << rc->value());
      break;
    }
    case Opcode::SExt:
    case Opcode::ZExt:
    case Opcode::Trunc:
      return linearizeInIV(inst->operand(0), iv);
    default:
      break;
    }
  }
  // Leaf symbol (loop-invariant value, outer IV, argument, ...).
  out.valid = true;
  addSymbol(out, v, 1);
  return out;
}

namespace {

/// Walks back through GEPs/bitcasts to the root pointer.
const Value *pointerRoot(const Value *ptr) {
  while (true) {
    const auto *inst = dyn_cast<Instruction>(ptr);
    if (!inst)
      return ptr;
    if (inst->opcode() == Opcode::GEP || inst->opcode() == Opcode::Bitcast)
      ptr = inst->operand(0);
    else
      return ptr;
  }
}

} // namespace

std::vector<MemAccess> collectLoopAccesses(const CanonicalLoop &loop) {
  std::vector<MemAccess> out;
  const Value *iv = loop.indVar;
  for (BasicBlock *bb : loop.loop->blocks()) {
    for (auto &inst : *bb) {
      bool isLoad = inst->opcode() == Opcode::Load;
      bool isStore = inst->opcode() == Opcode::Store;
      if (!isLoad && !isStore)
        continue;
      MemAccess access;
      access.inst = inst.get();
      access.isStore = isStore;
      Value *ptr = inst->operand(isStore ? 1 : 0);
      access.base = pointerRoot(ptr);
      access.affine = true;
      // Single shaped GEP expected; otherwise mark non-affine.
      const auto *gep = dyn_cast<Instruction>(ptr);
      if (gep && gep->opcode() == Opcode::GEP &&
          pointerRoot(gep->operand(0)) == gep->operand(0)) {
        unsigned firstIdx = 1;
        // Skip the leading zero "through-pointer" index of shaped GEPs.
        if (gep->numOperands() > 2) {
          if (const auto *c = dyn_cast<ConstantInt>(gep->operand(1));
              c && c->isZero())
            firstIdx = 2;
        }
        for (unsigned i = firstIdx; i < gep->numOperands(); ++i) {
          LinearSubscript sub = linearizeInIV(gep->operand(i), iv);
          access.affine &= sub.valid;
          access.subscripts.push_back(std::move(sub));
        }
      } else if (gep && gep->opcode() == Opcode::GEP) {
        access.affine = false; // chained GEPs: be conservative
      } else if (ptr == access.base) {
        // Direct access to a scalar (0-d) base: constant address.
        access.affine = true;
      } else {
        access.affine = false;
      }
      out.push_back(std::move(access));
    }
  }
  return out;
}

namespace {

/// Solves src@iter(i) == dst@iter(i+d) for d. Returns nullopt when the
/// accesses can never alias; `exactUnknown` is set when the analysis must
/// be conservative.
std::optional<int64_t> solveDistance(const MemAccess &src,
                                     const MemAccess &dst,
                                     bool &exactUnknown) {
  exactUnknown = false;
  if (!src.affine || !dst.affine ||
      src.subscripts.size() != dst.subscripts.size()) {
    exactUnknown = true;
    return std::nullopt;
  }
  std::optional<int64_t> distance;
  bool anyIvDim = false;
  for (size_t dim = 0; dim < src.subscripts.size(); ++dim) {
    const LinearSubscript &a = src.subscripts[dim];
    const LinearSubscript &b = dst.subscripts[dim];
    if (!a.sameSymbols(b)) {
      // Different symbolic parts: cannot prove equality -> conservative.
      exactUnknown = true;
      return std::nullopt;
    }
    if (a.ivCoef != b.ivCoef) {
      exactUnknown = true;
      return std::nullopt;
    }
    if (a.ivCoef == 0) {
      if (a.constant != b.constant)
        return std::nullopt; // provably different addresses in this dim
      continue;
    }
    anyIvDim = true;
    // a.coef*i + a.c == a.coef*(i+d) + b.c  =>  d = (a.c - b.c) / coef
    int64_t num = a.constant - b.constant;
    if (num % a.ivCoef != 0)
      return std::nullopt; // never equal
    int64_t d = num / a.ivCoef;
    if (distance && *distance != d)
      return std::nullopt; // inconsistent across dims -> no solution
    distance = d;
  }
  if (!anyIvDim)
    return 0; // address invariant in iv; handled by caller as carried-1
  return distance;
}

unsigned positionInBlock(const Instruction *inst) {
  unsigned pos = 0;
  for (const auto &i : *inst->parent()) {
    if (i.get() == inst)
      return pos;
    ++pos;
  }
  return pos;
}

} // namespace

std::vector<LoopDependence>
analyzeLoopDependences(const std::vector<MemAccess> &accesses) {
  std::vector<LoopDependence> deps;
  for (size_t i = 0; i < accesses.size(); ++i) {
    for (size_t j = 0; j < accesses.size(); ++j) {
      if (i == j)
        continue;
      const MemAccess &a = accesses[i];
      const MemAccess &b = accesses[j];
      if (!a.isStore && !b.isStore)
        continue; // load/load never conflicts
      if (a.base != b.base)
        continue;
      // Consider each unordered pair once: handle via i<j and emit edges in
      // both required directions below.
      if (i > j)
        continue;

      bool unknown = false;
      std::optional<int64_t> d = solveDistance(a, b, unknown);
      if (unknown) {
        // Conservative: mutual ordering plus carried distance 1.
        deps.push_back({a.inst, b.inst, 1});
        deps.push_back({b.inst, a.inst, 1});
        if (positionInBlock(a.inst) < positionInBlock(b.inst))
          deps.push_back({a.inst, b.inst, 0});
        else
          deps.push_back({b.inst, a.inst, 0});
        continue;
      }
      if (!d)
        continue; // provably disjoint

      bool invariantAddr =
          std::all_of(a.subscripts.begin(), a.subscripts.end(),
                      [](const LinearSubscript &s) { return s.ivCoef == 0; });
      if (*d == 0) {
        // Same iteration: ordering edge following program order; if the
        // address is iv-invariant the conflict also recurs every iteration.
        if (positionInBlock(a.inst) < positionInBlock(b.inst))
          deps.push_back({a.inst, b.inst, 0});
        else
          deps.push_back({b.inst, a.inst, 0});
        if (invariantAddr) {
          deps.push_back({a.inst, b.inst, 1});
          deps.push_back({b.inst, a.inst, 1});
        }
      } else if (*d > 0) {
        // dst at iteration i+d touches what src touched at i.
        deps.push_back({a.inst, b.inst, *d});
      } else {
        deps.push_back({b.inst, a.inst, -*d});
      }
    }
  }
  return deps;
}

} // namespace mha::lir
