// Utils.h - small CFG surgery helpers shared by adaptor passes.
#pragma once

#include "lir/Function.h"

#include <map>

namespace mha::lir {

/// Splits `inst`'s block before `inst`: everything from `inst` onward moves
/// to a new block placed right after the original; the original gets an
/// unconditional branch to it. Phi users in the old successors are
/// retargeted. Returns the new block.
BasicBlock *splitBlockBefore(Instruction *inst, const std::string &name);

/// Clones every block of `src` (a definition) into `dst`, appending the new
/// blocks at the end of `dst`. `valueMap` seeds the operand remapping
/// (typically src arguments -> replacement values) and on return also maps
/// every src block and instruction to its clone. Operands with no map
/// entry (constants, functions, values defined outside `src`) are shared.
/// Block names get `nameSuffix` appended. Returns the clone of src's entry.
BasicBlock *cloneBlocksInto(Function *src, Function *dst,
                            std::map<Value *, Value *> &valueMap,
                            const std::string &nameSuffix);

/// Clones `src` wholesale into a new function named `newName` in the same
/// module: signature, argument attributes/metadata, function attributes and
/// body. Returns the clone.
Function *cloneFunction(Function *src, const std::string &newName);

} // namespace mha::lir
