// Utils.h - small CFG surgery helpers shared by adaptor passes.
#pragma once

#include "lir/Function.h"

namespace mha::lir {

/// Splits `inst`'s block before `inst`: everything from `inst` onward moves
/// to a new block placed right after the original; the original gets an
/// unconditional branch to it. Phi users in the old successors are
/// retargeted. Returns the new block.
BasicBlock *splitBlockBefore(Instruction *inst, const std::string &name);

} // namespace mha::lir
