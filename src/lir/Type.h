// Type.h - the MiniLLVM type system.
//
// Types are immutable and uniqued inside an LContext: two structurally equal
// types are the same pointer, so type equality is pointer equality. The set
// mirrors the LLVM subset an HLS frontend deals with: void, iN, float/double,
// pointers (typed *and* opaque, to model the version gap the adaptor
// bridges), arrays, named/literal structs, and function types.
#pragma once

#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mha::lir {

class LContext;

class Type {
public:
  enum class Kind {
    Void,
    Integer,
    Float,   // f32
    Double,  // f64
    Pointer,
    Array,
    Struct,
    Function,
    Label, // type of basic blocks when used as branch targets
  };

  Kind kind() const { return kind_; }
  LContext &context() const { return ctx_; }

  bool isVoid() const { return kind_ == Kind::Void; }
  bool isInteger() const { return kind_ == Kind::Integer; }
  bool isFloatingPoint() const {
    return kind_ == Kind::Float || kind_ == Kind::Double;
  }
  bool isPointer() const { return kind_ == Kind::Pointer; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isStruct() const { return kind_ == Kind::Struct; }
  bool isFunction() const { return kind_ == Kind::Function; }
  bool isLabel() const { return kind_ == Kind::Label; }

  /// True for types a scalar SSA value can have.
  bool isFirstClass() const {
    return isInteger() || isFloatingPoint() || isPointer();
  }

  /// Size in bytes when laid out in memory (pointers count as 8).
  uint64_t sizeInBytes() const;

  /// Renders the type in .ll syntax (e.g. "i32", "ptr", "[4 x double]").
  std::string str() const;

protected:
  Type(LContext &ctx, Kind kind) : ctx_(ctx), kind_(kind) {}
  ~Type() = default;

private:
  LContext &ctx_;
  Kind kind_;
};

/// Arbitrary-width (1..64) integer type.
class IntType : public Type {
public:
  unsigned width() const { return width_; }

  static bool classof(const Type *t) { return t->kind() == Kind::Integer; }

private:
  friend class LContext;
  IntType(LContext &ctx, unsigned width)
      : Type(ctx, Kind::Integer), width_(width) {}
  unsigned width_;
};

/// A pointer. `pointee() == nullptr` means the pointer is *opaque* — the
/// modern LLVM form that legacy HLS frontends reject; the adaptor's
/// PointerTypeRecovery pass rewrites opaque pointers into typed ones.
class PointerType : public Type {
public:
  Type *pointee() const { return pointee_; }
  bool isOpaque() const { return pointee_ == nullptr; }

  static bool classof(const Type *t) { return t->kind() == Kind::Pointer; }

private:
  friend class LContext;
  PointerType(LContext &ctx, Type *pointee)
      : Type(ctx, Kind::Pointer), pointee_(pointee) {}
  Type *pointee_;
};

class ArrayType : public Type {
public:
  Type *element() const { return element_; }
  uint64_t numElements() const { return count_; }

  static bool classof(const Type *t) { return t->kind() == Kind::Array; }

private:
  friend class LContext;
  ArrayType(LContext &ctx, Type *element, uint64_t count)
      : Type(ctx, Kind::Array), element_(element), count_(count) {}
  Type *element_;
  uint64_t count_;
};

/// A literal struct; used for memref descriptors in the MLIR-lowered IR.
class StructType : public Type {
public:
  const std::vector<Type *> &fields() const { return fields_; }
  const std::string &name() const { return name_; }

  static bool classof(const Type *t) { return t->kind() == Kind::Struct; }

private:
  friend class LContext;
  StructType(LContext &ctx, std::string name, std::vector<Type *> fields)
      : Type(ctx, Kind::Struct), name_(std::move(name)),
        fields_(std::move(fields)) {}
  std::string name_;
  std::vector<Type *> fields_;
};

class FunctionType : public Type {
public:
  Type *returnType() const { return ret_; }
  const std::vector<Type *> &paramTypes() const { return params_; }

  static bool classof(const Type *t) { return t->kind() == Kind::Function; }

private:
  friend class LContext;
  FunctionType(LContext &ctx, Type *ret, std::vector<Type *> params)
      : Type(ctx, Kind::Function), ret_(ret), params_(std::move(params)) {}
  Type *ret_;
  std::vector<Type *> params_;
};

} // namespace mha::lir
