#include "lir/BasicBlock.h"

#include "lir/Function.h"

#include <cassert>

namespace mha::lir {

Instruction *BasicBlock::append(std::unique_ptr<Instruction> inst) {
  inst->parent_ = this;
  insts_.push_back(std::move(inst));
  return insts_.back().get();
}

Instruction *BasicBlock::insert(iterator pos,
                                std::unique_ptr<Instruction> inst) {
  inst->parent_ = this;
  return insts_.insert(pos, std::move(inst))->get();
}

BasicBlock::iterator BasicBlock::positionOf(Instruction *inst) {
  for (auto it = insts_.begin(); it != insts_.end(); ++it)
    if (it->get() == inst)
      return it;
  assert(false && "instruction not in block");
  return insts_.end();
}

BasicBlock::iterator BasicBlock::firstNonPhi() {
  auto it = insts_.begin();
  while (it != insts_.end() && (*it)->opcode() == Opcode::Phi)
    ++it;
  return it;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  const Instruction *term = terminator();
  if (!term)
    return {};
  return term->successors();
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> preds;
  for (const Use *use : uses()) {
    auto *inst = dyn_cast<Instruction>(use->user());
    if (!inst || !inst->isTerminator())
      continue;
    BasicBlock *pred = inst->parent();
    if (std::find(preds.begin(), preds.end(), pred) == preds.end())
      preds.push_back(pred);
  }
  return preds;
}

std::vector<Instruction *> BasicBlock::phis() const {
  std::vector<Instruction *> out;
  for (const auto &inst : insts_) {
    if (inst->opcode() != Opcode::Phi)
      break;
    out.push_back(inst.get());
  }
  return out;
}

} // namespace mha::lir
