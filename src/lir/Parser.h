// Parser.h - parses the textual form produced by lir::printModule.
#pragma once

#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace mha::lir {

class LContext;
class Module;

/// Parses `text` into a fresh module. Returns nullptr on error (details in
/// `diags`). The parser accepts exactly the subset the printer emits, plus
/// whitespace/comment freedom.
std::unique_ptr<Module> parseModule(std::string_view text, LContext &ctx,
                                    DiagnosticEngine &diags);

} // namespace mha::lir
