// Verifier.h - structural and SSA well-formedness checks for MiniLLVM.
#pragma once

#include "support/Diagnostics.h"

namespace mha::lir {

class Module;
class Function;

/// Verifies the module; reports problems into `diags` and returns true when
/// no errors were found. Checks: terminators, phi/predecessor agreement,
/// per-opcode operand typing, call signatures, and SSA dominance.
bool verifyModule(const Module &module, DiagnosticEngine &diags);
bool verifyFunction(const Function &fn, DiagnosticEngine &diags);

} // namespace mha::lir
