#include "lir/Intrinsics.h"

#include "lir/Function.h"
#include "lir/LContext.h"
#include "support/StringUtils.h"

#include <set>

namespace mha::lir {

bool isModernIntrinsic(const Function &fn) {
  return startsWith(fn.name(), "llvm.");
}

bool isHlsMathFunction(const std::string &name) {
  static const std::set<std::string> known = {
      "hls_sqrt", "hls_fabs", "hls_exp",  "hls_log",
      "hls_sin",  "hls_cos",  "hls_pow",  "hls_sqrtf",
      "hls_fabsf", "hls_expf", "hls_logf", "hls_sinf",
      "hls_cosf", "hls_powf"};
  return known.count(name) > 0;
}

static Function *getOrDeclare(Module &module, const std::string &name,
                              FunctionType *type) {
  if (Function *fn = module.getFunction(name))
    return fn;
  return module.createFunction(type, name);
}

static const char *typeSuffix(Type *type) {
  return type->kind() == Type::Kind::Float ? "f32" : "f64";
}

Function *getMemcpyIntrinsic(Module &module) {
  LContext &ctx = module.context();
  Type *ptr = ctx.emitOpaquePointers
                  ? static_cast<Type *>(ctx.opaquePtrTy())
                  : static_cast<Type *>(ctx.ptrTy(ctx.i8()));
  return getOrDeclare(module, "llvm.memcpy.p0.p0.i64",
                      ctx.fnTy(ctx.voidTy(), {ptr, ptr, ctx.i64()}));
}

Function *getFMulAddIntrinsic(Module &module, Type *type) {
  LContext &ctx = module.context();
  return getOrDeclare(module,
                      strfmt("llvm.fmuladd.%s", typeSuffix(type)),
                      ctx.fnTy(type, {type, type, type}));
}

Function *getSMaxIntrinsic(Module &module) {
  LContext &ctx = module.context();
  return getOrDeclare(module, "llvm.smax.i64",
                      ctx.fnTy(ctx.i64(), {ctx.i64(), ctx.i64()}));
}

Function *getSMinIntrinsic(Module &module) {
  LContext &ctx = module.context();
  return getOrDeclare(module, "llvm.smin.i64",
                      ctx.fnTy(ctx.i64(), {ctx.i64(), ctx.i64()}));
}

Function *getSqrtIntrinsic(Module &module, Type *type) {
  LContext &ctx = module.context();
  return getOrDeclare(module, strfmt("llvm.sqrt.%s", typeSuffix(type)),
                      ctx.fnTy(type, {type}));
}

Function *getHlsMathFunction(Module &module, const std::string &op,
                             Type *type) {
  LContext &ctx = module.context();
  std::string name = "hls_" + op;
  if (type->kind() == Type::Kind::Float)
    name += "f";
  if (op == "pow")
    return getOrDeclare(module, name, ctx.fnTy(type, {type, type}));
  return getOrDeclare(module, name, ctx.fnTy(type, {type}));
}

} // namespace mha::lir
