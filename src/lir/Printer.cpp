#include "lir/Printer.h"

#include "lir/Constants.h"
#include "lir/Function.h"
#include "lir/LContext.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <cmath>
#include <sstream>

namespace mha::lir {

namespace {

std::string fpLiteral(double v) {
  // Shortest round-trip form, locale-independent ('%f'/'%g' honour
  // LC_NUMERIC and break reparse under comma-decimal locales).
  return json::shortestDouble(v);
}

} // namespace

std::string printValueRef(const Value *v) {
  switch (v->valueKind()) {
  case Value::Kind::ConstantInt:
    return strfmt("%lld",
                  static_cast<long long>(cast<ConstantInt>(v)->value()));
  case Value::Kind::ConstantFP:
    return fpLiteral(cast<ConstantFP>(v)->value());
  case Value::Kind::Undef:
    return "undef";
  case Value::Kind::Function:
    return "@" + v->name();
  case Value::Kind::BasicBlock:
    return "%" + v->name();
  case Value::Kind::Argument:
  case Value::Kind::Instruction:
    return "%" + v->name();
  }
  return "<?>";
}

static std::string typedRef(const Value *v) {
  return v->type()->str() + " " + printValueRef(v);
}

std::string printMDNode(const MDNode &node) {
  std::string out = "!{";
  for (size_t i = 0; i < node.size(); ++i) {
    if (i)
      out += ", ";
    const MDOperand &op = node.op(i);
    if (std::holds_alternative<int64_t>(op))
      out += strfmt("i64 %lld", static_cast<long long>(std::get<int64_t>(op)));
    else if (std::holds_alternative<double>(op))
      out += strfmt("f64 %s", fpLiteral(std::get<double>(op)).c_str());
    else if (std::holds_alternative<std::string>(op))
      out += "!\"" + std::get<std::string>(op) + "\"";
    else
      out += printMDNode(*std::get<std::unique_ptr<MDNode>>(op));
  }
  out += "}";
  return out;
}

static void printMDAttachments(std::ostringstream &os, const MDMap &md) {
  for (const auto &[key, node] : md)
    os << ", !" << key << " " << printMDNode(*node);
}

std::string printInstruction(const Instruction &inst) {
  std::ostringstream os;
  Opcode op = inst.opcode();
  if (!inst.type()->isVoid())
    os << printValueRef(&inst) << " = ";

  switch (op) {
  case Opcode::Alloca:
    os << "alloca " << inst.allocatedType()->str();
    break;
  case Opcode::Load:
    os << "load " << inst.type()->str() << ", " << typedRef(inst.operand(0));
    break;
  case Opcode::Store:
    os << "store " << typedRef(inst.operand(0)) << ", "
       << typedRef(inst.operand(1));
    break;
  case Opcode::GEP: {
    os << "getelementptr " << inst.sourceElemType()->str() << ", "
       << typedRef(inst.operand(0));
    for (unsigned i = 1; i < inst.numOperands(); ++i)
      os << ", " << typedRef(inst.operand(i));
    break;
  }
  case Opcode::ICmp:
  case Opcode::FCmp:
    os << opcodeName(op) << " " << predName(inst.predicate()) << " "
       << inst.operand(0)->type()->str() << " "
       << printValueRef(inst.operand(0)) << ", "
       << printValueRef(inst.operand(1));
    break;
  case Opcode::Select:
    os << "select " << typedRef(inst.operand(0)) << ", "
       << typedRef(inst.operand(1)) << ", " << typedRef(inst.operand(2));
    break;
  case Opcode::Freeze:
  case Opcode::FNeg:
    os << opcodeName(op) << " " << typedRef(inst.operand(0));
    break;
  case Opcode::Phi: {
    os << "phi " << inst.type()->str() << " ";
    for (unsigned i = 0; i < inst.numIncoming(); ++i) {
      if (i)
        os << ", ";
      os << "[ " << printValueRef(inst.incomingValue(i)) << ", "
         << printValueRef(inst.incomingBlock(i)) << " ]";
    }
    break;
  }
  case Opcode::Call: {
    const Function *callee = inst.calledFunction();
    os << "call " << inst.type()->str() << " @" << callee->name() << "(";
    for (unsigned i = 0; i < inst.numArgs(); ++i) {
      if (i)
        os << ", ";
      os << typedRef(inst.arg(i));
    }
    os << ")";
    break;
  }
  case Opcode::Ret:
    if (inst.numOperands() == 0)
      os << "ret void";
    else
      os << "ret " << typedRef(inst.operand(0));
    break;
  case Opcode::Br:
    os << "br label " << printValueRef(inst.operand(0));
    break;
  case Opcode::CondBr:
    os << "br " << typedRef(inst.operand(0)) << ", label "
       << printValueRef(inst.operand(1)) << ", label "
       << printValueRef(inst.operand(2));
    break;
  case Opcode::Unreachable:
    os << "unreachable";
    break;
  default:
    // Binary ops and casts.
    if (inst.isBinaryOp()) {
      os << opcodeName(op) << " " << inst.type()->str() << " "
         << printValueRef(inst.operand(0)) << ", "
         << printValueRef(inst.operand(1));
    } else if (inst.isCast()) {
      os << opcodeName(op) << " " << typedRef(inst.operand(0)) << " to "
         << inst.type()->str();
    } else {
      os << "<unknown opcode>";
    }
    break;
  }

  printMDAttachments(os, inst.metadata());
  return os.str();
}

std::string printFunction(const Function &fn) {
  // Names must be stable/unique for printing.
  const_cast<Function &>(fn).renumberValues();

  std::ostringstream os;
  os << (fn.isDeclaration() ? "declare " : "define ")
     << fn.returnType()->str() << " @" << fn.name() << "(";
  for (unsigned i = 0; i < fn.numArgs(); ++i) {
    if (i)
      os << ", ";
    const Argument *arg = fn.arg(i);
    os << arg->type()->str();
    for (const std::string &attr : arg->attrs())
      os << " " << attr;
    for (const auto &[key, node] : arg->metadata())
      os << " !" << key << " " << printMDNode(*node);
    os << " %" << arg->name();
  }
  os << ")";
  if (!fn.attrs().empty()) {
    os << " #[";
    bool first = true;
    for (const std::string &attr : fn.attrs()) {
      if (!first)
        os << ", ";
      first = false;
      os << attr;
    }
    os << "]";
  }
  if (fn.isDeclaration()) {
    os << "\n";
    return os.str();
  }
  os << " {\n";
  bool firstBlock = true;
  for (const auto &bb : const_cast<Function &>(fn)) {
    if (!firstBlock)
      os << "\n";
    firstBlock = false;
    os << bb->name() << ":\n";
    for (const auto &inst : *bb)
      os << "  " << printInstruction(*inst) << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string printModule(const Module &module) {
  std::ostringstream os;
  for (const auto &[key, value] : module.flags())
    os << "!flag " << key << " = \"" << value << "\"\n";
  for (const Function *fn : module.functions()) {
    os << "\n";
    os << printFunction(*fn);
  }
  return os.str();
}

} // namespace mha::lir
