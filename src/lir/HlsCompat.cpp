#include "lir/HlsCompat.h"

#include "lir/Function.h"
#include "lir/Intrinsics.h"
#include "lir/LContext.h"
#include "support/StringUtils.h"

#include <set>

namespace mha::lir {

bool isLegacyArgAttr(const std::string &attr) {
  static const std::set<std::string> ok = {"noalias", "nocapture", "readonly",
                                           "readnone", "writeonly"};
  return ok.count(attr) > 0;
}

bool isLegacyFnAttr(const std::string &attr) {
  static const std::set<std::string> ok = {"nounwind", "norecurse",
                                           "readnone", "noinline"};
  return ok.count(attr) > 0;
}

namespace {

bool isOpaquePtr(const Type *type) {
  const auto *pt = dyn_cast<PointerType>(type);
  return pt && pt->isOpaque();
}

bool isModernMDKey(const std::string &key) {
  return startsWith(key, "llvm.") || startsWith(key, "mha.");
}

class CompatChecker {
public:
  CompatChecker(const Module &module, DiagnosticEngine &diags)
      : module_(module), diags_(diags) {}

  HlsCompatReport run() {
    if (!module_.flagIs("opaque-pointers", "false"))
      error("opaque-pointers",
            "module is in opaque-pointer mode (unsupported IR version)");
    for (const Function *fn : module_.functions())
      checkFunction(*fn);
    report_.accepted = report_.errors == 0;
    return report_;
  }

private:
  void error(const std::string &category, const std::string &msg) {
    diags_.error("hls-frontend: " + msg);
    report_.violations[category]++;
    report_.errors++;
  }

  void warning(const std::string &category, const std::string &msg) {
    diags_.warning("hls-frontend: " + msg);
    report_.violations[category]++;
    report_.warnings++;
  }

  void checkFunction(const Function &fn) {
    if (isModernIntrinsic(fn)) {
      error("intrinsic-call",
            strfmt("declaration of intrinsic @%s", fn.name().c_str()));
      return;
    }
    for (const std::string &attr : fn.attrs())
      if (!isLegacyFnAttr(attr) && !startsWith(attr, "xlx."))
        error("bad-attribute", strfmt("function attribute '%s' on @%s",
                                      attr.c_str(), fn.name().c_str()));
    for (const auto &arg : fn.args()) {
      if (isOpaquePtr(arg->type()))
        error("opaque-pointers",
              strfmt("argument %%%s of @%s has opaque pointer type",
                     arg->name().c_str(), fn.name().c_str()));
      for (const std::string &attr : arg->attrs())
        if (!isLegacyArgAttr(attr))
          error("bad-attribute", strfmt("argument attribute '%s'",
                                        attr.c_str()));
      for (const auto &[key, node] : arg->metadata()) {
        (void)node;
        if (key == lowLevelDescriptorKey())
          error("descriptor-arg",
                strfmt("argument %%%s still carries a memref descriptor",
                       arg->name().c_str()));
        else if (isModernMDKey(key))
          error("modern-metadata",
                strfmt("argument metadata '!%s'", key.c_str()));
      }
    }
    for (const auto &bb : const_cast<Function &>(fn))
      for (const auto &inst : *bb)
        checkInstruction(*inst, fn);
  }

  static const char *lowLevelDescriptorKey() { return "mha.memref"; }

  void checkInstruction(const Instruction &inst, const Function &fn) {
    if (isOpaquePtr(inst.type()))
      error("opaque-pointers",
            strfmt("instruction in @%s produces an opaque pointer",
                   fn.name().c_str()));
    if (inst.opcode() == Opcode::Freeze)
      error("freeze", strfmt("freeze instruction in @%s", fn.name().c_str()));
    if (inst.opcode() == Opcode::Call) {
      const Function *callee = inst.calledFunction();
      if (callee && isModernIntrinsic(*callee))
        error("intrinsic-call", strfmt("call to @%s in @%s",
                                       callee->name().c_str(),
                                       fn.name().c_str()));
      else if (callee && callee->isDeclaration() &&
               !isHlsMathFunction(callee->name()))
        error("intrinsic-call",
              strfmt("call to unknown external @%s", callee->name().c_str()));
    }
    for (const auto &[key, node] : inst.metadata()) {
      (void)node;
      if (isModernMDKey(key))
        error("modern-metadata", strfmt("instruction metadata '!%s' in @%s",
                                        key.c_str(), fn.name().c_str()));
    }
    if (inst.opcode() == Opcode::GEP) {
      // Shaped GEP: array source element type with leading constant index.
      bool shaped = inst.sourceElemType() &&
                    inst.sourceElemType()->isArray() &&
                    inst.numOperands() >= 2 &&
                    isa<ConstantInt>(inst.operand(1));
      if (!shaped)
        warning("unshaped-gep",
                strfmt("flat pointer-arithmetic GEP in @%s (array treated "
                       "as a single bank)",
                       fn.name().c_str()));
    }
  }

  const Module &module_;
  DiagnosticEngine &diags_;
  HlsCompatReport report_;
};

} // namespace

HlsCompatReport checkHlsCompatibility(const Module &module,
                                      DiagnosticEngine &diags) {
  return CompatChecker(module, diags).run();
}

} // namespace mha::lir
