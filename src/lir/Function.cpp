#include "lir/Function.h"

#include "lir/LContext.h"
#include "support/StringUtils.h"

#include <cassert>
#include <set>

namespace mha::lir {

Function::Function(FunctionType *type, std::string name, Module *parent)
    : Value(Kind::Function, type), parent_(parent) {
  setName(std::move(name));
  const auto &params = type->paramTypes();
  args_.reserve(params.size());
  for (unsigned i = 0; i < params.size(); ++i)
    args_.push_back(std::make_unique<Argument>(params[i], this, i));
}

Function::~Function() {
  // Sever every operand edge before member destruction so no Value dies
  // while still referenced (instructions can use values in other blocks,
  // branch targets, arguments, ...).
  for (auto &bb : blocks_)
    for (auto &inst : *bb)
      inst->dropAllOperands();
}

std::vector<Argument *> Function::resetSignature(FunctionType *newType) {
  for ([[maybe_unused]] auto &arg : args_)
    assert(!arg->hasUses() && "old argument still has uses");
  setType(newType);
  args_.clear();
  const auto &params = newType->paramTypes();
  std::vector<Argument *> out;
  for (unsigned i = 0; i < params.size(); ++i) {
    args_.push_back(std::make_unique<Argument>(params[i], this, i));
    out.push_back(args_.back().get());
  }
  return out;
}

BasicBlock *Function::createBlock(std::string name) {
  auto bb = std::make_unique<BasicBlock>(
      parent_->context().labelTy(), std::move(name));
  bb->parent_ = this;
  blocks_.push_back(std::move(bb));
  return blocks_.back().get();
}

BasicBlock *Function::createBlockBefore(BasicBlock *before, std::string name) {
  auto bb = std::make_unique<BasicBlock>(
      parent_->context().labelTy(), std::move(name));
  bb->parent_ = this;
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == before)
      return blocks_.insert(it, std::move(bb))->get();
  }
  blocks_.push_back(std::move(bb));
  return blocks_.back().get();
}

void Function::eraseBlock(BasicBlock *block) {
  // Drop operand edges first so value destructors see no dangling uses.
  for (auto &inst : *block)
    inst->dropAllOperands();
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == block) {
      blocks_.erase(it);
      return;
    }
  }
  assert(false && "block not in function");
}

void Function::moveBlockAfter(BasicBlock *block, BasicBlock *after) {
  std::unique_ptr<BasicBlock> owned;
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == block) {
      owned = std::move(*it);
      blocks_.erase(it);
      break;
    }
  }
  assert(owned && "block not in function");
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == after) {
      blocks_.insert(std::next(it), std::move(owned));
      return;
    }
  }
  assert(false && "anchor block not in function");
}

std::vector<BasicBlock *> Function::blockPtrs() const {
  std::vector<BasicBlock *> out;
  out.reserve(blocks_.size());
  for (const auto &bb : blocks_)
    out.push_back(bb.get());
  return out;
}

void Function::renumberValues() {
  // Printed text binds references by name, so every name must be unique
  // within the function: passes are free to reuse a fixed name (e.g. one
  // "idx.scaled" per subscript), and a duplicate would make later uses
  // rebind to the wrong definition when the output is parsed back.
  std::set<std::string> taken;
  auto claim = [&taken](const std::string &name) {
    if (taken.insert(name).second)
      return name;
    for (unsigned n = 1;; ++n) {
      std::string candidate = strfmt("%s.%u", name.c_str(), n);
      if (taken.insert(candidate).second)
        return candidate;
    }
  };
  unsigned next = 0;
  for (auto &arg : args_)
    if (arg->hasName())
      arg->setName(claim(arg->name()));
    else
      arg->setName(claim(strfmt("%u", next++)));
  unsigned bbNum = 0;
  std::set<std::string> takenBlocks;
  auto claimBlock = [&takenBlocks](const std::string &name) {
    if (takenBlocks.insert(name).second)
      return name;
    for (unsigned n = 1;; ++n) {
      std::string candidate = strfmt("%s.%u", name.c_str(), n);
      if (takenBlocks.insert(candidate).second)
        return candidate;
    }
  };
  for (auto &bb : blocks_) {
    if (bb->hasName())
      bb->setName(claimBlock(bb->name()));
    else
      bb->setName(claimBlock(strfmt("bb%u", bbNum)));
    ++bbNum;
    for (auto &inst : *bb)
      if (!inst->type()->isVoid()) {
        if (inst->hasName())
          inst->setName(claim(inst->name()));
        else
          inst->setName(claim(strfmt("%u", next++)));
      }
  }
}

Module::~Module() {
  // Calls reference callee Functions across the function list; sever every
  // edge up front so destruction order does not matter.
  for (auto &fn : fns_)
    for (BasicBlock *bb : fn->blockPtrs())
      for (auto &inst : *bb)
        inst->dropAllOperands();
}

Function *Module::createFunction(FunctionType *type, std::string name) {
  fns_.push_back(std::make_unique<Function>(type, std::move(name), this));
  return fns_.back().get();
}

Function *Module::getFunction(const std::string &name) const {
  for (const auto &fn : fns_)
    if (fn->name() == name)
      return fn.get();
  return nullptr;
}

void Module::eraseFunction(Function *fn) {
  for (auto it = fns_.begin(); it != fns_.end(); ++it) {
    if (it->get() == fn) {
      // Drop all block/instruction edges before destruction.
      for (BasicBlock *bb : fn->blockPtrs())
        for (auto &inst : *bb)
          inst->dropAllOperands();
      fns_.erase(it);
      return;
    }
  }
  assert(false && "function not in module");
}

std::vector<Function *> Module::functions() const {
  std::vector<Function *> out;
  out.reserve(fns_.size());
  for (const auto &fn : fns_)
    out.push_back(fn.get());
  return out;
}

} // namespace mha::lir
