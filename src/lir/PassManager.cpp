#include "lir/PassManager.h"

#include "lir/Verifier.h"
#include "support/StringUtils.h"

#include <chrono>

namespace mha::lir {

bool PassManager::run(Module &module, DiagnosticEngine &diags) {
  records_.clear();
  for (auto &pass : passes_) {
    PassRunRecord record;
    record.passName = pass->name();
    auto start = std::chrono::steady_clock::now();
    record.changed = pass->run(module, record.stats, diags);
    auto end = std::chrono::steady_clock::now();
    record.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    records_.push_back(std::move(record));
    if (diags.hadError()) {
      diags.note(strfmt("pipeline aborted after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
    if (verifyEach_ && !verifyModule(module, diags)) {
      diags.note(strfmt("IR verification failed after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
  }
  return true;
}

PassStats PassManager::totalStats() const {
  PassStats total;
  for (const PassRunRecord &record : records_)
    for (const auto &[key, value] : record.stats)
      total[key] += value;
  return total;
}

} // namespace mha::lir
