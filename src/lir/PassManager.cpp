#include "lir/PassManager.h"

#include "lir/Function.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <ostream>

namespace mha::lir {

void countModuleSize(const Module &module, int64_t &insts, int64_t &blocks) {
  insts = 0;
  blocks = 0;
  for (const Function *fn : module.functions()) {
    for (const BasicBlock *bb : fn->blockPtrs()) {
      ++blocks;
      insts += static_cast<int64_t>(bb->size());
    }
  }
}

PrintIRInstrumentation::PrintIRInstrumentation(Options options,
                                               std::ostream &os)
    : options_(std::move(options)), os_(os) {}

namespace {

bool nameListed(const std::vector<std::string> &names,
                const std::string &name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

} // namespace

void PrintIRInstrumentation::beforePass(const ModulePass &pass,
                                        const Module &module) {
  if (!options_.beforeAll && !nameListed(options_.beforePasses, pass.name()))
    return;
  os_ << "*** IR before pass '" << pass.name() << "' ***\n"
      << printModule(module);
}

void PrintIRInstrumentation::afterPass(const ModulePass &pass,
                                       const Module &module,
                                       const PassRunRecord &record) {
  if (!options_.afterAll && !nameListed(options_.afterPasses, pass.name()))
    return;
  os_ << "*** IR after pass '" << pass.name() << "' ("
      << (record.changed ? "changed" : "no change") << ") ***\n"
      << printModule(module);
}

bool PassManager::run(Module &module, DiagnosticEngine &diags) {
  records_.clear();
  telemetry::Tracer &tracer = telemetry::Tracer::global();
  for (auto &pass : passes_) {
    PassRunRecord record;
    record.passName = pass->name();
    countModuleSize(module, record.instsBefore, record.blocksBefore);
    for (PassInstrumentation *instrumentation : instrumentations_)
      instrumentation->beforePass(*pass, module);
    telemetry::Span span(record.passName, "lir-pass");
    record.changed = pass->run(module, record.stats, diags);
    record.millis = span.finish();
    countModuleSize(module, record.instsAfter, record.blocksAfter);
    if (tracer.timePassesEnabled())
      tracer.recordPassTime("lir", record.passName, record.millis,
                            record.changed);
    for (auto it = instrumentations_.rbegin(); it != instrumentations_.rend();
         ++it)
      (*it)->afterPass(*pass, module, record);
    records_.push_back(std::move(record));
    if (diags.hadError()) {
      diags.note(strfmt("pipeline aborted after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
    if (verifyEach_ && !verifyModule(module, diags)) {
      diags.note(strfmt("IR verification failed after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
  }
  return true;
}

PassStats PassManager::totalStats() const {
  PassStats total;
  for (const PassRunRecord &record : records_)
    for (const auto &[key, value] : record.stats)
      total[key] += value;
  return total;
}

} // namespace mha::lir
