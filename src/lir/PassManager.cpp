#include "lir/PassManager.h"

#include "lir/Function.h"
#include "lir/LContext.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <ostream>

namespace mha::lir {

bool FunctionPass::run(Module &module, PassStats &stats,
                       DiagnosticEngine &diags) {
  bool changed = false;
  for (Function *fn : module.functions())
    changed |= runOnFunction(*fn, stats, diags);
  return changed;
}

FusedFunctionPass::FusedFunctionPass(
    std::vector<std::unique_ptr<FunctionPass>> passes)
    : passes_(std::move(passes)) {
  name_ = "fused<";
  for (size_t i = 0; i < passes_.size(); ++i) {
    if (i)
      name_ += "+";
    name_ += passes_[i]->name();
  }
  name_ += ">";
}

std::string FusedFunctionPass::name() const { return name_; }

bool FusedFunctionPass::runOnFunction(Function &fn, PassStats &stats,
                                      DiagnosticEngine &diags) {
  bool changed = false;
  for (auto &pass : passes_) {
    changed |= pass->runOnFunction(fn, stats, diags);
    if (diags.hadError())
      break;
  }
  return changed;
}

void countModuleSize(const Module &module, int64_t &insts, int64_t &blocks) {
  insts = 0;
  blocks = 0;
  for (const Function *fn : module.functions()) {
    for (const BasicBlock *bb : fn->blockPtrs()) {
      ++blocks;
      insts += static_cast<int64_t>(bb->size());
    }
  }
}

PrintIRInstrumentation::PrintIRInstrumentation(Options options,
                                               std::ostream &os)
    : options_(std::move(options)), os_(os) {}

namespace {

bool nameListed(const std::vector<std::string> &names,
                const std::string &name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

} // namespace

void PrintIRInstrumentation::beforePass(const ModulePass &pass,
                                        const Module &module) {
  if (!options_.beforeAll && !nameListed(options_.beforePasses, pass.name()))
    return;
  os_ << "*** IR before pass '" << pass.name() << "' ***\n"
      << printModule(module);
}

void PrintIRInstrumentation::afterPass(const ModulePass &pass,
                                       const Module &module,
                                       const PassRunRecord &record) {
  if (!options_.afterAll && !nameListed(options_.afterPasses, pass.name()))
    return;
  os_ << "*** IR after pass '" << pass.name() << "' ("
      << (record.changed ? "changed" : "no change") << ") ***\n"
      << printModule(module);
}

bool PassManager::runOnePass(ModulePass &pass, Module &module,
                             DiagnosticEngine &diags, PassRunRecord &record) {
  FunctionPass *fnPass = pass.asFunctionPass();
  std::vector<Function *> fns;
  if (fnPass && pool_)
    fns = module.functions();
  if (fns.size() < 2) {
    record.changed = pass.run(module, record.stats, diags);
    return record.changed;
  }

  // Function-at-a-time parallel execution. Each function gets its own
  // stats map and diagnostic engine so workers never share mutable state;
  // context-owned use-lists are lock-guarded for the duration (see
  // LContext::setParallelUseLists). Results merge in function order, so
  // stats and diagnostics are deterministic regardless of scheduling.
  LContext &ctx = module.context();
  const size_t n = fns.size();
  std::vector<PassStats> fnStats(n);
  std::vector<DiagnosticEngine> fnDiags(n);
  std::vector<char> fnChanged(n, 0);
  const std::string passName = pass.name();
  ctx.setParallelUseLists(true);
  try {
    TaskGroup group(*pool_);
    for (size_t i = 0; i < n; ++i) {
      Function *fn = fns[i];
      group.submit([&, fn, i] {
        int worker = ThreadPool::currentWorkerIndex();
        if (worker >= 0)
          telemetry::Tracer::setThreadLane(2000 + worker,
                                           strfmt("pass-worker %d", worker));
        telemetry::Span span(passName + " @" + fn->name(), "lir-pass-fn");
        fnChanged[i] = fnPass->runOnFunction(*fn, fnStats[i], fnDiags[i]);
      });
    }
    group.wait();
  } catch (...) {
    ctx.setParallelUseLists(false);
    throw;
  }
  ctx.setParallelUseLists(false);

  for (size_t i = 0; i < n; ++i) {
    record.changed |= fnChanged[i] != 0;
    for (const auto &[key, value] : fnStats[i])
      record.stats[key] += value;
    for (const Diagnostic &d : fnDiags[i].diagnostics()) {
      switch (d.severity) {
      case DiagSeverity::Error:
        diags.error(d.message, d.loc);
        break;
      case DiagSeverity::Warning:
        diags.warning(d.message, d.loc);
        break;
      case DiagSeverity::Note:
        diags.note(d.message, d.loc);
        break;
      }
    }
  }
  return record.changed;
}

bool PassManager::run(Module &module, DiagnosticEngine &diags) {
  records_.clear();
  telemetry::Tracer &tracer = telemetry::Tracer::global();
  for (auto &pass : passes_) {
    PassRunRecord record;
    record.passName = pass->name();
    countModuleSize(module, record.instsBefore, record.blocksBefore);
    for (PassInstrumentation *instrumentation : instrumentations_)
      instrumentation->beforePass(*pass, module);
    telemetry::Span span(record.passName, "lir-pass");
    runOnePass(*pass, module, diags, record);
    record.millis = span.finish();
    metrics::recordPassDuration("lir", record.passName,
                                static_cast<int64_t>(record.millis * 1000.0));
    countModuleSize(module, record.instsAfter, record.blocksAfter);
    if (tracer.timePassesEnabled())
      tracer.recordPassTime("lir", record.passName, record.millis,
                            record.changed);
    for (auto it = instrumentations_.rbegin(); it != instrumentations_.rend();
         ++it)
      (*it)->afterPass(*pass, module, record);
    records_.push_back(std::move(record));
    if (diags.hadError()) {
      diags.note(strfmt("pipeline aborted after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
    if (verifyEach_ && !verifyModule(module, diags)) {
      diags.note(strfmt("IR verification failed after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
  }
  return true;
}

PassStats PassManager::totalStats() const {
  PassStats total;
  for (const PassRunRecord &record : records_)
    for (const auto &[key, value] : record.stats)
      total[key] += value;
  return total;
}

} // namespace mha::lir
