// LContext.h - owns and uniques MiniLLVM types and constants.
//
// Uniquing is hash-based (FNV composite keys into unordered maps with
// structural verification) and node storage is a bump-pointer arena.
// Uniquing methods are guarded by an internal mutex so per-function
// parallel passes may create constants concurrently; the use-lists of
// context-owned values (constants, functions) are additionally guarded
// while parallel use-lists are enabled (see setParallelUseLists).
#pragma once

#include "lir/Type.h"

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace mha::lir {

class ConstantInt;
class ConstantFP;
class UndefValue;

/// Per-compilation context. All types and scalar constants live here; one
/// module per context in practice (but not enforced).
class LContext {
public:
  LContext();
  ~LContext();

  LContext(const LContext &) = delete;
  LContext &operator=(const LContext &) = delete;

  // --- Types (uniqued; pointer equality == structural equality) ---
  Type *voidTy();
  Type *labelTy();
  IntType *intTy(unsigned width);
  IntType *i1() { return intTy(1); }
  IntType *i8() { return intTy(8); }
  IntType *i32() { return intTy(32); }
  IntType *i64() { return intTy(64); }
  Type *floatTy();
  Type *doubleTy();
  PointerType *ptrTy(Type *pointee); // typed pointer
  PointerType *opaquePtrTy();        // modern opaque `ptr`
  ArrayType *arrayTy(Type *element, uint64_t count);
  StructType *structTy(std::string name, std::vector<Type *> fields);
  FunctionType *fnTy(Type *ret, std::vector<Type *> params);

  // --- Constants (uniqued) ---
  ConstantInt *constInt(IntType *type, int64_t value);
  ConstantInt *constI1(bool value);
  ConstantInt *constI32(int32_t value);
  ConstantInt *constI64(int64_t value);
  ConstantFP *constFP(Type *type, double value);
  UndefValue *undef(Type *type);

  /// When true, newly created pointer-producing IR should use opaque
  /// pointers; the MLIR lowering sets this, the adaptor clears it.
  bool emitOpaquePointers = true;

  /// Shared-value use-list locking. Mutating the use-list of a value that
  /// is visible to more than one function (constants, undef, functions)
  /// races when function passes run in parallel; the pass manager enables
  /// this around parallel sections and Use::set takes useListMutex() for
  /// shared values while it is on. Off by default: serial compilation
  /// pays no locking cost.
  void setParallelUseLists(bool enabled);
  bool parallelUseLists() const;
  std::mutex &useListMutex();

  /// Bytes currently held by the uniquing arena (telemetry/tests).
  size_t arenaBytes() const;

private:
  struct Impl;

  /// Placement-constructs a node in the arena (nodes' constructors are
  /// private with `friend class LContext`).
  template <typename T, typename... Args> T *alloc(Args &&...args);

  std::unique_ptr<Impl> impl_;
};

} // namespace mha::lir
