// LContext.h - owns and uniques MiniLLVM types and constants.
#pragma once

#include "lir/Type.h"

#include <map>
#include <memory>
#include <tuple>
#include <vector>

namespace mha::lir {

class ConstantInt;
class ConstantFP;
class UndefValue;

/// Per-compilation context. All types and scalar constants live here; one
/// module per context in practice (but not enforced).
class LContext {
public:
  LContext();
  ~LContext();

  LContext(const LContext &) = delete;
  LContext &operator=(const LContext &) = delete;

  // --- Types (uniqued; pointer equality == structural equality) ---
  Type *voidTy();
  Type *labelTy();
  IntType *intTy(unsigned width);
  IntType *i1() { return intTy(1); }
  IntType *i8() { return intTy(8); }
  IntType *i32() { return intTy(32); }
  IntType *i64() { return intTy(64); }
  Type *floatTy();
  Type *doubleTy();
  PointerType *ptrTy(Type *pointee); // typed pointer
  PointerType *opaquePtrTy();        // modern opaque `ptr`
  ArrayType *arrayTy(Type *element, uint64_t count);
  StructType *structTy(std::string name, std::vector<Type *> fields);
  FunctionType *fnTy(Type *ret, std::vector<Type *> params);

  // --- Constants (uniqued) ---
  ConstantInt *constInt(IntType *type, int64_t value);
  ConstantInt *constI1(bool value);
  ConstantInt *constI32(int32_t value);
  ConstantInt *constI64(int64_t value);
  ConstantFP *constFP(Type *type, double value);
  UndefValue *undef(Type *type);

  /// When true, newly created pointer-producing IR should use opaque
  /// pointers; the MLIR lowering sets this, the adaptor clears it.
  bool emitOpaquePointers = true;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

} // namespace mha::lir
