// Constants.h - uniqued scalar constants.
#pragma once

#include "lir/Value.h"

namespace mha::lir {

class LContext;

class ConstantInt : public Value {
public:
  int64_t value() const { return value_; }
  bool isZero() const { return value_ == 0; }
  bool isOne() const { return value_ == 1; }
  unsigned width() const { return cast<IntType>(type())->width(); }

  static bool classof(const Value *v) {
    return v->valueKind() == Kind::ConstantInt;
  }

private:
  friend class LContext;
  ConstantInt(IntType *type, int64_t value)
      : Value(Kind::ConstantInt, type), value_(value) {}
  int64_t value_;
};

class ConstantFP : public Value {
public:
  double value() const { return value_; }

  static bool classof(const Value *v) {
    return v->valueKind() == Kind::ConstantFP;
  }

private:
  friend class LContext;
  ConstantFP(Type *type, double value)
      : Value(Kind::ConstantFP, type), value_(value) {}
  double value_;
};

class UndefValue : public Value {
public:
  static bool classof(const Value *v) { return v->valueKind() == Kind::Undef; }

private:
  friend class LContext;
  explicit UndefValue(Type *type) : Value(Kind::Undef, type) {}
};

} // namespace mha::lir
