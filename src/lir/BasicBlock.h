// BasicBlock.h - CFG nodes owning instruction lists.
#pragma once

#include "lir/Instruction.h"

#include <list>
#include <memory>

namespace mha::lir {

class Function;

class BasicBlock : public Value {
public:
  using InstList = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstList::iterator;
  using const_iterator = InstList::const_iterator;

  explicit BasicBlock(Type *labelTy, std::string name = "")
      : Value(Kind::BasicBlock, labelTy) {
    setName(std::move(name));
  }

  Function *parent() const { return parent_; }

  iterator begin() { return insts_.begin(); }
  iterator end() { return insts_.end(); }
  const_iterator begin() const { return insts_.begin(); }
  const_iterator end() const { return insts_.end(); }
  bool empty() const { return insts_.empty(); }
  size_t size() const { return insts_.size(); }

  Instruction *front() { return insts_.front().get(); }
  Instruction *back() { return insts_.back().get(); }
  const Instruction *back() const { return insts_.back().get(); }

  /// The block terminator, or nullptr if the block is not yet terminated.
  Instruction *terminator() {
    return (!insts_.empty() && insts_.back()->isTerminator()) ? back()
                                                              : nullptr;
  }
  const Instruction *terminator() const {
    return (!insts_.empty() && insts_.back()->isTerminator())
               ? insts_.back().get()
               : nullptr;
  }

  /// Appends `inst` (takes ownership) and returns the raw pointer.
  Instruction *append(std::unique_ptr<Instruction> inst);
  /// Inserts before `pos`.
  Instruction *insert(iterator pos, std::unique_ptr<Instruction> inst);
  /// Finds the list position of `inst` (must be in this block).
  iterator positionOf(Instruction *inst);

  /// First non-phi position.
  iterator firstNonPhi();

  /// Blocks this block can transfer control to.
  std::vector<BasicBlock *> successors() const;
  /// Blocks that can transfer control here (derived from this value's uses
  /// by terminator instructions).
  std::vector<BasicBlock *> predecessors() const;

  /// All phi instructions at the top of the block.
  std::vector<Instruction *> phis() const;

  static bool classof(const Value *v) {
    return v->valueKind() == Kind::BasicBlock;
  }

private:
  friend class Function;
  friend class Instruction;
  Function *parent_ = nullptr;
  InstList insts_;
};

} // namespace mha::lir
