// Function.h - functions, arguments and modules.
#pragma once

#include "lir/BasicBlock.h"

#include <list>
#include <memory>
#include <set>

namespace mha::lir {

class Function;
class Module;

/// A formal parameter. Carries per-argument attributes ("noalias", ...) and
/// metadata; the adaptor uses both when flattening memref descriptors and
/// when attaching xlx.array_partition directives.
class Argument : public Value {
public:
  Argument(Type *type, Function *parent, unsigned index)
      : Value(Kind::Argument, type), parent_(parent), index_(index) {}

  Function *parent() const { return parent_; }
  unsigned index() const { return index_; }
  void setIndex(unsigned index) { index_ = index; }

  std::set<std::string> &attrs() { return attrs_; }
  const std::set<std::string> &attrs() const { return attrs_; }
  bool hasAttr(const std::string &a) const { return attrs_.count(a) > 0; }

  MDMap &metadata() { return md_; }
  const MDMap &metadata() const { return md_; }
  const MDNode *getMetadata(const std::string &key) const {
    auto it = md_.find(key);
    return it == md_.end() ? nullptr : it->second.get();
  }

  static bool classof(const Value *v) {
    return v->valueKind() == Kind::Argument;
  }

private:
  Function *parent_;
  unsigned index_;
  std::set<std::string> attrs_;
  MDMap md_;
};

class Function : public Value {
public:
  using BlockList = std::list<std::unique_ptr<BasicBlock>>;
  using iterator = BlockList::iterator;

  Function(FunctionType *type, std::string name, Module *parent);
  ~Function() override;

  Module *parentModule() const { return parent_; }
  FunctionType *functionType() const { return cast<FunctionType>(type()); }
  Type *returnType() const { return functionType()->returnType(); }

  unsigned numArgs() const { return static_cast<unsigned>(args_.size()); }
  Argument *arg(unsigned i) const { return args_[i].get(); }
  const std::vector<std::unique_ptr<Argument>> &args() const { return args_; }

  /// Rebuilds the argument list for a new signature (used by the adaptor's
  /// descriptor-flattening pass). Existing Argument objects are destroyed;
  /// callers must have rewired all uses first. Returns the new arguments.
  std::vector<Argument *> resetSignature(FunctionType *newType);

  bool isDeclaration() const { return blocks_.empty(); }

  iterator begin() { return blocks_.begin(); }
  iterator end() { return blocks_.end(); }
  size_t numBlocks() const { return blocks_.size(); }
  BasicBlock *entry() { return blocks_.front().get(); }
  const BasicBlock *entry() const { return blocks_.front().get(); }

  /// Creates a block appended at the end.
  BasicBlock *createBlock(std::string name = "");
  /// Creates a block inserted before `before`.
  BasicBlock *createBlockBefore(BasicBlock *before, std::string name = "");
  /// Unlinks and destroys `block`; its instructions are dropped.
  void eraseBlock(BasicBlock *block);
  /// Moves `block` to immediately after `after` in the layout order.
  void moveBlockAfter(BasicBlock *block, BasicBlock *after);

  std::vector<BasicBlock *> blockPtrs() const;

  std::set<std::string> &attrs() { return attrs_; }
  const std::set<std::string> &attrs() const { return attrs_; }
  bool hasAttr(const std::string &a) const { return attrs_.count(a) > 0; }

  /// Assigns names/numbers to anonymous values for stable printing.
  void renumberValues();

  static bool classof(const Value *v) {
    return v->valueKind() == Kind::Function;
  }

private:
  Module *parent_;
  std::vector<std::unique_ptr<Argument>> args_;
  BlockList blocks_;
  std::set<std::string> attrs_;
};

/// A translation unit: functions plus module-level flags. The
/// "opaque-pointers" flag records which pointer regime the module is in;
/// the MLIR lowering sets it, the adaptor clears it, and the virtual HLS
/// frontend rejects modules where it is still set.
class Module {
public:
  explicit Module(LContext &ctx, std::string name = "module")
      : ctx_(ctx), name_(std::move(name)) {}
  ~Module();

  LContext &context() const { return ctx_; }
  const std::string &name() const { return name_; }

  /// Creates a function (definition or declaration) owned by the module.
  Function *createFunction(FunctionType *type, std::string name);
  Function *getFunction(const std::string &name) const;
  void eraseFunction(Function *fn);

  std::vector<Function *> functions() const;

  std::map<std::string, std::string> &flags() { return flags_; }
  const std::map<std::string, std::string> &flags() const { return flags_; }
  bool flagIs(const std::string &key, const std::string &value) const {
    auto it = flags_.find(key);
    return it != flags_.end() && it->second == value;
  }

private:
  LContext &ctx_;
  std::string name_;
  std::list<std::unique_ptr<Function>> fns_;
  std::map<std::string, std::string> flags_;
};

} // namespace mha::lir
