#include "lir/Utils.h"

#include "lir/IRBuilder.h"
#include "lir/LContext.h"

namespace mha::lir {

BasicBlock *splitBlockBefore(Instruction *inst, const std::string &name) {
  BasicBlock *oldBB = inst->parent();
  Function *fn = oldBB->parent();
  BasicBlock *newBB = fn->createBlock(name);
  fn->moveBlockAfter(newBB, oldBB);

  // Move [inst, end) into newBB.
  std::vector<Instruction *> toMove;
  bool found = false;
  for (auto &i : *oldBB) {
    if (i.get() == inst)
      found = true;
    if (found)
      toMove.push_back(i.get());
  }
  for (Instruction *i : toMove)
    newBB->append(i->removeFromParent());

  // Successor phis must now name newBB as the predecessor.
  if (Instruction *term = newBB->terminator())
    for (BasicBlock *succ : term->successors())
      for (Instruction *phi : succ->phis())
        for (unsigned i = 0; i < phi->numIncoming(); ++i)
          if (phi->incomingBlock(i) == oldBB)
            phi->setOperand(2 * i + 1, newBB);

  IRBuilder builder(fn->parentModule()->context());
  builder.setInsertPoint(oldBB);
  builder.createBr(newBB);
  return newBB;
}

} // namespace mha::lir
