#include "lir/Utils.h"

#include "lir/IRBuilder.h"
#include "lir/LContext.h"

namespace mha::lir {

BasicBlock *splitBlockBefore(Instruction *inst, const std::string &name) {
  BasicBlock *oldBB = inst->parent();
  Function *fn = oldBB->parent();
  BasicBlock *newBB = fn->createBlock(name);
  fn->moveBlockAfter(newBB, oldBB);

  // Move [inst, end) into newBB.
  std::vector<Instruction *> toMove;
  bool found = false;
  for (auto &i : *oldBB) {
    if (i.get() == inst)
      found = true;
    if (found)
      toMove.push_back(i.get());
  }
  for (Instruction *i : toMove)
    newBB->append(i->removeFromParent());

  // Successor phis must now name newBB as the predecessor.
  if (Instruction *term = newBB->terminator())
    for (BasicBlock *succ : term->successors())
      for (Instruction *phi : succ->phis())
        for (unsigned i = 0; i < phi->numIncoming(); ++i)
          if (phi->incomingBlock(i) == oldBB)
            phi->setOperand(2 * i + 1, newBB);

  IRBuilder builder(fn->parentModule()->context());
  builder.setInsertPoint(oldBB);
  builder.createBr(newBB);
  return newBB;
}

BasicBlock *cloneBlocksInto(Function *src, Function *dst,
                            std::map<Value *, Value *> &valueMap,
                            const std::string &nameSuffix) {
  BasicBlock *entryClone = nullptr;
  std::vector<Instruction *> clones;

  // First create every block and instruction so forward references (phis,
  // branches to later blocks) have a map entry before operands are rewired.
  for (BasicBlock *bb : src->blockPtrs()) {
    BasicBlock *bbClone = dst->createBlock(bb->name() + nameSuffix);
    valueMap[bb] = bbClone;
    if (!entryClone)
      entryClone = bbClone;
    for (auto &inst : *bb) {
      Instruction *instClone = bbClone->append(inst->clone());
      valueMap[inst.get()] = instClone;
      clones.push_back(instClone);
    }
  }

  for (Instruction *inst : clones) {
    for (unsigned i = 0; i < inst->numOperands(); ++i) {
      auto it = valueMap.find(inst->operand(i));
      if (it != valueMap.end())
        inst->setOperand(i, it->second);
    }
  }
  return entryClone;
}

Function *cloneFunction(Function *src, const std::string &newName) {
  Module *module = src->parentModule();
  Function *dst = module->createFunction(src->functionType(), newName);
  dst->attrs() = src->attrs();
  std::map<Value *, Value *> valueMap;
  for (unsigned i = 0; i < src->numArgs(); ++i) {
    Argument *from = src->arg(i);
    Argument *to = dst->arg(i);
    to->setName(from->name());
    to->attrs() = from->attrs();
    for (const auto &[key, node] : from->metadata())
      to->metadata()[key] = node->clone();
    valueMap[from] = to;
  }
  if (!src->isDeclaration())
    cloneBlocksInto(src, dst, valueMap, "");
  return dst;
}

} // namespace mha::lir
