// Vhls.h - the virtual HLS backend (the repo's stand-in for Vitis HLS).
//
// Pipeline: frontend acceptance check (lir::checkHlsCompatibility) ->
// directive-driven loop unrolling -> hierarchical scheduling (list
// scheduling with operator chaining and memory-port constraints for
// straight-line regions; modulo scheduling with RecMII/ResMII for
// pipelined innermost loops) -> binding/resource estimation -> report.
//
// The backend consumes only the xlx.* directive dialect; IR that fails the
// acceptance check is rejected exactly like a frontend version mismatch in
// the paper's setting.
#pragma once

#include "lir/Function.h"
#include "vhls/Report.h"

namespace mha::vhls {

struct SynthesisOptions {
  TargetSpec target;
  /// Top function name (empty: first definition in the module).
  std::string topFunction;
  /// Honour xlx.unroll directives with backend unrolling (mutates the IR,
  /// semantics-preserving).
  bool applyUnrollDirectives = true;
  /// Reject the module on acceptance *warnings* too (strict mode).
  bool strictAcceptance = false;
};

/// Synthesizes `module`. On acceptance failure the report has
/// accepted=false and no function reports. Unroll directives mutate the
/// module in place (semantics preserved).
SynthesisReport synthesize(lir::Module &module,
                           const SynthesisOptions &options,
                           DiagnosticEngine &diags);

} // namespace mha::vhls
