// Estimate.h - the latency / II / resource algebra of the virtual HLS
// backend, factored out of the scheduler.
//
// The scheduler computes *exact* schedules; the DSE QoR estimator predicts
// them analytically from loop structure alone. Both must agree on the
// underlying algebra — how a pipelined loop's total latency follows from
// its depth, trip count and II, how port pressure and allocation limits
// bound the II, how FU demand follows from op counts, and what the control
// FSM and partitioned memories cost. Keeping the formulas here (and
// calling them from Scheduler.cpp) makes "derived from the same
// constraints the scheduler enforces" a structural property instead of a
// copy that can drift.
#pragma once

#include "vhls/TechLibrary.h"

namespace mha::vhls {

/// ceil(a / b) for non-negative a and positive b.
inline int64_t ceilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Total cycles of a pipelined loop: fill the depth once, then one
/// initiation per remaining iteration, plus pipeline entry/exit control.
inline int64_t pipelinedLoopLatency(int64_t iterationLatency,
                                    int64_t tripCount, int64_t ii) {
  return iterationLatency + (tripCount - 1) * ii + 2;
}

/// Total cycles of a sequential loop: every iteration pays the full
/// iteration latency, plus the final exit test.
inline int64_t sequentialLoopLatency(int64_t tripCount,
                                     int64_t iterationLatency) {
  return tripCount * iterationLatency + 1;
}

/// Minimum II imposed by one memory bank class: `accesses` contending
/// requests per iteration through `portsPerBank` ports.
inline int64_t portLimitedMII(int64_t accesses, int portsPerBank) {
  return ceilDiv(accesses, portsPerBank);
}

/// Minimum II imposed by a functional-unit allocation limit.
inline int64_t allocationLimitedMII(int64_t ops, int limit) {
  return ceilDiv(ops, limit);
}

/// Minimum II imposed by one loop-carried dependence cycle of
/// `cycleLength` cycles spanning `distance` iterations.
inline int64_t recurrenceMII(int64_t cycleLength, int64_t distance) {
  return ceilDiv(cycleLength, distance);
}

/// Functional units a pipelined body needs to issue `ops` same-class
/// operations every `ii` cycles.
inline int64_t pipelinedFuDemand(int64_t ops, int64_t ii) {
  return ceilDiv(ops, ii);
}

/// Control overhead of the scheduler's one-hot FSM.
inline ResourceUsage fsmOverhead(int64_t fsmStates, const TargetSpec &target) {
  ResourceUsage usage;
  usage.lut = fsmStates * target.lutPerState;
  usage.ff = fsmStates * target.ffPerState;
  return usage;
}

/// BRAM blocks of an array split into `banks` equal banks (each bank is a
/// physically separate memory and rounds up on its own).
inline int64_t partitionedBramBlocks(int64_t bytes, int64_t banks) {
  return banks * bramBlocksFor(bytes / banks);
}

} // namespace mha::vhls
