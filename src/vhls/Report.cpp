#include "vhls/Report.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <sstream>

namespace mha::vhls {

std::string SynthesisReport::str() const {
  std::ostringstream os;
  os << "== Virtual HLS synthesis report ==\n";
  os << "frontend: " << (accepted ? "ACCEPTED" : "REJECTED")
     << strfmt(" (%lld errors, %lld warnings)\n",
               static_cast<long long>(compat.errors),
               static_cast<long long>(compat.warnings));
  if (!compat.violations.empty()) {
    os << "violations:\n";
    for (const auto &[category, count] : compat.violations)
      os << strfmt("  %-20s %lld\n", category.c_str(),
                   static_cast<long long>(count));
  }
  for (const FunctionReport &fn : functions) {
    os << strfmt("\nfunction @%s%s\n", fn.name.c_str(),
                 fn.name == topName ? "  [top]" : "");
    os << strfmt("  latency        %lld cycles%s\n",
                 static_cast<long long>(fn.latencyCycles),
                 fn.dataflow ? "  (dataflow: tasks overlapped)" : "");
    os << strfmt("  est. period    %.2f ns\n", fn.achievedPeriodNs);
    os << strfmt("  fsm states     %lld\n",
                 static_cast<long long>(fn.fsmStates));
    os << strfmt("  resources      DSP=%lld BRAM=%lld LUT=%lld FF=%lld\n",
                 static_cast<long long>(fn.resources.dsp),
                 static_cast<long long>(fn.resources.bram),
                 static_cast<long long>(fn.resources.lut),
                 static_cast<long long>(fn.resources.ff));
    if (!fn.loops.empty()) {
      os << "  loops:\n";
      for (const LoopReport &loop : fn.loops) {
        os << strfmt("    %-14s trip=%-6lld %s", loop.name.c_str(),
                     static_cast<long long>(loop.tripCount),
                     loop.pipelined ? "pipelined" : "sequential");
        if (loop.pipelined)
          os << strfmt(" II=%lld (target %lld, RecMII=%lld, ResMII=%lld) "
                       "depth=%lld",
                       static_cast<long long>(loop.achievedII),
                       static_cast<long long>(loop.targetII),
                       static_cast<long long>(loop.recMII),
                       static_cast<long long>(loop.resMII),
                       static_cast<long long>(loop.iterationLatency));
        os << strfmt(" latency=%lld",
                     static_cast<long long>(loop.totalLatency));
        if (!loop.note.empty())
          os << "  (" << loop.note << ")";
        os << "\n";
      }
    }
    if (!fn.arrays.empty()) {
      os << "  arrays:\n";
      for (const ArrayReport &array : fn.arrays)
        os << strfmt("    %-10s %6lld B  banks=%-3lld %-24s BRAM=%lld %s\n",
                     array.name.c_str(),
                     static_cast<long long>(array.bytes),
                     static_cast<long long>(array.banks),
                     array.partition.c_str(),
                     static_cast<long long>(array.bramBlocks),
                     array.onChip ? "(on-chip)" : "(interface)");
    }
  }
  return os.str();
}

std::string SynthesisReport::json() const {
  std::ostringstream os;
  os << "{\n  \"accepted\": " << (accepted ? "true" : "false") << ",\n";
  os << strfmt("  \"errors\": %lld,\n  \"warnings\": %lld,\n",
               static_cast<long long>(compat.errors),
               static_cast<long long>(compat.warnings));
  os << "  \"violations\": {";
  bool first = true;
  for (const auto &[category, count] : compat.violations) {
    if (!first)
      os << ", ";
    first = false;
    os << "\"" << json::escape(category) << "\": " << count;
  }
  os << "},\n";
  os << "  \"top\": \"" << json::escape(topName) << "\",\n";
  os << "  \"functions\": [\n";
  for (size_t f = 0; f < functions.size(); ++f) {
    const FunctionReport &fn = functions[f];
    os << "    {\n      \"name\": \"" << json::escape(fn.name) << "\",\n";
    os << strfmt("      \"latency_cycles\": %lld,\n",
                 static_cast<long long>(fn.latencyCycles));
    os << "      \"dataflow\": " << (fn.dataflow ? "true" : "false")
       << ",\n";
    os << strfmt("      \"fsm_states\": %lld,\n",
                 static_cast<long long>(fn.fsmStates));
    os << "      \"estimated_period_ns\": "
       << json::number(fn.achievedPeriodNs) << ",\n";
    os << strfmt("      \"resources\": {\"dsp\": %lld, \"bram\": %lld, "
                 "\"lut\": %lld, \"ff\": %lld},\n",
                 static_cast<long long>(fn.resources.dsp),
                 static_cast<long long>(fn.resources.bram),
                 static_cast<long long>(fn.resources.lut),
                 static_cast<long long>(fn.resources.ff));
    os << "      \"loops\": [";
    for (size_t l = 0; l < fn.loops.size(); ++l) {
      const LoopReport &loop = fn.loops[l];
      if (l)
        os << ", ";
      os << strfmt("{\"name\": \"%s\", \"trip\": %lld, \"pipelined\": %s, "
                   "\"ii\": %lld, \"rec_mii\": %lld, \"res_mii\": %lld, "
                   "\"depth\": %lld, \"latency\": %lld}",
                   json::escape(loop.name).c_str(),
                   static_cast<long long>(loop.tripCount),
                   loop.pipelined ? "true" : "false",
                   static_cast<long long>(loop.achievedII),
                   static_cast<long long>(loop.recMII),
                   static_cast<long long>(loop.resMII),
                   static_cast<long long>(loop.iterationLatency),
                   static_cast<long long>(loop.totalLatency));
    }
    os << "],\n      \"arrays\": [";
    for (size_t a = 0; a < fn.arrays.size(); ++a) {
      const ArrayReport &array = fn.arrays[a];
      if (a)
        os << ", ";
      os << strfmt("{\"name\": \"%s\", \"bytes\": %lld, \"banks\": %lld, "
                   "\"partition\": \"%s\", \"bram\": %lld, "
                   "\"on_chip\": %s}",
                   json::escape(array.name).c_str(),
                   static_cast<long long>(array.bytes),
                   static_cast<long long>(array.banks),
                   json::escape(array.partition).c_str(),
                   static_cast<long long>(array.bramBlocks),
                   array.onChip ? "true" : "false");
    }
    os << "]\n    }" << (f + 1 < functions.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

} // namespace mha::vhls
