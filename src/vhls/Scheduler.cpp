#include "vhls/Vhls.h"

#include "vhls/Estimate.h"

#include "lir/LContext.h"
#include "lir/analysis/Dependence.h"
#include "lir/analysis/Dominators.h"
#include "lir/analysis/LoopInfo.h"
#include "lir/transforms/LoopUnroll.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace mha::vhls {

namespace {

using lir::BasicBlock;
using lir::Function;
using lir::Instruction;
using lir::Opcode;

/// Identifies which physical memory bank an access can touch.
struct BankClass {
  const lir::Value *base = nullptr;
  bool known = false;   // residue analysis succeeded
  int64_t residue = 0;  // subscript offset mod factor (cyclic)
  int64_t ivCoef = 0;

  bool conflictsWith(const BankClass &other) const {
    if (base != other.base)
      return false;
    if (!known || !other.known)
      return true; // unknown bank may hit anything
    return residue == other.residue && ivCoef == other.ivCoef;
  }
};

/// Array partition directive (cyclic/block on one dimension).
struct PartitionInfo {
  unsigned dim = 0;
  int64_t factor = 1;
  bool cyclic = true;
};

/// Per-pointer-base memory geometry.
struct ArrayInfo {
  const lir::Value *base = nullptr;
  std::string name;
  int64_t bytes = 0;
  PartitionInfo partition;
  bool onChip = false; // alloca (vs. interface argument)
  unsigned partitionedRank = 0;
  std::vector<int64_t> dims;
  size_t order = 0; // discovery order — reports must not depend on the
                    // pointer-keyed map's (allocation-dependent) order
};

const lir::Value *pointerRootOf(const lir::Value *ptr) {
  while (const auto *inst = dyn_cast<Instruction>(ptr)) {
    if (inst->opcode() == Opcode::GEP || inst->opcode() == Opcode::Bitcast)
      ptr = inst->operand(0);
    else
      break;
  }
  return ptr;
}

/// Extracts array dims from a pointer-to-array / array type.
std::vector<int64_t> arrayDims(const lir::Type *type) {
  std::vector<int64_t> dims;
  if (const auto *pt = dyn_cast<lir::PointerType>(type))
    type = pt->isOpaque() ? nullptr : pt->pointee();
  while (type && type->isArray()) {
    const auto *at = cast<lir::ArrayType>(type);
    dims.push_back(static_cast<int64_t>(at->numElements()));
    type = at->element();
  }
  return dims;
}

class FunctionScheduler {
public:
  FunctionScheduler(Function &fn, const TargetSpec &target,
                    const std::map<std::string, FunctionReport> &callees,
                    DiagnosticEngine &diags)
      : fn_(fn), target_(target), callees_(callees), diags_(diags) {}

  FunctionReport run() {
    report_.name = fn_.name();
    collectArrays();

    lir::DominatorTree domTree(fn_);
    lir::LoopInfo loopInfo(fn_, domTree);

    // Innermost-first loop processing.
    std::vector<lir::Loop *> loops;
    for (const auto &loop : loopInfo.loops())
      loops.push_back(loop.get());
    // Stable sort keeps LoopInfo's deterministic (RPO-header) order among
    // loops of equal depth, so report rows come out the same every run.
    std::stable_sort(loops.begin(), loops.end(),
                     [](lir::Loop *a, lir::Loop *b) {
                       return a->depth() > b->depth();
                     });

    // Schedule every block once (list scheduling).
    for (BasicBlock *bb : domTree.rpo())
      scheduleBlock(bb);

    for (lir::Loop *loop : loops)
      processLoop(loop, loopInfo);

    // Function latency: blocks directly at function level + top loops.
    // With the dataflow directive the top-level loop nests run as
    // overlapped tasks: the slowest task dominates instead of the sum
    // (optimistic FIFO model, like Vitis dataflow at II=1 task rate).
    bool dataflow = fn_.hasAttr("xlx.dataflow");
    report_.dataflow = dataflow;
    int64_t latency = 0;
    for (BasicBlock *bb : domTree.rpo())
      if (!loopInfo.loopFor(bb))
        latency += blockLatency_[bb];
    int64_t loopSum = 0, loopMax = 0, taskCount = 0;
    for (lir::Loop *loop : loopInfo.topLevelLoops()) {
      loopSum += loopTotal_[loop];
      loopMax = std::max(loopMax, loopTotal_[loop]);
      ++taskCount;
    }
    latency += dataflow && taskCount > 1 ? loopMax + taskCount : loopSum;
    report_.latencyCycles = latency;
    report_.fsmStates = fsmStates_;
    report_.achievedPeriodNs = achievedPeriod_;
    bindResources(loopInfo);
    return report_;
  }

private:
  // ====================== arrays & banks ======================

  void collectArrays() {
    auto addArray = [&](const lir::Value *base, const std::string &name,
                        const std::vector<int64_t> &dims,
                        lir::Type *elemTy, bool onChip,
                        const lir::MDNode *partitionMD) {
      if (dims.empty())
        return;
      ArrayInfo info;
      info.base = base;
      info.name = name;
      info.dims = dims;
      int64_t elems = 1;
      for (int64_t d : dims)
        elems *= d;
      info.bytes = elems * static_cast<int64_t>(elemTy->sizeInBytes());
      info.onChip = onChip;
      if (partitionMD && partitionMD->size() > 0) {
        // First triple wins (one partition directive per array here).
        const lir::MDNode *triple = partitionMD->getNode(0);
        if (triple && triple->size() >= 3) {
          info.partition.dim = static_cast<unsigned>(triple->getInt(0));
          info.partition.factor = triple->getInt(1);
          info.partition.cyclic = triple->getString(2) != "block";
        }
      }
      info.order = arrays_.size();
      arrays_[base] = info;
    };

    for (const auto &arg : fn_.args()) {
      std::vector<int64_t> dims = arrayDims(arg->type());
      if (dims.empty())
        continue;
      lir::Type *elem = arg->type();
      while (const auto *pt = dyn_cast<lir::PointerType>(elem))
        elem = pt->pointee();
      while (const auto *at = dyn_cast<lir::ArrayType>(elem))
        elem = at->element();
      addArray(arg.get(), arg->name(), dims, elem, /*onChip=*/false,
               arg->getMetadata("xlx.array_partition"));
    }
    for (BasicBlock *bb : fn_.blockPtrs()) {
      for (auto &inst : *bb) {
        if (inst->opcode() != Opcode::Alloca)
          continue;
        std::vector<int64_t> dims;
        lir::Type *elem = inst->allocatedType();
        while (const auto *at = dyn_cast<lir::ArrayType>(elem)) {
          dims.push_back(static_cast<int64_t>(at->numElements()));
          elem = at->element();
        }
        addArray(inst.get(), inst->hasName() ? inst->name() : "buf", dims,
                 elem, /*onChip=*/true,
                 inst->getMetadata("xlx.array_partition"));
      }
    }
  }

  /// Bank classification of a memory access, relative to `iv` (may be
  /// null for straight-line code).
  BankClass classify(const Instruction *memop, const lir::Value *iv) {
    BankClass out;
    const lir::Value *ptr =
        memop->operand(memop->opcode() == Opcode::Store ? 1 : 0);
    out.base = pointerRootOf(ptr);
    auto arrayIt = arrays_.find(out.base);
    if (arrayIt == arrays_.end() || arrayIt->second.partition.factor <= 1) {
      // Unpartitioned: single bank; everyone conflicts -> model as known
      // residue 0.
      out.known = true;
      return out;
    }
    const ArrayInfo &info = arrayIt->second;
    const auto *gep = dyn_cast<Instruction>(ptr);
    if (!gep || gep->opcode() != Opcode::GEP || gep->numOperands() < 3) {
      out.known = false; // flat gep on a partitioned array
      return out;
    }
    unsigned dim = info.partition.dim;
    unsigned opIdx = 2 + dim; // after base and leading zero
    if (opIdx >= gep->numOperands()) {
      out.known = false;
      return out;
    }
    lir::LinearSubscript sub =
        lir::linearizeInIV(gep->operand(opIdx), iv ? iv : gep->operand(opIdx));
    if (!sub.valid || !sub.symbols.empty()) {
      out.known = false;
      return out;
    }
    int64_t f = info.partition.factor;
    if (info.partition.cyclic) {
      out.known = true;
      out.residue = ((sub.constant % f) + f) % f;
      out.ivCoef = sub.ivCoef % f;
    } else {
      // Block partitioning: bank = idx / (extent/factor); the residue is
      // only static for constant subscripts.
      if (sub.ivCoef == 0) {
        int64_t extent = info.dims[dim];
        out.known = true;
        out.residue = sub.constant / std::max<int64_t>(1, extent / f);
      } else {
        out.known = false;
      }
    }
    return out;
  }

  int64_t banksOf(const lir::Value *base) {
    auto it = arrays_.find(base);
    return it == arrays_.end() ? 1 : std::max<int64_t>(1, it->second.partition.factor);
  }

  // ====================== straight-line scheduling ======================

  struct SchedSlot {
    int64_t start = 0;
    double pathDelay = 0;
  };

  /// List scheduling with operator chaining and per-bank port limits.
  void scheduleBlock(BasicBlock *bb) {
    std::map<const Instruction *, SchedSlot> slots;
    // (base, residue-key) -> cycle -> used ports
    std::map<std::pair<const lir::Value *, int64_t>,
             std::map<int64_t, int>>
        ports;
    std::map<std::string, std::map<int64_t, int>> fuUsage;
    int64_t blockLat = 0;
    // Calls are control barriers: they start after everything before them
    // and everything after waits for them (no dataflow overlap).
    int64_t barrierFloor = 0;
    int64_t maxEndSoFar = 0;

    for (auto &instPtr : *bb) {
      Instruction *inst = instPtr.get();
      OpInfo info = characterize(*inst);
      int64_t latency = callAwareLatency(inst, info);
      SchedSlot slot;
      slot.pathDelay = info.delayNs;
      slot.start = barrierFloor;
      bool isUserCall = inst->opcode() == Opcode::Call &&
                        inst->calledFunction() &&
                        !inst->calledFunction()->isDeclaration();
      if (isUserCall)
        slot.start = std::max(slot.start, maxEndSoFar);

      for (unsigned i = 0; i < inst->numOperands(); ++i) {
        const auto *def = dyn_cast<Instruction>(inst->operand(i));
        if (!def || def->parent() != bb || def->opcode() == Opcode::Phi)
          continue;
        auto it = slots.find(def);
        if (it == slots.end())
          continue;
        OpInfo defInfo = characterize(*def);
        int64_t defLat = callAwareLatency(def, defInfo);
        if (defLat == 0) {
          // Chaining candidate: same cycle if combinational budget holds.
          if (it->second.start > slot.start) {
            slot.start = it->second.start;
            slot.pathDelay = it->second.pathDelay + info.delayNs;
          } else if (it->second.start == slot.start) {
            slot.pathDelay = std::max(slot.pathDelay,
                                      it->second.pathDelay + info.delayNs);
          }
          if (slot.pathDelay > target_.clockPeriodNs) {
            slot.start += 1;
            slot.pathDelay = info.delayNs;
          }
        } else {
          int64_t ready = it->second.start + defLat;
          if (ready > slot.start) {
            slot.start = ready;
            slot.pathDelay = info.delayNs;
          }
        }
      }

      // Memory port constraint.
      if (inst->opcode() == Opcode::Load || inst->opcode() == Opcode::Store) {
        BankClass bank = classify(inst, nullptr);
        auto key = std::make_pair(bank.base,
                                  bank.known ? bank.residue : int64_t(-1));
        auto &usage = ports[key];
        int capacity = target_.memPortsPerBank;
        while (usage[slot.start] >= capacity)
          ++slot.start;
        usage[slot.start]++;
        if (!bank.known) {
          // Unknown bank blocks a port on every residue class too.
          for (auto &[otherKey, otherUsage] : ports)
            if (otherKey.first == bank.base && otherKey != key)
              otherUsage[slot.start]++;
        }
      }
      // Functional-unit allocation limit (Vitis `allocation` directive).
      if (int limit = target_.fuLimitFor(info.fuClass); limit > 0) {
        auto &usage = fuUsage[info.fuClass];
        while (usage[slot.start] >= limit)
          ++slot.start;
        usage[slot.start]++;
      }

      slots[inst] = slot;
      achievedPeriod_ = std::max(achievedPeriod_, slot.pathDelay);
      blockLat = std::max(blockLat, slot.start + latency);
      maxEndSoFar = std::max(maxEndSoFar, slot.start + latency);
      if (isUserCall)
        barrierFloor = slot.start + latency;
      opStart_[inst] = slot.start;
    }
    // Every block costs at least one FSM state.
    blockLatency_[bb] = std::max<int64_t>(1, blockLat);
    fsmStates_ += blockLatency_[bb];
  }

  int64_t callAwareLatency(const Instruction *inst, const OpInfo &info) {
    if (inst->opcode() == Opcode::Call) {
      const Function *callee = inst->calledFunction();
      if (callee && !callee->isDeclaration()) {
        auto it = callees_.find(callee->name());
        if (it != callees_.end())
          return std::max<int64_t>(1, it->second.latencyCycles);
      }
    }
    return info.latency;
  }

  // ====================== loops ======================

  void processLoop(lir::Loop *loop, lir::LoopInfo &loopInfo) {
    LoopReport lr;
    lr.name = loop->header()->name();
    lr.depth = loop->depth();

    auto canonical = lir::matchCanonicalLoop(loop);
    if (canonical && canonical->tripCount)
      lr.tripCount = *canonical->tripCount;

    Instruction *latchTerm =
        loop->latch() ? loop->latch()->terminator() : nullptr;
    const lir::MDNode *pipelineMD =
        latchTerm ? latchTerm->getMetadata("xlx.pipeline") : nullptr;
    if (lr.tripCount < 0 && latchTerm) {
      if (const lir::MDNode *tripMD = latchTerm->getMetadata("xlx.tripcount"))
        if (tripMD->isInt(0))
          lr.tripCount = tripMD->getInt(0);
    }
    int64_t targetII = 0;
    if (pipelineMD && pipelineMD->isInt(0))
      targetII = std::max<int64_t>(1, pipelineMD->getInt(0));
    lr.targetII = targetII;
    lr.pipelined = targetII > 0;

    int64_t trip = lr.tripCount >= 0 ? lr.tripCount : 1;

    bool canPipeline = lr.pipelined && loop->isInnermost() && canonical &&
                       loop->blocks().size() == 2;
    if (lr.pipelined && !canPipeline) {
      lr.note = loop->isInnermost() ? "not pipelined: irregular loop shape"
                                    : "not pipelined: contains subloop";
      lr.pipelined = false;
    }

    if (lr.pipelined) {
      moduloSchedule(*canonical, targetII, lr);
      lr.totalLatency =
          pipelinedLoopLatency(lr.iterationLatency, trip, lr.achievedII);
    } else if (tryFlatten(loop, loopInfo, trip, lr)) {
      // Perfect nest over a pipelined inner loop: flatten (Vitis default)
      // so the pipeline fill/flush is paid once, not per outer iteration.
    } else {
      // Sequential: per-iteration latency is the header test plus the
      // directly-contained blocks plus nested loop totals.
      int64_t iter = 0;
      for (BasicBlock *bb : loop->blocks())
        if (loopInfo.loopFor(bb) == loop)
          iter += blockLatency_[bb];
      for (lir::Loop *sub : loop->subLoops())
        iter += loopTotal_[sub];
      lr.iterationLatency = iter;
      lr.totalLatency = sequentialLoopLatency(trip, iter);
    }
    loopTotal_[loop] = lr.totalLatency;
    loopReports_[loop] = lr;
    report_.loops.push_back(lr);
  }

  /// Flattens a perfectly-nested sequential loop over one pipelined (or
  /// itself flattened) subloop: the nest runs as a single pipeline of
  /// outerTrip * innerIterations at the inner II. Requires the blocks the
  /// outer loop contributes directly to be pure control (no datapath).
  bool tryFlatten(lir::Loop *loop, lir::LoopInfo &loopInfo, int64_t trip,
                  LoopReport &lr) {
    if (loop->subLoops().size() != 1 || trip <= 0)
      return false;
    auto subIt = loopReports_.find(loop->subLoops()[0]);
    if (subIt == loopReports_.end())
      return false;
    const LoopReport &sub = subIt->second;
    if (!sub.pipelined || sub.achievedII <= 0 || sub.tripCount <= 0)
      return false;
    // Directly-contained blocks must be control-only.
    for (BasicBlock *bb : loop->blocks()) {
      if (loopInfo.loopFor(bb) != loop)
        continue;
      for (auto &inst : *bb) {
        switch (inst->opcode()) {
        case Opcode::Phi:
        case Opcode::ICmp:
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::Br:
        case Opcode::CondBr:
          continue;
        default:
          return false;
        }
      }
    }
    // Total iterations of the flattened pipeline.
    int64_t innerIters = sub.tripCount;
    lr.achievedII = sub.achievedII;
    lr.recMII = sub.recMII;
    lr.resMII = sub.resMII;
    lr.iterationLatency = sub.iterationLatency;
    lr.tripCount = trip * innerIters; // flattened trip
    lr.pipelined = true;
    lr.note = "flattened";
    lr.totalLatency = pipelinedLoopLatency(sub.iterationLatency, lr.tripCount,
                                           sub.achievedII);
    return true;
  }

  /// Modulo scheduling of a canonical innermost loop body (the latch
  /// block). Computes RecMII from loop-carried dependences, ResMII from
  /// memory-port pressure, then finds the smallest feasible II.
  void moduloSchedule(lir::CanonicalLoop &loop, int64_t targetII,
                      LoopReport &lr) {
    BasicBlock *body = loop.loop->latch();
    std::vector<Instruction *> ops;
    for (auto &inst : *body)
      ops.push_back(inst.get());

    // --- dependences ---
    std::vector<lir::MemAccess> accesses = lir::collectLoopAccesses(loop);
    std::vector<lir::LoopDependence> deps =
        lir::analyzeLoopDependences(accesses);

    // --- ResMII ---
    // Pointer-keyed, so iteration order varies run to run; that is safe
    // here because both loops below only max-reduce into resMII. Don't
    // let these maps leak into report ordering (arrays_ has an explicit
    // `order` field for that reason).
    std::map<std::pair<const lir::Value *, int64_t>, int64_t> classCount;
    std::map<const lir::Value *, int64_t> unknownCount;
    for (const lir::MemAccess &access : accesses) {
      if (access.inst->parent() != body)
        continue;
      BankClass bank = classify(access.inst, loop.indVar);
      if (bank.known)
        classCount[{bank.base, bank.residue * 1000 + bank.ivCoef}]++;
      else
        unknownCount[bank.base]++;
    }
    int64_t resMII = 1;
    for (auto &[key, count] : classCount) {
      int64_t total = count + unknownCount[key.first];
      resMII = std::max(resMII,
                        portLimitedMII(total, target_.memPortsPerBank));
    }
    for (auto &[base, count] : unknownCount) {
      int64_t banks = banksOf(base);
      (void)banks;
      resMII = std::max(resMII,
                        portLimitedMII(count, target_.memPortsPerBank));
    }
    // Functional-unit allocation limits contribute too.
    if (!target_.fuLimits.empty()) {
      std::map<std::string, int64_t> classOps;
      for (Instruction *inst : ops) {
        OpInfo info = characterize(*inst);
        if (target_.fuLimitFor(info.fuClass) > 0)
          classOps[info.fuClass]++;
      }
      for (auto &[cls, count] : classOps) {
        int64_t limit = target_.fuLimitFor(cls);
        resMII = std::max(resMII, allocationLimitedMII(count, limit));
      }
    }
    lr.resMII = resMII;

    // --- RecMII ---
    // Longest intra-iteration path between ops (SSA + ordering edges),
    // then for each carried edge s->t (distance d):
    //   II*d >= lat(s) + longestPath(t -> s).
    std::map<const Instruction *, size_t> index;
    for (size_t i = 0; i < ops.size(); ++i)
      index[ops[i]] = i;
    size_t n = ops.size();
    const int64_t kNegInf = INT64_MIN / 4;
    std::vector<std::vector<int64_t>> longest(
        n, std::vector<int64_t>(n, kNegInf));
    auto latOf = [&](const Instruction *inst) {
      OpInfo info = characterize(*inst);
      return callAwareLatency(inst, info);
    };
    // Direct edges.
    for (size_t i = 0; i < n; ++i) {
      longest[i][i] = 0;
      for (const lir::Use *use : ops[i]->uses()) {
        const auto *user = dyn_cast<Instruction>(use->user());
        if (!user || user->parent() != body)
          continue;
        auto it = index.find(user);
        if (it != index.end() && it->second != i)
          longest[i][it->second] =
              std::max(longest[i][it->second], latOf(ops[i]));
      }
    }
    for (const lir::LoopDependence &dep : deps) {
      if (dep.distance != 0)
        continue;
      auto si = index.find(cast<Instruction>(dep.src));
      auto ti = index.find(cast<Instruction>(dep.dst));
      if (si != index.end() && ti != index.end() && si->second != ti->second)
        longest[si->second][ti->second] = std::max(
            longest[si->second][ti->second], latOf(ops[si->second]));
    }
    // Floyd-Warshall longest path (body blocks are small).
    for (size_t k = 0; k < n; ++k)
      for (size_t i = 0; i < n; ++i) {
        if (longest[i][k] == kNegInf)
          continue;
        for (size_t j = 0; j < n; ++j)
          if (longest[k][j] != kNegInf)
            longest[i][j] =
                std::max(longest[i][j], longest[i][k] + longest[k][j]);
      }
    int64_t recMII = 1;
    for (const lir::LoopDependence &dep : deps) {
      if (dep.distance <= 0)
        continue;
      auto si = index.find(cast<Instruction>(dep.src));
      auto ti = index.find(cast<Instruction>(dep.dst));
      if (si == index.end() || ti == index.end())
        continue;
      int64_t path = longest[ti->second][si->second];
      if (path == kNegInf)
        path = 0;
      int64_t cycleLen = latOf(ops[si->second]) + path;
      recMII = std::max(recMII, recurrenceMII(cycleLen, dep.distance));
    }
    lr.recMII = recMII;

    // --- iterative modulo scheduling ---
    int64_t mii = std::max({resMII, recMII, targetII});
    for (int64_t ii = mii; ii <= mii + 128; ++ii) {
      int64_t depth = 0;
      if (tryModuloSchedule(ops, deps, loop, ii, depth)) {
        lr.achievedII = ii;
        lr.iterationLatency = depth;
        return;
      }
    }
    // Should not happen; fall back to sequential.
    lr.achievedII = blockLatency_[body];
    lr.iterationLatency = blockLatency_[body];
    lr.note = "modulo scheduling failed; serialized";
  }

  bool tryModuloSchedule(const std::vector<Instruction *> &ops,
                         const std::vector<lir::LoopDependence> &deps,
                         lir::CanonicalLoop &loop, int64_t ii,
                         int64_t &depthOut) {
    std::map<const Instruction *, int64_t> start;
    auto latOf = [&](const Instruction *inst) {
      OpInfo info = characterize(*inst);
      return callAwareLatency(inst, info);
    };

    bool changed = true;
    int sweeps = 0;
    while (changed) {
      if (++sweeps > 64)
        return false;
      changed = false;
      // Reservation tables rebuilt per sweep.
      std::map<std::pair<const lir::Value *, int64_t>,
               std::map<int64_t, int>>
          ports;
      std::map<std::string, std::map<int64_t, int>> fuUsage;
      auto reserveFU = [&](const std::string &fuClass, int64_t &cycle) {
        int limit = target_.fuLimitFor(fuClass);
        if (limit <= 0)
          return true;
        auto &usage = fuUsage[fuClass];
        int64_t tries = 0;
        while (usage[cycle % ii] >= limit) {
          ++cycle;
          if (++tries > ii)
            return false;
        }
        usage[cycle % ii]++;
        return true;
      };
      auto reserve = [&](Instruction *inst, int64_t &cycle) {
        BankClass bank = classify(inst, loop.indVar);
        auto key = std::make_pair(bank.base,
                                  bank.known ? bank.residue * 1000 + bank.ivCoef
                                             : int64_t(-1));
        auto &usage = ports[key];
        int64_t tries = 0;
        while (usage[cycle % ii] >= target_.memPortsPerBank) {
          ++cycle;
          if (++tries > ii)
            return false;
        }
        usage[cycle % ii]++;
        if (!bank.known)
          for (auto &[otherKey, otherUsage] : ports)
            if (otherKey.first == bank.base && otherKey != key)
              otherUsage[cycle % ii]++;
        return true;
      };

      for (Instruction *inst : ops) {
        int64_t lb = 0;
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
          const auto *def = dyn_cast<Instruction>(inst->operand(i));
          if (!def || def->parent() != inst->parent() ||
              def->opcode() == Opcode::Phi)
            continue;
          auto it = start.find(def);
          if (it != start.end())
            lb = std::max(lb, it->second + std::max<int64_t>(latOf(def), 0));
        }
        for (const lir::LoopDependence &dep : deps) {
          if (dep.dst != inst)
            continue;
          auto it = start.find(cast<Instruction>(dep.src));
          if (it == start.end())
            continue;
          lb = std::max(lb, it->second + latOf(cast<Instruction>(dep.src)) -
                                ii * dep.distance);
        }
        int64_t cycle = std::max(lb, int64_t(0));
        if (inst->opcode() == Opcode::Load ||
            inst->opcode() == Opcode::Store) {
          if (!reserve(inst, cycle))
            return false;
        }
        if (!reserveFU(characterize(*inst).fuClass, cycle))
          return false;
        auto it = start.find(inst);
        if (it == start.end() || it->second != cycle) {
          start[inst] = cycle;
          changed = true;
        }
      }
    }
    int64_t depth = 1;
    for (Instruction *inst : ops)
      depth = std::max(depth, start[inst] + std::max<int64_t>(latOf(inst), 1));
    depthOut = depth;
    // Record starts for FU counting.
    for (Instruction *inst : ops)
      opStart_[inst] = start[inst];
    pipelinedII_[inst2loopBody(ops)] = ii;
    return true;
  }

  const BasicBlock *inst2loopBody(const std::vector<Instruction *> &ops) {
    return ops.empty() ? nullptr : ops.front()->parent();
  }

  // ====================== binding ======================

  void bindResources(lir::LoopInfo &loopInfo) {
    // FU demand per class: for pipelined bodies ceil(ops/II); for
    // straight-line code the max number of same-class ops issued in one
    // cycle. FUs are reused across regions (max, not sum).
    std::map<std::string, int64_t> fuCount;
    std::map<std::string, ResourceUsage> fuCost;

    for (BasicBlock *bb : fn_.blockPtrs()) {
      auto pipeIt = pipelinedII_.find(bb);
      std::map<std::string, std::map<int64_t, int64_t>> perCycle;
      std::map<std::string, int64_t> perBody;
      for (auto &inst : *bb) {
        OpInfo info = characterize(*inst);
        if (info.perUnit.dsp == 0 && info.perUnit.lut == 0)
          continue;
        fuCost[info.fuClass] = info.perUnit;
        if (pipeIt != pipelinedII_.end())
          perBody[info.fuClass]++;
        else
          perCycle[info.fuClass][opStart_[inst.get()]]++;
      }
      for (auto &[cls, count] : perBody) {
        int64_t ii = pipeIt->second;
        fuCount[cls] = std::max(fuCount[cls], pipelinedFuDemand(count, ii));
      }
      for (auto &[cls, cycles] : perCycle)
        for (auto &[cycle, count] : cycles)
          fuCount[cls] = std::max(fuCount[cls], count);
    }

    ResourceUsage total;
    for (auto &[cls, count] : fuCount) {
      // The allocation limit caps how many units ever get instantiated.
      if (int limit = target_.fuLimitFor(cls); limit > 0)
        count = std::min<int64_t>(count, limit);
      ResourceUsage cost = fuCost[cls];
      total.dsp += cost.dsp * count;
      total.lut += cost.lut * count;
      total.ff += cost.ff * count;
    }
    // Control FSM overhead.
    total += fsmOverhead(report_.fsmStates, target_);

    // Memories, in deterministic discovery order (arguments first, then
    // allocas as encountered) rather than pointer order.
    std::vector<const ArrayInfo *> ordered;
    ordered.reserve(arrays_.size());
    for (auto &[base, arrayInfo] : arrays_)
      ordered.push_back(&arrayInfo);
    std::sort(ordered.begin(), ordered.end(),
              [](const ArrayInfo *a, const ArrayInfo *b) {
                return a->order < b->order;
              });
    for (const ArrayInfo *infoPtr : ordered) {
      const ArrayInfo &info = *infoPtr;
      ArrayReport ar;
      ar.name = info.name;
      ar.bytes = info.bytes;
      ar.banks = std::max<int64_t>(1, info.partition.factor);
      ar.partition =
          info.partition.factor > 1
              ? strfmt("%s dim=%u factor=%lld",
                       info.partition.cyclic ? "cyclic" : "block",
                       info.partition.dim,
                       static_cast<long long>(info.partition.factor))
              : "-";
      ar.bramBlocks = partitionedBramBlocks(info.bytes, ar.banks);
      ar.onChip = info.onChip;
      if (info.onChip)
        total.bram += ar.bramBlocks;
      report_.arrays.push_back(ar);
    }

    // Called user functions instantiate their resources per call site.
    for (BasicBlock *bb : fn_.blockPtrs()) {
      for (auto &inst : *bb) {
        if (inst->opcode() != Opcode::Call)
          continue;
        const Function *callee = inst->calledFunction();
        if (!callee || callee->isDeclaration())
          continue;
        auto it = callees_.find(callee->name());
        if (it != callees_.end())
          total += it->second.resources;
      }
    }
    (void)loopInfo;
    report_.resources = total;
  }

  Function &fn_;
  const TargetSpec &target_;
  const std::map<std::string, FunctionReport> &callees_;
  DiagnosticEngine &diags_;
  FunctionReport report_;

  std::map<const lir::Value *, ArrayInfo> arrays_;
  std::map<const BasicBlock *, int64_t> blockLatency_;
  std::map<const lir::Loop *, int64_t> loopTotal_;
  std::map<const lir::Loop *, LoopReport> loopReports_;
  std::map<const Instruction *, int64_t> opStart_;
  std::map<const BasicBlock *, int64_t> pipelinedII_;
  int64_t fsmStates_ = 0;
  double achievedPeriod_ = 0;
};

/// Applies xlx.unroll directives before scheduling (backend unrolling).
void applyUnrollDirectives(Function &fn, DiagnosticEngine &diags) {
  (void)diags;
  bool changed = true;
  int rounds = 0;
  while (changed && ++rounds < 8) {
    changed = false;
    lir::DominatorTree domTree(fn);
    lir::LoopInfo loopInfo(fn, domTree);
    for (const auto &loop : loopInfo.loops()) {
      Instruction *latchTerm =
          loop->latch() ? loop->latch()->terminator() : nullptr;
      if (!latchTerm)
        continue;
      const lir::MDNode *unrollMD = latchTerm->getMetadata("xlx.unroll");
      if (!unrollMD || !unrollMD->isInt(0))
        continue;
      int64_t requested = unrollMD->getInt(0);
      latchTerm->removeMetadata("xlx.unroll");
      auto canonical = lir::matchCanonicalLoop(loop.get());
      if (!canonical || !canonical->tripCount)
        continue;
      int64_t factor = lir::clampUnrollFactor(*canonical->tripCount,
                                              requested);
      if (factor > 1 && lir::unrollLoopByFactor(*canonical, factor)) {
        changed = true;
        break; // loop info invalidated
      }
    }
  }
}

} // namespace

SynthesisReport synthesize(lir::Module &module,
                           const SynthesisOptions &options,
                           DiagnosticEngine &diags) {
  SynthesisReport report;
  report.compat = lir::checkHlsCompatibility(module, diags);
  report.accepted = report.compat.accepted &&
                    (!options.strictAcceptance || report.compat.warnings == 0);
  if (!report.accepted)
    return report;

  // Bottom-up over the (acyclic) call graph: schedule callees first.
  std::map<std::string, FunctionReport> done;
  std::vector<Function *> order;
  std::set<Function *> visited;
  std::function<void(Function *)> visit = [&](Function *fn) {
    if (!visited.insert(fn).second || fn->isDeclaration())
      return;
    for (lir::BasicBlock *bb : fn->blockPtrs())
      for (auto &inst : *bb)
        if (inst->opcode() == Opcode::Call)
          if (Function *callee = inst->calledFunction())
            visit(callee);
    order.push_back(fn);
  };
  for (Function *fn : module.functions())
    visit(fn);

  for (Function *fn : order) {
    if (options.applyUnrollDirectives)
      applyUnrollDirectives(*fn, diags);
    FunctionScheduler scheduler(*fn, options.target, done, diags);
    FunctionReport fnReport = scheduler.run();
    done[fn->name()] = fnReport;
    report.functions.push_back(std::move(fnReport));
  }
  report.topName = options.topFunction;
  if (report.topName.empty() && !report.functions.empty())
    report.topName = report.functions.back().name;
  return report;
}

} // namespace mha::vhls
