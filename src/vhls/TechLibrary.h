// TechLibrary.h - FPGA operator characterization for the virtual HLS
// backend.
//
// Latency (cycles), combinational delay (ns, for operator chaining) and
// resource cost per operation class, loosely calibrated to Vitis HLS
// defaults on a mid-range UltraScale+ part at a 10 ns target clock. The
// absolute numbers are a model — the experiments compare two flows through
// the *same* backend, which is what "comparable performance" tests.
#pragma once

#include "lir/Instruction.h"

#include <map>
#include <cstdint>
#include <string>

namespace mha::vhls {

struct ResourceUsage {
  int64_t dsp = 0;
  int64_t bram = 0;
  int64_t lut = 0;
  int64_t ff = 0;

  ResourceUsage &operator+=(const ResourceUsage &other) {
    dsp += other.dsp;
    bram += other.bram;
    lut += other.lut;
    ff += other.ff;
    return *this;
  }
};

/// Per-operation characterization.
struct OpInfo {
  int64_t latency = 0;   // pipeline cycles until the result is available
  double delayNs = 0.5;  // combinational delay of the final stage
  ResourceUsage perUnit; // cost of one functional unit instance
  /// Operation class for FU sharing ("fadd", "fmul", "mem", "int", ...).
  std::string fuClass = "int";
};

struct TargetSpec {
  double clockPeriodNs = 10.0;
  /// Ports per BRAM bank (true dual port).
  int memPortsPerBank = 2;
  /// Optional functional-unit allocation limits per class ("fadd",
  /// "fmul", "fdiv", "imul", ...; see OpInfo::fuClass). Absent/0 =
  /// unlimited. Models Vitis' `allocation` directive: the scheduler
  /// serializes operations that exceed the budget.
  std::map<std::string, int> fuLimits;

  int fuLimitFor(const std::string &fuClass) const {
    auto it = fuLimits.find(fuClass);
    return it == fuLimits.end() ? 0 : it->second;
  }
  /// Device capacity, for utilization percentages in reports.
  int64_t deviceDsp = 900;
  int64_t deviceBram = 1824;
  int64_t deviceLut = 274000;
  int64_t deviceFf = 548000;
  /// Per-FSM-state control overhead.
  int64_t lutPerState = 12;
  int64_t ffPerState = 8;
};

/// Characterizes `inst` (type-aware). Calls into hls_* math map to deep
/// pipelined cores; user calls are characterized by the caller using the
/// callee's own report.
OpInfo characterize(const lir::Instruction &inst);

/// BRAM18K blocks needed to hold `bytes`.
int64_t bramBlocksFor(int64_t bytes);

} // namespace mha::vhls
