#include "vhls/TechLibrary.h"

#include "lir/Function.h"
#include "support/StringUtils.h"

namespace mha::vhls {

namespace {

bool isDouble(const lir::Type *t) {
  return t->kind() == lir::Type::Kind::Double;
}

OpInfo make(int64_t latency, double delayNs, std::string fuClass,
            ResourceUsage perUnit) {
  OpInfo info;
  info.latency = latency;
  info.delayNs = delayNs;
  info.fuClass = std::move(fuClass);
  info.perUnit = perUnit;
  return info;
}

} // namespace

OpInfo characterize(const lir::Instruction &inst) {
  using lir::Opcode;
  const lir::Type *type = inst.type();
  switch (inst.opcode()) {
  // --- Memory ---
  case Opcode::Load:
    // BRAM read: address register + synchronous read.
    return make(2, 1.2, "mem", {0, 0, 10, 10});
  case Opcode::Store:
    return make(1, 1.2, "mem", {0, 0, 10, 10});
  case Opcode::GEP:
  case Opcode::Alloca:
    return make(0, 0.8, "addr", {0, 0, 20, 0});

  // --- Integer ---
  case Opcode::Add:
  case Opcode::Sub:
    return make(0, 1.8, "int", {0, 0, 64, 0});
  case Opcode::Mul:
    return make(2, 3.2, "imul", {4, 0, 80, 120});
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
    return make(34, 3.5, "idiv", {0, 0, 1200, 1800});
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    return make(0, 0.9, "int", {0, 0, 32, 0});
  case Opcode::ICmp:
    return make(0, 1.4, "int", {0, 0, 40, 0});

  // --- Floating point ---
  case Opcode::FAdd:
  case Opcode::FSub:
    return isDouble(type) ? make(4, 4.5, "fadd", {3, 0, 430, 600})
                          : make(3, 4.0, "fadd", {2, 0, 220, 320});
  case Opcode::FMul:
    return isDouble(type) ? make(4, 4.5, "fmul", {11, 0, 220, 330})
                          : make(3, 4.0, "fmul", {3, 0, 120, 180});
  case Opcode::FDiv:
    return isDouble(type) ? make(29, 4.8, "fdiv", {0, 0, 3200, 4800})
                          : make(15, 4.5, "fdiv", {0, 0, 800, 1400});
  case Opcode::FNeg:
    return make(0, 0.6, "int", {0, 0, 16, 0});
  case Opcode::FCmp:
    return make(1, 2.5, "fcmp", {0, 0, 120, 80});

  // --- Casts / moves (wiring or near-free) ---
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Bitcast:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
  case Opcode::Freeze:
    return make(0, 0.2, "wire", {0, 0, 0, 0});
  case Opcode::FPTrunc:
  case Opcode::FPExt:
    return make(2, 2.0, "fcast", {0, 0, 100, 120});
  case Opcode::SIToFP:
  case Opcode::UIToFP:
  case Opcode::FPToSI:
    return make(3, 3.0, "fcast", {0, 0, 200, 250});

  case Opcode::Select:
  case Opcode::Phi:
    return make(0, 0.8, "int", {0, 0, 32, 0});

  case Opcode::Call: {
    const lir::Function *callee = inst.calledFunction();
    const std::string &name = callee ? callee->name() : "";
    bool f32 = endsWith(name, "f") || endsWith(name, ".f32");
    if (startsWith(name, "hls_sqrt") || startsWith(name, "llvm.sqrt."))
      return f32 ? make(16, 4.0, "fsqrt", {0, 0, 600, 900})
                 : make(28, 4.5, "fsqrt", {0, 0, 1500, 2300});
    if (startsWith(name, "hls_exp") || startsWith(name, "hls_log") ||
        startsWith(name, "hls_sin") || startsWith(name, "hls_cos") ||
        startsWith(name, "hls_pow"))
      return make(30, 4.5, "felem", {8, 0, 2500, 3000});
    if (startsWith(name, "hls_fabs"))
      return make(0, 0.6, "int", {0, 0, 16, 0});
    if (startsWith(name, "llvm.fmuladd."))
      return isDouble(type) ? make(8, 4.5, "ffma", {14, 0, 650, 900})
                            : make(6, 4.0, "ffma", {5, 0, 340, 500});
    // User function: the scheduler substitutes the callee's latency.
    return make(1, 1.0, "call", {0, 0, 0, 0});
  }

  // Terminators contribute control, not datapath.
  case Opcode::Ret:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Unreachable:
    return make(0, 0.3, "ctrl", {0, 0, 0, 0});
  }
  return make(0, 0.5, "int", {0, 0, 16, 0});
}

int64_t bramBlocksFor(int64_t bytes) {
  // BRAM18K: 18 Kbit = 2304 bytes.
  constexpr int64_t kBytesPerBlock = 2304;
  return (bytes + kBytesPerBlock - 1) / kBytesPerBlock;
}

} // namespace mha::vhls
