// Report.h - synthesis report structures (the backend's "rpt file").
#pragma once

#include "lir/HlsCompat.h"
#include "vhls/TechLibrary.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mha::vhls {

struct LoopReport {
  std::string name;        // header block name
  unsigned depth = 1;      // nesting depth
  int64_t tripCount = -1;  // -1 when unknown
  bool pipelined = false;
  int64_t targetII = 0;    // requested II (0 = none)
  int64_t achievedII = 0;
  int64_t recMII = 0;
  int64_t resMII = 0;
  int64_t iterationLatency = 0; // depth of one iteration
  int64_t totalLatency = 0;     // cycles for the whole loop
  int64_t unrollFactor = 1;     // applied backend unroll
  std::string note;             // e.g. "not pipelined: contains subloop"
};

struct ArrayReport {
  std::string name;
  int64_t bytes = 0;
  int64_t banks = 1;
  std::string partition; // "cyclic dim=1 factor=4" or "-"
  int64_t bramBlocks = 0;
  bool onChip = true; // allocas on-chip; top args are interface BRAMs
};

struct FunctionReport {
  std::string name;
  int64_t latencyCycles = 0;
  bool dataflow = false; // task-level pipelining of top-level nests
  int64_t fsmStates = 0;
  double achievedPeriodNs = 0; // longest scheduled chain
  ResourceUsage resources;
  std::vector<LoopReport> loops;
  std::vector<ArrayReport> arrays;
};

struct SynthesisReport {
  bool accepted = false;
  lir::HlsCompatReport compat;
  std::vector<FunctionReport> functions;
  std::string topName;

  const FunctionReport *top() const {
    for (const FunctionReport &fn : functions)
      if (fn.name == topName)
        return &fn;
    return functions.empty() ? nullptr : &functions.front();
  }

  /// Renders a Vitis-style text report.
  std::string str() const;

  /// Renders the report as JSON (stable key order) for downstream
  /// tooling — the virtual equivalent of Vitis' report files.
  std::string json() const;
};

} // namespace mha::vhls
