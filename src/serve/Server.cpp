#include "serve/Server.h"

#include "flow/StageCache.h"
#include "support/EventLog.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mha::serve {

namespace {

/// A request line longer than this kills the connection: inline MLIR is
/// already capped, so anything bigger is a broken or hostile client.
constexpr size_t kMaxLineBytes = kMaxInlineMlirBytes + (64u << 10);

metrics::Gauge &queueGauge() {
  static metrics::Gauge &g = metrics::Registry::global().gauge(
      "mha_serve_queue_depth", "admitted requests waiting for a worker");
  return g;
}

metrics::Gauge &inflightGauge() {
  static metrics::Gauge &g = metrics::Registry::global().gauge(
      "mha_serve_inflight", "requests currently compiling");
  return g;
}

metrics::Histogram &requestHistogram() {
  static metrics::Histogram &h = metrics::Registry::global().histogram(
      "mha_serve_request_us", "admission-to-done request latency");
  return h;
}

metrics::Counter &admittedCounter() {
  static metrics::Counter &c = metrics::Registry::global().counter(
      "mha_serve_admitted_total", "compile requests admitted");
  return c;
}

metrics::Counter &rejectedCounter(const char *reason) {
  // Two label values only; resolve each once.
  static metrics::Counter &busy = metrics::Registry::global().counter(
      "mha_serve_rejected_total", "compile requests rejected at admission",
      {{"reason", "busy"}});
  static metrics::Counter &shutdown = metrics::Registry::global().counter(
      "mha_serve_rejected_total", "compile requests rejected at admission",
      {{"reason", "shutdown"}});
  return std::strcmp(reason, "busy") == 0 ? busy : shutdown;
}

metrics::Counter &completedCounter(bool ok) {
  static metrics::Counter &okc = metrics::Registry::global().counter(
      "mha_serve_completed_total", "compile requests finished",
      {{"status", "ok"}});
  static metrics::Counter &errCounter = metrics::Registry::global().counter(
      "mha_serve_completed_total", "compile requests finished",
      {{"status", "error"}});
  return ok ? okc : errCounter;
}

metrics::Counter &cancelledCounter() {
  static metrics::Counter &c = metrics::Registry::global().counter(
      "mha_serve_cancelled_total", "compile requests cancelled");
  return c;
}

metrics::Counter &connectionsCounter() {
  static metrics::Counter &c = metrics::Registry::global().counter(
      "mha_serve_connections_total", "client connections accepted");
  return c;
}

int64_t elapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

} // namespace

struct Server::Conn {
  int fd = -1;
  /// Serializes writes; also guards `alive` so a write never races the
  /// reader marking the connection dead.
  std::mutex writeMutex;
  bool alive = true;
  /// Admitted requests from this connection (guarded by Server::mutex_).
  std::vector<std::shared_ptr<Pending>> active;

  ~Conn() {
    if (fd >= 0)
      ::close(fd);
  }
};

struct Server::Pending {
  Request req;
  std::shared_ptr<Conn> conn;
  std::atomic<bool> cancel{false};
  /// Guarded by Server::mutex_ (targets of `cancel` requests must be
  /// findable, finished ones must not be).
  bool done = false;
  std::chrono::steady_clock::time_point admitted;
};

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.maxInflight < 1)
    options_.maxInflight = 1;
  if (options_.maxQueue < 0)
    options_.maxQueue = 0;
}

Server::~Server() {
  stop();
  if (wakeRead_ >= 0)
    ::close(wakeRead_);
  if (wakeWrite_ >= 0)
    ::close(wakeWrite_);
}

bool Server::start(std::string *error) {
  auto fail = [&](const std::string &message) {
    if (error)
      *error = message;
    if (listenFd_ >= 0) {
      ::close(listenFd_);
      listenFd_ = -1;
    }
    return false;
  };
  if (running_.load())
    return fail("server already running");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socketPath.empty() ||
      options_.socketPath.size() >= sizeof(addr.sun_path))
    return fail(strfmt("socket path too long (max %zu bytes)",
                       sizeof(addr.sun_path) - 1));
  std::memcpy(addr.sun_path, options_.socketPath.c_str(),
              options_.socketPath.size() + 1);

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0)
    return fail(strfmt("socket: %s", std::strerror(errno)));
  ::unlink(options_.socketPath.c_str());
  if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0)
    return fail(strfmt("bind %s: %s", options_.socketPath.c_str(),
                       std::strerror(errno)));
  if (::listen(listenFd_, 64) != 0)
    return fail(strfmt("listen: %s", std::strerror(errno)));

  if (wakeRead_ < 0) {
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0)
      return fail(strfmt("pipe2: %s", std::strerror(errno)));
    // Non-blocking write end: notifyFromSignal() must never block inside
    // a signal handler, even if the pipe is (impossibly) full.
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    wakeRead_ = fds[0];
    wakeWrite_ = fds[1];
  }

  flow::StageCache::global().setLimitBytes(options_.stageCacheLimitBytes);

  pool_ = std::make_unique<ThreadPool>(
      static_cast<unsigned>(options_.maxInflight));
  shuttingDown_.store(false);
  running_.store(true);
  elog::info("serve", "listening",
             {{"socket", options_.socketPath},
              {"max_inflight", strfmt("%d", options_.maxInflight)},
              {"max_queue", strfmt("%d", options_.maxQueue)}});
  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::requestStop() {
  shuttingDown_.store(true);
  notifyFromSignal();
}

void Server::notifyFromSignal() {
  // Async-signal-safe: one write(2), errors ignored (the pipe being full
  // already means a wake-up is pending).
  if (wakeWrite_ >= 0) {
    char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
  }
}

void Server::wait() {
  if (acceptThread_.joinable())
    acceptThread_.join();
}

void Server::stop() {
  requestStop();
  wait();
}

bool Server::running() const { return running_.load(); }

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

int64_t Server::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outstanding_;
}

void Server::emitTo(const std::shared_ptr<Conn> &conn,
                    const std::string &line) {
  std::lock_guard<std::mutex> lock(conn->writeMutex);
  if (!conn->alive)
    return;
  std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(conn->fd, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR)
        continue;
      // Client went away mid-write; the reader will notice EOF and cancel
      // this connection's outstanding work.
      conn->alive = false;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

void Server::acceptLoop() {
  while (true) {
    pollfd fds[2] = {{wakeRead_, POLLIN, 0}, {listenFd_, POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if ((fds[0].revents & POLLIN) || shuttingDown_.load())
      break;
    if (!(fds[1].revents & POLLIN))
      continue;
    int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0)
      continue;
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    ++connectionsCounter();
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.connections++;
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { readerLoop(conn); });
  }
  shuttingDown_.store(true);
  drainAndJoin();
}

void Server::readerLoop(std::shared_ptr<Conn> conn) {
  std::string buffer;
  char chunk[64 << 10];
  while (true) {
    ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR)
      continue;
    if (n <= 0)
      break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t eol = buffer.find('\n', start); eol != std::string::npos;
         eol = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, eol - start);
      start = eol + 1;
      if (!line.empty() && line.back() == '\r')
        line.pop_back();
      if (!line.empty())
        handleLine(conn, line);
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      emitTo(conn, renderError("", errc::ParseError,
                               "request line exceeds size limit"));
      break;
    }
  }
  // Disconnect: stop writes, then cancel everything this client still has
  // outstanding — nobody is listening for the results.
  {
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    conn->alive = false;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Pending> &pending : conn->active)
    if (!pending->done)
      pending->cancel.store(true);
}

void Server::handleLine(const std::shared_ptr<Conn> &conn,
                        const std::string &line) {
  ParsedRequest parsed = parseRequest(line);
  if (!parsed.ok) {
    emitTo(conn, renderError(parsed.request.id, parsed.errorCode,
                             parsed.errorMessage));
    emitTo(conn, renderDone(parsed.request.id, false, parsed.errorCode,
                            false, 0, 0));
    return;
  }
  const Request &req = parsed.request;

  switch (req.type) {
  case RequestType::Ping:
    emitTo(conn, renderPong(req.id));
    return;
  case RequestType::Shutdown: {
    emitTo(conn, renderShutdownAck(req.id));
    elog::info("serve", "shutdown requested by client");
    requestStop();
    return;
  }
  case RequestType::Cancel: {
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const std::shared_ptr<Pending> &pending : conn->active) {
        if (!pending->done && pending->req.id == req.id) {
          pending->cancel.store(true);
          found = true;
        }
      }
    }
    emitTo(conn, renderCancelAck(req.id, found));
    return;
  }
  case RequestType::Compile:
    break;
  }

  std::shared_ptr<Pending> pending;
  int64_t queueDepth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shuttingDown_.load()) {
      stats_.rejectedShutdown++;
      ++rejectedCounter("shutdown");
      emitTo(conn, renderError(req.id, errc::ShuttingDown,
                               "server is shutting down"));
      emitTo(conn, renderDone(req.id, false, errc::ShuttingDown, false, 0, 0));
      return;
    }
    if (outstanding_ >=
        static_cast<int64_t>(options_.maxInflight) + options_.maxQueue) {
      stats_.rejectedBusy++;
      ++rejectedCounter("busy");
      emitTo(conn,
             renderError(req.id, errc::Busy,
                         strfmt("server at capacity (%lld outstanding)",
                                static_cast<long long>(outstanding_))));
      emitTo(conn, renderDone(req.id, false, errc::Busy, false, 0, 0));
      return;
    }
    stats_.admitted++;
    ++admittedCounter();
    outstanding_++;
    pending = std::make_shared<Pending>();
    pending->req = req;
    pending->conn = conn;
    pending->admitted = std::chrono::steady_clock::now();
    conn->active.push_back(pending);
    queueDepth = outstanding_ - inflightGauge().value();
    queueGauge().set(queueDepth > 0 ? queueDepth : 0);
  }
  // `accepted` is emitted before the worker can start so it always
  // precedes the first `stage` event.
  emitTo(conn, renderAccepted(req.id, queueDepth));
  pool_->submit([this, pending] { runPending(pending); });
}

void Server::runPending(std::shared_ptr<Pending> pending) {
  const Request &req = pending->req;
  telemetry::Span span("serve:request", "serve",
                       {{"id", req.id},
                        {"kernel", req.kernel.empty() ? "<inline>"
                                                      : req.kernel}});
  int64_t queueUs = elapsedUs(pending->admitted);
  inflightGauge().add(1);

  SessionOutcome outcome;
  int64_t compileUs = 0;
  if (pending->cancel.load(std::memory_order_relaxed)) {
    // Cancelled while still queued: the flow never starts.
    outcome.code = errc::Cancelled;
    emitTo(pending->conn,
           renderError(req.id, errc::Cancelled,
                       "request cancelled before compilation started"));
  } else {
    auto started = std::chrono::steady_clock::now();
    Emit emit = [this, pending](const std::string &line) {
      emitTo(pending->conn, line);
    };
    outcome = runSession(req, options_.session, &pending->cancel, emit);
    compileUs = elapsedUs(started);
  }
  emitTo(pending->conn, renderDone(req.id, outcome.ok, outcome.code,
                                   outcome.cached, queueUs, compileUs));

  inflightGauge().add(-1);
  requestHistogram().record(elapsedUs(pending->admitted));
  ++completedCounter(outcome.ok);
  bool cancelled = outcome.code == errc::Cancelled;
  if (cancelled)
    ++cancelledCounter();
  elog::debug("serve", "request done",
              {{"id", req.id},
               {"status", outcome.ok ? "ok" : outcome.code},
               {"cached", outcome.cached ? "true" : "false"}});

  std::lock_guard<std::mutex> lock(mutex_);
  pending->done = true;
  outstanding_--;
  if (outcome.ok)
    stats_.completedOk++;
  else
    stats_.completedError++;
  if (cancelled)
    stats_.cancelled++;
  auto &active = pending->conn->active;
  for (size_t i = 0; i < active.size(); ++i) {
    if (active[i] == pending) {
      active.erase(active.begin() + i);
      break;
    }
  }
  int64_t queueDepth = outstanding_ - inflightGauge().value();
  queueGauge().set(queueDepth > 0 ? queueDepth : 0);
  if (outstanding_ == 0)
    drained_.notify_all();
}

void Server::drainAndJoin() {
  ::close(listenFd_);
  listenFd_ = -1;

  // Drain within the deadline, then cancel what remains and wait for it
  // to unwind at the next stage boundary.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait_for(lock, std::chrono::milliseconds(options_.drainMs),
                      [this] { return outstanding_ == 0; });
    if (outstanding_ != 0) {
      elog::warn("serve", "drain deadline passed, cancelling outstanding",
                 {{"outstanding", strfmt("%lld", static_cast<long long>(
                                                     outstanding_))}});
      for (const std::shared_ptr<Conn> &conn : conns_)
        for (const std::shared_ptr<Pending> &pending : conn->active)
          if (!pending->done)
            pending->cancel.store(true);
      drained_.wait(lock, [this] { return outstanding_ == 0; });
    }
  }

  // Unblock and join every connection reader.
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(conns_);
    readers.swap(readers_);
  }
  for (const std::shared_ptr<Conn> &conn : conns) {
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    conn->alive = false;
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread &reader : readers)
    reader.join();

  pool_->wait();
  pool_.reset();

  // Drain any pending wake bytes so a restarted server does not see a
  // stale shutdown request.
  char drainBuf[16];
  ::fcntl(wakeRead_, F_SETFL, O_NONBLOCK);
  while (::read(wakeRead_, drainBuf, sizeof(drainBuf)) > 0) {
  }

  ::unlink(options_.socketPath.c_str());
  running_.store(false);
  elog::info("serve", "stopped");
}

} // namespace mha::serve
