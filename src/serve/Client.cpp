#include "serve/Client.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mha::serve {

namespace {

void setError(std::string *error, std::string message) {
  if (error)
    *error = std::move(message);
}

std::string field(const json::Value &doc, const char *name) {
  const json::Value *value = doc.get(name);
  return value && value->isString() ? value->asString() : std::string();
}

int64_t intField(const json::Value &doc, const char *name) {
  const json::Value *value = doc.get(name);
  return value && value->isNumber() ? value->asInt() : 0;
}

bool boolField(const json::Value &doc, const char *name) {
  const json::Value *value = doc.get(name);
  return value && value->isBool() && value->asBool();
}

} // namespace

Client::~Client() { close(); }

bool Client::connect(const std::string &socketPath, std::string *error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.empty() || socketPath.size() >= sizeof(addr.sun_path)) {
    setError(error, "socket path too long");
    return false;
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    setError(error, strfmt("socket: %s", std::strerror(errno)));
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0) {
    setError(error, strfmt("connect %s: %s", socketPath.c_str(),
                           std::strerror(errno)));
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::sendLine(const std::string &line, std::string *error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return false;
  }
  std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR)
        continue;
      setError(error, strfmt("send: %s", std::strerror(errno)));
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool Client::readLine(std::string &line, std::string *error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return false;
  }
  while (true) {
    size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return true;
    }
    char chunk[64 << 10];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR)
      continue;
    if (n <= 0) {
      setError(error, n == 0 ? "connection closed"
                             : strfmt("read: %s", std::strerror(errno)));
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Client::CompileOutcome Client::runCompile(const Request &req) {
  CompileOutcome outcome;
  std::string error;
  if (!sendLine(renderCompileRequest(req.id, req), &error)) {
    outcome.error = error;
    return outcome;
  }
  std::string line;
  while (readLine(line, &error)) {
    std::optional<json::Value> doc = json::parse(line);
    if (!doc || !doc->isObject()) {
      outcome.error = "malformed response line: " + line;
      return outcome;
    }
    if (field(*doc, "id") != req.id)
      continue;
    std::string event = field(*doc, "event");
    if (event == "stage") {
      outcome.stages.push_back(field(*doc, "stage"));
    } else if (event == "result") {
      outcome.resultLine = line;
    } else if (event == "error") {
      outcome.code = field(*doc, "code");
      outcome.error = field(*doc, "message");
    } else if (event == "done") {
      outcome.transportOk = true;
      outcome.ok = field(*doc, "status") == "ok";
      if (std::string code = field(*doc, "code"); !code.empty())
        outcome.code = code;
      outcome.cached = boolField(*doc, "cached");
      outcome.queueUs = intField(*doc, "queue_us");
      outcome.compileUs = intField(*doc, "compile_us");
      return outcome;
    }
  }
  outcome.error = error;
  return outcome;
}

bool Client::awaitEvent(const std::string &event, const std::string &id,
                        std::optional<json::Value> &docOut) {
  std::string line;
  while (readLine(line)) {
    std::optional<json::Value> doc = json::parse(line);
    if (!doc)
      return false;
    if (field(*doc, "event") == event && field(*doc, "id") == id) {
      docOut = std::move(doc);
      return true;
    }
  }
  return false;
}

bool Client::ping(const std::string &id) {
  std::optional<json::Value> doc;
  return sendLine(renderAdminRequest(id, RequestType::Ping)) &&
         awaitEvent("pong", id, doc);
}

bool Client::shutdown(const std::string &id) {
  std::optional<json::Value> doc;
  return sendLine(renderAdminRequest(id, RequestType::Shutdown)) &&
         awaitEvent("shutdown_ack", id, doc);
}

bool Client::cancel(const std::string &targetId, bool *found) {
  std::optional<json::Value> doc;
  if (!sendLine(renderAdminRequest(targetId, RequestType::Cancel)) ||
      !awaitEvent("cancel_ack", targetId, doc))
    return false;
  if (found)
    *found = boolField(*doc, "found");
  return true;
}

} // namespace mha::serve
