#include "serve/Session.h"

#include "dse/Evaluator.h"
#include "flow/Flow.h"
#include "flow/Kernels.h"
#include "mir/MContext.h"
#include "mir/Parser.h"
#include "support/Diagnostics.h"
#include "support/StringUtils.h"

namespace mha::serve {

namespace {

/// First line of a (possibly multi-line) diagnostic dump — enough for a
/// one-line error event; the full text stays on the daemon's stderr/log.
std::string firstLine(const std::string &text) {
  size_t eol = text.find('\n');
  std::string line = eol == std::string::npos ? text : text.substr(0, eol);
  return line.empty() ? "flow failed" : line;
}

flow::FlowOptions makeFlowOptions(const Request &req,
                                  const SessionOptions &options,
                                  const std::atomic<bool> *cancelFlag,
                                  const Emit &emit) {
  flow::FlowOptions fo;
  fo.useStageCache = options.useStageCache;
  fo.passJobs = options.passJobs;
  fo.cancelFlag = cancelFlag;
  fo.onStage = [&req, &emit](const char *stage) {
    emit(renderStage(req.id, stage));
  };
  return fo;
}

SessionOutcome finishFlow(const Request &req, const flow::FlowResult &result,
                          const Emit &emit) {
  SessionOutcome outcome;
  outcome.cached = result.synthFromCache;
  if (result.ok) {
    outcome.ok = true;
    emit(renderResult(req.id, req, result));
    return outcome;
  }
  outcome.code = result.cancelled ? errc::Cancelled : errc::FlowError;
  emit(renderError(req.id, outcome.code, firstLine(result.diagnostics)));
  return outcome;
}

SessionOutcome runEstimate(const Request &req, const flow::KernelSpec &spec,
                           const SessionOptions &options,
                           const std::atomic<bool> *cancelFlag,
                           const Emit &emit) {
  // The estimator's probe runs are real flows — they stream stage events
  // and share the StageCache like any other compile.
  dse::EvaluatorOptions eo;
  eo.numThreads = 1;
  eo.flow = makeFlowOptions(req, options, cancelFlag, emit);
  dse::Evaluator evaluator(spec, eo);
  dse::QoR qor = evaluator.estimate(req.config);
  SessionOutcome outcome;
  if (!qor.ok) {
    bool cancelled =
        cancelFlag && cancelFlag->load(std::memory_order_relaxed);
    outcome.code = cancelled ? errc::Cancelled : errc::FlowError;
    emit(renderError(req.id, outcome.code,
                     qor.error.empty() ? "estimation failed"
                                       : firstLine(qor.error)));
    return outcome;
  }
  outcome.ok = true;
  emit(renderEstimateResult(req.id, req, qor.latencyCycles, qor.dsp,
                            qor.bram, qor.lut, qor.ff));
  return outcome;
}

} // namespace

std::string inlineKernelName(const std::string &mlirText) {
  // FNV-1a 64-bit over the raw module text.
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : mlirText) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return strfmt("inline-%016llx", static_cast<unsigned long long>(hash));
}

SessionOutcome runSession(const Request &req, const SessionOptions &options,
                          const std::atomic<bool> *cancelFlag,
                          const Emit &emit) {
  if (req.mlir.empty()) {
    const flow::KernelSpec *spec = flow::findKernel(req.kernel);
    if (!spec) {
      SessionOutcome outcome;
      outcome.code = errc::UnknownKernel;
      emit(renderError(req.id, outcome.code,
                       strfmt("unknown kernel '%s'", req.kernel.c_str()),
                       /*withAvailableKernels=*/true));
      return outcome;
    }
    if (req.estimate)
      return runEstimate(req, *spec, options, cancelFlag, emit);
    flow::FlowOptions fo = makeFlowOptions(req, options, cancelFlag, emit);
    flow::FlowResult result =
        req.flowKind == flow::FlowKind::Adaptor
            ? flow::runAdaptorFlow(*spec, req.config, fo)
            : flow::runHlsCppFlow(*spec, req.config, fo);
    return finishFlow(req, result, emit);
  }

  // Inline MLIR: validate it up front in a session-private context so a
  // bad module is a clean bad_request, then wrap the text in a synthetic
  // spec whose builder re-parses it into whichever MContext the flow
  // provides (the text is already known-good, so that parse cannot fail).
  {
    mir::MContext probeCtx;
    DiagnosticEngine probeDiags;
    std::optional<mir::OwnedModule> probe =
        mir::parseModule(req.mlir, probeCtx, probeDiags);
    if (!probe) {
      SessionOutcome outcome;
      outcome.code = errc::BadRequest;
      emit(renderError(req.id, outcome.code,
                       "inline MLIR parse failed: " +
                           firstLine(probeDiags.str())));
      return outcome;
    }
    std::vector<mir::FuncOp> funcs = probe->get().funcs();
    if (funcs.empty()) {
      SessionOutcome outcome;
      outcome.code = errc::BadRequest;
      emit(renderError(req.id, outcome.code,
                       "inline MLIR module has no functions"));
      return outcome;
    }

    // Resolve the top function. A single-function module needs no 'top';
    // anything else must name one — the daemon never guesses, because
    // funcs.front() depends on definition order the client may not
    // control (generated modules, concatenated files).
    std::vector<std::string> candidates;
    candidates.reserve(funcs.size());
    for (mir::FuncOp &fn : funcs)
      candidates.push_back(fn.name());
    std::string top;
    if (!req.top.empty()) {
      for (const std::string &name : candidates)
        if (name == req.top)
          top = name;
      if (top.empty()) {
        SessionOutcome outcome;
        outcome.code = errc::BadRequest;
        emit(renderErrorWithCandidates(
            req.id, outcome.code,
            strfmt("top function '%s' not found in inline MLIR module",
                   req.top.c_str()),
            candidates));
        return outcome;
      }
    } else if (funcs.size() > 1) {
      SessionOutcome outcome;
      outcome.code = errc::AmbiguousTop;
      std::string names;
      for (size_t i = 0; i < candidates.size(); ++i)
        names += (i ? ", " : "") + candidates[i];
      emit(renderErrorWithCandidates(
          req.id, outcome.code,
          strfmt("inline MLIR module defines %zu functions (%s); set "
                 "'top' to pick one",
                 candidates.size(), names.c_str()),
          candidates));
      return outcome;
    } else {
      top = candidates.front();
    }

    flow::KernelSpec spec;
    spec.name = inlineKernelName(req.mlir);
    spec.description = "inline MLIR request";
    std::string mlirText = req.mlir;
    spec.build = [mlirText](mir::MContext &ctx,
                            const flow::KernelConfig &) {
      DiagnosticEngine diags;
      std::optional<mir::OwnedModule> module =
          mir::parseModule(mlirText, ctx, diags);
      return std::move(*module);
    };

    flow::FlowOptions fo = makeFlowOptions(req, options, cancelFlag, emit);
    // spec.name is a hash, not a function name; synthesize the resolved
    // top (the StageCache synth key includes it, so per-top results of
    // the same module never collide).
    fo.synthesis.topFunction = top;
    flow::FlowResult result =
        req.flowKind == flow::FlowKind::Adaptor
            ? flow::runAdaptorFlow(spec, req.config, fo)
            : flow::runHlsCppFlow(spec, req.config, fo);
    return finishFlow(req, result, emit);
  }
}

} // namespace mha::serve
