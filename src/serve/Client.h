// Client.h - blocking NDJSON client for the mha-serve socket.
//
// Thin by design: connect, send request lines, read response lines. The
// one conveniences layered on top are runCompile() — send one compile
// request and collect its event stream through the terminal `done` —
// and ping()/shutdown() for the admin round-trips. mha-client, the serve
// tests and the throughput bench all drive the daemon through this class,
// so the protocol has exactly one client-side framing implementation.
#pragma once

#include "serve/Protocol.h"
#include "support/Json.h"

#include <optional>
#include <string>
#include <vector>

namespace mha::serve {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  bool connect(const std::string &socketPath, std::string *error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request line (newline appended). False on I/O failure.
  bool sendLine(const std::string &line, std::string *error = nullptr);

  /// Blocks for the next response line (newline stripped). False on EOF
  /// or I/O failure.
  bool readLine(std::string &line, std::string *error = nullptr);

  /// One compile request, start to finish.
  struct CompileOutcome {
    /// The transport survived (request written, `done` or a terminal
    /// error received). When false, `error` says what broke.
    bool transportOk = false;
    /// done.status == "ok".
    bool ok = false;
    /// done.code / error code ("" on success).
    std::string code;
    /// done.cached — the whole-pipeline warm-hit flag.
    bool cached = false;
    int64_t queueUs = 0;
    int64_t compileUs = 0;
    /// Stage names in arrival order ("mlirOpt", "bridge", "synth").
    std::vector<std::string> stages;
    /// The raw `result` line (byte-deterministic; empty on failure) —
    /// what warm-vs-cold equivalence checks byte-compare.
    std::string resultLine;
    /// error event's message (empty on success), or transport error.
    std::string error;
  };

  /// Sends `req` and consumes events until its `done` arrives. Events
  /// for other ids (a multiplexing caller's business) are dropped.
  CompileOutcome runCompile(const Request &req);

  /// Admin round-trips: true when the matching ack arrived. Intervening
  /// events for other requests are read past and dropped — callers
  /// interleaving admin and compile traffic on one connection should use
  /// sendLine/readLine directly.
  bool ping(const std::string &id = "ping");
  bool shutdown(const std::string &id = "shutdown");
  bool cancel(const std::string &targetId, bool *found = nullptr);

private:
  bool awaitEvent(const std::string &event, const std::string &id,
                  std::optional<json::Value> &docOut);

  int fd_ = -1;
  std::string buffer_;
};

} // namespace mha::serve
