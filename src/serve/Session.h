// Session.h - one admitted compile request, start to finish.
//
// A Session owns everything request-scoped: it resolves the kernel (named
// built-in, or a synthetic spec wrapping inline MLIR text), builds its own
// flow contexts (each flow call constructs a private MContext/LContext, so
// two sessions compiling identically-named kernels never share mutable
// state), streams per-stage progress through the Emit callback and renders
// the final `result`/`error` event itself. The surrounding Server emits
// the `accepted` and terminal `done` events — admission and queue timing
// are its business, not the session's.
//
// Cancellation is cooperative: the server-owned flag is forwarded into
// FlowOptions::cancelFlag and checked at every stage boundary.
#pragma once

#include "serve/Protocol.h"

#include <atomic>
#include <functional>
#include <string>

namespace mha::serve {

/// Delivers one response line (no trailing newline) to the client. Called
/// from the session's worker thread; the server's per-connection writer
/// lock makes concurrent emits safe.
using Emit = std::function<void(const std::string &line)>;

struct SessionOptions {
  /// Consult/populate the process-global StageCache (the daemon's
  /// whole-pipeline result cache).
  bool useStageCache = true;
  /// FlowOptions::passJobs for each compile (<=1: serial).
  int passJobs = 1;
};

/// What the server needs for the terminal `done` event and its metrics.
struct SessionOutcome {
  bool ok = false;
  /// errc::* code when !ok (empty on success).
  std::string code;
  /// Final synthesis stage came from the StageCache (warm hit).
  bool cached = false;
};

/// Runs one validated compile request to completion on the calling
/// thread. Emits stage events as the flow advances and exactly one
/// `result` or `error` event before returning.
SessionOutcome runSession(const Request &req, const SessionOptions &options,
                          const std::atomic<bool> *cancelFlag,
                          const Emit &emit);

/// Content-addressed name for an inline-MLIR request's synthetic kernel
/// spec: "inline-<16 hex digits>". The StageCache's mlir-stage key hashes
/// the spec *name* as a stand-in for the builder, so inline specs must
/// derive their name from the module text — two different inline modules
/// then never collide, and resubmitting the same text is a warm hit.
std::string inlineKernelName(const std::string &mlirText);

} // namespace mha::serve
