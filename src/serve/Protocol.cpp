#include "serve/Protocol.h"

#include "flow/Kernels.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <cmath>

namespace mha::serve {

namespace {

/// Extracts an integral knob in [min, max] from a JSON number. JSON has
/// only doubles; a fractional or out-of-range value is a client bug.
bool intField(const json::Value &value, const char *name, int64_t min,
              int64_t max, int64_t &out, std::string &error) {
  if (!value.isNumber()) {
    error = strfmt("field '%s' must be a number", name);
    return false;
  }
  double d = value.asDouble();
  if (d != std::floor(d) || d < double(min) || d > double(max)) {
    error = strfmt("field '%s' out of range (expected integer in [%lld, "
                   "%lld])",
                   name, static_cast<long long>(min),
                   static_cast<long long>(max));
    return false;
  }
  out = static_cast<int64_t>(d);
  return true;
}

bool boolField(const json::Value &value, const char *name, bool &out,
               std::string &error) {
  if (!value.isBool()) {
    error = strfmt("field '%s' must be a boolean", name);
    return false;
  }
  out = value.asBool();
  return true;
}

bool stringField(const json::Value &value, const char *name, std::string &out,
                 std::string &error) {
  if (!value.isString()) {
    error = strfmt("field '%s' must be a string", name);
    return false;
  }
  out = value.asString();
  return true;
}

ParsedRequest fail(std::string code, std::string message, std::string id) {
  ParsedRequest pr;
  pr.ok = false;
  pr.errorCode = std::move(code);
  pr.errorMessage = std::move(message);
  pr.request.id = std::move(id);
  return pr;
}

/// Shared response-line prefix: schema, id, event.
std::string head(const std::string &id, const char *event) {
  return strfmt("{\"schema\": \"%s\", \"id\": \"%s\", \"event\": \"%s\"",
                kResponseSchema, json::escape(id).c_str(), event);
}

const char *flowWireName(flow::FlowKind kind) {
  // "hls-c++" is the human name; on the wire the flow field accepts both
  // spellings and we emit the canonical one.
  return flow::flowKindName(kind);
}

} // namespace

ParsedRequest parseRequest(const std::string &line) {
  std::string parseError;
  std::optional<json::Value> doc = json::parse(line, &parseError);
  if (!doc)
    return fail(errc::ParseError, "malformed JSON: " + parseError, "");
  if (!doc->isObject())
    return fail(errc::ParseError, "request must be a JSON object", "");

  // Recover the id first so even validation failures stay correlatable.
  std::string id;
  if (const json::Value *idValue = doc->get("id"); idValue &&
      idValue->isString())
    id = idValue->asString();

  std::string schema, typeName, flowName = "adaptor";
  Request req;
  req.id = id;
  bool sawSchema = false, sawId = false, sawType = false;
  bool sawKernel = false, sawMlir = false, sawTop = false;
  std::string error;
  for (const auto &[key, value] : doc->members()) {
    if (key == "schema") {
      sawSchema = true;
      if (!stringField(value, "schema", schema, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "id") {
      sawId = true;
      if (!stringField(value, "id", req.id, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "type") {
      sawType = true;
      if (!stringField(value, "type", typeName, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "kernel") {
      sawKernel = true;
      if (!stringField(value, "kernel", req.kernel, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "mlir") {
      sawMlir = true;
      if (!stringField(value, "mlir", req.mlir, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "top") {
      sawTop = true;
      if (!stringField(value, "top", req.top, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "flow") {
      if (!stringField(value, "flow", flowName, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "ii") {
      if (!intField(value, "ii", 0, 1 << 20, req.config.pipelineII, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "unroll") {
      if (!intField(value, "unroll", 1, 1 << 20, req.config.unrollFactor,
                    error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "partition") {
      if (!intField(value, "partition", 1, 1 << 20,
                    req.config.partitionFactor, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "dataflow") {
      if (!boolField(value, "dataflow", req.config.dataflow, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "directives") {
      if (!boolField(value, "directives", req.config.applyDirectives, error))
        return fail(errc::BadRequest, error, id);
    } else if (key == "estimate") {
      if (!boolField(value, "estimate", req.estimate, error))
        return fail(errc::BadRequest, error, id);
    } else {
      return fail(errc::BadRequest, strfmt("unknown field '%s'", key.c_str()),
                  id);
    }
  }

  if (!sawSchema || schema != kRequestSchema)
    return fail(errc::BadRequest,
                strfmt("missing or unsupported schema (expected \"%s\")",
                       kRequestSchema),
                id);
  if (!sawId || req.id.empty() || req.id.size() > 128)
    return fail(errc::BadRequest,
                "field 'id' is required (non-empty string, at most 128 "
                "bytes)",
                id);
  if (!sawType)
    return fail(errc::BadRequest, "field 'type' is required", req.id);

  if (typeName == "compile")
    req.type = RequestType::Compile;
  else if (typeName == "cancel")
    req.type = RequestType::Cancel;
  else if (typeName == "ping")
    req.type = RequestType::Ping;
  else if (typeName == "shutdown")
    req.type = RequestType::Shutdown;
  else
    return fail(errc::BadRequest,
                strfmt("unknown type '%s' (expected compile|cancel|ping|"
                       "shutdown)",
                       typeName.c_str()),
                req.id);

  if (req.type != RequestType::Compile) {
    // Admin requests carry no compile payload.
    if (sawKernel || sawMlir || sawTop)
      return fail(errc::BadRequest,
                  strfmt("type '%s' takes no kernel/mlir payload",
                         typeName.c_str()),
                  req.id);
    return ParsedRequest{true, std::move(req), "", ""};
  }

  if (sawKernel == sawMlir)
    return fail(errc::BadRequest,
                "compile requests need exactly one of 'kernel' or 'mlir'",
                req.id);
  if (sawKernel && req.kernel.empty())
    return fail(errc::BadRequest, "field 'kernel' must be non-empty", req.id);
  if (sawMlir && req.mlir.empty())
    return fail(errc::BadRequest, "field 'mlir' must be non-empty", req.id);
  if (req.mlir.size() > kMaxInlineMlirBytes)
    return fail(errc::BadRequest,
                strfmt("inline MLIR too large (%zu bytes, limit %zu)",
                       req.mlir.size(), kMaxInlineMlirBytes),
                req.id);
  if (sawTop && req.top.empty())
    return fail(errc::BadRequest, "field 'top' must be non-empty", req.id);
  if (sawTop && !sawMlir)
    return fail(errc::BadRequest,
                "field 'top' applies only to inline-mlir compile requests "
                "(named kernels define their own top)",
                req.id);

  if (flowName == "adaptor")
    req.flowKind = flow::FlowKind::Adaptor;
  else if (flowName == "hls-cpp" || flowName == "hls-c++")
    req.flowKind = flow::FlowKind::HlsCpp;
  else
    return fail(errc::BadRequest,
                strfmt("unknown flow '%s' (expected adaptor|hls-cpp)",
                       flowName.c_str()),
                req.id);

  if (req.estimate && sawMlir)
    return fail(errc::BadRequest,
                "estimate requests need a named kernel (inline MLIR has no "
                "design space)",
                req.id);
  if (req.estimate && req.flowKind != flow::FlowKind::Adaptor)
    return fail(errc::BadRequest,
                "estimate requests use the adaptor flow", req.id);

  return ParsedRequest{true, std::move(req), "", ""};
}

std::string renderCompileRequest(const std::string &id, const Request &req) {
  std::string line =
      strfmt("{\"schema\": \"%s\", \"id\": \"%s\", \"type\": \"compile\"",
             kRequestSchema, json::escape(id).c_str());
  if (!req.mlir.empty()) {
    line += strfmt(", \"mlir\": \"%s\"", json::escape(req.mlir).c_str());
    if (!req.top.empty())
      line += strfmt(", \"top\": \"%s\"", json::escape(req.top).c_str());
  } else {
    line += strfmt(", \"kernel\": \"%s\"", json::escape(req.kernel).c_str());
  }
  line += strfmt(", \"flow\": \"%s\"", flowWireName(req.flowKind));
  line += strfmt(", \"ii\": %lld, \"unroll\": %lld, \"partition\": %lld",
                 static_cast<long long>(req.config.pipelineII),
                 static_cast<long long>(req.config.unrollFactor),
                 static_cast<long long>(req.config.partitionFactor));
  line += strfmt(", \"dataflow\": %s, \"directives\": %s, \"estimate\": %s}",
                 req.config.dataflow ? "true" : "false",
                 req.config.applyDirectives ? "true" : "false",
                 req.estimate ? "true" : "false");
  return line;
}

std::string renderAdminRequest(const std::string &id, RequestType type) {
  const char *name = type == RequestType::Cancel     ? "cancel"
                     : type == RequestType::Ping     ? "ping"
                     : type == RequestType::Shutdown ? "shutdown"
                                                     : "compile";
  return strfmt("{\"schema\": \"%s\", \"id\": \"%s\", \"type\": \"%s\"}",
                kRequestSchema, json::escape(id).c_str(), name);
}

std::string renderAccepted(const std::string &id, int64_t queueDepth) {
  return head(id, "accepted") +
         strfmt(", \"queue_depth\": %lld}",
                static_cast<long long>(queueDepth));
}

std::string renderStage(const std::string &id, const char *stage) {
  return head(id, "stage") + strfmt(", \"stage\": \"%s\"}", stage);
}

std::string renderResult(const std::string &id, const Request &req,
                         const flow::FlowResult &result) {
  const vhls::FunctionReport *top = result.synth.top();
  std::string line = head(id, "result");
  line += strfmt(", \"ok\": true, \"kernel\": \"%s\", \"flow\": \"%s\"",
                 json::escape(result.kernelName).c_str(),
                 flowWireName(req.flowKind));
  line += strfmt(", \"latency_cycles\": %lld, \"dsp\": %lld, \"bram\": "
                 "%lld, \"lut\": %lld, \"ff\": %lld",
                 static_cast<long long>(top ? top->latencyCycles : 0),
                 static_cast<long long>(top ? top->resources.dsp : 0),
                 static_cast<long long>(top ? top->resources.bram : 0),
                 static_cast<long long>(top ? top->resources.lut : 0),
                 static_cast<long long>(top ? top->resources.ff : 0));
  // The synthesis report is itself a validated JSON document, but
  // pretty-printed — compact it so the event stays one NDJSON line.
  line += ", \"report\": " + json::compact(result.synth.json());
  if (!result.hlsCpp.empty())
    line += strfmt(", \"hls_cpp\": \"%s\"",
                   json::escape(result.hlsCpp).c_str());
  line += "}";
  return line;
}

std::string renderEstimateResult(const std::string &id, const Request &req,
                                 int64_t latencyCycles, int64_t dsp,
                                 int64_t bram, int64_t lut, int64_t ff) {
  std::string line = head(id, "result");
  line += strfmt(", \"ok\": true, \"estimate\": true, \"kernel\": \"%s\", "
                 "\"flow\": \"%s\"",
                 json::escape(req.kernel).c_str(), flowWireName(req.flowKind));
  line += strfmt(", \"latency_cycles\": %lld, \"dsp\": %lld, \"bram\": "
                 "%lld, \"lut\": %lld, \"ff\": %lld}",
                 static_cast<long long>(latencyCycles),
                 static_cast<long long>(dsp), static_cast<long long>(bram),
                 static_cast<long long>(lut), static_cast<long long>(ff));
  return line;
}

std::string renderError(const std::string &id, const std::string &code,
                        const std::string &message,
                        bool withAvailableKernels) {
  std::string line = head(id, "error");
  line += strfmt(", \"code\": \"%s\", \"message\": \"%s\"",
                 json::escape(code).c_str(), json::escape(message).c_str());
  if (withAvailableKernels) {
    line += ", \"available_kernels\": [";
    bool first = true;
    for (const flow::KernelSpec &spec : flow::allKernels()) {
      line += strfmt("%s\"%s\"", first ? "" : ", ",
                     json::escape(spec.name).c_str());
      first = false;
    }
    line += "]";
  }
  line += "}";
  return line;
}

std::string renderErrorWithCandidates(
    const std::string &id, const std::string &code,
    const std::string &message,
    const std::vector<std::string> &candidates) {
  std::string line = head(id, "error");
  line += strfmt(", \"code\": \"%s\", \"message\": \"%s\"",
                 json::escape(code).c_str(), json::escape(message).c_str());
  line += ", \"candidates\": [";
  for (size_t i = 0; i < candidates.size(); ++i)
    line += strfmt("%s\"%s\"", i ? ", " : "",
                   json::escape(candidates[i]).c_str());
  line += "]}";
  return line;
}

std::string renderDone(const std::string &id, bool ok,
                       const std::string &code, bool cached, int64_t queueUs,
                       int64_t compileUs) {
  std::string line = head(id, "done");
  line += strfmt(", \"status\": \"%s\"", ok ? "ok" : "error");
  if (!code.empty())
    line += strfmt(", \"code\": \"%s\"", json::escape(code).c_str());
  line += strfmt(", \"cached\": %s, \"queue_us\": %lld, \"compile_us\": "
                 "%lld}",
                 cached ? "true" : "false",
                 static_cast<long long>(queueUs),
                 static_cast<long long>(compileUs));
  return line;
}

std::string renderPong(const std::string &id) { return head(id, "pong") + "}"; }

std::string renderCancelAck(const std::string &id, bool found) {
  return head(id, "cancel_ack") +
         strfmt(", \"found\": %s}", found ? "true" : "false");
}

std::string renderShutdownAck(const std::string &id) {
  return head(id, "shutdown_ack") + "}";
}

} // namespace mha::serve
