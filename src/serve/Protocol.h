// Protocol.h - the mha-serve wire protocol.
//
// Newline-delimited JSON over a Unix-domain stream socket. Every request
// is one JSON object per line (schema "mha.serve.req.v1"); every response
// line is one JSON object (schema "mha.serve.resp.v1") echoing the
// request's id, so a client can multiplex requests over one connection.
//
// Request shape:
//   {"schema":"mha.serve.req.v1","id":"r1","type":"compile",
//    "kernel":"gemm","flow":"adaptor","ii":1,"unroll":2,"partition":2,
//    "dataflow":false,"directives":true,"estimate":false}
//   {"schema":"mha.serve.req.v1","id":"r2","type":"compile",
//    "mlir":"module { ... }","top":"gemm"}
//   {"schema":"mha.serve.req.v1","id":"r1","type":"cancel"}   (id = target)
//   {"schema":"mha.serve.req.v1","id":"p","type":"ping"}
//   {"schema":"mha.serve.req.v1","id":"s","type":"shutdown"}
//
// Parsing is strict: unknown fields, wrong types, out-of-range knob
// values, a missing/foreign schema, kernel+mlir together (or neither) and
// oversized inline MLIR are all rejected with a typed error instead of
// being guessed at — a daemon fed by many clients must fail loudly.
//
// Response events for one compile request, in order:
//   accepted -> stage* -> result -> done          (success)
//   accepted -> stage* -> error  -> done          (failed/cancelled)
//   error -> done                                 (rejected at admission)
// `result` carries the QoR (and the full synthesis report; the emitted
// C++ for the hls-c++ flow) and is byte-deterministic — a warm cache hit
// replays the cold run's result line exactly. Timings (queue_us,
// compile_us) and the cache-hit flag ride on the terminal `done` event so
// they never perturb that equivalence. ping/cancel/shutdown requests are
// answered with single pong/cancel_ack/shutdown_ack events.
#pragma once

#include "flow/Flow.h"

#include <optional>
#include <string>
#include <vector>

namespace mha::serve {

inline constexpr const char *kRequestSchema = "mha.serve.req.v1";
inline constexpr const char *kResponseSchema = "mha.serve.resp.v1";

/// Hard cap on inline MLIR text (bytes). Larger payloads are rejected
/// with `bad_request` before any parsing work happens.
inline constexpr size_t kMaxInlineMlirBytes = 1u << 20;

/// Error codes carried by `error` events and `done.code`.
namespace errc {
inline constexpr const char *ParseError = "parse_error";
inline constexpr const char *BadRequest = "bad_request";
inline constexpr const char *UnknownKernel = "unknown_kernel";
inline constexpr const char *Busy = "busy";
inline constexpr const char *ShuttingDown = "shutting_down";
inline constexpr const char *FlowError = "flow_error";
inline constexpr const char *Cancelled = "cancelled";
/// Inline-MLIR compile with multiple functions and no 'top' field: the
/// daemon refuses to guess and lists the candidates instead.
inline constexpr const char *AmbiguousTop = "ambiguous_top";
} // namespace errc

enum class RequestType { Compile, Cancel, Ping, Shutdown };

struct Request {
  RequestType type = RequestType::Compile;
  std::string id;
  /// Named built-in kernel (empty when `mlir` carries inline text).
  std::string kernel;
  /// Inline MLIR module text (empty when `kernel` names a built-in).
  std::string mlir;
  /// Top function to synthesize from an inline MLIR module. Optional for
  /// single-function modules; required (else errc::AmbiguousTop) when the
  /// module defines several. Only valid together with `mlir`.
  std::string top;
  flow::FlowKind flowKind = flow::FlowKind::Adaptor;
  flow::KernelConfig config;
  /// Analytical QoR estimation instead of synthesis (DSE probe path).
  bool estimate = false;
};

/// Outcome of parsing one request line. When !ok, `errorCode` is
/// errc::ParseError (malformed JSON) or errc::BadRequest (well-formed but
/// invalid), and `request.id` carries the request's id when one could be
/// recovered so the error response can still be correlated.
struct ParsedRequest {
  bool ok = false;
  Request request;
  std::string errorCode;
  std::string errorMessage;
};

ParsedRequest parseRequest(const std::string &line);

/// Canonical request line for a compile request — what mha-client and the
/// load generator send, and the easiest way to build protocol tests.
std::string renderCompileRequest(const std::string &id, const Request &req);
std::string renderAdminRequest(const std::string &id, RequestType type);

// --- Response renderers (one JSON line each, no trailing newline; every
// line is json::validate-clean by construction and covered by tests). ---

std::string renderAccepted(const std::string &id, int64_t queueDepth);
std::string renderStage(const std::string &id, const char *stage);
/// The deterministic result event for a finished flow (see file comment).
std::string renderResult(const std::string &id, const Request &req,
                         const flow::FlowResult &result);
/// Estimate-only result event (analytical QoR, no synthesis report).
std::string renderEstimateResult(const std::string &id, const Request &req,
                                 int64_t latencyCycles, int64_t dsp,
                                 int64_t bram, int64_t lut, int64_t ff);
/// `withAvailableKernels` appends the "available_kernels" array — set for
/// errc::UnknownKernel so a misspelled name teaches the valid ones
/// structurally (not just on some tool's stderr).
std::string renderError(const std::string &id, const std::string &code,
                        const std::string &message,
                        bool withAvailableKernels = false);
/// Error event carrying an explicit "candidates" array — used by
/// errc::AmbiguousTop (the module's function names) and by a 'top' that
/// matches none of them, so a client can retry without guessing.
std::string renderErrorWithCandidates(const std::string &id,
                                      const std::string &code,
                                      const std::string &message,
                                      const std::vector<std::string> &candidates);
std::string renderDone(const std::string &id, bool ok,
                       const std::string &code, bool cached, int64_t queueUs,
                       int64_t compileUs);
std::string renderPong(const std::string &id);
std::string renderCancelAck(const std::string &id, bool found);
std::string renderShutdownAck(const std::string &id);

} // namespace mha::serve
