// Server.h - the mha-serve daemon core: accept loop, admission control,
// request dispatch and graceful shutdown.
//
// One Server owns a Unix-domain listening socket, a reader thread per
// connection and a fixed ThreadPool of compile workers. Admission is a
// simple bounded-outstanding policy: a compile request is admitted while
// fewer than maxInflight + maxQueue admitted requests are still
// unfinished; past that the request is rejected immediately with a typed
// `busy` error — the daemon never blocks a client on a full queue and
// never grows an unbounded backlog. (Outstanding = admitted-but-not-done,
// whether queued or running, which makes the rejection point exact and
// testable rather than racy.)
//
// Cancellation: each admitted request owns an atomic flag; an explicit
// `cancel` request (same connection, same id) or the client disconnecting
// sets it. Flows check the flag at stage boundaries; a request cancelled
// while still queued never starts its flow at all.
//
// Graceful shutdown (SIGINT/SIGTERM via notifyFromSignal(), the
// `shutdown` admin request, or stop()): stop accepting, reject new
// compiles with `shutting_down`, drain outstanding work within drainMs,
// then cancel whatever remains and wait for it to unwind. Every thread is
// joined — nothing is detached — so TSan-observed shutdown is clean and
// the caller can flush metrics/event logs after stop() returns.
#pragma once

#include "serve/Session.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mha::serve {

struct ServerOptions {
  std::string socketPath;
  /// Compile worker threads (also the max concurrently running flows).
  int maxInflight = 2;
  /// Admitted-but-waiting requests allowed beyond the inflight set.
  int maxQueue = 8;
  /// Graceful-drain deadline before outstanding work is cancelled.
  int64_t drainMs = 10000;
  SessionOptions session;
  /// StageCache::setLimitBytes value applied at start() (0 = unbounded).
  int64_t stageCacheLimitBytes = 0;
};

class Server {
public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket (replacing any stale file at the path), applies the
  /// stage-cache limit and spawns the accept thread.
  bool start(std::string *error = nullptr);

  /// Requests graceful shutdown (idempotent, any thread).
  void requestStop();

  /// Async-signal-safe shutdown trigger for SIGINT/SIGTERM handlers: one
  /// write(2) to the server's self-pipe, nothing else.
  void notifyFromSignal();

  /// Blocks until the server has fully shut down (accept loop exited,
  /// every connection and worker joined, socket unlinked).
  void wait();

  /// requestStop() + wait().
  void stop();

  bool running() const;
  const std::string &socketPath() const { return options_.socketPath; }

  /// Structural counters for tests and the load generator (mirrors the
  /// mha_serve_* metrics, readable without enabling metrics).
  struct Stats {
    int64_t connections = 0;
    int64_t admitted = 0;
    int64_t rejectedBusy = 0;
    int64_t rejectedShutdown = 0;
    int64_t completedOk = 0;
    int64_t completedError = 0;
    int64_t cancelled = 0;
  };
  Stats stats() const;

  /// Admitted-but-unfinished requests right now.
  int64_t outstanding() const;

private:
  struct Conn;
  struct Pending;

  void acceptLoop();
  void readerLoop(std::shared_ptr<Conn> conn);
  void handleLine(const std::shared_ptr<Conn> &conn, const std::string &line);
  void runPending(std::shared_ptr<Pending> pending);
  void drainAndJoin();
  static void emitTo(const std::shared_ptr<Conn> &conn,
                     const std::string &line);

  ServerOptions options_;

  int listenFd_ = -1;
  int wakeRead_ = -1;
  int wakeWrite_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> shuttingDown_{false};

  std::thread acceptThread_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
  int64_t outstanding_ = 0;
  Stats stats_;
};

} // namespace mha::serve
