// Printer.h - MiniMLIR textual form.
//
// func.func and builtin.module print in custom syntax; all other ops print
// in MLIR's *generic* form (`%0 = "dialect.op"(%a) ({regions}) {attrs} :
// (types) -> (types)`), which round-trips through mir::parseModule.
#pragma once

#include <string>

namespace mha::mir {

class Operation;
struct ModuleOp;

std::string printModule(ModuleOp module);
std::string printOp(Operation *op);

} // namespace mha::mir
