#include "mir/Ops.h"

#include <cassert>
#include <set>

namespace mha::mir {

std::string FuncOp::name() const {
  const auto *a = cast<StringAttr>(op->attr("sym_name"));
  return a->value();
}

FunctionType *FuncOp::type() const {
  const auto *a = cast<TypeAttr>(op->attr("function_type"));
  return cast<FunctionType>(a->value());
}

FuncOp FuncOp::wrap(Operation *op) {
  assert(op && op->is(ops::Func) && "not a func.func");
  return FuncOp{op};
}

ForOp ForOp::wrap(Operation *op) {
  assert(op && (op->is(ops::AffineFor) || op->is(ops::ScfFor)) &&
         "not a loop op");
  return ForOp{op};
}

ModuleOp ModuleOp::wrap(Operation *op) {
  assert(op && op->is(ops::Module) && "not a module");
  return ModuleOp{op};
}

FuncOp ModuleOp::lookupFunc(const std::string &name) const {
  for (Operation *child : body()->opPtrs())
    if (child->is(ops::Func) && FuncOp::wrap(child).name() == name)
      return FuncOp::wrap(child);
  return FuncOp{};
}

std::vector<FuncOp> ModuleOp::funcs() const {
  std::vector<FuncOp> out;
  for (Operation *child : body()->opPtrs())
    if (child->is(ops::Func))
      out.push_back(FuncOp::wrap(child));
  return out;
}

bool isValidCmpPredicate(const std::string &pred, bool isFloat) {
  static const std::set<std::string> intPreds = {
      "eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"};
  static const std::set<std::string> floatPreds = {"oeq", "one", "olt",
                                                   "ole", "ogt", "oge"};
  return isFloat ? floatPreds.count(pred) > 0 : intPreds.count(pred) > 0;
}

} // namespace mha::mir
