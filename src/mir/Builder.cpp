#include "mir/Builder.h"

#include <cassert>

namespace mha::mir {

Operation *OpBuilder::insert(std::unique_ptr<Operation> op) {
  assert(block_ && "no insertion point");
  if (atEnd_)
    return block_->append(std::move(op));
  return block_->insert(pos_, std::move(op));
}

Operation *OpBuilder::createOp(std::string name, std::vector<Value *> operands,
                               std::vector<Type *> resultTypes) {
  return insert(Operation::create(std::move(name), std::move(operands),
                                  std::move(resultTypes)));
}

Operation *OpBuilder::insertOp(std::unique_ptr<Operation> op) {
  return insert(std::move(op));
}

OwnedModule OpBuilder::createModule() {
  auto op = Operation::create(ops::Module, {}, {});
  op->addRegion()->addBlock();
  return OwnedModule(std::move(op));
}

FuncOp OpBuilder::createFunc(const std::string &name, FunctionType *type) {
  assert(block_ && block_->parentOp() && block_->parentOp()->is(ops::Module) &&
         "functions must be created inside a module body");
  auto op = Operation::create(ops::Func, {}, {});
  op->setAttr("sym_name", ctx_.stringAttr(name));
  op->setAttr("function_type", ctx_.typeAttr(type));
  Block *entry = op->addRegion()->addBlock();
  for (Type *input : type->inputs())
    entry->addArg(input);
  return FuncOp::wrap(block_->append(std::move(op)));
}

Operation *OpBuilder::createReturn(std::vector<Value *> values) {
  return createOp(ops::Return, std::move(values), {});
}

Value *OpBuilder::constantIndex(int64_t value) {
  Operation *op = createOp(ops::ConstantOp, {}, {ctx_.indexTy()});
  op->setAttr("value", ctx_.intAttr(value));
  return op->result();
}

Value *OpBuilder::constantInt(int64_t value, Type *type) {
  Operation *op = createOp(ops::ConstantOp, {}, {type});
  op->setAttr("value", ctx_.intAttr(value));
  return op->result();
}

Value *OpBuilder::constantFloat(double value, Type *type) {
  Operation *op = createOp(ops::ConstantOp, {}, {type});
  op->setAttr("value", ctx_.floatAttr(value));
  return op->result();
}

Value *OpBuilder::binary(const char *opName, Value *lhs, Value *rhs) {
  assert(lhs->type() == rhs->type() && "binary type mismatch");
  return createOp(opName, {lhs, rhs}, {lhs->type()})->result();
}

Value *OpBuilder::cmpi(const std::string &pred, Value *lhs, Value *rhs) {
  assert(isValidCmpPredicate(pred, false));
  Operation *op = createOp(ops::CmpI, {lhs, rhs}, {ctx_.i1()});
  op->setAttr("predicate", ctx_.stringAttr(pred));
  return op->result();
}

Value *OpBuilder::cmpf(const std::string &pred, Value *lhs, Value *rhs) {
  assert(isValidCmpPredicate(pred, true));
  Operation *op = createOp(ops::CmpF, {lhs, rhs}, {ctx_.i1()});
  op->setAttr("predicate", ctx_.stringAttr(pred));
  return op->result();
}

Value *OpBuilder::select(Value *cond, Value *trueV, Value *falseV) {
  return createOp(ops::Select, {cond, trueV, falseV}, {trueV->type()})
      ->result();
}

Value *OpBuilder::indexCast(Value *v, Type *to) {
  return createOp(ops::IndexCast, {v}, {to})->result();
}

Value *OpBuilder::sitofp(Value *v, Type *to) {
  return createOp(ops::SIToFP, {v}, {to})->result();
}

Value *OpBuilder::mathOp(const char *opName, Value *v) {
  return createOp(opName, {v}, {v->type()})->result();
}

Value *OpBuilder::memrefAlloc(MemRefType *type) {
  return createOp(ops::MemRefAlloc, {}, {type})->result();
}

Value *OpBuilder::memrefLoad(Value *memref, std::vector<Value *> indices) {
  auto *mt = cast<MemRefType>(memref->type());
  assert(indices.size() == mt->rank() && "index count mismatch");
  std::vector<Value *> operands{memref};
  operands.insert(operands.end(), indices.begin(), indices.end());
  return createOp(ops::MemRefLoad, std::move(operands), {mt->elementType()})
      ->result();
}

void OpBuilder::memrefStore(Value *value, Value *memref,
                            std::vector<Value *> indices) {
  auto *mt = cast<MemRefType>(memref->type());
  assert(indices.size() == mt->rank() && "index count mismatch");
  (void)mt;
  std::vector<Value *> operands{value, memref};
  operands.insert(operands.end(), indices.begin(), indices.end());
  createOp(ops::MemRefStore, std::move(operands), {});
}

void OpBuilder::memrefCopy(Value *src, Value *dst) {
  createOp(ops::MemRefCopy, {src, dst}, {});
}

ForOp OpBuilder::affineFor(int64_t lb, int64_t ub, int64_t step) {
  Operation *op = createOp(ops::AffineFor, {}, {});
  op->setAttr("lb", ctx_.intAttr(lb));
  op->setAttr("ub", ctx_.intAttr(ub));
  op->setAttr("step", ctx_.intAttr(step));
  Block *body = op->addRegion()->addBlock();
  body->addArg(ctx_.indexTy());
  body->append(Operation::create(ops::AffineYield, {}, {}));
  return ForOp::wrap(op);
}

Value *OpBuilder::affineLoad(Value *memref, const AffineMap &map,
                             std::vector<Value *> mapOperands) {
  auto *mt = cast<MemRefType>(memref->type());
  assert(map.numResults() == mt->rank() && "map result count mismatch");
  assert(map.numDims() == mapOperands.size());
  std::vector<Value *> operands{memref};
  operands.insert(operands.end(), mapOperands.begin(), mapOperands.end());
  Operation *op =
      createOp(ops::AffineLoad, std::move(operands), {mt->elementType()});
  op->setAttr("map", ctx_.affineMapAttr(map));
  return op->result();
}

void OpBuilder::affineStore(Value *value, Value *memref, const AffineMap &map,
                            std::vector<Value *> mapOperands) {
  auto *mt = cast<MemRefType>(memref->type());
  assert(map.numResults() == mt->rank() && "map result count mismatch");
  assert(map.numDims() == mapOperands.size());
  (void)mt;
  std::vector<Value *> operands{value, memref};
  operands.insert(operands.end(), mapOperands.begin(), mapOperands.end());
  Operation *op = createOp(ops::AffineStore, std::move(operands), {});
  op->setAttr("map", ctx_.affineMapAttr(map));
}

Value *OpBuilder::affineApply(const AffineMap &map,
                              std::vector<Value *> operands) {
  assert(map.numResults() == 1 && "affine.apply yields one value");
  Operation *op =
      createOp(ops::AffineApply, std::move(operands), {ctx_.indexTy()});
  op->setAttr("map", ctx_.affineMapAttr(map));
  return op->result();
}

ForOp OpBuilder::scfFor(Value *lb, Value *ub, Value *step) {
  Operation *op = createOp(ops::ScfFor, {lb, ub, step}, {});
  Block *body = op->addRegion()->addBlock();
  body->addArg(ctx_.indexTy());
  body->append(Operation::create(ops::ScfYield, {}, {}));
  return ForOp::wrap(op);
}

void OpBuilder::setInsertPointToLoopBody(ForOp loop) {
  Block *body = loop.bodyBlock();
  assert(!body->empty() && "loop body must have a terminator");
  setInsertPoint(body, body->positionOf(body->back()));
}

} // namespace mha::mir
