// Ops.h - dialect op names, typed op views, and directive conventions.
#pragma once

#include "mir/Operation.h"

#include <optional>

namespace mha::mir {

/// Operation names, grouped by dialect.
namespace ops {
// builtin / func
inline constexpr const char *Module = "builtin.module";
inline constexpr const char *Func = "func.func";
inline constexpr const char *Return = "func.return";
inline constexpr const char *Call = "func.call";
// arith
inline constexpr const char *ConstantOp = "arith.constant";
inline constexpr const char *AddI = "arith.addi";
inline constexpr const char *SubI = "arith.subi";
inline constexpr const char *MulI = "arith.muli";
inline constexpr const char *DivSI = "arith.divsi";
inline constexpr const char *RemSI = "arith.remsi";
inline constexpr const char *AddF = "arith.addf";
inline constexpr const char *SubF = "arith.subf";
inline constexpr const char *MulF = "arith.mulf";
inline constexpr const char *DivF = "arith.divf";
inline constexpr const char *NegF = "arith.negf";
inline constexpr const char *CmpI = "arith.cmpi";
inline constexpr const char *CmpF = "arith.cmpf";
inline constexpr const char *Select = "arith.select";
inline constexpr const char *IndexCast = "arith.index_cast";
inline constexpr const char *SIToFP = "arith.sitofp";
inline constexpr const char *FPToSI = "arith.fptosi";
// math
inline constexpr const char *MathSqrt = "math.sqrt";
inline constexpr const char *MathExp = "math.exp";
inline constexpr const char *MathFabs = "math.absf";
// memref
inline constexpr const char *MemRefAlloc = "memref.alloc";
inline constexpr const char *MemRefLoad = "memref.load";
inline constexpr const char *MemRefStore = "memref.store";
inline constexpr const char *MemRefCopy = "memref.copy";
// affine
inline constexpr const char *AffineFor = "affine.for";
inline constexpr const char *AffineLoad = "affine.load";
inline constexpr const char *AffineStore = "affine.store";
inline constexpr const char *AffineApply = "affine.apply";
inline constexpr const char *AffineYield = "affine.yield";
// scf
inline constexpr const char *ScfFor = "scf.for";
inline constexpr const char *ScfYield = "scf.yield";
} // namespace ops

/// HLS directive attribute keys at the MLIR level (ScaleHLS-style knobs).
namespace hlsattr {
inline constexpr const char *PipelineII = "hls.pipeline";   // IntegerAttr II
inline constexpr const char *Unroll = "hls.unroll";         // IntegerAttr
inline constexpr const char *TripCount = "hls.tripcount";   // IntegerAttr
inline constexpr const char *Dataflow = "hls.dataflow";     // UnitAttr
/// Function attribute: ArrayAttr of [argIdx, dim, factor, "cyclic"|"block"]
/// ArrayAttrs, one per partition directive.
inline constexpr const char *ArrayPartition = "hls.array_partition";
} // namespace hlsattr

/// Typed view over func.func.
struct FuncOp {
  Operation *op = nullptr;

  explicit operator bool() const { return op != nullptr; }
  std::string name() const;
  FunctionType *type() const;
  Region *body() const { return op->region(0); }
  Block *entryBlock() const { return body()->entry(); }
  BlockArgument *arg(unsigned i) const { return entryBlock()->arg(i); }
  unsigned numArgs() const { return entryBlock()->numArgs(); }

  static FuncOp wrap(Operation *op);
};

/// Typed view over affine.for / scf.for.
struct ForOp {
  Operation *op = nullptr;

  explicit operator bool() const { return op != nullptr; }
  bool isAffine() const { return op->is(ops::AffineFor); }
  Block *bodyBlock() const { return op->region(0)->entry(); }
  BlockArgument *inductionVar() const { return bodyBlock()->arg(0); }
  // Affine form: constant bounds as attributes.
  int64_t lowerBound() const { return op->intAttrOr("lb", 0); }
  int64_t upperBound() const { return op->intAttrOr("ub", 0); }
  int64_t step() const { return op->intAttrOr("step", 1); }
  int64_t tripCount() const {
    int64_t span = upperBound() - lowerBound();
    int64_t s = step();
    return span <= 0 ? 0 : (span + s - 1) / s;
  }

  std::optional<int64_t> pipelineII() const {
    if (const auto *a = dyn_cast<IntegerAttr>(op->attr(hlsattr::PipelineII)))
      return a->value();
    return std::nullopt;
  }
  std::optional<int64_t> unrollFactor() const {
    if (const auto *a = dyn_cast<IntegerAttr>(op->attr(hlsattr::Unroll)))
      return a->value();
    return std::nullopt;
  }

  static ForOp wrap(Operation *op);
};

/// The module wrapper: single region, single block of func ops.
struct ModuleOp {
  Operation *op = nullptr;

  explicit operator bool() const { return op != nullptr; }
  Block *body() const { return op->region(0)->entry(); }
  FuncOp lookupFunc(const std::string &name) const;
  std::vector<FuncOp> funcs() const;

  static ModuleOp wrap(Operation *op);
};

/// An owned module (top-level ops are not nested in a block).
class OwnedModule {
public:
  OwnedModule(std::unique_ptr<Operation> op) : op_(std::move(op)) {}
  ModuleOp get() const { return ModuleOp::wrap(op_.get()); }
  Operation *rawOp() const { return op_.get(); }

private:
  std::unique_ptr<Operation> op_;
};

/// Comparison predicate names used by arith.cmpi/cmpf ("slt", "olt", ...).
bool isValidCmpPredicate(const std::string &pred, bool isFloat);

} // namespace mha::mir
