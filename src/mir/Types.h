// Types.h - the MiniMLIR type system (multi-level IR side).
//
// Mirrors the MLIR types an HLS flow touches: index, iN, f32/f64, and
// statically-shaped memrefs. Types are uniqued in the MContext.
#pragma once

#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mha::mir {

class MContext;

class Type {
public:
  enum class Kind {
    Index,
    Integer,
    Float,  // f32
    Double, // f64
    MemRef,
    Function,
    None,
  };

  Kind kind() const { return kind_; }
  MContext &context() const { return ctx_; }

  bool isIndex() const { return kind_ == Kind::Index; }
  bool isInteger() const { return kind_ == Kind::Integer; }
  bool isIntOrIndex() const { return isInteger() || isIndex(); }
  bool isFloat() const {
    return kind_ == Kind::Float || kind_ == Kind::Double;
  }
  bool isMemRef() const { return kind_ == Kind::MemRef; }

  std::string str() const;

protected:
  Type(MContext &ctx, Kind kind) : ctx_(ctx), kind_(kind) {}
  ~Type() = default;

private:
  MContext &ctx_;
  Kind kind_;
};

class IntegerType : public Type {
public:
  unsigned width() const { return width_; }
  static bool classof(const Type *t) { return t->kind() == Kind::Integer; }

private:
  friend class MContext;
  IntegerType(MContext &ctx, unsigned width)
      : Type(ctx, Kind::Integer), width_(width) {}
  unsigned width_;
};

/// Statically shaped, contiguous, row-major memref.
class MemRefType : public Type {
public:
  const std::vector<int64_t> &shape() const { return shape_; }
  Type *elementType() const { return element_; }
  unsigned rank() const { return static_cast<unsigned>(shape_.size()); }
  int64_t numElements() const {
    int64_t n = 1;
    for (int64_t d : shape_)
      n *= d;
    return n;
  }
  /// Row-major strides (innermost = 1).
  std::vector<int64_t> strides() const {
    std::vector<int64_t> s(shape_.size(), 1);
    for (int i = static_cast<int>(shape_.size()) - 2; i >= 0; --i)
      s[i] = s[i + 1] * shape_[i + 1];
    return s;
  }

  static bool classof(const Type *t) { return t->kind() == Kind::MemRef; }

private:
  friend class MContext;
  MemRefType(MContext &ctx, std::vector<int64_t> shape, Type *element)
      : Type(ctx, Kind::MemRef), shape_(std::move(shape)), element_(element) {}
  std::vector<int64_t> shape_;
  Type *element_;
};

class FunctionType : public Type {
public:
  const std::vector<Type *> &inputs() const { return inputs_; }
  const std::vector<Type *> &results() const { return results_; }

  static bool classof(const Type *t) { return t->kind() == Kind::Function; }

private:
  friend class MContext;
  FunctionType(MContext &ctx, std::vector<Type *> inputs,
               std::vector<Type *> results)
      : Type(ctx, Kind::Function), inputs_(std::move(inputs)),
        results_(std::move(results)) {}
  std::vector<Type *> inputs_;
  std::vector<Type *> results_;
};

} // namespace mha::mir
