// Attributes.h - uniqued, immutable operation attributes.
#pragma once

#include "mir/AffineExpr.h"
#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mha::mir {

class MContext;
class Type;

class Attribute {
public:
  enum class Kind { Integer, Float, String, Type, Array, AffineMap, Unit };

  Kind kind() const { return kind_; }
  std::string str() const;

protected:
  explicit Attribute(Kind kind) : kind_(kind) {}
  ~Attribute() = default;

private:
  Kind kind_;
};

class IntegerAttr : public Attribute {
public:
  int64_t value() const { return value_; }
  static bool classof(const Attribute *a) {
    return a->kind() == Kind::Integer;
  }

private:
  friend class MContext;
  explicit IntegerAttr(int64_t value)
      : Attribute(Kind::Integer), value_(value) {}
  int64_t value_;
};

class FloatAttr : public Attribute {
public:
  double value() const { return value_; }
  static bool classof(const Attribute *a) { return a->kind() == Kind::Float; }

private:
  friend class MContext;
  explicit FloatAttr(double value) : Attribute(Kind::Float), value_(value) {}
  double value_;
};

class StringAttr : public Attribute {
public:
  const std::string &value() const { return value_; }
  static bool classof(const Attribute *a) { return a->kind() == Kind::String; }

private:
  friend class MContext;
  explicit StringAttr(std::string value)
      : Attribute(Kind::String), value_(std::move(value)) {}
  std::string value_;
};

class TypeAttr : public Attribute {
public:
  Type *value() const { return value_; }
  static bool classof(const Attribute *a) { return a->kind() == Kind::Type; }

private:
  friend class MContext;
  explicit TypeAttr(Type *value) : Attribute(Kind::Type), value_(value) {}
  Type *value_;
};

class ArrayAttr : public Attribute {
public:
  const std::vector<const Attribute *> &value() const { return value_; }
  static bool classof(const Attribute *a) { return a->kind() == Kind::Array; }

private:
  friend class MContext;
  explicit ArrayAttr(std::vector<const Attribute *> value)
      : Attribute(Kind::Array), value_(std::move(value)) {}
  std::vector<const Attribute *> value_;
};

class AffineMapAttr : public Attribute {
public:
  const AffineMap &value() const { return value_; }
  static bool classof(const Attribute *a) {
    return a->kind() == Kind::AffineMap;
  }

private:
  friend class MContext;
  explicit AffineMapAttr(AffineMap value)
      : Attribute(Kind::AffineMap), value_(std::move(value)) {}
  AffineMap value_;
};

class UnitAttr : public Attribute {
public:
  static bool classof(const Attribute *a) { return a->kind() == Kind::Unit; }

private:
  friend class MContext;
  UnitAttr() : Attribute(Kind::Unit) {}
};

} // namespace mha::mir
