// Operation.h - generic MiniMLIR operations, blocks, regions, values.
//
// Like MLIR, every op is a generic Operation carrying a name
// ("affine.for"), operands, results, an attribute dictionary and nested
// regions. Dialect "op classes" (Ops.h) are thin views over this.
#pragma once

#include "mir/Attributes.h"
#include "mir/Types.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mha::mir {

class Block;
class Operation;
class OpOperand;
class Region;

class Value {
public:
  enum class Kind { OpResult, BlockArgument };
  virtual ~Value() = default;

  Kind valueKind() const { return kind_; }
  Type *type() const { return type_; }
  void setType(Type *type) { type_ = type; }

  const std::vector<OpOperand *> &uses() const { return uses_; }
  bool hasUses() const { return !uses_.empty(); }
  void replaceAllUsesWith(Value *replacement);

  /// The op defining this value, or nullptr for block arguments.
  Operation *definingOp() const;

protected:
  Value(Kind kind, Type *type) : kind_(kind), type_(type) {}

private:
  friend class OpOperand;
  Kind kind_;
  Type *type_;
  std::vector<OpOperand *> uses_;
};

class OpResult : public Value {
public:
  OpResult(Type *type, Operation *owner, unsigned index)
      : Value(Kind::OpResult, type), owner_(owner), index_(index) {}
  Operation *owner() const { return owner_; }
  unsigned index() const { return index_; }
  static bool classof(const Value *v) {
    return v->valueKind() == Kind::OpResult;
  }

private:
  Operation *owner_;
  unsigned index_;
};

class BlockArgument : public Value {
public:
  BlockArgument(Type *type, Block *owner, unsigned index)
      : Value(Kind::BlockArgument, type), owner_(owner), index_(index) {}
  Block *owner() const { return owner_; }
  unsigned index() const { return index_; }
  static bool classof(const Value *v) {
    return v->valueKind() == Kind::BlockArgument;
  }

private:
  Block *owner_;
  unsigned index_;
};

class OpOperand {
public:
  OpOperand(Operation *owner, unsigned index) : owner_(owner), index_(index) {}
  ~OpOperand() { set(nullptr); }
  OpOperand(const OpOperand &) = delete;
  OpOperand &operator=(const OpOperand &) = delete;

  Value *get() const { return value_; }
  Operation *owner() const { return owner_; }
  unsigned index() const { return index_; }

  void set(Value *value) {
    if (value_ == value)
      return;
    if (value_) {
      auto &uses = value_->uses_;
      uses.erase(std::find(uses.begin(), uses.end(), this));
    }
    value_ = value;
    if (value_)
      value_->uses_.push_back(this);
  }

private:
  Value *value_ = nullptr;
  Operation *owner_;
  unsigned index_;
};

class Operation {
public:
  using AttrMap = std::map<std::string, const Attribute *>;

  /// Creates a detached op; insert via Block::append/insert.
  static std::unique_ptr<Operation> create(std::string name,
                                           std::vector<Value *> operands,
                                           std::vector<Type *> resultTypes);
  ~Operation();

  const std::string &name() const { return name_; }
  bool is(const char *opName) const { return name_ == opName; }

  Block *parentBlock() const { return block_; }
  Operation *parentOp() const;

  // --- Operands ---
  unsigned numOperands() const { return static_cast<unsigned>(ops_.size()); }
  Value *operand(unsigned i) const { return ops_[i]->get(); }
  void setOperand(unsigned i, Value *v) { ops_[i]->set(v); }
  void addOperand(Value *v) {
    ops_.push_back(std::make_unique<OpOperand>(this, numOperands()));
    ops_.back()->set(v);
  }
  std::vector<Value *> operandValues() const {
    std::vector<Value *> out;
    for (const auto &o : ops_)
      out.push_back(o->get());
    return out;
  }
  void dropAllOperands() { ops_.clear(); }

  // --- Results ---
  unsigned numResults() const {
    return static_cast<unsigned>(results_.size());
  }
  OpResult *result(unsigned i = 0) const { return results_[i].get(); }

  // --- Attributes ---
  const AttrMap &attrs() const { return attrs_; }
  const Attribute *attr(const std::string &key) const {
    auto it = attrs_.find(key);
    return it == attrs_.end() ? nullptr : it->second;
  }
  void setAttr(const std::string &key, const Attribute *value) {
    attrs_[key] = value;
  }
  void removeAttr(const std::string &key) { attrs_.erase(key); }
  /// Typed accessor: integer attribute value or `fallback`.
  int64_t intAttrOr(const std::string &key, int64_t fallback) const;

  // --- Regions ---
  unsigned numRegions() const {
    return static_cast<unsigned>(regions_.size());
  }
  Region *region(unsigned i = 0) const { return regions_[i].get(); }
  Region *addRegion();

  /// Unlinks from the parent block and destroys the op (and its regions).
  void eraseFromParent();
  /// Unlinks, returning ownership.
  std::unique_ptr<Operation> removeFromParent();

  /// Recursively visits this op and every nested op (pre-order).
  void walk(const std::function<void(Operation *)> &fn);

  /// Deep-clones the op (attributes, regions). Operands are remapped
  /// through `valueMap` when present (otherwise kept as-is); results and
  /// nested block arguments of the clone are registered into `valueMap`.
  std::unique_ptr<Operation> clone(std::map<Value *, Value *> &valueMap) const;

private:
  friend class Block;
  explicit Operation(std::string name) : name_(std::move(name)) {}

  std::string name_;
  Block *block_ = nullptr;
  std::vector<std::unique_ptr<OpOperand>> ops_;
  std::vector<std::unique_ptr<OpResult>> results_;
  AttrMap attrs_;
  std::vector<std::unique_ptr<Region>> regions_;
};

class Block {
public:
  using OpList = std::list<std::unique_ptr<Operation>>;
  using iterator = OpList::iterator;

  Region *parentRegion() const { return region_; }
  Operation *parentOp() const;

  // --- Arguments ---
  unsigned numArgs() const { return static_cast<unsigned>(args_.size()); }
  BlockArgument *arg(unsigned i) const { return args_[i].get(); }
  BlockArgument *addArg(Type *type) {
    args_.push_back(std::make_unique<BlockArgument>(type, this, numArgs()));
    return args_.back().get();
  }

  // --- Operations ---
  iterator begin() { return ops_.begin(); }
  iterator end() { return ops_.end(); }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  Operation *front() { return ops_.front().get(); }
  Operation *back() { return ops_.back().get(); }

  Operation *append(std::unique_ptr<Operation> op);
  Operation *insert(iterator pos, std::unique_ptr<Operation> op);
  iterator positionOf(Operation *op);
  std::vector<Operation *> opPtrs() const;

private:
  friend class Region;
  friend class Operation;
  Region *region_ = nullptr;
  std::vector<std::unique_ptr<BlockArgument>> args_;
  OpList ops_;
};

class Region {
public:
  using BlockList = std::list<std::unique_ptr<Block>>;

  Operation *parentOp() const { return op_; }

  bool empty() const { return blocks_.empty(); }
  Block *entry() { return blocks_.front().get(); }
  Block *addBlock();
  BlockList::iterator begin() { return blocks_.begin(); }
  BlockList::iterator end() { return blocks_.end(); }

private:
  friend class Operation;
  Operation *op_ = nullptr;
  BlockList blocks_;
};

} // namespace mha::mir
