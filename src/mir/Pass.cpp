#include "mir/Pass.h"

#include "mir/Ops.h"
#include "mir/Verifier.h"
#include "support/StringUtils.h"

#include <chrono>

namespace mha::mir {

bool MPassManager::run(ModuleOp module, DiagnosticEngine &diags) {
  records_.clear();
  for (auto &pass : passes_) {
    MPassRecord record;
    record.passName = pass->name();
    auto start = std::chrono::steady_clock::now();
    record.changed = pass->run(module, record.stats, diags);
    auto end = std::chrono::steady_clock::now();
    record.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    records_.push_back(std::move(record));
    if (diags.hadError()) {
      diags.note(strfmt("MLIR pipeline aborted after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
    if (verifyEach_ && !verifyModule(module, diags)) {
      diags.note(strfmt("MLIR verification failed after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
  }
  return true;
}

} // namespace mha::mir
