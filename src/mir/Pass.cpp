#include "mir/Pass.h"

#include "mir/Ops.h"
#include "mir/Verifier.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

namespace mha::mir {

int64_t countOps(ModuleOp module) {
  int64_t ops = 0;
  module.op->walk([&](Operation *) { ++ops; });
  return ops;
}

bool MPassManager::run(ModuleOp module, DiagnosticEngine &diags) {
  records_.clear();
  telemetry::Tracer &tracer = telemetry::Tracer::global();
  for (auto &pass : passes_) {
    MPassRecord record;
    record.passName = pass->name();
    record.opsBefore = countOps(module);
    for (MPassInstrumentation *instrumentation : instrumentations_)
      instrumentation->beforePass(*pass, module);
    telemetry::Span span(record.passName, "mir-pass");
    record.changed = pass->run(module, record.stats, diags);
    record.millis = span.finish();
    metrics::recordPassDuration("mir", record.passName,
                                static_cast<int64_t>(record.millis * 1000.0));
    record.opsAfter = countOps(module);
    if (tracer.timePassesEnabled())
      tracer.recordPassTime("mir", record.passName, record.millis,
                            record.changed);
    for (auto it = instrumentations_.rbegin(); it != instrumentations_.rend();
         ++it)
      (*it)->afterPass(*pass, module, record);
    records_.push_back(std::move(record));
    if (diags.hadError()) {
      diags.note(strfmt("MLIR pipeline aborted after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
    if (verifyEach_ && !verifyModule(module, diags)) {
      diags.note(strfmt("MLIR verification failed after pass '%s'",
                        pass->name().c_str()));
      return false;
    }
  }
  return true;
}

} // namespace mha::mir
