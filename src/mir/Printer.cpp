#include "mir/Printer.h"

#include "mir/Ops.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace mha::mir {

namespace {

class PrintState {
public:
  std::string nameOf(Value *v) {
    auto it = names_.find(v);
    if (it != names_.end())
      return it->second;
    std::string name = strfmt("%%%u", next_++);
    names_[v] = name;
    return name;
  }

  void nameBlockArg(Value *v, const std::string &name) { names_[v] = name; }

private:
  std::map<Value *, std::string> names_;
  unsigned next_ = 0;
};

std::string attrStr(const Attribute *attr) {
  switch (attr->kind()) {
  case Attribute::Kind::Integer:
    return strfmt("%lld",
                  static_cast<long long>(cast<IntegerAttr>(attr)->value()));
  case Attribute::Kind::Float:
    // Shortest round-trip form via to_chars: exact and locale-independent
    // (%f/%g obey LC_NUMERIC and emit ',' decimals under e.g. de_DE).
    return json::shortestDouble(cast<FloatAttr>(attr)->value());
  case Attribute::Kind::String:
    return "\"" + cast<StringAttr>(attr)->value() + "\"";
  case Attribute::Kind::Type:
    return "type(" + cast<TypeAttr>(attr)->value()->str() + ")";
  case Attribute::Kind::Array: {
    std::string out = "[";
    const auto &elems = cast<ArrayAttr>(attr)->value();
    for (size_t i = 0; i < elems.size(); ++i) {
      if (i)
        out += ", ";
      out += attrStr(elems[i]);
    }
    return out + "]";
  }
  case Attribute::Kind::AffineMap:
    return "affine_map<" + cast<AffineMapAttr>(attr)->value().str() + ">";
  case Attribute::Kind::Unit:
    return "unit";
  }
  return "<?>";
}

std::string attrDictStr(const Operation::AttrMap &attrs,
                        const std::vector<std::string> &skip = {}) {
  std::string out;
  bool any = false;
  for (const auto &[key, value] : attrs) {
    if (std::find(skip.begin(), skip.end(), key) != skip.end())
      continue;
    if (any)
      out += ", ";
    any = true;
    out += key + " = " + attrStr(value);
  }
  if (!any)
    return "";
  return "{" + out + "}";
}

class Printer {
public:
  explicit Printer(std::ostringstream &os) : os_(os) {}

  void printModuleOp(Operation *op) {
    os_ << "builtin.module {\n";
    for (Operation *child : ModuleOp::wrap(op).body()->opPtrs()) {
      printIndent(1);
      printAnyOp(child, 1);
    }
    os_ << "}\n";
  }

  void printAnyOp(Operation *op, int indent) {
    if (op->is(ops::Func)) {
      printFuncOp(op, indent);
      return;
    }
    printGenericOp(op, indent);
  }

private:
  void printIndent(int indent) {
    for (int i = 0; i < indent; ++i)
      os_ << "  ";
  }

  void printFuncOp(Operation *op, int indent) {
    FuncOp fn = FuncOp::wrap(op);
    os_ << "func.func @" << fn.name() << "(";
    for (unsigned i = 0; i < fn.numArgs(); ++i) {
      if (i)
        os_ << ", ";
      std::string name = strfmt("%%arg%u", i);
      state_.nameBlockArg(fn.arg(i), name);
      os_ << name << ": " << fn.arg(i)->type()->str();
    }
    os_ << ")";
    std::string attrs =
        attrDictStr(op->attrs(), {"sym_name", "function_type"});
    if (!attrs.empty())
      os_ << " attributes " << attrs;
    os_ << " {\n";
    for (Operation *child : fn.entryBlock()->opPtrs()) {
      printIndent(indent + 1);
      printAnyOp(child, indent + 1);
    }
    printIndent(indent);
    os_ << "}\n";
  }

  void printGenericOp(Operation *op, int indent) {
    if (op->numResults()) {
      for (unsigned i = 0; i < op->numResults(); ++i) {
        if (i)
          os_ << ", ";
        os_ << state_.nameOf(op->result(i));
      }
      os_ << " = ";
    }
    os_ << "\"" << op->name() << "\"(";
    for (unsigned i = 0; i < op->numOperands(); ++i) {
      if (i)
        os_ << ", ";
      os_ << state_.nameOf(op->operand(i));
    }
    os_ << ")";
    if (op->numRegions()) {
      os_ << " (";
      for (unsigned r = 0; r < op->numRegions(); ++r) {
        if (r)
          os_ << ", ";
        printRegion(op->region(r), indent);
      }
      os_ << ")";
    }
    std::string attrs = attrDictStr(op->attrs());
    if (!attrs.empty())
      os_ << " " << attrs;
    // Trailing type signature.
    os_ << " : (";
    for (unsigned i = 0; i < op->numOperands(); ++i) {
      if (i)
        os_ << ", ";
      os_ << op->operand(i)->type()->str();
    }
    os_ << ") -> (";
    for (unsigned i = 0; i < op->numResults(); ++i) {
      if (i)
        os_ << ", ";
      os_ << op->result(i)->type()->str();
    }
    os_ << ")\n";
  }

  void printRegion(Region *region, int indent) {
    os_ << "{\n";
    for (auto &block : *region) {
      if (block->numArgs()) {
        printIndent(indent + 1);
        os_ << "^bb(";
        for (unsigned i = 0; i < block->numArgs(); ++i) {
          if (i)
            os_ << ", ";
          os_ << state_.nameOf(block->arg(i)) << ": "
              << block->arg(i)->type()->str();
        }
        os_ << "):\n";
      }
      for (Operation *child : block->opPtrs()) {
        printIndent(indent + 1);
        printAnyOp(child, indent + 1);
      }
    }
    printIndent(indent);
    os_ << "}";
  }

  std::ostringstream &os_;
  PrintState state_;
};

} // namespace

std::string printModule(ModuleOp module) {
  std::ostringstream os;
  Printer(os).printModuleOp(module.op);
  return os.str();
}

std::string printOp(Operation *op) {
  std::ostringstream os;
  Printer printer(os);
  printer.printAnyOp(op, 0);
  return os.str();
}

} // namespace mha::mir
