#include "mir/Operation.h"

#include "support/Compiler.h"

namespace mha::mir {

void Value::replaceAllUsesWith(Value *replacement) {
  assert(replacement != this);
  std::vector<OpOperand *> snapshot = uses_;
  for (OpOperand *use : snapshot)
    use->set(replacement);
}

Operation *Value::definingOp() const {
  if (const auto *res = dyn_cast<OpResult>(this))
    return res->owner();
  return nullptr;
}

std::unique_ptr<Operation> Operation::create(std::string name,
                                             std::vector<Value *> operands,
                                             std::vector<Type *> resultTypes) {
  std::unique_ptr<Operation> op(new Operation(std::move(name)));
  for (Value *v : operands)
    op->addOperand(v);
  for (unsigned i = 0; i < resultTypes.size(); ++i)
    op->results_.push_back(
        std::make_unique<OpResult>(resultTypes[i], op.get(), i));
  return op;
}

Operation::~Operation() {
  // Nested ops (at ANY depth) may use values defined by sibling ops, block
  // args, or values from enclosing scopes; sever every operand edge inside
  // our regions before the regions are destroyed.
  for (auto &region : regions_)
    for (auto &block : *region)
      for (Operation *op : block->opPtrs())
        op->walk([](Operation *nested) { nested->dropAllOperands(); });
}

Operation *Operation::parentOp() const {
  return block_ ? block_->parentOp() : nullptr;
}

int64_t Operation::intAttrOr(const std::string &key, int64_t fallback) const {
  const auto *a = dyn_cast<IntegerAttr>(attr(key));
  return a ? a->value() : fallback;
}

Region *Operation::addRegion() {
  auto region = std::make_unique<Region>();
  region->op_ = this;
  regions_.push_back(std::move(region));
  return regions_.back().get();
}

void Operation::eraseFromParent() {
  assert(block_ && "op has no parent");
  Block *bb = block_;
  for (auto it = bb->ops_.begin(); it != bb->ops_.end(); ++it) {
    if (it->get() == this) {
      dropAllOperands();
      bb->ops_.erase(it);
      return;
    }
  }
  unreachable("op not found in parent block");
}

std::unique_ptr<Operation> Operation::removeFromParent() {
  assert(block_ && "op has no parent");
  Block *bb = block_;
  for (auto it = bb->ops_.begin(); it != bb->ops_.end(); ++it) {
    if (it->get() == this) {
      auto owned = std::move(*it);
      bb->ops_.erase(it);
      owned->block_ = nullptr;
      return owned;
    }
  }
  unreachable("op not found in parent block");
}

std::unique_ptr<Operation>
Operation::clone(std::map<Value *, Value *> &valueMap) const {
  std::vector<Value *> newOperands;
  newOperands.reserve(ops_.size());
  for (const auto &use : ops_) {
    Value *v = use->get();
    auto it = valueMap.find(v);
    newOperands.push_back(it == valueMap.end() ? v : it->second);
  }
  std::vector<Type *> resultTypes;
  for (const auto &res : results_)
    resultTypes.push_back(res->type());
  auto copy = Operation::create(name_, std::move(newOperands),
                                std::move(resultTypes));
  copy->attrs_ = attrs_;
  for (unsigned i = 0; i < numResults(); ++i)
    valueMap[results_[i].get()] = copy->results_[i].get();
  for (const auto &region : regions_) {
    Region *newRegion = copy->addRegion();
    for (const auto &block : *const_cast<Region *>(region.get())) {
      Block *newBlock = newRegion->addBlock();
      for (unsigned i = 0; i < block->numArgs(); ++i) {
        BlockArgument *newArg = newBlock->addArg(block->arg(i)->type());
        valueMap[block->arg(i)] = newArg;
      }
      for (Operation *child : block->opPtrs())
        newBlock->append(child->clone(valueMap));
    }
  }
  return copy;
}

void Operation::walk(const std::function<void(Operation *)> &fn) {
  fn(this);
  for (auto &region : regions_)
    for (auto &block : *region)
      for (Operation *op : block->opPtrs())
        op->walk(fn);
}

Operation *Block::parentOp() const {
  return region_ ? region_->parentOp() : nullptr;
}

Operation *Block::append(std::unique_ptr<Operation> op) {
  op->block_ = this;
  ops_.push_back(std::move(op));
  return ops_.back().get();
}

Operation *Block::insert(iterator pos, std::unique_ptr<Operation> op) {
  op->block_ = this;
  return ops_.insert(pos, std::move(op))->get();
}

Block::iterator Block::positionOf(Operation *op) {
  for (auto it = ops_.begin(); it != ops_.end(); ++it)
    if (it->get() == op)
      return it;
  unreachable("op not in block");
}

std::vector<Operation *> Block::opPtrs() const {
  std::vector<Operation *> out;
  out.reserve(ops_.size());
  for (const auto &op : ops_)
    out.push_back(op.get());
  return out;
}

Block *Region::addBlock() {
  auto block = std::make_unique<Block>();
  block->region_ = this;
  blocks_.push_back(std::move(block));
  return blocks_.back().get();
}

} // namespace mha::mir
