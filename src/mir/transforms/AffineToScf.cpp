#include "mir/transforms/MirTransforms.h"

#include "support/Compiler.h"

namespace mha::mir {

Value *expandAffineExpr(OpBuilder &builder, const AffineExpr *expr,
                        const std::vector<Value *> &dims) {
  switch (expr->kind()) {
  case AffineExpr::Kind::Constant:
    return builder.constantIndex(expr->value());
  case AffineExpr::Kind::Dim:
    return dims.at(static_cast<size_t>(expr->value()));
  case AffineExpr::Kind::Symbol:
    unreachable("symbols are not used by the kernel generators");
  case AffineExpr::Kind::Add:
    return builder.binary(ops::AddI,
                          expandAffineExpr(builder, expr->lhs(), dims),
                          expandAffineExpr(builder, expr->rhs(), dims));
  case AffineExpr::Kind::Mul:
    return builder.binary(ops::MulI,
                          expandAffineExpr(builder, expr->lhs(), dims),
                          expandAffineExpr(builder, expr->rhs(), dims));
  case AffineExpr::Kind::Mod:
    // Loop IVs are non-negative here, so remsi == euclidean mod.
    return builder.binary(ops::RemSI,
                          expandAffineExpr(builder, expr->lhs(), dims),
                          expandAffineExpr(builder, expr->rhs(), dims));
  case AffineExpr::Kind::FloorDiv:
    return builder.binary(ops::DivSI,
                          expandAffineExpr(builder, expr->lhs(), dims),
                          expandAffineExpr(builder, expr->rhs(), dims));
  case AffineExpr::Kind::CeilDiv: {
    // (a + b - 1) / b for non-negative a.
    Value *a = expandAffineExpr(builder, expr->lhs(), dims);
    Value *b = expandAffineExpr(builder, expr->rhs(), dims);
    Value *bm1 = builder.binary(ops::SubI, b, builder.constantIndex(1));
    Value *sum = builder.binary(ops::AddI, a, bm1);
    return builder.binary(ops::DivSI, sum, b);
  }
  }
  unreachable("bad affine expr kind");
}

namespace {

class AffineToScf : public MPass {
public:
  std::string name() const override { return "affine-to-scf"; }

  bool run(ModuleOp module, MPassStats &stats, DiagnosticEngine &) override {
    ctx_ = nullptr;
    bool changed = false;
    for (FuncOp fn : module.funcs()) {
      ctx_ = &fn.type()->context();
      changed |= convertBlock(fn.entryBlock(), stats);
    }
    return changed;
  }

private:
  bool convertBlock(Block *block, MPassStats &stats) {
    bool changed = false;
    for (Operation *op : block->opPtrs()) {
      if (op->is(ops::AffineFor)) {
        // Convert nested structure first.
        changed |= convertBlock(op->region(0)->entry(), stats);
        convertFor(op, stats);
        changed = true;
      } else if (op->is(ops::AffineLoad) || op->is(ops::AffineStore)) {
        convertAccess(op, stats);
        changed = true;
      } else if (op->is(ops::AffineApply)) {
        convertApply(op, stats);
        changed = true;
      } else {
        for (unsigned r = 0; r < op->numRegions(); ++r)
          for (auto &nested : *op->region(r))
            changed |= convertBlock(nested.get(), stats);
      }
    }
    return changed;
  }

  void convertFor(Operation *op, MPassStats &stats) {
    ForOp loop = ForOp::wrap(op);
    OpBuilder builder(*ctx_);
    builder.setInsertPointBefore(op);
    Value *lb = builder.constantIndex(loop.lowerBound());
    Value *ub = builder.constantIndex(loop.upperBound());
    Value *step = builder.constantIndex(loop.step());
    ForOp scfLoop = builder.scfFor(lb, ub, step);
    // Carry the HLS directive attrs and a tripcount hint.
    for (const auto &[key, value] : op->attrs())
      if (key != "lb" && key != "ub" && key != "step")
        scfLoop.op->setAttr(key, value);
    scfLoop.op->setAttr(hlsattr::TripCount,
                        ctx_->intAttr(loop.tripCount()));

    // Move body ops (except the terminator) into the scf body.
    Block *oldBody = loop.bodyBlock();
    Block *newBody = scfLoop.bodyBlock();
    oldBody->arg(0)->replaceAllUsesWith(newBody->arg(0));
    auto insertPos = newBody->positionOf(newBody->back());
    for (Operation *child : oldBody->opPtrs()) {
      if (child->is(ops::AffineYield)) {
        child->eraseFromParent();
        continue;
      }
      newBody->insert(insertPos, child->removeFromParent());
    }
    op->eraseFromParent();
    stats["affine-to-scf.loops"]++;
  }

  void convertAccess(Operation *op, MPassStats &stats) {
    bool isStore = op->is(ops::AffineStore);
    unsigned memrefIdx = isStore ? 1 : 0;
    Value *memref = op->operand(memrefIdx);
    const AffineMap &map = cast<AffineMapAttr>(op->attr("map"))->value();

    std::vector<Value *> dims;
    for (unsigned i = memrefIdx + 1; i < op->numOperands(); ++i)
      dims.push_back(op->operand(i));

    OpBuilder builder(*ctx_);
    builder.setInsertPointBefore(op);
    std::vector<Value *> indices;
    for (const AffineExpr *expr : map.results())
      indices.push_back(expandAffineExpr(builder, expr, dims));

    if (isStore) {
      builder.memrefStore(op->operand(0), memref, indices);
    } else {
      Value *loaded = builder.memrefLoad(memref, indices);
      op->result()->replaceAllUsesWith(loaded);
    }
    op->eraseFromParent();
    stats["affine-to-scf.accesses"]++;
  }

  void convertApply(Operation *op, MPassStats &stats) {
    const AffineMap &map = cast<AffineMapAttr>(op->attr("map"))->value();
    OpBuilder builder(*ctx_);
    builder.setInsertPointBefore(op);
    Value *expanded =
        expandAffineExpr(builder, map.results()[0], op->operandValues());
    op->result()->replaceAllUsesWith(expanded);
    op->eraseFromParent();
    stats["affine-to-scf.applies"]++;
  }

  MContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<MPass> createAffineToScfPass() {
  return std::make_unique<AffineToScf>();
}

} // namespace mha::mir
