#include "mir/transforms/MirTransforms.h"

namespace mha::mir {

bool unrollAffineLoop(ForOp loop, int64_t factor) {
  if (factor <= 1)
    return true;
  if (!loop.isAffine())
    return false;
  int64_t trip = loop.tripCount();
  if (trip <= 0 || trip % factor != 0)
    return false;

  MContext &ctx = loop.inductionVar()->type()->context();
  Block *body = loop.bodyBlock();
  Operation *yield = body->back();
  BlockArgument *iv = loop.inductionVar();
  int64_t step = loop.step();

  // Snapshot the original body ops (excluding the terminator).
  std::vector<Operation *> original;
  for (Operation *op : body->opPtrs())
    if (op != yield)
      original.push_back(op);

  OpBuilder builder(ctx);
  for (int64_t k = 1; k < factor; ++k) {
    builder.setInsertPoint(body, body->positionOf(yield));
    Value *offset = builder.constantIndex(k * step);
    Value *ivK = builder.binary(ops::AddI, iv, offset);
    std::map<Value *, Value *> remap;
    remap[iv] = ivK;
    for (Operation *op : original) {
      builder.setInsertPoint(body, body->positionOf(yield));
      std::unique_ptr<Operation> copy = op->clone(remap);
      body->insert(body->positionOf(yield), std::move(copy));
    }
  }
  loop.op->setAttr("step", ctx.intAttr(step * factor));
  return true;
}

bool interchangeAffineLoops(ForOp outer) {
  if (!outer.isAffine())
    return false;
  // Perfect nest check: outer body == { inner-for, yield }.
  Block *outerBody = outer.bodyBlock();
  if (outerBody->size() != 2)
    return false;
  Operation *innerOp = outerBody->front();
  if (!innerOp->is(ops::AffineFor))
    return false;
  ForOp inner = ForOp::wrap(innerOp);
  // Bounds must be independent (always true: constant bounds).
  // Swap the bound/step/directive attributes, keep bodies in place.
  auto swapAttr = [&](const char *key) {
    const Attribute *a = outer.op->attr(key);
    const Attribute *b = inner.op->attr(key);
    if (a)
      inner.op->setAttr(key, a);
    else
      inner.op->removeAttr(key);
    if (b)
      outer.op->setAttr(key, b);
    else
      outer.op->removeAttr(key);
  };
  swapAttr("lb");
  swapAttr("ub");
  swapAttr("step");
  // Swap induction-variable *uses*: the cleanest structural way is to swap
  // the uses of the two block arguments.
  BlockArgument *ivOuter = outer.inductionVar();
  BlockArgument *ivInner = inner.inductionVar();
  std::vector<OpOperand *> outerUses = ivOuter->uses();
  std::vector<OpOperand *> innerUses = ivInner->uses();
  for (OpOperand *use : outerUses)
    use->set(ivInner);
  for (OpOperand *use : innerUses)
    use->set(ivOuter);
  return true;
}

bool tileAffineLoop(ForOp loop, int64_t tileSize) {
  if (!loop.isAffine() || tileSize <= 1)
    return false;
  int64_t trip = loop.tripCount();
  if (trip <= 0 || trip % tileSize != 0 || loop.step() != 1)
    return false;

  MContext &ctx = loop.inductionVar()->type()->context();
  // loop i in [lb, ub) step 1  ==>
  //   loop it in [lb, ub) step T { loop ii in [0, T) { i = it + ii; ... } }
  OpBuilder builder(ctx);
  builder.setInsertPointBefore(loop.op);
  ForOp tileLoop = builder.affineFor(loop.lowerBound(), loop.upperBound(),
                                     tileSize);
  builder.setInsertPointToLoopBody(tileLoop);
  ForOp pointLoop = builder.affineFor(0, tileSize, 1);
  builder.setInsertPointToLoopBody(pointLoop);
  Value *ivSum = builder.binary(ops::AddI, tileLoop.inductionVar(),
                                pointLoop.inductionVar());

  // Move the original body into the point loop.
  Block *oldBody = loop.bodyBlock();
  Block *newBody = pointLoop.bodyBlock();
  oldBody->arg(0)->replaceAllUsesWith(ivSum);
  auto insertPos = newBody->positionOf(newBody->back());
  for (Operation *child : oldBody->opPtrs()) {
    if (child->is(ops::AffineYield)) {
      child->eraseFromParent();
      continue;
    }
    newBody->insert(insertPos, child->removeFromParent());
  }
  // Carry directives to the point loop.
  for (const auto &[key, value] : loop.op->attrs())
    if (key != "lb" && key != "ub" && key != "step")
      pointLoop.op->setAttr(key, value);
  loop.op->eraseFromParent();
  return true;
}

void setPipelineDirective(ForOp loop, int64_t ii) {
  MContext &ctx = loop.inductionVar()->type()->context();
  loop.op->setAttr(hlsattr::PipelineII, ctx.intAttr(ii));
}

void setUnrollDirective(ForOp loop, int64_t factor) {
  MContext &ctx = loop.inductionVar()->type()->context();
  loop.op->setAttr(hlsattr::Unroll, ctx.intAttr(factor));
}

void addArrayPartitionDirective(FuncOp fn, unsigned argIdx, unsigned dim,
                                int64_t factor, const std::string &kind) {
  MContext &ctx = fn.type()->context();
  std::vector<const Attribute *> entry = {
      ctx.intAttr(argIdx), ctx.intAttr(dim), ctx.intAttr(factor),
      ctx.stringAttr(kind)};
  std::vector<const Attribute *> all;
  if (const auto *existing =
          dyn_cast<ArrayAttr>(fn.op->attr(hlsattr::ArrayPartition)))
    all = existing->value();
  all.push_back(ctx.arrayAttr(entry));
  fn.op->setAttr(hlsattr::ArrayPartition, ctx.arrayAttr(all));
}

namespace {

/// MLIR-level unroll pass: consumes `mha.unroll_now` attributes.
class AffineUnrollPass : public MPass {
public:
  std::string name() const override { return "affine-unroll"; }

  bool run(ModuleOp module, MPassStats &stats, DiagnosticEngine &) override {
    std::vector<Operation *> worklist;
    module.op->walk([&](Operation *op) {
      if (op->is(ops::AffineFor) && op->attr("mha.unroll_now"))
        worklist.push_back(op);
    });
    bool changed = false;
    for (Operation *op : worklist) {
      ForOp loop = ForOp::wrap(op);
      int64_t factor = op->intAttrOr("mha.unroll_now", 1);
      // Clamp to a dividing factor like the backend does.
      int64_t trip = loop.tripCount();
      while (factor > 1 && trip % factor != 0)
        --factor;
      if (unrollAffineLoop(loop, factor)) {
        stats["affine-unroll.unrolled"]++;
        changed = true;
      }
      op->removeAttr("mha.unroll_now");
    }
    return changed;
  }
};

} // namespace

std::unique_ptr<MPass> createAffineUnrollPass() {
  return std::make_unique<AffineUnrollPass>();
}

} // namespace mha::mir
