#include "mir/transforms/MirTransforms.h"

#include "support/Compiler.h"

#include <optional>

namespace mha::mir {

namespace {

std::optional<int64_t> constIntValue(Value *v) {
  Operation *def = v->definingOp();
  if (!def || !def->is(ops::ConstantOp))
    return std::nullopt;
  if (const auto *a = dyn_cast<IntegerAttr>(def->attr("value")))
    return a->value();
  return std::nullopt;
}

std::optional<double> constFloatValue(Value *v) {
  Operation *def = v->definingOp();
  if (!def || !def->is(ops::ConstantOp))
    return std::nullopt;
  if (const auto *a = dyn_cast<FloatAttr>(def->attr("value")))
    return a->value();
  return std::nullopt;
}

bool isPure(Operation *op) {
  const std::string &n = op->name();
  return n != ops::MemRefStore && n != ops::MemRefCopy && n != ops::Return &&
         n != ops::AffineStore && n != ops::AffineYield &&
         n != ops::ScfYield && n != ops::Call && n != ops::AffineFor &&
         n != ops::ScfFor && n != ops::Func && n != ops::Module;
}

class Canonicalize : public MPass {
public:
  std::string name() const override { return "mir-canonicalize"; }

  bool run(ModuleOp module, MPassStats &stats, DiagnosticEngine &) override {
    bool changed = false;
    bool local = true;
    while (local) {
      local = false;
      // Constant folding.
      module.op->walk([&](Operation *op) {
        if (foldOp(op)) {
          stats["canonicalize.folded"]++;
          local = true;
        }
      });
      // Dead pure-op elimination (walk collects first: erasing while
      // walking the same region is unsafe).
      std::vector<Operation *> dead;
      module.op->walk([&](Operation *op) {
        if (isPure(op) && op->numResults() > 0) {
          bool anyUse = false;
          for (unsigned i = 0; i < op->numResults(); ++i)
            anyUse |= op->result(i)->hasUses();
          if (!anyUse)
            dead.push_back(op);
        }
      });
      for (Operation *op : dead) {
        op->eraseFromParent();
        stats["canonicalize.dce"]++;
        local = true;
      }
      changed |= local;
    }
    return changed;
  }

private:
  /// Replaces `op`'s result with a constant if all operands are constant.
  bool foldOp(Operation *op) {
    const std::string &n = op->name();
    if (op->numResults() != 1 || !op->result()->hasUses())
      return false;
    OpBuilder builder(op->result()->type()->context());
    builder.setInsertPointBefore(op);

    auto replaceWithIndexConst = [&](int64_t v) {
      Value *c = op->result()->type()->isIndex()
                     ? builder.constantIndex(v)
                     : builder.constantInt(v, op->result()->type());
      op->result()->replaceAllUsesWith(c);
      return true;
    };

    if (n == ops::AddI || n == ops::SubI || n == ops::MulI ||
        n == ops::DivSI || n == ops::RemSI) {
      auto a = constIntValue(op->operand(0));
      auto b = constIntValue(op->operand(1));
      if (!a || !b)
        return foldIdentity(op);
      int64_t r = 0;
      if (n == ops::AddI)
        r = *a + *b;
      else if (n == ops::SubI)
        r = *a - *b;
      else if (n == ops::MulI)
        r = *a * *b;
      else if (n == ops::DivSI)
        r = *b == 0 ? 0 : *a / *b;
      else
        r = *b == 0 ? 0 : *a % *b;
      return replaceWithIndexConst(r);
    }
    if (n == ops::AddF || n == ops::SubF || n == ops::MulF || n == ops::DivF) {
      auto a = constFloatValue(op->operand(0));
      auto b = constFloatValue(op->operand(1));
      if (!a || !b)
        return false;
      double r = n == ops::AddF   ? *a + *b
                 : n == ops::SubF ? *a - *b
                 : n == ops::MulF ? *a * *b
                                  : *a / *b;
      Value *c = builder.constantFloat(r, op->result()->type());
      op->result()->replaceAllUsesWith(c);
      return true;
    }
    if (n == ops::AffineApply) {
      std::vector<int64_t> dims;
      for (unsigned i = 0; i < op->numOperands(); ++i) {
        auto v = constIntValue(op->operand(i));
        if (!v)
          return false;
        dims.push_back(*v);
      }
      const auto &map = cast<AffineMapAttr>(op->attr("map"))->value();
      return replaceWithIndexConst(map.evaluate(dims)[0]);
    }
    if (n == ops::IndexCast) {
      if (auto v = constIntValue(op->operand(0)))
        return replaceWithIndexConst(*v);
      return false;
    }
    if (n == ops::CmpI) {
      auto a = constIntValue(op->operand(0));
      auto b = constIntValue(op->operand(1));
      if (!a || !b)
        return false;
      const std::string &p = cast<StringAttr>(op->attr("predicate"))->value();
      bool r;
      if (p == "eq") r = *a == *b;
      else if (p == "ne") r = *a != *b;
      else if (p == "slt") r = *a < *b;
      else if (p == "sle") r = *a <= *b;
      else if (p == "sgt") r = *a > *b;
      else if (p == "sge") r = *a >= *b;
      else if (p == "ult") r = static_cast<uint64_t>(*a) < static_cast<uint64_t>(*b);
      else if (p == "ule") r = static_cast<uint64_t>(*a) <= static_cast<uint64_t>(*b);
      else if (p == "ugt") r = static_cast<uint64_t>(*a) > static_cast<uint64_t>(*b);
      else if (p == "uge") r = static_cast<uint64_t>(*a) >= static_cast<uint64_t>(*b);
      else return false;
      Value *c = builder.constantInt(r ? 1 : 0,
                                     op->result()->type());
      op->result()->replaceAllUsesWith(c);
      return true;
    }
    return false;
  }

  /// x+0, x*1, x*0, x-0 identities.
  bool foldIdentity(Operation *op) {
    const std::string &n = op->name();
    auto a = constIntValue(op->operand(0));
    auto b = constIntValue(op->operand(1));
    Value *repl = nullptr;
    if (n == ops::AddI) {
      if (b && *b == 0)
        repl = op->operand(0);
      else if (a && *a == 0)
        repl = op->operand(1);
    } else if (n == ops::SubI) {
      if (b && *b == 0)
        repl = op->operand(0);
    } else if (n == ops::MulI) {
      if (b && *b == 1)
        repl = op->operand(0);
      else if (a && *a == 1)
        repl = op->operand(1);
      else if ((a && *a == 0) || (b && *b == 0)) {
        OpBuilder builder(op->result()->type()->context());
        builder.setInsertPointBefore(op);
        repl = op->result()->type()->isIndex()
                   ? builder.constantIndex(0)
                   : builder.constantInt(0, op->result()->type());
      }
    }
    if (!repl)
      return false;
    op->result()->replaceAllUsesWith(repl);
    return true;
  }
};

} // namespace

std::unique_ptr<MPass> createCanonicalizePass() {
  return std::make_unique<Canonicalize>();
}

} // namespace mha::mir
