// MirTransforms.h - MLIR-level passes and loop utilities.
//
// These are the cross-layer optimization knobs the paper's flow applies
// *before* lowering: directive annotation (ScaleHLS-style), affine loop
// unrolling/tiling/interchange, canonicalization, and the affine->scf
// conversion that precedes LLVM lowering.
#pragma once

#include "mir/Builder.h"
#include "mir/Pass.h"

#include <memory>

namespace mha::mir {

// --- Passes ---

/// Folds constant arithmetic, affine.apply with constant operands, and
/// removes dead pure ops.
std::unique_ptr<MPass> createCanonicalizePass();

/// Converts affine.for/load/store/apply to scf.for + arith + memref
/// (expands affine maps into explicit index arithmetic). HLS directive
/// attributes are carried over onto the scf loops.
std::unique_ptr<MPass> createAffineToScfPass();

/// Unrolls every affine.for carrying an `mha.unroll_now` attribute at the
/// MLIR level (the cross-layer alternative to backend unrolling).
std::unique_ptr<MPass> createAffineUnrollPass();

// --- Loop utilities ---

/// Replicates the loop body `factor` times (factor must divide the trip
/// count; use ForOp::tripCount to clamp). Returns false when the loop
/// shape is unsupported.
bool unrollAffineLoop(ForOp loop, int64_t factor);

/// Interchanges a perfectly nested pair (outer's body contains only the
/// inner loop + yield). Returns false otherwise.
bool interchangeAffineLoops(ForOp outer);

/// Tiles a loop by `tileSize` (must divide the trip count): produces an
/// outer loop with step = tileSize and rewrites the inner iv.
bool tileAffineLoop(ForOp loop, int64_t tileSize);

// --- Directive helpers (ScaleHLS-style design knobs) ---

void setPipelineDirective(ForOp loop, int64_t ii);
void setUnrollDirective(ForOp loop, int64_t factor);
void addArrayPartitionDirective(FuncOp fn, unsigned argIdx, unsigned dim,
                                int64_t factor, const std::string &kind);

/// Expands an affine expression into arith ops at the builder's insertion
/// point. `dims` supplies the d_i values (index-typed).
Value *expandAffineExpr(OpBuilder &builder, const AffineExpr *expr,
                        const std::vector<Value *> &dims);

} // namespace mha::mir
