// MContext.h - owns and uniques MiniMLIR types, attributes, affine exprs.
//
// Uniquing is hash-based (FNV composite keys into unordered maps, with
// structural verification on bucket hits) and node storage is a
// bump-pointer arena: a context allocates slabs, hands out interned
// pointers, and frees everything at once on destruction. An MContext is
// single-threaded by design — each flow job owns its own context.
#pragma once

#include "mir/Attributes.h"
#include "mir/Types.h"

#include <cstddef>
#include <memory>
#include <string_view>

namespace mha::mir {

class MContext {
public:
  MContext();
  ~MContext();

  MContext(const MContext &) = delete;
  MContext &operator=(const MContext &) = delete;

  // --- Types ---
  Type *indexTy();
  Type *noneTy();
  IntegerType *intTy(unsigned width);
  IntegerType *i1() { return intTy(1); }
  IntegerType *i32() { return intTy(32); }
  IntegerType *i64() { return intTy(64); }
  Type *f32();
  Type *f64();
  MemRefType *memrefTy(std::vector<int64_t> shape, Type *element);
  FunctionType *fnTy(std::vector<Type *> inputs, std::vector<Type *> results);

  // --- Attributes ---
  const IntegerAttr *intAttr(int64_t value);
  const FloatAttr *floatAttr(double value);
  const StringAttr *stringAttr(std::string value);
  const TypeAttr *typeAttr(Type *type);
  const ArrayAttr *arrayAttr(std::vector<const Attribute *> value);
  const AffineMapAttr *affineMapAttr(AffineMap map);
  const UnitAttr *unitAttr();

  // --- Affine expressions (folded on construction) ---
  const AffineExpr *affineConst(int64_t value);
  const AffineExpr *affineDim(unsigned position);
  const AffineExpr *affineSymbol(unsigned position);
  const AffineExpr *affineAdd(const AffineExpr *lhs, const AffineExpr *rhs);
  const AffineExpr *affineMul(const AffineExpr *lhs, const AffineExpr *rhs);
  const AffineExpr *affineMod(const AffineExpr *lhs, const AffineExpr *rhs);
  const AffineExpr *affineFloorDiv(const AffineExpr *lhs,
                                   const AffineExpr *rhs);
  const AffineExpr *affineCeilDiv(const AffineExpr *lhs,
                                  const AffineExpr *rhs);

  /// Interns `s` into the context arena and returns a view that stays
  /// valid for the context's lifetime (same contents -> same pointer).
  std::string_view internString(std::string_view s);

  /// Bytes currently held by the uniquing arena (telemetry/tests).
  size_t arenaBytes() const;

private:
  struct Impl;

  /// Placement-constructs a node in the arena. Member of MContext so the
  /// nodes' private constructors (friend class MContext) stay reachable.
  template <typename T, typename... Args> T *alloc(Args &&...args);

  std::unique_ptr<Impl> impl_;
};

} // namespace mha::mir
