#include "mir/Parser.h"

#include "mir/Builder.h"
#include "mir/MContext.h"
#include "support/StringUtils.h"

#include <cctype>
#include <map>

namespace mha::mir {

namespace {

enum class Tok {
  Eof,
  Ident,
  Percent, // %name
  At,      // @name
  Caret,   // ^name
  Int,
  Float,
  String,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Comma,
  Equal,
  Colon,
  Plus,
  Star,
  Arrow, // ->
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;
  int64_t intValue = 0;
  double fpValue = 0;
  SrcLoc loc;
};

class Lexer {
public:
  Lexer(std::string_view text, DiagnosticEngine &diags)
      : text_(text), diags_(diags) {
    advance();
  }

  const Token &cur() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

  void advance() {
    skipTrivia();
    cur_ = Token{};
    cur_.loc = {line_, col_};
    if (pos_ >= text_.size()) {
      cur_.kind = Tok::Eof;
      return;
    }
    char c = text_[pos_];
    auto single = [&](Tok kind) {
      cur_.kind = kind;
      ++pos_;
      ++col_;
    };
    switch (c) {
    case '(': single(Tok::LParen); return;
    case ')': single(Tok::RParen); return;
    case '{': single(Tok::LBrace); return;
    case '}': single(Tok::RBrace); return;
    case '[': single(Tok::LBracket); return;
    case ']': single(Tok::RBracket); return;
    case '<': single(Tok::Less); return;
    case '>': single(Tok::Greater); return;
    case ',': single(Tok::Comma); return;
    case '=': single(Tok::Equal); return;
    case ':': single(Tok::Colon); return;
    case '+': single(Tok::Plus); return;
    case '*': single(Tok::Star); return;
    case '%': {
      ++pos_; ++col_;
      cur_.kind = Tok::Percent;
      cur_.text = lexWord();
      return;
    }
    case '@': {
      ++pos_; ++col_;
      cur_.kind = Tok::At;
      cur_.text = lexWord();
      return;
    }
    case '^': {
      ++pos_; ++col_;
      cur_.kind = Tok::Caret;
      cur_.text = lexWord();
      return;
    }
    case '"': {
      ++pos_; ++col_;
      cur_.kind = Tok::String;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        cur_.text += text_[pos_];
        ++pos_; ++col_;
      }
      if (pos_ < text_.size()) { ++pos_; ++col_; }
      return;
    }
    case '-':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        cur_.kind = Tok::Arrow;
        pos_ += 2;
        col_ += 2;
        return;
      }
      lexNumber();
      return;
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      lexNumber();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      cur_.kind = Tok::Ident;
      cur_.text = lexWord();
      return;
    }
    diags_.error(strfmt("unexpected character '%c'", c), cur_.loc);
    ++pos_; ++col_;
    advance();
  }

private:
  std::string lexWord() {
    std::string word;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.') {
        word += c;
        ++pos_; ++col_;
      } else
        break;
    }
    return word;
  }

  void lexNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-') { ++pos_; ++col_; }
    bool isFloat = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_; ++col_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '+' || c == '-') &&
                  (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
        // Don't swallow the 'x' of shapes like 32x32 or dims like 1.5e3,
        // but do accept a signed exponent: the shortest-round-trip
        // printer emits forms like 1e-05.
        char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : 'q';
        char after = pos_ + 2 < text_.size() ? text_[pos_ + 2] : 'q';
        bool signedExponent =
            (c == 'e' || c == 'E') && (next == '+' || next == '-') &&
            std::isdigit(static_cast<unsigned char>(after));
        if (c == '.' ||
            std::isdigit(static_cast<unsigned char>(next)) ||
            signedExponent)
          isFloat = true;
        else
          break;
        ++pos_; ++col_;
      } else
        break;
    }
    std::string word(text_.substr(start, pos_ - start));
    if (isFloat) {
      cur_.kind = Tok::Float;
      if (std::optional<double> v = parseDouble(word))
        cur_.fpValue = *v;
      else
        diags_.error(strfmt("invalid or out-of-range float literal '%s'",
                            word.c_str()),
                     cur_.loc);
    } else {
      cur_.kind = Tok::Int;
      if (std::optional<int64_t> v = parseInt(word))
        cur_.intValue = *v;
      else
        diags_.error(strfmt("invalid or out-of-range integer literal '%s'",
                            word.c_str()),
                     cur_.loc);
    }
    cur_.text = std::move(word);
  }

  void skipTrivia() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_; col_ = 1; ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_; ++col_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n')
          ++pos_;
      } else
        break;
    }
  }

  std::string_view text_;
  DiagnosticEngine &diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Token cur_;
};

class MirParser {
public:
  MirParser(std::string_view text, MContext &ctx, DiagnosticEngine &diags)
      : lex_(text, diags), ctx_(ctx), diags_(diags) {}

  std::optional<OwnedModule> parse() {
    if (!expectIdent("builtin.module"))
      return std::nullopt;
    expect(Tok::LBrace, "'{'");
    OwnedModule module = OpBuilder::createModule();
    OpBuilder builder(ctx_);
    builder.setInsertPoint(module.get().body());
    while (lex_.cur().kind != Tok::RBrace && lex_.cur().kind != Tok::Eof &&
           !diags_.hadError())
      parseFunc(builder);
    expect(Tok::RBrace, "'}'");
    if (diags_.hadError())
      return std::nullopt;
    return module;
  }

private:
  Token expect(Tok kind, const char *what) {
    if (lex_.cur().kind != kind) {
      diags_.error(strfmt("expected %s, got '%s'", what,
                          lex_.cur().text.c_str()),
                   lex_.cur().loc);
      return Token{};
    }
    return lex_.take();
  }

  bool accept(Tok kind) {
    if (lex_.cur().kind == kind) {
      lex_.advance();
      return true;
    }
    return false;
  }

  bool expectIdent(const char *word) {
    if (lex_.cur().kind == Tok::Ident && lex_.cur().text == word) {
      lex_.advance();
      return true;
    }
    diags_.error(strfmt("expected '%s'", word), lex_.cur().loc);
    return false;
  }

  // --- Types ---
  Type *parseType() {
    const Token &t = lex_.cur();
    if (t.kind != Tok::Ident) {
      diags_.error("expected type", t.loc);
      return nullptr;
    }
    std::string w = lex_.take().text;
    if (w == "index")
      return ctx_.indexTy();
    if (w == "none")
      return ctx_.noneTy();
    if (w == "f32")
      return ctx_.f32();
    if (w == "f64")
      return ctx_.f64();
    if (w.size() > 1 && w[0] == 'i') {
      bool digits = true;
      for (char c : w.substr(1))
        digits &= std::isdigit(static_cast<unsigned char>(c)) != 0;
      if (digits)
        return ctx_.intTy(static_cast<unsigned>(std::stoul(w.substr(1))));
    }
    if (w == "memref") {
      expect(Tok::Less, "'<'");
      // Shape: 32x32xf64 lexes as Int("32"), Ident("x32xf64") — handle by
      // re-lexing from tokens: ints separated by idents starting with 'x'.
      std::vector<int64_t> shape;
      Type *elem = nullptr;
      while (true) {
        if (lex_.cur().kind == Tok::Int) {
          shape.push_back(lex_.take().intValue);
          continue;
        }
        if (lex_.cur().kind == Tok::Ident) {
          std::string word = lex_.take().text;
          // word looks like "x32x..." and/or ends with the element type.
          size_t i = 0;
          while (i < word.size()) {
            if (word[i] == 'x') {
              ++i;
              size_t j = i;
              while (j < word.size() &&
                     std::isdigit(static_cast<unsigned char>(word[j])))
                ++j;
              if (j > i) {
                shape.push_back(std::stoll(word.substr(i, j - i)));
                i = j;
                continue;
              }
              // Rest is the element type.
              elem = typeFromWord(word.substr(i));
              i = word.size();
            } else {
              elem = typeFromWord(word.substr(i));
              i = word.size();
            }
          }
          if (elem)
            break;
          continue;
        }
        diags_.error("bad memref shape", lex_.cur().loc);
        return nullptr;
      }
      expect(Tok::Greater, "'>'");
      if (!elem)
        return nullptr;
      return ctx_.memrefTy(std::move(shape), elem);
    }
    diags_.error(strfmt("unknown type '%s'", w.c_str()), t.loc);
    return nullptr;
  }

  Type *typeFromWord(const std::string &w) {
    if (w == "f32")
      return ctx_.f32();
    if (w == "f64")
      return ctx_.f64();
    if (w == "index")
      return ctx_.indexTy();
    if (w.size() > 1 && w[0] == 'i')
      return ctx_.intTy(static_cast<unsigned>(std::stoul(w.substr(1))));
    diags_.error(strfmt("unknown element type '%s'", w.c_str()));
    return nullptr;
  }

  // --- Affine maps ---
  const AffineExpr *parseAffineExpr(unsigned numDims) {
    const AffineExpr *lhs = parseAffineTerm(numDims);
    while (lhs) {
      if (lex_.cur().kind == Tok::Ident && lex_.cur().text == "mod") {
        lex_.advance();
        lhs = ctx_.affineMod(lhs, parseAffineTerm(numDims));
      } else if (lex_.cur().kind == Tok::Ident &&
                 lex_.cur().text == "floordiv") {
        lex_.advance();
        lhs = ctx_.affineFloorDiv(lhs, parseAffineTerm(numDims));
      } else if (lex_.cur().kind == Tok::Ident &&
                 lex_.cur().text == "ceildiv") {
        lex_.advance();
        lhs = ctx_.affineCeilDiv(lhs, parseAffineTerm(numDims));
      } else if (lex_.cur().kind == Tok::Plus) {
        lex_.advance();
        lhs = ctx_.affineAdd(lhs, parseAffineExpr(numDims));
      } else if (lex_.cur().kind == Tok::Star) {
        lex_.advance();
        lhs = ctx_.affineMul(lhs, parseAffineTerm(numDims));
      } else {
        break;
      }
    }
    return lhs;
  }

  const AffineExpr *parseAffineTerm(unsigned numDims) {
    const Token &t = lex_.cur();
    if (t.kind == Tok::Int)
      return ctx_.affineConst(lex_.take().intValue);
    if (t.kind == Tok::LParen) {
      lex_.advance();
      const AffineExpr *e = parseAffineExpr(numDims);
      expect(Tok::RParen, "')'");
      return e;
    }
    if (t.kind == Tok::Ident && t.text.size() >= 2 &&
        (t.text[0] == 'd' || t.text[0] == 's')) {
      std::string w = lex_.take().text;
      unsigned pos = static_cast<unsigned>(std::stoul(w.substr(1)));
      return w[0] == 'd' ? ctx_.affineDim(pos) : ctx_.affineSymbol(pos);
    }
    diags_.error("bad affine expression", t.loc);
    return nullptr;
  }

  AffineMap parseAffineMapBody() {
    // (d0, d1)[s0] -> (expr, expr)
    expect(Tok::LParen, "'('");
    unsigned numDims = 0;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        expect(Tok::Ident, "dim");
        ++numDims;
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");
    unsigned numSyms = 0;
    if (accept(Tok::LBracket)) {
      if (lex_.cur().kind != Tok::RBracket) {
        do {
          expect(Tok::Ident, "symbol");
          ++numSyms;
        } while (accept(Tok::Comma));
      }
      expect(Tok::RBracket, "']'");
    }
    expect(Tok::Arrow, "'->'");
    expect(Tok::LParen, "'('");
    std::vector<const AffineExpr *> results;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        const AffineExpr *e = parseAffineExpr(numDims);
        if (!e)
          break;
        results.push_back(e);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");
    return AffineMap(numDims, numSyms, std::move(results));
  }

  // --- Attributes ---
  const Attribute *parseAttrValue() {
    const Token &t = lex_.cur();
    if (t.kind == Tok::Int)
      return ctx_.intAttr(lex_.take().intValue);
    if (t.kind == Tok::Float)
      return ctx_.floatAttr(lex_.take().fpValue);
    if (t.kind == Tok::String)
      return ctx_.stringAttr(lex_.take().text);
    if (t.kind == Tok::LBracket) {
      lex_.advance();
      std::vector<const Attribute *> elems;
      if (lex_.cur().kind != Tok::RBracket) {
        do {
          const Attribute *a = parseAttrValue();
          if (!a)
            return nullptr;
          elems.push_back(a);
        } while (accept(Tok::Comma));
      }
      expect(Tok::RBracket, "']'");
      return ctx_.arrayAttr(std::move(elems));
    }
    if (t.kind == Tok::Ident && t.text == "unit") {
      lex_.advance();
      return ctx_.unitAttr();
    }
    if (t.kind == Tok::Ident && t.text == "type") {
      lex_.advance();
      expect(Tok::LParen, "'('");
      Type *type = parseType();
      expect(Tok::RParen, "')'");
      return type ? ctx_.typeAttr(type) : nullptr;
    }
    if (t.kind == Tok::Ident && t.text == "affine_map") {
      lex_.advance();
      expect(Tok::Less, "'<'");
      AffineMap map = parseAffineMapBody();
      expect(Tok::Greater, "'>'");
      return ctx_.affineMapAttr(std::move(map));
    }
    diags_.error("bad attribute value", t.loc);
    return nullptr;
  }

  /// Parses `{k = v, ...}` into `op` (caller checked LBrace).
  void parseAttrDict(Operation *op) {
    expect(Tok::LBrace, "'{'");
    if (lex_.cur().kind != Tok::RBrace) {
      do {
        Token key = expect(Tok::Ident, "attribute name");
        expect(Tok::Equal, "'='");
        const Attribute *value = parseAttrValue();
        if (!value)
          return;
        op->setAttr(key.text, value);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RBrace, "'}'");
  }

  // --- Functions and ops ---
  void parseFunc(OpBuilder &moduleBuilder) {
    if (!expectIdent("func.func"))
      return;
    Token name = expect(Tok::At, "function name");
    expect(Tok::LParen, "'('");
    std::vector<std::string> argNames;
    std::vector<Type *> argTypes;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        Token argName = expect(Tok::Percent, "argument");
        expect(Tok::Colon, "':'");
        Type *type = parseType();
        if (!type)
          return;
        argNames.push_back(argName.text);
        argTypes.push_back(type);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");

    FuncOp fn = moduleBuilder.createFunc(name.text, ctx_.fnTy(argTypes, {}));
    if (lex_.cur().kind == Tok::Ident && lex_.cur().text == "attributes") {
      lex_.advance();
      parseAttrDict(fn.op);
    }

    values_.clear();
    for (unsigned i = 0; i < fn.numArgs(); ++i)
      values_[argNames[i]] = fn.arg(i);

    expect(Tok::LBrace, "'{'");
    OpBuilder builder(ctx_);
    builder.setInsertPoint(fn.entryBlock());
    while (lex_.cur().kind != Tok::RBrace && lex_.cur().kind != Tok::Eof &&
           !diags_.hadError())
      parseOp(builder);
    expect(Tok::RBrace, "'}'");
  }

  Value *lookup(const std::string &name, SrcLoc loc) {
    auto it = values_.find(name);
    if (it == values_.end()) {
      diags_.error(strfmt("unknown value %%%s", name.c_str()), loc);
      return nullptr;
    }
    return it->second;
  }

  void parseOp(OpBuilder &builder) {
    // Results.
    std::vector<std::string> resultNames;
    if (lex_.cur().kind == Tok::Percent) {
      do {
        resultNames.push_back(expect(Tok::Percent, "result").text);
      } while (accept(Tok::Comma));
      expect(Tok::Equal, "'='");
    }
    Token name = expect(Tok::String, "op name");
    expect(Tok::LParen, "'('");
    std::vector<Value *> operands;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        Token opName = expect(Tok::Percent, "operand");
        Value *v = lookup(opName.text, opName.loc);
        if (!v)
          return;
        operands.push_back(v);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");

    auto op = Operation::create(name.text, std::move(operands), {});

    // Optional regions: `( { ... }, { ... } )`.
    if (lex_.cur().kind == Tok::LParen) {
      lex_.advance();
      do {
        parseRegion(op.get());
      } while (accept(Tok::Comma));
      expect(Tok::RParen, "')'");
    }
    if (lex_.cur().kind == Tok::LBrace)
      parseAttrDict(op.get());

    // Trailing type signature: `: (i64, i64) -> (i64)`.
    expect(Tok::Colon, "':'");
    expect(Tok::LParen, "'('");
    unsigned nOperandTypes = 0;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        parseType();
        ++nOperandTypes;
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");
    expect(Tok::Arrow, "'->'");
    expect(Tok::LParen, "'('");
    std::vector<Type *> resultTypes;
    if (lex_.cur().kind != Tok::RParen) {
      do {
        Type *type = parseType();
        if (!type)
          return;
        resultTypes.push_back(type);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");

    // Rebuild with result types (Operation::create fixes result count).
    auto finalOp = Operation::create(op->name(), op->operandValues(),
                                     resultTypes);
    for (const auto &[k, v] : op->attrs())
      finalOp->setAttr(k, v);
    // Transfer regions.
    for (unsigned r = 0; r < op->numRegions(); ++r) {
      Region *src = op->region(r);
      Region *dst = finalOp->addRegion();
      for (auto &block : *src) {
        Block *newBlock = dst->addBlock();
        for (unsigned i = 0; i < block->numArgs(); ++i) {
          BlockArgument *newArg = newBlock->addArg(block->arg(i)->type());
          block->arg(i)->replaceAllUsesWith(newArg);
          // Keep name mapping pointing at the final arg.
          for (auto &[n, v] : values_)
            if (v == block->arg(i))
              values_[n] = newArg;
        }
        for (Operation *child : block->opPtrs())
          newBlock->append(child->removeFromParent());
      }
    }
    Operation *result = builder.insertOp(std::move(finalOp));

    if (resultNames.size() != result->numResults()) {
      diags_.error("result count mismatch", name.loc);
      return;
    }
    for (unsigned i = 0; i < result->numResults(); ++i)
      values_[resultNames[i]] = result->result(i);
  }

  void parseRegion(Operation *op) {
    expect(Tok::LBrace, "'{'");
    Region *region = op->addRegion();
    Block *block = region->addBlock();
    // Optional block header `^bb(%x: index):`.
    if (lex_.cur().kind == Tok::Caret) {
      lex_.advance();
      expect(Tok::LParen, "'('");
      if (lex_.cur().kind != Tok::RParen) {
        do {
          Token argName = expect(Tok::Percent, "block argument");
          expect(Tok::Colon, "':'");
          Type *type = parseType();
          if (!type)
            return;
          values_[argName.text] = block->addArg(type);
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "')'");
      expect(Tok::Colon, "':'");
    }
    OpBuilder builder(ctx_);
    builder.setInsertPoint(block);
    while (lex_.cur().kind != Tok::RBrace && lex_.cur().kind != Tok::Eof &&
           !diags_.hadError())
      parseOp(builder);
    expect(Tok::RBrace, "'}'");
  }

  Lexer lex_;
  MContext &ctx_;
  DiagnosticEngine &diags_;
  std::map<std::string, Value *> values_;
};

} // namespace

std::optional<OwnedModule> parseModule(std::string_view text, MContext &ctx,
                                       DiagnosticEngine &diags) {
  return MirParser(text, ctx, diags).parse();
}

} // namespace mha::mir
