// Verifier.h - structural checks for MiniMLIR modules.
#pragma once

#include "support/Diagnostics.h"

namespace mha::mir {

struct ModuleOp;

/// Verifies dialect-op invariants (operand/result arity and typing,
/// required attributes, region shapes, terminators) and SSA scoping.
/// Returns true when no errors were reported.
bool verifyModule(ModuleOp module, DiagnosticEngine &diags);

} // namespace mha::mir
