// AffineExpr.h - affine index expressions and maps.
//
// A small, uniqued expression tree: d0, s0, constants, +, *, mod, floordiv,
// ceildiv. affine.load/store subscripts and affine.apply carry AffineMaps
// over these; the adaptor flow preserves their exact arithmetic when
// lowering to LLVM IR (the "expression details" the paper keeps).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mha::mir {

class MContext;

class AffineExpr {
public:
  enum class Kind { Constant, Dim, Symbol, Add, Mul, Mod, FloorDiv, CeilDiv };

  Kind kind() const { return kind_; }
  /// Constant value / dim position / symbol position.
  int64_t value() const { return value_; }
  const AffineExpr *lhs() const { return lhs_; }
  const AffineExpr *rhs() const { return rhs_; }

  bool isConstant() const { return kind_ == Kind::Constant; }
  bool isBinary() const {
    return kind_ == Kind::Add || kind_ == Kind::Mul || kind_ == Kind::Mod ||
           kind_ == Kind::FloorDiv || kind_ == Kind::CeilDiv;
  }

  /// Evaluates with concrete dim/symbol values.
  int64_t evaluate(const std::vector<int64_t> &dims,
                   const std::vector<int64_t> &symbols = {}) const;

  /// Renders like MLIR: "d0 * 32 + d1".
  std::string str() const;

private:
  friend class MContext;
  AffineExpr(Kind kind, int64_t value, const AffineExpr *lhs,
             const AffineExpr *rhs)
      : kind_(kind), value_(value), lhs_(lhs), rhs_(rhs) {}
  Kind kind_;
  int64_t value_;
  const AffineExpr *lhs_;
  const AffineExpr *rhs_;
};

/// (d0, ..., dN) [s0, ..., sM] -> (expr0, ..., exprK)
class AffineMap {
public:
  AffineMap() = default;
  AffineMap(unsigned numDims, unsigned numSymbols,
            std::vector<const AffineExpr *> results)
      : numDims_(numDims), numSymbols_(numSymbols),
        results_(std::move(results)) {}

  unsigned numDims() const { return numDims_; }
  unsigned numSymbols() const { return numSymbols_; }
  const std::vector<const AffineExpr *> &results() const { return results_; }
  unsigned numResults() const {
    return static_cast<unsigned>(results_.size());
  }

  std::vector<int64_t> evaluate(const std::vector<int64_t> &dims,
                                const std::vector<int64_t> &symbols = {}) const;

  /// An identity map (d0, ..., dN-1) -> (d0, ..., dN-1).
  static AffineMap identity(MContext &ctx, unsigned rank);

  std::string str() const;

  bool operator==(const AffineMap &other) const {
    return numDims_ == other.numDims_ && numSymbols_ == other.numSymbols_ &&
           results_ == other.results_;
  }

private:
  unsigned numDims_ = 0;
  unsigned numSymbols_ = 0;
  std::vector<const AffineExpr *> results_;
};

} // namespace mha::mir
