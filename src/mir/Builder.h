// Builder.h - OpBuilder: convenience factory for MiniMLIR operations.
#pragma once

#include "mir/MContext.h"
#include "mir/Ops.h"

namespace mha::mir {

class OpBuilder {
public:
  explicit OpBuilder(MContext &ctx) : ctx_(ctx) {}

  MContext &context() const { return ctx_; }

  void setInsertPoint(Block *block) {
    block_ = block;
    atEnd_ = true;
  }
  void setInsertPoint(Block *block, Block::iterator pos) {
    block_ = block;
    pos_ = pos;
    atEnd_ = false;
  }
  void setInsertPointBefore(Operation *op) {
    block_ = op->parentBlock();
    pos_ = block_->positionOf(op);
    atEnd_ = false;
  }
  Block *insertBlock() const { return block_; }

  /// Generic op creation at the insertion point.
  Operation *createOp(std::string name, std::vector<Value *> operands,
                      std::vector<Type *> resultTypes);

  /// Inserts an already-built op at the insertion point.
  Operation *insertOp(std::unique_ptr<Operation> op);

  // --- builtin / func ---
  /// Creates a detached module op (caller owns it).
  static OwnedModule createModule();
  /// Creates func.func inside the current module block; entry block args
  /// mirror the input types. Leaves the insertion point unchanged.
  FuncOp createFunc(const std::string &name, FunctionType *type);
  Operation *createReturn(std::vector<Value *> values = {});

  // --- arith ---
  Value *constantIndex(int64_t value);
  Value *constantInt(int64_t value, Type *type);
  Value *constantFloat(double value, Type *type);
  Value *binary(const char *opName, Value *lhs, Value *rhs);
  Value *cmpi(const std::string &pred, Value *lhs, Value *rhs);
  Value *cmpf(const std::string &pred, Value *lhs, Value *rhs);
  Value *select(Value *cond, Value *trueV, Value *falseV);
  Value *indexCast(Value *v, Type *to);
  Value *sitofp(Value *v, Type *to);
  Value *mathOp(const char *opName, Value *v);

  // --- memref ---
  Value *memrefAlloc(MemRefType *type);
  Value *memrefLoad(Value *memref, std::vector<Value *> indices);
  void memrefStore(Value *value, Value *memref, std::vector<Value *> indices);
  void memrefCopy(Value *src, Value *dst);

  // --- affine ---
  /// Creates affine.for lb..ub step `step`; returns the loop. The body has
  /// the index argument and an affine.yield terminator; the caller should
  /// set the insertion point inside via `bodyInsertPoint(loop)`.
  ForOp affineFor(int64_t lb, int64_t ub, int64_t step = 1);
  Value *affineLoad(Value *memref, const AffineMap &map,
                    std::vector<Value *> mapOperands);
  void affineStore(Value *value, Value *memref, const AffineMap &map,
                   std::vector<Value *> mapOperands);
  Value *affineApply(const AffineMap &map, std::vector<Value *> operands);

  // --- scf ---
  ForOp scfFor(Value *lb, Value *ub, Value *step);

  /// Positions the builder before the loop body's terminator.
  void setInsertPointToLoopBody(ForOp loop);

private:
  Operation *insert(std::unique_ptr<Operation> op);

  MContext &ctx_;
  Block *block_ = nullptr;
  Block::iterator pos_;
  bool atEnd_ = true;
};

} // namespace mha::mir
