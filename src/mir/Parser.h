// Parser.h - parses the textual form produced by mir::printModule.
#pragma once

#include "mir/Ops.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string_view>

namespace mha::mir {

class MContext;

/// Parses `text` into an owned module. Returns nullopt on error (details in
/// `diags`). Accepts the custom func.func/builtin.module syntax plus the
/// generic op form the printer emits.
std::optional<OwnedModule> parseModule(std::string_view text, MContext &ctx,
                                       DiagnosticEngine &diags);

} // namespace mha::mir
