#include "mir/MContext.h"

#include "support/Arena.h"
#include "support/Compiler.h"
#include "support/Hash.h"
#include "support/StringUtils.h"
#include "support/Json.h"

#include <cstring>
#include <unordered_map>
#include <vector>

namespace mha::mir {

namespace {
class SimpleMType : public Type {
public:
  SimpleMType(MContext &ctx, Kind kind) : Type(ctx, kind) {}
};

/// Key for the affine-expression uniquing map: leaves carry (tag, value),
/// binaries carry (tag, lhs, rhs) over already-uniqued operands.
struct AffineKey {
  int tag;
  int64_t value;
  const AffineExpr *lhs;
  const AffineExpr *rhs;

  bool operator==(const AffineKey &o) const {
    return tag == o.tag && value == o.value && lhs == o.lhs && rhs == o.rhs;
  }
};

struct AffineKeyHash {
  size_t operator()(const AffineKey &k) const {
    return HashBuilder()
        .u32(static_cast<uint32_t>(k.tag))
        .i64(k.value)
        .pointer(k.lhs)
        .pointer(k.rhs)
        .get();
  }
};

uint64_t bitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
} // namespace

struct MContext::Impl {
  explicit Impl(MContext &ctx)
      : indexTy(ctx, Type::Kind::Index), noneTy(ctx, Type::Kind::None),
        f32Ty(ctx, Type::Kind::Float), f64Ty(ctx, Type::Kind::Double),
        interner(arena) {}

  BumpAllocator arena;
  SimpleMType indexTy, noneTy, f32Ty, f64Ty;
  StringInterner interner;

  std::unordered_map<unsigned, IntegerType *> intTypes;
  // Composite-key uniquing: FNV hash of the structure -> candidate list,
  // with structural verification on every hit so hash collisions stay
  // correct (just slower).
  std::unordered_map<uint64_t, std::vector<MemRefType *>> memrefTypes;
  std::unordered_map<uint64_t, std::vector<FunctionType *>> fnTypes;

  std::unordered_map<int64_t, IntegerAttr *> intAttrs;
  // Keyed on the bit pattern, not the double: a double-keyed map aliases
  // every NaN payload onto one node and merges +0.0/-0.0.
  std::unordered_map<uint64_t, FloatAttr *> floatAttrs;
  // Keyed on views into each attr's own (arena-pinned) storage.
  std::unordered_map<std::string_view, StringAttr *> stringAttrs;
  std::unordered_map<Type *, TypeAttr *> typeAttrs;
  std::unordered_map<uint64_t, std::vector<ArrayAttr *>> arrayAttrs;
  std::unordered_map<uint64_t, std::vector<AffineMapAttr *>> mapAttrs;
  UnitAttr *unitAttr = nullptr;

  std::unordered_map<AffineKey, const AffineExpr *, AffineKeyHash>
      affineUnique;

  const AffineExpr *makeBinary(MContext &ctx, AffineExpr::Kind kind,
                               const AffineExpr *lhs, const AffineExpr *rhs);
};

template <typename T, typename... Args> T *MContext::alloc(Args &&...args) {
  void *mem = impl_->arena.allocate(sizeof(T), alignof(T));
  T *obj = new (mem) T(std::forward<Args>(args)...);
  impl_->arena.registerDestructor(obj);
  return obj;
}

MContext::MContext() : impl_(std::make_unique<Impl>(*this)) {}
MContext::~MContext() = default;

std::string_view MContext::internString(std::string_view s) {
  return impl_->interner.intern(s);
}

size_t MContext::arenaBytes() const { return impl_->arena.bytesAllocated(); }

Type *MContext::indexTy() { return &impl_->indexTy; }
Type *MContext::noneTy() { return &impl_->noneTy; }
Type *MContext::f32() { return &impl_->f32Ty; }
Type *MContext::f64() { return &impl_->f64Ty; }

IntegerType *MContext::intTy(unsigned width) {
  auto &slot = impl_->intTypes[width];
  if (!slot)
    slot = alloc<IntegerType>(*this, width);
  return slot;
}

MemRefType *MContext::memrefTy(std::vector<int64_t> shape, Type *element) {
  HashBuilder h;
  h.pointer(element).u64(shape.size());
  for (int64_t d : shape)
    h.i64(d);
  auto &bucket = impl_->memrefTypes[h.get()];
  for (MemRefType *mt : bucket)
    if (mt->shape() == shape && mt->elementType() == element)
      return mt;
  bucket.push_back(alloc<MemRefType>(*this, std::move(shape), element));
  return bucket.back();
}

FunctionType *MContext::fnTy(std::vector<Type *> inputs,
                             std::vector<Type *> results) {
  HashBuilder h;
  h.u64(inputs.size());
  for (Type *t : inputs)
    h.pointer(t);
  h.u64(results.size());
  for (Type *t : results)
    h.pointer(t);
  auto &bucket = impl_->fnTypes[h.get()];
  for (FunctionType *ft : bucket)
    if (ft->inputs() == inputs && ft->results() == results)
      return ft;
  bucket.push_back(
      alloc<FunctionType>(*this, std::move(inputs), std::move(results)));
  return bucket.back();
}

const IntegerAttr *MContext::intAttr(int64_t value) {
  auto &slot = impl_->intAttrs[value];
  if (!slot)
    slot = alloc<IntegerAttr>(value);
  return slot;
}

const FloatAttr *MContext::floatAttr(double value) {
  auto &slot = impl_->floatAttrs[bitsOf(value)];
  if (!slot)
    slot = alloc<FloatAttr>(value);
  return slot;
}

const StringAttr *MContext::stringAttr(std::string value) {
  auto it = impl_->stringAttrs.find(std::string_view(value));
  if (it != impl_->stringAttrs.end())
    return it->second;
  StringAttr *attr = alloc<StringAttr>(std::move(value));
  // The key views the attr's own string: arena nodes never move, so the
  // view stays valid for the context's lifetime.
  impl_->stringAttrs.emplace(std::string_view(attr->value()), attr);
  return attr;
}

const TypeAttr *MContext::typeAttr(Type *type) {
  auto &slot = impl_->typeAttrs[type];
  if (!slot)
    slot = alloc<TypeAttr>(type);
  return slot;
}

const ArrayAttr *MContext::arrayAttr(std::vector<const Attribute *> value) {
  HashBuilder h;
  h.u64(value.size());
  for (const Attribute *a : value)
    h.pointer(a);
  auto &bucket = impl_->arrayAttrs[h.get()];
  for (ArrayAttr *a : bucket)
    if (a->value() == value)
      return a;
  bucket.push_back(alloc<ArrayAttr>(std::move(value)));
  return bucket.back();
}

const AffineMapAttr *MContext::affineMapAttr(AffineMap map) {
  HashBuilder h;
  h.u32(map.numDims()).u32(map.numSymbols()).u64(map.results().size());
  for (const AffineExpr *e : map.results())
    h.pointer(e);
  auto &bucket = impl_->mapAttrs[h.get()];
  for (AffineMapAttr *a : bucket)
    if (a->value() == map)
      return a;
  bucket.push_back(alloc<AffineMapAttr>(std::move(map)));
  return bucket.back();
}

const UnitAttr *MContext::unitAttr() {
  if (!impl_->unitAttr)
    impl_->unitAttr = alloc<UnitAttr>();
  return impl_->unitAttr;
}

// --- Affine expressions ---

const AffineExpr *MContext::affineConst(int64_t value) {
  AffineKey key{0, value, nullptr, nullptr};
  auto it = impl_->affineUnique.find(key);
  if (it != impl_->affineUnique.end())
    return it->second;
  return impl_->affineUnique[key] =
             alloc<AffineExpr>(AffineExpr::Kind::Constant, value, nullptr,
                               nullptr);
}

const AffineExpr *MContext::affineDim(unsigned position) {
  AffineKey key{1, static_cast<int64_t>(position), nullptr, nullptr};
  auto it = impl_->affineUnique.find(key);
  if (it != impl_->affineUnique.end())
    return it->second;
  return impl_->affineUnique[key] =
             alloc<AffineExpr>(AffineExpr::Kind::Dim, position, nullptr,
                               nullptr);
}

const AffineExpr *MContext::affineSymbol(unsigned position) {
  AffineKey key{2, static_cast<int64_t>(position), nullptr, nullptr};
  auto it = impl_->affineUnique.find(key);
  if (it != impl_->affineUnique.end())
    return it->second;
  return impl_->affineUnique[key] =
             alloc<AffineExpr>(AffineExpr::Kind::Symbol, position, nullptr,
                               nullptr);
}

static int kindTag(AffineExpr::Kind kind) {
  switch (kind) {
  case AffineExpr::Kind::Add:
    return 3;
  case AffineExpr::Kind::Mul:
    return 4;
  case AffineExpr::Kind::Mod:
    return 5;
  case AffineExpr::Kind::FloorDiv:
    return 6;
  case AffineExpr::Kind::CeilDiv:
    return 7;
  default:
    unreachable("not a binary affine kind");
  }
}

static int64_t floorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0)))
    --q;
  return q;
}

static int64_t ceilDiv(int64_t a, int64_t b) { return -floorDiv(-a, b); }

static int64_t euclidMod(int64_t a, int64_t b) {
  int64_t r = a % b;
  return r < 0 ? r + (b < 0 ? -b : b) : r;
}

const AffineExpr *MContext::affineAdd(const AffineExpr *lhs,
                                      const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant())
    return affineConst(lhs->value() + rhs->value());
  if (lhs->isConstant() && lhs->value() == 0)
    return rhs;
  if (rhs->isConstant() && rhs->value() == 0)
    return lhs;
  return impl_->makeBinary(*this, AffineExpr::Kind::Add, lhs, rhs);
}

const AffineExpr *MContext::affineMul(const AffineExpr *lhs,
                                      const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant())
    return affineConst(lhs->value() * rhs->value());
  if (lhs->isConstant() && lhs->value() == 1)
    return rhs;
  if (rhs->isConstant() && rhs->value() == 1)
    return lhs;
  if ((lhs->isConstant() && lhs->value() == 0) ||
      (rhs->isConstant() && rhs->value() == 0))
    return affineConst(0);
  return impl_->makeBinary(*this, AffineExpr::Kind::Mul, lhs, rhs);
}

const AffineExpr *MContext::Impl::makeBinary(MContext &ctx,
                                             AffineExpr::Kind kind,
                                             const AffineExpr *lhs,
                                             const AffineExpr *rhs) {
  AffineKey key{kindTag(kind), 0, lhs, rhs};
  auto it = affineUnique.find(key);
  if (it != affineUnique.end())
    return it->second;
  return affineUnique[key] = ctx.alloc<AffineExpr>(kind, 0, lhs, rhs);
}

const AffineExpr *MContext::affineMod(const AffineExpr *lhs,
                                      const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant() && rhs->value() != 0)
    return affineConst(euclidMod(lhs->value(), rhs->value()));
  return impl_->makeBinary(*this, AffineExpr::Kind::Mod, lhs, rhs);
}

const AffineExpr *MContext::affineFloorDiv(const AffineExpr *lhs,
                                           const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant() && rhs->value() != 0)
    return affineConst(floorDiv(lhs->value(), rhs->value()));
  return impl_->makeBinary(*this, AffineExpr::Kind::FloorDiv, lhs, rhs);
}

const AffineExpr *MContext::affineCeilDiv(const AffineExpr *lhs,
                                          const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant() && rhs->value() != 0)
    return affineConst(ceilDiv(lhs->value(), rhs->value()));
  return impl_->makeBinary(*this, AffineExpr::Kind::CeilDiv, lhs, rhs);
}

// --- AffineExpr / AffineMap methods ---

int64_t AffineExpr::evaluate(const std::vector<int64_t> &dims,
                             const std::vector<int64_t> &symbols) const {
  switch (kind_) {
  case Kind::Constant:
    return value_;
  case Kind::Dim:
    return dims.at(static_cast<size_t>(value_));
  case Kind::Symbol:
    return symbols.at(static_cast<size_t>(value_));
  case Kind::Add:
    return lhs_->evaluate(dims, symbols) + rhs_->evaluate(dims, symbols);
  case Kind::Mul:
    return lhs_->evaluate(dims, symbols) * rhs_->evaluate(dims, symbols);
  case Kind::Mod:
    return euclidMod(lhs_->evaluate(dims, symbols),
                     rhs_->evaluate(dims, symbols));
  case Kind::FloorDiv:
    return floorDiv(lhs_->evaluate(dims, symbols),
                    rhs_->evaluate(dims, symbols));
  case Kind::CeilDiv:
    return ceilDiv(lhs_->evaluate(dims, symbols),
                   rhs_->evaluate(dims, symbols));
  }
  unreachable("bad affine kind");
}

std::string AffineExpr::str() const {
  switch (kind_) {
  case Kind::Constant:
    return strfmt("%lld", static_cast<long long>(value_));
  case Kind::Dim:
    return strfmt("d%lld", static_cast<long long>(value_));
  case Kind::Symbol:
    return strfmt("s%lld", static_cast<long long>(value_));
  case Kind::Add:
    return "(" + lhs_->str() + " + " + rhs_->str() + ")";
  case Kind::Mul:
    return "(" + lhs_->str() + " * " + rhs_->str() + ")";
  case Kind::Mod:
    return "(" + lhs_->str() + " mod " + rhs_->str() + ")";
  case Kind::FloorDiv:
    return "(" + lhs_->str() + " floordiv " + rhs_->str() + ")";
  case Kind::CeilDiv:
    return "(" + lhs_->str() + " ceildiv " + rhs_->str() + ")";
  }
  unreachable("bad affine kind");
}

std::vector<int64_t>
AffineMap::evaluate(const std::vector<int64_t> &dims,
                    const std::vector<int64_t> &symbols) const {
  std::vector<int64_t> out;
  out.reserve(results_.size());
  for (const AffineExpr *expr : results_)
    out.push_back(expr->evaluate(dims, symbols));
  return out;
}

AffineMap AffineMap::identity(MContext &ctx, unsigned rank) {
  std::vector<const AffineExpr *> results;
  for (unsigned i = 0; i < rank; ++i)
    results.push_back(ctx.affineDim(i));
  return AffineMap(rank, 0, std::move(results));
}

std::string AffineMap::str() const {
  std::string out = "(";
  for (unsigned i = 0; i < numDims_; ++i) {
    if (i)
      out += ", ";
    out += strfmt("d%u", i);
  }
  out += ")";
  if (numSymbols_) {
    out += "[";
    for (unsigned i = 0; i < numSymbols_; ++i) {
      if (i)
        out += ", ";
      out += strfmt("s%u", i);
    }
    out += "]";
  }
  out += " -> (";
  for (size_t i = 0; i < results_.size(); ++i) {
    if (i)
      out += ", ";
    out += results_[i]->str();
  }
  out += ")";
  return out;
}

// --- Type / Attribute printing ---

std::string Type::str() const {
  switch (kind_) {
  case Kind::Index:
    return "index";
  case Kind::None:
    return "none";
  case Kind::Integer:
    return strfmt("i%u", static_cast<const IntegerType *>(this)->width());
  case Kind::Float:
    return "f32";
  case Kind::Double:
    return "f64";
  case Kind::MemRef: {
    auto *mt = static_cast<const MemRefType *>(this);
    std::string out = "memref<";
    for (int64_t d : mt->shape())
      out += strfmt("%lldx", static_cast<long long>(d));
    out += mt->elementType()->str() + ">";
    return out;
  }
  case Kind::Function: {
    auto *ft = static_cast<const FunctionType *>(this);
    std::string out = "(";
    for (size_t i = 0; i < ft->inputs().size(); ++i) {
      if (i)
        out += ", ";
      out += ft->inputs()[i]->str();
    }
    out += ") -> (";
    for (size_t i = 0; i < ft->results().size(); ++i) {
      if (i)
        out += ", ";
      out += ft->results()[i]->str();
    }
    out += ")";
    return out;
  }
  }
  unreachable("bad type kind");
}

std::string Attribute::str() const {
  switch (kind_) {
  case Kind::Integer:
    return strfmt("%lld", static_cast<long long>(
                              static_cast<const IntegerAttr *>(this)->value()));
  case Kind::Float:
    // Shortest round-trip form, locale-independent: %g honours LC_NUMERIC
    // and prints "1,5" under a comma-decimal locale, breaking reparse.
    return json::shortestDouble(static_cast<const FloatAttr *>(this)->value());
  case Kind::String:
    return "\"" + static_cast<const StringAttr *>(this)->value() + "\"";
  case Kind::Type:
    return static_cast<const TypeAttr *>(this)->value()->str();
  case Kind::Array: {
    std::string out = "[";
    const auto &elems = static_cast<const ArrayAttr *>(this)->value();
    for (size_t i = 0; i < elems.size(); ++i) {
      if (i)
        out += ", ";
      out += elems[i]->str();
    }
    out += "]";
    return out;
  }
  case Kind::AffineMap:
    return "affine_map<" +
           static_cast<const AffineMapAttr *>(this)->value().str() + ">";
  case Kind::Unit:
    return "unit";
  }
  unreachable("bad attribute kind");
}

} // namespace mha::mir
