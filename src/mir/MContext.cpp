#include "mir/MContext.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <map>
#include <tuple>
#include <vector>

namespace mha::mir {

namespace {
class SimpleMType : public Type {
public:
  SimpleMType(MContext &ctx, Kind kind) : Type(ctx, kind) {}
};
} // namespace

struct MContext::Impl {
  explicit Impl(MContext &ctx)
      : indexTy(ctx, Type::Kind::Index), noneTy(ctx, Type::Kind::None),
        f32Ty(ctx, Type::Kind::Float), f64Ty(ctx, Type::Kind::Double) {}

  SimpleMType indexTy, noneTy, f32Ty, f64Ty;
  std::map<unsigned, std::unique_ptr<IntegerType>> intTypes;
  std::vector<std::unique_ptr<MemRefType>> memrefTypes;
  std::vector<std::unique_ptr<FunctionType>> fnTypes;

  std::map<int64_t, std::unique_ptr<IntegerAttr>> intAttrs;
  std::map<double, std::unique_ptr<FloatAttr>> floatAttrs;
  std::map<std::string, std::unique_ptr<StringAttr>> stringAttrs;
  std::map<Type *, std::unique_ptr<TypeAttr>> typeAttrs;
  std::vector<std::unique_ptr<ArrayAttr>> arrayAttrs;
  std::vector<std::unique_ptr<AffineMapAttr>> mapAttrs;
  std::unique_ptr<UnitAttr> unitAttr;

  std::vector<std::unique_ptr<AffineExpr>> affineExprs;
  std::map<std::tuple<int, int64_t, const AffineExpr *, const AffineExpr *>,
           const AffineExpr *>
      affineUnique;

  const AffineExpr *makeBinary(AffineExpr::Kind kind, const AffineExpr *lhs,
                               const AffineExpr *rhs);
};

MContext::MContext() : impl_(std::make_unique<Impl>(*this)) {}
MContext::~MContext() = default;

Type *MContext::indexTy() { return &impl_->indexTy; }
Type *MContext::noneTy() { return &impl_->noneTy; }
Type *MContext::f32() { return &impl_->f32Ty; }
Type *MContext::f64() { return &impl_->f64Ty; }

IntegerType *MContext::intTy(unsigned width) {
  auto &slot = impl_->intTypes[width];
  if (!slot)
    slot.reset(new IntegerType(*this, width));
  return slot.get();
}

MemRefType *MContext::memrefTy(std::vector<int64_t> shape, Type *element) {
  for (auto &mt : impl_->memrefTypes)
    if (mt->shape() == shape && mt->elementType() == element)
      return mt.get();
  impl_->memrefTypes.emplace_back(
      new MemRefType(*this, std::move(shape), element));
  return impl_->memrefTypes.back().get();
}

FunctionType *MContext::fnTy(std::vector<Type *> inputs,
                             std::vector<Type *> results) {
  for (auto &ft : impl_->fnTypes)
    if (ft->inputs() == inputs && ft->results() == results)
      return ft.get();
  impl_->fnTypes.emplace_back(
      new FunctionType(*this, std::move(inputs), std::move(results)));
  return impl_->fnTypes.back().get();
}

const IntegerAttr *MContext::intAttr(int64_t value) {
  auto &slot = impl_->intAttrs[value];
  if (!slot)
    slot.reset(new IntegerAttr(value));
  return slot.get();
}

const FloatAttr *MContext::floatAttr(double value) {
  auto &slot = impl_->floatAttrs[value];
  if (!slot)
    slot.reset(new FloatAttr(value));
  return slot.get();
}

const StringAttr *MContext::stringAttr(std::string value) {
  auto &slot = impl_->stringAttrs[value];
  if (!slot)
    slot.reset(new StringAttr(value));
  return slot.get();
}

const TypeAttr *MContext::typeAttr(Type *type) {
  auto &slot = impl_->typeAttrs[type];
  if (!slot)
    slot.reset(new TypeAttr(type));
  return slot.get();
}

const ArrayAttr *MContext::arrayAttr(std::vector<const Attribute *> value) {
  for (auto &a : impl_->arrayAttrs)
    if (a->value() == value)
      return a.get();
  impl_->arrayAttrs.emplace_back(new ArrayAttr(std::move(value)));
  return impl_->arrayAttrs.back().get();
}

const AffineMapAttr *MContext::affineMapAttr(AffineMap map) {
  for (auto &a : impl_->mapAttrs)
    if (a->value() == map)
      return a.get();
  impl_->mapAttrs.emplace_back(new AffineMapAttr(std::move(map)));
  return impl_->mapAttrs.back().get();
}

const UnitAttr *MContext::unitAttr() {
  if (!impl_->unitAttr)
    impl_->unitAttr.reset(new UnitAttr());
  return impl_->unitAttr.get();
}

// --- Affine expressions ---

const AffineExpr *MContext::affineConst(int64_t value) {
  auto key = std::make_tuple(0, value, nullptr, nullptr);
  auto it = impl_->affineUnique.find(key);
  if (it != impl_->affineUnique.end())
    return it->second;
  impl_->affineExprs.emplace_back(
      new AffineExpr(AffineExpr::Kind::Constant, value, nullptr, nullptr));
  return impl_->affineUnique[key] = impl_->affineExprs.back().get();
}

const AffineExpr *MContext::affineDim(unsigned position) {
  auto key = std::make_tuple(1, static_cast<int64_t>(position), nullptr,
                             nullptr);
  auto it = impl_->affineUnique.find(key);
  if (it != impl_->affineUnique.end())
    return it->second;
  impl_->affineExprs.emplace_back(
      new AffineExpr(AffineExpr::Kind::Dim, position, nullptr, nullptr));
  return impl_->affineUnique[key] = impl_->affineExprs.back().get();
}

const AffineExpr *MContext::affineSymbol(unsigned position) {
  auto key = std::make_tuple(2, static_cast<int64_t>(position), nullptr,
                             nullptr);
  auto it = impl_->affineUnique.find(key);
  if (it != impl_->affineUnique.end())
    return it->second;
  impl_->affineExprs.emplace_back(
      new AffineExpr(AffineExpr::Kind::Symbol, position, nullptr, nullptr));
  return impl_->affineUnique[key] = impl_->affineExprs.back().get();
}

static int kindTag(AffineExpr::Kind kind) {
  switch (kind) {
  case AffineExpr::Kind::Add:
    return 3;
  case AffineExpr::Kind::Mul:
    return 4;
  case AffineExpr::Kind::Mod:
    return 5;
  case AffineExpr::Kind::FloorDiv:
    return 6;
  case AffineExpr::Kind::CeilDiv:
    return 7;
  default:
    unreachable("not a binary affine kind");
  }
}

static int64_t floorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0)))
    --q;
  return q;
}

static int64_t ceilDiv(int64_t a, int64_t b) { return -floorDiv(-a, b); }

static int64_t euclidMod(int64_t a, int64_t b) {
  int64_t r = a % b;
  return r < 0 ? r + (b < 0 ? -b : b) : r;
}

const AffineExpr *MContext::affineAdd(const AffineExpr *lhs,
                                      const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant())
    return affineConst(lhs->value() + rhs->value());
  if (lhs->isConstant() && lhs->value() == 0)
    return rhs;
  if (rhs->isConstant() && rhs->value() == 0)
    return lhs;
  auto key = std::make_tuple(kindTag(AffineExpr::Kind::Add), int64_t(0), lhs,
                             rhs);
  auto it = impl_->affineUnique.find(key);
  if (it != impl_->affineUnique.end())
    return it->second;
  impl_->affineExprs.emplace_back(
      new AffineExpr(AffineExpr::Kind::Add, 0, lhs, rhs));
  return impl_->affineUnique[key] = impl_->affineExprs.back().get();
}

const AffineExpr *MContext::affineMul(const AffineExpr *lhs,
                                      const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant())
    return affineConst(lhs->value() * rhs->value());
  if (lhs->isConstant() && lhs->value() == 1)
    return rhs;
  if (rhs->isConstant() && rhs->value() == 1)
    return lhs;
  if ((lhs->isConstant() && lhs->value() == 0) ||
      (rhs->isConstant() && rhs->value() == 0))
    return affineConst(0);
  auto key = std::make_tuple(kindTag(AffineExpr::Kind::Mul), int64_t(0), lhs,
                             rhs);
  auto it = impl_->affineUnique.find(key);
  if (it != impl_->affineUnique.end())
    return it->second;
  impl_->affineExprs.emplace_back(
      new AffineExpr(AffineExpr::Kind::Mul, 0, lhs, rhs));
  return impl_->affineUnique[key] = impl_->affineExprs.back().get();
}

const AffineExpr *MContext::Impl::makeBinary(AffineExpr::Kind kind,
                                             const AffineExpr *lhs,
                                             const AffineExpr *rhs) {
  auto key = std::make_tuple(kindTag(kind), int64_t(0), lhs, rhs);
  auto it = affineUnique.find(key);
  if (it != affineUnique.end())
    return it->second;
  affineExprs.emplace_back(new AffineExpr(kind, 0, lhs, rhs));
  return affineUnique[key] = affineExprs.back().get();
}

const AffineExpr *MContext::affineMod(const AffineExpr *lhs,
                                      const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant() && rhs->value() != 0)
    return affineConst(euclidMod(lhs->value(), rhs->value()));
  return impl_->makeBinary(AffineExpr::Kind::Mod, lhs, rhs);
}

const AffineExpr *MContext::affineFloorDiv(const AffineExpr *lhs,
                                           const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant() && rhs->value() != 0)
    return affineConst(floorDiv(lhs->value(), rhs->value()));
  return impl_->makeBinary(AffineExpr::Kind::FloorDiv, lhs, rhs);
}

const AffineExpr *MContext::affineCeilDiv(const AffineExpr *lhs,
                                          const AffineExpr *rhs) {
  if (lhs->isConstant() && rhs->isConstant() && rhs->value() != 0)
    return affineConst(ceilDiv(lhs->value(), rhs->value()));
  return impl_->makeBinary(AffineExpr::Kind::CeilDiv, lhs, rhs);
}

// --- AffineExpr / AffineMap methods ---

int64_t AffineExpr::evaluate(const std::vector<int64_t> &dims,
                             const std::vector<int64_t> &symbols) const {
  switch (kind_) {
  case Kind::Constant:
    return value_;
  case Kind::Dim:
    return dims.at(static_cast<size_t>(value_));
  case Kind::Symbol:
    return symbols.at(static_cast<size_t>(value_));
  case Kind::Add:
    return lhs_->evaluate(dims, symbols) + rhs_->evaluate(dims, symbols);
  case Kind::Mul:
    return lhs_->evaluate(dims, symbols) * rhs_->evaluate(dims, symbols);
  case Kind::Mod:
    return euclidMod(lhs_->evaluate(dims, symbols),
                     rhs_->evaluate(dims, symbols));
  case Kind::FloorDiv:
    return floorDiv(lhs_->evaluate(dims, symbols),
                    rhs_->evaluate(dims, symbols));
  case Kind::CeilDiv:
    return ceilDiv(lhs_->evaluate(dims, symbols),
                   rhs_->evaluate(dims, symbols));
  }
  unreachable("bad affine kind");
}

std::string AffineExpr::str() const {
  switch (kind_) {
  case Kind::Constant:
    return strfmt("%lld", static_cast<long long>(value_));
  case Kind::Dim:
    return strfmt("d%lld", static_cast<long long>(value_));
  case Kind::Symbol:
    return strfmt("s%lld", static_cast<long long>(value_));
  case Kind::Add:
    return "(" + lhs_->str() + " + " + rhs_->str() + ")";
  case Kind::Mul:
    return "(" + lhs_->str() + " * " + rhs_->str() + ")";
  case Kind::Mod:
    return "(" + lhs_->str() + " mod " + rhs_->str() + ")";
  case Kind::FloorDiv:
    return "(" + lhs_->str() + " floordiv " + rhs_->str() + ")";
  case Kind::CeilDiv:
    return "(" + lhs_->str() + " ceildiv " + rhs_->str() + ")";
  }
  unreachable("bad affine kind");
}

std::vector<int64_t>
AffineMap::evaluate(const std::vector<int64_t> &dims,
                    const std::vector<int64_t> &symbols) const {
  std::vector<int64_t> out;
  out.reserve(results_.size());
  for (const AffineExpr *expr : results_)
    out.push_back(expr->evaluate(dims, symbols));
  return out;
}

AffineMap AffineMap::identity(MContext &ctx, unsigned rank) {
  std::vector<const AffineExpr *> results;
  for (unsigned i = 0; i < rank; ++i)
    results.push_back(ctx.affineDim(i));
  return AffineMap(rank, 0, std::move(results));
}

std::string AffineMap::str() const {
  std::string out = "(";
  for (unsigned i = 0; i < numDims_; ++i) {
    if (i)
      out += ", ";
    out += strfmt("d%u", i);
  }
  out += ")";
  if (numSymbols_) {
    out += "[";
    for (unsigned i = 0; i < numSymbols_; ++i) {
      if (i)
        out += ", ";
      out += strfmt("s%u", i);
    }
    out += "]";
  }
  out += " -> (";
  for (size_t i = 0; i < results_.size(); ++i) {
    if (i)
      out += ", ";
    out += results_[i]->str();
  }
  out += ")";
  return out;
}

// --- Type / Attribute printing ---

std::string Type::str() const {
  switch (kind_) {
  case Kind::Index:
    return "index";
  case Kind::None:
    return "none";
  case Kind::Integer:
    return strfmt("i%u", static_cast<const IntegerType *>(this)->width());
  case Kind::Float:
    return "f32";
  case Kind::Double:
    return "f64";
  case Kind::MemRef: {
    auto *mt = static_cast<const MemRefType *>(this);
    std::string out = "memref<";
    for (int64_t d : mt->shape())
      out += strfmt("%lldx", static_cast<long long>(d));
    out += mt->elementType()->str() + ">";
    return out;
  }
  case Kind::Function: {
    auto *ft = static_cast<const FunctionType *>(this);
    std::string out = "(";
    for (size_t i = 0; i < ft->inputs().size(); ++i) {
      if (i)
        out += ", ";
      out += ft->inputs()[i]->str();
    }
    out += ") -> (";
    for (size_t i = 0; i < ft->results().size(); ++i) {
      if (i)
        out += ", ";
      out += ft->results()[i]->str();
    }
    out += ")";
    return out;
  }
  }
  unreachable("bad type kind");
}

std::string Attribute::str() const {
  switch (kind_) {
  case Kind::Integer:
    return strfmt("%lld", static_cast<long long>(
                              static_cast<const IntegerAttr *>(this)->value()));
  case Kind::Float:
    return strfmt("%g", static_cast<const FloatAttr *>(this)->value());
  case Kind::String:
    return "\"" + static_cast<const StringAttr *>(this)->value() + "\"";
  case Kind::Type:
    return static_cast<const TypeAttr *>(this)->value()->str();
  case Kind::Array: {
    std::string out = "[";
    const auto &elems = static_cast<const ArrayAttr *>(this)->value();
    for (size_t i = 0; i < elems.size(); ++i) {
      if (i)
        out += ", ";
      out += elems[i]->str();
    }
    out += "]";
    return out;
  }
  case Kind::AffineMap:
    return "affine_map<" +
           static_cast<const AffineMapAttr *>(this)->value().str() + ">";
  case Kind::Unit:
    return "unit";
  }
  unreachable("bad attribute kind");
}

} // namespace mha::mir
