// Pass.h - pass pipeline for MiniMLIR modules.
#pragma once

#include "mir/Ops.h"
#include "support/Diagnostics.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mha::mir {

using MPassStats = std::map<std::string, int64_t>;

class MPass {
public:
  virtual ~MPass() = default;
  virtual std::string name() const = 0;
  virtual bool run(ModuleOp module, MPassStats &stats,
                   DiagnosticEngine &diags) = 0;
};

class MLambdaPass : public MPass {
public:
  using Fn = std::function<bool(ModuleOp, MPassStats &, DiagnosticEngine &)>;
  MLambdaPass(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  bool run(ModuleOp module, MPassStats &stats,
           DiagnosticEngine &diags) override {
    return fn_(module, stats, diags);
  }

private:
  std::string name_;
  Fn fn_;
};

struct MPassRecord {
  std::string passName;
  bool changed = false;
  double millis = 0;
  MPassStats stats;
};

class MPassManager {
public:
  explicit MPassManager(bool verifyEach = true) : verifyEach_(verifyEach) {}

  void add(std::unique_ptr<MPass> pass) { passes_.push_back(std::move(pass)); }
  void add(std::string name, MLambdaPass::Fn fn) {
    passes_.push_back(
        std::make_unique<MLambdaPass>(std::move(name), std::move(fn)));
  }

  bool run(ModuleOp module, DiagnosticEngine &diags);

  const std::vector<MPassRecord> &records() const { return records_; }

private:
  bool verifyEach_;
  std::vector<std::unique_ptr<MPass>> passes_;
  std::vector<MPassRecord> records_;
};

} // namespace mha::mir
