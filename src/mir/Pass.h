// Pass.h - pass pipeline for MiniMLIR modules.
#pragma once

#include "mir/Ops.h"
#include "support/Diagnostics.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mha::mir {

using MPassStats = std::map<std::string, int64_t>;

class MPass {
public:
  virtual ~MPass() = default;
  virtual std::string name() const = 0;
  virtual bool run(ModuleOp module, MPassStats &stats,
                   DiagnosticEngine &diags) = 0;
};

class MLambdaPass : public MPass {
public:
  using Fn = std::function<bool(ModuleOp, MPassStats &, DiagnosticEngine &)>;
  MLambdaPass(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  bool run(ModuleOp module, MPassStats &stats,
           DiagnosticEngine &diags) override {
    return fn_(module, stats, diags);
  }

private:
  std::string name_;
  Fn fn_;
};

struct MPassRecord {
  std::string passName;
  bool changed = false;
  double millis = 0;
  // IR-delta: operation count around the pass.
  int64_t opsBefore = 0;
  int64_t opsAfter = 0;
  MPassStats stats;
};

/// Observation hooks around each MLIR pass run, mirroring
/// lir::PassInstrumentation: before hooks fire in registration order,
/// after hooks in reverse, and `record` is fully populated (timing, op
/// delta, stats) by the time afterPass runs. Implementations must not
/// mutate the module; ones shared across concurrently-running pipelines
/// must be thread-safe.
class MPassInstrumentation {
public:
  virtual ~MPassInstrumentation() = default;
  virtual void beforePass(const MPass &, ModuleOp) {}
  virtual void afterPass(const MPass &, ModuleOp, const MPassRecord &) {}
};

/// Counts every operation in the module (the module op itself included).
int64_t countOps(ModuleOp module);

class MPassManager {
public:
  explicit MPassManager(bool verifyEach = true) : verifyEach_(verifyEach) {}

  void add(std::unique_ptr<MPass> pass) { passes_.push_back(std::move(pass)); }
  void add(std::string name, MLambdaPass::Fn fn) {
    passes_.push_back(
        std::make_unique<MLambdaPass>(std::move(name), std::move(fn)));
  }

  /// Registers an observation hook (not owned; must outlive run()).
  void addInstrumentation(MPassInstrumentation *instrumentation) {
    instrumentations_.push_back(instrumentation);
  }

  bool run(ModuleOp module, DiagnosticEngine &diags);

  const std::vector<MPassRecord> &records() const { return records_; }

private:
  bool verifyEach_;
  std::vector<std::unique_ptr<MPass>> passes_;
  std::vector<MPassInstrumentation *> instrumentations_;
  std::vector<MPassRecord> records_;
};

} // namespace mha::mir
