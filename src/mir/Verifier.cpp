#include "mir/Verifier.h"

#include "mir/Ops.h"
#include "mir/Printer.h"
#include "support/StringUtils.h"

#include <set>

namespace mha::mir {

namespace {

class ModuleVerifier {
public:
  explicit ModuleVerifier(DiagnosticEngine &diags) : diags_(diags) {}

  bool run(ModuleOp module) {
    for (Operation *op : module.body()->opPtrs()) {
      if (!op->is(ops::Func)) {
        error(op, "module body may only contain func.func ops");
        continue;
      }
      verifyFunc(op);
    }
    return !diags_.hadError();
  }

private:
  void error(Operation *op, const std::string &msg) {
    diags_.error(strfmt("%s: in op '%s'", msg.c_str(), op->name().c_str()));
  }

  void verifyFunc(Operation *fnOp) {
    if (!dyn_cast<StringAttr>(fnOp->attr("sym_name")) ||
        !dyn_cast<TypeAttr>(fnOp->attr("function_type"))) {
      error(fnOp, "func.func requires sym_name and function_type attrs");
      return;
    }
    FuncOp fn = FuncOp::wrap(fnOp);
    FunctionType *type = fn.type();
    if (fn.numArgs() != type->inputs().size()) {
      error(fnOp, "entry block argument count does not match signature");
      return;
    }
    for (unsigned i = 0; i < fn.numArgs(); ++i)
      if (fn.arg(i)->type() != type->inputs()[i])
        error(fnOp, strfmt("entry block argument %u type mismatch", i));

    if (fn.entryBlock()->empty() ||
        !fn.entryBlock()->back()->is(ops::Return)) {
      error(fnOp, "function body must end with func.return");
      return;
    }
    verifyBlock(fn.entryBlock());
  }

  void verifyBlock(Block *block) {
    std::set<Value *> defined;
    for (unsigned i = 0; i < block->numArgs(); ++i)
      defined.insert(block->arg(i));
    // Values from enclosing scopes.
    for (Operation *enclosing = block->parentOp(); enclosing;
         enclosing = enclosing->parentOp()) {
      Block *outer = enclosing->parentBlock();
      if (!outer)
        break;
      for (unsigned i = 0; i < outer->numArgs(); ++i)
        defined.insert(outer->arg(i));
      for (Operation *sibling : outer->opPtrs()) {
        if (sibling == enclosing)
          break;
        for (unsigned i = 0; i < sibling->numResults(); ++i)
          defined.insert(sibling->result(i));
      }
    }

    for (Operation *op : block->opPtrs()) {
      for (unsigned i = 0; i < op->numOperands(); ++i) {
        Value *v = op->operand(i);
        if (!v) {
          error(op, strfmt("operand %u is null", i));
          continue;
        }
        if (!defined.count(v))
          error(op, strfmt("operand %u used before definition", i));
      }
      verifyOp(op);
      for (unsigned i = 0; i < op->numResults(); ++i)
        defined.insert(op->result(i));
      for (unsigned r = 0; r < op->numRegions(); ++r)
        for (auto &nested : *op->region(r))
          verifyBlock(nested.get());
    }
  }

  void verifyOp(Operation *op) {
    const std::string &name = op->name();
    auto expectOperands = [&](unsigned n) {
      if (op->numOperands() != n)
        error(op, strfmt("expected %u operands, got %u", n,
                         op->numOperands()));
    };

    if (name == ops::ConstantOp) {
      expectOperands(0);
      if (!op->attr("value"))
        error(op, "arith.constant requires a value attr");
      if (op->numResults() != 1)
        error(op, "arith.constant yields one result");
    } else if (name == ops::AddI || name == ops::SubI || name == ops::MulI ||
               name == ops::DivSI || name == ops::RemSI) {
      expectOperands(2);
      if (op->numOperands() == 2) {
        if (op->operand(0)->type() != op->operand(1)->type())
          error(op, "operand type mismatch");
        if (!op->operand(0)->type()->isIntOrIndex())
          error(op, "integer arith op on non-integer type");
      }
    } else if (name == ops::AddF || name == ops::SubF || name == ops::MulF ||
               name == ops::DivF) {
      expectOperands(2);
      if (op->numOperands() == 2 && !op->operand(0)->type()->isFloat())
        error(op, "float arith op on non-float type");
    } else if (name == ops::CmpI || name == ops::CmpF) {
      expectOperands(2);
      const auto *pred = dyn_cast<StringAttr>(op->attr("predicate"));
      if (!pred ||
          !isValidCmpPredicate(pred->value(), name == ops::CmpF))
        error(op, "bad or missing comparison predicate");
    } else if (name == ops::MemRefLoad || name == ops::MemRefStore) {
      unsigned memrefIdx = name == ops::MemRefStore ? 1 : 0;
      if (op->numOperands() <= memrefIdx) {
        error(op, "missing memref operand");
        return;
      }
      auto *mt = dyn_cast<MemRefType>(op->operand(memrefIdx)->type());
      if (!mt) {
        error(op, "expected memref operand");
        return;
      }
      unsigned indexCount = op->numOperands() - memrefIdx - 1;
      if (indexCount != mt->rank())
        error(op, "index count does not match memref rank");
      for (unsigned i = memrefIdx + 1; i < op->numOperands(); ++i)
        if (!op->operand(i)->type()->isIndex())
          error(op, "memref indices must be of index type");
    } else if (name == ops::AffineLoad || name == ops::AffineStore) {
      unsigned memrefIdx = name == ops::AffineStore ? 1 : 0;
      auto *mt = op->numOperands() > memrefIdx
                     ? dyn_cast<MemRefType>(op->operand(memrefIdx)->type())
                     : nullptr;
      const auto *mapAttr = dyn_cast<AffineMapAttr>(op->attr("map"));
      if (!mt || !mapAttr) {
        error(op, "affine access requires memref operand and map attr");
        return;
      }
      const AffineMap &map = mapAttr->value();
      if (map.numResults() != mt->rank())
        error(op, "map result count does not match memref rank");
      if (map.numDims() != op->numOperands() - memrefIdx - 1)
        error(op, "map dim count does not match operand count");
    } else if (name == ops::AffineApply) {
      const auto *mapAttr = dyn_cast<AffineMapAttr>(op->attr("map"));
      if (!mapAttr || mapAttr->value().numResults() != 1)
        error(op, "affine.apply requires a single-result map");
      else if (mapAttr->value().numDims() != op->numOperands())
        error(op, "affine.apply operand count mismatch");
    } else if (name == ops::AffineFor) {
      expectOperands(0);
      if (!dyn_cast<IntegerAttr>(op->attr("lb")) ||
          !dyn_cast<IntegerAttr>(op->attr("ub")) ||
          !dyn_cast<IntegerAttr>(op->attr("step")))
        error(op, "affine.for requires integer lb/ub/step attrs");
      if (op->intAttrOr("step", 1) <= 0)
        error(op, "affine.for step must be positive");
      verifyLoopRegion(op, ops::AffineYield);
    } else if (name == ops::ScfFor) {
      expectOperands(3);
      for (unsigned i = 0; i < op->numOperands() && i < 3; ++i)
        if (!op->operand(i)->type()->isIndex())
          error(op, "scf.for bounds must be index-typed");
      verifyLoopRegion(op, ops::ScfYield);
    }
  }

  void verifyLoopRegion(Operation *op, const char *yieldName) {
    if (op->numRegions() != 1 || op->region(0)->empty()) {
      error(op, "loop requires one non-empty region");
      return;
    }
    Block *body = op->region(0)->entry();
    if (body->numArgs() != 1 || !body->arg(0)->type()->isIndex()) {
      error(op, "loop body must have a single index argument");
      return;
    }
    if (body->empty() || !body->back()->is(yieldName))
      error(op, strfmt("loop body must end with %s", yieldName));
  }

  DiagnosticEngine &diags_;
};

} // namespace

bool verifyModule(ModuleOp module, DiagnosticEngine &diags) {
  return ModuleVerifier(diags).run(module);
}

} // namespace mha::mir
