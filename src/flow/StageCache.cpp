#include "flow/StageCache.h"

#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"

#include <mutex>
#include <unordered_map>

namespace mha::flow {

namespace {

telemetry::Statistic statMlirHit("flow.cache", "mlir.hit",
                                 "MLIR-stage cache hits");
telemetry::Statistic statMlirMiss("flow.cache", "mlir.miss",
                                  "MLIR-stage cache misses");
telemetry::Statistic statBridgeHit("flow.cache", "bridge.hit",
                                   "bridge-stage cache hits");
telemetry::Statistic statBridgeMiss("flow.cache", "bridge.miss",
                                    "bridge-stage cache misses");
telemetry::Statistic statSynthHit("flow.cache", "synth.hit",
                                  "synthesis-stage cache hits");
telemetry::Statistic statSynthMiss("flow.cache", "synth.miss",
                                   "synthesis-stage cache misses");

/// Per-stage capacity bound. Eviction is whole-map: entries are small
/// (printed IR of benchmark kernels) and the working set of any realistic
/// batch/DSE/fuzz run is far below the bound, so a rare full flush beats
/// per-entry LRU bookkeeping on every hot lookup.
constexpr size_t kMaxEntriesPerStage = 4096;

/// Per-stage metrics-registry handles (hit/miss counters gated on
/// metrics::enabled(); the resident-bytes gauge tracks the structural
/// byte total unconditionally so it always matches counters()).
struct StageMetrics {
  metrics::Counter &hits;
  metrics::Counter &misses;
  metrics::Gauge &bytes;

  static StageMetrics make(const char *stage) {
    metrics::Registry &reg = metrics::Registry::global();
    metrics::Labels labels = {{"stage", stage}};
    return StageMetrics{
        reg.counter("mha_stage_cache_hits_total", "stage-cache lookup hits",
                    labels),
        reg.counter("mha_stage_cache_misses_total",
                    "stage-cache lookup misses", labels),
        reg.gauge("mha_stage_cache_bytes",
                  "payload bytes resident in the stage map", labels)};
  }

  static StageMetrics &mlir() {
    static StageMetrics m = make("mlir");
    return m;
  }
  static StageMetrics &bridge() {
    static StageMetrics m = make("bridge");
    return m;
  }
  static StageMetrics &synth() {
    static StageMetrics m = make("synth");
    return m;
  }
};

/// Structural payload size of a cached value: strings at their length,
/// report structures via sizeof plus owned string/vector payloads. An
/// approximation (malloc slack and map-node overhead are not counted) but
/// a consistent one: store/evict adjustments always agree.
int64_t entryBytes(const std::string &text) {
  return static_cast<int64_t>(text.size());
}

int64_t entryBytes(const StageCache::BridgeEntry &entry) {
  int64_t n = static_cast<int64_t>(sizeof(entry) + entry.lirText.size() +
                                   entry.hlsCpp.size());
  for (const auto &[name, value] : entry.adaptorStats)
    n += static_cast<int64_t>(name.size() + sizeof(value));
  return n;
}

int64_t entryBytes(const vhls::SynthesisReport &report) {
  int64_t n = static_cast<int64_t>(sizeof(report) + report.topName.size());
  for (const auto &[name, value] : report.compat.violations)
    n += static_cast<int64_t>(name.size() + sizeof(value));
  for (const vhls::FunctionReport &fn : report.functions) {
    n += static_cast<int64_t>(sizeof(fn) + fn.name.size());
    for (const vhls::LoopReport &loop : fn.loops)
      n += static_cast<int64_t>(sizeof(loop) + loop.name.size() +
                                loop.note.size());
    for (const vhls::ArrayReport &array : fn.arrays)
      n += static_cast<int64_t>(sizeof(array) + array.name.size() +
                                array.partition.size());
  }
  return n;
}

template <typename Value>
bool mapLookup(std::mutex &mutex, std::unordered_map<uint64_t, Value> &map,
               uint64_t key, Value &out, telemetry::Statistic &hit,
               telemetry::Statistic &miss, StageMetrics &sm, int64_t &hitCount,
               int64_t &missCount) {
  std::lock_guard<std::mutex> guard(mutex);
  auto it = map.find(key);
  if (it == map.end()) {
    ++miss;
    ++missCount;
    ++sm.misses;
    return false;
  }
  out = it->second;
  ++hit;
  ++hitCount;
  ++sm.hits;
  return true;
}

/// Stores `value` and keeps `byteTotal` (and the stage's bytes gauge) in
/// step: overwrites subtract the replaced payload, and the whole-map
/// eviction resets the total before the fresh entry lands.
template <typename Value>
void mapStore(std::mutex &mutex, std::unordered_map<uint64_t, Value> &map,
              uint64_t key, Value value, StageMetrics &sm,
              int64_t &byteTotal) {
  std::lock_guard<std::mutex> guard(mutex);
  if (map.size() >= kMaxEntriesPerStage) {
    map.clear();
    byteTotal = 0;
  }
  auto it = map.find(key);
  if (it != map.end())
    byteTotal -= entryBytes(it->second);
  byteTotal += entryBytes(value);
  map[key] = std::move(value);
  sm.bytes.set(byteTotal);
}

} // namespace

struct StageCache::Impl {
  mutable std::mutex mutex;
  std::unordered_map<uint64_t, std::string> mlir;
  std::unordered_map<uint64_t, BridgeEntry> bridge;
  std::unordered_map<uint64_t, vhls::SynthesisReport> synth;
  Counters counters;
};

StageCache::Impl &StageCache::impl() const {
  static Impl instance;
  return instance;
}

StageCache &StageCache::global() {
  static StageCache instance;
  return instance;
}

uint64_t StageCache::synthKey(const std::string &lirText,
                              const vhls::SynthesisOptions &options) {
  static metrics::Histogram &keyUs = metrics::Registry::global().histogram(
      "mha_stage_cache_key_us", "stage-cache key computation time");
  metrics::Timer timer(keyUs);
  HashBuilder hb;
  hb.str("synth").str(lirText);
  const vhls::TargetSpec &t = options.target;
  hb.f64Bits(t.clockPeriodNs).i64(t.memPortsPerBank);
  for (const auto &[fuClass, limit] : t.fuLimits)
    hb.str(fuClass).i64(limit);
  hb.i64(t.deviceDsp)
      .i64(t.deviceBram)
      .i64(t.deviceLut)
      .i64(t.deviceFf)
      .i64(t.lutPerState)
      .i64(t.ffPerState);
  hb.str(options.topFunction)
      .boolean(options.applyUnrollDirectives)
      .boolean(options.strictAcceptance);
  return hb.get();
}

bool StageCache::lookupMlir(uint64_t key, std::string &mirText) {
  Impl &i = impl();
  return mapLookup(i.mutex, i.mlir, key, mirText, statMlirHit, statMlirMiss,
                   StageMetrics::mlir(), i.counters.mlirHits,
                   i.counters.mlirMisses);
}

void StageCache::storeMlir(uint64_t key, std::string mirText) {
  Impl &i = impl();
  mapStore(i.mutex, i.mlir, key, std::move(mirText), StageMetrics::mlir(),
           i.counters.mlirBytes);
}

bool StageCache::lookupBridge(uint64_t key, BridgeEntry &entry) {
  Impl &i = impl();
  return mapLookup(i.mutex, i.bridge, key, entry, statBridgeHit,
                   statBridgeMiss, StageMetrics::bridge(),
                   i.counters.bridgeHits, i.counters.bridgeMisses);
}

void StageCache::storeBridge(uint64_t key, BridgeEntry entry) {
  Impl &i = impl();
  mapStore(i.mutex, i.bridge, key, std::move(entry), StageMetrics::bridge(),
           i.counters.bridgeBytes);
}

bool StageCache::lookupSynth(uint64_t key, vhls::SynthesisReport &report) {
  Impl &i = impl();
  return mapLookup(i.mutex, i.synth, key, report, statSynthHit, statSynthMiss,
                   StageMetrics::synth(), i.counters.synthHits,
                   i.counters.synthMisses);
}

void StageCache::storeSynth(uint64_t key, vhls::SynthesisReport report) {
  Impl &i = impl();
  mapStore(i.mutex, i.synth, key, std::move(report), StageMetrics::synth(),
           i.counters.synthBytes);
}

StageCache::Counters StageCache::counters() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  return i.counters;
}

void StageCache::clear() {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  i.mlir.clear();
  i.bridge.clear();
  i.synth.clear();
  i.counters = Counters();
  StageMetrics::mlir().bytes.set(0);
  StageMetrics::bridge().bytes.set(0);
  StageMetrics::synth().bytes.set(0);
}

size_t StageCache::size() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  return i.mlir.size() + i.bridge.size() + i.synth.size();
}

} // namespace mha::flow
