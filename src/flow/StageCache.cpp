#include "flow/StageCache.h"

#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"

#include <list>
#include <mutex>
#include <unordered_map>

namespace mha::flow {

namespace {

telemetry::Statistic statMlirHit("flow.cache", "mlir.hit",
                                 "MLIR-stage cache hits");
telemetry::Statistic statMlirMiss("flow.cache", "mlir.miss",
                                  "MLIR-stage cache misses");
telemetry::Statistic statBridgeHit("flow.cache", "bridge.hit",
                                   "bridge-stage cache hits");
telemetry::Statistic statBridgeMiss("flow.cache", "bridge.miss",
                                    "bridge-stage cache misses");
telemetry::Statistic statSynthHit("flow.cache", "synth.hit",
                                  "synthesis-stage cache hits");
telemetry::Statistic statSynthMiss("flow.cache", "synth.miss",
                                   "synthesis-stage cache misses");
telemetry::Statistic statEvicted("flow.cache", "evicted",
                                 "stage-cache entries evicted (LRU)");

/// Per-stage entry-count backstop, independent of the byte cap: even an
/// unlimited cache sheds its coldest entry once a stage map reaches this
/// many entries.
constexpr size_t kMaxEntriesPerStage = 4096;

/// Per-stage metrics-registry handles (hit/miss/eviction counters gated
/// on metrics::enabled(); the resident-bytes gauge tracks the structural
/// byte total unconditionally so it always matches counters()).
struct StageMetrics {
  metrics::Counter &hits;
  metrics::Counter &misses;
  metrics::Counter &evictions;
  metrics::Gauge &bytes;

  static StageMetrics make(const char *stage) {
    metrics::Registry &reg = metrics::Registry::global();
    metrics::Labels labels = {{"stage", stage}};
    return StageMetrics{
        reg.counter("mha_stage_cache_hits_total", "stage-cache lookup hits",
                    labels),
        reg.counter("mha_stage_cache_misses_total",
                    "stage-cache lookup misses", labels),
        reg.counter("mha_stage_cache_evictions_total",
                    "stage-cache entries evicted (LRU)", labels),
        reg.gauge("mha_stage_cache_bytes",
                  "payload bytes resident in the stage map", labels)};
  }

  static StageMetrics &mlir() {
    static StageMetrics m = make("mlir");
    return m;
  }
  static StageMetrics &bridge() {
    static StageMetrics m = make("bridge");
    return m;
  }
  static StageMetrics &synth() {
    static StageMetrics m = make("synth");
    return m;
  }
};

/// Structural payload size of a cached value: strings at their length,
/// report structures via sizeof plus owned string/vector payloads. An
/// approximation (malloc slack and map-node overhead are not counted) but
/// a consistent one: store/evict adjustments always agree.
int64_t entryBytes(const std::string &text) {
  return static_cast<int64_t>(text.size());
}

int64_t entryBytes(const StageCache::BridgeEntry &entry) {
  int64_t n = static_cast<int64_t>(sizeof(entry) + entry.lirText.size() +
                                   entry.hlsCpp.size());
  for (const auto &[name, value] : entry.adaptorStats)
    n += static_cast<int64_t>(name.size() + sizeof(value));
  return n;
}

int64_t entryBytes(const vhls::SynthesisReport &report) {
  int64_t n = static_cast<int64_t>(sizeof(report) + report.topName.size());
  for (const auto &[name, value] : report.compat.violations)
    n += static_cast<int64_t>(name.size() + sizeof(value));
  for (const vhls::FunctionReport &fn : report.functions) {
    n += static_cast<int64_t>(sizeof(fn) + fn.name.size());
    for (const vhls::LoopReport &loop : fn.loops)
      n += static_cast<int64_t>(sizeof(loop) + loop.name.size() +
                                loop.note.size());
    for (const vhls::ArrayReport &array : fn.arrays)
      n += static_cast<int64_t>(sizeof(array) + array.name.size() +
                                array.partition.size());
  }
  return n;
}

/// LRU bookkeeping per stage map. The recency list holds (key, seq)
/// pairs, most-recent at the front; `seq` is a cache-wide monotonic touch
/// counter, so the backs of the three stage lists can be compared to find
/// the globally coldest entry when the byte cap needs space.
using LruList = std::list<std::pair<uint64_t, uint64_t>>;

template <typename Value>
struct StageMap {
  struct Node {
    Value value;
    LruList::iterator lru;
  };
  std::unordered_map<uint64_t, Node> map;
  LruList lru;

  /// `seq` of the least-recently-used entry (the eviction candidate);
  /// UINT64_MAX when the map is empty so it never wins the coldest race.
  uint64_t coldestSeq() const {
    return lru.empty() ? UINT64_MAX : lru.back().second;
  }
};

} // namespace

struct StageCache::Impl {
  mutable std::mutex mutex;
  StageMap<std::string> mlir;
  StageMap<BridgeEntry> bridge;
  StageMap<vhls::SynthesisReport> synth;
  Counters counters;
  int64_t limitBytes = 0; // 0 = unbounded
  uint64_t nextSeq = 0;

  /// Drops the LRU entry of `stage`, keeping its byte total, eviction
  /// counters and resident-bytes gauge in step.
  template <typename Value>
  void evictColdest(StageMap<Value> &stage, StageMetrics &sm,
                    int64_t &byteTotal, int64_t &evictedCount) {
    auto it = stage.map.find(stage.lru.back().first);
    byteTotal -= entryBytes(it->second.value);
    stage.map.erase(it);
    stage.lru.pop_back();
    ++evictedCount;
    ++sm.evictions;
    ++statEvicted;
    sm.bytes.set(byteTotal);
  }

  /// Evicts globally-coldest entries (across all three stages) until the
  /// total payload fits the byte cap again.
  void enforceLimit() {
    if (limitBytes <= 0)
      return;
    while (counters.bytes() > limitBytes) {
      uint64_t mlirSeq = mlir.coldestSeq();
      uint64_t bridgeSeq = bridge.coldestSeq();
      uint64_t synthSeq = synth.coldestSeq();
      if (mlirSeq == UINT64_MAX && bridgeSeq == UINT64_MAX &&
          synthSeq == UINT64_MAX)
        return; // all maps empty (cannot happen while bytes() > 0)
      if (mlirSeq <= bridgeSeq && mlirSeq <= synthSeq)
        evictColdest(mlir, StageMetrics::mlir(), counters.mlirBytes,
                     counters.mlirEvictions);
      else if (bridgeSeq <= synthSeq)
        evictColdest(bridge, StageMetrics::bridge(), counters.bridgeBytes,
                     counters.bridgeEvictions);
      else
        evictColdest(synth, StageMetrics::synth(), counters.synthBytes,
                     counters.synthEvictions);
    }
  }

  template <typename Value>
  bool lookup(StageMap<Value> &stage, uint64_t key, Value &out,
              telemetry::Statistic &hit, telemetry::Statistic &miss,
              StageMetrics &sm, int64_t &hitCount, int64_t &missCount) {
    std::lock_guard<std::mutex> guard(mutex);
    auto it = stage.map.find(key);
    if (it == stage.map.end()) {
      ++miss;
      ++missCount;
      ++sm.misses;
      return false;
    }
    // Refresh recency: a hit entry moves to the front with a fresh seq.
    stage.lru.erase(it->second.lru);
    stage.lru.emplace_front(key, nextSeq++);
    it->second.lru = stage.lru.begin();
    out = it->second.value;
    ++hit;
    ++hitCount;
    ++sm.hits;
    return true;
  }

  template <typename Value>
  void store(StageMap<Value> &stage, uint64_t key, Value value,
             StageMetrics &sm, int64_t &byteTotal, int64_t &evictedCount) {
    std::lock_guard<std::mutex> guard(mutex);
    if (stage.map.size() >= kMaxEntriesPerStage &&
        stage.map.find(key) == stage.map.end())
      evictColdest(stage, sm, byteTotal, evictedCount);
    auto it = stage.map.find(key);
    if (it != stage.map.end()) {
      byteTotal -= entryBytes(it->second.value);
      stage.lru.erase(it->second.lru);
      stage.map.erase(it);
    }
    byteTotal += entryBytes(value);
    stage.lru.emplace_front(key, nextSeq++);
    stage.map.emplace(key,
                      typename StageMap<Value>::Node{std::move(value),
                                                     stage.lru.begin()});
    sm.bytes.set(byteTotal);
    enforceLimit();
  }
};

StageCache::Impl &StageCache::impl() const {
  static Impl instance;
  return instance;
}

StageCache &StageCache::global() {
  static StageCache instance;
  return instance;
}

uint64_t StageCache::synthKey(const std::string &lirText,
                              const vhls::SynthesisOptions &options) {
  static metrics::Histogram &keyUs = metrics::Registry::global().histogram(
      "mha_stage_cache_key_us", "stage-cache key computation time");
  metrics::Timer timer(keyUs);
  HashBuilder hb;
  hb.str("synth").str(lirText);
  const vhls::TargetSpec &t = options.target;
  hb.f64Bits(t.clockPeriodNs).i64(t.memPortsPerBank);
  for (const auto &[fuClass, limit] : t.fuLimits)
    hb.str(fuClass).i64(limit);
  hb.i64(t.deviceDsp)
      .i64(t.deviceBram)
      .i64(t.deviceLut)
      .i64(t.deviceFf)
      .i64(t.lutPerState)
      .i64(t.ffPerState);
  hb.str(options.topFunction)
      .boolean(options.applyUnrollDirectives)
      .boolean(options.strictAcceptance);
  return hb.get();
}

bool StageCache::lookupMlir(uint64_t key, std::string &mirText) {
  Impl &i = impl();
  return i.lookup(i.mlir, key, mirText, statMlirHit, statMlirMiss,
                  StageMetrics::mlir(), i.counters.mlirHits,
                  i.counters.mlirMisses);
}

void StageCache::storeMlir(uint64_t key, std::string mirText) {
  Impl &i = impl();
  i.store(i.mlir, key, std::move(mirText), StageMetrics::mlir(),
          i.counters.mlirBytes, i.counters.mlirEvictions);
}

bool StageCache::lookupBridge(uint64_t key, BridgeEntry &entry) {
  Impl &i = impl();
  return i.lookup(i.bridge, key, entry, statBridgeHit, statBridgeMiss,
                  StageMetrics::bridge(), i.counters.bridgeHits,
                  i.counters.bridgeMisses);
}

void StageCache::storeBridge(uint64_t key, BridgeEntry entry) {
  Impl &i = impl();
  i.store(i.bridge, key, std::move(entry), StageMetrics::bridge(),
          i.counters.bridgeBytes, i.counters.bridgeEvictions);
}

bool StageCache::lookupSynth(uint64_t key, vhls::SynthesisReport &report) {
  Impl &i = impl();
  return i.lookup(i.synth, key, report, statSynthHit, statSynthMiss,
                  StageMetrics::synth(), i.counters.synthHits,
                  i.counters.synthMisses);
}

void StageCache::storeSynth(uint64_t key, vhls::SynthesisReport report) {
  Impl &i = impl();
  i.store(i.synth, key, std::move(report), StageMetrics::synth(),
          i.counters.synthBytes, i.counters.synthEvictions);
}

void StageCache::setLimitBytes(int64_t limitBytes) {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  i.limitBytes = limitBytes > 0 ? limitBytes : 0;
  i.enforceLimit();
}

int64_t StageCache::limitBytes() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  return i.limitBytes;
}

StageCache::Counters StageCache::counters() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  return i.counters;
}

void StageCache::clear() {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  i.mlir.map.clear();
  i.mlir.lru.clear();
  i.bridge.map.clear();
  i.bridge.lru.clear();
  i.synth.map.clear();
  i.synth.lru.clear();
  i.counters = Counters();
  StageMetrics::mlir().bytes.set(0);
  StageMetrics::bridge().bytes.set(0);
  StageMetrics::synth().bytes.set(0);
}

size_t StageCache::size() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  return i.mlir.map.size() + i.bridge.map.size() + i.synth.map.size();
}

} // namespace mha::flow
