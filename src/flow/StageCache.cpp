#include "flow/StageCache.h"

#include "support/Hash.h"
#include "support/Telemetry.h"

#include <mutex>
#include <unordered_map>

namespace mha::flow {

namespace {

telemetry::Statistic statMlirHit("flow.cache", "mlir.hit",
                                 "MLIR-stage cache hits");
telemetry::Statistic statMlirMiss("flow.cache", "mlir.miss",
                                  "MLIR-stage cache misses");
telemetry::Statistic statBridgeHit("flow.cache", "bridge.hit",
                                   "bridge-stage cache hits");
telemetry::Statistic statBridgeMiss("flow.cache", "bridge.miss",
                                    "bridge-stage cache misses");
telemetry::Statistic statSynthHit("flow.cache", "synth.hit",
                                  "synthesis-stage cache hits");
telemetry::Statistic statSynthMiss("flow.cache", "synth.miss",
                                   "synthesis-stage cache misses");

/// Per-stage capacity bound. Eviction is whole-map: entries are small
/// (printed IR of benchmark kernels) and the working set of any realistic
/// batch/DSE/fuzz run is far below the bound, so a rare full flush beats
/// per-entry LRU bookkeeping on every hot lookup.
constexpr size_t kMaxEntriesPerStage = 4096;

template <typename Value>
bool mapLookup(std::mutex &mutex, std::unordered_map<uint64_t, Value> &map,
               uint64_t key, Value &out, telemetry::Statistic &hit,
               telemetry::Statistic &miss, int64_t &hitCount,
               int64_t &missCount) {
  std::lock_guard<std::mutex> guard(mutex);
  auto it = map.find(key);
  if (it == map.end()) {
    ++miss;
    ++missCount;
    return false;
  }
  out = it->second;
  ++hit;
  ++hitCount;
  return true;
}

template <typename Value>
void mapStore(std::mutex &mutex, std::unordered_map<uint64_t, Value> &map,
              uint64_t key, Value value) {
  std::lock_guard<std::mutex> guard(mutex);
  if (map.size() >= kMaxEntriesPerStage)
    map.clear();
  map[key] = std::move(value);
}

} // namespace

struct StageCache::Impl {
  mutable std::mutex mutex;
  std::unordered_map<uint64_t, std::string> mlir;
  std::unordered_map<uint64_t, BridgeEntry> bridge;
  std::unordered_map<uint64_t, vhls::SynthesisReport> synth;
  Counters counters;
};

StageCache::Impl &StageCache::impl() const {
  static Impl instance;
  return instance;
}

StageCache &StageCache::global() {
  static StageCache instance;
  return instance;
}

uint64_t StageCache::synthKey(const std::string &lirText,
                              const vhls::SynthesisOptions &options) {
  HashBuilder hb;
  hb.str("synth").str(lirText);
  const vhls::TargetSpec &t = options.target;
  hb.f64Bits(t.clockPeriodNs).i64(t.memPortsPerBank);
  for (const auto &[fuClass, limit] : t.fuLimits)
    hb.str(fuClass).i64(limit);
  hb.i64(t.deviceDsp)
      .i64(t.deviceBram)
      .i64(t.deviceLut)
      .i64(t.deviceFf)
      .i64(t.lutPerState)
      .i64(t.ffPerState);
  hb.str(options.topFunction)
      .boolean(options.applyUnrollDirectives)
      .boolean(options.strictAcceptance);
  return hb.get();
}

bool StageCache::lookupMlir(uint64_t key, std::string &mirText) {
  Impl &i = impl();
  return mapLookup(i.mutex, i.mlir, key, mirText, statMlirHit, statMlirMiss,
                   i.counters.mlirHits, i.counters.mlirMisses);
}

void StageCache::storeMlir(uint64_t key, std::string mirText) {
  Impl &i = impl();
  mapStore(i.mutex, i.mlir, key, std::move(mirText));
}

bool StageCache::lookupBridge(uint64_t key, BridgeEntry &entry) {
  Impl &i = impl();
  return mapLookup(i.mutex, i.bridge, key, entry, statBridgeHit,
                   statBridgeMiss, i.counters.bridgeHits,
                   i.counters.bridgeMisses);
}

void StageCache::storeBridge(uint64_t key, BridgeEntry entry) {
  Impl &i = impl();
  mapStore(i.mutex, i.bridge, key, std::move(entry));
}

bool StageCache::lookupSynth(uint64_t key, vhls::SynthesisReport &report) {
  Impl &i = impl();
  return mapLookup(i.mutex, i.synth, key, report, statSynthHit, statSynthMiss,
                   i.counters.synthHits, i.counters.synthMisses);
}

void StageCache::storeSynth(uint64_t key, vhls::SynthesisReport report) {
  Impl &i = impl();
  mapStore(i.mutex, i.synth, key, std::move(report));
}

StageCache::Counters StageCache::counters() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  return i.counters;
}

void StageCache::clear() {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  i.mlir.clear();
  i.bridge.clear();
  i.synth.clear();
  i.counters = Counters();
}

size_t StageCache::size() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> guard(i.mutex);
  return i.mlir.size() + i.bridge.size() + i.synth.size();
}

} // namespace mha::flow
