// Kernels.h - PolyBench-style workload generators.
//
// Each kernel builds a MiniMLIR module at the affine level (the shared
// entry point of both flows), carries its buffer geometry for co-simulation
// and provides a host reference implementation. Directives (pipeline,
// unroll, array partition) are applied per KernelConfig — the ScaleHLS-
// style design knobs the experiments sweep.
#pragma once

#include "mir/Builder.h"
#include "mir/MContext.h"

#include <functional>
#include <string>
#include <vector>

namespace mha::flow {

struct KernelConfig {
  /// Pipeline II directive for innermost compute loops (0 = none).
  int64_t pipelineII = 1;
  /// Unroll directive for innermost compute loops (1 = none).
  int64_t unrollFactor = 1;
  /// Cyclic array-partition factor on the kernel's hot arrays (1 = none).
  int64_t partitionFactor = 1;
  /// Function-level dataflow directive (task-level pipelining of the
  /// top-level loop nests; effective on multi-nest kernels).
  bool dataflow = false;
  /// Master switch (false: plain code, the unoptimized baseline).
  bool applyDirectives = true;
};

/// Host-side buffers for co-simulation: one flat double vector per memref
/// argument, in argument order.
using Buffers = std::vector<std::vector<double>>;

struct KernelSpec {
  std::string name;
  std::string description;
  /// Shapes of the memref arguments, in order.
  std::vector<std::vector<int64_t>> bufferShapes;
  /// Indices of buffers the kernel writes (checked by co-sim).
  std::vector<unsigned> outputs;
  /// Builds the kernel module with directives from `config`.
  std::function<mir::OwnedModule(mir::MContext &, const KernelConfig &)>
      build;
  /// Computes the expected outputs in place (inputs pre-filled).
  std::function<void(Buffers &)> reference;

  /// Flat element count of buffer `i`.
  int64_t bufferSize(unsigned i) const {
    int64_t n = 1;
    for (int64_t d : bufferShapes[i])
      n *= d;
    return n;
  }
};

/// All benchmark kernels (gemm, 2mm, atax, bicg, gesummv, mvt, syrk, fir,
/// conv2d, jacobi2d).
const std::vector<KernelSpec> &allKernels();

/// Lookup by name (nullptr if unknown).
const KernelSpec *findKernel(const std::string &name);

/// "available kernels: gemm, mm2, ..." — what a failed findKernel lookup
/// should print so the user can correct the name without reading code.
std::string availableKernelsHint();

/// Deterministically fills every buffer (inputs and outputs) with small
/// pseudo-random values; call before reference/co-sim.
void seedBuffers(Buffers &buffers, uint64_t seed = 42);

/// Allocates buffers matching `spec`.
Buffers makeBuffers(const KernelSpec &spec);

} // namespace mha::flow
