// BatchRunner.h - parallel flow-execution layer.
//
// The paper's experiment is a batch job: 11 kernels x 2 flows x directive
// sweeps. runBatch() takes a list of (kernel, config, flow) jobs, runs
// them across a ThreadPool, and returns results in deterministic
// submission order regardless of completion order. Each job is fully
// isolated — the flows construct their own MContext/LContext/
// DiagnosticEngine per call, so jobs share no mutable state — and errors
// are contained per job: a kernel whose flow fails (or throws) is
// recorded as a failed FlowResult with the exception text in
// `diagnostics` and never kills the batch.
//
// Every run produces a structured trace (per-stage timings, adaptor pass
// statistics, accept/reject status, worker/queue occupancy) that can be
// streamed through a TraceSink and exported as JSON — the machine-
// readable record the benches and `mha-flow --batch --trace=out.json`
// dump. The JSON schema is documented in DESIGN.md ("Batch trace JSON").
#pragma once

#include "flow/Flow.h"
#include "support/ThreadPool.h"

namespace mha::flow {

/// One unit of batch work: run `spec` with `config` through `kind`.
struct BatchJob {
  const KernelSpec *spec = nullptr;
  KernelConfig config;
  FlowKind kind = FlowKind::Adaptor;
  FlowOptions options;
  /// Free-form tag echoed into the trace (e.g. "baseline", "tuned").
  std::string label;
};

/// Per-job trace record. Wall time is measured inside the job (from the
/// worker thread, around the flow call only), so it excludes queueing and
/// harness overhead — Table 4 relies on that.
struct JobTrace {
  size_t index = 0; // submission order
  std::string kernel;
  std::string label;
  FlowKind kind = FlowKind::Adaptor;
  bool ok = false;
  bool accepted = false;
  double queueMs = 0;           // submit -> start of execution
  double wallMs = 0;            // flow execution only, measured in-job
  int worker = -1;              // pool worker that ran the job
  size_t queueDepthAtStart = 0; // queued jobs when this one started
  StageTimings timings;
  std::vector<StageSpan> spans;
  lir::PassStats adaptorStats;
  std::string error; // first diagnostic line / exception text when failed
};

/// Whole-batch trace: per-job records in submission order plus occupancy.
struct BatchTrace {
  unsigned threads = 0;
  size_t jobCount = 0;
  size_t failures = 0;
  double wallMs = 0;   // whole-batch wall clock (harness view)
  double serialMs = 0; // sum of per-job wall times (the serial cost)
  /// Per-job end-to-end latency (queueMs + wallMs) percentiles, computed
  /// exactly (nearest-rank over the sorted per-job values, not bucketed).
  /// 0 when the batch had no jobs.
  double e2eP50Ms = 0;
  double e2eP90Ms = 0;
  double e2eP99Ms = 0;
  std::vector<JobTrace> jobs;
  std::vector<size_t> jobsPerWorker; // occupancy histogram, one per worker

  /// Renders the trace as JSON (schema "mha.batch-trace.v1", stable key
  /// order) for downstream tooling.
  std::string json() const;
};

/// Observer for batch progress. Callbacks are serialized (never
/// concurrent); onJobFinished arrives in completion order, which is not
/// submission order.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void onJobFinished(const JobTrace &job) { (void)job; }
  virtual void onBatchFinished(const BatchTrace &trace) { (void)trace; }
};

/// Writes the finished batch's trace JSON to a file.
class JsonFileTraceSink : public TraceSink {
public:
  explicit JsonFileTraceSink(std::string path) : path_(std::move(path)) {}
  void onBatchFinished(const BatchTrace &trace) override;

  bool ok() const { return error_.empty(); }
  const std::string &error() const { return error_; }

private:
  std::string path_;
  std::string error_ = "trace not written yet";
};

struct BatchOptions {
  /// Worker count for the private pool (0 = hardware concurrency).
  /// Ignored when `pool` is set.
  unsigned numThreads = 0;
  /// Run on an existing pool instead of creating a private one.
  ThreadPool *pool = nullptr;
  /// Optional trace observer (not owned).
  TraceSink *sink = nullptr;
};

struct BatchOutcome {
  /// One FlowResult per job, in submission order (failed jobs included,
  /// with `ok == false` and the failure text in `diagnostics`).
  std::vector<FlowResult> results;
  BatchTrace trace;
};

/// Runs every job across the pool and waits for all of them.
BatchOutcome runBatch(const std::vector<BatchJob> &jobs,
                      const BatchOptions &options = {});

} // namespace mha::flow
