// Flow.h - end-to-end flow drivers for the paper's two compilation paths.
//
//   Adaptor flow (the paper's):  MLIR -> [affine opts] -> scf -> LLVM IR
//     (modern conventions) -> HLS Adaptor -> HLS-readable IR -> virtual HLS
//   HLS C++ flow (baseline):     MLIR -> [affine opts] -> HLS C++ text ->
//     C frontend (+O2-lite) -> HLS IR -> virtual HLS
//
// Both paths end in the same backend; the experiments compare their
// post-synthesis latency/resources and their compile time, plus functional
// equivalence through the interpreter.
#pragma once

#include "adaptor/Adaptor.h"
#include "flow/Kernels.h"
#include "lir/Function.h"
#include "lir/LContext.h"
#include "lowering/Lowering.h"
#include "vhls/Vhls.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mha::flow {

enum class FlowKind { Adaptor, HlsCpp };

/// Short human/JSON name for a flow kind ("adaptor" / "hls-c++").
const char *flowKindName(FlowKind kind);

struct StageTimings {
  double mlirOptMs = 0;   // shared MLIR-level preparation (both flows)
  double bridgeMs = 0;    // scf-conversion+lowering+adaptor OR emission+frontend
  double synthMs = 0;     // virtual HLS
  double totalMs = 0;
};

/// A named sub-stage measurement attributed to one of the three timing
/// windows ("mlirOpt", "bridge", "synth"). The span list makes timing
/// attribution auditable: tests assert both flows charge the same work to
/// mlirOptMs (Table 4 compares like with like), and the batch tracer
/// exports spans per job.
struct StageSpan {
  std::string stage; // "mlirOpt" | "bridge" | "synth"
  std::string name;  // e.g. "prepare-mlir", "affine-to-scf", "adaptor"
  double ms = 0;
};

struct FlowResult {
  bool ok = false;
  /// The run was abandoned at a stage boundary because
  /// FlowOptions::cancelFlag was set (cooperative cancellation — the
  /// compile-service path). Always implies !ok.
  bool cancelled = false;
  /// The synthesis stage (the final result) was served from the
  /// StageCache — the whole-pipeline "warm hit" signal mha-serve reports.
  bool synthFromCache = false;
  FlowKind kind = FlowKind::Adaptor;
  std::string kernelName;
  vhls::SynthesisReport synth;
  lir::PassStats adaptorStats; // adaptor flow only
  StageTimings timings;
  std::vector<StageSpan> spans;
  std::string hlsCpp;          // baseline flow only: the emitted C++
  std::string diagnostics;     // rendered diagnostics (errors/warnings)

  // Final HLS IR (kept alive with its context for co-simulation).
  std::unique_ptr<lir::LContext> ctx;
  std::unique_ptr<lir::Module> module;

  lir::Function *topFunction() const {
    return module ? module->getFunction(kernelName) : nullptr;
  }
};

struct FlowOptions {
  vhls::SynthesisOptions synthesis;
  adaptor::AdaptorOptions adaptor;
  lowering::LoweringOptions lowering;
  /// Run MLIR-level canonicalization before branching into a flow.
  bool runMlirOpts = true;
  /// Cross-layer choice: honour hls.unroll directives by unrolling at the
  /// *MLIR* level (before either bridge) instead of letting the HLS
  /// backend unroll. The adaptor flow then carries pre-unrolled IR; the
  /// C++ flow emits pre-unrolled source.
  bool unrollAtMlirLevel = false;
  /// Consult the process-global StageCache: hash each stage's input and
  /// skip the stage when its output is already cached (incremental
  /// recompilation). Off by default; cold-run output is identical either
  /// way. Shared by BatchRunner jobs, the DSE evaluator and the fuzz
  /// oracle whenever their FlowOptions enable it.
  bool useStageCache = false;
  /// Run lir function passes function-at-a-time on this many workers
  /// (<=1: serial). The flow creates a dedicated pass pool per call; see
  /// lir::PassManager::setConcurrency for the determinism contract.
  int passJobs = 1;
  /// Cooperative cancellation: when non-null, the flow checks the flag at
  /// every stage boundary (before mlirOpt, bridge and synth) and abandons
  /// the run with FlowResult::cancelled set instead of starting the next
  /// stage. Mid-stage work is never interrupted — a cancelled flow still
  /// leaves the process in a consistent state (the StageCache keeps any
  /// stage that completed).
  const std::atomic<bool> *cancelFlag = nullptr;
  /// Stage-progress observer: called at the start of each stage
  /// ("mlirOpt", "bridge", "synth") from the flow's thread. mha-serve
  /// streams these as per-stage progress events to the requesting client.
  std::function<void(const char *stage)> onStage;
};

/// The paper's direct-IR path.
FlowResult runAdaptorFlow(const KernelSpec &spec, const KernelConfig &config,
                          const FlowOptions &options = {});

/// The MLIR->HLS-C++ baseline path.
FlowResult runHlsCppFlow(const KernelSpec &spec, const KernelConfig &config,
                         const FlowOptions &options = {});

/// Direct-LIR entry: parses `lirText` (a possibly multi-function module
/// with calls/recursion), runs the adaptor pipeline and synthesizes
/// `topFunction`. The whole input module addresses the bridge stage of
/// the StageCache, so an edit anywhere — including a callee body — is a
/// cache miss. `topFunction` empty picks the module's only function and
/// errors when that is ambiguous.
FlowResult runLirAdaptorFlow(const std::string &lirText,
                             const std::string &topFunction,
                             const FlowOptions &options = {});

/// Executes the flow's final IR against the host reference. Returns true
/// when every output buffer matches bit-for-bit; `error` explains any
/// mismatch. Runs on the flattened (one pointer per array) convention.
bool cosimAgainstReference(const FlowResult &result, const KernelSpec &spec,
                           std::string &error);

} // namespace mha::flow
