#include "flow/Flow.h"

#include "flow/StageCache.h"
#include "hlscpp/Emitter.h"
#include "hlscpp/Frontend.h"
#include "interp/Interp.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "lir/transforms/Transforms.h"
#include "lowering/Lowering.h"
#include "mir/Parser.h"
#include "mir/Pass.h"
#include "mir/Printer.h"
#include "mir/Verifier.h"
#include "mir/transforms/MirTransforms.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <cmath>
#include <optional>

namespace mha::flow {

namespace {

/// Args attached to every flow-level telemetry span so a Chrome trace
/// lane can be filtered by kernel or flow kind.
telemetry::SpanArgs flowSpanArgs(const KernelSpec &spec, FlowKind kind) {
  return {{"kernel", spec.name}, {"flow", flowKindName(kind)}};
}

/// Builds the kernel and runs the shared MLIR-level preparation.
std::optional<mir::OwnedModule> prepareMlir(const KernelSpec &spec,
                                            const KernelConfig &config,
                                            mir::MContext &mctx,
                                            const FlowOptions &options,
                                            DiagnosticEngine &diags) {
  mir::OwnedModule module = spec.build(mctx, config);
  if (!mir::verifyModule(module.get(), diags))
    return std::nullopt;
  mir::MPassManager pm;
  if (options.runMlirOpts)
    pm.add(mir::createCanonicalizePass());
  if (options.unrollAtMlirLevel) {
    // Cross-layer: consume hls.unroll here instead of in the backend.
    module.get().op->walk([&](mir::Operation *op) {
      if (!op->is(mir::ops::AffineFor))
        return;
      if (const auto *factor =
              dyn_cast<mir::IntegerAttr>(op->attr(mir::hlsattr::Unroll))) {
        op->setAttr("mha.unroll_now", factor);
        op->removeAttr(mir::hlsattr::Unroll);
      }
    });
    pm.add(mir::createAffineUnrollPass());
    if (options.runMlirOpts)
      pm.add(mir::createCanonicalizePass());
  }
  if (!pm.run(module.get(), diags))
    return std::nullopt;
  return module;
}

// --- Stage-cache keys -------------------------------------------------
//
// Option structs are hashed field by field (no reflection); when an
// option that changes a stage's output gains a field, add it to the
// matching hash* helper or the cache will serve stale entries for runs
// that differ only in the new field.

/// The shared key-compute-time histogram (same series StageCache::synthKey
/// records into, so `mha_stage_cache_key_us` covers all four key kinds).
metrics::Histogram &stageKeyHistogram() {
  static metrics::Histogram &hist = metrics::Registry::global().histogram(
      "mha_stage_cache_key_us", "stage-cache key computation time");
  return hist;
}

void hashConfig(HashBuilder &hb, const KernelConfig &config) {
  hb.i64(config.pipelineII)
      .i64(config.unrollFactor)
      .i64(config.partitionFactor)
      .boolean(config.dataflow)
      .boolean(config.applyDirectives);
}

/// Stage 1 input: kernel identity + directives + MLIR-level options. The
/// kernel name stands in for the builder function — the registry is
/// static, so the name determines the built IR.
uint64_t mlirStageKey(const KernelSpec &spec, const KernelConfig &config,
                      const FlowOptions &options) {
  metrics::Timer timer(stageKeyHistogram());
  HashBuilder hb;
  hb.str("mlir").str(spec.name);
  hashConfig(hb, config);
  hb.boolean(options.runMlirOpts).boolean(options.unrollAtMlirLevel);
  return hb.get();
}

void hashAdaptorOptions(HashBuilder &hb, const adaptor::AdaptorOptions &ao) {
  hb.boolean(ao.runCallLegalization)
      .i64(ao.inlineBudget)
      .i64(ao.recursionDepth)
      .str(ao.topFunction)
      .boolean(ao.runDescriptorElimination)
      .boolean(ao.runIntrinsicLegalize)
      .boolean(ao.runGepCanonicalize)
      .boolean(ao.runPointerTypeRecovery)
      .boolean(ao.runMetadataConvert)
      .boolean(ao.runAttributeScrub)
      .boolean(ao.verifyCompat)
      .boolean(ao.runCleanups)
      .boolean(ao.fusePasses);
}

/// Stage 2 input (adaptor flow): the mir text plus everything that shapes
/// lowering and the adaptor pipeline. `ao` is the *effective* adaptor
/// option set (after the flow resolves the top-function hint) — the whole
/// post-inline module shape depends on it, so it addresses the cache.
uint64_t adaptorBridgeKey(const std::string &mirText,
                          const FlowOptions &options,
                          const adaptor::AdaptorOptions &ao) {
  metrics::Timer timer(stageKeyHistogram());
  HashBuilder hb;
  hb.str("bridge-adaptor").str(mirText);
  const lowering::LoweringOptions &lo = options.lowering;
  hb.boolean(lo.useOpaquePointers)
      .boolean(lo.fuseMulAdd)
      .boolean(lo.useMemcpyIntrinsic)
      .boolean(lo.emitModernAttributes);
  hashAdaptorOptions(hb, ao);
  return hb.get();
}

/// Bridge key for the direct-LIR entry (no mir stage): the input module
/// text plus the effective adaptor options.
uint64_t lirBridgeKey(const std::string &lirText,
                      const adaptor::AdaptorOptions &ao) {
  metrics::Timer timer(stageKeyHistogram());
  HashBuilder hb;
  hb.str("bridge-lir").str(lirText);
  hashAdaptorOptions(hb, ao);
  return hb.get();
}

/// The adaptor passes need to know the synthesis top (the inliner must
/// not erase it even when every call site is gone).
adaptor::AdaptorOptions effectiveAdaptorOptions(const FlowOptions &options,
                                                const std::string &topName) {
  adaptor::AdaptorOptions ao = options.adaptor;
  if (ao.topFunction.empty())
    ao.topFunction = options.synthesis.topFunction.empty()
                         ? topName
                         : options.synthesis.topFunction;
  return ao;
}

/// Stage 2 input (C++ flow): emission and the HLS frontend take no
/// options, so the mir text alone addresses the output.
uint64_t hlsCppBridgeKey(const std::string &mirText) {
  metrics::Timer timer(stageKeyHistogram());
  HashBuilder hb;
  hb.str("bridge-hlscpp").str(mirText);
  return hb.get();
}

/// Runs stage 1 through the cache: on a hit, returns the cached mir text
/// without building the kernel; on a miss (or with the cache disabled),
/// builds and prepares the module, printing it into `mirText` only when
/// the cache is on. `module` is empty after a hit — bridge stages reparse
/// lazily, and only when they miss too.
bool runMlirStage(const KernelSpec &spec, const KernelConfig &config,
                  mir::MContext &mctx, const FlowOptions &options,
                  DiagnosticEngine &diags,
                  std::optional<mir::OwnedModule> &module,
                  std::string &mirText) {
  if (options.useStageCache &&
      StageCache::global().lookupMlir(mlirStageKey(spec, config, options),
                                      mirText))
    return true;
  module = prepareMlir(spec, config, mctx, options, diags);
  if (!module)
    return false;
  if (options.useStageCache) {
    mirText = mir::printModule(module->get());
    StageCache::global().storeMlir(mlirStageKey(spec, config, options),
                                   mirText);
  }
  return true;
}

/// Reparses a cached stage-1 result when a bridge stage needs the actual
/// module. Round-trips through the mir parser (the printer's contract).
bool ensureMirModule(std::optional<mir::OwnedModule> &module,
                     const std::string &mirText, mir::MContext &mctx,
                     DiagnosticEngine &diags, FlowResult &result) {
  if (module)
    return true;
  telemetry::Span parseSpan("parse-cached-mlir", "flow-substage");
  module = mir::parseModule(mirText, mctx, diags);
  result.spans.push_back({"bridge", "parse-cached-mlir", parseSpan.finish()});
  return module.has_value();
}

/// Stage-boundary gate: notifies the progress observer and polls the
/// cancellation flag. Returns false (after marking the result cancelled)
/// when the caller must abandon the run instead of entering `stage`.
bool enterStage(const char *stage, const FlowOptions &options,
                FlowResult &result) {
  if (options.cancelFlag &&
      options.cancelFlag->load(std::memory_order_relaxed)) {
    result.cancelled = true;
    result.diagnostics = strfmt("flow cancelled before %s stage", stage);
    return false;
  }
  if (options.onStage)
    options.onStage(stage);
  return true;
}

} // namespace

const char *flowKindName(FlowKind kind) {
  return kind == FlowKind::Adaptor ? "adaptor" : "hls-c++";
}

FlowResult runAdaptorFlow(const KernelSpec &spec, const KernelConfig &config,
                          const FlowOptions &options) {
  FlowResult result;
  result.kind = FlowKind::Adaptor;
  result.kernelName = spec.name;
  DiagnosticEngine diags;
  telemetry::Span totalSpan(strfmt("flow:adaptor:%s", spec.name.c_str()),
                            "flow", flowSpanArgs(spec, FlowKind::Adaptor));
  if (!enterStage("mlirOpt", options, result))
    return result;

  // MLIR level: exactly the shared preparation both flows run, so Table 4's
  // mlirOptMs windows compare like with like. With the stage cache on, a
  // hit serves the printed module and skips build+verify+canonicalize.
  telemetry::Span mlirSpan("mlirOpt", "flow-stage");
  mir::MContext mctx;
  std::optional<mir::OwnedModule> module;
  std::string mirText;
  bool mlirOk = runMlirStage(spec, config, mctx, options, diags, module,
                             mirText);
  result.timings.mlirOptMs = mlirSpan.finish();
  result.spans.push_back({"mlirOpt", "prepare-mlir", result.timings.mlirOptMs});
  if (!mlirOk) {
    result.diagnostics = diags.str();
    return result;
  }

  // Bridge: this flow's lowering leg. The structured->scf conversion is
  // flow-specific work (the C++ flow's emitter consumes structured IR
  // directly), so it is charged to bridgeMs, mirroring how the C++ flow
  // charges its emission leg. A cache hit replaces the whole leg with one
  // lir parse (the module must live for synthesis and co-simulation).
  if (!enterStage("bridge", options, result))
    return result;
  telemetry::Span bridgeSpan("bridge", "flow-stage");
  adaptor::AdaptorOptions adaptorOpts =
      effectiveAdaptorOptions(options, spec.name);
  std::string lirText; // bridge output text; addresses the synth stage
  bool bridgeFromCache = false;
  uint64_t bridgeKey = 0;
  if (options.useStageCache) {
    bridgeKey = adaptorBridgeKey(mirText, options, adaptorOpts);
    StageCache::BridgeEntry entry;
    if (StageCache::global().lookupBridge(bridgeKey, entry)) {
      telemetry::Span restoreSpan("bridge-cache-restore", "flow-substage");
      result.ctx = std::make_unique<lir::LContext>();
      result.module = lir::parseModule(entry.lirText, *result.ctx, diags);
      result.spans.push_back(
          {"bridge", "bridge-cache-restore", restoreSpan.finish()});
      if (!result.module) {
        result.timings.bridgeMs = bridgeSpan.finish();
        result.diagnostics = diags.str();
        return result;
      }
      result.adaptorStats = entry.adaptorStats;
      lirText = std::move(entry.lirText);
      bridgeFromCache = true;
    }
  }
  if (!bridgeFromCache) {
    if (!ensureMirModule(module, mirText, mctx, diags, result)) {
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
    {
      telemetry::Span convertSpan("affine-to-scf", "flow-substage");
      mir::MPassManager convert;
      convert.add(mir::createAffineToScfPass());
      convert.add(mir::createCanonicalizePass());
      bool convertOk = convert.run(module->get(), diags);
      result.spans.push_back({"bridge", "affine-to-scf", convertSpan.finish()});
      if (!convertOk) {
        result.timings.bridgeMs = bridgeSpan.finish();
        result.diagnostics = diags.str();
        return result;
      }
    }
    {
      telemetry::Span lowerSpan("lower-to-lir", "flow-substage");
      result.ctx = std::make_unique<lir::LContext>();
      result.module =
          lowering::lowerToLIR(module->get(), *result.ctx, options.lowering,
                               diags);
      result.spans.push_back({"bridge", "lower-to-lir", lowerSpan.finish()});
      if (!result.module) {
        result.timings.bridgeMs = bridgeSpan.finish();
        result.diagnostics = diags.str();
        return result;
      }
    }
    telemetry::Span adaptorSpan("adaptor-pipeline", "flow-substage");
    lir::PassManager pm(/*verifyEach=*/true);
    adaptor::buildAdaptorPipeline(pm, adaptorOpts);
    // A dedicated pool per call: the batch runner's pool must never run
    // pass tasks (TaskGroup::wait does not steal — see setConcurrency).
    std::unique_ptr<ThreadPool> passPool;
    if (options.passJobs > 1) {
      passPool =
          std::make_unique<ThreadPool>(static_cast<unsigned>(options.passJobs));
      pm.setConcurrency(passPool.get());
    }
    bool adaptorOk = pm.run(*result.module, diags);
    result.adaptorStats = pm.totalStats();
    result.spans.push_back(
        {"bridge", "adaptor-pipeline", adaptorSpan.finish()});
    if (!adaptorOk) {
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
    if (options.useStageCache) {
      lirText = lir::printModule(*result.module);
      StageCache::global().storeBridge(
          bridgeKey, {lirText, std::string(), result.adaptorStats});
    }
  }
  result.timings.bridgeMs = bridgeSpan.finish();

  // Virtual HLS. On a synth cache hit the module is left in its bridge
  // state (backend unrolling mutates in place but preserves semantics, so
  // co-simulation is unaffected); only accepted reports are cached.
  if (!enterStage("synth", options, result))
    return result;
  telemetry::Span synthSpan("synth", "flow-stage");
  vhls::SynthesisOptions synthOpts = options.synthesis;
  if (synthOpts.topFunction.empty())
    synthOpts.topFunction = spec.name;
  bool synthFromCache = false;
  uint64_t synthKey = 0;
  if (options.useStageCache) {
    synthKey = StageCache::synthKey(lirText, synthOpts);
    synthFromCache = StageCache::global().lookupSynth(synthKey, result.synth);
  }
  if (!synthFromCache) {
    result.synth = vhls::synthesize(*result.module, synthOpts, diags);
    if (options.useStageCache && result.synth.accepted)
      StageCache::global().storeSynth(synthKey, result.synth);
  }
  result.synthFromCache = synthFromCache;
  result.timings.synthMs = synthSpan.finish();
  result.spans.push_back({"synth", "vhls", result.timings.synthMs});
  result.timings.totalMs = totalSpan.finish();
  result.diagnostics = diags.str();
  result.ok = result.synth.accepted;
  return result;
}

FlowResult runLirAdaptorFlow(const std::string &lirText,
                             const std::string &topFunction,
                             const FlowOptions &options) {
  FlowResult result;
  result.kind = FlowKind::Adaptor;
  result.kernelName = topFunction;
  DiagnosticEngine diags;
  telemetry::Span totalSpan("flow:adaptor:lir-input", "flow");

  if (!enterStage("bridge", options, result))
    return result;
  telemetry::Span bridgeSpan("bridge", "flow-stage");
  {
    telemetry::Span parseSpan("parse-lir", "flow-substage");
    result.ctx = std::make_unique<lir::LContext>();
    result.module = lir::parseModule(lirText, *result.ctx, diags);
    result.spans.push_back({"bridge", "parse-lir", parseSpan.finish()});
  }
  if (!result.module) {
    result.timings.bridgeMs = bridgeSpan.finish();
    result.diagnostics = diags.str();
    return result;
  }

  // Resolve the synthesis top before hashing anything: it feeds the
  // inliner's preserved-function option, so it is part of the bridge key.
  std::string top = topFunction;
  if (top.empty()) {
    std::vector<lir::Function *> defs;
    for (lir::Function *fn : result.module->functions())
      if (!fn->isDeclaration())
        defs.push_back(fn);
    if (defs.size() != 1) {
      diags.error(strfmt("lir module defines %zu functions; a top function "
                         "must be named",
                         defs.size()));
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
    top = defs.front()->name();
  } else if (!result.module->getFunction(top)) {
    diags.error(strfmt("top function '%s' not found in lir module",
                       top.c_str()));
    result.timings.bridgeMs = bridgeSpan.finish();
    result.diagnostics = diags.str();
    return result;
  }
  result.kernelName = top;
  adaptor::AdaptorOptions adaptorOpts = options.adaptor;
  if (adaptorOpts.topFunction.empty())
    adaptorOpts.topFunction = top;

  std::string lirOut; // post-adaptor text; addresses the synth stage
  bool bridgeFromCache = false;
  uint64_t bridgeKey = 0;
  if (options.useStageCache) {
    bridgeKey = lirBridgeKey(lirText, adaptorOpts);
    StageCache::BridgeEntry entry;
    if (StageCache::global().lookupBridge(bridgeKey, entry)) {
      telemetry::Span restoreSpan("bridge-cache-restore", "flow-substage");
      // The input-parse module must die before the LContext it was built
      // in — replacing ctx first would free the context under the live
      // module (its destructor walks context-owned constants).
      result.module.reset();
      result.ctx = std::make_unique<lir::LContext>();
      result.module = lir::parseModule(entry.lirText, *result.ctx, diags);
      result.spans.push_back(
          {"bridge", "bridge-cache-restore", restoreSpan.finish()});
      if (!result.module) {
        result.timings.bridgeMs = bridgeSpan.finish();
        result.diagnostics = diags.str();
        return result;
      }
      result.adaptorStats = entry.adaptorStats;
      lirOut = std::move(entry.lirText);
      bridgeFromCache = true;
    }
  }
  if (!bridgeFromCache) {
    telemetry::Span adaptorSpan("adaptor-pipeline", "flow-substage");
    lir::PassManager pm(/*verifyEach=*/true);
    adaptor::buildAdaptorPipeline(pm, adaptorOpts);
    std::unique_ptr<ThreadPool> passPool;
    if (options.passJobs > 1) {
      passPool =
          std::make_unique<ThreadPool>(static_cast<unsigned>(options.passJobs));
      pm.setConcurrency(passPool.get());
    }
    bool adaptorOk = pm.run(*result.module, diags);
    result.adaptorStats = pm.totalStats();
    result.spans.push_back(
        {"bridge", "adaptor-pipeline", adaptorSpan.finish()});
    if (!adaptorOk) {
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
    if (options.useStageCache) {
      lirOut = lir::printModule(*result.module);
      StageCache::global().storeBridge(
          bridgeKey, {lirOut, std::string(), result.adaptorStats});
    }
  }
  result.timings.bridgeMs = bridgeSpan.finish();

  if (!enterStage("synth", options, result))
    return result;
  telemetry::Span synthSpan("synth", "flow-stage");
  vhls::SynthesisOptions synthOpts = options.synthesis;
  synthOpts.topFunction = top;
  bool synthFromCache = false;
  uint64_t synthKey = 0;
  if (options.useStageCache) {
    synthKey = StageCache::synthKey(lirOut, synthOpts);
    synthFromCache = StageCache::global().lookupSynth(synthKey, result.synth);
  }
  if (!synthFromCache) {
    result.synth = vhls::synthesize(*result.module, synthOpts, diags);
    if (options.useStageCache && result.synth.accepted)
      StageCache::global().storeSynth(synthKey, result.synth);
  }
  result.synthFromCache = synthFromCache;
  result.timings.synthMs = synthSpan.finish();
  result.spans.push_back({"synth", "vhls", result.timings.synthMs});
  result.timings.totalMs = totalSpan.finish();
  result.diagnostics = diags.str();
  result.ok = result.synth.accepted;
  return result;
}

FlowResult runHlsCppFlow(const KernelSpec &spec, const KernelConfig &config,
                         const FlowOptions &options) {
  FlowResult result;
  result.kind = FlowKind::HlsCpp;
  result.kernelName = spec.name;
  DiagnosticEngine diags;
  telemetry::Span totalSpan(strfmt("flow:hls-c++:%s", spec.name.c_str()),
                            "flow", flowSpanArgs(spec, FlowKind::HlsCpp));
  if (!enterStage("mlirOpt", options, result))
    return result;

  telemetry::Span mlirSpan("mlirOpt", "flow-stage");
  mir::MContext mctx;
  std::optional<mir::OwnedModule> module;
  std::string mirText;
  bool mlirOk = runMlirStage(spec, config, mctx, options, diags, module,
                             mirText);
  result.timings.mlirOptMs = mlirSpan.finish();
  result.spans.push_back({"mlirOpt", "prepare-mlir", result.timings.mlirOptMs});
  if (!mlirOk) {
    result.diagnostics = diags.str();
    return result;
  }

  // Bridge: emit C++, re-parse with the HLS frontend. A cache hit
  // restores both the emitted source (part of the result contract) and
  // the frontend's lir module.
  if (!enterStage("bridge", options, result))
    return result;
  telemetry::Span bridgeSpan("bridge", "flow-stage");
  std::string lirText;
  bool bridgeFromCache = false;
  uint64_t bridgeKey = 0;
  if (options.useStageCache) {
    bridgeKey = hlsCppBridgeKey(mirText);
    StageCache::BridgeEntry entry;
    if (StageCache::global().lookupBridge(bridgeKey, entry)) {
      telemetry::Span restoreSpan("bridge-cache-restore", "flow-substage");
      result.ctx = std::make_unique<lir::LContext>();
      result.module = lir::parseModule(entry.lirText, *result.ctx, diags);
      result.spans.push_back(
          {"bridge", "bridge-cache-restore", restoreSpan.finish()});
      if (!result.module) {
        result.timings.bridgeMs = bridgeSpan.finish();
        result.diagnostics = diags.str();
        return result;
      }
      result.hlsCpp = std::move(entry.hlsCpp);
      lirText = std::move(entry.lirText);
      bridgeFromCache = true;
    }
  }
  if (!bridgeFromCache) {
    if (!ensureMirModule(module, mirText, mctx, diags, result)) {
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
    {
      telemetry::Span emitSpan("emit-hls-cpp", "flow-substage");
      result.hlsCpp = hlscpp::emitHlsCpp(module->get(), diags);
      result.spans.push_back({"bridge", "emit-hls-cpp", emitSpan.finish()});
      if (result.hlsCpp.empty()) {
        result.timings.bridgeMs = bridgeSpan.finish();
        result.diagnostics = diags.str();
        return result;
      }
    }
    telemetry::Span frontendSpan("hls-frontend", "flow-substage");
    result.ctx = std::make_unique<lir::LContext>();
    result.module = hlscpp::parseHlsCpp(result.hlsCpp, *result.ctx, diags);
    result.spans.push_back({"bridge", "hls-frontend", frontendSpan.finish()});
    if (!result.module) {
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
    if (options.useStageCache) {
      lirText = lir::printModule(*result.module);
      StageCache::global().storeBridge(bridgeKey,
                                       {lirText, result.hlsCpp, {}});
    }
  }
  result.timings.bridgeMs = bridgeSpan.finish();

  if (!enterStage("synth", options, result))
    return result;
  telemetry::Span synthSpan("synth", "flow-stage");
  vhls::SynthesisOptions synthOpts = options.synthesis;
  if (synthOpts.topFunction.empty())
    synthOpts.topFunction = spec.name;
  bool synthFromCache = false;
  uint64_t synthKey = 0;
  if (options.useStageCache) {
    synthKey = StageCache::synthKey(lirText, synthOpts);
    synthFromCache = StageCache::global().lookupSynth(synthKey, result.synth);
  }
  if (!synthFromCache) {
    result.synth = vhls::synthesize(*result.module, synthOpts, diags);
    if (options.useStageCache && result.synth.accepted)
      StageCache::global().storeSynth(synthKey, result.synth);
  }
  result.synthFromCache = synthFromCache;
  result.timings.synthMs = synthSpan.finish();
  result.spans.push_back({"synth", "vhls", result.timings.synthMs});
  result.timings.totalMs = totalSpan.finish();
  result.diagnostics = diags.str();
  result.ok = result.synth.accepted;
  return result;
}

bool cosimAgainstReference(const FlowResult &result, const KernelSpec &spec,
                           std::string &error) {
  lir::Function *top = result.topFunction();
  if (!top) {
    error = "no top function in flow result";
    return false;
  }
  // Seed identical inputs for device and host.
  Buffers device = makeBuffers(spec);
  seedBuffers(device);
  Buffers host = device;
  spec.reference(host);

  std::vector<void *> pointers;
  for (auto &buffer : device)
    pointers.push_back(buffer.data());

  DiagnosticEngine diags;
  interp::Interpreter interpreter(*result.module);
  auto run = interpreter.run(top, interp::pointerArgs(pointers), diags);
  if (!run) {
    error = "interpreter failed: " + diags.str();
    return false;
  }

  for (unsigned out : spec.outputs) {
    for (size_t i = 0; i < device[out].size(); ++i) {
      if (device[out][i] != host[out][i] &&
          !(std::isnan(device[out][i]) && std::isnan(host[out][i]))) {
        error = strfmt("buffer %u element %zu: device=%.17g host=%.17g", out,
                       i, device[out][i], host[out][i]);
        return false;
      }
    }
  }
  return true;
}

} // namespace mha::flow
