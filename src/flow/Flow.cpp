#include "flow/Flow.h"

#include "hlscpp/Emitter.h"
#include "hlscpp/Frontend.h"
#include "interp/Interp.h"
#include "lir/transforms/Transforms.h"
#include "lowering/Lowering.h"
#include "mir/Pass.h"
#include "mir/Printer.h"
#include "mir/Verifier.h"
#include "mir/transforms/MirTransforms.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cmath>

namespace mha::flow {

namespace {

/// Args attached to every flow-level telemetry span so a Chrome trace
/// lane can be filtered by kernel or flow kind.
telemetry::SpanArgs flowSpanArgs(const KernelSpec &spec, FlowKind kind) {
  return {{"kernel", spec.name}, {"flow", flowKindName(kind)}};
}

/// Builds the kernel and runs the shared MLIR-level preparation.
std::optional<mir::OwnedModule> prepareMlir(const KernelSpec &spec,
                                            const KernelConfig &config,
                                            mir::MContext &mctx,
                                            const FlowOptions &options,
                                            DiagnosticEngine &diags) {
  mir::OwnedModule module = spec.build(mctx, config);
  if (!mir::verifyModule(module.get(), diags))
    return std::nullopt;
  mir::MPassManager pm;
  if (options.runMlirOpts)
    pm.add(mir::createCanonicalizePass());
  if (options.unrollAtMlirLevel) {
    // Cross-layer: consume hls.unroll here instead of in the backend.
    module.get().op->walk([&](mir::Operation *op) {
      if (!op->is(mir::ops::AffineFor))
        return;
      if (const auto *factor =
              dyn_cast<mir::IntegerAttr>(op->attr(mir::hlsattr::Unroll))) {
        op->setAttr("mha.unroll_now", factor);
        op->removeAttr(mir::hlsattr::Unroll);
      }
    });
    pm.add(mir::createAffineUnrollPass());
    if (options.runMlirOpts)
      pm.add(mir::createCanonicalizePass());
  }
  if (!pm.run(module.get(), diags))
    return std::nullopt;
  return module;
}

} // namespace

const char *flowKindName(FlowKind kind) {
  return kind == FlowKind::Adaptor ? "adaptor" : "hls-c++";
}

FlowResult runAdaptorFlow(const KernelSpec &spec, const KernelConfig &config,
                          const FlowOptions &options) {
  FlowResult result;
  result.kind = FlowKind::Adaptor;
  result.kernelName = spec.name;
  DiagnosticEngine diags;
  telemetry::Span totalSpan(strfmt("flow:adaptor:%s", spec.name.c_str()),
                            "flow", flowSpanArgs(spec, FlowKind::Adaptor));

  // MLIR level: exactly the shared preparation both flows run, so Table 4's
  // mlirOptMs windows compare like with like.
  telemetry::Span mlirSpan("mlirOpt", "flow-stage");
  mir::MContext mctx;
  auto module = prepareMlir(spec, config, mctx, options, diags);
  result.timings.mlirOptMs = mlirSpan.finish();
  result.spans.push_back({"mlirOpt", "prepare-mlir", result.timings.mlirOptMs});
  if (!module) {
    result.diagnostics = diags.str();
    return result;
  }

  // Bridge: this flow's lowering leg. The structured->scf conversion is
  // flow-specific work (the C++ flow's emitter consumes structured IR
  // directly), so it is charged to bridgeMs, mirroring how the C++ flow
  // charges its emission leg.
  telemetry::Span bridgeSpan("bridge", "flow-stage");
  {
    telemetry::Span convertSpan("affine-to-scf", "flow-substage");
    mir::MPassManager convert;
    convert.add(mir::createAffineToScfPass());
    convert.add(mir::createCanonicalizePass());
    bool convertOk = convert.run(module->get(), diags);
    result.spans.push_back({"bridge", "affine-to-scf", convertSpan.finish()});
    if (!convertOk) {
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
  }
  {
    telemetry::Span lowerSpan("lower-to-lir", "flow-substage");
    result.ctx = std::make_unique<lir::LContext>();
    result.module =
        lowering::lowerToLIR(module->get(), *result.ctx, options.lowering,
                             diags);
    result.spans.push_back({"bridge", "lower-to-lir", lowerSpan.finish()});
    if (!result.module) {
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
  }
  telemetry::Span adaptorSpan("adaptor-pipeline", "flow-substage");
  lir::PassManager pm(/*verifyEach=*/true);
  adaptor::buildAdaptorPipeline(pm, options.adaptor);
  bool adaptorOk = pm.run(*result.module, diags);
  result.adaptorStats = pm.totalStats();
  result.spans.push_back({"bridge", "adaptor-pipeline", adaptorSpan.finish()});
  result.timings.bridgeMs = bridgeSpan.finish();
  if (!adaptorOk) {
    result.diagnostics = diags.str();
    return result;
  }

  // Virtual HLS.
  telemetry::Span synthSpan("synth", "flow-stage");
  vhls::SynthesisOptions synthOpts = options.synthesis;
  if (synthOpts.topFunction.empty())
    synthOpts.topFunction = spec.name;
  result.synth = vhls::synthesize(*result.module, synthOpts, diags);
  result.timings.synthMs = synthSpan.finish();
  result.spans.push_back({"synth", "vhls", result.timings.synthMs});
  result.timings.totalMs = totalSpan.finish();
  result.diagnostics = diags.str();
  result.ok = result.synth.accepted;
  return result;
}

FlowResult runHlsCppFlow(const KernelSpec &spec, const KernelConfig &config,
                         const FlowOptions &options) {
  FlowResult result;
  result.kind = FlowKind::HlsCpp;
  result.kernelName = spec.name;
  DiagnosticEngine diags;
  telemetry::Span totalSpan(strfmt("flow:hls-c++:%s", spec.name.c_str()),
                            "flow", flowSpanArgs(spec, FlowKind::HlsCpp));

  telemetry::Span mlirSpan("mlirOpt", "flow-stage");
  mir::MContext mctx;
  auto module = prepareMlir(spec, config, mctx, options, diags);
  result.timings.mlirOptMs = mlirSpan.finish();
  result.spans.push_back({"mlirOpt", "prepare-mlir", result.timings.mlirOptMs});
  if (!module) {
    result.diagnostics = diags.str();
    return result;
  }

  // Bridge: emit C++, re-parse with the HLS frontend.
  telemetry::Span bridgeSpan("bridge", "flow-stage");
  {
    telemetry::Span emitSpan("emit-hls-cpp", "flow-substage");
    result.hlsCpp = hlscpp::emitHlsCpp(module->get(), diags);
    result.spans.push_back({"bridge", "emit-hls-cpp", emitSpan.finish()});
    if (result.hlsCpp.empty()) {
      result.timings.bridgeMs = bridgeSpan.finish();
      result.diagnostics = diags.str();
      return result;
    }
  }
  telemetry::Span frontendSpan("hls-frontend", "flow-substage");
  result.ctx = std::make_unique<lir::LContext>();
  result.module = hlscpp::parseHlsCpp(result.hlsCpp, *result.ctx, diags);
  result.spans.push_back({"bridge", "hls-frontend", frontendSpan.finish()});
  result.timings.bridgeMs = bridgeSpan.finish();
  if (!result.module) {
    result.diagnostics = diags.str();
    return result;
  }

  telemetry::Span synthSpan("synth", "flow-stage");
  vhls::SynthesisOptions synthOpts = options.synthesis;
  if (synthOpts.topFunction.empty())
    synthOpts.topFunction = spec.name;
  result.synth = vhls::synthesize(*result.module, synthOpts, diags);
  result.timings.synthMs = synthSpan.finish();
  result.spans.push_back({"synth", "vhls", result.timings.synthMs});
  result.timings.totalMs = totalSpan.finish();
  result.diagnostics = diags.str();
  result.ok = result.synth.accepted;
  return result;
}

bool cosimAgainstReference(const FlowResult &result, const KernelSpec &spec,
                           std::string &error) {
  lir::Function *top = result.topFunction();
  if (!top) {
    error = "no top function in flow result";
    return false;
  }
  // Seed identical inputs for device and host.
  Buffers device = makeBuffers(spec);
  seedBuffers(device);
  Buffers host = device;
  spec.reference(host);

  std::vector<void *> pointers;
  for (auto &buffer : device)
    pointers.push_back(buffer.data());

  DiagnosticEngine diags;
  interp::Interpreter interpreter(*result.module);
  auto run = interpreter.run(top, interp::pointerArgs(pointers), diags);
  if (!run) {
    error = "interpreter failed: " + diags.str();
    return false;
  }

  for (unsigned out : spec.outputs) {
    for (size_t i = 0; i < device[out].size(); ++i) {
      if (device[out][i] != host[out][i] &&
          !(std::isnan(device[out][i]) && std::isnan(host[out][i]))) {
        error = strfmt("buffer %u element %zu: device=%.17g host=%.17g", out,
                       i, device[out][i], host[out][i]);
        return false;
      }
    }
  }
  return true;
}

} // namespace mha::flow
