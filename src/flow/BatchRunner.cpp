#include "flow/BatchRunner.h"

#include "support/Json.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <mutex>
#include <sstream>

namespace mha::flow {

namespace {

using Clock = std::chrono::steady_clock;

double msBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string firstLine(const std::string &text) {
  size_t eol = text.find('\n');
  return eol == std::string::npos ? text : text.substr(0, eol);
}

/// Exact nearest-rank percentile over sorted values (p in [0, 100]).
double exactPercentile(const std::vector<double> &sorted, double p) {
  if (sorted.empty())
    return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank < 1)
    rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

/// Runs one job with full error containment: any exception becomes a
/// failed FlowResult instead of escaping into the pool.
FlowResult runJobContained(const BatchJob &job) {
  try {
    if (!job.spec)
      throw std::invalid_argument("batch job has no kernel spec");
    return job.kind == FlowKind::Adaptor
               ? runAdaptorFlow(*job.spec, job.config, job.options)
               : runHlsCppFlow(*job.spec, job.config, job.options);
  } catch (const std::exception &e) {
    FlowResult failed;
    failed.kind = job.kind;
    failed.kernelName = job.spec ? job.spec->name : "<null>";
    failed.diagnostics = std::string("exception: ") + e.what();
    return failed;
  } catch (...) {
    FlowResult failed;
    failed.kind = job.kind;
    failed.kernelName = job.spec ? job.spec->name : "<null>";
    failed.diagnostics = "exception: unknown";
    return failed;
  }
}

} // namespace

std::string BatchTrace::json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"mha.batch-trace.v1\",\n";
  os << strfmt("  \"threads\": %u,\n", threads);
  os << strfmt("  \"job_count\": %zu,\n  \"failures\": %zu,\n", jobCount,
               failures);
  os << "  \"wall_ms\": " << json::number(wallMs)
     << ",\n  \"serial_ms\": " << json::number(serialMs) << ",\n";
  os << "  \"speedup\": "
     << json::number(wallMs > 0 ? serialMs / wallMs : 0.0) << ",\n";
  os << "  \"e2e_ms_p50\": " << json::number(e2eP50Ms)
     << ",\n  \"e2e_ms_p90\": " << json::number(e2eP90Ms)
     << ",\n  \"e2e_ms_p99\": " << json::number(e2eP99Ms) << ",\n";
  os << "  \"jobs_per_worker\": [";
  for (size_t w = 0; w < jobsPerWorker.size(); ++w)
    os << (w ? ", " : "") << jobsPerWorker[w];
  os << "],\n";
  os << "  \"jobs\": [\n";
  for (size_t i = 0; i < jobs.size(); ++i) {
    const JobTrace &job = jobs[i];
    os << "    {\n";
    os << strfmt("      \"index\": %zu,\n", job.index);
    os << "      \"kernel\": \"" << json::escape(job.kernel) << "\",\n";
    os << "      \"label\": \"" << json::escape(job.label) << "\",\n";
    os << "      \"flow\": \"" << flowKindName(job.kind) << "\",\n";
    os << "      \"ok\": " << (job.ok ? "true" : "false") << ",\n";
    os << "      \"accepted\": " << (job.accepted ? "true" : "false")
       << ",\n";
    os << strfmt("      \"worker\": %d,\n", job.worker);
    os << "      \"queue_ms\": " << json::number(job.queueMs) << ",\n";
    os << "      \"wall_ms\": " << json::number(job.wallMs) << ",\n";
    os << strfmt("      \"queue_depth_at_start\": %zu,\n",
                 job.queueDepthAtStart);
    os << "      \"timings\": {\"mlir_opt_ms\": "
       << json::number(job.timings.mlirOptMs)
       << ", \"bridge_ms\": " << json::number(job.timings.bridgeMs)
       << ", \"synth_ms\": " << json::number(job.timings.synthMs)
       << ", \"total_ms\": " << json::number(job.timings.totalMs) << "},\n";
    os << "      \"spans\": [";
    for (size_t s = 0; s < job.spans.size(); ++s) {
      const StageSpan &span = job.spans[s];
      os << (s ? ", " : "") << "{\"stage\": \"" << json::escape(span.stage)
         << "\", \"name\": \"" << json::escape(span.name)
         << "\", \"ms\": " << json::number(span.ms) << "}";
    }
    os << "],\n";
    os << "      \"adaptor_stats\": {";
    bool first = true;
    for (const auto &[key, value] : job.adaptorStats) {
      os << (first ? "" : ", ") << "\"" << json::escape(key)
         << "\": " << value;
      first = false;
    }
    os << "}";
    if (!job.error.empty())
      os << ",\n      \"error\": \"" << json::escape(job.error) << "\"";
    os << "\n    }" << (i + 1 < jobs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void JsonFileTraceSink::onBatchFinished(const BatchTrace &trace) {
  std::string rendered = trace.json();
  std::string validateError;
  if (!json::validate(rendered, &validateError)) {
    error_ = "batch trace is not well-formed JSON: " + validateError;
    return;
  }
  std::ofstream out(path_);
  if (!out) {
    error_ = "cannot open " + path_;
    return;
  }
  out << rendered;
  error_ = out.good() ? "" : "write to " + path_ + " failed";
}

BatchOutcome runBatch(const std::vector<BatchJob> &jobs,
                      const BatchOptions &options) {
  BatchOutcome out;
  out.results.resize(jobs.size());
  out.trace.jobs.resize(jobs.size());
  out.trace.jobCount = jobs.size();

  std::unique_ptr<ThreadPool> ownedPool;
  ThreadPool *pool = options.pool;
  if (!pool) {
    ownedPool = std::make_unique<ThreadPool>(options.numThreads);
    pool = ownedPool.get();
  }
  out.trace.threads = pool->size();
  out.trace.jobsPerWorker.assign(pool->size(), 0);

  std::mutex sinkMutex;
  // The whole batch is one span on the submitting thread; each job runs
  // inside its own span in the executing worker's lane, so a Chrome trace
  // shows one lane per pool worker with the per-job flow-stage/pass spans
  // nested beneath the job.
  telemetry::Span batchSpan(strfmt("batch:%zu-jobs", jobs.size()), "batch");
  auto batchStart = Clock::now();
  TaskGroup group(*pool);
  for (size_t i = 0; i < jobs.size(); ++i) {
    auto submitted = Clock::now();
    group.submit([&, i, submitted] {
      const BatchJob &job = jobs[i];
      JobTrace &trace = out.trace.jobs[i];
      trace.index = i;
      trace.kernel = job.spec ? job.spec->name : "<null>";
      trace.label = job.label;
      trace.kind = job.kind;
      trace.worker = ThreadPool::currentWorkerIndex();
      trace.queueDepthAtStart = pool->queueDepth();
      if (trace.worker >= 0)
        telemetry::Tracer::setThreadLane(trace.worker,
                                         strfmt("worker %d", trace.worker));

      auto start = Clock::now();
      trace.queueMs = msBetween(submitted, start);
      telemetry::Span jobSpan(
          strfmt("job:%s:%s", trace.kernel.c_str(), flowKindName(job.kind)),
          "batch-job",
          {{"index", strfmt("%zu", i)}, {"label", job.label}});
      FlowResult result = runJobContained(job);
      trace.wallMs = jobSpan.finish();

      trace.ok = result.ok;
      trace.accepted = result.synth.accepted;
      trace.timings = result.timings;
      trace.spans = result.spans;
      trace.adaptorStats = result.adaptorStats;
      if (!result.ok) {
        trace.error = firstLine(result.diagnostics);
        telemetry::Tracer::global().instant(
            strfmt("job-failed:%s", trace.kernel.c_str()), "batch-job");
      }
      out.results[i] = std::move(result);

      if (options.sink) {
        std::lock_guard<std::mutex> lock(sinkMutex);
        options.sink->onJobFinished(trace);
      }
    });
  }
  group.wait();
  batchSpan.finish();
  out.trace.wallMs = msBetween(batchStart, Clock::now());

  static metrics::Histogram &jobE2eUs = metrics::Registry::global().histogram(
      "mha_batch_job_e2e_us",
      "per-job end-to-end latency (queue wait + flow execution)");
  std::vector<double> e2eMs;
  e2eMs.reserve(out.trace.jobs.size());
  for (const JobTrace &trace : out.trace.jobs) {
    out.trace.serialMs += trace.wallMs;
    e2eMs.push_back(trace.queueMs + trace.wallMs);
    jobE2eUs.record(
        static_cast<int64_t>((trace.queueMs + trace.wallMs) * 1000.0));
    if (!trace.ok)
      ++out.trace.failures;
    if (trace.worker >= 0 &&
        static_cast<size_t>(trace.worker) < out.trace.jobsPerWorker.size())
      ++out.trace.jobsPerWorker[static_cast<size_t>(trace.worker)];
  }
  std::sort(e2eMs.begin(), e2eMs.end());
  out.trace.e2eP50Ms = exactPercentile(e2eMs, 50);
  out.trace.e2eP90Ms = exactPercentile(e2eMs, 90);
  out.trace.e2eP99Ms = exactPercentile(e2eMs, 99);
  if (options.sink)
    options.sink->onBatchFinished(out.trace);
  return out;
}

} // namespace mha::flow
