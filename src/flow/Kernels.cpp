#include "flow/Kernels.h"

#include "mir/transforms/MirTransforms.h"

#include <cassert>
#include <cmath>

namespace mha::flow {

namespace {

using mir::AffineMap;
using mir::ForOp;
using mir::FuncOp;
using mir::MContext;
using mir::OpBuilder;

constexpr int64_t N = 32; // default problem size

/// Identity-map affine load/store helpers.
mir::Value *loadAt(OpBuilder &b, mir::Value *mem,
                   std::vector<mir::Value *> ivs) {
  auto *mt = cast<mir::MemRefType>(mem->type());
  return b.affineLoad(mem, AffineMap::identity(b.context(), mt->rank()),
                      std::move(ivs));
}

void storeAt(OpBuilder &b, mir::Value *value, mir::Value *mem,
             std::vector<mir::Value *> ivs) {
  auto *mt = cast<mir::MemRefType>(mem->type());
  b.affineStore(value, mem, AffineMap::identity(b.context(), mt->rank()),
                std::move(ivs));
}

/// Load with per-dimension constant offsets: mem[iv0+off0][iv1+off1].
mir::Value *loadShifted(OpBuilder &b, mir::Value *mem,
                        std::vector<mir::Value *> ivs,
                        std::vector<int64_t> offsets) {
  MContext &ctx = b.context();
  std::vector<const mir::AffineExpr *> exprs;
  for (unsigned d = 0; d < ivs.size(); ++d)
    exprs.push_back(
        ctx.affineAdd(ctx.affineDim(d), ctx.affineConst(offsets[d])));
  AffineMap map(static_cast<unsigned>(ivs.size()), 0, std::move(exprs));
  return b.affineLoad(mem, map, std::move(ivs));
}

/// Applies innermost-loop directives from the config.
void markInner(ForOp loop, const KernelConfig &cfg) {
  if (!cfg.applyDirectives)
    return;
  if (cfg.pipelineII > 0)
    mir::setPipelineDirective(loop, cfg.pipelineII);
  if (cfg.unrollFactor > 1)
    mir::setUnrollDirective(loop, cfg.unrollFactor);
}

void markPartition(FuncOp fn, const KernelConfig &cfg, unsigned argIdx,
                   unsigned dim) {
  if (cfg.applyDirectives && cfg.partitionFactor > 1)
    mir::addArrayPartitionDirective(fn, argIdx, dim, cfg.partitionFactor,
                                    "cyclic");
}

void markDataflow(FuncOp fn, const KernelConfig &cfg) {
  if (cfg.applyDirectives && cfg.dataflow)
    fn.op->setAttr(mir::hlsattr::Dataflow,
                   fn.type()->context().unitAttr());
}

/// Starts a module with one function over f64 memref args of the given
/// shapes; returns builder positioned in the function body.
struct KernelScaffold {
  mir::OwnedModule module;
  FuncOp fn;

  KernelScaffold(MContext &ctx, const std::string &name,
                 const std::vector<std::vector<int64_t>> &shapes,
                 OpBuilder &builder)
      : module(OpBuilder::createModule()) {
    builder.setInsertPoint(module.get().body());
    std::vector<mir::Type *> inputs;
    for (const auto &shape : shapes)
      inputs.push_back(ctx.memrefTy(shape, ctx.f64()));
    fn = builder.createFunc(name, ctx.fnTy(inputs, {}));
    builder.setInsertPoint(fn.entryBlock());
  }

  void finish(OpBuilder &builder) {
    builder.setInsertPoint(fn.entryBlock());
    builder.createReturn();
  }
};

// ============================ gemm ============================

mir::OwnedModule buildGemm(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "gemm", {{N, N}, {N, N}, {N, N}}, b);
  mir::Value *A = s.fn.arg(0), *B = s.fn.arg(1), *C = s.fn.arg(2);
  markPartition(s.fn, cfg, 0, 1); // A by columns (k)
  markPartition(s.fn, cfg, 1, 0); // B by rows (k)

  ForOp iLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(iLoop);
  ForOp jLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(jLoop);
  mir::Value *i = iLoop.inductionVar(), *j = jLoop.inductionVar();
  storeAt(b, b.constantFloat(0.0, ctx.f64()), C, {i, j});
  ForOp kLoop = b.affineFor(0, N);
  markInner(kLoop, cfg);
  b.setInsertPointToLoopBody(kLoop);
  mir::Value *k = kLoop.inductionVar();
  mir::Value *a = loadAt(b, A, {i, k});
  mir::Value *bv = loadAt(b, B, {k, j});
  mir::Value *c = loadAt(b, C, {i, j});
  mir::Value *prod = b.binary(mir::ops::MulF, a, bv);
  storeAt(b, b.binary(mir::ops::AddF, c, prod), C, {i, j});
  s.finish(b);
  return std::move(s.module);
}

void refGemm(Buffers &buf) {
  auto &A = buf[0], &B = buf[1], &C = buf[2];
  for (int64_t i = 0; i < N; ++i)
    for (int64_t j = 0; j < N; ++j) {
      C[i * N + j] = 0.0;
      for (int64_t k = 0; k < N; ++k)
        C[i * N + j] = C[i * N + j] + A[i * N + k] * B[k * N + j];
    }
}

// ============================ 2mm ============================

mir::OwnedModule build2mm(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "mm2", {{N, N}, {N, N}, {N, N}, {N, N}}, b);
  mir::Value *A = s.fn.arg(0), *B = s.fn.arg(1), *C = s.fn.arg(2),
             *D = s.fn.arg(3);
  markPartition(s.fn, cfg, 0, 1);
  markPartition(s.fn, cfg, 1, 0);
  markDataflow(s.fn, cfg);
  mir::Value *tmp = b.memrefAlloc(ctx.memrefTy({N, N}, ctx.f64()));

  auto matmul = [&](mir::Value *X, mir::Value *Y, mir::Value *Z) {
    ForOp iLoop = b.affineFor(0, N);
    b.setInsertPointToLoopBody(iLoop);
    ForOp jLoop = b.affineFor(0, N);
    b.setInsertPointToLoopBody(jLoop);
    mir::Value *i = iLoop.inductionVar(), *j = jLoop.inductionVar();
    storeAt(b, b.constantFloat(0.0, ctx.f64()), Z, {i, j});
    ForOp kLoop = b.affineFor(0, N);
    markInner(kLoop, cfg);
    b.setInsertPointToLoopBody(kLoop);
    mir::Value *k = kLoop.inductionVar();
    mir::Value *x = loadAt(b, X, {i, k});
    mir::Value *y = loadAt(b, Y, {k, j});
    mir::Value *z = loadAt(b, Z, {i, j});
    storeAt(b, b.binary(mir::ops::AddF, z, b.binary(mir::ops::MulF, x, y)),
            Z, {i, j});
    b.setInsertPoint(s.fn.entryBlock());
  };
  matmul(A, B, tmp);
  matmul(tmp, C, D);
  s.finish(b);
  return std::move(s.module);
}

void ref2mm(Buffers &buf) {
  auto &A = buf[0], &B = buf[1], &C = buf[2], &D = buf[3];
  std::vector<double> tmp(N * N);
  for (int64_t i = 0; i < N; ++i)
    for (int64_t j = 0; j < N; ++j) {
      tmp[i * N + j] = 0.0;
      for (int64_t k = 0; k < N; ++k)
        tmp[i * N + j] += A[i * N + k] * B[k * N + j];
    }
  for (int64_t i = 0; i < N; ++i)
    for (int64_t j = 0; j < N; ++j) {
      D[i * N + j] = 0.0;
      for (int64_t k = 0; k < N; ++k)
        D[i * N + j] += tmp[i * N + k] * C[k * N + j];
    }
}

// ============================ atax ============================

mir::OwnedModule buildAtax(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "atax", {{N, N}, {N}, {N}}, b);
  mir::Value *A = s.fn.arg(0), *x = s.fn.arg(1), *y = s.fn.arg(2);
  markPartition(s.fn, cfg, 0, 1);
  markDataflow(s.fn, cfg);
  mir::Value *tmp = b.memrefAlloc(ctx.memrefTy({N}, ctx.f64()));

  // y = 0
  ForOp zLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(zLoop);
  storeAt(b, b.constantFloat(0.0, ctx.f64()), y, {zLoop.inductionVar()});
  b.setInsertPoint(s.fn.entryBlock());

  // tmp[i] = A[i,:] . x ; y += A[i,:]^T * tmp[i]
  ForOp iLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(iLoop);
  mir::Value *i = iLoop.inductionVar();
  storeAt(b, b.constantFloat(0.0, ctx.f64()), tmp, {i});
  ForOp jLoop = b.affineFor(0, N);
  markInner(jLoop, cfg);
  b.setInsertPointToLoopBody(jLoop);
  mir::Value *j = jLoop.inductionVar();
  mir::Value *t = loadAt(b, tmp, {i});
  mir::Value *prod = b.binary(mir::ops::MulF, loadAt(b, A, {i, j}),
                              loadAt(b, x, {j}));
  storeAt(b, b.binary(mir::ops::AddF, t, prod), tmp, {i});
  b.setInsertPointToLoopBody(iLoop);

  ForOp j2Loop = b.affineFor(0, N);
  markInner(j2Loop, cfg);
  b.setInsertPointToLoopBody(j2Loop);
  mir::Value *j2 = j2Loop.inductionVar();
  mir::Value *yv = loadAt(b, y, {j2});
  mir::Value *prod2 = b.binary(mir::ops::MulF, loadAt(b, A, {i, j2}),
                               loadAt(b, tmp, {i}));
  storeAt(b, b.binary(mir::ops::AddF, yv, prod2), y, {j2});
  s.finish(b);
  return std::move(s.module);
}

void refAtax(Buffers &buf) {
  auto &A = buf[0], &x = buf[1], &y = buf[2];
  std::vector<double> tmp(N);
  for (int64_t j = 0; j < N; ++j)
    y[j] = 0.0;
  for (int64_t i = 0; i < N; ++i) {
    tmp[i] = 0.0;
    for (int64_t j = 0; j < N; ++j)
      tmp[i] = tmp[i] + A[i * N + j] * x[j];
    for (int64_t j = 0; j < N; ++j)
      y[j] = y[j] + A[i * N + j] * tmp[i];
  }
}

// ============================ bicg ============================

mir::OwnedModule buildBicg(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "bicg", {{N, N}, {N}, {N}, {N}, {N}}, b);
  mir::Value *A = s.fn.arg(0), *p = s.fn.arg(1), *r = s.fn.arg(2),
             *sv = s.fn.arg(3), *q = s.fn.arg(4);
  markPartition(s.fn, cfg, 0, 1);

  ForOp zLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(zLoop);
  storeAt(b, b.constantFloat(0.0, ctx.f64()), sv, {zLoop.inductionVar()});
  b.setInsertPoint(s.fn.entryBlock());

  ForOp iLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(iLoop);
  mir::Value *i = iLoop.inductionVar();
  storeAt(b, b.constantFloat(0.0, ctx.f64()), q, {i});
  ForOp jLoop = b.affineFor(0, N);
  markInner(jLoop, cfg);
  b.setInsertPointToLoopBody(jLoop);
  mir::Value *j = jLoop.inductionVar();
  mir::Value *aij = loadAt(b, A, {i, j});
  // s[j] += r[i] * A[i][j]
  mir::Value *sj = loadAt(b, sv, {j});
  mir::Value *ri = loadAt(b, r, {i});
  storeAt(b, b.binary(mir::ops::AddF, sj, b.binary(mir::ops::MulF, ri, aij)),
          sv, {j});
  // q[i] += A[i][j] * p[j]
  mir::Value *qi = loadAt(b, q, {i});
  mir::Value *pj = loadAt(b, p, {j});
  storeAt(b, b.binary(mir::ops::AddF, qi, b.binary(mir::ops::MulF, aij, pj)),
          q, {i});
  s.finish(b);
  return std::move(s.module);
}

void refBicg(Buffers &buf) {
  auto &A = buf[0], &p = buf[1], &r = buf[2], &sv = buf[3], &q = buf[4];
  for (int64_t j = 0; j < N; ++j)
    sv[j] = 0.0;
  for (int64_t i = 0; i < N; ++i) {
    q[i] = 0.0;
    for (int64_t j = 0; j < N; ++j) {
      sv[j] = sv[j] + r[i] * A[i * N + j];
      q[i] = q[i] + A[i * N + j] * p[j];
    }
  }
}

// ============================ gesummv ============================

mir::OwnedModule buildGesummv(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "gesummv", {{N, N}, {N, N}, {N}, {N}}, b);
  mir::Value *A = s.fn.arg(0), *B = s.fn.arg(1), *x = s.fn.arg(2),
             *y = s.fn.arg(3);
  markPartition(s.fn, cfg, 0, 1);
  markPartition(s.fn, cfg, 1, 1);

  ForOp iLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(iLoop);
  mir::Value *i = iLoop.inductionVar();
  storeAt(b, b.constantFloat(0.0, ctx.f64()), y, {i});
  ForOp jLoop = b.affineFor(0, N);
  markInner(jLoop, cfg);
  b.setInsertPointToLoopBody(jLoop);
  mir::Value *j = jLoop.inductionVar();
  mir::Value *alpha = b.constantFloat(1.5, ctx.f64());
  mir::Value *beta = b.constantFloat(1.2, ctx.f64());
  mir::Value *xj = loadAt(b, x, {j});
  mir::Value *term1 = b.binary(
      mir::ops::MulF, b.binary(mir::ops::MulF, alpha, loadAt(b, A, {i, j})),
      xj);
  mir::Value *term2 = b.binary(
      mir::ops::MulF, b.binary(mir::ops::MulF, beta, loadAt(b, B, {i, j})),
      xj);
  mir::Value *yi = loadAt(b, y, {i});
  storeAt(b,
          b.binary(mir::ops::AddF, yi, b.binary(mir::ops::AddF, term1, term2)),
          y, {i});
  s.finish(b);
  return std::move(s.module);
}

void refGesummv(Buffers &buf) {
  auto &A = buf[0], &B = buf[1], &x = buf[2], &y = buf[3];
  for (int64_t i = 0; i < N; ++i) {
    y[i] = 0.0;
    for (int64_t j = 0; j < N; ++j) {
      double term1 = (1.5 * A[i * N + j]) * x[j];
      double term2 = (1.2 * B[i * N + j]) * x[j];
      y[i] = y[i] + (term1 + term2);
    }
  }
}

// ============================ mvt ============================

mir::OwnedModule buildMvt(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "mvt", {{N, N}, {N}, {N}, {N}, {N}}, b);
  mir::Value *A = s.fn.arg(0), *x1 = s.fn.arg(1), *x2 = s.fn.arg(2),
             *y1 = s.fn.arg(3), *y2 = s.fn.arg(4);
  markPartition(s.fn, cfg, 0, 1);
  markDataflow(s.fn, cfg);

  ForOp iLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(iLoop);
  mir::Value *i = iLoop.inductionVar();
  ForOp jLoop = b.affineFor(0, N);
  markInner(jLoop, cfg);
  b.setInsertPointToLoopBody(jLoop);
  mir::Value *j = jLoop.inductionVar();
  mir::Value *v1 = loadAt(b, x1, {i});
  storeAt(b,
          b.binary(mir::ops::AddF, v1,
                   b.binary(mir::ops::MulF, loadAt(b, A, {i, j}),
                            loadAt(b, y1, {j}))),
          x1, {i});
  b.setInsertPoint(s.fn.entryBlock());

  ForOp i2Loop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(i2Loop);
  mir::Value *i2 = i2Loop.inductionVar();
  ForOp j2Loop = b.affineFor(0, N);
  markInner(j2Loop, cfg);
  b.setInsertPointToLoopBody(j2Loop);
  mir::Value *j2 = j2Loop.inductionVar();
  mir::Value *v2 = loadAt(b, x2, {i2});
  storeAt(b,
          b.binary(mir::ops::AddF, v2,
                   b.binary(mir::ops::MulF, loadAt(b, A, {j2, i2}),
                            loadAt(b, y2, {j2}))),
          x2, {i2});
  s.finish(b);
  return std::move(s.module);
}

void refMvt(Buffers &buf) {
  auto &A = buf[0], &x1 = buf[1], &x2 = buf[2], &y1 = buf[3], &y2 = buf[4];
  for (int64_t i = 0; i < N; ++i)
    for (int64_t j = 0; j < N; ++j)
      x1[i] = x1[i] + A[i * N + j] * y1[j];
  for (int64_t i = 0; i < N; ++i)
    for (int64_t j = 0; j < N; ++j)
      x2[i] = x2[i] + A[j * N + i] * y2[j];
}

// ============================ syrk ============================

mir::OwnedModule buildSyrk(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "syrk", {{N, N}, {N, N}}, b);
  mir::Value *A = s.fn.arg(0), *C = s.fn.arg(1);
  markPartition(s.fn, cfg, 0, 1);

  ForOp iLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(iLoop);
  ForOp jLoop = b.affineFor(0, N);
  b.setInsertPointToLoopBody(jLoop);
  mir::Value *i = iLoop.inductionVar(), *j = jLoop.inductionVar();
  mir::Value *beta = b.constantFloat(1.2, ctx.f64());
  storeAt(b, b.binary(mir::ops::MulF, loadAt(b, C, {i, j}), beta), C, {i, j});
  ForOp kLoop = b.affineFor(0, N);
  markInner(kLoop, cfg);
  b.setInsertPointToLoopBody(kLoop);
  mir::Value *k = kLoop.inductionVar();
  mir::Value *prod = b.binary(mir::ops::MulF, loadAt(b, A, {i, k}),
                              loadAt(b, A, {j, k}));
  storeAt(b, b.binary(mir::ops::AddF, loadAt(b, C, {i, j}), prod), C, {i, j});
  s.finish(b);
  return std::move(s.module);
}

void refSyrk(Buffers &buf) {
  auto &A = buf[0], &C = buf[1];
  for (int64_t i = 0; i < N; ++i)
    for (int64_t j = 0; j < N; ++j) {
      C[i * N + j] = C[i * N + j] * 1.2;
      for (int64_t k = 0; k < N; ++k)
        C[i * N + j] = C[i * N + j] + A[i * N + k] * A[j * N + k];
    }
}

// ============================ fir ============================

constexpr int64_t FIR_N = 64;
constexpr int64_t FIR_T = 16;

mir::OwnedModule buildFir(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "fir", {{FIR_N + FIR_T}, {FIR_T}, {FIR_N}}, b);
  mir::Value *x = s.fn.arg(0), *h = s.fn.arg(1), *y = s.fn.arg(2);
  markPartition(s.fn, cfg, 1, 0);

  ForOp iLoop = b.affineFor(0, FIR_N);
  b.setInsertPointToLoopBody(iLoop);
  mir::Value *i = iLoop.inductionVar();
  storeAt(b, b.constantFloat(0.0, ctx.f64()), y, {i});
  ForOp kLoop = b.affineFor(0, FIR_T);
  markInner(kLoop, cfg);
  b.setInsertPointToLoopBody(kLoop);
  mir::Value *k = kLoop.inductionVar();
  // x[i + k]
  MContext &c = ctx;
  AffineMap sumMap(2, 0, {c.affineAdd(c.affineDim(0), c.affineDim(1))});
  mir::Value *xv = b.affineLoad(x, sumMap, {i, k});
  mir::Value *prod = b.binary(mir::ops::MulF, loadAt(b, h, {k}), xv);
  storeAt(b, b.binary(mir::ops::AddF, loadAt(b, y, {i}), prod), y, {i});
  s.finish(b);
  return std::move(s.module);
}

void refFir(Buffers &buf) {
  auto &x = buf[0], &h = buf[1], &y = buf[2];
  for (int64_t i = 0; i < FIR_N; ++i) {
    y[i] = 0.0;
    for (int64_t k = 0; k < FIR_T; ++k)
      y[i] = y[i] + h[k] * x[i + k];
  }
}

// ============================ conv2d ============================

constexpr int64_t CONV_OUT = 32;
constexpr int64_t CONV_IN = CONV_OUT + 2;

mir::OwnedModule buildConv2d(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "conv2d",
                   {{CONV_IN, CONV_IN}, {3, 3}, {CONV_OUT, CONV_OUT}}, b);
  mir::Value *in = s.fn.arg(0), *w = s.fn.arg(1), *out = s.fn.arg(2);
  markPartition(s.fn, cfg, 0, 1);
  markPartition(s.fn, cfg, 1, 1); // the 3x3 weights are the port hotspot

  ForOp iLoop = b.affineFor(0, CONV_OUT);
  b.setInsertPointToLoopBody(iLoop);
  ForOp jLoop = b.affineFor(0, CONV_OUT);
  markInner(jLoop, cfg);
  b.setInsertPointToLoopBody(jLoop);
  mir::Value *i = iLoop.inductionVar(), *j = jLoop.inductionVar();
  // Fully unrolled 3x3 stencil (ScaleHLS-style small-kernel unrolling).
  mir::Value *acc = b.constantFloat(0.0, ctx.f64());
  for (int64_t di = 0; di < 3; ++di) {
    for (int64_t dj = 0; dj < 3; ++dj) {
      mir::Value *inV = loadShifted(b, in, {i, j}, {di, dj});
      // w[di][dj]: constant subscripts.
      MContext &c = ctx;
      AffineMap wMap(0, 0, {c.affineConst(di), c.affineConst(dj)});
      mir::Value *wv = b.affineLoad(w, wMap, {});
      acc = b.binary(mir::ops::AddF, acc, b.binary(mir::ops::MulF, wv, inV));
    }
  }
  storeAt(b, acc, out, {i, j});
  s.finish(b);
  return std::move(s.module);
}

void refConv2d(Buffers &buf) {
  auto &in = buf[0], &w = buf[1], &out = buf[2];
  for (int64_t i = 0; i < CONV_OUT; ++i)
    for (int64_t j = 0; j < CONV_OUT; ++j) {
      double acc = 0.0;
      for (int64_t di = 0; di < 3; ++di)
        for (int64_t dj = 0; dj < 3; ++dj)
          acc = acc + w[di * 3 + dj] * in[(i + di) * CONV_IN + (j + dj)];
      out[i * CONV_OUT + j] = acc;
    }
}

// ============================ rmsnorm ============================

constexpr int64_t RMS_N = 64;

mir::OwnedModule buildRmsnorm(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "rmsnorm", {{RMS_N}, {RMS_N}}, b);
  mir::Value *x = s.fn.arg(0), *y = s.fn.arg(1);
  markPartition(s.fn, cfg, 0, 0);
  markDataflow(s.fn, cfg);

  // s2[0] = sum x[i]^2
  mir::Value *acc = b.memrefAlloc(ctx.memrefTy({1}, ctx.f64()));
  AffineMap zeroMap(0, 0, {ctx.affineConst(0)});
  b.affineStore(b.constantFloat(0.0, ctx.f64()), acc, zeroMap, {});
  ForOp sumLoop = b.affineFor(0, RMS_N);
  markInner(sumLoop, cfg);
  b.setInsertPointToLoopBody(sumLoop);
  mir::Value *i = sumLoop.inductionVar();
  mir::Value *xi = loadAt(b, x, {i});
  mir::Value *sq = b.binary(mir::ops::MulF, xi, xi);
  b.affineStore(b.binary(mir::ops::AddF,
                         b.affineLoad(acc, zeroMap, {}), sq),
                acc, zeroMap, {});
  b.setInsertPoint(s.fn.entryBlock());

  // scale = 1 / sqrt(s2/N + eps); y[i] = x[i] * scale
  mir::Value *total = b.affineLoad(acc, zeroMap, {});
  mir::Value *mean = b.binary(mir::ops::DivF, total,
                              b.constantFloat(double(RMS_N), ctx.f64()));
  mir::Value *eps = b.constantFloat(1e-5, ctx.f64());
  mir::Value *root =
      b.mathOp(mir::ops::MathSqrt, b.binary(mir::ops::AddF, mean, eps));
  mir::Value *scale =
      b.binary(mir::ops::DivF, b.constantFloat(1.0, ctx.f64()), root);
  ForOp outLoop = b.affineFor(0, RMS_N);
  markInner(outLoop, cfg);
  b.setInsertPointToLoopBody(outLoop);
  mir::Value *j = outLoop.inductionVar();
  storeAt(b, b.binary(mir::ops::MulF, loadAt(b, x, {j}), scale), y, {j});
  s.finish(b);
  return std::move(s.module);
}

void refRmsnorm(Buffers &buf) {
  auto &x = buf[0], &y = buf[1];
  double s2 = 0.0;
  for (int64_t i = 0; i < RMS_N; ++i)
    s2 = s2 + x[i] * x[i];
  double scale = 1.0 / std::sqrt(s2 / double(RMS_N) + 1e-5);
  for (int64_t j = 0; j < RMS_N; ++j)
    y[j] = x[j] * scale;
}

// ============================ jacobi2d ============================

constexpr int64_t JAC = 34;

mir::OwnedModule buildJacobi2d(MContext &ctx, const KernelConfig &cfg) {
  OpBuilder b(ctx);
  KernelScaffold s(ctx, "jacobi2d", {{JAC, JAC}, {JAC, JAC}}, b);
  mir::Value *in = s.fn.arg(0), *out = s.fn.arg(1);
  markPartition(s.fn, cfg, 0, 1);

  ForOp iLoop = b.affineFor(1, JAC - 1);
  b.setInsertPointToLoopBody(iLoop);
  ForOp jLoop = b.affineFor(1, JAC - 1);
  markInner(jLoop, cfg);
  b.setInsertPointToLoopBody(jLoop);
  mir::Value *i = iLoop.inductionVar(), *j = jLoop.inductionVar();
  mir::Value *sum = loadShifted(b, in, {i, j}, {0, 0});
  sum = b.binary(mir::ops::AddF, sum, loadShifted(b, in, {i, j}, {-1, 0}));
  sum = b.binary(mir::ops::AddF, sum, loadShifted(b, in, {i, j}, {1, 0}));
  sum = b.binary(mir::ops::AddF, sum, loadShifted(b, in, {i, j}, {0, -1}));
  sum = b.binary(mir::ops::AddF, sum, loadShifted(b, in, {i, j}, {0, 1}));
  storeAt(b, b.binary(mir::ops::MulF, b.constantFloat(0.2, ctx.f64()), sum),
          out, {i, j});
  s.finish(b);
  return std::move(s.module);
}

void refJacobi2d(Buffers &buf) {
  auto &in = buf[0], &out = buf[1];
  for (int64_t i = 1; i < JAC - 1; ++i)
    for (int64_t j = 1; j < JAC - 1; ++j) {
      double sum = in[i * JAC + j];
      sum = sum + in[(i - 1) * JAC + j];
      sum = sum + in[(i + 1) * JAC + j];
      sum = sum + in[i * JAC + (j - 1)];
      sum = sum + in[i * JAC + (j + 1)];
      out[i * JAC + j] = 0.2 * sum;
    }
}

} // namespace

const std::vector<KernelSpec> &allKernels() {
  static const std::vector<KernelSpec> kernels = [] {
    std::vector<KernelSpec> out;
    out.push_back({"gemm", "dense matrix multiply C = A*B",
                   {{N, N}, {N, N}, {N, N}}, {2}, buildGemm, refGemm});
    out.push_back({"mm2", "two chained matrix multiplies D = (A*B)*C",
                   {{N, N}, {N, N}, {N, N}, {N, N}}, {3}, build2mm, ref2mm});
    out.push_back({"atax", "y = A^T (A x)", {{N, N}, {N}, {N}}, {2},
                   buildAtax, refAtax});
    out.push_back({"bicg", "BiCG sub-kernel: s = A^T r, q = A p",
                   {{N, N}, {N}, {N}, {N}, {N}}, {3, 4}, buildBicg, refBicg});
    out.push_back({"gesummv", "y = alpha*A*x + beta*B*x",
                   {{N, N}, {N, N}, {N}, {N}}, {3}, buildGesummv,
                   refGesummv});
    out.push_back({"mvt", "x1 += A*y1; x2 += A^T*y2",
                   {{N, N}, {N}, {N}, {N}, {N}}, {1, 2}, buildMvt, refMvt});
    out.push_back({"syrk", "C = beta*C + A*A^T", {{N, N}, {N, N}}, {1},
                   buildSyrk, refSyrk});
    out.push_back({"fir", "64-tap output, 16-tap FIR filter",
                   {{FIR_N + FIR_T}, {FIR_T}, {FIR_N}}, {2}, buildFir,
                   refFir});
    out.push_back({"conv2d", "3x3 convolution, 32x32 output",
                   {{CONV_IN, CONV_IN}, {3, 3}, {CONV_OUT, CONV_OUT}}, {2},
                   buildConv2d, refConv2d});
    out.push_back({"jacobi2d", "5-point Jacobi stencil sweep",
                   {{JAC, JAC}, {JAC, JAC}}, {1}, buildJacobi2d,
                   refJacobi2d});
    out.push_back({"rmsnorm", "RMS normalization (uses the sqrt math core)",
                   {{RMS_N}, {RMS_N}}, {1}, buildRmsnorm, refRmsnorm});
    return out;
  }();
  return kernels;
}

const KernelSpec *findKernel(const std::string &name) {
  for (const KernelSpec &spec : allKernels())
    if (spec.name == name)
      return &spec;
  return nullptr;
}

std::string availableKernelsHint() {
  std::string out = "available kernels:";
  for (const KernelSpec &spec : allKernels()) {
    out += out.back() == ':' ? " " : ", ";
    out += spec.name;
  }
  return out;
}

void seedBuffers(Buffers &buffers, uint64_t seed) {
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((state >> 33) & 0xffff) / 65536.0 - 0.5;
  };
  for (auto &buffer : buffers)
    for (double &v : buffer)
      v = next();
}

Buffers makeBuffers(const KernelSpec &spec) {
  Buffers buffers;
  for (unsigned i = 0; i < spec.bufferShapes.size(); ++i)
    buffers.emplace_back(static_cast<size_t>(spec.bufferSize(i)), 0.0);
  return buffers;
}

} // namespace mha::flow
