// StageCache.h - content-addressed incremental-recompilation cache.
//
// Each flow stage hashes its *input* (the printed IR it consumes plus the
// options that shape it) into a 64-bit key and looks up the stage's
// *output* before doing any work. Keys are content-addressed, so the
// cache composes transitively: an edit to one kernel invalidates exactly
// that kernel's chain from the edited stage downward, and two kernels
// that lower to identical IR share the downstream entries.
//
// Three stage kinds are cached:
//   mlir    key = H(kernel, config, MLIR-level options)
//           value = printed mir module after the shared MLIR preparation
//   bridge  key = H(mir text, bridge options)   [per flow kind]
//           value = printed lir module (+ adaptor stats / emitted C++)
//   synth   key = H(lir text, synthesis options)
//           value = the SynthesisReport
//
// The cache is process-global and thread-safe: BatchRunner jobs, the DSE
// evaluator, and the fuzz oracle all share it through FlowOptions::
// useStageCache (off by default — a cold run's behaviour and output are
// bit-identical with the flag off). Only successful stage runs are
// stored; failures always re-execute so diagnostics are regenerated.
//
// Hit/miss counts land in the "flow.cache" statistic group (--stats) and
// are also readable structurally via counters() for tests.
#pragma once

#include "lir/PassManager.h"
#include "vhls/Vhls.h"

#include <cstdint>
#include <string>

namespace mha::flow {

class StageCache {
public:
  /// The shared process-wide instance every flow uses.
  static StageCache &global();

  /// Bridge-stage output: the flow-specific leg from mir text to HLS-ready
  /// lir text. The adaptor flow fills `adaptorStats`; the C++ flow fills
  /// `hlsCpp` (the emitted source, part of its FlowResult contract).
  struct BridgeEntry {
    std::string lirText;
    std::string hlsCpp;
    lir::PassStats adaptorStats;
  };

  /// Structural hit/miss/bytes snapshot (mirrors the "flow.cache"
  /// statistics and the mha_stage_cache_* metrics). Byte totals count the
  /// payloads currently resident per stage map: strings at their length,
  /// report structures at their structural size (fixed fields via sizeof
  /// plus owned string/vector payloads).
  struct Counters {
    int64_t mlirHits = 0, mlirMisses = 0;
    int64_t bridgeHits = 0, bridgeMisses = 0;
    int64_t synthHits = 0, synthMisses = 0;
    int64_t mlirBytes = 0, bridgeBytes = 0, synthBytes = 0;
    int64_t hits() const { return mlirHits + bridgeHits + synthHits; }
    int64_t misses() const { return mlirMisses + bridgeMisses + synthMisses; }
    int64_t bytes() const { return mlirBytes + bridgeBytes + synthBytes; }
    /// hits / (hits + misses), 0 when no lookups happened.
    double hitRate() const {
      int64_t total = hits() + misses();
      return total ? double(hits()) / double(total) : 0.0;
    }
  };

  bool lookupMlir(uint64_t key, std::string &mirText);
  void storeMlir(uint64_t key, std::string mirText);

  bool lookupBridge(uint64_t key, BridgeEntry &entry);
  void storeBridge(uint64_t key, BridgeEntry entry);

  bool lookupSynth(uint64_t key, vhls::SynthesisReport &report);
  void storeSynth(uint64_t key, vhls::SynthesisReport report);

  /// Synth-stage key: the printed pre-synthesis lir module plus every
  /// synthesis option (field by field — extend when SynthesisOptions
  /// grows). Shared so the flows and the fuzz oracle address the same
  /// entries for identical modules.
  static uint64_t synthKey(const std::string &lirText,
                           const vhls::SynthesisOptions &options);

  Counters counters() const;

  /// The observability-layer name for counters(): one consistent snapshot
  /// of hits, misses, resident bytes and hitRate().
  Counters stats() const { return counters(); }

  /// Drops every entry and zeroes the structural counters (tests; the
  /// "flow.cache" statistics follow the global telemetry reset instead).
  void clear();

  /// Total cached entries across all three stage maps.
  size_t size() const;

private:
  StageCache() = default;

  struct Impl;
  Impl &impl() const;
};

} // namespace mha::flow
