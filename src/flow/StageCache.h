// StageCache.h - content-addressed incremental-recompilation cache.
//
// Each flow stage hashes its *input* (the printed IR it consumes plus the
// options that shape it) into a 64-bit key and looks up the stage's
// *output* before doing any work. Keys are content-addressed, so the
// cache composes transitively: an edit to one kernel invalidates exactly
// that kernel's chain from the edited stage downward, and two kernels
// that lower to identical IR share the downstream entries.
//
// Three stage kinds are cached:
//   mlir    key = H(kernel, config, MLIR-level options)
//           value = printed mir module after the shared MLIR preparation
//   bridge  key = H(mir text, bridge options)   [per flow kind]
//           value = printed lir module (+ adaptor stats / emitted C++)
//   synth   key = H(lir text, synthesis options)
//           value = the SynthesisReport
//
// The cache is process-global and thread-safe: BatchRunner jobs, the DSE
// evaluator, the fuzz oracle and mha-serve sessions all share it through
// FlowOptions::useStageCache (off by default — a cold run's behaviour and
// output are bit-identical with the flag off). Only successful stage runs
// are stored; failures always re-execute so diagnostics are regenerated.
//
// Residency is bounded two ways: a per-stage entry-count backstop and an
// optional process-wide byte cap (setLimitBytes, `--stage-cache-limit` on
// mha-serve). Both evict least-recently-used entries — every lookup hit
// and store refreshes its entry's recency, and the byte cap always evicts
// the globally coldest entry across the three stage maps, so a resident
// daemon serving millions of requests converges on its hot working set
// instead of growing without bound.
//
// Hit/miss/eviction counts land in the "flow.cache" statistic group
// (--stats) and are also readable structurally via counters() for tests.
#pragma once

#include "lir/PassManager.h"
#include "vhls/Vhls.h"

#include <cstdint>
#include <string>

namespace mha::flow {

class StageCache {
public:
  /// The shared process-wide instance every flow uses.
  static StageCache &global();

  /// Bridge-stage output: the flow-specific leg from mir text to HLS-ready
  /// lir text. The adaptor flow fills `adaptorStats`; the C++ flow fills
  /// `hlsCpp` (the emitted source, part of its FlowResult contract).
  struct BridgeEntry {
    std::string lirText;
    std::string hlsCpp;
    lir::PassStats adaptorStats;
  };

  /// Structural hit/miss/bytes snapshot (mirrors the "flow.cache"
  /// statistics and the mha_stage_cache_* metrics). Byte totals count the
  /// payloads currently resident per stage map: strings at their length,
  /// report structures at their structural size (fixed fields via sizeof
  /// plus owned string/vector payloads).
  struct Counters {
    int64_t mlirHits = 0, mlirMisses = 0;
    int64_t bridgeHits = 0, bridgeMisses = 0;
    int64_t synthHits = 0, synthMisses = 0;
    int64_t mlirBytes = 0, bridgeBytes = 0, synthBytes = 0;
    int64_t mlirEvictions = 0, bridgeEvictions = 0, synthEvictions = 0;
    int64_t hits() const { return mlirHits + bridgeHits + synthHits; }
    int64_t misses() const { return mlirMisses + bridgeMisses + synthMisses; }
    int64_t bytes() const { return mlirBytes + bridgeBytes + synthBytes; }
    int64_t evictions() const {
      return mlirEvictions + bridgeEvictions + synthEvictions;
    }
    /// hits / (hits + misses), 0 when no lookups happened.
    double hitRate() const {
      int64_t total = hits() + misses();
      return total ? double(hits()) / double(total) : 0.0;
    }
  };

  bool lookupMlir(uint64_t key, std::string &mirText);
  void storeMlir(uint64_t key, std::string mirText);

  bool lookupBridge(uint64_t key, BridgeEntry &entry);
  void storeBridge(uint64_t key, BridgeEntry entry);

  bool lookupSynth(uint64_t key, vhls::SynthesisReport &report);
  void storeSynth(uint64_t key, vhls::SynthesisReport report);

  /// Synth-stage key: the printed pre-synthesis lir module plus every
  /// synthesis option (field by field — extend when SynthesisOptions
  /// grows). Shared so the flows and the fuzz oracle address the same
  /// entries for identical modules.
  static uint64_t synthKey(const std::string &lirText,
                           const vhls::SynthesisOptions &options);

  /// Caps total resident payload bytes across the three stage maps
  /// (0 = unbounded, the default). When a store pushes the total past the
  /// cap, least-recently-used entries are evicted — globally, coldest
  /// first, regardless of stage — until the total fits again. An entry
  /// larger than the whole cap is evicted immediately after landing, so
  /// the resident-bytes gauges never exceed the cap after any store.
  void setLimitBytes(int64_t limitBytes);
  int64_t limitBytes() const;

  Counters counters() const;

  /// The observability-layer name for counters(): one consistent snapshot
  /// of hits, misses, resident bytes and hitRate().
  Counters stats() const { return counters(); }

  /// Drops every entry and zeroes the structural counters (tests; the
  /// "flow.cache" statistics follow the global telemetry reset instead).
  void clear();

  /// Total cached entries across all three stage maps.
  size_t size() const;

private:
  StageCache() = default;

  struct Impl;
  Impl &impl() const;
};

} // namespace mha::flow
