// Fuzz.cpp - campaign driver, report rendering, reproducer replay.
#include "fuzz/Fuzz.h"

#include "lir/LContext.h"
#include "lir/Printer.h"
#include "lowering/Lowering.h"
#include "mir/Pass.h"
#include "mir/Verifier.h"
#include "mir/transforms/MirTransforms.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <optional>

namespace mha::fuzz {

namespace {

/// One splitmix64 round: decorrelates per-program seeds from the campaign
/// seed so seed N and seed N+1 do not generate sibling programs.
uint64_t mix(uint64_t x) {
  uint64_t z = x + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Seeds are 64-bit; JSON numbers are doubles (53-bit mantissa), so they
/// travel as decimal strings.
std::string seedString(uint64_t seed) {
  return strfmt("%llu", static_cast<unsigned long long>(seed));
}

std::optional<uint64_t> parseSeed(const std::string &text) {
  uint64_t value = 0;
  const char *first = text.data();
  const char *last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc() || ptr != last)
    return std::nullopt;
  return value;
}

/// Renders the reduced kernel program's lowered LIR (the parseable .lir
/// reproducer). Empty when the failing stage precedes LIR generation.
std::string loweredLirText(const Program &program,
                           const flow::KernelConfig &config) {
  flow::KernelSpec spec = program.toKernelSpec();
  DiagnosticEngine diags;
  mir::MContext mctx;
  mir::OwnedModule module = spec.build(mctx, config);
  if (!mir::verifyModule(module.get(), diags))
    return "";
  mir::MPassManager pm;
  pm.add(mir::createCanonicalizePass());
  pm.add(mir::createAffineToScfPass());
  pm.add(mir::createCanonicalizePass());
  if (!pm.run(module.get(), diags))
    return "";
  lir::LContext lctx;
  std::unique_ptr<lir::Module> lowered =
      lowering::lowerToLIR(module.get(), lctx, lowering::LoweringOptions{},
                           diags);
  if (!lowered)
    return "";
  return lir::printModule(*lowered);
}

std::string genOptionsJson(const GenOptions &gen) {
  return strfmt("{\"maxLoopDepth\":%d,\"maxStmts\":%d,\"maxExprDepth\":%d,"
                "\"maxIrInsts\":%d,\"irArgSets\":%d,\"maxCallHelpers\":%d,"
                "\"maxCallOps\":%d,\"callArgSets\":%d}",
                gen.maxLoopDepth, gen.maxStmts, gen.maxExprDepth,
                gen.maxIrInsts, gen.irArgSets, gen.maxCallHelpers,
                gen.maxCallOps, gen.callArgSets);
}

std::optional<GenOptions> genOptionsFromJson(const json::Value &v) {
  GenOptions gen;
  if (!v.isObject())
    return std::nullopt;
  auto field = [&](const char *name, int fallback) {
    const json::Value *m = v.get(name);
    return m ? static_cast<int>(m->asInt(fallback)) : fallback;
  };
  gen.maxLoopDepth = field("maxLoopDepth", gen.maxLoopDepth);
  gen.maxStmts = field("maxStmts", gen.maxStmts);
  gen.maxExprDepth = field("maxExprDepth", gen.maxExprDepth);
  gen.maxIrInsts = field("maxIrInsts", gen.maxIrInsts);
  gen.irArgSets = field("irArgSets", gen.irArgSets);
  gen.maxCallHelpers = field("maxCallHelpers", gen.maxCallHelpers);
  gen.maxCallOps = field("maxCallOps", gen.maxCallOps);
  gen.callArgSets = field("callArgSets", gen.callArgSets);
  return gen;
}

/// Checks one campaign position; fills `failure` when the oracle flags it.
std::optional<FuzzFailure> checkOne(const std::string &mode, uint64_t seed,
                                    const FuzzOptions &options) {
  telemetry::Span span(strfmt("fuzz:%s:%s", mode.c_str(),
                              seedString(seed).c_str()),
                       "fuzz");
  ProgramGen gen(seed, options.gen);
  OracleResult result;
  size_t size = 0;
  if (mode == "kernel") {
    Program program = gen.genKernel();
    size = program.size();
    result = checkKernel(program, options.oracle);
  } else if (mode == "calls") {
    CallProgram program = gen.genCalls();
    size = program.size();
    result = checkCalls(program, options.oracle);
  } else {
    IrProgram program = gen.genIr();
    size = program.size();
    result = checkIr(program, options.oracle);
  }
  if (result.ok)
    return std::nullopt;
  FuzzFailure failure;
  failure.mode = mode;
  failure.programSeed = seed;
  failure.result = result;
  failure.originalSize = size;
  failure.reducedSize = size;
  return failure;
}

/// Reduces a flagged program and fills the reproducer text fields.
void reduceFailure(FuzzFailure &failure, const FuzzOptions &options) {
  ProgramGen gen(failure.programSeed, options.gen);
  ReductionTrace trace;
  if (failure.mode == "kernel") {
    Program program = gen.genKernel();
    Program reduced = options.reduce
                          ? reduceKernel(program, failure.result,
                                         options.oracle, options.reducer,
                                         &trace)
                          : program;
    failure.reducedSize = reduced.size();
    failure.reduceAttempts = trace.attempts;
    failure.reducedDescription = reduced.describe();
    failure.reducedLir = loweredLirText(reduced, options.oracle.config);
  } else if (failure.mode == "calls") {
    CallProgram program = gen.genCalls();
    CallProgram reduced =
        options.reduce ? reduceCalls(program, failure.result, options.oracle,
                                     options.reducer, &trace)
                       : program;
    failure.reducedSize = reduced.size();
    failure.reduceAttempts = trace.attempts;
    failure.reducedDescription = reduced.describe();
    failure.reducedLir = reduced.lir();
  } else {
    IrProgram program = gen.genIr();
    IrProgram reduced =
        options.reduce ? reduceIr(program, failure.result, options.oracle,
                                  options.reducer, &trace)
                       : program;
    failure.reducedSize = reduced.size();
    failure.reduceAttempts = trace.attempts;
    failure.reducedDescription = reduced.describe();
    failure.reducedLir = reduced.lir();
  }
}

void writeArtifacts(FuzzFailure &failure, const FuzzOptions &options) {
  if (options.artifactsDir.empty())
    return;
  std::error_code ec;
  std::filesystem::create_directories(options.artifactsDir, ec);
  std::string stem = failure.mode + "-" + seedString(failure.programSeed);
  std::string jsonPath = options.artifactsDir + "/" + stem + ".repro.json";
  std::ofstream jsonOut(jsonPath, std::ios::binary);
  jsonOut << failure.reproJson(options.gen) << "\n";
  if (jsonOut)
    failure.artifactJsonPath = jsonPath;
  if (!failure.reducedLir.empty()) {
    std::string lirPath = options.artifactsDir + "/" + stem + ".lir";
    std::ofstream lirOut(lirPath, std::ios::binary);
    lirOut << failure.reducedLir;
    if (lirOut)
      failure.artifactLirPath = lirPath;
  }
}

} // namespace

const char *fuzzModeName(FuzzOptions::Mode mode) {
  switch (mode) {
  case FuzzOptions::Mode::Kernel:
    return "kernel";
  case FuzzOptions::Mode::Ir:
    return "ir";
  case FuzzOptions::Mode::Calls:
    return "calls";
  case FuzzOptions::Mode::Both:
    return "both";
  case FuzzOptions::Mode::All:
    return "all";
  }
  return "?";
}

uint64_t deriveProgramSeed(uint64_t campaignSeed, uint64_t index) {
  return mix(campaignSeed ^ mix(index + 1));
}

std::string FuzzFailure::reproJson(const GenOptions &gen) const {
  std::string out = "{";
  out += "\"schema\":\"mha.fuzz.repro.v1\"";
  out += ",\"mode\":\"" + json::escape(mode) + "\"";
  out += ",\"seed\":\"" + seedString(programSeed) + "\"";
  out += ",\"kind\":\"" +
         json::escape(failureKindName(result.kind)) + "\"";
  out += ",\"stage\":\"" + json::escape(result.stage) + "\"";
  out += ",\"gen\":" + genOptionsJson(gen);
  out += "}";
  return out;
}

std::string FuzzReport::json() const {
  std::string out = "{";
  out += "\"schema\":\"mha.fuzz.v1\"";
  out += ",\"seed\":\"" + seedString(seed) + "\"";
  out += strfmt(",\"budget\":%d", budget);
  out += ",\"mode\":\"" + json::escape(mode) + "\"";
  out += strfmt(",\"jobs\":%u", jobs);
  out += strfmt(",\"programs\":{\"kernel\":%llu,\"ir\":%llu,\"calls\":%llu}",
                static_cast<unsigned long long>(kernelPrograms),
                static_cast<unsigned long long>(irPrograms),
                static_cast<unsigned long long>(callsPrograms));
  out += ",\"elapsedMs\":" + json::number(elapsedMs);
  out += ",\"clean\":" + std::string(clean() ? "true" : "false");
  out += ",\"failures\":[";
  for (size_t i = 0; i < failures.size(); ++i) {
    const FuzzFailure &f = failures[i];
    if (i)
      out += ",";
    out += "{";
    out += "\"mode\":\"" + json::escape(f.mode) + "\"";
    out += ",\"seed\":\"" + seedString(f.programSeed) + "\"";
    out += ",\"kind\":\"" +
           json::escape(failureKindName(f.result.kind)) + "\"";
    out += ",\"stage\":\"" + json::escape(f.result.stage) + "\"";
    out += ",\"detail\":\"" + json::escape(f.result.detail) + "\"";
    out += strfmt(",\"originalSize\":%zu,\"reducedSize\":%zu,"
                  "\"reduceAttempts\":%d",
                  f.originalSize, f.reducedSize, f.reduceAttempts);
    out += ",\"reduced\":\"" + json::escape(f.reducedDescription) + "\"";
    out += ",\"lir\":\"" + json::escape(f.reducedLir) + "\"";
    if (!f.artifactJsonPath.empty())
      out += ",\"artifact\":\"" + json::escape(f.artifactJsonPath) + "\"";
    out += "}";
  }
  out += "]}";
  return out;
}

FuzzReport runFuzz(const FuzzOptions &options) {
  telemetry::Span campaignSpan(
      strfmt("fuzz-campaign:%s", fuzzModeName(options.mode)), "fuzz");
  FuzzReport report;
  report.seed = options.seed;
  report.budget = options.budget;
  report.mode = fuzzModeName(options.mode);
  report.jobs = options.jobs == 0 ? 1 : options.jobs;

  std::vector<std::string> modes;
  if (options.mode == FuzzOptions::Mode::Kernel ||
      options.mode == FuzzOptions::Mode::Both ||
      options.mode == FuzzOptions::Mode::All)
    modes.push_back("kernel");
  if (options.mode == FuzzOptions::Mode::Ir ||
      options.mode == FuzzOptions::Mode::Both ||
      options.mode == FuzzOptions::Mode::All)
    modes.push_back("ir");
  if (options.mode == FuzzOptions::Mode::Calls ||
      options.mode == FuzzOptions::Mode::All)
    modes.push_back("calls");

  // (mode, program seed) work list; seeds depend only on the campaign
  // seed and position, never on thread scheduling.
  std::vector<std::pair<std::string, uint64_t>> work;
  for (const std::string &mode : modes)
    for (int i = 0; i < options.budget; ++i)
      work.push_back({mode, deriveProgramSeed(options.seed,
                                              static_cast<uint64_t>(i))});

  std::vector<std::optional<FuzzFailure>> slots(work.size());
  if (report.jobs > 1) {
    ThreadPool pool(report.jobs);
    parallelFor(pool, work.size(), [&](size_t i) {
      telemetry::Tracer::setThreadLane(
          2000 + static_cast<uint32_t>(ThreadPool::currentWorkerIndex()),
          strfmt("fuzz-worker-%d", ThreadPool::currentWorkerIndex()));
      slots[i] = checkOne(work[i].first, work[i].second, options);
    });
  } else {
    for (size_t i = 0; i < work.size(); ++i)
      slots[i] = checkOne(work[i].first, work[i].second, options);
  }

  for (const std::string &mode : modes) {
    uint64_t &counter = mode == "kernel" ? report.kernelPrograms
                        : mode == "calls" ? report.callsPrograms
                                          : report.irPrograms;
    counter += static_cast<uint64_t>(options.budget);
  }

  // Reduction is serial and in campaign order: reproducibility over
  // latency (failures are the rare case).
  for (auto &slot : slots) {
    if (!slot)
      continue;
    telemetry::Span reduceSpan(
        strfmt("fuzz-reduce:%s:%s", slot->mode.c_str(),
               seedString(slot->programSeed).c_str()),
        "fuzz");
    reduceFailure(*slot, options);
    writeArtifacts(*slot, options);
    report.failures.push_back(std::move(*slot));
  }
  report.elapsedMs = campaignSpan.finish();
  return report;
}

std::optional<FuzzFailure> replayRepro(const std::string &reproJson,
                                       const FuzzOptions &options,
                                       std::string &error,
                                       bool *noLongerFails) {
  std::string parseError;
  std::optional<json::Value> doc = json::parse(reproJson, &parseError);
  if (!doc || !doc->isObject()) {
    error = "invalid reproducer JSON: " + parseError;
    return std::nullopt;
  }
  const json::Value *schema = doc->get("schema");
  if (!schema || schema->asString() != "mha.fuzz.repro.v1") {
    error = "unsupported reproducer schema (want mha.fuzz.repro.v1)";
    return std::nullopt;
  }
  const json::Value *mode = doc->get("mode");
  if (!mode ||
      (mode->asString() != "kernel" && mode->asString() != "ir" &&
       mode->asString() != "calls")) {
    error = "reproducer mode must be \"kernel\", \"ir\" or \"calls\"";
    return std::nullopt;
  }
  const json::Value *seedField = doc->get("seed");
  std::optional<uint64_t> seed =
      seedField && seedField->isString() ? parseSeed(seedField->asString())
                                         : std::nullopt;
  if (!seed) {
    error = "reproducer seed must be a decimal string";
    return std::nullopt;
  }
  FuzzOptions replay = options;
  if (const json::Value *gen = doc->get("gen"))
    if (std::optional<GenOptions> parsed = genOptionsFromJson(*gen))
      replay.gen = *parsed;

  std::optional<FuzzFailure> failure =
      checkOne(mode->asString(), *seed, replay);
  if (!failure) {
    error = "reproducer no longer fails (bug already fixed?)";
    if (noLongerFails)
      *noLongerFails = true;
    return std::nullopt;
  }
  reduceFailure(*failure, replay);
  writeArtifacts(*failure, replay);
  return failure;
}

} // namespace mha::fuzz
