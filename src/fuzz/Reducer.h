// Reducer.h - bugpoint-style greedy test-case reduction.
//
// Given a program the oracle flags and the failure it produced, the
// reducer repeatedly applies structural shrinking edits (drop statements,
// peel loop levels, shrink bounds, hoist expression children, zero
// constants / dead-code-eliminate instructions) and keeps any edit after
// which the oracle still reports the SAME failure (kind + stage). Greedy
// first-improvement with a bounded attempt budget: candidate evaluation
// dominates cost, so the loop restarts its scan after every accepted edit.
#pragma once

#include "fuzz/Oracle.h"
#include "fuzz/ProgramGen.h"

namespace mha::fuzz {

struct ReducerOptions {
  /// Cap on oracle evaluations (each candidate costs one full pipeline
  /// run in kernel mode).
  int maxAttempts = 2000;
};

struct ReductionTrace {
  size_t initialSize = 0;
  size_t finalSize = 0;
  int attempts = 0; // oracle evaluations spent
  int accepted = 0; // edits that kept the failure alive
};

/// Shrinks a kernel-mode reproducer. `failure` is the oracle result the
/// original program produced; the reduced program still produces a failure
/// with the same kind and stage under `oracle`.
Program reduceKernel(const Program &program, const OracleResult &failure,
                     const OracleOptions &oracle,
                     const ReducerOptions &options = {},
                     ReductionTrace *trace = nullptr);

/// Shrinks an IR-mode reproducer (same contract as reduceKernel).
IrProgram reduceIr(const IrProgram &program, const OracleResult &failure,
                   const OracleOptions &oracle,
                   const ReducerOptions &options = {},
                   ReductionTrace *trace = nullptr);

/// Shrinks a calls-mode reproducer (same contract as reduceKernel).
/// Calls-mode ops are pure and terminating, so edits may drop any op the
/// return does not reach, replace call sites with bitwise ops, strip
/// noinline/recursion/array features and zero constants.
CallProgram reduceCalls(const CallProgram &program,
                        const OracleResult &failure,
                        const OracleOptions &oracle,
                        const ReducerOptions &options = {},
                        ReductionTrace *trace = nullptr);

} // namespace mha::fuzz
