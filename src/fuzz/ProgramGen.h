// ProgramGen.h - seeded random program generation for differential fuzzing.
//
// Two program families, both fully determined by a 64-bit seed:
//
//  * Kernel-mode `Program`: a randomized affine kernel (1..3-deep loop
//    nest, several store statements, FP expression trees over array loads
//    with integer index subexpressions — division/remainder, wrap-around
//    arithmetic, boundary constants). Convertible to a flow::KernelSpec so
//    the differential oracle can push it through every pipeline stage.
//    This generalizes the RandomKernel generator that used to live in
//    tests/property_test.cpp (fixed 2-deep nest, single statement, four
//    expression shapes).
//
//  * IR-mode `IrProgram`: a straight-line MiniLLVM integer function over
//    narrow and wide integer widths (i8/i16/i32/i64) exercising exactly
//    the operations an affine kernel never reaches: shifts, unsigned
//    division/remainder, bitwise ops, width casts, selects — with
//    boundary inputs like INT64_MIN. Evaluated against a host reference
//    with LLVM semantics (wrap-around, trapping sdiv overflow and
//    out-of-range shifts).
//
//  * Calls-mode `CallProgram`: a multi-function i64 module exercising the
//    call-legalization passes (rec2iter, inlining, call-site
//    privatization): a DAG of straight-line helpers (some `noinline`), an
//    optional self-recursive template (factorial/sum/fib, argument masked
//    so every evaluation terminates trap-free within a small bounded
//    depth), an optional local-array helper (alloca + stores/loads), and
//    a top @fuzz_calls combining them. Scalar i64 values only cross call
//    boundaries — pointers stay function-local — so pointer type
//    recovery stays a per-function problem.
#pragma once

#include "flow/Kernels.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mha::fuzz {

struct GenOptions {
  int maxLoopDepth = 3; // kernel mode: nest depth drawn from [1, max]
  int maxStmts = 3;     // kernel mode: innermost store statements [1, max]
  int maxExprDepth = 3; // kernel mode: FP/integer expression tree depth
  int maxIrInsts = 24;  // ir mode: instruction count drawn from [4, max]
  int irArgSets = 3;    // ir mode: input tuples evaluated per program
  int maxCallHelpers = 3; // calls mode: straight-line helpers [1, max]
  int maxCallOps = 12;    // calls mode: ops per function body [3, max]
  int callArgSets = 3;    // calls mode: input tuples per program
};

/// Integer expression over loop induction variables. Two's-complement
/// i64 wrap-around semantics; DivC/RemC divisors are constants outside
/// {-1, 0, 1} so no evaluation can trap.
struct IExpr {
  enum class Kind { IV, Const, Add, Sub, Mul, DivC, RemC };
  Kind kind = Kind::Const;
  int iv = 0;      // IV: loop level
  int64_t cst = 0; // Const: value; DivC/RemC: the divisor
  int lhs = -1, rhs = -1; // children (indices into Program::ipool)
};

/// f64 expression over array loads, constants and integer subexpressions.
struct FExpr {
  enum class Kind {
    LoadA,   // A[sum rowCoef[l]*iv_l + rowCst][sum colCoef[l]*iv_l + colCst]
    LoadOut, // Out[iv0]...[ivD-1] (the element this statement overwrites)
    ConstF,
    FromInt, // sitofp(ipool[iexpr])
    Add,
    Sub,
    Mul,
    Div,
    Sqrt, // unary (lhs only)
    Fabs, // unary (lhs only)
  };
  Kind kind = Kind::ConstF;
  double cst = 0;
  int lhs = -1, rhs = -1; // children (indices into Program::fpool)
  int iexpr = -1;         // FromInt: root index into Program::ipool
  std::vector<int64_t> rowCoef, colCoef; // LoadA subscript coefficients
  int64_t rowCst = 0, colCst = 0;
};

struct LoopSpec {
  int64_t lb = 0, ub = 4, step = 1;
};

/// One innermost-body statement: Out[iv0]...[ivD-1] = fpool[root].
struct Stmt {
  int root = -1;
};

/// A kernel-mode program. Plain data so the reducer can copy and edit it;
/// shapes are derived (call finalizeShapes after any structural edit).
struct Program {
  uint64_t seed = 0;
  std::vector<LoopSpec> loops;
  std::vector<FExpr> fpool;
  std::vector<IExpr> ipool;
  std::vector<Stmt> stmts;
  int64_t aRows = 1, aCols = 1; // derived: shape of the read-only input A

  size_t numStmts() const { return stmts.size(); }
  /// Reachable expression nodes + statements: the "statement count" of the
  /// reproducer (every node becomes one IR statement after lowering).
  size_t size() const;
  /// Deterministic one-line structural rendering (tests compare these).
  std::string describe() const;
  /// Recomputes aRows/aCols so every LoadA subscript stays in range.
  void finalizeShapes();
  /// Builds the flow::KernelSpec (module builder + host reference).
  flow::KernelSpec toKernelSpec() const;
  /// Host-reference evaluation into `buffers` ({A, Out}, pre-seeded).
  void evalReference(flow::Buffers &buffers) const;
};

/// One SSA instruction of an IR-mode program. Operand indices address the
/// program's value space: [0, numArgs) the i64 arguments, then the
/// constants, then one value per instruction.
struct IrInst {
  enum class Op {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    Trunc, // width-changing unary casts (a only)
    ZExt,
    SExt,
    ICmp,   // slt; result width 1
    Select, // a = i1 cond, b/c same-width alternatives
  };
  Op op = Op::Add;
  unsigned width = 64; // result width
  int a = -1, b = -1, c = -1;
};

struct IrProgram {
  uint64_t seed = 0;
  unsigned numArgs = 3; // all i64
  std::vector<std::pair<int64_t, unsigned>> consts; // (canonical value, width)
  std::vector<IrInst> insts;
  int ret = -1; // value index returned
  std::vector<std::vector<int64_t>> argSets; // input tuples to evaluate

  unsigned numValues() const {
    return numArgs + static_cast<unsigned>(consts.size() + insts.size());
  }
  unsigned widthOf(int value) const;
  size_t size() const { return insts.size(); }
  std::string describe() const;
  /// Renders the program as a parseable .lir module defining @fuzz_ir.
  std::string lir() const;
};

/// Host-reference outcome for one IR-mode argument tuple.
struct IrEval {
  bool trapped = false;    // division by zero/overflow, shift out of range
  std::string trapReason;
  int64_t value = 0;       // canonical form (meaningful when !trapped)
};

/// Evaluates `program` on `args` with LLVM semantics (the semantics the
/// fixed interpreter implements: canonical sign-extended values,
/// wrap-around arithmetic, trapping sdiv/srem overflow and shifts >=
/// width).
IrEval evalIrReference(const IrProgram &program,
                       const std::vector<int64_t> &args);

/// One straight-line operation in a calls-mode function body. Operand
/// indices address the enclosing function's value space: [0, numArgs)
/// the i64 arguments, then the constants, then one value per op. All
/// kinds are trap-free (wrap-around arithmetic, literal in-range shift
/// amounts), so calls-mode programs never need trap agreement.
struct CallOp {
  enum class Kind { Add, Sub, Mul, And, Or, Xor, ShlC, Call };
  Kind kind = Kind::Add;
  int a = -1, b = -1; // value operands (Call: the actual arguments)
  int callee = -1;    // Call: index into the program's function table
  unsigned amount = 0; // ShlC: literal shift amount in [0, 63]
};

/// A straight-line i64 function body (the helpers and the top share the
/// shape; only numArgs differs).
struct CallFn {
  bool noinline = false;
  std::vector<int64_t> consts;
  std::vector<CallOp> ops;
  int ret = 0; // value index returned
};

/// The self-recursive template baked into a calls-mode program. Every
/// variant masks its argument (`and n, 15`) and bottoms out at n <= 1, so
/// evaluation terminates within ~16 frames on any int64 input.
enum class RecKind { Factorial, Sum, Fib };

/// A calls-mode program. The function table the top's Call ops index is:
/// helpers[0..H), then the array helper (if any), then the recursive
/// function (if any). Helper i may only call helpers j < i (a DAG); the
/// recursive function only calls itself; the array helper calls nothing.
struct CallProgram {
  uint64_t seed = 0;
  unsigned numArgs = 3; // top arguments, all i64
  std::vector<CallFn> helpers; // 2-argument straight-line helpers
  bool hasArrayHelper = false;
  int64_t arrCoef[8] = {0}, arrAdd[8] = {0}; // array fill parameters
  bool hasRecursion = false;
  RecKind recKind = RecKind::Factorial;
  int64_t recBase = 1; // value returned at the n <= 1 base case
  CallFn top;          // numArgs-argument body; Call may target anything
  std::vector<std::vector<int64_t>> argSets;

  /// Function-table size (helpers + array helper + recursive function).
  int numFunctions() const {
    return static_cast<int>(helpers.size()) + (hasArrayHelper ? 1 : 0) +
           (hasRecursion ? 1 : 0);
  }
  /// Index of the array helper / recursive function in the table.
  int arrayIndex() const {
    return hasArrayHelper ? static_cast<int>(helpers.size()) : -1;
  }
  int recIndex() const {
    return hasRecursion
               ? static_cast<int>(helpers.size()) + (hasArrayHelper ? 1 : 0)
               : -1;
  }
  /// Total ops across every function (the reducer's size measure), plus
  /// one per special function.
  size_t size() const;
  std::string describe() const;
  /// Renders the program as a parseable multi-function .lir module whose
  /// top is @fuzz_calls.
  std::string lir() const;
};

/// Evaluates `program`'s top on `args` (wrap-around i64 semantics; never
/// traps by construction).
int64_t evalCallsReference(const CallProgram &program,
                           const std::vector<int64_t> &args);

/// Deterministic generator: the same seed always yields the same program,
/// on every platform (SplitMix64, no std::uniform_int_distribution).
class ProgramGen {
public:
  explicit ProgramGen(uint64_t seed, GenOptions options = {});

  /// Generates the kernel-mode program for this generator's seed.
  Program genKernel();
  /// Generates the IR-mode program for this generator's seed.
  IrProgram genIr();
  /// Generates the calls-mode program for this generator's seed.
  CallProgram genCalls();

private:
  uint64_t seed_;
  GenOptions options_;
};

} // namespace mha::fuzz
