// Oracle.cpp - staged differential checking.
//
// The kernel-mode oracle deliberately re-implements the two flow drivers'
// stage sequence instead of calling runAdaptorFlow/runHlsCppFlow: the flow
// drivers only retain the final module, while the oracle must co-simulate
// every intermediate stage to attribute a divergence to the stage that
// introduced it (lowering vs adaptor vs C++ round-trip).
#include "fuzz/Oracle.h"

#include "adaptor/Adaptor.h"
#include "flow/StageCache.h"
#include "hlscpp/Emitter.h"
#include "hlscpp/Frontend.h"
#include "interp/Interp.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "lir/PassManager.h"
#include "lir/Verifier.h"
#include "lir/transforms/Transforms.h"
#include "lowering/Lowering.h"
#include "mir/Pass.h"
#include "mir/Verifier.h"
#include "mir/transforms/MirTransforms.h"
#include "support/StringUtils.h"
#include "vhls/Vhls.h"

#include <cmath>

namespace mha::fuzz {

const char *failureKindName(FailureKind kind) {
  switch (kind) {
  case FailureKind::None:
    return "none";
  case FailureKind::FlowError:
    return "flow-error";
  case FailureKind::Verifier:
    return "verifier";
  case FailureKind::InterpError:
    return "interp-error";
  case FailureKind::Mismatch:
    return "mismatch";
  }
  return "?";
}

namespace {

OracleResult fail(FailureKind kind, std::string stage, std::string detail) {
  OracleResult r;
  r.ok = false;
  r.kind = kind;
  r.stage = std::move(stage);
  r.detail = std::move(detail);
  return r;
}

/// Interprets `module`'s top function on freshly seeded buffers and
/// compares every output element bit-exactly against `host`. Returns a
/// failure result, or nullopt when the stage agrees.
std::optional<OracleResult> compareStage(lir::Module &module,
                                         const flow::KernelSpec &spec,
                                         const flow::Buffers &host,
                                         const std::string &stage,
                                         bool descriptorConvention) {
  lir::Function *fn = module.getFunction(spec.name);
  if (!fn)
    return fail(FailureKind::FlowError, stage,
                "top function '" + spec.name + "' missing");
  flow::Buffers device = flow::makeBuffers(spec);
  flow::seedBuffers(device);
  std::vector<void *> pointers;
  for (auto &buffer : device)
    pointers.push_back(buffer.data());
  DiagnosticEngine diags;
  interp::Interpreter interpreter(module);
  auto run = interpreter.run(fn,
                             descriptorConvention
                                 ? interp::descriptorArgs(pointers,
                                                          spec.bufferShapes)
                                 : interp::pointerArgs(pointers),
                             diags);
  if (!run)
    return fail(FailureKind::InterpError, stage, diags.str());
  for (unsigned out : spec.outputs) {
    for (size_t i = 0; i < device[out].size(); ++i) {
      double d = device[out][i], h = host[out][i];
      if (d != h && !(std::isnan(d) && std::isnan(h)))
        return fail(FailureKind::Mismatch, stage,
                    strfmt("buffer %u element %zu: device=%.17g host=%.17g",
                           out, i, d, h));
    }
  }
  return std::nullopt;
}

} // namespace

OracleResult checkKernel(const Program &program,
                         const OracleOptions &options) {
  flow::KernelSpec spec = program.toKernelSpec();

  // Host reference outputs (the ground truth every stage must match).
  flow::Buffers host = flow::makeBuffers(spec);
  flow::seedBuffers(host);
  spec.reference(host);

  DiagnosticEngine diags;
  mir::MContext mctx;
  mir::OwnedModule module = spec.build(mctx, options.config);
  if (!mir::verifyModule(module.get(), diags))
    return fail(FailureKind::Verifier, "mlir-build", diags.str());

  {
    mir::MPassManager pm;
    pm.add(mir::createCanonicalizePass());
    if (!pm.run(module.get(), diags))
      return fail(FailureKind::FlowError, "mlir-canonicalize", diags.str());
    if (!mir::verifyModule(module.get(), diags))
      return fail(FailureKind::Verifier, "mlir-canonicalize", diags.str());
  }

  // Leg 1: HLS-C++ baseline (consumes the structured module, so it runs
  // before the in-place affine->scf conversion).
  if (options.runHlsCppLeg) {
    std::string cpp = hlscpp::emitHlsCpp(module.get(), diags);
    if (cpp.empty())
      return fail(FailureKind::FlowError, "emit-hls-cpp", diags.str());
    lir::LContext cctx;
    std::unique_ptr<lir::Module> cmod = hlscpp::parseHlsCpp(cpp, cctx, diags);
    if (!cmod)
      return fail(FailureKind::FlowError, "hls-frontend", diags.str());
    if (auto failure =
            compareStage(*cmod, spec, host, "hls-frontend", false))
      return *failure;
  }

  // Leg 2: structured -> scf -> LIR (descriptor convention).
  {
    mir::MPassManager pm;
    pm.add(mir::createAffineToScfPass());
    pm.add(mir::createCanonicalizePass());
    if (!pm.run(module.get(), diags))
      return fail(FailureKind::FlowError, "affine-to-scf", diags.str());
    if (!mir::verifyModule(module.get(), diags))
      return fail(FailureKind::Verifier, "affine-to-scf", diags.str());
  }
  lir::LContext lctx;
  std::unique_ptr<lir::Module> lowered =
      lowering::lowerToLIR(module.get(), lctx, lowering::LoweringOptions{},
                           diags);
  if (!lowered)
    return fail(FailureKind::FlowError, "lower-to-lir", diags.str());
  if (!lir::verifyModule(*lowered, diags))
    return fail(FailureKind::Verifier, "lower-to-lir", diags.str());
  if (auto failure = compareStage(*lowered, spec, host, "lowered-lir", true))
    return *failure;

  // Leg 3: HLS adaptor (pointer convention), in place on the lowered
  // module — exactly as runAdaptorFlow does.
  {
    lir::PassManager pm(/*verifyEach=*/true);
    adaptor::buildAdaptorPipeline(pm, adaptor::AdaptorOptions{});
    if (!pm.run(*lowered, diags))
      return fail(FailureKind::Verifier, "adaptor", diags.str());
  }
  if (options.mutateAdaptorModule)
    options.mutateAdaptorModule(*lowered);
  if (auto failure = compareStage(*lowered, spec, host, "adaptor", false))
    return *failure;

  // Leg 4: the virtual HLS backend must accept what the adaptor produced.
  // This leg is a pure function of the module + options, so it can share
  // the flow stage cache (generated programs often collapse to identical
  // post-adaptor IR).
  if (options.runVhls) {
    vhls::SynthesisOptions synthOpts;
    synthOpts.topFunction = spec.name;
    uint64_t synthKey = 0;
    vhls::SynthesisReport report;
    bool cached = false;
    if (options.useStageCache) {
      synthKey =
          flow::StageCache::synthKey(lir::printModule(*lowered), synthOpts);
      cached = flow::StageCache::global().lookupSynth(synthKey, report);
    }
    if (!cached) {
      report = vhls::synthesize(*lowered, synthOpts, diags);
      if (options.useStageCache && report.accepted)
        flow::StageCache::global().storeSynth(synthKey, report);
    }
    if (!report.accepted)
      return fail(FailureKind::FlowError, "vhls",
                  "synthesis rejected: " + diags.str());
  }
  return OracleResult{};
}

OracleResult checkIr(const IrProgram &program, const OracleOptions &options) {
  std::string text = program.lir();
  DiagnosticEngine diags;
  lir::LContext ctx;
  std::unique_ptr<lir::Module> module = lir::parseModule(text, ctx, diags);
  if (!module)
    return fail(FailureKind::FlowError, "parse",
                diags.str() + "\n" + text);
  if (!lir::verifyModule(*module, diags))
    return fail(FailureKind::Verifier, "parse", diags.str());
  lir::Function *fn = module->getFunction("fuzz_ir");
  if (!fn)
    return fail(FailureKind::FlowError, "parse", "@fuzz_ir missing");

  // Stage 1: interpreter vs host reference, including trap agreement.
  std::vector<IrEval> refs;
  bool anyTrap = false;
  for (size_t s = 0; s < program.argSets.size(); ++s) {
    const std::vector<int64_t> &args = program.argSets[s];
    IrEval ref = evalIrReference(program, args);
    refs.push_back(ref);
    anyTrap |= ref.trapped;
    std::vector<interp::RtValue> rtArgs;
    for (int64_t a : args)
      rtArgs.push_back(interp::RtValue::ofInt(a));
    DiagnosticEngine runDiags;
    interp::Interpreter interpreter(*module);
    auto run = interpreter.run(fn, rtArgs, runDiags);
    if (ref.trapped) {
      if (run)
        return fail(FailureKind::Mismatch, "interp",
                    strfmt("argset %zu: expected trap (%s), got %lld", s,
                           ref.trapReason.c_str(),
                           static_cast<long long>(run->i)));
      continue;
    }
    if (!run)
      return fail(FailureKind::InterpError, "interp",
                  strfmt("argset %zu: ", s) + runDiags.str());
    if (run->i != ref.value)
      return fail(FailureKind::Mismatch, "interp",
                  strfmt("argset %zu: interp=%lld reference=%lld", s,
                         static_cast<long long>(run->i),
                         static_cast<long long>(ref.value)));
  }

  // Stage 2: the O2-lite pipeline must preserve behavior on UB-free
  // programs (a trapping program may legitimately lose its trap to DCE).
  if (options.runTransforms && !anyTrap) {
    lir::PassManager pm(/*verifyEach=*/true);
    pm.add(lir::createMem2RegPass());
    pm.add(lir::createInstCombinePass());
    pm.add(lir::createCSEPass());
    pm.add(lir::createDCEPass());
    pm.add(lir::createSimplifyCFGPass());
    pm.add(lir::createLICMPass());
    pm.add(lir::createDCEPass());
    if (!pm.run(*module, diags))
      return fail(FailureKind::Verifier, "o2-lite", diags.str());
    for (size_t s = 0; s < program.argSets.size(); ++s) {
      std::vector<interp::RtValue> rtArgs;
      for (int64_t a : program.argSets[s])
        rtArgs.push_back(interp::RtValue::ofInt(a));
      DiagnosticEngine runDiags;
      interp::Interpreter interpreter(*module);
      auto run = interpreter.run(fn, rtArgs, runDiags);
      if (!run)
        return fail(FailureKind::InterpError, "o2-lite",
                    strfmt("argset %zu: ", s) + runDiags.str());
      if (run->i != refs[s].value)
        return fail(FailureKind::Mismatch, "o2-lite",
                    strfmt("argset %zu: transformed=%lld reference=%lld", s,
                           static_cast<long long>(run->i),
                           static_cast<long long>(refs[s].value)));
    }
  }
  return OracleResult{};
}

OracleResult checkCalls(const CallProgram &program,
                        const OracleOptions &options) {
  std::string text = program.lir();
  DiagnosticEngine diags;
  lir::LContext ctx;
  std::unique_ptr<lir::Module> module = lir::parseModule(text, ctx, diags);
  if (!module)
    return fail(FailureKind::FlowError, "parse", diags.str() + "\n" + text);
  if (!lir::verifyModule(*module, diags))
    return fail(FailureKind::Verifier, "parse", diags.str());
  lir::Function *fn = module->getFunction("fuzz_calls");
  if (!fn)
    return fail(FailureKind::FlowError, "parse", "@fuzz_calls missing");

  // Stage 1: interpret the multi-function module (calls executed by the
  // interpreter's call stack) against the host reference. Calls-mode
  // programs are trap-free by construction, so every set must agree.
  auto runSets =
      [&](const std::string &stage) -> std::optional<OracleResult> {
    for (size_t s = 0; s < program.argSets.size(); ++s) {
      int64_t ref = evalCallsReference(program, program.argSets[s]);
      std::vector<interp::RtValue> rtArgs;
      for (int64_t a : program.argSets[s])
        rtArgs.push_back(interp::RtValue::ofInt(a));
      DiagnosticEngine runDiags;
      interp::Interpreter interpreter(*module);
      auto run = interpreter.run(fn, rtArgs, runDiags);
      if (!run)
        return fail(FailureKind::InterpError, stage,
                    strfmt("argset %zu: ", s) + runDiags.str());
      if (run->i != ref)
        return fail(FailureKind::Mismatch, stage,
                    strfmt("argset %zu: interp=%lld reference=%lld", s,
                           static_cast<long long>(run->i),
                           static_cast<long long>(ref)));
    }
    return std::nullopt;
  };
  if (auto failure = runSets("interp"))
    return *failure;

  // Stage 2: the call-legalization pipeline (exactly the passes the
  // adaptor flow front-loads) must preserve behavior.
  {
    lir::PassManager pm(/*verifyEach=*/true);
    pm.add(lir::createRec2IterPass(64));
    lir::InlinerOptions io;
    io.preservedFunction = "fuzz_calls";
    pm.add(lir::createInlinerPass(io));
    pm.add(lir::createCallSitePrivatizationPass());
    pm.add(lir::createDCEPass());
    pm.add(lir::createSimplifyCFGPass());
    pm.add(lir::createMem2RegPass());
    pm.add(lir::createInstCombinePass());
    pm.add(lir::createCSEPass());
    pm.add(lir::createDCEPass());
    if (!pm.run(*module, diags))
      return fail(FailureKind::Verifier, "call-legalize", diags.str());
  }
  if (options.mutateAdaptorModule)
    options.mutateAdaptorModule(*module);
  fn = module->getFunction("fuzz_calls");
  if (!fn)
    return fail(FailureKind::FlowError, "call-legalize",
                "@fuzz_calls erased by legalization");
  if (auto failure = runSets("call-legalize"))
    return *failure;

  // Stage 3: the virtual HLS backend must accept the legalized module
  // (residual noinline helpers synthesize bottom-up).
  if (options.runVhls) {
    vhls::SynthesisOptions synthOpts;
    synthOpts.topFunction = "fuzz_calls";
    uint64_t synthKey = 0;
    vhls::SynthesisReport report;
    bool cached = false;
    if (options.useStageCache) {
      synthKey =
          flow::StageCache::synthKey(lir::printModule(*module), synthOpts);
      cached = flow::StageCache::global().lookupSynth(synthKey, report);
    }
    if (!cached) {
      report = vhls::synthesize(*module, synthOpts, diags);
      if (options.useStageCache && report.accepted)
        flow::StageCache::global().storeSynth(synthKey, report);
    }
    if (!report.accepted)
      return fail(FailureKind::FlowError, "vhls",
                  "synthesis rejected: " + diags.str());
  }
  return OracleResult{};
}

} // namespace mha::fuzz
