// Oracle.h - differential oracle over the compilation pipeline.
//
// A generated program is "interesting" when any pipeline stage disagrees
// with the host reference (or fails to compile at all). The oracle runs
// every executable stage pair and reports the FIRST diverging stage:
//
//   kernel mode:  structured MLIR -> {HLS-C++ frontend IR, lowered LIR,
//                 post-adaptor HLS IR} each co-simulated bit-exactly,
//                 plus virtual-HLS acceptance;
//   ir mode:      .lir print/parse round-trip -> interpreter vs host
//                 reference per argument set (including trap agreement),
//                 then the O2-lite transform pipeline re-checked on
//                 UB-free programs.
#pragma once

#include "flow/Kernels.h"
#include "fuzz/ProgramGen.h"

#include <functional>
#include <string>

namespace mha::lir {
class Module;
}

namespace mha::fuzz {

enum class FailureKind {
  None,
  FlowError,   // a stage failed to produce output (build/parse/lowering)
  Verifier,    // a stage produced IR its verifier rejects
  InterpError, // the interpreter diagnosed an error executing a stage
  Mismatch,    // a stage executed but disagrees with the host reference
};

const char *failureKindName(FailureKind kind);

struct OracleResult {
  bool ok = true;
  FailureKind kind = FailureKind::None;
  std::string stage;  // first diverging stage, e.g. "adaptor", "o2-lite"
  std::string detail; // diagnostics or the first mismatching element

  bool failed() const { return !ok; }
  /// Two results describe the same bug class (the reducer's notion of
  /// "still interesting": same kind at the same stage).
  bool sameFailure(const OracleResult &other) const {
    return ok == other.ok && kind == other.kind && stage == other.stage;
  }
};

struct OracleOptions {
  /// Directive configuration applied to kernel-mode programs.
  flow::KernelConfig config;
  /// Require the virtual HLS backend to accept the post-adaptor IR.
  bool runVhls = true;
  /// Run the MLIR -> HLS-C++ -> frontend leg (kernel mode).
  bool runHlsCppLeg = true;
  /// Run the O2-lite transform differential (ir mode, UB-free programs).
  bool runTransforms = true;
  /// Share the process-global flow StageCache for the synthesis leg: two
  /// programs whose post-adaptor IR prints identically skip the second
  /// synthesis. Only the pure backend leg is cached — the differential
  /// stages must always execute to attribute divergences.
  bool useStageCache = false;
  /// Test hook: mutate the post-adaptor module before co-simulation (the
  /// oracle/reducer tests plant a miscompile here and must catch it).
  std::function<void(lir::Module &)> mutateAdaptorModule;
};

/// Differentially checks a kernel-mode program across all pipeline stages.
OracleResult checkKernel(const Program &program,
                         const OracleOptions &options = {});

/// Differentially checks an IR-mode program (round-trip, interpretation,
/// transforms) against evalIrReference on every argument set.
OracleResult checkIr(const IrProgram &program,
                     const OracleOptions &options = {});

/// Differentially checks a calls-mode program: parses the multi-function
/// module, interprets it against evalCallsReference on every argument
/// set, runs the call-legalization pipeline (rec2iter, inlining,
/// call-site privatization + cleanups) and re-checks, then (with
/// runVhls) requires the virtual HLS backend to accept the legalized
/// module.
OracleResult checkCalls(const CallProgram &program,
                        const OracleOptions &options = {});

} // namespace mha::fuzz
