// Fuzz.h - differential fuzzing campaigns over the compilation pipeline.
//
// A campaign generates `budget` seeded programs per enabled mode, runs
// each through the differential Oracle (optionally across a shared
// ThreadPool), reduces every failure with the Reducer, and renders a
// machine-readable report (schema "mha.fuzz.v1"). Each failure embeds a
// self-contained reproducer document (schema "mha.fuzz.repro.v1") that
// replayRepro() can re-run and re-reduce later: programs are fully
// determined by (mode, seed, generator options), so the reproducer is a
// few integers, not a serialized AST.
#pragma once

#include "fuzz/Oracle.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/Reducer.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mha::fuzz {

struct FuzzOptions {
  uint64_t seed = 1;
  int budget = 100; // programs per enabled mode
  unsigned jobs = 1;
  /// Both = kernel + ir (the historical default); All adds calls mode.
  enum class Mode { Kernel, Ir, Calls, Both, All };
  Mode mode = Mode::Both;
  bool reduce = true;
  GenOptions gen;
  OracleOptions oracle;
  ReducerOptions reducer;
  /// When set, write one "<mode>-<seed>.repro.json" (and ".lir" when the
  /// reproducer has printable IR) per failure into this directory.
  std::string artifactsDir;
};

const char *fuzzModeName(FuzzOptions::Mode mode);

struct FuzzFailure {
  std::string mode; // "kernel" | "ir" | "calls"
  uint64_t programSeed = 0;
  OracleResult result;
  size_t originalSize = 0;
  size_t reducedSize = 0;
  int reduceAttempts = 0;
  std::string reducedDescription; // Program::describe / IrProgram::lir
  std::string reducedLir;         // minimized parseable .lir (may be empty
                                  // when the failing stage precedes LIR)
  std::string artifactJsonPath;   // written reproducer files (if any)
  std::string artifactLirPath;

  /// The standalone reproducer document (schema "mha.fuzz.repro.v1").
  std::string reproJson(const GenOptions &gen) const;
};

struct FuzzReport {
  uint64_t seed = 0;
  int budget = 0;
  std::string mode;
  unsigned jobs = 1;
  uint64_t kernelPrograms = 0;
  uint64_t irPrograms = 0;
  uint64_t callsPrograms = 0;
  double elapsedMs = 0;
  std::vector<FuzzFailure> failures;

  bool clean() const { return failures.empty(); }
  /// Full campaign report (schema "mha.fuzz.v1", valid JSON).
  std::string json() const;
};

/// The deterministic per-program seed for campaign position `index`.
uint64_t deriveProgramSeed(uint64_t campaignSeed, uint64_t index);

/// Runs a fuzzing campaign.
FuzzReport runFuzz(const FuzzOptions &options);

/// Re-runs one reproducer document ("mha.fuzz.repro.v1"): regenerates the
/// program, re-checks it, and re-reduces when it still fails. Returns
/// nullopt (with `error` set) when the document is malformed or the
/// program no longer fails; the latter case — the expected outcome after
/// a fix — additionally sets *noLongerFails when provided, so callers can
/// treat it as success rather than a replay error.
std::optional<FuzzFailure> replayRepro(const std::string &reproJson,
                                       const FuzzOptions &options,
                                       std::string &error,
                                       bool *noLongerFails = nullptr);

} // namespace mha::fuzz
