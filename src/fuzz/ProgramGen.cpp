// ProgramGen.cpp - seeded random kernel/IR generation.
//
// Both generators are driven by splitmix64 so a seed reproduces the exact
// same program on every platform (std::uniform_int_distribution is
// implementation-defined and would break cross-machine replay of fuzzer
// reports).
//
// Generation invariants the oracle relies on:
//  * Kernel mode never builds an integer operation whose operands are both
//    constants: the MLIR canonicalizer folds const⊗const with host int64
//    arithmetic, which is UB for the boundary constants we want to emit.
//    Every integer binop's left subtree contains an induction variable.
//  * Kernel-mode divisions/remainders use constant divisors outside
//    {-1, 0, 1}, so no evaluation can trap anywhere in the pipeline.
//  * Kernel-mode constants avoid exact INT64_MIN: the HLS-C++ emitter
//    prints it as "-9223372036854775808" and the strict frontend lexer
//    tokenizes the minus separately, leaving an out-of-range literal.
//  * IR mode keeps i1 values confined to select conditions; arithmetic and
//    casts operate on i8/i16/i32/i64.
#include "fuzz/ProgramGen.h"

#include "mir/Builder.h"
#include "mir/MContext.h"
#include "mir/transforms/MirTransforms.h"
#include "support/Json.h"
#include "support/IntMath.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iterator>

namespace mha::fuzz {

namespace {

/// Deterministic, platform-independent PRNG (same idiom as the DSE
/// strategies' sampler).
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t below(uint64_t bound) {
    uint64_t limit = bound * (UINT64_MAX / bound);
    uint64_t value;
    do {
      value = next();
    } while (value >= limit);
    return value % bound;
  }

  int64_t range(int64_t lo, int64_t hi) { // inclusive
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

private:
  uint64_t state_;
};

// Wrap-around helpers over canonical values.
int64_t wrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
int64_t wrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
int64_t wrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

/// Integer constants safe through every pipeline stage (see the INT64_MIN
/// note in the file header).
const int64_t kIntConstPool[] = {0,    1,     -1,       2,
                                 3,    7,     -13,      255,
                                 4096, -4095, INT64_MAX, INT64_MIN + 1};

/// Divisors for DivC/RemC: never -1, 0 or 1, so sdiv/srem cannot trap.
const int64_t kDivisorPool[] = {-7, -5, -3, -2, 2, 3, 5, 7, 8};

const double kFloatConstPool[] = {0.0, 1.0,  -1.0, 0.5,  1.5,
                                  2.0, -2.5, 4.0,  0.25, -0.75};

} // namespace

// --- Program (kernel mode) ---

namespace {

void collectReachable(const Program &p, std::vector<bool> &fSeen,
                      std::vector<bool> &iSeen) {
  fSeen.assign(p.fpool.size(), false);
  iSeen.assign(p.ipool.size(), false);
  std::vector<int> fStack;
  for (const Stmt &s : p.stmts)
    if (s.root >= 0)
      fStack.push_back(s.root);
  std::vector<int> iStack;
  while (!fStack.empty()) {
    int idx = fStack.back();
    fStack.pop_back();
    if (fSeen[static_cast<size_t>(idx)])
      continue;
    fSeen[static_cast<size_t>(idx)] = true;
    const FExpr &e = p.fpool[static_cast<size_t>(idx)];
    if (e.lhs >= 0)
      fStack.push_back(e.lhs);
    if (e.rhs >= 0)
      fStack.push_back(e.rhs);
    if (e.iexpr >= 0)
      iStack.push_back(e.iexpr);
  }
  while (!iStack.empty()) {
    int idx = iStack.back();
    iStack.pop_back();
    if (iSeen[static_cast<size_t>(idx)])
      continue;
    iSeen[static_cast<size_t>(idx)] = true;
    const IExpr &e = p.ipool[static_cast<size_t>(idx)];
    if (e.lhs >= 0)
      iStack.push_back(e.lhs);
    if (e.rhs >= 0)
      iStack.push_back(e.rhs);
  }
}

std::string describeI(const Program &p, int idx) {
  const IExpr &e = p.ipool[static_cast<size_t>(idx)];
  switch (e.kind) {
  case IExpr::Kind::IV:
    return strfmt("i%d", e.iv);
  case IExpr::Kind::Const:
    return strfmt("%lld", static_cast<long long>(e.cst));
  case IExpr::Kind::Add:
    return "(" + describeI(p, e.lhs) + "+" + describeI(p, e.rhs) + ")";
  case IExpr::Kind::Sub:
    return "(" + describeI(p, e.lhs) + "-" + describeI(p, e.rhs) + ")";
  case IExpr::Kind::Mul:
    return "(" + describeI(p, e.lhs) + "*" + describeI(p, e.rhs) + ")";
  case IExpr::Kind::DivC:
    return "(" + describeI(p, e.lhs) +
           strfmt("/%lld)", static_cast<long long>(e.cst));
  case IExpr::Kind::RemC:
    return "(" + describeI(p, e.lhs) +
           strfmt("%%%lld)", static_cast<long long>(e.cst));
  }
  return "?";
}

std::string describeF(const Program &p, int idx) {
  const FExpr &e = p.fpool[static_cast<size_t>(idx)];
  switch (e.kind) {
  case FExpr::Kind::LoadA: {
    std::string row, col;
    for (size_t l = 0; l < e.rowCoef.size(); ++l) {
      row += strfmt("%lld*i%zu+", static_cast<long long>(e.rowCoef[l]), l);
      col += strfmt("%lld*i%zu+", static_cast<long long>(e.colCoef[l]), l);
    }
    row += strfmt("%lld", static_cast<long long>(e.rowCst));
    col += strfmt("%lld", static_cast<long long>(e.colCst));
    return "A[" + row + "][" + col + "]";
  }
  case FExpr::Kind::LoadOut:
    return "Out[.]";
  case FExpr::Kind::ConstF:
    // Locale-independent (%g prints ',' decimals under e.g. de_DE).
    return json::shortestDouble(e.cst);
  case FExpr::Kind::FromInt:
    return "int2fp(" + describeI(p, e.iexpr) + ")";
  case FExpr::Kind::Add:
    return "(" + describeF(p, e.lhs) + "+" + describeF(p, e.rhs) + ")";
  case FExpr::Kind::Sub:
    return "(" + describeF(p, e.lhs) + "-" + describeF(p, e.rhs) + ")";
  case FExpr::Kind::Mul:
    return "(" + describeF(p, e.lhs) + "*" + describeF(p, e.rhs) + ")";
  case FExpr::Kind::Div:
    return "(" + describeF(p, e.lhs) + "/" + describeF(p, e.rhs) + ")";
  case FExpr::Kind::Sqrt:
    return "sqrt(" + describeF(p, e.lhs) + ")";
  case FExpr::Kind::Fabs:
    return "fabs(" + describeF(p, e.lhs) + ")";
  }
  return "?";
}

int64_t evalI(const Program &p, int idx, const std::vector<int64_t> &ivs) {
  const IExpr &e = p.ipool[static_cast<size_t>(idx)];
  switch (e.kind) {
  case IExpr::Kind::IV:
    return ivs[static_cast<size_t>(e.iv)];
  case IExpr::Kind::Const:
    return e.cst;
  case IExpr::Kind::Add:
    return wrapAdd(evalI(p, e.lhs, ivs), evalI(p, e.rhs, ivs));
  case IExpr::Kind::Sub:
    return wrapSub(evalI(p, e.lhs, ivs), evalI(p, e.rhs, ivs));
  case IExpr::Kind::Mul:
    return wrapMul(evalI(p, e.lhs, ivs), evalI(p, e.rhs, ivs));
  case IExpr::Kind::DivC:
    return evalI(p, e.lhs, ivs) / e.cst;
  case IExpr::Kind::RemC:
    return evalI(p, e.lhs, ivs) % e.cst;
  }
  return 0;
}

double evalF(const Program &p, int idx, const std::vector<int64_t> &ivs,
             const std::vector<double> &A, const std::vector<double> &Out,
             int64_t outLinear) {
  const FExpr &e = p.fpool[static_cast<size_t>(idx)];
  switch (e.kind) {
  case FExpr::Kind::LoadA: {
    int64_t row = e.rowCst, col = e.colCst;
    for (size_t l = 0; l < ivs.size(); ++l) {
      row += e.rowCoef[l] * ivs[l];
      col += e.colCoef[l] * ivs[l];
    }
    return A[static_cast<size_t>(row * p.aCols + col)];
  }
  case FExpr::Kind::LoadOut:
    return Out[static_cast<size_t>(outLinear)];
  case FExpr::Kind::ConstF:
    return e.cst;
  case FExpr::Kind::FromInt:
    return static_cast<double>(evalI(p, e.iexpr, ivs));
  case FExpr::Kind::Add:
    return evalF(p, e.lhs, ivs, A, Out, outLinear) +
           evalF(p, e.rhs, ivs, A, Out, outLinear);
  case FExpr::Kind::Sub:
    return evalF(p, e.lhs, ivs, A, Out, outLinear) -
           evalF(p, e.rhs, ivs, A, Out, outLinear);
  case FExpr::Kind::Mul:
    return evalF(p, e.lhs, ivs, A, Out, outLinear) *
           evalF(p, e.rhs, ivs, A, Out, outLinear);
  case FExpr::Kind::Div:
    return evalF(p, e.lhs, ivs, A, Out, outLinear) /
           evalF(p, e.rhs, ivs, A, Out, outLinear);
  case FExpr::Kind::Sqrt:
    return std::sqrt(evalF(p, e.lhs, ivs, A, Out, outLinear));
  case FExpr::Kind::Fabs:
    return std::fabs(evalF(p, e.lhs, ivs, A, Out, outLinear));
  }
  return 0;
}

/// Largest value an induction variable reaches (honors the step).
int64_t maxIv(const LoopSpec &loop) {
  if (loop.ub <= loop.lb)
    return loop.lb;
  return loop.lb + ((loop.ub - 1 - loop.lb) / loop.step) * loop.step;
}

mir::Value *emitI(const Program &p, int idx, mir::OpBuilder &b,
                  const std::vector<mir::Value *> &ivs);

mir::Value *emitF(const Program &p, int idx, mir::OpBuilder &b,
                  mir::FuncOp fn, const std::vector<mir::Value *> &ivs) {
  mir::MContext &ctx = b.context();
  unsigned depth = static_cast<unsigned>(ivs.size());
  const FExpr &e = p.fpool[static_cast<size_t>(idx)];
  switch (e.kind) {
  case FExpr::Kind::LoadA: {
    const mir::AffineExpr *row = ctx.affineConst(e.rowCst);
    const mir::AffineExpr *col = ctx.affineConst(e.colCst);
    for (unsigned l = 0; l < depth; ++l) {
      if (e.rowCoef[l] != 0)
        row = ctx.affineAdd(row, ctx.affineMul(ctx.affineDim(l),
                                               ctx.affineConst(e.rowCoef[l])));
      if (e.colCoef[l] != 0)
        col = ctx.affineAdd(col, ctx.affineMul(ctx.affineDim(l),
                                               ctx.affineConst(e.colCoef[l])));
    }
    mir::AffineMap map(depth, 0, {row, col});
    return b.affineLoad(fn.arg(0), map,
                        std::vector<mir::Value *>(ivs.begin(), ivs.end()));
  }
  case FExpr::Kind::LoadOut:
    return b.affineLoad(fn.arg(1), mir::AffineMap::identity(ctx, depth),
                        std::vector<mir::Value *>(ivs.begin(), ivs.end()));
  case FExpr::Kind::ConstF:
    return b.constantFloat(e.cst, ctx.f64());
  case FExpr::Kind::FromInt:
    return b.sitofp(emitI(p, e.iexpr, b, ivs), ctx.f64());
  case FExpr::Kind::Add:
    return b.binary(mir::ops::AddF, emitF(p, e.lhs, b, fn, ivs),
                    emitF(p, e.rhs, b, fn, ivs));
  case FExpr::Kind::Sub:
    return b.binary(mir::ops::SubF, emitF(p, e.lhs, b, fn, ivs),
                    emitF(p, e.rhs, b, fn, ivs));
  case FExpr::Kind::Mul:
    return b.binary(mir::ops::MulF, emitF(p, e.lhs, b, fn, ivs),
                    emitF(p, e.rhs, b, fn, ivs));
  case FExpr::Kind::Div:
    return b.binary(mir::ops::DivF, emitF(p, e.lhs, b, fn, ivs),
                    emitF(p, e.rhs, b, fn, ivs));
  case FExpr::Kind::Sqrt:
    return b.mathOp(mir::ops::MathSqrt, emitF(p, e.lhs, b, fn, ivs));
  case FExpr::Kind::Fabs:
    return b.mathOp(mir::ops::MathFabs, emitF(p, e.lhs, b, fn, ivs));
  }
  return nullptr;
}

mir::Value *emitI(const Program &p, int idx, mir::OpBuilder &b,
                  const std::vector<mir::Value *> &ivs) {
  mir::MContext &ctx = b.context();
  const IExpr &e = p.ipool[static_cast<size_t>(idx)];
  switch (e.kind) {
  case IExpr::Kind::IV:
    return b.indexCast(ivs[static_cast<size_t>(e.iv)], ctx.i64());
  case IExpr::Kind::Const:
    return b.constantInt(e.cst, ctx.i64());
  case IExpr::Kind::Add:
    return b.binary(mir::ops::AddI, emitI(p, e.lhs, b, ivs),
                    emitI(p, e.rhs, b, ivs));
  case IExpr::Kind::Sub:
    return b.binary(mir::ops::SubI, emitI(p, e.lhs, b, ivs),
                    emitI(p, e.rhs, b, ivs));
  case IExpr::Kind::Mul:
    return b.binary(mir::ops::MulI, emitI(p, e.lhs, b, ivs),
                    emitI(p, e.rhs, b, ivs));
  case IExpr::Kind::DivC:
    return b.binary(mir::ops::DivSI, emitI(p, e.lhs, b, ivs),
                    b.constantInt(e.cst, ctx.i64()));
  case IExpr::Kind::RemC:
    return b.binary(mir::ops::RemSI, emitI(p, e.lhs, b, ivs),
                    b.constantInt(e.cst, ctx.i64()));
  }
  return nullptr;
}

} // namespace

size_t Program::size() const {
  std::vector<bool> fSeen, iSeen;
  collectReachable(*this, fSeen, iSeen);
  size_t n = stmts.size();
  n += static_cast<size_t>(std::count(fSeen.begin(), fSeen.end(), true));
  n += static_cast<size_t>(std::count(iSeen.begin(), iSeen.end(), true));
  return n;
}

std::string Program::describe() const {
  std::string out = "loops[";
  for (size_t l = 0; l < loops.size(); ++l)
    out += strfmt("%s%lld:%lld:%lld", l ? "," : "",
                  static_cast<long long>(loops[l].lb),
                  static_cast<long long>(loops[l].ub),
                  static_cast<long long>(loops[l].step));
  out += "]";
  for (const Stmt &s : stmts)
    out += " Out=" + describeF(*this, s.root);
  return out;
}

void Program::finalizeShapes() {
  std::vector<bool> fSeen, iSeen;
  collectReachable(*this, fSeen, iSeen);
  int64_t maxRow = 0, maxCol = 0;
  for (size_t i = 0; i < fpool.size(); ++i) {
    if (!fSeen[i] || fpool[i].kind != FExpr::Kind::LoadA)
      continue;
    const FExpr &e = fpool[i];
    int64_t row = e.rowCst, col = e.colCst;
    for (size_t l = 0; l < loops.size(); ++l) {
      row += e.rowCoef[l] * maxIv(loops[l]);
      col += e.colCoef[l] * maxIv(loops[l]);
    }
    maxRow = std::max(maxRow, row);
    maxCol = std::max(maxCol, col);
  }
  aRows = maxRow + 1;
  aCols = maxCol + 1;
}

flow::KernelSpec Program::toKernelSpec() const {
  flow::KernelSpec spec;
  spec.name = strfmt("fuzz_%llu", static_cast<unsigned long long>(seed));
  spec.description = describe();
  std::vector<int64_t> outShape;
  for (const LoopSpec &loop : loops)
    outShape.push_back(loop.ub);
  spec.bufferShapes = {{aRows, aCols}, outShape};
  spec.outputs = {1};
  Program copy = *this;
  std::string fnName = spec.name;
  spec.build = [copy, outShape, fnName](mir::MContext &ctx,
                                        const flow::KernelConfig &cfg) {
    mir::OpBuilder b(ctx);
    mir::OwnedModule module = mir::OpBuilder::createModule();
    b.setInsertPoint(module.get().body());
    mir::FuncOp fn = b.createFunc(
        fnName,
        ctx.fnTy({ctx.memrefTy({copy.aRows, copy.aCols}, ctx.f64()),
                  ctx.memrefTy(outShape, ctx.f64())},
                 {}));
    b.setInsertPoint(fn.entryBlock());
    std::vector<mir::Value *> ivs;
    for (size_t l = 0; l < copy.loops.size(); ++l) {
      mir::ForOp loop = b.affineFor(copy.loops[l].lb, copy.loops[l].ub,
                                    copy.loops[l].step);
      if (l + 1 == copy.loops.size() && cfg.applyDirectives &&
          cfg.pipelineII > 0)
        mir::setPipelineDirective(loop, cfg.pipelineII);
      b.setInsertPointToLoopBody(loop);
      ivs.push_back(loop.inductionVar());
    }
    for (const Stmt &s : copy.stmts) {
      mir::Value *v = emitF(copy, s.root, b, fn, ivs);
      b.affineStore(v, fn.arg(1),
                    mir::AffineMap::identity(ctx, static_cast<unsigned>(
                                                      ivs.size())),
                    std::vector<mir::Value *>(ivs.begin(), ivs.end()));
    }
    b.setInsertPoint(fn.entryBlock());
    b.createReturn();
    return module;
  };
  spec.reference = [copy](flow::Buffers &buffers) {
    copy.evalReference(buffers);
  };
  return spec;
}

void Program::evalReference(flow::Buffers &buffers) const {
  const std::vector<double> &A = buffers[0];
  std::vector<double> &Out = buffers[1];
  size_t depth = loops.size();
  std::vector<int64_t> ivs(depth);
  std::vector<int64_t> strides(depth, 1);
  for (size_t l = depth; l-- > 1;)
    strides[l - 1] = strides[l] * loops[l].ub;
  // Iterate the nest with an explicit odometer (depth is dynamic).
  std::function<void(size_t)> runLevel = [&](size_t level) {
    if (level == depth) {
      int64_t linear = 0;
      for (size_t l = 0; l < depth; ++l)
        linear += ivs[l] * strides[l];
      for (const Stmt &s : stmts)
        Out[static_cast<size_t>(linear)] =
            evalF(*this, s.root, ivs, A, Out, linear);
      return;
    }
    for (int64_t iv = loops[level].lb; iv < loops[level].ub;
         iv += loops[level].step) {
      ivs[level] = iv;
      runLevel(level + 1);
    }
  };
  runLevel(0);
}

// --- IrProgram (IR mode) ---

unsigned IrProgram::widthOf(int value) const {
  unsigned v = static_cast<unsigned>(value);
  if (v < numArgs)
    return 64;
  v -= numArgs;
  if (v < consts.size())
    return consts[v].second;
  return insts[v - consts.size()].width;
}

namespace {

/// Operand rendering for IrProgram::lir(): arguments and instruction
/// results are named values, constants print as literals.
std::string irOperand(const IrProgram &p, int value) {
  unsigned v = static_cast<unsigned>(value);
  if (v < p.numArgs)
    return strfmt("%%a%u", v);
  v -= p.numArgs;
  if (v < p.consts.size())
    return strfmt("%lld", static_cast<long long>(p.consts[v].first));
  return strfmt("%%v%u", static_cast<unsigned>(v - p.consts.size()));
}

const char *irOpName(IrInst::Op op) {
  switch (op) {
  case IrInst::Op::Add:
    return "add";
  case IrInst::Op::Sub:
    return "sub";
  case IrInst::Op::Mul:
    return "mul";
  case IrInst::Op::SDiv:
    return "sdiv";
  case IrInst::Op::UDiv:
    return "udiv";
  case IrInst::Op::SRem:
    return "srem";
  case IrInst::Op::URem:
    return "urem";
  case IrInst::Op::And:
    return "and";
  case IrInst::Op::Or:
    return "or";
  case IrInst::Op::Xor:
    return "xor";
  case IrInst::Op::Shl:
    return "shl";
  case IrInst::Op::LShr:
    return "lshr";
  case IrInst::Op::AShr:
    return "ashr";
  case IrInst::Op::Trunc:
    return "trunc";
  case IrInst::Op::ZExt:
    return "zext";
  case IrInst::Op::SExt:
    return "sext";
  case IrInst::Op::ICmp:
    return "icmp";
  case IrInst::Op::Select:
    return "select";
  }
  return "?";
}

} // namespace

std::string IrProgram::lir() const {
  unsigned retWidth = ret >= 0 ? widthOf(ret) : 64;
  std::string out = "!flag opaque-pointers = \"true\"\n\n";
  out += strfmt("define i%u @fuzz_ir(", retWidth);
  for (unsigned i = 0; i < numArgs; ++i)
    out += strfmt("%si64 %%a%u", i ? ", " : "", i);
  out += ") {\nentry:\n";
  for (size_t i = 0; i < insts.size(); ++i) {
    const IrInst &inst = insts[i];
    unsigned operandWidth = inst.a >= 0 ? widthOf(inst.a) : 64;
    switch (inst.op) {
    case IrInst::Op::Trunc:
    case IrInst::Op::ZExt:
    case IrInst::Op::SExt:
      out += strfmt("  %%v%zu = %s i%u %s to i%u\n", i, irOpName(inst.op),
                    operandWidth, irOperand(*this, inst.a).c_str(),
                    inst.width);
      break;
    case IrInst::Op::ICmp:
      out += strfmt("  %%v%zu = icmp slt i%u %s, %s\n", i, operandWidth,
                    irOperand(*this, inst.a).c_str(),
                    irOperand(*this, inst.b).c_str());
      break;
    case IrInst::Op::Select:
      out += strfmt("  %%v%zu = select i1 %s, i%u %s, i%u %s\n", i,
                    irOperand(*this, inst.a).c_str(), inst.width,
                    irOperand(*this, inst.b).c_str(), inst.width,
                    irOperand(*this, inst.c).c_str());
      break;
    default:
      out += strfmt("  %%v%zu = %s i%u %s, %s\n", i, irOpName(inst.op),
                    inst.width, irOperand(*this, inst.a).c_str(),
                    irOperand(*this, inst.b).c_str());
      break;
    }
  }
  out += strfmt("  ret i%u %s\n}\n", retWidth,
                ret >= 0 ? irOperand(*this, ret).c_str() : "0");
  return out;
}

std::string IrProgram::describe() const { return lir(); }

IrEval evalIrReference(const IrProgram &program,
                       const std::vector<int64_t> &args) {
  std::vector<int64_t> values;
  values.reserve(program.numValues());
  for (unsigned i = 0; i < program.numArgs; ++i)
    values.push_back(i < args.size() ? args[i] : 0);
  for (const auto &[value, width] : program.consts) {
    (void)width;
    values.push_back(value);
  }
  IrEval result;
  auto trap = [&](std::string reason) {
    result.trapped = true;
    result.trapReason = std::move(reason);
    return result;
  };
  for (size_t i = 0; i < program.insts.size(); ++i) {
    const IrInst &inst = program.insts[i];
    unsigned w = inst.width;
    int64_t a = inst.a >= 0 ? values[static_cast<size_t>(inst.a)] : 0;
    int64_t b = inst.b >= 0 ? values[static_cast<size_t>(inst.b)] : 0;
    int64_t v = 0;
    switch (inst.op) {
    case IrInst::Op::Add:
      v = canonicalInt(static_cast<uint64_t>(a) + static_cast<uint64_t>(b),
                       w);
      break;
    case IrInst::Op::Sub:
      v = canonicalInt(static_cast<uint64_t>(a) - static_cast<uint64_t>(b),
                       w);
      break;
    case IrInst::Op::Mul:
      v = canonicalInt(static_cast<uint64_t>(a) * static_cast<uint64_t>(b),
                       w);
      break;
    case IrInst::Op::SDiv:
      if (b == 0)
        return trap(strfmt("sdiv by zero at %%v%zu", i));
      if (a == minSignedInt(w) && b == -1)
        return trap(strfmt("sdiv overflow at %%v%zu", i));
      v = a / b;
      break;
    case IrInst::Op::SRem:
      if (b == 0)
        return trap(strfmt("srem by zero at %%v%zu", i));
      if (a == minSignedInt(w) && b == -1)
        return trap(strfmt("srem overflow at %%v%zu", i));
      v = a % b;
      break;
    case IrInst::Op::UDiv:
      if (b == 0)
        return trap(strfmt("udiv by zero at %%v%zu", i));
      v = canonicalInt(truncBits(a, w) / truncBits(b, w), w);
      break;
    case IrInst::Op::URem:
      if (b == 0)
        return trap(strfmt("urem by zero at %%v%zu", i));
      v = canonicalInt(truncBits(a, w) % truncBits(b, w), w);
      break;
    case IrInst::Op::And:
      v = a & b;
      break;
    case IrInst::Op::Or:
      v = a | b;
      break;
    case IrInst::Op::Xor:
      v = a ^ b;
      break;
    case IrInst::Op::Shl:
      if (static_cast<uint64_t>(b) >= w)
        return trap(strfmt("shift out of range at %%v%zu", i));
      v = canonicalInt(truncBits(a, w) << b, w);
      break;
    case IrInst::Op::LShr:
      if (static_cast<uint64_t>(b) >= w)
        return trap(strfmt("shift out of range at %%v%zu", i));
      v = canonicalInt(truncBits(a, w) >> b, w);
      break;
    case IrInst::Op::AShr:
      if (static_cast<uint64_t>(b) >= w)
        return trap(strfmt("shift out of range at %%v%zu", i));
      v = a >> b;
      break;
    case IrInst::Op::Trunc:
      v = canonicalInt(static_cast<uint64_t>(a), w);
      break;
    case IrInst::Op::ZExt:
      v = static_cast<int64_t>(truncBits(a, program.widthOf(inst.a)));
      break;
    case IrInst::Op::SExt:
      v = a; // canonical values are already sign-extended
      break;
    case IrInst::Op::ICmp:
      v = a < b ? -1 : 0; // canonical i1 true
      break;
    case IrInst::Op::Select:
      v = a != 0 ? b : (inst.c >= 0 ? values[static_cast<size_t>(inst.c)]
                                    : 0);
      break;
    }
    values.push_back(v);
  }
  result.value = program.ret >= 0 ? values[static_cast<size_t>(program.ret)]
                                  : 0;
  return result;
}

// --- CallProgram (calls mode) ---

namespace {

/// Masked recursion argument: every template clamps to [0, 15] before
/// comparing/recursing, so termination does not depend on the input.
constexpr int64_t kRecMask = 15;

/// Name of function-table entry `index` in the emitted module.
std::string callFnName(const CallProgram &p, int index) {
  if (index == p.arrayIndex())
    return "arr_fill";
  if (index == p.recIndex())
    return "rec";
  return strfmt("h%d", index);
}

/// Argument count of function-table entry `index` (helpers take two
/// scalars; the special functions take one).
unsigned callFnArity(const CallProgram &p, int index) {
  return index < static_cast<int>(p.helpers.size()) ? 2u : 1u;
}

std::string callOperand(const CallFn &fn, unsigned numArgs, int value) {
  unsigned v = static_cast<unsigned>(value);
  if (v < numArgs)
    return strfmt("%%a%u", v);
  v -= numArgs;
  if (v < fn.consts.size())
    return strfmt("%lld", static_cast<long long>(fn.consts[v]));
  return strfmt("%%v%u", static_cast<unsigned>(v - fn.consts.size()));
}

const char *callOpName(CallOp::Kind kind) {
  switch (kind) {
  case CallOp::Kind::Add:
    return "add";
  case CallOp::Kind::Sub:
    return "sub";
  case CallOp::Kind::Mul:
    return "mul";
  case CallOp::Kind::And:
    return "and";
  case CallOp::Kind::Or:
    return "or";
  case CallOp::Kind::Xor:
    return "xor";
  case CallOp::Kind::ShlC:
    return "shl";
  case CallOp::Kind::Call:
    return "call";
  }
  return "?";
}

/// Renders one straight-line body (shared by helpers and the top).
std::string callFnBody(const CallProgram &p, const CallFn &fn,
                       unsigned numArgs) {
  std::string out = "entry:\n";
  for (size_t i = 0; i < fn.ops.size(); ++i) {
    const CallOp &op = fn.ops[i];
    if (op.kind == CallOp::Kind::Call) {
      std::string args =
          "i64 " + callOperand(fn, numArgs, op.a);
      if (callFnArity(p, op.callee) == 2)
        args += ", i64 " + callOperand(fn, numArgs, op.b);
      out += strfmt("  %%v%zu = call i64 @%s(%s)\n", i,
                    callFnName(p, op.callee).c_str(), args.c_str());
    } else if (op.kind == CallOp::Kind::ShlC) {
      out += strfmt("  %%v%zu = shl i64 %s, %u\n", i,
                    callOperand(fn, numArgs, op.a).c_str(), op.amount);
    } else {
      out += strfmt("  %%v%zu = %s i64 %s, %s\n", i, callOpName(op.kind),
                    callOperand(fn, numArgs, op.a).c_str(),
                    callOperand(fn, numArgs, op.b).c_str());
    }
  }
  out += strfmt("  ret i64 %s\n", callOperand(fn, numArgs, fn.ret).c_str());
  return out;
}

} // namespace

size_t CallProgram::size() const {
  size_t n = top.ops.size();
  for (const CallFn &fn : helpers)
    n += fn.ops.size();
  if (hasArrayHelper)
    ++n;
  if (hasRecursion)
    ++n;
  return n;
}

std::string CallProgram::lir() const {
  std::string out;
  for (size_t h = 0; h < helpers.size(); ++h) {
    out += strfmt("define i64 @h%zu(i64 %%a0, i64 %%a1)%s {\n", h,
                  helpers[h].noinline ? " #[noinline]" : "");
    out += callFnBody(*this, helpers[h], 2);
    out += "}\n\n";
  }
  if (hasArrayHelper) {
    // Fill a local array from affine functions of the argument, read it
    // back, xor-combine. Stays function-local: the pointer never escapes.
    out += "define i64 @arr_fill(i64 %a0) {\nentry:\n";
    out += "  %buf = alloca [8 x i64]\n";
    for (int k = 0; k < 8; ++k) {
      out += strfmt("  %%m%d = mul i64 %%a0, %lld\n", k,
                    static_cast<long long>(arrCoef[k]));
      out += strfmt("  %%s%d = add i64 %%m%d, %lld\n", k, k,
                    static_cast<long long>(arrAdd[k]));
      out += strfmt("  %%p%d = getelementptr [8 x i64], [8 x i64]* %%buf, "
                    "i64 0, i64 %d\n",
                    k, k);
      out += strfmt("  store i64 %%s%d, i64* %%p%d\n", k, k);
    }
    for (int k = 0; k < 8; ++k)
      out += strfmt("  %%l%d = load i64, i64* %%p%d\n", k, k);
    out += "  %x1 = xor i64 %l0, %l1\n";
    for (int k = 2; k < 8; ++k)
      out += strfmt("  %%x%d = xor i64 %%x%d, %%l%d\n", k, k - 1, k);
    out += "  ret i64 %x7\n}\n\n";
  }
  if (hasRecursion) {
    out += "define i64 @rec(i64 %a0) #[mha.rec_depth=24] {\nentry:\n";
    out += strfmt("  %%n = and i64 %%a0, %lld\n",
                  static_cast<long long>(kRecMask));
    out += "  %cmp = icmp sle i64 %n, 1\n";
    out += "  br i1 %cmp, label %base, label %step\nbase:\n";
    out += strfmt("  ret i64 %lld\nstep:\n",
                  static_cast<long long>(recBase));
    out += "  %n1 = sub i64 %n, 1\n";
    out += "  %r1 = call i64 @rec(i64 %n1)\n";
    switch (recKind) {
    case RecKind::Factorial:
      out += "  %v = mul i64 %n, %r1\n";
      break;
    case RecKind::Sum:
      out += "  %v = add i64 %n, %r1\n";
      break;
    case RecKind::Fib:
      out += "  %n2 = sub i64 %n, 2\n";
      out += "  %r2 = call i64 @rec(i64 %n2)\n";
      out += "  %v = add i64 %r1, %r2\n";
      break;
    }
    out += "  ret i64 %v\n}\n\n";
  }
  out += "define i64 @fuzz_calls(";
  for (unsigned i = 0; i < numArgs; ++i)
    out += strfmt("%si64 %%a%u", i ? ", " : "", i);
  out += ") {\n";
  out += callFnBody(*this, top, numArgs);
  out += "}\n";
  return out;
}

std::string CallProgram::describe() const { return lir(); }

namespace {

/// Evaluates a straight-line body; `callFn` resolves Call ops.
int64_t evalCallFn(const CallFn &fn, const std::vector<int64_t> &args,
                   const std::function<int64_t(int, int64_t, int64_t)> &call) {
  std::vector<int64_t> values(args);
  for (int64_t c : fn.consts)
    values.push_back(c);
  for (const CallOp &op : fn.ops) {
    int64_t a = op.a >= 0 ? values[static_cast<size_t>(op.a)] : 0;
    int64_t b = op.b >= 0 ? values[static_cast<size_t>(op.b)] : 0;
    int64_t v = 0;
    switch (op.kind) {
    case CallOp::Kind::Add:
      v = wrapAdd(a, b);
      break;
    case CallOp::Kind::Sub:
      v = wrapSub(a, b);
      break;
    case CallOp::Kind::Mul:
      v = wrapMul(a, b);
      break;
    case CallOp::Kind::And:
      v = a & b;
      break;
    case CallOp::Kind::Or:
      v = a | b;
      break;
    case CallOp::Kind::Xor:
      v = a ^ b;
      break;
    case CallOp::Kind::ShlC:
      v = static_cast<int64_t>(static_cast<uint64_t>(a) << op.amount);
      break;
    case CallOp::Kind::Call:
      v = call(op.callee, a, b);
      break;
    }
    values.push_back(v);
  }
  return fn.ret >= 0 ? values[static_cast<size_t>(fn.ret)] : 0;
}

int64_t evalArrayHelper(const CallProgram &p, int64_t x) {
  int64_t slots[8];
  for (int k = 0; k < 8; ++k)
    slots[k] = wrapAdd(wrapMul(x, p.arrCoef[k]), p.arrAdd[k]);
  int64_t acc = slots[0] ^ slots[1];
  for (int k = 2; k < 8; ++k)
    acc ^= slots[k];
  return acc;
}

int64_t evalRec(const CallProgram &p, int64_t arg) {
  int64_t n = arg & kRecMask;
  if (n <= 1)
    return p.recBase;
  switch (p.recKind) {
  case RecKind::Factorial:
    return wrapMul(n, evalRec(p, n - 1));
  case RecKind::Sum:
    return wrapAdd(n, evalRec(p, n - 1));
  case RecKind::Fib:
    return wrapAdd(evalRec(p, n - 1), evalRec(p, n - 2));
  }
  return 0;
}

int64_t evalCallTarget(const CallProgram &p, int callee, int64_t a,
                       int64_t b) {
  if (callee == p.arrayIndex())
    return evalArrayHelper(p, a);
  if (callee == p.recIndex())
    return evalRec(p, a);
  const CallFn &fn = p.helpers[static_cast<size_t>(callee)];
  return evalCallFn(fn, {a, b}, [&](int c, int64_t x, int64_t y) {
    return evalCallTarget(p, c, x, y);
  });
}

} // namespace

int64_t evalCallsReference(const CallProgram &program,
                           const std::vector<int64_t> &args) {
  std::vector<int64_t> padded(args);
  padded.resize(program.numArgs, 0);
  return evalCallFn(program.top, padded,
                    [&](int c, int64_t x, int64_t y) {
                      return evalCallTarget(program, c, x, y);
                    });
}

// --- ProgramGen ---

ProgramGen::ProgramGen(uint64_t seed, GenOptions options)
    : seed_(seed), options_(options) {}

namespace {

class KernelBuilder {
public:
  KernelBuilder(SplitMix64 &rng, Program &p, const GenOptions &opts)
      : rng_(rng), p_(p), opts_(opts) {}

  int genF(int depth) {
    unsigned roll = static_cast<unsigned>(rng_.below(100));
    if (depth <= 0) {
      if (roll < 35)
        return makeLoadA();
      if (roll < 55)
        return makeF(FExpr::Kind::LoadOut);
      if (roll < 80)
        return makeConstF();
      return makeFromInt(0);
    }
    if (roll < 15)
      return makeLoadA();
    if (roll < 23)
      return makeF(FExpr::Kind::LoadOut);
    if (roll < 30)
      return makeConstF();
    if (roll < 40)
      return makeFromInt(depth - 1);
    if (roll < 55)
      return makeBinF(FExpr::Kind::Add, depth);
    if (roll < 65)
      return makeBinF(FExpr::Kind::Sub, depth);
    if (roll < 80)
      return makeBinF(FExpr::Kind::Mul, depth);
    if (roll < 88)
      return makeBinF(FExpr::Kind::Div, depth);
    if (roll < 94)
      return makeUnF(FExpr::Kind::Fabs, depth);
    return makeUnF(FExpr::Kind::Sqrt, depth);
  }

  /// Integer tree guaranteed to contain at least one induction variable
  /// (used for every binop's left operand; see the file header on why
  /// const⊗const must not reach the canonicalizer).
  int genIWithIv(int depth) {
    if (depth <= 0 || rng_.below(100) < 40)
      return makeIv();
    unsigned roll = static_cast<unsigned>(rng_.below(100));
    IExpr e;
    if (roll < 30)
      e.kind = IExpr::Kind::Add;
    else if (roll < 50)
      e.kind = IExpr::Kind::Sub;
    else if (roll < 75)
      e.kind = IExpr::Kind::Mul;
    else if (roll < 88)
      e.kind = IExpr::Kind::DivC;
    else
      e.kind = IExpr::Kind::RemC;
    e.lhs = genIWithIv(depth - 1);
    if (e.kind == IExpr::Kind::DivC || e.kind == IExpr::Kind::RemC)
      e.cst = kDivisorPool[rng_.below(std::size(kDivisorPool))];
    else
      e.rhs = genI(depth - 1);
    p_.ipool.push_back(e);
    return static_cast<int>(p_.ipool.size() - 1);
  }

  int genI(int depth) {
    if (depth <= 0 || rng_.below(100) < 45) {
      if (rng_.below(100) < 55)
        return makeIv();
      IExpr e;
      e.kind = IExpr::Kind::Const;
      e.cst = kIntConstPool[rng_.below(std::size(kIntConstPool))];
      p_.ipool.push_back(e);
      return static_cast<int>(p_.ipool.size() - 1);
    }
    return genIWithIv(depth);
  }

private:
  int makeF(FExpr::Kind kind) {
    FExpr e;
    e.kind = kind;
    p_.fpool.push_back(e);
    return static_cast<int>(p_.fpool.size() - 1);
  }

  int makeConstF() {
    FExpr e;
    e.kind = FExpr::Kind::ConstF;
    e.cst = kFloatConstPool[rng_.below(std::size(kFloatConstPool))];
    p_.fpool.push_back(e);
    return static_cast<int>(p_.fpool.size() - 1);
  }

  int makeLoadA() {
    FExpr e;
    e.kind = FExpr::Kind::LoadA;
    size_t depth = p_.loops.size();
    e.rowCoef.resize(depth);
    e.colCoef.resize(depth);
    for (size_t l = 0; l < depth; ++l) {
      e.rowCoef[l] = static_cast<int64_t>(rng_.below(3));
      e.colCoef[l] = static_cast<int64_t>(rng_.below(3));
    }
    e.rowCst = static_cast<int64_t>(rng_.below(3));
    e.colCst = static_cast<int64_t>(rng_.below(3));
    p_.fpool.push_back(e);
    return static_cast<int>(p_.fpool.size() - 1);
  }

  int makeFromInt(int depth) {
    FExpr e;
    e.kind = FExpr::Kind::FromInt;
    e.iexpr = genI(depth);
    p_.fpool.push_back(e);
    return static_cast<int>(p_.fpool.size() - 1);
  }

  int makeBinF(FExpr::Kind kind, int depth) {
    FExpr e;
    e.kind = kind;
    e.lhs = genF(depth - 1);
    e.rhs = genF(depth - 1);
    p_.fpool.push_back(e);
    return static_cast<int>(p_.fpool.size() - 1);
  }

  int makeUnF(FExpr::Kind kind, int depth) {
    FExpr e;
    e.kind = kind;
    e.lhs = genF(depth - 1);
    p_.fpool.push_back(e);
    return static_cast<int>(p_.fpool.size() - 1);
  }

  int makeIv() {
    IExpr e;
    e.kind = IExpr::Kind::IV;
    e.iv = static_cast<int>(rng_.below(p_.loops.size()));
    p_.ipool.push_back(e);
    return static_cast<int>(p_.ipool.size() - 1);
  }

  SplitMix64 &rng_;
  Program &p_;
  const GenOptions &opts_;
};

} // namespace

Program ProgramGen::genKernel() {
  SplitMix64 rng(seed_ * 0x9e3779b97f4a7c15ull + 0x6b65726e656cull);
  Program p;
  p.seed = seed_;
  size_t depth = 1 + rng.below(static_cast<uint64_t>(options_.maxLoopDepth));
  for (size_t l = 0; l < depth; ++l) {
    LoopSpec loop;
    loop.lb = static_cast<int64_t>(rng.below(3));
    loop.ub = loop.lb + 2 + static_cast<int64_t>(rng.below(5));
    loop.step = 1 + static_cast<int64_t>(rng.below(2));
    p.loops.push_back(loop);
  }
  KernelBuilder builder(rng, p, options_);
  size_t numStmts = 1 + rng.below(static_cast<uint64_t>(options_.maxStmts));
  for (size_t s = 0; s < numStmts; ++s) {
    Stmt stmt;
    stmt.root = builder.genF(options_.maxExprDepth);
    p.stmts.push_back(stmt);
  }
  p.finalizeShapes();
  return p;
}

IrProgram ProgramGen::genIr() {
  SplitMix64 rng(seed_ * 0x9e3779b97f4a7c15ull + 0x6972ull);
  IrProgram p;
  p.seed = seed_;
  p.numArgs = 3;

  static const unsigned kWidths[] = {8, 16, 32, 64};
  size_t numConsts = 4 + rng.below(5);
  for (size_t i = 0; i < numConsts; ++i) {
    unsigned w = kWidths[rng.below(std::size(kWidths))];
    int64_t raw;
    unsigned roll = static_cast<unsigned>(rng.below(100));
    if (roll < 30) {
      raw = static_cast<int64_t>(rng.below(8)); // small: shift amounts
    } else if (roll < 55) {
      static const int64_t pool[] = {0,  1,  -1,   2,    3,   7,
                                     -2, 13, -128, 0x55, 255, -4096};
      raw = pool[rng.below(std::size(pool))];
    } else if (roll < 75) {
      raw = minSignedInt(w);
    } else if (roll < 90) {
      raw = maxSignedInt(w);
    } else {
      raw = static_cast<int64_t>(rng.next());
    }
    p.consts.push_back({canonicalInt(static_cast<uint64_t>(raw), w), w});
  }

  auto numValues = [&] { return static_cast<int>(p.numValues()); };
  // Values usable as generic operands (everything except i1 results).
  auto pickOperand = [&](unsigned width) -> int {
    std::vector<int> candidates;
    for (int v = 0; v < numValues(); ++v)
      if (p.widthOf(v) == width)
        candidates.push_back(v);
    if (candidates.empty())
      return -1;
    return candidates[rng.below(candidates.size())];
  };
  auto pickAnyNonI1 = [&]() -> int {
    std::vector<int> candidates;
    for (int v = 0; v < numValues(); ++v)
      if (p.widthOf(v) != 1)
        candidates.push_back(v);
    return candidates[rng.below(candidates.size())];
  };

  size_t numInsts =
      4 + rng.below(static_cast<uint64_t>(options_.maxIrInsts - 3));
  for (size_t i = 0; i < numInsts; ++i) {
    IrInst inst;
    unsigned roll = static_cast<unsigned>(rng.below(100));
    if (roll < 55) {
      // Arithmetic/bitwise binop on a shared width.
      static const IrInst::Op kBinops[] = {
          IrInst::Op::Add,  IrInst::Op::Sub,  IrInst::Op::Mul,
          IrInst::Op::SDiv, IrInst::Op::UDiv, IrInst::Op::SRem,
          IrInst::Op::URem, IrInst::Op::And,  IrInst::Op::Or,
          IrInst::Op::Xor};
      inst.op = kBinops[rng.below(std::size(kBinops))];
      inst.a = pickAnyNonI1();
      inst.width = p.widthOf(inst.a);
      inst.b = pickOperand(inst.width);
    } else if (roll < 75) {
      static const IrInst::Op kShifts[] = {IrInst::Op::Shl, IrInst::Op::LShr,
                                           IrInst::Op::AShr};
      inst.op = kShifts[rng.below(std::size(kShifts))];
      inst.a = pickAnyNonI1();
      inst.width = p.widthOf(inst.a);
      // Bias toward in-range constant amounts so most programs compute
      // values instead of trapping immediately (out-of-range amounts stay
      // reachable through the other operand picks).
      int amount = -1;
      if (rng.below(100) < 70) {
        std::vector<int> inRange;
        for (unsigned c = 0; c < p.consts.size(); ++c)
          if (p.consts[c].second == inst.width && p.consts[c].first >= 0 &&
              p.consts[c].first < static_cast<int64_t>(inst.width))
            inRange.push_back(static_cast<int>(p.numArgs + c));
        if (!inRange.empty())
          amount = inRange[rng.below(inRange.size())];
      }
      inst.b = amount >= 0 ? amount : pickOperand(inst.width);
    } else if (roll < 85) {
      // Width cast. Trunc targets stay >= 8: i1 is reserved for icmp
      // results feeding selects (an i1 operand in arithmetic would need
      // its own canonicalization story in every backend).
      if (rng.below(2) == 0) {
        inst.op = IrInst::Op::Trunc;
        static const unsigned kNarrow[] = {8, 16, 32};
        inst.width = kNarrow[rng.below(std::size(kNarrow))];
        std::vector<int> wider;
        for (int v = 0; v < numValues(); ++v)
          if (p.widthOf(v) > inst.width)
            wider.push_back(v);
        inst.a = wider[rng.below(wider.size())];
      } else {
        inst.op = rng.below(2) ? IrInst::Op::SExt : IrInst::Op::ZExt;
        static const unsigned kWide[] = {16, 32, 64};
        inst.width = kWide[rng.below(std::size(kWide))];
        std::vector<int> narrower;
        for (int v = 0; v < numValues(); ++v)
          if (p.widthOf(v) < inst.width && p.widthOf(v) >= 8)
            narrower.push_back(v);
        if (narrower.empty()) {
          inst.op = IrInst::Op::Add; // no narrow value yet: plain binop
          inst.a = pickAnyNonI1();
          inst.width = p.widthOf(inst.a);
          inst.b = pickOperand(inst.width);
        } else {
          inst.a = narrower[rng.below(narrower.size())];
        }
      }
    } else if (roll < 93) {
      inst.op = IrInst::Op::ICmp;
      inst.a = pickAnyNonI1();
      inst.b = pickOperand(p.widthOf(inst.a));
      inst.width = 1;
    } else {
      // Select needs an existing i1 condition.
      std::vector<int> conds;
      for (int v = 0; v < numValues(); ++v)
        if (p.widthOf(v) == 1)
          conds.push_back(v);
      if (conds.empty()) {
        inst.op = IrInst::Op::ICmp;
        inst.a = pickAnyNonI1();
        inst.b = pickOperand(p.widthOf(inst.a));
        inst.width = 1;
      } else {
        inst.op = IrInst::Op::Select;
        inst.a = conds[rng.below(conds.size())];
        int picked = pickAnyNonI1();
        inst.width = p.widthOf(picked);
        inst.b = picked;
        inst.c = pickOperand(inst.width);
      }
    }
    p.insts.push_back(inst);
  }

  // Return the last non-i1 value so the tail of the program stays live.
  p.ret = -1;
  for (size_t i = p.insts.size(); i-- > 0;) {
    if (p.insts[i].width != 1) {
      p.ret = static_cast<int>(p.numArgs + p.consts.size() + i);
      break;
    }
  }
  if (p.ret < 0)
    p.ret = 0;

  size_t numSets = static_cast<size_t>(options_.irArgSets);
  for (size_t s = 0; s < numSets; ++s) {
    std::vector<int64_t> args;
    for (unsigned a = 0; a < p.numArgs; ++a) {
      unsigned roll = static_cast<unsigned>(rng.below(100));
      if (roll < 35) {
        static const int64_t pool[] = {0, 1, -1, 2, 7, -13, 255, -256};
        args.push_back(pool[rng.below(std::size(pool))]);
      } else if (roll < 50) {
        args.push_back(INT64_MIN);
      } else if (roll < 65) {
        args.push_back(INT64_MAX);
      } else {
        args.push_back(static_cast<int64_t>(rng.next()));
      }
    }
    p.argSets.push_back(std::move(args));
  }
  return p;
}

CallProgram ProgramGen::genCalls() {
  SplitMix64 rng(seed_ * 0x9e3779b97f4a7c15ull + 0x63616c6c73ull);
  CallProgram p;
  p.seed = seed_;
  p.numArgs = 3;

  // Constants restricted to wrap-safe values (every op is trap-free, so
  // any int64 works; the pool biases toward interesting bit patterns).
  auto pickConst = [&]() -> int64_t {
    unsigned roll = static_cast<unsigned>(rng.below(100));
    if (roll < 60)
      return kIntConstPool[rng.below(std::size(kIntConstPool))];
    return static_cast<int64_t>(rng.next());
  };

  // A straight-line body over `numArgs` arguments whose Call ops may
  // target function-table entries in [0, calleeLimit).
  auto genBody = [&](unsigned numArgs, int calleeLimit, unsigned callPct) {
    CallFn fn;
    size_t numConsts = 2 + rng.below(3);
    for (size_t c = 0; c < numConsts; ++c)
      fn.consts.push_back(pickConst());
    size_t numOps =
        3 + rng.below(static_cast<uint64_t>(options_.maxCallOps - 2));
    auto numValues = [&] {
      return static_cast<int>(numArgs + fn.consts.size() + fn.ops.size());
    };
    auto pickValue = [&] {
      return static_cast<int>(rng.below(static_cast<uint64_t>(numValues())));
    };
    for (size_t i = 0; i < numOps; ++i) {
      CallOp op;
      unsigned roll = static_cast<unsigned>(rng.below(100));
      if (calleeLimit > 0 && roll < callPct) {
        op.kind = CallOp::Kind::Call;
        op.callee = static_cast<int>(
            rng.below(static_cast<uint64_t>(calleeLimit)));
        op.a = pickValue();
        op.b = pickValue();
      } else if (roll < callPct + 10) {
        op.kind = CallOp::Kind::ShlC;
        op.a = pickValue();
        op.amount = static_cast<unsigned>(rng.below(8));
      } else {
        static const CallOp::Kind kBinops[] = {
            CallOp::Kind::Add, CallOp::Kind::Sub, CallOp::Kind::Mul,
            CallOp::Kind::And, CallOp::Kind::Or,  CallOp::Kind::Xor};
        op.kind = kBinops[rng.below(std::size(kBinops))];
        op.a = pickValue();
        op.b = pickValue();
      }
      fn.ops.push_back(op);
    }
    fn.ret = numValues() - 1; // last op keeps the whole tail live
    return fn;
  };

  size_t numHelpers =
      1 + rng.below(static_cast<uint64_t>(options_.maxCallHelpers));
  for (size_t h = 0; h < numHelpers; ++h) {
    CallFn fn = genBody(2, static_cast<int>(h), 20);
    fn.noinline = rng.below(100) < 30;
    p.helpers.push_back(std::move(fn));
  }

  p.hasArrayHelper = rng.below(100) < 50;
  if (p.hasArrayHelper)
    for (int k = 0; k < 8; ++k) {
      p.arrCoef[k] = pickConst();
      p.arrAdd[k] = pickConst();
    }

  p.hasRecursion = rng.below(100) < 75;
  if (p.hasRecursion) {
    static const RecKind kKinds[] = {RecKind::Factorial, RecKind::Sum,
                                     RecKind::Fib};
    p.recKind = kKinds[rng.below(std::size(kKinds))];
    p.recBase = 1 + static_cast<int64_t>(rng.below(7));
  }

  p.top = genBody(p.numArgs, p.numFunctions(), 35);
  // Guarantee the special functions are exercised: append one call to
  // each, then a combiner so the return depends on everything.
  int topValues = static_cast<int>(p.numArgs + p.top.consts.size() +
                                   p.top.ops.size());
  auto appendCall = [&](int callee) {
    CallOp op;
    op.kind = CallOp::Kind::Call;
    op.callee = callee;
    op.a = static_cast<int>(rng.below(static_cast<uint64_t>(topValues)));
    op.b = static_cast<int>(rng.below(static_cast<uint64_t>(topValues)));
    p.top.ops.push_back(op);
    ++topValues;
  };
  int beforeSpecials = topValues;
  if (p.hasArrayHelper)
    appendCall(p.arrayIndex());
  if (p.hasRecursion)
    appendCall(p.recIndex());
  for (int v = beforeSpecials; v < topValues; ++v) {
    CallOp fold;
    fold.kind = CallOp::Kind::Xor;
    fold.a = p.top.ret;
    fold.b = v;
    p.top.ops.push_back(fold);
    p.top.ret = topValues + (v - beforeSpecials);
  }
  topValues = static_cast<int>(p.numArgs + p.top.consts.size() +
                               p.top.ops.size());

  size_t numSets = static_cast<size_t>(options_.callArgSets);
  for (size_t s = 0; s < numSets; ++s) {
    std::vector<int64_t> args;
    for (unsigned a = 0; a < p.numArgs; ++a) {
      unsigned roll = static_cast<unsigned>(rng.below(100));
      if (roll < 40) {
        static const int64_t pool[] = {0, 1, -1, 2, 7, 15, -13, 255};
        args.push_back(pool[rng.below(std::size(pool))]);
      } else if (roll < 55) {
        args.push_back(INT64_MIN);
      } else if (roll < 70) {
        args.push_back(INT64_MAX);
      } else {
        args.push_back(static_cast<int64_t>(rng.next()));
      }
    }
    p.argSets.push_back(std::move(args));
  }
  return p;
}

} // namespace mha::fuzz
