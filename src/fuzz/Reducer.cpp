// Reducer.cpp - greedy first-improvement reduction.
//
// Every edit strictly decreases a bounded structural measure (reachable
// node count, loop extents, nonzero constants), so the scan terminates at
// a fixpoint even without a size check; the attempt budget bounds oracle
// cost on stubborn reproducers.
//
// Kernel-mode edits preserve the generator's invariants (integer binops
// keep an IV-containing left subtree — nodes are only ever replaced by
// their LEFT child; subscript coefficients only shrink toward zero), so a
// reduced program is still a valid generator program: it can be re-checked
// and re-reduced from its JSON report.
#include "fuzz/Reducer.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

namespace mha::fuzz {

namespace {

using Edit = std::function<void(Program &)>;

void collectReachableF(const Program &p, std::vector<bool> &fSeen,
                       std::vector<bool> &iSeen) {
  fSeen.assign(p.fpool.size(), false);
  iSeen.assign(p.ipool.size(), false);
  std::function<void(int)> markI = [&](int idx) {
    if (idx < 0 || iSeen[static_cast<size_t>(idx)])
      return;
    iSeen[static_cast<size_t>(idx)] = true;
    markI(p.ipool[static_cast<size_t>(idx)].lhs);
    markI(p.ipool[static_cast<size_t>(idx)].rhs);
  };
  std::function<void(int)> markF = [&](int idx) {
    if (idx < 0 || fSeen[static_cast<size_t>(idx)])
      return;
    fSeen[static_cast<size_t>(idx)] = true;
    markF(p.fpool[static_cast<size_t>(idx)].lhs);
    markF(p.fpool[static_cast<size_t>(idx)].rhs);
    markI(p.fpool[static_cast<size_t>(idx)].iexpr);
  };
  for (const Stmt &s : p.stmts)
    markF(s.root);
}

/// Drops loop level 0: every IV(0) becomes the loop's lower bound, deeper
/// IVs shift up one level, LoadA subscripts fold level 0 into their
/// constants.
void peelOuterLoop(Program &p) {
  int64_t lb = p.loops[0].lb;
  for (IExpr &e : p.ipool) {
    if (e.kind != IExpr::Kind::IV)
      continue;
    if (e.iv == 0) {
      e.kind = IExpr::Kind::Const;
      e.cst = lb;
    } else {
      --e.iv;
    }
  }
  for (FExpr &e : p.fpool) {
    if (e.kind != FExpr::Kind::LoadA)
      continue;
    e.rowCst += e.rowCoef[0] * lb;
    e.colCst += e.colCoef[0] * lb;
    e.rowCoef.erase(e.rowCoef.begin());
    e.colCoef.erase(e.colCoef.begin());
  }
  p.loops.erase(p.loops.begin());
}

/// Candidate edits for the current program, most aggressive first.
std::vector<Edit> kernelEdits(const Program &p) {
  std::vector<Edit> edits;
  if (p.stmts.size() > 1)
    for (size_t s = 0; s < p.stmts.size(); ++s)
      edits.push_back([s](Program &q) {
        q.stmts.erase(q.stmts.begin() + static_cast<long>(s));
      });
  if (p.loops.size() > 1)
    edits.push_back([](Program &q) { peelOuterLoop(q); });
  for (size_t l = 0; l < p.loops.size(); ++l) {
    if (p.loops[l].ub > p.loops[l].lb + 2)
      edits.push_back(
          [l](Program &q) { q.loops[l].ub = q.loops[l].lb + 2; });
    if (p.loops[l].step != 1)
      edits.push_back([l](Program &q) { q.loops[l].step = 1; });
    if (p.loops[l].lb != 0)
      edits.push_back([l](Program &q) {
        q.loops[l].ub -= q.loops[l].lb;
        q.loops[l].lb = 0;
      });
  }

  std::vector<bool> fSeen, iSeen;
  collectReachableF(p, fSeen, iSeen);
  for (size_t i = 0; i < p.fpool.size(); ++i) {
    if (!fSeen[i])
      continue;
    const FExpr &e = p.fpool[i];
    // Hoist a child over its parent (either side: FP trees carry no
    // integer-invariant to preserve).
    if (e.lhs >= 0)
      edits.push_back([i](Program &q) {
        q.fpool[i] = q.fpool[static_cast<size_t>(q.fpool[i].lhs)];
      });
    if (e.rhs >= 0)
      edits.push_back([i](Program &q) {
        q.fpool[i] = q.fpool[static_cast<size_t>(q.fpool[i].rhs)];
      });
    // Collapse leaves to plain constants.
    if (e.kind == FExpr::Kind::LoadA || e.kind == FExpr::Kind::LoadOut ||
        e.kind == FExpr::Kind::FromInt)
      edits.push_back([i](Program &q) {
        FExpr c;
        c.kind = FExpr::Kind::ConstF;
        c.cst = 1.0;
        q.fpool[i] = c;
      });
    if (e.kind == FExpr::Kind::LoadA) {
      bool nonzero = e.rowCst != 0 || e.colCst != 0;
      for (int64_t v : e.rowCoef)
        nonzero |= v != 0;
      for (int64_t v : e.colCoef)
        nonzero |= v != 0;
      if (nonzero)
        edits.push_back([i](Program &q) {
          FExpr &a = q.fpool[i];
          a.rowCst = a.colCst = 0;
          std::fill(a.rowCoef.begin(), a.rowCoef.end(), 0);
          std::fill(a.colCoef.begin(), a.colCoef.end(), 0);
        });
    }
    if (e.kind == FExpr::Kind::ConstF && e.cst != 0.0)
      edits.push_back([i](Program &q) { q.fpool[i].cst = 0.0; });
  }
  for (size_t i = 0; i < p.ipool.size(); ++i) {
    if (!iSeen[i])
      continue;
    const IExpr &e = p.ipool[i];
    // Only the LEFT child: integer binops must keep an IV-containing left
    // subtree (see the generator's const-folding invariant).
    if (e.lhs >= 0)
      edits.push_back([i](Program &q) {
        q.ipool[i] = q.ipool[static_cast<size_t>(q.ipool[i].lhs)];
      });
    if (e.kind == IExpr::Kind::Const && e.cst != 0)
      edits.push_back([i](Program &q) { q.ipool[i].cst = 0; });
  }
  return edits;
}

using IrEdit = std::function<void(IrProgram &)>;

/// Removes instructions the return value does not depend on, remapping
/// operand indices (constants are kept: they cost nothing and removing
/// them would churn every instruction index).
bool dceIr(IrProgram &p) {
  int instBase = static_cast<int>(p.numArgs + p.consts.size());
  std::vector<bool> live(p.insts.size(), false);
  std::function<void(int)> mark = [&](int v) {
    if (v < instBase)
      return;
    size_t idx = static_cast<size_t>(v - instBase);
    if (live[idx])
      return;
    live[idx] = true;
    mark(p.insts[idx].a);
    mark(p.insts[idx].b);
    mark(p.insts[idx].c);
  };
  mark(p.ret);
  std::vector<int> remap(p.insts.size(), -1);
  std::vector<IrInst> kept;
  for (size_t i = 0; i < p.insts.size(); ++i) {
    if (!live[i])
      continue;
    remap[i] = instBase + static_cast<int>(kept.size());
    kept.push_back(p.insts[i]);
  }
  if (kept.size() == p.insts.size())
    return false;
  auto remapOperand = [&](int &v) {
    if (v >= instBase)
      v = remap[static_cast<size_t>(v - instBase)];
  };
  for (IrInst &inst : kept) {
    remapOperand(inst.a);
    remapOperand(inst.b);
    remapOperand(inst.c);
  }
  remapOperand(p.ret);
  p.insts = std::move(kept);
  return true;
}

std::vector<IrEdit> irEdits(const IrProgram &p) {
  std::vector<IrEdit> edits;
  int instBase = static_cast<int>(p.numArgs + p.consts.size());
  // Retarget the return to an earlier instruction, then garbage-collect.
  if (p.ret >= instBase)
    for (int v = instBase; v < p.ret; ++v)
      if (p.widthOf(v) != 1)
        edits.push_back([v](IrProgram &q) {
          q.ret = v;
          dceIr(q);
        });
  {
    IrProgram probe = p;
    if (dceIr(probe))
      edits.push_back([](IrProgram &q) { dceIr(q); });
  }
  // Rewire an operand to the smallest same-width earlier value.
  for (size_t i = 0; i < p.insts.size(); ++i) {
    auto tryOperand = [&](int IrInst::*member) {
      int cur = p.insts[i].*member;
      if (cur < 0)
        return;
      unsigned width = p.widthOf(cur);
      for (int v = 0; v < cur; ++v) {
        if (p.widthOf(v) != width)
          continue;
        edits.push_back([i, member, v](IrProgram &q) {
          q.insts[i].*member = v;
          dceIr(q);
        });
        break;
      }
    };
    tryOperand(&IrInst::a);
    tryOperand(&IrInst::b);
    tryOperand(&IrInst::c);
  }
  if (p.argSets.size() > 1)
    for (size_t s = 0; s < p.argSets.size(); ++s)
      edits.push_back([s](IrProgram &q) {
        q.argSets.erase(q.argSets.begin() + static_cast<long>(s));
      });
  for (size_t c = 0; c < p.consts.size(); ++c)
    if (p.consts[c].first != 0)
      edits.push_back([c](IrProgram &q) { q.consts[c].first = 0; });
  for (size_t s = 0; s < p.argSets.size(); ++s)
    for (size_t a = 0; a < p.argSets[s].size(); ++a)
      if (p.argSets[s][a] != 0)
        edits.push_back(
            [s, a](IrProgram &q) { q.argSets[s][a] = 0; });
  return edits;
}

using CallEdit = std::function<void(CallProgram &)>;

/// Op-level DCE inside one calls-mode function: drops ops the return
/// does not reach (sound — every op is pure and terminating), remapping
/// operand indices. Returns true when anything was removed.
bool dceCallFn(CallFn &fn, unsigned numArgs) {
  int opBase = static_cast<int>(numArgs + fn.consts.size());
  std::vector<bool> live(fn.ops.size(), false);
  std::function<void(int)> mark = [&](int v) {
    if (v < opBase)
      return;
    size_t idx = static_cast<size_t>(v - opBase);
    if (live[idx])
      return;
    live[idx] = true;
    mark(fn.ops[idx].a);
    mark(fn.ops[idx].b);
  };
  mark(fn.ret);
  std::vector<int> remap(fn.ops.size(), -1);
  std::vector<CallOp> kept;
  for (size_t i = 0; i < fn.ops.size(); ++i) {
    if (!live[i])
      continue;
    remap[i] = opBase + static_cast<int>(kept.size());
    kept.push_back(fn.ops[i]);
  }
  if (kept.size() == fn.ops.size())
    return false;
  auto remapOperand = [&](int &v) {
    if (v >= opBase)
      v = remap[static_cast<size_t>(v - opBase)];
  };
  for (CallOp &op : kept) {
    remapOperand(op.a);
    remapOperand(op.b);
  }
  remapOperand(fn.ret);
  fn.ops = std::move(kept);
  return true;
}

/// Marks function-table entries reachable from the top via Call ops.
std::vector<bool> reachableCallFns(const CallProgram &p) {
  std::vector<bool> seen(static_cast<size_t>(p.numFunctions()), false);
  std::function<void(const CallFn &)> visit = [&](const CallFn &fn) {
    for (const CallOp &op : fn.ops) {
      if (op.kind != CallOp::Kind::Call || op.callee < 0)
        continue;
      size_t callee = static_cast<size_t>(op.callee);
      if (callee >= seen.size() || seen[callee])
        continue;
      seen[callee] = true;
      if (op.callee < static_cast<int>(p.helpers.size()))
        visit(p.helpers[callee]);
    }
  };
  visit(p.top);
  return seen;
}

/// Drops unreachable trailing helpers and unreachable special functions,
/// shifting the array/recursion table indices in every body.
bool gcCallFns(CallProgram &p) {
  std::vector<bool> seen = reachableCallFns(p);
  int oldArr = p.arrayIndex(), oldRec = p.recIndex();
  bool dropArr = p.hasArrayHelper && !seen[static_cast<size_t>(oldArr)];
  bool dropRec = p.hasRecursion && !seen[static_cast<size_t>(oldRec)];
  size_t keepHelpers = p.helpers.size();
  while (keepHelpers > 0 && !seen[keepHelpers - 1])
    --keepHelpers;
  if (!dropArr && !dropRec && keepHelpers == p.helpers.size())
    return false;
  p.helpers.resize(keepHelpers);
  if (dropArr)
    p.hasArrayHelper = false;
  if (dropRec)
    p.hasRecursion = false;
  int newArr = p.arrayIndex(), newRec = p.recIndex();
  auto retarget = [&](CallFn &fn) {
    for (CallOp &op : fn.ops) {
      if (op.kind != CallOp::Kind::Call)
        continue;
      if (op.callee == oldArr)
        op.callee = newArr;
      else if (op.callee == oldRec)
        op.callee = newRec;
    }
  };
  for (CallFn &fn : p.helpers)
    retarget(fn);
  retarget(p.top);
  return true;
}

void dceCallProgram(CallProgram &p) {
  for (CallFn &fn : p.helpers)
    dceCallFn(fn, 2);
  dceCallFn(p.top, p.numArgs);
  gcCallFns(p);
}

std::vector<CallEdit> callEdits(const CallProgram &p) {
  std::vector<CallEdit> edits;
  // Replace a call site with a bitwise op over its operands, then
  // garbage-collect whatever became unreachable.
  auto decall = [&](bool top, size_t fnIdx) {
    const CallFn &fn = top ? p.top : p.helpers[fnIdx];
    for (size_t i = 0; i < fn.ops.size(); ++i) {
      if (fn.ops[i].kind != CallOp::Kind::Call)
        continue;
      edits.push_back([top, fnIdx, i](CallProgram &q) {
        CallFn &f = top ? q.top : q.helpers[fnIdx];
        f.ops[i].kind = CallOp::Kind::Xor;
        if (f.ops[i].b < 0)
          f.ops[i].b = f.ops[i].a;
        dceCallProgram(q);
      });
    }
  };
  decall(true, 0);
  for (size_t h = 0; h < p.helpers.size(); ++h)
    decall(false, h);
  // Retarget the top's return to an earlier value, then garbage-collect.
  {
    int opBase = static_cast<int>(p.numArgs + p.top.consts.size());
    if (p.top.ret >= opBase)
      for (int v = 0; v < p.top.ret; ++v)
        edits.push_back([v](CallProgram &q) {
          q.top.ret = v;
          dceCallProgram(q);
        });
  }
  {
    CallProgram probe = p;
    dceCallProgram(probe);
    if (probe.size() < p.size() ||
        probe.numFunctions() < p.numFunctions())
      edits.push_back([](CallProgram &q) { dceCallProgram(q); });
  }
  if (p.hasRecursion && p.recKind == RecKind::Fib)
    edits.push_back([](CallProgram &q) { q.recKind = RecKind::Sum; });
  for (size_t h = 0; h < p.helpers.size(); ++h)
    if (p.helpers[h].noinline)
      edits.push_back(
          [h](CallProgram &q) { q.helpers[h].noinline = false; });
  auto zeroConsts = [&](bool top, size_t fnIdx) {
    const CallFn &fn = top ? p.top : p.helpers[fnIdx];
    for (size_t c = 0; c < fn.consts.size(); ++c)
      if (fn.consts[c] != 0)
        edits.push_back([top, fnIdx, c](CallProgram &q) {
          (top ? q.top : q.helpers[fnIdx]).consts[c] = 0;
        });
  };
  zeroConsts(true, 0);
  for (size_t h = 0; h < p.helpers.size(); ++h)
    zeroConsts(false, h);
  if (p.hasArrayHelper)
    for (int k = 0; k < 8; ++k) {
      if (p.arrCoef[k] != 0)
        edits.push_back([k](CallProgram &q) { q.arrCoef[k] = 0; });
      if (p.arrAdd[k] != 0)
        edits.push_back([k](CallProgram &q) { q.arrAdd[k] = 0; });
    }
  if (p.argSets.size() > 1)
    for (size_t s = 0; s < p.argSets.size(); ++s)
      edits.push_back([s](CallProgram &q) {
        q.argSets.erase(q.argSets.begin() + static_cast<long>(s));
      });
  for (size_t s = 0; s < p.argSets.size(); ++s)
    for (size_t a = 0; a < p.argSets[s].size(); ++a)
      if (p.argSets[s][a] != 0)
        edits.push_back(
            [s, a](CallProgram &q) { q.argSets[s][a] = 0; });
  return edits;
}

} // namespace

Program reduceKernel(const Program &program, const OracleResult &failure,
                     const OracleOptions &oracle,
                     const ReducerOptions &options, ReductionTrace *trace) {
  ReductionTrace local;
  ReductionTrace &t = trace ? *trace : local;
  t.initialSize = program.size();
  Program current = program;
  bool improved = true;
  while (improved && t.attempts < options.maxAttempts) {
    improved = false;
    for (const Edit &edit : kernelEdits(current)) {
      if (t.attempts >= options.maxAttempts)
        break;
      Program candidate = current;
      edit(candidate);
      candidate.finalizeShapes();
      ++t.attempts;
      if (checkKernel(candidate, oracle).sameFailure(failure)) {
        current = std::move(candidate);
        ++t.accepted;
        improved = true;
        break;
      }
    }
  }
  t.finalSize = current.size();
  return current;
}

IrProgram reduceIr(const IrProgram &program, const OracleResult &failure,
                   const OracleOptions &oracle,
                   const ReducerOptions &options, ReductionTrace *trace) {
  ReductionTrace local;
  ReductionTrace &t = trace ? *trace : local;
  t.initialSize = program.size();
  IrProgram current = program;
  bool improved = true;
  while (improved && t.attempts < options.maxAttempts) {
    improved = false;
    for (const IrEdit &edit : irEdits(current)) {
      if (t.attempts >= options.maxAttempts)
        break;
      IrProgram candidate = current;
      edit(candidate);
      ++t.attempts;
      if (checkIr(candidate, oracle).sameFailure(failure)) {
        current = std::move(candidate);
        ++t.accepted;
        improved = true;
        break;
      }
    }
  }
  t.finalSize = current.size();
  return current;
}

CallProgram reduceCalls(const CallProgram &program,
                        const OracleResult &failure,
                        const OracleOptions &oracle,
                        const ReducerOptions &options,
                        ReductionTrace *trace) {
  ReductionTrace local;
  ReductionTrace &t = trace ? *trace : local;
  t.initialSize = program.size();
  CallProgram current = program;
  bool improved = true;
  while (improved && t.attempts < options.maxAttempts) {
    improved = false;
    for (const CallEdit &edit : callEdits(current)) {
      if (t.attempts >= options.maxAttempts)
        break;
      CallProgram candidate = current;
      edit(candidate);
      ++t.attempts;
      if (checkCalls(candidate, oracle).sameFailure(failure)) {
        current = std::move(candidate);
        ++t.accepted;
        improved = true;
        break;
      }
    }
  }
  t.finalSize = current.size();
  return current;
}

} // namespace mha::fuzz
