// AttributeScrub - remove modern-only attributes the legacy frontend
// chokes on (stage 6): mustprogress/nofree/nosync/willreturn/memory(...)
// and any argument attribute outside the legacy whitelist.
#include "adaptor/Adaptor.h"
#include "lir/Function.h"
#include "lir/HlsCompat.h"
#include "lir/LContext.h"
#include "support/StringUtils.h"

#include <set>

namespace mha::adaptor {

namespace {

class AttributeScrub : public lir::ModulePass {
public:
  std::string name() const override { return "attribute-scrub"; }

  bool run(lir::Module &module, lir::PassStats &stats,
           DiagnosticEngine &) override {
    bool changed = false;
    for (lir::Function *fn : module.functions()) {
      changed |= scrub(fn->attrs(), &lir::isLegacyFnAttr, stats,
                       "adaptor.fn-attrs-scrubbed");
      for (const auto &arg : fn->args())
        changed |= scrub(arg->attrs(), &lir::isLegacyArgAttr, stats,
                         "adaptor.arg-attrs-scrubbed");
    }
    return changed;
  }

private:
  bool scrub(std::set<std::string> &attrs, bool (*isLegacy)(const std::string &),
             lir::PassStats &stats, const char *counter) {
    bool changed = false;
    for (auto it = attrs.begin(); it != attrs.end();) {
      // xlx.* attributes are the frontend's own dialect: always kept.
      if (!isLegacy(*it) && !startsWith(*it, "xlx.")) {
        it = attrs.erase(it);
        stats[counter]++;
        changed = true;
      } else {
        ++it;
      }
    }
    return changed;
  }
};

} // namespace

std::unique_ptr<lir::ModulePass> createAttributeScrubPass() {
  return std::make_unique<AttributeScrub>();
}

} // namespace mha::adaptor
