// Pipeline - assembles the full adaptor pass pipeline and the final
// HLS-compatibility verification pass.
#include "adaptor/Adaptor.h"
#include "lir/HlsCompat.h"
#include "lir/LContext.h"
#include "lir/transforms/Transforms.h"

namespace mha::adaptor {

namespace {

class HlsCompatVerify : public lir::ModulePass {
public:
  std::string name() const override { return "hls-compat-verify"; }

  bool run(lir::Module &module, lir::PassStats &stats,
           DiagnosticEngine &diags) override {
    lir::HlsCompatReport report = lir::checkHlsCompatibility(module, diags);
    for (const auto &[category, count] : report.violations)
      stats["compat." + category] += count;
    stats["compat.errors"] += report.errors;
    stats["compat.warnings"] += report.warnings;
    return false;
  }
};

} // namespace

std::unique_ptr<lir::ModulePass> createHlsCompatVerifyPass() {
  return std::make_unique<HlsCompatVerify>();
}

void buildAdaptorPipeline(lir::PassManager &pm,
                          const AdaptorOptions &options) {
  if (options.runDescriptorElimination)
    pm.add(createDescriptorEliminationPass());
  if (options.runIntrinsicLegalize)
    pm.add(createIntrinsicLegalizePass());
  if (options.runCleanups) {
    pm.add(lir::createInstCombinePass());
    pm.add(lir::createDCEPass());
  }
  if (options.runGepCanonicalize)
    pm.add(createGepCanonicalizePass());
  if (options.runCleanups) {
    pm.add(lir::createInstCombinePass());
    pm.add(lir::createCSEPass());
    pm.add(lir::createDCEPass());
    pm.add(lir::createSimplifyCFGPass());
    pm.add(lir::createLICMPass());
    pm.add(lir::createDCEPass());
  }
  if (options.runPointerTypeRecovery)
    pm.add(createPointerTypeRecoveryPass());
  if (options.runMetadataConvert)
    pm.add(createMetadataConvertPass());
  if (options.runAttributeScrub)
    pm.add(createAttributeScrubPass());
  if (options.verifyCompat)
    pm.add(createHlsCompatVerifyPass());
}

} // namespace mha::adaptor
