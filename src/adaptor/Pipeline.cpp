// Pipeline - assembles the full adaptor pass pipeline and the final
// HLS-compatibility verification pass.
#include "adaptor/Adaptor.h"
#include "lir/HlsCompat.h"
#include "lir/LContext.h"
#include "lir/transforms/Transforms.h"

#include <cassert>
#include <vector>

namespace mha::adaptor {

namespace {

class HlsCompatVerify : public lir::ModulePass {
public:
  std::string name() const override { return "hls-compat-verify"; }

  bool run(lir::Module &module, lir::PassStats &stats,
           DiagnosticEngine &diags) override {
    lir::HlsCompatReport report = lir::checkHlsCompatibility(module, diags);
    for (const auto &[category, count] : report.violations)
      stats["compat." + category] += count;
    stats["compat.errors"] += report.errors;
    stats["compat.warnings"] += report.warnings;
    return false;
  }
};

/// Downcasts a scalar-cleanup pass to FunctionPass for fusion. All lir
/// cleanups are function passes; assert rather than silently drop one.
std::unique_ptr<lir::FunctionPass>
toFunctionPass(std::unique_ptr<lir::ModulePass> pass) {
  lir::FunctionPass *fn = pass->asFunctionPass();
  assert(fn && "cleanup pass is not a FunctionPass");
  pass.release();
  return std::unique_ptr<lir::FunctionPass>(fn);
}

void addCleanupGroup(lir::PassManager &pm, bool fuse,
                     std::vector<std::unique_ptr<lir::ModulePass>> passes) {
  if (!fuse) {
    for (auto &pass : passes)
      pm.add(std::move(pass));
    return;
  }
  std::vector<std::unique_ptr<lir::FunctionPass>> fns;
  fns.reserve(passes.size());
  for (auto &pass : passes)
    fns.push_back(toFunctionPass(std::move(pass)));
  pm.add(std::make_unique<lir::FusedFunctionPass>(std::move(fns)));
}

} // namespace

std::unique_ptr<lir::ModulePass> createHlsCompatVerifyPass() {
  return std::make_unique<HlsCompatVerify>();
}

void buildAdaptorPipeline(lir::PassManager &pm,
                          const AdaptorOptions &options) {
  if (options.runCallLegalization) {
    pm.add(lir::createRec2IterPass(options.recursionDepth));
    lir::InlinerOptions io;
    io.sizeBudget = options.inlineBudget;
    io.preservedFunction = options.topFunction;
    pm.add(lir::createInlinerPass(io));
    pm.add(lir::createCallSitePrivatizationPass());
    if (options.runCleanups) {
      std::vector<std::unique_ptr<lir::ModulePass>> group;
      group.push_back(lir::createDCEPass());
      group.push_back(lir::createSimplifyCFGPass());
      addCleanupGroup(pm, options.fusePasses, std::move(group));
    }
  }
  if (options.runDescriptorElimination)
    pm.add(createDescriptorEliminationPass());
  if (options.runIntrinsicLegalize)
    pm.add(createIntrinsicLegalizePass());
  if (options.runCleanups) {
    std::vector<std::unique_ptr<lir::ModulePass>> group;
    group.push_back(lir::createInstCombinePass());
    group.push_back(lir::createDCEPass());
    addCleanupGroup(pm, options.fusePasses, std::move(group));
  }
  if (options.runGepCanonicalize)
    pm.add(createGepCanonicalizePass());
  if (options.runCleanups) {
    std::vector<std::unique_ptr<lir::ModulePass>> group;
    group.push_back(lir::createInstCombinePass());
    group.push_back(lir::createCSEPass());
    group.push_back(lir::createDCEPass());
    group.push_back(lir::createSimplifyCFGPass());
    group.push_back(lir::createLICMPass());
    group.push_back(lir::createDCEPass());
    addCleanupGroup(pm, options.fusePasses, std::move(group));
  }
  if (options.runPointerTypeRecovery)
    pm.add(createPointerTypeRecoveryPass());
  if (options.runMetadataConvert)
    pm.add(createMetadataConvertPass());
  if (options.runAttributeScrub)
    pm.add(createAttributeScrubPass());
  if (options.verifyCompat)
    pm.add(createHlsCompatVerifyPass());
}

} // namespace mha::adaptor
