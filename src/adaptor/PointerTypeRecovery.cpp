// PointerTypeRecovery - opaque -> typed pointer downgrade (stage 4).
//
// The legacy HLS frontend predates opaque pointers; every pointer must be
// typed. Pointee types are reconstructed from how each pointer is
// produced: arguments from their !mha.shape geometry, allocas from the
// allocated type, GEPs by navigating their source element type. The
// !mha.shape markers are consumed here (the shape now lives in the type),
// and the module leaves opaque-pointer mode.
#include "adaptor/Adaptor.h"
#include "adaptor/ShapeInfo.h"
#include "lir/LContext.h"
#include "support/StringUtils.h"

namespace mha::adaptor {

namespace {

class PointerTypeRecovery : public lir::ModulePass {
public:
  std::string name() const override { return "pointer-type-recovery"; }

  bool run(lir::Module &module, lir::PassStats &stats,
           DiagnosticEngine &diags) override {
    lir::LContext &ctx = module.context();
    bool changed = false;

    for (lir::Function *fn : module.functions()) {
      // Arguments first (signature update).
      bool signatureChanged = false;
      std::vector<lir::Type *> params;
      for (const auto &arg : fn->args()) {
        lir::Type *newTy = arg->type();
        if (auto *pt = dyn_cast<lir::PointerType>(arg->type());
            pt && pt->isOpaque()) {
          auto shape = shapeOf(arg.get(), ctx);
          if (shape) {
            newTy = ctx.ptrTy(shape->arrayType(ctx));
          } else if (!fn->isDeclaration()) {
            // Leave it opaque; the compatibility check will flag it (this
            // happens when descriptor elimination was skipped).
            diags.warning(strfmt(
                "adaptor: cannot recover pointee type of argument %%%s in "
                "@%s (no shape information)",
                arg->name().c_str(), fn->name().c_str()));
          }
        }
        if (newTy != arg->type()) {
          arg->setType(newTy);
          stats["adaptor.pointers-typed"]++;
          signatureChanged = changed = true;
        }
        arg->metadata().erase("mha.shape");
        params.push_back(newTy);
      }
      if (signatureChanged)
        fn->setType(ctx.fnTy(fn->returnType(), params));

      if (fn->isDeclaration())
        continue;

      // Instructions in layout order: producers before consumers for the
      // straight-line pointer chains our pipeline creates.
      for (lir::BasicBlock *bb : fn->blockPtrs()) {
        for (auto &inst : *bb) {
          auto *pt = dyn_cast<lir::PointerType>(inst->type());
          if (!pt || !pt->isOpaque())
            continue;
          switch (inst->opcode()) {
          case lir::Opcode::Alloca:
            inst->setType(ctx.ptrTy(inst->allocatedType()));
            inst->metadata().erase("mha.shape");
            stats["adaptor.pointers-typed"]++;
            changed = true;
            break;
          case lir::Opcode::GEP: {
            lir::Type *pointee = inst->sourceElemType();
            for (unsigned i = 2; i < inst->numOperands(); ++i) {
              if (auto *at = dyn_cast<lir::ArrayType>(pointee))
                pointee = at->element();
              else if (auto *st = dyn_cast<lir::StructType>(pointee)) {
                auto *ci = dyn_cast<lir::ConstantInt>(inst->operand(i));
                if (!ci) {
                  diags.error("adaptor: non-constant struct GEP index");
                  break;
                }
                pointee = st->fields()[static_cast<size_t>(ci->value())];
              }
            }
            inst->setType(ctx.ptrTy(pointee));
            stats["adaptor.pointers-typed"]++;
            changed = true;
            break;
          }
          default:
            diags.error(strfmt(
                "adaptor: cannot recover pointee type of '%s' result",
                lir::opcodeName(inst->opcode())));
            break;
          }
        }
      }
      // Allocas keep mha.shape even when already typed; scrub leftovers.
      for (lir::BasicBlock *bb : fn->blockPtrs())
        for (auto &inst : *bb)
          inst->metadata().erase("mha.shape");
    }

    module.flags()["opaque-pointers"] = "false";
    ctx.emitOpaquePointers = false;
    return changed;
  }
};

} // namespace

std::unique_ptr<lir::ModulePass> createPointerTypeRecoveryPass() {
  return std::make_unique<PointerTypeRecovery>();
}

} // namespace mha::adaptor
