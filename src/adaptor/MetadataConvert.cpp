// MetadataConvert - translate directive metadata across the version gap
// (stage 5): llvm.loop.* names the modern flow emits become the xlx.*
// names the HLS frontend actually reads, and MLIR-level array-partition
// attributes become xlx.array_partition metadata on the flattened
// arguments.
#include "adaptor/Adaptor.h"
#include "lir/LContext.h"
#include "lowering/Lowering.h"
#include "support/StringUtils.h"

namespace mha::adaptor {

namespace {

class MetadataConvert : public lir::ModulePass {
public:
  std::string name() const override { return "metadata-convert"; }

  bool run(lir::Module &module, lir::PassStats &stats,
           DiagnosticEngine &diags) override {
    bool changed = false;
    for (lir::Function *fn : module.functions()) {
      changed |= convertLoopMetadata(*fn, stats);
      changed |= convertPartitionAttrs(*fn, stats, diags);
      if (fn->attrs().erase("mha.dataflow")) {
        fn->attrs().insert("xlx.dataflow");
        stats["adaptor.dataflow-converted"]++;
        changed = true;
      }
    }
    return changed;
  }

private:
  bool convertLoopMetadata(lir::Function &fn, lir::PassStats &stats) {
    static const std::pair<const char *, const char *> renames[] = {
        {lowering::kLoopPipelineMD, xlx::Pipeline},
        {lowering::kLoopUnrollMD, xlx::Unroll},
        {lowering::kLoopTripCountMD, xlx::TripCount},
        {lowering::kLoopDataflowMD, xlx::Dataflow},
    };
    bool changed = false;
    for (lir::BasicBlock *bb : fn.blockPtrs()) {
      for (auto &inst : *bb) {
        for (const auto &[from, to] : renames) {
          if (const lir::MDNode *node = inst->getMetadata(from)) {
            inst->setMetadata(to, node->clone());
            inst->removeMetadata(from);
            stats["adaptor.loop-directives-converted"]++;
            changed = true;
          }
        }
      }
    }
    return changed;
  }

  bool convertPartitionAttrs(lir::Function &fn, lir::PassStats &stats,
                             DiagnosticEngine &diags) {
    std::vector<std::string> toRemove;
    bool changed = false;
    for (const std::string &attr : fn.attrs()) {
      if (!startsWith(attr, lowering::kPartitionAttrPrefix))
        continue;
      toRemove.push_back(attr);
      std::string payload =
          attr.substr(std::string(lowering::kPartitionAttrPrefix).size());
      std::vector<std::string> parts = splitString(payload, ':', true);
      if (parts.size() != 4) {
        diags.error(strfmt("adaptor: malformed partition attribute '%s'",
                           attr.c_str()));
        continue;
      }
      unsigned argIdx = static_cast<unsigned>(std::stoul(parts[0]));
      if (argIdx >= fn.numArgs()) {
        diags.error(strfmt("adaptor: partition attribute for argument %u "
                           "out of range in @%s",
                           argIdx, fn.name().c_str()));
        continue;
      }
      // One xlx.array_partition node holding [dim, factor, "kind"]
      // triples; append to an existing node when several directives hit
      // the same array.
      lir::Argument *arg = fn.arg(argIdx);
      auto it = arg->metadata().find(xlx::ArrayPartition);
      lir::MDNode *node;
      if (it == arg->metadata().end()) {
        auto fresh = std::make_unique<lir::MDNode>();
        node = fresh.get();
        arg->metadata()[xlx::ArrayPartition] = std::move(fresh);
      } else {
        node = it->second.get();
      }
      auto triple = std::make_unique<lir::MDNode>();
      triple->addInt(std::stoll(parts[1]));
      triple->addInt(std::stoll(parts[2]));
      triple->addString(parts[3]);
      node->addNode(std::move(triple));
      stats["adaptor.partitions-converted"]++;
      changed = true;
    }
    for (const std::string &attr : toRemove)
      fn.attrs().erase(attr);
    return changed;
  }
};

} // namespace

std::unique_ptr<lir::ModulePass> createMetadataConvertPass() {
  return std::make_unique<MetadataConvert>();
}

} // namespace mha::adaptor
