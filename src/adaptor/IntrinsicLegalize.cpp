// IntrinsicLegalize - replace modern llvm.* intrinsics with constructs the
// HLS frontend digests (stage 2 of the adaptor).
//
//   llvm.memcpy            -> an explicit rank-deep copy loop nest (shaped
//                             accesses, so it also pipelines/partitions)
//   llvm.fmuladd.*         -> fmul + fadd (the frontend re-fuses into DSPs)
//   llvm.smax/smin.*       -> icmp + select
//   llvm.sqrt/exp/fabs.*   -> calls into the hls_* math library
#include "adaptor/Adaptor.h"
#include "adaptor/ShapeInfo.h"
#include "lir/IRBuilder.h"
#include "lir/Intrinsics.h"
#include "lir/LContext.h"
#include "lir/Utils.h"
#include "support/StringUtils.h"

namespace mha::adaptor {

namespace {

class IntrinsicLegalize : public lir::ModulePass {
public:
  std::string name() const override { return "intrinsic-legalize"; }

  bool run(lir::Module &module, lir::PassStats &stats,
           DiagnosticEngine &diags) override {
    module_ = &module;
    ctx_ = &module.context();
    bool changed = false;
    for (lir::Function *fn : module.functions()) {
      if (fn->isDeclaration())
        continue;
      changed |= runOnFunction(*fn, stats, diags);
    }
    changed |= dropDeadIntrinsicDecls(module, stats);
    return changed;
  }

private:
  bool runOnFunction(lir::Function &fn, lir::PassStats &stats,
                     DiagnosticEngine &diags) {
    bool changed = false;
    bool progress = true;
    while (progress) {
      progress = false;
      for (lir::BasicBlock *bb : fn.blockPtrs()) {
        for (auto &instPtr : *bb) {
          lir::Instruction *inst = instPtr.get();
          if (inst->opcode() != lir::Opcode::Call)
            continue;
          lir::Function *callee = inst->calledFunction();
          if (!callee || !lir::isModernIntrinsic(*callee))
            continue;
          if (legalizeCall(inst, *callee, stats, diags)) {
            progress = changed = true;
            break; // CFG / list may have changed
          }
        }
        if (progress)
          break;
      }
    }
    return changed;
  }

  bool legalizeCall(lir::Instruction *call, lir::Function &callee,
                    lir::PassStats &stats, DiagnosticEngine &diags) {
    const std::string &name = callee.name();
    lir::IRBuilder builder(*ctx_);
    if (startsWith(name, "llvm.fmuladd.")) {
      builder.setInsertPointBefore(call);
      lir::Value *mul =
          builder.createFMul(call->arg(0), call->arg(1), "fma.mul");
      lir::Value *add = builder.createFAdd(mul, call->arg(2), "fma.add");
      call->replaceAllUsesWith(add);
      call->eraseFromParent();
      stats["adaptor.fmuladd-expanded"]++;
      return true;
    }
    if (startsWith(name, "llvm.smax.") || startsWith(name, "llvm.smin.")) {
      builder.setInsertPointBefore(call);
      bool isMax = startsWith(name, "llvm.smax.");
      lir::Value *cmp = builder.createICmp(
          isMax ? lir::CmpPred::SGT : lir::CmpPred::SLT, call->arg(0),
          call->arg(1), "minmax.cmp");
      lir::Value *sel = builder.createSelect(cmp, call->arg(0), call->arg(1),
                                             "minmax.sel");
      call->replaceAllUsesWith(sel);
      call->eraseFromParent();
      stats["adaptor.minmax-expanded"]++;
      return true;
    }
    for (const char *op : {"sqrt", "exp", "fabs", "log", "sin", "cos"}) {
      if (name == strfmt("llvm.%s.f64", op) ||
          name == strfmt("llvm.%s.f32", op)) {
        builder.setInsertPointBefore(call);
        lir::Function *hlsFn =
            lir::getHlsMathFunction(*module_, op, call->type());
        lir::Value *repl = builder.createCall(hlsFn, {call->arg(0)},
                                              strfmt("hls.%s", op));
        call->replaceAllUsesWith(repl);
        call->eraseFromParent();
        stats["adaptor.math-calls-retargeted"]++;
        return true;
      }
    }
    if (startsWith(name, "llvm.memcpy.")) {
      if (expandMemcpy(call, stats, diags))
        return true;
      return false;
    }
    diags.error(strfmt("adaptor: no legalization for intrinsic @%s",
                       name.c_str()));
    return false;
  }

  bool expandMemcpy(lir::Instruction *call, lir::PassStats &stats,
                    DiagnosticEngine &diags) {
    lir::Value *dst = call->arg(0);
    lir::Value *src = call->arg(1);
    auto dstShape = shapeOf(dst, *ctx_);
    auto srcShape = shapeOf(src, *ctx_);
    ShapeInfo shape;
    if (dstShape)
      shape = *dstShape;
    else if (srcShape)
      shape = *srcShape;
    else {
      // Unknown geometry: byte-wise copy.
      auto *bytes = dyn_cast<lir::ConstantInt>(call->arg(2));
      if (!bytes) {
        diags.error("adaptor: memcpy with non-constant size");
        return false;
      }
      shape.elemTy = ctx_->i8();
      shape.dims = {bytes->value()};
    }

    // Split so the nest slots between the call's block and its tail.
    lir::BasicBlock *origBB = call->parent();
    lir::BasicBlock *cont = lir::splitBlockBefore(call, "memcpy.cont");
    call->eraseFromParent();
    origBB->terminator()->eraseFromParent();

    lir::IRBuilder builder(*ctx_);
    builder.setInsertPoint(origBB);
    std::vector<lir::Value *> ivs;
    emitCopyNest(builder, shape, dst, src, 0, ivs, cont);
    stats["adaptor.memcpy-expanded"]++;
    return true;
  }

  /// Emits loop level `d`; when all levels are open, copies one element.
  void emitCopyNest(lir::IRBuilder &builder, const ShapeInfo &shape,
                    lir::Value *dst, lir::Value *src, unsigned d,
                    std::vector<lir::Value *> &ivs, lir::BasicBlock *cont) {
    lir::Function *fn = builder.insertBlock()->parent();
    lir::BasicBlock *header = fn->createBlock(strfmt("copy%u.header", d));
    lir::BasicBlock *body = fn->createBlock(strfmt("copy%u.body", d));
    lir::BasicBlock *exit =
        d == 0 ? cont : fn->createBlock(strfmt("copy%u.exit", d));

    lir::BasicBlock *pre = builder.insertBlock();
    builder.createBr(header);
    builder.setInsertPoint(header);
    lir::Instruction *iv = builder.createPhi(ctx_->i64(),
                                             strfmt("copy.iv%u", d));
    iv->addIncoming(ctx_->constI64(0), pre);
    lir::Value *cmp = builder.createICmp(
        lir::CmpPred::SLT, iv, ctx_->constI64(shape.dims[d]), "copy.cmp");
    builder.createCondBr(cmp, body, exit);

    builder.setInsertPoint(body);
    ivs.push_back(iv);
    if (d + 1 == shape.rank()) {
      std::vector<lir::Value *> indices{ctx_->constI64(0)};
      indices.insert(indices.end(), ivs.begin(), ivs.end());
      lir::ArrayType *arrTy = shape.arrayType(*ctx_);
      lir::Value *srcAddr = builder.createGEP(arrTy, src, indices, "copy.s");
      lir::Value *val = builder.createLoad(shape.elemTy, srcAddr, "copy.v");
      lir::Value *dstAddr = builder.createGEP(arrTy, dst, indices, "copy.d");
      builder.createStore(val, dstAddr);
    } else {
      emitCopyNest(builder, shape, dst, src, d + 1, ivs, cont);
    }
    ivs.pop_back();
    lir::Value *ivNext =
        builder.createAdd(iv, ctx_->constI64(1), "copy.iv.next");
    lir::Instruction *latch = builder.createBr(header);
    if (d + 1 == shape.rank()) {
      // Innermost copy loops pipeline perfectly; say so.
      latch->setMetadata(xlx::Pipeline, lir::MDNode::ofInt(1));
      latch->setMetadata(xlx::TripCount,
                         lir::MDNode::ofInt(shape.dims[d]));
    }
    iv->addIncoming(ivNext, builder.insertBlock());
    builder.setInsertPoint(exit);
  }

  bool dropDeadIntrinsicDecls(lir::Module &module, lir::PassStats &stats) {
    bool changed = false;
    for (lir::Function *fn : module.functions()) {
      if (fn->isDeclaration() && lir::isModernIntrinsic(*fn) &&
          !fn->hasUses()) {
        module.eraseFunction(fn);
        stats["adaptor.intrinsic-decls-removed"]++;
        changed = true;
      }
    }
    return changed;
  }

  lir::Module *module_ = nullptr;
  lir::LContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<lir::ModulePass> createIntrinsicLegalizePass() {
  return std::make_unique<IntrinsicLegalize>();
}

} // namespace mha::adaptor
