// Adaptor.h - the MLIR HLS Adaptor for LLVM IR (the paper's contribution).
//
// A pass pipeline that rewrites the LLVM IR produced by the direct MLIR
// lowering into "HLS-readable IR": the restricted, older-dialect IR the
// (Vitis-style) HLS frontend accepts. The pipeline bridges every element
// of the version/convention gap:
//
//   1. memref-descriptor-elimination  — collapse each (allocPtr, alignedPtr,
//      offset, sizes, strides) argument group into one array pointer and
//      constant-fold the geometry,
//   2. intrinsic-legalize             — llvm.memcpy -> copy loop nest,
//      llvm.fmuladd -> fmul+fadd, llvm.smax/smin -> icmp+select,
//      llvm.sqrt/exp/fabs -> hls_* math calls,
//   3. gep-canonicalize               — delinearize flat pointer arithmetic
//      back into shaped multi-dimensional GEPs (recovers array structure
//      for BRAM mapping and partitioning),
//   4. pointer-type-recovery          — opaque `ptr` -> typed pointers,
//   5. metadata-convert               — llvm.loop.* directives -> xlx.*,
//      partition function-attrs -> xlx.array_partition argument metadata,
//   6. attribute-scrub                — drop modern-only attributes,
//   7. hls-compat-verify              — final acceptance check against the
//      shared lir::checkHlsCompatibility contract.
//
// Standard scalar cleanups (instcombine/dce/simplifycfg) run between
// stages, as the paper's flow does inside opt.
#pragma once

#include "lir/PassManager.h"

#include <memory>

namespace mha::adaptor {

struct AdaptorOptions {
  /// Call legalization (multi-function input): rec2iter, then the
  /// bottom-up inliner, then call-site privatization — before any of the
  /// single-function stages below.
  bool runCallLegalization = true;
  /// Inliner size budget (instructions); callees above it stay calls.
  unsigned inlineBudget = 256;
  /// Default explicit-stack depth for rewritten self-recursion (a
  /// `mha.rec_depth=N` function attribute overrides it per function).
  unsigned recursionDepth = 64;
  /// Function the inliner must keep even when fully inlined away (the
  /// flow's synthesis top); empty keeps every never-called function only.
  std::string topFunction;

  /// Skip switches for the ablation bench (fig4): each disables one stage.
  bool runDescriptorElimination = true;
  bool runIntrinsicLegalize = true;
  bool runGepCanonicalize = true;
  bool runPointerTypeRecovery = true;
  bool runMetadataConvert = true;
  bool runAttributeScrub = true;
  /// Run the final acceptance verification (diagnoses, never mutates).
  bool verifyCompat = true;
  /// Run scalar cleanups between stages.
  bool runCleanups = true;
  /// Fuse each cleanup group into one function-at-a-time pass
  /// (FusedFunctionPass): one traversal and one verifier run per group
  /// instead of per sub-pass. Off by default so pass-level reports keep
  /// their historical shape.
  bool fusePasses = false;
};

/// Individual pass factories (composable for tests/ablation).
std::unique_ptr<lir::ModulePass> createDescriptorEliminationPass();
std::unique_ptr<lir::ModulePass> createIntrinsicLegalizePass();
std::unique_ptr<lir::ModulePass> createGepCanonicalizePass();
std::unique_ptr<lir::ModulePass> createPointerTypeRecoveryPass();
std::unique_ptr<lir::ModulePass> createMetadataConvertPass();
std::unique_ptr<lir::ModulePass> createAttributeScrubPass();
std::unique_ptr<lir::ModulePass> createHlsCompatVerifyPass();

/// Populates `pm` with the full adaptor pipeline per `options`.
void buildAdaptorPipeline(lir::PassManager &pm, const AdaptorOptions &options);

/// Directive metadata keys in the HLS frontend's dialect (xlx.*).
namespace xlx {
inline constexpr const char *Pipeline = "xlx.pipeline";
inline constexpr const char *Unroll = "xlx.unroll";
inline constexpr const char *TripCount = "xlx.tripcount";
inline constexpr const char *Dataflow = "xlx.dataflow";
inline constexpr const char *ArrayPartition = "xlx.array_partition";
} // namespace xlx

} // namespace mha::adaptor
