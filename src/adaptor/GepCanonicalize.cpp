// GepCanonicalize - delinearize flat address arithmetic into shaped GEPs
// (stage 3 of the adaptor).
//
// The MLIR lowering computes `offset + i*stride0 + j*stride1` and indexes
// `gep f64, ptr, linear`. The HLS backend needs the array structure back
// to map BRAMs and apply partitioning, so this pass decomposes each linear
// address into per-dimension indices using the static shape recorded in
// !mha.shape and rewrites to `gep [N x [M x f64]], ptr, 0, i, j`.
// Decomposition assumes in-bounds subscripts (each recovered index stays
// below its dimension), the standard delinearization contract.
#include "adaptor/Adaptor.h"
#include "adaptor/ShapeInfo.h"
#include "lir/IRBuilder.h"
#include "lir/LContext.h"

namespace mha::adaptor {

namespace {

class GepCanonicalize : public lir::ModulePass {
public:
  std::string name() const override { return "gep-canonicalize"; }

  bool run(lir::Module &module, lir::PassStats &stats,
           DiagnosticEngine &) override {
    ctx_ = &module.context();
    bool changed = false;
    for (lir::Function *fn : module.functions()) {
      if (fn->isDeclaration())
        continue;
      changed |= reshapeAllocas(*fn, stats);
      changed |= rewriteGeps(*fn, stats);
    }
    return changed;
  }

private:
  /// [total x T] allocas regain their logical [d0 x [d1 x T]] type.
  bool reshapeAllocas(lir::Function &fn, lir::PassStats &stats) {
    bool changed = false;
    for (lir::BasicBlock *bb : fn.blockPtrs()) {
      for (auto &inst : *bb) {
        if (inst->opcode() != lir::Opcode::Alloca)
          continue;
        auto shape = shapeOf(inst.get(), *ctx_);
        if (!shape || shape->rank() < 1)
          continue;
        lir::ArrayType *shapedTy = shape->arrayType(*ctx_);
        if (inst->allocatedType() == shapedTy)
          continue;
        inst->setAllocatedType(shapedTy);
        stats["adaptor.allocas-reshaped"]++;
        changed = true;
      }
    }
    return changed;
  }

  bool rewriteGeps(lir::Function &fn, lir::PassStats &stats) {
    bool changed = false;
    std::vector<lir::Instruction *> worklist;
    for (lir::BasicBlock *bb : fn.blockPtrs())
      for (auto &inst : *bb)
        if (inst->opcode() == lir::Opcode::GEP)
          worklist.push_back(inst.get());

    for (lir::Instruction *gep : worklist) {
      // Only flat single-index GEPs rooted directly at a shaped base.
      if (gep->numOperands() != 2)
        continue;
      lir::Value *base = gep->operand(0);
      auto shape = shapeOf(base, *ctx_);
      if (!shape)
        continue;
      if (gep->sourceElemType() != shape->elemTy)
        continue;

      auto linear = decomposeLinear(gep->operand(1));
      if (!linear)
        continue;
      std::vector<int64_t> strides = shape->strides();

      // Assign each term to the outermost dimension whose stride divides
      // its coefficient; distribute the constant likewise.
      std::vector<LinearAddr> perDim(shape->rank());
      bool ok = true;
      for (auto &[value, coef] : linear->terms) {
        bool assigned = false;
        for (unsigned d = 0; d < shape->rank(); ++d) {
          if (coef % strides[d] != 0)
            continue;
          int64_t q = coef / strides[d];
          // A quotient at/above the next-outer extent belongs further out.
          if (q == 0)
            continue;
          perDim[d].terms.push_back({value, q});
          assigned = true;
          break;
        }
        if (!assigned) {
          ok = false;
          break;
        }
      }
      if (ok) {
        // Truncating division distributes both positive and negative
        // stencil offsets (in[i-1][j] -> constant -stride0 lands on dim 0;
        // in[i][j-1] -> constant -1 lands on the innermost dim).
        int64_t c = linear->constant;
        for (unsigned d = 0; d < shape->rank(); ++d) {
          perDim[d].constant = c / strides[d];
          c %= strides[d];
        }
        ok = c == 0;
      }
      if (!ok) {
        stats["adaptor.geps-kept-flat"]++;
        continue;
      }

      // Materialize per-dimension index expressions before the GEP.
      lir::IRBuilder builder(*ctx_);
      builder.setInsertPointBefore(gep);
      std::vector<lir::Value *> indices{ctx_->constI64(0)};
      for (unsigned d = 0; d < shape->rank(); ++d) {
        lir::Value *idx = ctx_->constI64(perDim[d].constant);
        for (auto &[value, q] : perDim[d].terms) {
          lir::Value *scaled =
              q == 1 ? value
                     : builder.createMul(value, ctx_->constI64(q), "idx.mul");
          idx = (isa<lir::ConstantInt>(idx) &&
                 cast<lir::ConstantInt>(idx)->isZero())
                    ? scaled
                    : builder.createAdd(idx, scaled, "idx.add");
        }
        indices.push_back(idx);
      }
      lir::Instruction *shaped = builder.createGEP(
          shape->arrayType(*ctx_), base, indices, gep->name() + ".shaped");
      gep->replaceAllUsesWith(shaped);
      gep->eraseFromParent();
      stats["adaptor.geps-delinearized"]++;
      changed = true;
    }
    return changed;
  }

  lir::LContext *ctx_ = nullptr;
};

} // namespace

std::unique_ptr<lir::ModulePass> createGepCanonicalizePass() {
  return std::make_unique<GepCanonicalize>();
}

} // namespace mha::adaptor
