// ShapeInfo.h - shared helpers for reading mha.shape/mha.memref metadata
// and decomposing linear address expressions (adaptor-internal).
#pragma once

#include "lir/Function.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace mha::adaptor {

/// Logical array geometry recorded by the lowering.
struct ShapeInfo {
  lir::Type *elemTy = nullptr;
  std::vector<int64_t> dims;

  unsigned rank() const { return static_cast<unsigned>(dims.size()); }
  int64_t totalElements() const {
    int64_t n = 1;
    for (int64_t d : dims)
      n *= d;
    return n;
  }
  /// Row-major strides, innermost = 1.
  std::vector<int64_t> strides() const {
    std::vector<int64_t> s(dims.size(), 1);
    for (int i = static_cast<int>(dims.size()) - 2; i >= 0; --i)
      s[i] = s[i + 1] * dims[i + 1];
    return s;
  }
  /// [d0 x [d1 x ... T]] nested array type.
  lir::ArrayType *arrayType(lir::LContext &ctx) const;
};

/// Parses a !{ !"elemTy", i64 rank, i64 dim... } node (mha.shape /
/// mha.memref payload starting at `firstIdx`).
std::optional<ShapeInfo> parseShapeMD(const lir::MDNode *node,
                                      lir::LContext &ctx,
                                      size_t firstIdx = 0);

/// Shape info for a pointer value: argument or alloca carrying mha.shape.
std::optional<ShapeInfo> shapeOf(const lir::Value *base, lir::LContext &ctx);

/// linear = constant + sum(coef_i * value_i): multi-variable linear
/// decomposition over add/sub/mul-by-const/shl-by-const/sext/zext chains.
struct LinearAddr {
  int64_t constant = 0;
  std::vector<std::pair<lir::Value *, int64_t>> terms; // value, coefficient
};
std::optional<LinearAddr> decomposeLinear(lir::Value *v);

} // namespace mha::adaptor
