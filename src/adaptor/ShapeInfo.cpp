#include "adaptor/ShapeInfo.h"

#include "lir/LContext.h"

namespace mha::adaptor {

lir::ArrayType *ShapeInfo::arrayType(lir::LContext &ctx) const {
  lir::Type *t = elemTy;
  for (auto it = dims.rbegin(); it != dims.rend(); ++it)
    t = ctx.arrayTy(t, static_cast<uint64_t>(*it));
  return mha::cast<lir::ArrayType>(t);
}

std::optional<ShapeInfo> parseShapeMD(const lir::MDNode *node,
                                      lir::LContext &ctx, size_t firstIdx) {
  if (!node || !node->isString(firstIdx) || !node->isInt(firstIdx + 1))
    return std::nullopt;
  ShapeInfo info;
  const std::string &elem = node->getString(firstIdx);
  if (elem == "f64" || elem == "double")
    info.elemTy = ctx.doubleTy();
  else if (elem == "f32" || elem == "float")
    info.elemTy = ctx.floatTy();
  else if (elem.size() > 1 && elem[0] == 'i')
    info.elemTy = ctx.intTy(static_cast<unsigned>(std::stoul(elem.substr(1))));
  else
    return std::nullopt;
  int64_t rank = node->getInt(firstIdx + 1);
  for (int64_t d = 0; d < rank; ++d) {
    if (!node->isInt(firstIdx + 2 + static_cast<size_t>(d)))
      return std::nullopt;
    info.dims.push_back(node->getInt(firstIdx + 2 + static_cast<size_t>(d)));
  }
  return info;
}

std::optional<ShapeInfo> shapeOf(const lir::Value *base, lir::LContext &ctx) {
  if (const auto *arg = mha::dyn_cast<lir::Argument>(base))
    return parseShapeMD(arg->getMetadata("mha.shape"), ctx);
  if (const auto *inst = mha::dyn_cast<lir::Instruction>(base))
    if (inst->opcode() == lir::Opcode::Alloca)
      return parseShapeMD(inst->getMetadata("mha.shape"), ctx);
  return std::nullopt;
}

namespace {

void addTerm(LinearAddr &addr, lir::Value *v, int64_t coef) {
  if (coef == 0)
    return;
  for (auto &[tv, tc] : addr.terms) {
    if (tv == v) {
      tc += coef;
      return;
    }
  }
  addr.terms.push_back({v, coef});
}

bool decomposeInto(lir::Value *v, int64_t scale, LinearAddr &out) {
  if (auto *c = mha::dyn_cast<lir::ConstantInt>(v)) {
    out.constant += scale * c->value();
    return true;
  }
  if (auto *inst = mha::dyn_cast<lir::Instruction>(v)) {
    switch (inst->opcode()) {
    case lir::Opcode::Add:
      return decomposeInto(inst->operand(0), scale, out) &&
             decomposeInto(inst->operand(1), scale, out);
    case lir::Opcode::Sub:
      return decomposeInto(inst->operand(0), scale, out) &&
             decomposeInto(inst->operand(1), -scale, out);
    case lir::Opcode::Mul: {
      if (auto *rc = mha::dyn_cast<lir::ConstantInt>(inst->operand(1)))
        return decomposeInto(inst->operand(0), scale * rc->value(), out);
      if (auto *lc = mha::dyn_cast<lir::ConstantInt>(inst->operand(0)))
        return decomposeInto(inst->operand(1), scale * lc->value(), out);
      break;
    }
    case lir::Opcode::Shl: {
      if (auto *rc = mha::dyn_cast<lir::ConstantInt>(inst->operand(1)))
        if (rc->value() >= 0 && rc->value() < 63)
          return decomposeInto(inst->operand(0),
                               scale * (int64_t(1) << rc->value()), out);
      break;
    }
    case lir::Opcode::SExt:
    case lir::Opcode::ZExt:
      return decomposeInto(inst->operand(0), scale, out);
    default:
      break;
    }
  }
  // Leaf: an opaque index variable (loop iv, argument, ...).
  addTerm(out, v, scale);
  return true;
}

} // namespace

std::optional<LinearAddr> decomposeLinear(lir::Value *v) {
  LinearAddr out;
  if (!decomposeInto(v, 1, out))
    return std::nullopt;
  std::erase_if(out.terms, [](const auto &t) { return t.second == 0; });
  return out;
}

} // namespace mha::adaptor
