// DescriptorElimination - collapse MLIR memref descriptor argument groups
// into single array pointers (stage 1 of the adaptor).
//
// The MLIR lowering passes each memref as (allocPtr, alignedPtr, offset,
// size0..N, stride0..N). HLS top functions need one pointer per array with
// a static shape, so the pass rewrites the signature and constant-folds the
// geometry: offset -> 0, sizes/strides -> the static shape recorded in the
// !mha.memref group metadata. The surviving pointer carries !mha.shape for
// the later delinearization/typing stages.
#include "adaptor/Adaptor.h"
#include "adaptor/ShapeInfo.h"
#include "lir/LContext.h"
#include "lowering/Lowering.h"
#include "support/StringUtils.h"

namespace mha::adaptor {

namespace {

class DescriptorElimination : public lir::ModulePass {
public:
  std::string name() const override { return "memref-descriptor-elimination"; }

  bool run(lir::Module &module, lir::PassStats &stats,
           DiagnosticEngine &diags) override {
    bool changed = false;
    for (lir::Function *fn : module.functions()) {
      if (fn->isDeclaration())
        continue;
      changed |= runOnFunction(*fn, module, stats, diags);
    }
    return changed;
  }

private:
  bool runOnFunction(lir::Function &fn, lir::Module &module,
                     lir::PassStats &stats, DiagnosticEngine &diags) {
    lir::LContext &ctx = module.context();

    struct Plan {
      // Either a plain pass-through scalar or a descriptor group.
      bool isGroup = false;
      unsigned firstOldArg = 0;
      unsigned numOldArgs = 1;
      ShapeInfo shape;
      std::string displayName;
      lir::Type *newType = nullptr;
      std::set<std::string> carriedAttrs;
    };
    std::vector<Plan> plans;
    bool anyGroup = false;
    for (unsigned i = 0; i < fn.numArgs();) {
      lir::Argument *arg = fn.arg(i);
      const lir::MDNode *groupMD =
          arg->getMetadata(lowering::kMemRefGroupMD);
      if (!groupMD) {
        Plan p;
        p.firstOldArg = i;
        p.newType = arg->type();
        p.displayName = arg->name();
        p.carriedAttrs = arg->attrs();
        plans.push_back(p);
        ++i;
        continue;
      }
      auto shape = parseShapeMD(groupMD, ctx, /*firstIdx=*/1);
      if (!shape || !groupMD->isString(0)) {
        diags.error(strfmt("malformed %s metadata on @%s",
                           lowering::kMemRefGroupMD, fn.name().c_str()));
        return false;
      }
      Plan p;
      p.isGroup = true;
      p.firstOldArg = i;
      p.numOldArgs = 3 + 2 * shape->rank();
      p.shape = *shape;
      p.displayName = groupMD->getString(0);
      p.newType = ctx.emitOpaquePointers
                      ? static_cast<lir::Type *>(ctx.opaquePtrTy())
                      : static_cast<lir::Type *>(
                            ctx.ptrTy(shape->arrayType(ctx)));
      plans.push_back(p);
      anyGroup = true;
      i += p.numOldArgs;
      if (p.firstOldArg + p.numOldArgs > fn.numArgs()) {
        diags.error(strfmt("descriptor group overruns signature of @%s",
                           fn.name().c_str()));
        return false;
      }
    }
    if (!anyGroup)
      return false;

    // Phase 1: detach every old-argument use onto placeholders/constants.
    std::vector<std::unique_ptr<lir::Instruction>> placeholders;
    std::vector<lir::Value *> newArgStandIns;
    for (Plan &p : plans) {
      auto placeholder =
          std::make_unique<lir::Instruction>(lir::Opcode::Freeze, p.newType);
      placeholder->setName("newarg");
      lir::Value *standIn = placeholder.get();
      newArgStandIns.push_back(standIn);
      placeholders.push_back(std::move(placeholder));

      if (!p.isGroup) {
        fn.arg(p.firstOldArg)->replaceAllUsesWith(standIn);
        continue;
      }
      unsigned base = p.firstOldArg;
      std::vector<int64_t> strides = p.shape.strides();
      fn.arg(base + 0)->replaceAllUsesWith(standIn); // allocated ptr
      fn.arg(base + 1)->replaceAllUsesWith(standIn); // aligned ptr
      fn.arg(base + 2)->replaceAllUsesWith(ctx.constI64(0)); // offset
      for (unsigned d = 0; d < p.shape.rank(); ++d) {
        fn.arg(base + 3 + d)
            ->replaceAllUsesWith(ctx.constI64(p.shape.dims[d]));
        fn.arg(base + 3 + p.shape.rank() + d)
            ->replaceAllUsesWith(ctx.constI64(strides[d]));
      }
      stats["adaptor.descriptor-args-folded"] += p.numOldArgs - 1;
    }

    // Phase 2: install the flattened signature.
    std::vector<lir::Type *> params;
    for (const Plan &p : plans)
      params.push_back(p.newType);
    std::vector<lir::Argument *> newArgs =
        fn.resetSignature(ctx.fnTy(fn.returnType(), params));

    // Phase 3: swap placeholders for the real arguments.
    for (unsigned i = 0; i < plans.size(); ++i) {
      const Plan &p = plans[i];
      newArgStandIns[i]->replaceAllUsesWith(newArgs[i]);
      if (p.isGroup) {
        newArgs[i]->setName(p.displayName);
        newArgs[i]->attrs().insert("noalias");
        auto shapeMD = std::make_unique<lir::MDNode>();
        shapeMD->addString(p.shape.elemTy->str());
        shapeMD->addInt(p.shape.rank());
        for (int64_t d : p.shape.dims)
          shapeMD->addInt(d);
        newArgs[i]->metadata()["mha.shape"] = std::move(shapeMD);
        stats["adaptor.descriptors-eliminated"]++;
      } else {
        newArgs[i]->setName(p.displayName.empty() ? strfmt("arg%u", i)
                                                  : p.displayName);
        newArgs[i]->attrs() = p.carriedAttrs;
      }
    }
    return true;
  }
};

} // namespace

std::unique_ptr<lir::ModulePass> createDescriptorEliminationPass() {
  return std::make_unique<DescriptorElimination>();
}

} // namespace mha::adaptor
