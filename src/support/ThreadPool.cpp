#include "support/ThreadPool.h"

#include <algorithm>

namespace mha {

ThreadPool::ThreadPool(unsigned numThreads) {
  if (numThreads == 0)
    numThreads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(numThreads);
  for (unsigned i = 0; i < numThreads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wakeWorker_.notify_all();
  for (std::thread &t : workers_)
    t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  wakeWorker_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wakeWorker_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_)
          return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--inFlight_ == 0)
        idle_.notify_all();
    }
  }
}

void parallelFor(ThreadPool &pool, size_t count,
                 const std::function<void(size_t)> &fn) {
  for (size_t i = 0; i < count; ++i)
    pool.submit([i, &fn] { fn(i); });
  pool.wait();
}

} // namespace mha
