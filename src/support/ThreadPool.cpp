#include "support/ThreadPool.h"

#include "support/Metrics.h"

#include <algorithm>
#include <utility>

namespace mha {

namespace {
thread_local int tlWorkerIndex = -1;

/// Process-wide pool metrics, shared by every ThreadPool instance (the
/// tools create one pool; were there several, their numbers sum).
/// Worker utilization is derivable from the exported series:
///   busy_us_total / (workers * uptime_us).
struct PoolMetrics {
  metrics::Gauge &queueDepth;
  metrics::Gauge &workers;
  metrics::Counter &tasks;
  metrics::Counter &busyUs;
  metrics::Histogram &waitUs;
  metrics::Histogram &runUs;

  static PoolMetrics &get() {
    static PoolMetrics m{
        metrics::Registry::global().gauge(
            "mha_pool_queue_depth", "tasks queued but not yet started"),
        metrics::Registry::global().gauge("mha_pool_workers",
                                          "live pool worker threads"),
        metrics::Registry::global().counter("mha_pool_tasks_total",
                                            "pool tasks executed"),
        metrics::Registry::global().counter(
            "mha_pool_busy_us_total",
            "microseconds workers spent running tasks (utilization = "
            "busy_us / (workers * uptime_us))"),
        metrics::Registry::global().histogram(
            "mha_pool_task_wait_us", "task latency from submit to start"),
        metrics::Registry::global().histogram(
            "mha_pool_task_run_us", "task execution wall time")};
    return m;
  }
};
} // namespace

ThreadPool::ThreadPool(unsigned numThreads) {
  if (numThreads == 0)
    numThreads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(numThreads);
  for (unsigned i = 0; i < numThreads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
  PoolMetrics::get().workers.add(static_cast<int64_t>(numThreads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wakeWorker_.notify_all();
  for (std::thread &t : workers_)
    t.join();
  PoolMetrics::get().workers.add(-static_cast<int64_t>(workers_.size()));
}

void ThreadPool::submit(std::function<void()> task) {
  QueuedTask item;
  item.fn = std::move(task);
  if (metrics::enabled()) {
    item.enqueued = std::chrono::steady_clock::now();
    item.timed = true;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(item));
    ++inFlight_;
  }
  // Unconditional so push/pop stay balanced across enable() flips.
  PoolMetrics::get().queueDepth.add(1);
  wakeWorker_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return inFlight_ == 0; });
  if (firstError_) {
    std::exception_ptr error = std::exchange(firstError_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::currentWorkerIndex() { return tlWorkerIndex; }

size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::workerLoop(unsigned index) {
  tlWorkerIndex = static_cast<int>(index);
  for (;;) {
    QueuedTask item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wakeWorker_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_)
          return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics &pm = PoolMetrics::get();
    pm.queueDepth.add(-1);
    std::chrono::steady_clock::time_point runStart;
    if (item.timed) {
      runStart = std::chrono::steady_clock::now();
      pm.waitUs.recordAlways(
          std::chrono::duration_cast<std::chrono::microseconds>(runStart -
                                                                item.enqueued)
              .count());
    }
    // The decrement must happen on every exit path — a skipped decrement
    // deadlocks wait() forever — so it lives in a scope guard.
    struct FlightGuard {
      ThreadPool &pool;
      ~FlightGuard() {
        std::lock_guard<std::mutex> lock(pool.mutex_);
        if (--pool.inFlight_ == 0)
          pool.idle_.notify_all();
      }
    } guard{*this};
    try {
      item.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_)
        firstError_ = std::current_exception();
    }
    if (item.timed) {
      int64_t runUs = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - runStart)
                          .count();
      pm.runUs.recordAlways(runUs);
      ++pm.tasks;
      pm.busyUs.add(runUs);
    }
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)]() mutable {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    task = nullptr; // release captures before signalling completion
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !firstError_)
      firstError_ = error;
    if (--pending_ == 0)
      done_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
  if (firstError_) {
    std::exception_ptr error = std::exchange(firstError_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void parallelFor(ThreadPool &pool, size_t count,
                 const std::function<void(size_t)> &fn) {
  TaskGroup group(pool);
  for (size_t i = 0; i < count; ++i)
    group.submit([i, &fn] { fn(i); });
  group.wait();
}

} // namespace mha
