#include "support/ThreadPool.h"

#include <algorithm>
#include <utility>

namespace mha {

namespace {
thread_local int tlWorkerIndex = -1;
} // namespace

ThreadPool::ThreadPool(unsigned numThreads) {
  if (numThreads == 0)
    numThreads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(numThreads);
  for (unsigned i = 0; i < numThreads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wakeWorker_.notify_all();
  for (std::thread &t : workers_)
    t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  wakeWorker_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return inFlight_ == 0; });
  if (firstError_) {
    std::exception_ptr error = std::exchange(firstError_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::currentWorkerIndex() { return tlWorkerIndex; }

size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::workerLoop(unsigned index) {
  tlWorkerIndex = static_cast<int>(index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wakeWorker_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_)
          return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // The decrement must happen on every exit path — a skipped decrement
    // deadlocks wait() forever — so it lives in a scope guard.
    struct FlightGuard {
      ThreadPool &pool;
      ~FlightGuard() {
        std::lock_guard<std::mutex> lock(pool.mutex_);
        if (--pool.inFlight_ == 0)
          pool.idle_.notify_all();
      }
    } guard{*this};
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_)
        firstError_ = std::current_exception();
    }
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)]() mutable {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    task = nullptr; // release captures before signalling completion
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !firstError_)
      firstError_ = error;
    if (--pending_ == 0)
      done_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
  if (firstError_) {
    std::exception_ptr error = std::exchange(firstError_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void parallelFor(ThreadPool &pool, size_t count,
                 const std::function<void(size_t)> &fn) {
  TaskGroup group(pool);
  for (size_t i = 0; i < count; ++i)
    group.submit([i, &fn] { fn(i); });
  group.wait();
}

} // namespace mha
