// Json.h - shared JSON emission and validation helpers.
//
// Every JSON producer in the repo (batch trace, synthesis report, Chrome
// trace) goes through these helpers so escaping and number formatting are
// correct in exactly one place:
//  * escape() implements RFC 8259 string escaping (quotes, backslashes,
//    and control characters as \uXXXX / short forms);
//  * number() formats doubles locale-independently — printf's %f honours
//    LC_NUMERIC and emits a decimal comma under e.g. de_DE, which is not
//    valid JSON;
//  * validate() is a dependency-free well-formedness checker used by
//    tests and by the trace writers to fail loudly instead of shipping a
//    broken file;
//  * Value/parse() is a small DOM parser for the JSON the repo itself
//    writes (DSE QoR caches, traces) — object member order is preserved
//    and numbers are kept as doubles (exact for the int64 magnitudes the
//    reports contain).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mha::json {

/// A parsed JSON value. Objects preserve member order; lookups are linear
/// (the documents we read back — QoR caches, trace files — are small).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  bool asBool(bool fallback = false) const {
    return isBool() ? bool_ : fallback;
  }
  double asDouble(double fallback = 0) const {
    return isNumber() ? number_ : fallback;
  }
  int64_t asInt(int64_t fallback = 0) const {
    return isNumber() ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string &asString() const { return string_; }

  const std::vector<Value> &elements() const { return elements_; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return members_;
  }

  /// Object member lookup (nullptr when absent or not an object).
  const Value *get(std::string_view key) const;

  static Value makeNull() { return Value(); }
  static Value makeBool(bool b);
  static Value makeNumber(double n);
  static Value makeString(std::string s);
  static Value makeArray(std::vector<Value> elements);
  static Value makeObject(std::vector<std::pair<std::string, Value>> members);

private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> elements_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one complete JSON document (whitespace-padded) into a Value
/// tree. Returns nullopt on malformed input and describes the first
/// problem in `*error` (when non-null). String escapes are decoded;
/// \uXXXX escapes are re-encoded as UTF-8.
std::optional<Value> parse(std::string_view text, std::string *error = nullptr);

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added).
std::string escape(std::string_view s);

/// Formats `value` with `precision` digits after the decimal point using
/// '.' as the decimal separator regardless of the process locale.
/// Non-finite values (which JSON cannot represent) render as 0 with the
/// requested precision.
std::string number(double value, int precision = 3);

/// Formats `value` in the shortest form that round-trips exactly back to
/// the same double (std::to_chars), locale-independent: '.' is always the
/// decimal separator, and a ".0" suffix is appended to integral values
/// ("3" -> "3.0") so IR lexers still see a float token. Handles
/// non-finite values as "nan"/"inf"/"-inf"; callers whose grammar cannot
/// spell those must special-case them first.
std::string shortestDouble(double value);

/// Returns true iff `text` is one complete well-formed JSON value with
/// nothing but whitespace around it. On failure, `*error` (when non-null)
/// describes the first problem and its byte offset.
bool validate(std::string_view text, std::string *error = nullptr);

/// Removes all insignificant whitespace from a JSON document (string-
/// aware: whitespace inside string literals is preserved). Turns a
/// pretty-printed document into a single line — what NDJSON framing
/// (mha-serve) needs before embedding one document inside another.
std::string compact(std::string_view text);

} // namespace mha::json
