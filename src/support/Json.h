// Json.h - shared JSON emission and validation helpers.
//
// Every JSON producer in the repo (batch trace, synthesis report, Chrome
// trace) goes through these helpers so escaping and number formatting are
// correct in exactly one place:
//  * escape() implements RFC 8259 string escaping (quotes, backslashes,
//    and control characters as \uXXXX / short forms);
//  * number() formats doubles locale-independently — printf's %f honours
//    LC_NUMERIC and emits a decimal comma under e.g. de_DE, which is not
//    valid JSON;
//  * validate() is a dependency-free well-formedness checker used by
//    tests and by the trace writers to fail loudly instead of shipping a
//    broken file.
#pragma once

#include <string>
#include <string_view>

namespace mha::json {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added).
std::string escape(std::string_view s);

/// Formats `value` with `precision` digits after the decimal point using
/// '.' as the decimal separator regardless of the process locale.
/// Non-finite values (which JSON cannot represent) render as 0 with the
/// requested precision.
std::string number(double value, int precision = 3);

/// Returns true iff `text` is one complete well-formed JSON value with
/// nothing but whitespace around it. On failure, `*error` (when non-null)
/// describes the first problem and its byte offset.
bool validate(std::string_view text, std::string *error = nullptr);

} // namespace mha::json
