#include "support/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>

namespace mha::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\b':
      out += "\\b";
      break;
    case '\f':
      out += "\\f";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\r':
      out += "\\r";
      break;
    case '\t':
      out += "\\t";
      break;
    default:
      if (c < 0x20)
        out += strfmt("\\u%04x", c);
      else
        out += ch;
    }
  }
  return out;
}

std::string number(double value, int precision) {
  if (!std::isfinite(value))
    value = 0;
  std::string out = strfmt("%.*f", precision, value);
  // %f uses LC_NUMERIC's decimal separator; JSON requires '.'.
  for (char &c : out)
    if (c == ',')
      c = '.';
  return out;
}

namespace {

/// Minimal recursive-descent checker. Only answers "is this well-formed?"
/// — it builds no values, so it stays a few dozen lines and is safe to run
/// on every trace the tools write.
class Validator {
public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run(std::string *error) {
    skipWs();
    bool ok = value(0);
    if (ok) {
      skipWs();
      if (pos_ != text_.size())
        ok = fail("trailing characters after value");
    }
    if (!ok && error)
      *error = strfmt("%s at offset %zu", message_.c_str(), errorPos_);
    return ok;
  }

private:
  bool fail(const char *what) {
    if (message_.empty()) {
      message_ = what;
      errorPos_ = pos_;
    }
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (depth > 128)
      return fail("nesting too deep");
    if (eof())
      return fail("unexpected end of input");
    switch (peek()) {
    case '{':
      return object(depth);
    case '[':
      return array(depth);
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return numberToken();
    }
  }

  bool object(int depth) {
    ++pos_; // '{'
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (eof() || peek() != '"')
        return fail("expected object key");
      if (!string())
        return false;
      skipWs();
      if (eof() || peek() != ':')
        return fail("expected ':' after object key");
      ++pos_;
      skipWs();
      if (!value(depth + 1))
        return false;
      skipWs();
      if (eof())
        return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(int depth) {
    ++pos_; // '['
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!value(depth + 1))
        return false;
      skipWs();
      if (eof())
        return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_; // opening quote
    while (!eof()) {
      unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20)
        return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof())
          return fail("unterminated escape");
        char esc = peek();
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              return fail("invalid \\u escape");
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't')
          return fail("invalid escape character");
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool numberToken() {
    size_t start = pos_;
    if (!eof() && peek() == '-')
      ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("invalid number");
    if (peek() == '0')
      ++pos_;
    else
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("digit required after decimal point");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("digit required in exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string message_;
  size_t errorPos_ = 0;
};

} // namespace

bool validate(std::string_view text, std::string *error) {
  return Validator(text).run(error);
}

} // namespace mha::json
